#include "core/sensitivity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim;
using namespace rlcsim::core;

const tline::GateLineLoad kSystem{500.0, {500.0, 1e-8, 1e-12}, 1e-12};

TEST(Sensitivity, AllPartialsPositive) {
  // Delay increases with every impedance in the overdamped regime.
  const DelaySensitivity s = delay_sensitivity(kSystem);
  EXPECT_GT(s.d_rtr, 0.0);
  EXPECT_GT(s.d_rt, 0.0);
  EXPECT_GT(s.d_ct, 0.0);
  EXPECT_GT(s.d_cl, 0.0);
}

TEST(Sensitivity, MatchesDirectFiniteDifference) {
  const DelaySensitivity s = delay_sensitivity(kSystem);
  // Cross-check d/d Ct against an independent two-point evaluation.
  const double h = 1e-15;
  tline::GateLineLoad up = kSystem, down = kSystem;
  up.line.total_capacitance += h;
  down.line.total_capacitance -= h;
  const double direct = (rlc_delay(up) - rlc_delay(down)) / (2.0 * h);
  EXPECT_NEAR(s.d_ct, direct, std::fabs(direct) * 1e-3);
}

TEST(Sensitivity, RcLimitDriverSensitivity) {
  // In the deep-RC limit with CT -> 0, eq. (9) gives
  // tpd ~ 0.74 (0.5 Rt Ct + Rtr Ct + ...) / sqrt(1+CT), so
  // d tpd / d Rtr -> 0.74 (Ct + CL) at CT ~ 0.
  const tline::GateLineLoad rc{500.0, {5000.0, 1e-12, 1e-12}, 1e-15};
  const DelaySensitivity s = delay_sensitivity(rc);
  const double expected = 0.74 * (1e-12 + 1e-15);
  EXPECT_NEAR(s.d_rtr, expected, expected * 0.02);
}

TEST(Sensitivity, LcLimitLengthExponentIsOne) {
  // Wave regime: tpd ~ l sqrt(LC) -> log-sensitivity to (Rt, Lt, Ct) jointly
  // (the length exponent) is 1; Lt and Ct each carry ~0.5.
  const tline::GateLineLoad lc{0.1, {1.0, 1e-8, 1e-12}, 1e-15};
  const LogSensitivity s = log_sensitivity(lc);
  EXPECT_NEAR(s.length_exponent(), 1.0, 0.02);
  EXPECT_NEAR(s.lt, 0.5, 0.02);
  EXPECT_NEAR(s.ct, 0.5, 0.03);
  EXPECT_NEAR(s.rt, 0.0, 0.02);
}

TEST(Sensitivity, RcLimitLengthExponentIsTwo) {
  const tline::GateLineLoad rc{0.1, {50000.0, 1e-12, 1e-12}, 1e-16};
  const LogSensitivity s = log_sensitivity(rc);
  EXPECT_NEAR(s.length_exponent(), 2.0, 0.03);
}

TEST(Sensitivity, LengthExponentInterpolatesInTransition) {
  const tline::GateLineLoad mid{100.0, {300.0, 1e-8, 1e-12}, 0.2e-12};
  const double p = log_sensitivity(mid).length_exponent();
  EXPECT_GT(p, 1.0);
  EXPECT_LT(p, 2.0);
}

TEST(Sensitivity, Validation) {
  EXPECT_THROW(delay_sensitivity(kSystem, kPaperFit, 0.0), std::invalid_argument);
  EXPECT_THROW(delay_sensitivity(kSystem, kPaperFit, 0.5), std::invalid_argument);
  EXPECT_THROW(delay_sensitivity({1.0, {1.0, 0.0, 1e-12}, 0.0}),
               std::invalid_argument);
}

}  // namespace
