#include "tline/rc_line.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::tline;

TEST(Elmore, ClosedForm) {
  EXPECT_DOUBLE_EQ(elmore_delay(100.0, 200.0, 1e-12, 2e-12),
                   100.0 * 3e-12 + 200.0 * (0.5e-12 + 2e-12));
  EXPECT_DOUBLE_EQ(elmore_delay(0.0, 200.0, 1e-12, 0.0), 1e-10);
}

TEST(Sakurai, ClosedForm) {
  EXPECT_DOUBLE_EQ(sakurai_delay(0.0, 1000.0, 1e-12, 0.0), 0.377e-9);
  EXPECT_DOUBLE_EQ(
      sakurai_delay(100.0, 1000.0, 1e-12, 2e-12),
      0.377 * 1000.0 * 1e-12 +
          0.693 * (100.0 * 1e-12 + 100.0 * 2e-12 + 1000.0 * 2e-12));
}

TEST(PaperRcLimit, Coefficient) {
  EXPECT_DOUBLE_EQ(paper_rc_limit(1000.0, 1e-12), 0.37e-9);
}

TEST(RcModalStep, BoundariesAndMonotonicity) {
  const double rt = 1000.0, ct = 1e-12, tau = rt * ct;
  EXPECT_DOUBLE_EQ(rc_modal_step(rt, ct, 0.0), 0.0);
  EXPECT_NEAR(rc_modal_step(rt, ct, 5.0 * tau), 1.0, 1e-5);
  double prev = -1.0;
  for (double x = 0.01; x < 3.0; x += 0.05) {
    const double v = rc_modal_step(rt, ct, x * tau);
    EXPECT_GT(v, prev);
    prev = v;
  }
  EXPECT_THROW(rc_modal_step(0.0, ct, 1.0), std::invalid_argument);
}

TEST(RcModalDelay, ClassicCoefficient) {
  // The exact 50% coefficient of a distributed RC line is ~0.3786 R C.
  const double coeff = rc_modal_delay(1000.0, 1e-12) / 1e-9;
  EXPECT_NEAR(coeff, 0.3786, 5e-4);
  // The paper's rounded 0.37 and Sakurai's 0.377 are both near it.
  EXPECT_NEAR(coeff, 0.37, 0.01);
}

TEST(RcModalDelay, ThresholdValidation) {
  EXPECT_THROW(rc_modal_delay(1.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rc_modal_delay(1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(RcExactDelay, AgreesWithModalSeriesOnBareLine) {
  // Two fully independent exact solutions of the same PDE.
  const double rt = 2500.0, ct = 0.8e-12;
  const double via_series = rc_modal_delay(rt, ct);
  const double via_stehfest = rc_exact_delay(0.0, rt, ct, 0.0);
  EXPECT_NEAR(via_stehfest, via_series, via_series * 1e-3);
}

TEST(RcExactDelay, SakuraiWithinAFewPercentWithGate) {
  const double rtr = 500.0, rt = 1000.0, ct = 1e-12, cl = 0.5e-12;
  const double exact = rc_exact_delay(rtr, rt, ct, cl);
  const double sakurai = sakurai_delay(rtr, rt, ct, cl);
  EXPECT_NEAR(sakurai, exact, exact * 0.05);
}

TEST(RcExactDelay, ElmoreOverestimatesBareLine) {
  // Elmore = first moment = 0.5 RC > exact 0.3786 RC for the bare line.
  const double rt = 1000.0, ct = 1e-12;
  EXPECT_GT(elmore_delay(0.0, rt, ct, 0.0), rc_exact_delay(0.0, rt, ct, 0.0));
}

TEST(RcExactDelay, Validation) {
  EXPECT_THROW(rc_exact_delay(0.0, 0.0, 1e-12, 0.0), std::invalid_argument);
  EXPECT_THROW(rc_exact_delay(0.0, 1.0, 1e-12, 0.0, 1.5), std::invalid_argument);
}

// Gate-dominated limit: when Rtr >> Rt the system approaches the lumped
// single-pole RC with tau = Rtr (Ct + CL): delay -> ln 2 tau.
TEST(RcExactDelay, GateDominatedLimit) {
  const double rtr = 1e6, rt = 1.0, ct = 1e-12, cl = 0.0;
  const double tau = rtr * ct;
  EXPECT_NEAR(rc_exact_delay(rtr, rt, ct, cl), std::log(2.0) * tau, tau * 0.01);
}

// Delay scale-invariance: scaling R by a and C by 1/a leaves the delay
// coefficient * (RC) unchanged; scaling both by a scales delay by a^2 ... etc.
class RcScaling : public ::testing::TestWithParam<double> {};

TEST_P(RcScaling, DelayScalesWithRcProduct) {
  const double scale = GetParam();
  const double base = rc_modal_delay(1000.0, 1e-12);
  EXPECT_NEAR(rc_modal_delay(1000.0 * scale, 1e-12), base * scale,
              base * scale * 1e-9);
  EXPECT_NEAR(rc_modal_delay(1000.0, 1e-12 * scale), base * scale,
              base * scale * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Scales, RcScaling, ::testing::Values(0.1, 0.5, 2.0, 10.0));

}  // namespace
