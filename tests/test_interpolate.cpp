#include "numeric/interpolate.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

TEST(LinearInterp, ExactAtSamplesAndMidpoints) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 10.0, 14.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 1.5), 12.0);
}

TEST(LinearInterp, ClampsOutsideRange) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{3.0, 4.0};
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(interp_linear(xs, ys, 9.0), 4.0);
}

TEST(LinearInterp, ValidatesGrid) {
  EXPECT_THROW(interp_linear({1.0}, {1.0}, 0.5), std::invalid_argument);
  EXPECT_THROW(interp_linear({1.0, 1.0}, {1.0, 2.0}, 0.5), std::invalid_argument);
  EXPECT_THROW(interp_linear({2.0, 1.0}, {1.0, 2.0}, 0.5), std::invalid_argument);
  EXPECT_THROW(interp_linear({1.0, 2.0}, {1.0}, 0.5), std::invalid_argument);
}

TEST(MonotoneCubic, InterpolatesSamplesExactly) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{0.0, 0.8, 0.95, 1.0};
  const MonotoneCubic f(xs, ys);
  for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_NEAR(f(xs[i]), ys[i], 1e-14);
}

TEST(MonotoneCubic, PreservesMonotonicity) {
  // Step-like data that cubic splines overshoot; Fritsch–Carlson must not.
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{0.0, 0.01, 0.99, 1.0, 1.0};
  const MonotoneCubic f(xs, ys);
  double prev = -1.0;
  for (double x = 0.0; x <= 4.0; x += 0.01) {
    const double y = f(x);
    EXPECT_GE(y, prev - 1e-12);
    EXPECT_GE(y, -1e-12);
    EXPECT_LE(y, 1.0 + 1e-12);
    prev = y;
  }
}

TEST(MonotoneCubic, FlatAtLocalExtremum) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{0.0, 1.0, 0.0};
  const MonotoneCubic f(xs, ys);
  // Peak must stay at the sample value (no overshoot past 1).
  for (double x = 0.0; x <= 2.0; x += 0.01) EXPECT_LE(f(x), 1.0 + 1e-12);
}

TEST(MonotoneCubic, SmootherThanLinearOnSmoothData) {
  const std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::sin(x));
  const MonotoneCubic f(xs, ys);
  double cubic_err = 0.0, linear_err = 0.0;
  for (double x = 0.05; x < 2.0; x += 0.07) {
    cubic_err = std::max(cubic_err, std::fabs(f(x) - std::sin(x)));
    linear_err = std::max(linear_err, std::fabs(interp_linear(xs, ys, x) - std::sin(x)));
  }
  EXPECT_LT(cubic_err, linear_err);
}

TEST(FindCrossing, RisingAndFalling) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{0.0, 1.0, 0.0, 1.0, 0.0};
  const auto rise = find_crossing(xs, ys, 0.5, 0.0, +1);
  ASSERT_TRUE(rise);
  EXPECT_DOUBLE_EQ(*rise, 0.5);
  const auto fall = find_crossing(xs, ys, 0.5, 0.0, -1);
  ASSERT_TRUE(fall);
  EXPECT_DOUBLE_EQ(*fall, 1.5);
  const auto second_rise = find_crossing(xs, ys, 0.5, 2.0, +1);
  ASSERT_TRUE(second_rise);
  EXPECT_DOUBLE_EQ(*second_rise, 2.5);
}

TEST(FindCrossing, EitherDirection) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{1.0, 0.0, 1.0};
  const auto any = find_crossing(xs, ys, 0.5, 0.0, 0);
  ASSERT_TRUE(any);
  EXPECT_DOUBLE_EQ(*any, 0.5);  // the falling one comes first
}

TEST(FindCrossing, NoCrossingReturnsNullopt) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0, 0.4};
  EXPECT_FALSE(find_crossing(xs, ys, 0.5));
  EXPECT_FALSE(find_crossing(xs, ys, 0.2, 0.0, -1));  // wrong direction
}

TEST(FindCrossing, SubSampleAccuracy) {
  // y = t^2 sampled coarsely; the linear-interp crossing of 0.25 between
  // samples 0 and 1 is at t such that interpolation hits 0.25.
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0, 1.0};
  const auto t = find_crossing(xs, ys, 0.25, 0.0, +1);
  ASSERT_TRUE(t);
  EXPECT_DOUBLE_EQ(*t, 0.25);
}

}  // namespace
