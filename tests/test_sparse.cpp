// Sparse CSR assembly, RCM ordering, and sparse LU (symbolic reuse) tests.
// The dense LuFactorization is the oracle throughout.
#include "numeric/sparse.h"

#include <cmath>
#include <complex>
#include <random>
#include <stdexcept>

#include <gtest/gtest.h>

#include "numeric/matrix.h"

namespace {

using namespace rlcsim::numeric;

TEST(Pattern, MergesDuplicatesAndSorts) {
  std::vector<std::pair<int, int>> entries{{1, 2}, {0, 0}, {1, 2}, {1, 0}, {0, 0}};
  std::vector<int> slots;
  const auto pattern = build_pattern(3, entries, &slots);
  EXPECT_EQ(pattern->n, 3);
  EXPECT_EQ(pattern->nnz(), 3);  // (0,0), (1,0), (1,2)
  EXPECT_EQ(pattern->row_ptr, (std::vector<int>{0, 1, 3, 3}));
  EXPECT_EQ(pattern->col_idx, (std::vector<int>{0, 0, 2}));
  // Duplicate entries share a slot.
  EXPECT_EQ(slots[0], slots[2]);
  EXPECT_EQ(slots[1], slots[4]);
  EXPECT_NE(slots[0], slots[3]);
}

TEST(Pattern, RejectsOutOfRange) {
  EXPECT_THROW(build_pattern(2, {{0, 2}}), std::out_of_range);
  EXPECT_THROW(build_pattern(2, {{-1, 0}}), std::out_of_range);
}

TEST(SparseMatrixTest, TripletAssemblySumsDuplicates) {
  std::vector<Triplet<double>> t{{0, 0, 1.0}, {0, 1, 2.0}, {0, 0, 3.0}, {1, 1, 5.0}};
  const RealSparse a(2, t);
  EXPECT_EQ(a.nnz(), 3);
  const auto dense = a.to_dense();
  EXPECT_DOUBLE_EQ(dense(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(dense(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(dense(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dense(1, 1), 5.0);
  const auto y = a.multiply({1.0, 10.0});
  EXPECT_DOUBLE_EQ(y[0], 24.0);
  EXPECT_DOUBLE_EQ(y[1], 50.0);
}

TEST(Rcm, IsAPermutation) {
  // Arrow matrix: dense first row/column + diagonal.
  std::vector<std::pair<int, int>> entries;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    entries.push_back({i, i});
    entries.push_back({0, i});
    entries.push_back({i, 0});
  }
  const auto pattern = build_pattern(n, entries);
  const auto perm = rcm_ordering(*pattern);
  ASSERT_EQ(perm.size(), static_cast<std::size_t>(n));
  std::vector<char> seen(n, 0);
  for (int p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, n);
    EXPECT_FALSE(seen[p]);
    seen[p] = 1;
  }
}

TEST(Rcm, ReducesTridiagonalScramble) {
  // A tridiagonal matrix with rows randomly relabeled has a huge bandwidth;
  // RCM must recover an O(1) bandwidth.
  const int n = 64;
  std::mt19937 rng(7);
  std::vector<int> label(n);
  for (int i = 0; i < n; ++i) label[i] = i;
  std::shuffle(label.begin(), label.end(), rng);
  std::vector<std::pair<int, int>> entries;
  for (int i = 0; i < n; ++i) {
    entries.push_back({label[i], label[i]});
    if (i + 1 < n) {
      entries.push_back({label[i], label[i + 1]});
      entries.push_back({label[i + 1], label[i]});
    }
  }
  const auto pattern = build_pattern(n, entries);
  const auto perm = rcm_ordering(*pattern);
  std::vector<int> inv(n);
  for (int k = 0; k < n; ++k) inv[perm[k]] = k;
  int bandwidth = 0;
  for (const auto& [r, c] : entries) bandwidth = std::max(bandwidth, std::abs(inv[r] - inv[c]));
  EXPECT_LE(bandwidth, 2);
}

// Deterministic random sparse diagonally-bumped system; returns the triplets.
std::vector<Triplet<double>> random_system(int n, double density, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<Triplet<double>> t;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j) {
        t.push_back({i, j, 2.0 + value(rng)});  // keep it comfortably nonsingular
      } else if (coin(rng) < density) {
        t.push_back({i, j, value(rng)});
      }
    }
  return t;
}

class SparseVsDense : public ::testing::TestWithParam<int> {};

TEST_P(SparseVsDense, MatchesDenseLuOnRandomSparseSystems) {
  const int n = GetParam();
  for (unsigned seed = 1; seed <= 3; ++seed) {
    const RealSparse a(n, random_system(n, 4.0 / n, seed));
    const RealLu dense(a.to_dense());
    const RealSparseLu sparse(a);
    std::vector<double> b(n);
    for (int i = 0; i < n; ++i) b[i] = std::sin(0.3 * i + seed);
    const auto xd = dense.solve(b);
    const auto xs = sparse.solve(b);
    for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseVsDense, ::testing::Values(1, 2, 5, 17, 60, 200));

TEST(SparseLuTest, ZeroDiagonalNeedsPivoting) {
  // MNA-style saddle point: [[0, 1], [1, 1]] — no valid factorization without
  // row pivoting.
  std::vector<Triplet<double>> t{{0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}};
  const RealSparse a(2, t);
  const RealSparseLu lu(a);
  const auto x = lu.solve({2.0, 5.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLuTest, SingularThrows) {
  std::vector<Triplet<double>> t{{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 2.0}, {1, 1, 4.0}};
  const RealSparse a(2, t);
  EXPECT_THROW(RealSparseLu{a}, std::runtime_error);
}

TEST(SparseLuTest, RefactorReusesSymbolicAnalysis) {
  const int n = 40;
  RealSparse a(n, random_system(n, 0.1, 11));
  sparse_lu_stats() = {};
  RealSparseLu lu(a);
  EXPECT_EQ(sparse_lu_stats().symbolic, 1u);
  EXPECT_EQ(sparse_lu_stats().numeric, 1u);

  // Rescale the values (same pattern), refactor, and check against dense.
  for (auto& v : a.values()) v *= 1.7;
  lu.refactor(a);
  EXPECT_EQ(sparse_lu_stats().symbolic, 1u) << "refactor must not redo symbolic analysis";
  EXPECT_EQ(sparse_lu_stats().numeric, 2u);

  const RealLu dense(a.to_dense());
  std::vector<double> b(n, 1.0);
  const auto xs = lu.solve(b);
  const auto xd = dense.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLuTest, RefactorPatternMismatchThrows) {
  // Structurally DIFFERENT patterns are rejected...
  const std::vector<Triplet<double>> ta{{0, 0, 2.0}, {1, 1, 2.0}, {0, 1, 1.0}};
  const std::vector<Triplet<double>> tb{{0, 0, 2.0}, {1, 1, 2.0}, {1, 0, 1.0}};
  const RealSparse a(2, ta);
  const RealSparse b(2, tb);
  RealSparseLu lu(a);
  EXPECT_THROW(lu.refactor(b), std::invalid_argument);
}

TEST(SparseLuTest, RefactorAcceptsStructurallyIdenticalPattern) {
  // ...but a structurally identical pattern in a DIFFERENT object is
  // accepted — the sweep hot path rebuilds topologically identical circuits
  // per grid point, each with its own pattern allocation.
  const auto triplets = random_system(5, 1.0, 1);
  auto scaled = triplets;
  for (auto& t : scaled) t.value *= 3.0;
  const RealSparse a(5, triplets);
  const RealSparse b(5, scaled);  // same structure, new pattern object
  ASSERT_NE(a.pattern_ptr(), b.pattern_ptr());

  RealSparseLu lu(a);
  sparse_lu_stats() = {};
  lu.refactor(b);
  EXPECT_EQ(sparse_lu_stats().symbolic, 0u) << "structural match must not re-analyze";
  const RealLu dense(b.to_dense());
  std::vector<double> rhs(5, 1.0);
  const auto xs = lu.solve(rhs);
  const auto xd = dense.solve(rhs);
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

TEST(SparseLuTest, RefactorFallsBackOnZeroPivot) {
  // First factor a well-behaved diagonal system; then zero the diagonal so
  // the recorded pivot order dies and the refactor must re-pivot (the values
  // remain solvable thanks to the off-diagonal entries).
  std::vector<Triplet<double>> t{
      {0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 4.0}};
  RealSparse a(2, t);
  RealSparseLu lu(a);
  sparse_lu_stats() = {};
  a.values() = {0.0, 1.0, 1.0, 0.0};  // anti-diagonal permutation matrix
  lu.refactor(a);
  EXPECT_EQ(sparse_lu_stats().symbolic, 1u);  // fallback full factorization
  const auto x = lu.solve({2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLuTest, ComplexSystemMatchesDense) {
  using C = std::complex<double>;
  const int n = 30;
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<Triplet<C>> t;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j)
        t.push_back({i, j, C(3.0 + value(rng), value(rng))});
      else if (coin(rng) < 0.15)
        t.push_back({i, j, C(value(rng), value(rng))});
    }
  const ComplexSparse a(n, t);
  const ComplexLu dense(a.to_dense());
  const ComplexSparseLu sparse(a);
  std::vector<C> b(n);
  for (int i = 0; i < n; ++i) b[i] = C(std::cos(0.2 * i), std::sin(0.4 * i));
  const auto xd = dense.solve(b);
  const auto xs = sparse.solve(b);
  for (int i = 0; i < n; ++i) EXPECT_LT(std::abs(xs[i] - xd[i]), 1e-9);
}

TEST(SparseLuTest, SolveInPlaceReusesBuffer) {
  const RealSparse a(5, random_system(5, 0.5, 9));
  const RealSparseLu lu(a);
  std::vector<double> x{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto expect = lu.solve(x);
  lu.solve_in_place(x);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(x[i], expect[i]);
  EXPECT_THROW(lu.solve({1.0}), std::invalid_argument);
}

TEST(SparseLuTest, LadderSystemLowFill) {
  // 1-D chain (tridiagonal after RCM): fill must stay linear in n.
  const int n = 400;
  std::vector<Triplet<double>> t;
  for (int i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i + 1 < n) {
      t.push_back({i, i + 1, -1.0});
      t.push_back({i + 1, i, -1.0});
    }
  }
  const RealSparse a(n, t);
  const RealSparseLu lu(a);
  EXPECT_LE(lu.factor_nnz(), static_cast<std::size_t>(6 * n));
  // Spot-check the solution of the discrete Poisson problem.
  std::vector<double> b(n, 1.0);
  const auto x = lu.solve(b);
  const auto r = a.multiply(x);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(r[i], 1.0, 1e-9);
}

}  // namespace
