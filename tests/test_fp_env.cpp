// FP-environment guard: the runtime half of the determinism tooling layer.
// check_fp_env must accept the IEEE-754 default environment and loudly
// reject altered rounding modes — the silent-drift failure mode every
// memcmp gate in the tree is blind to (identical wrong bits on both sides
// of a comparison still compare equal).
#include <cfenv>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "numeric/fp_env.h"

namespace {

using rlcsim::numeric::check_fp_env;
using rlcsim::numeric::fp_env_matches_contract;

// Restores the entry rounding mode even when an assertion throws out.
class ScopedRounding {
 public:
  explicit ScopedRounding(int mode) : saved_(std::fegetround()) {
    EXPECT_EQ(std::fesetround(mode), 0);
  }
  ~ScopedRounding() { std::fesetround(saved_); }

 private:
  int saved_;
};

TEST(FpEnv, DefaultEnvironmentMatchesContract) {
  EXPECT_TRUE(fp_env_matches_contract());
  EXPECT_NO_THROW(check_fp_env("test"));
}

TEST(FpEnv, AlteredRoundingModeIsRejected) {
  for (const int mode : {FE_UPWARD, FE_DOWNWARD, FE_TOWARDZERO}) {
    ScopedRounding rounding(mode);
    EXPECT_FALSE(fp_env_matches_contract());
    try {
      check_fp_env("test_fp_env");
      FAIL() << "expected std::runtime_error under non-default rounding";
    } catch (const std::runtime_error& error) {
      // The message must name the call site so a CI failure is actionable.
      EXPECT_NE(std::string(error.what()).find("test_fp_env"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find("round-to-nearest"),
                std::string::npos);
    }
  }
}

TEST(FpEnv, RestoredEnvironmentPassesAgain) {
  {
    ScopedRounding rounding(FE_UPWARD);
    EXPECT_FALSE(fp_env_matches_contract());
  }
  EXPECT_TRUE(fp_env_matches_contract());
  EXPECT_NO_THROW(check_fp_env("test"));
}

}  // namespace
