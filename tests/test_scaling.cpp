#include "core/scaling.h"

#include <gtest/gtest.h>

#include "tech/device.h"
#include "tech/nodes.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::core;

std::vector<std::pair<std::string, MinBuffer>> preset_buffers() {
  std::vector<std::pair<std::string, MinBuffer>> out;
  for (const auto& node : tech::all_nodes())
    out.emplace_back(node.node_name, tech::as_min_buffer(node));
  return out;
}

TEST(ScalingStudy, TlrGrowsAsIntrinsicDelayShrinks) {
  // A fixed wide wire studied across three buffer generations: the paper's
  // Section IV claim is that T_{L/R} (and hence the cost of RC-only design)
  // grows as R0 C0 shrinks.
  const tline::LineParams wire{100.0, 10e-9, 2e-12};  // Lt/Rt = 100 ps
  const auto points = scaling_study(wire, preset_buffers());
  ASSERT_EQ(points.size(), 3u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].r0c0, points[i - 1].r0c0);
    EXPECT_GT(points[i].t_lr, points[i - 1].t_lr);
    EXPECT_GT(points[i].area_increase, points[i - 1].area_increase);
  }
}

TEST(ScalingStudy, RowContentsConsistent) {
  const tline::LineParams wire{100.0, 10e-9, 2e-12};
  const auto points = scaling_study(wire, preset_buffers());
  for (const auto& p : points) {
    EXPECT_FALSE(p.label.empty());
    EXPECT_GT(p.k_rc, p.k_rlc);  // inductance always reduces the section count
    EXPECT_GT(p.h_rc, p.h_rlc);
    EXPECT_NEAR(p.area_increase,
                100.0 * (p.k_rc * p.h_rc / (p.k_rlc * p.h_rlc) - 1.0), 0.5);
  }
}

TEST(ScalingStudy, EmptyBufferListYieldsEmptyStudy) {
  const tline::LineParams wire{100.0, 10e-9, 2e-12};
  EXPECT_TRUE(scaling_study(wire, {}).empty());
}

}  // namespace
