// Bus-aware repeater insertion (src/repbus/): chain builder structure,
// extended buffer semantics, golden cascaded-MNA vs stage-composed reduced
// chain (2- and 5-line buses, uniform/staggered/interleaved), placement
// physics (staggered noise + opposite-phase delay wins, interleaved spread
// collapse), and the crosstalk-aware optimizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "repbus/bus_chain.h"
#include "repbus/optimize.h"
#include "repbus/stage_compose.h"
#include "sim/transient.h"
#include "sweep/sweep.h"

namespace {

using namespace rlcsim;

// The Table-1-derived bench bus: Rt = 500 ohm, Lt = 10 nH, Ct = 1 pF line,
// R0 C0 = 15 ps repeater technology (T_{L/R} ~ 1.3 — inductance matters).
const tline::LineParams kLine{500.0, 1e-8, 1e-12};
const core::MinBuffer kBuf{3000.0, 5e-15, 1.0, 0.0};

repbus::RepeaterBusSpec spec_for(int lines, repbus::Placement placement,
                                 int sections = 4, double size = 32.0) {
  repbus::RepeaterBusSpec spec;
  spec.bus = tline::make_bus(lines, kLine, 0.4, 0.25);
  spec.sections = sections;
  spec.size = size;
  spec.buffer = kBuf;
  spec.placement = placement;
  spec.segments_per_section = 12;
  return spec;
}

double pct_error(double value, double reference) {
  return 100.0 * std::fabs(value - reference) / reference;
}

// ---------------------------------------------------------------------------
// Spec validation and bookkeeping
// ---------------------------------------------------------------------------

TEST(RepeaterBusSpec, Validation) {
  auto spec = spec_for(3, repbus::Placement::kUniform);
  EXPECT_NO_THROW(repbus::validate(spec));
  spec.sections = 0;
  EXPECT_THROW(repbus::validate(spec), std::invalid_argument);
  spec = spec_for(3, repbus::Placement::kStaggered, /*sections=*/1);
  EXPECT_THROW(repbus::validate(spec), std::invalid_argument);
  spec = spec_for(3, repbus::Placement::kStaggered);
  spec.segments_per_section = 11;  // half-stage boundary off the grid
  EXPECT_THROW(repbus::validate(spec), std::invalid_argument);
  spec = spec_for(3, repbus::Placement::kUniform);
  spec.size = 0.0;
  EXPECT_THROW(repbus::validate(spec), std::invalid_argument);
}

TEST(RepeaterBusSpec, EqualAreaAcrossPlacements) {
  // Staggering shifts positions, never the count: every placement costs the
  // same repeater area, so placement comparisons are equal-area as built.
  const double uniform = repbus::repeater_area(spec_for(5, repbus::Placement::kUniform));
  const double staggered =
      repbus::repeater_area(spec_for(5, repbus::Placement::kStaggered));
  const double interleaved =
      repbus::repeater_area(spec_for(5, repbus::Placement::kInterleaved));
  EXPECT_DOUBLE_EQ(uniform, staggered);
  EXPECT_DOUBLE_EQ(uniform, interleaved);
  // 5 lines x k=4 drivers x h=32 x A_min.
  EXPECT_DOUBLE_EQ(uniform, 5.0 * 4.0 * 32.0 * 1.0);
}

TEST(RepeaterBusSpec, ShieldLinesCarryNoRepeaters) {
  auto spec = spec_for(5, repbus::Placement::kUniform);
  spec.shield_every = 2;  // lines 0 and 4 shield (victim = 2)
  EXPECT_EQ(repbus::repeaters_on_line(spec, 0), 0);
  EXPECT_EQ(repbus::repeaters_on_line(spec, 1), 4);
  EXPECT_EQ(repbus::repeaters_on_line(spec, 2), 4);
  EXPECT_DOUBLE_EQ(repbus::repeater_area(spec), 3.0 * 4.0 * 32.0);
}

TEST(BusChain, StructureAndPolarity) {
  const auto uniform = repbus::build_bus_chain(
      spec_for(5, repbus::Placement::kUniform), core::SwitchingPattern::kSamePhase);
  EXPECT_EQ(uniform.victim, 2);
  EXPECT_EQ(uniform.receiver_nodes.size(), 5u);
  // k - 1 = 3 threshold buffers per line (the first driver is the source).
  EXPECT_EQ(uniform.circuit.buffers().size(), 5u * 3u);
  for (int polarity : uniform.far_polarity) EXPECT_EQ(polarity, +1);

  const auto interleaved = repbus::build_bus_chain(
      spec_for(5, repbus::Placement::kInterleaved),
      core::SwitchingPattern::kSamePhase);
  // Alternate lines (odd distance from the victim) carry k = 4 inverting
  // drivers: polarity (-1)^4 = +1 at the receiver.
  EXPECT_EQ(interleaved.far_polarity[1], +1);
  EXPECT_EQ(interleaved.far_polarity[2], +1);
  // And their first driver inverts the external rising edge: source holds
  // vdd pre-switch.
  const auto& sources = interleaved.circuit.voltage_sources();
  const auto* alternate = std::get_if<sim::StepSpec>(&sources[1].spec);
  ASSERT_NE(alternate, nullptr);
  EXPECT_DOUBLE_EQ(alternate->v0, 1.0);
  EXPECT_DOUBLE_EQ(alternate->v1, 0.0);
}

// ---------------------------------------------------------------------------
// Extended buffer semantics (falling / inverting / ramped repeaters)
// ---------------------------------------------------------------------------

TEST(SwitchingBuffer, FallingAndSimultaneousCrossingsFire) {
  // One rising and one falling lag crossing threshold at the SAME instant —
  // the symmetric-bus corner that used to leave one buffer parked exactly at
  // its threshold, never firing.
  sim::Circuit c;
  c.add_voltage_source("a.in", "0", sim::StepSpec{0.0, 1.0, 0.0, 0.0}, "va");
  c.add_resistor("a.in", "a.mid", 1000.0, "ra");
  c.add_capacitor("a.mid", "0", 1e-12, 0.0, "ca");
  c.add_buffer("a.mid", "a.out", 100.0, 1e-15, 1.0, 0.5, "bufa");
  c.add_voltage_source("b.in", "0", sim::StepSpec{1.0, 0.0, 0.0, 0.0}, "vb");
  c.add_resistor("b.in", "b.mid", 1000.0, "rb");
  c.add_capacitor("b.mid", "0", 1e-12, 0.0, "cb");
  c.add_switching_buffer("b.mid", "b.out", 100.0, 1e-15, -1, 1.0, 0.0, 0.0,
                         1.0, 0.5, "bufb");
  sim::TransientOptions options;
  options.t_stop = 10e-9;
  const auto result = sim::run_transient(c, options);
  ASSERT_TRUE(std::isfinite(result.buffer_fire_times[0]));
  ASSERT_TRUE(std::isfinite(result.buffer_fire_times[1]));
  // RC lag to 50%: ln(2) * 1 ns ~ 693 ps, same instant for both.
  EXPECT_NEAR(result.buffer_fire_times[0], 693e-12, 10e-12);
  EXPECT_NEAR(result.buffer_fire_times[0], result.buffer_fire_times[1], 1e-12);
  // The falling buffer's output ends low, the rising one's high.
  EXPECT_NEAR(result.waveforms.trace("a.out").final_value(), 1.0, 1e-3);
  EXPECT_NEAR(result.waveforms.trace("b.out").final_value(), 0.0, 1e-3);
}

TEST(SwitchingBuffer, OutputRampHasFiniteEdge) {
  sim::Circuit c;
  c.add_voltage_source("in", "0", sim::StepSpec{0.0, 1.0, 0.0, 0.0}, "v");
  c.add_resistor("in", "mid", 100.0, "r");
  c.add_capacitor("mid", "0", 1e-13, 0.0, "cm");
  c.add_switching_buffer("mid", "out", 100.0, 1e-15, +1, 0.0, 1.0,
                         /*output_rise=*/200e-12, 1.0, 0.5, "buf");
  c.add_capacitor("out", "0", 1e-15, 0.0, "cl");
  sim::TransientOptions options;
  options.t_stop = 2e-9;
  const auto result = sim::run_transient(c, options);
  const double fire = result.buffer_fire_times[0];
  ASSERT_TRUE(std::isfinite(fire));
  const auto out = result.waveforms.trace("out");
  // Midway through the ramp the output sits near 50% (the tiny load barely
  // lags the ramp); an ideal step would already be at 1.
  EXPECT_NEAR(out.at(fire + 100e-12), 0.5, 0.1);
  EXPECT_NEAR(out.at(fire + 400e-12), 1.0, 2e-2);
}

// ---------------------------------------------------------------------------
// Golden: cascaded MNA vs stage-composed reduced chain
// ---------------------------------------------------------------------------

struct GoldenCase {
  int lines;
  repbus::Placement placement;
};

class ComposeGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(ComposeGolden, DelayWithin3PercentAndQuietNoiseTracks) {
  const GoldenCase param = GetParam();
  const auto spec = spec_for(param.lines, param.placement);
  const repbus::StageModels models = repbus::build_stage_models(spec, 4);
  for (core::SwitchingPattern pattern :
       {core::SwitchingPattern::kSamePhase,
        core::SwitchingPattern::kOppositePhase}) {
    const repbus::ChainMetrics mna = repbus::simulate_bus_chain(spec, pattern);
    const repbus::ComposedChainMetrics composed =
        repbus::compose_bus_chain(spec, pattern, models);
    ASSERT_TRUE(mna.victim_delay_50.has_value());
    ASSERT_TRUE(composed.victim_delay_50.has_value());
    EXPECT_LT(pct_error(*composed.victim_delay_50, *mna.victim_delay_50), 3.0)
        << repbus::placement_name(param.placement) << " "
        << core::switching_pattern_name(pattern);
  }
  // Quiet-victim noise: per-stage composed vs receiver transient. The
  // staggered composition smears aggressor edges over two onsets — a
  // conservative approximation, looser than the aligned placements.
  const repbus::ChainMetrics quiet_mna =
      repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim);
  const repbus::ComposedChainMetrics quiet_composed =
      repbus::compose_bus_chain(spec, core::SwitchingPattern::kQuietVictim, models);
  const double tolerance =
      param.placement == repbus::Placement::kStaggered ? 30.0 : 12.0;
  EXPECT_LT(pct_error(quiet_composed.peak_noise, quiet_mna.peak_noise), tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    Placements, ComposeGolden,
    ::testing::Values(GoldenCase{2, repbus::Placement::kUniform},
                      GoldenCase{2, repbus::Placement::kStaggered},
                      GoldenCase{2, repbus::Placement::kInterleaved},
                      GoldenCase{5, repbus::Placement::kUniform},
                      GoldenCase{5, repbus::Placement::kStaggered},
                      GoldenCase{5, repbus::Placement::kInterleaved}),
    [](const auto& info) {
      return std::to_string(info.param.lines) + "Line" +
             std::string(repbus::placement_name(info.param.placement)[0] == 'u'
                             ? "Uniform"
                             : repbus::placement_name(info.param.placement)[0] == 's'
                                   ? "Staggered"
                                   : "Interleaved");
    });

TEST(ComposeGolden, NoiseOrderingAcrossPlacementsPreserved) {
  // The composed model must agree with the chain transient about WHICH
  // placement is quieter — that ordering is what the optimizer acts on.
  double mna[3], composed[3];
  int i = 0;
  for (auto placement : {repbus::Placement::kUniform, repbus::Placement::kStaggered,
                         repbus::Placement::kInterleaved}) {
    const auto spec = spec_for(5, placement);
    mna[i] = repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim)
                 .peak_noise;
    composed[i] =
        repbus::compose_bus_chain(spec, core::SwitchingPattern::kQuietVictim, 4)
            .peak_noise;
    ++i;
  }
  // Both views agree staggered beats uniform on noise (the placement's
  // raison d'etre) — the ordering the optimizer's noise cap acts on.
  EXPECT_LT(mna[1], mna[0]);
  EXPECT_LT(composed[1], composed[0]);
  // ... and that interleaving does not noticeably help noise over uniform
  // (its win is the delay spread): within a few percent in both views.
  EXPECT_NEAR(mna[2] / mna[0], 1.0, 0.08);
  EXPECT_NEAR(composed[2] / composed[0], 1.0, 0.08);
}

// ---------------------------------------------------------------------------
// Placement physics (cascaded-MNA ground truth)
// ---------------------------------------------------------------------------

TEST(PlacementPhysics, StaggeredBeatsUniformOppositePhaseAtEqualArea) {
  const auto uniform = spec_for(5, repbus::Placement::kUniform);
  const auto staggered = spec_for(5, repbus::Placement::kStaggered);
  ASSERT_DOUBLE_EQ(repbus::repeater_area(uniform), repbus::repeater_area(staggered));
  const auto u =
      repbus::simulate_bus_chain(uniform, core::SwitchingPattern::kOppositePhase);
  const auto s =
      repbus::simulate_bus_chain(staggered, core::SwitchingPattern::kOppositePhase);
  EXPECT_LT(*s.victim_delay_50, *u.victim_delay_50);
}

TEST(PlacementPhysics, InterleavedCollapsesThePatternSpread) {
  // Inverting alternate lines make every pattern see ~half fast and half
  // slow stages: the same/opposite spread collapses and the worst case
  // improves substantially over uniform.
  const auto uniform = spec_for(5, repbus::Placement::kUniform);
  const auto interleaved = spec_for(5, repbus::Placement::kInterleaved);
  const double u_same =
      *repbus::simulate_bus_chain(uniform, core::SwitchingPattern::kSamePhase)
           .victim_delay_50;
  const double u_opp =
      *repbus::simulate_bus_chain(uniform, core::SwitchingPattern::kOppositePhase)
           .victim_delay_50;
  const double i_same =
      *repbus::simulate_bus_chain(interleaved, core::SwitchingPattern::kSamePhase)
           .victim_delay_50;
  const double i_opp =
      *repbus::simulate_bus_chain(interleaved,
                                  core::SwitchingPattern::kOppositePhase)
           .victim_delay_50;
  EXPECT_LT(std::fabs(i_opp - i_same), 0.2 * std::fabs(u_opp - u_same));
  EXPECT_LT(std::max(i_same, i_opp), std::max(u_same, u_opp));
}

TEST(PlacementPhysics, ShieldingQuenchesChainNoise) {
  auto spec = spec_for(5, repbus::Placement::kUniform);
  const double bare =
      repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim)
          .peak_noise;
  spec.shield_every = 1;  // every neighbor grounded
  const double shielded =
      repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim)
          .peak_noise;
  EXPECT_LT(shielded, 0.2 * bare);
}

// ---------------------------------------------------------------------------
// Optimizer
// ---------------------------------------------------------------------------

TEST(BusOptimizer, StaggeredNoWorseThanUniformAndFrontierSane) {
  const tline::CoupledBus bus = tline::make_bus(5, kLine, 0.4, 0.25);
  repbus::OptimizerOptions options;
  options.sizes = {32.0};
  options.sections = {4};
  options.placements = {repbus::Placement::kUniform, repbus::Placement::kStaggered,
                        repbus::Placement::kInterleaved};
  const sweep::SweepEngine engine;
  const auto result = repbus::optimize_bus_repeaters(bus, kBuf, options, engine);
  ASSERT_EQ(result.evaluations.size(), 3u);
  const auto& uniform = result.evaluations[0];
  const auto& staggered = result.evaluations[1];
  const auto& interleaved = result.evaluations[2];
  ASSERT_EQ(uniform.placement, repbus::Placement::kUniform);
  ASSERT_EQ(staggered.placement, repbus::Placement::kStaggered);
  // Optimizer smoke gate: at equal area, staggered never loses to uniform
  // on worst-case delay, and beats it on noise.
  EXPECT_DOUBLE_EQ(staggered.area, uniform.area);
  EXPECT_LE(staggered.worst_delay, uniform.worst_delay);
  EXPECT_LT(staggered.noise, uniform.noise);
  // Interleaved is the worst-case-delay winner at this corner.
  EXPECT_LT(interleaved.worst_delay, uniform.worst_delay);
  // The frontier contains the best point and no dominated duplicates.
  ASSERT_TRUE(result.best.has_value());
  EXPECT_FALSE(result.frontier.empty());
  // Isolated reference comes from the paper's closed forms.
  EXPECT_NEAR(result.isolated_design.size, 32.1, 0.5);
  EXPECT_NEAR(result.isolated_design.sections, 3.67, 0.05);
}

TEST(BusOptimizer, NoiseCapSelectsQuieterPlacement) {
  const tline::CoupledBus bus = tline::make_bus(5, kLine, 0.4, 0.25);
  repbus::OptimizerOptions options;
  options.sizes = {32.0};
  options.sections = {4};
  // Uniform vs staggered only: the cap below separates exactly those two.
  options.placements = {repbus::Placement::kUniform, repbus::Placement::kStaggered};
  const sweep::SweepEngine engine;
  const auto unconstrained =
      repbus::optimize_bus_repeaters(bus, kBuf, options, engine);
  ASSERT_TRUE(unconstrained.best.has_value());
  // Cap the noise just below the uniform/interleaved level: only staggered
  // stays feasible.
  double uniform_noise = 0.0, staggered_noise = 0.0;
  for (const auto& eval : unconstrained.evaluations) {
    if (eval.placement == repbus::Placement::kUniform) uniform_noise = eval.noise;
    if (eval.placement == repbus::Placement::kStaggered)
      staggered_noise = eval.noise;
  }
  ASSERT_LT(staggered_noise, uniform_noise);
  options.noise_cap = 0.5 * (staggered_noise + uniform_noise) < uniform_noise
                          ? 0.5 * (staggered_noise + uniform_noise)
                          : staggered_noise;
  const auto capped = repbus::optimize_bus_repeaters(bus, kBuf, options, engine);
  ASSERT_TRUE(capped.best.has_value());
  EXPECT_EQ(capped.best->placement, repbus::Placement::kStaggered);
  // An impossible cap leaves no feasible point.
  options.noise_cap = 1e-6;
  const auto infeasible = repbus::optimize_bus_repeaters(bus, kBuf, options, engine);
  EXPECT_FALSE(infeasible.best.has_value());
}

TEST(BusOptimizer, DeterministicAcrossThreadCounts) {
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.3, 0.2);
  repbus::OptimizerOptions options;
  options.sizes = {24.0, 32.0};
  options.sections = {3, 4};
  options.placements = {repbus::Placement::kUniform, repbus::Placement::kStaggered};
  std::vector<double> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sweep::EngineOptions engine_options;
    engine_options.threads = threads;
    const sweep::SweepEngine engine(engine_options);
    const auto result = repbus::optimize_bus_repeaters(bus, kBuf, options, engine);
    std::vector<double> values;
    for (const auto& eval : result.evaluations) {
      values.push_back(eval.worst_delay);
      values.push_back(eval.noise);
    }
    if (reference.empty())
      reference = values;
    else
      EXPECT_EQ(values, reference);  // bit-identical at any thread count
  }
}

// ---------------------------------------------------------------------------
// Sweep-engine wiring
// ---------------------------------------------------------------------------

TEST(RepbusSweep, StaggerModeAxisAndAnalyses) {
  sweep::SweepSpec spec;
  spec.base.system = {100.0, kLine, 50e-15};
  spec.base.buffer = kBuf;
  spec.base.design = {32.0, 4.0};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.cc_ratio = 0.4;
  spec.base.xtalk.lm_ratio = 0.25;
  spec.base.xtalk.pattern = core::SwitchingPattern::kOppositePhase;
  spec.axes = {sweep::values(sweep::Variable::kStaggerMode, {0.0, 1.0, 2.0})};

  sweep::EngineOptions options;
  options.segments = 12;
  const sweep::SweepEngine engine(options);
  const sweep::SweepResult delays =
      engine.run(spec, sweep::Analysis::kBusRepeaterDelay);
  const sweep::SweepResult noises =
      engine.run(spec, sweep::Analysis::kBusRepeaterNoise);
  ASSERT_EQ(delays.values.size(), 3u);
  for (double v : delays.values) EXPECT_TRUE(std::isfinite(v) && v > 0.0);
  for (double v : noises.values) EXPECT_TRUE(std::isfinite(v) && v >= 0.0);
  // Composed values match direct compose_bus_chain calls.
  repbus::RepeaterBusSpec direct;
  direct.bus = tline::make_bus(3, kLine, 0.4, 0.25);
  direct.sections = 4;
  direct.size = 32.0;
  direct.buffer = kBuf;
  direct.segments_per_section = 12;
  const auto composed = repbus::compose_bus_chain(
      direct, core::SwitchingPattern::kOppositePhase, 4);
  EXPECT_DOUBLE_EQ(delays.values[0], *composed.victim_delay_50);
  // Bad axis values are rejected up front...
  spec.axes = {sweep::values(sweep::Variable::kStaggerMode, {3.0})};
  EXPECT_THROW(engine.run(spec, sweep::Analysis::kBusRepeaterDelay),
               std::invalid_argument);
  // ... and so is a bad BASE-scenario stagger_mode (no silent kUniform).
  spec.axes.clear();
  spec.base.xtalk.stagger_mode = 3;
  EXPECT_THROW(engine.run(spec, sweep::Analysis::kBusRepeaterDelay),
               std::invalid_argument);
  // Mismatched prebuilt models are rejected, not mis-composed.
  const auto models = repbus::build_stage_models(direct, 4);
  repbus::RepeaterBusSpec other = direct;
  other.sections = 8;
  EXPECT_THROW(
      repbus::compose_bus_chain(other, core::SwitchingPattern::kSamePhase, models),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Glitch propagation on a quiet line (regression: silently missing firings)
// ---------------------------------------------------------------------------

// A quiet line's armed repeaters CAN fire on coupled noise alone — and when
// they do, the reported "noise" is a full-rail glitched net, not a bump. The
// pre-fix chains evaluated this correctly but REPORTED nothing: the metrics
// carried only peak_noise, so a fired quiet-line repeater was
// indistinguishable from a benign excursion. These pin the recording.
TEST(GlitchPropagation, QuietArmedBuffersFireOnCoupledNoise) {
  // Strong coupling (Cc/Ct = 3.0, Lm/Lt = 0.45 — a dense minimum-pitch bus),
  // sharp repeater edges, moderate sizing: the victim's section noise lands
  // above vdd/2 at every interior boundary, so the quiet-armed repeaters
  // fire and regenerate the glitch down the whole chain.
  repbus::RepeaterBusSpec spec;
  spec.bus = tline::make_bus(5, kLine, /*cc_ratio=*/3.0, /*lm_ratio=*/0.45);
  spec.sections = 4;
  spec.size = 16.0;
  spec.buffer = kBuf;
  spec.segments_per_section = 10;
  spec.buffer_rise = 1e-12;

  const repbus::ChainMetrics mna =
      repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim);
  EXPECT_TRUE(mna.glitch_fired);
  EXPECT_EQ(mna.glitch_depth, 3);
  EXPECT_EQ(mna.glitch_boundaries, (std::vector<int>{1, 2, 3}));
  // A fired chain means the receiver sees (essentially) the full rail.
  EXPECT_GT(mna.peak_noise, 0.9);

  const repbus::ComposedChainMetrics composed =
      repbus::compose_bus_chain(spec, core::SwitchingPattern::kQuietVictim, 4);
  EXPECT_EQ(composed.glitch_fired, mna.glitch_fired);
  EXPECT_EQ(composed.glitch_depth, mna.glitch_depth);
  EXPECT_EQ(composed.glitch_boundaries, mna.glitch_boundaries);
  EXPECT_GT(composed.peak_noise, 0.9);
}

TEST(GlitchPropagation, BenignCouplingReportsNoGlitch) {
  // The standard Cc/Ct = 0.4 bus: quiet-victim noise stays well below the
  // repeater threshold, and BOTH paths must say so.
  const auto spec = spec_for(5, repbus::Placement::kUniform);
  const repbus::ChainMetrics mna =
      repbus::simulate_bus_chain(spec, core::SwitchingPattern::kQuietVictim);
  EXPECT_FALSE(mna.glitch_fired);
  EXPECT_EQ(mna.glitch_depth, 0);
  EXPECT_TRUE(mna.glitch_boundaries.empty());

  const repbus::ComposedChainMetrics composed =
      repbus::compose_bus_chain(spec, core::SwitchingPattern::kQuietVictim, 4);
  EXPECT_FALSE(composed.glitch_fired);
  EXPECT_EQ(composed.glitch_depth, 0);
  EXPECT_TRUE(composed.glitch_boundaries.empty());
}

TEST(RepbusSweep, DeterministicAcrossThreadCounts) {
  sweep::SweepSpec spec;
  spec.base.system = {100.0, kLine, 50e-15};
  spec.base.buffer = kBuf;
  spec.base.design = {32.0, 3.0};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.pattern = core::SwitchingPattern::kOppositePhase;
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.1, 0.5, 3),
      sweep::linspace(sweep::Variable::kMutualRatio, 0.05, 0.25, 2),
      sweep::values(sweep::Variable::kStaggerMode, {0.0, 2.0}),
  };
  std::vector<double> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sweep::EngineOptions options;
    options.threads = threads;
    options.segments = 10;
    const sweep::SweepEngine engine(options);
    const auto result = engine.run(spec, sweep::Analysis::kBusRepeaterDelay);
    if (reference.empty())
      reference = result.values;
    else
      EXPECT_EQ(result.values, reference);
  }
}

}  // namespace
