// Mutual inductance and coupled-line (crosstalk) tests.
#include <cmath>

#include <gtest/gtest.h>

#include "sim/builders.h"
#include "sim/netlist_parser.h"
#include "sim/transient.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::sim;

TEST(Mutual, Validation) {
  Circuit c;
  c.add_voltage_source("a", "0", DcSpec{0.0}, "v");
  c.add_inductor("a", "0", 1e-9, 0.0, "L1");
  c.add_inductor("b", "0", 1e-9, 0.0, "L2");
  c.add_resistor("b", "0", 1.0);
  EXPECT_THROW(c.add_mutual("L1", "Lx", 0.5), std::invalid_argument);
  EXPECT_THROW(c.add_mutual("L1", "L1", 0.5), std::invalid_argument);
  EXPECT_THROW(c.add_mutual("L1", "L2", 1.0), std::invalid_argument);
  EXPECT_THROW(c.add_mutual("L1", "L2", -0.1), std::invalid_argument);
  EXPECT_NO_THROW(c.add_mutual("L1", "L2", 0.5, "K1"));
  EXPECT_DOUBLE_EQ(c.mutuals()[0].mutual, 0.5e-9);
}

TEST(Mutual, TransientTransformerInducesSecondaryKick) {
  // Step into L1 (through R); the coupled L2 (loaded by R2) sees an induced
  // voltage pulse proportional to k.
  const auto peak_for = [](double k) {
    Circuit c;
    c.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0}, "v");
    c.add_resistor("in", "p", 50.0);
    c.add_inductor("p", "0", 10e-9, 0.0, "L1");
    c.add_inductor("s", "0", 10e-9, 0.0, "L2");
    c.add_resistor("s", "0", 50.0, "r2");
    if (k > 0.0) c.add_mutual("L1", "L2", k, "K");
    TransientOptions opt;
    opt.t_stop = 2e-9;
    opt.dt = 0.5e-12;
    const auto result = run_transient(c, opt);
    const Trace s = result.waveforms.trace("s");
    return std::max(std::fabs(s.max_value()), std::fabs(s.min_value()));
  };
  const double quiet = peak_for(0.0);
  const double weak = peak_for(0.2);
  const double strong = peak_for(0.6);
  EXPECT_LT(quiet, 1e-9);
  EXPECT_GT(weak, 0.01);
  EXPECT_GT(strong, 2.0 * weak);
}

TEST(Mutual, EnergyConservedInLosslessCoupledPair) {
  // With k < 1 the inductance matrix is positive definite; the response of
  // a passive coupled pair must stay bounded (no numerical energy creation).
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0}, "v");
  c.add_resistor("in", "p", 10.0);
  c.add_inductor("p", "m", 5e-9, 0.0, "L1");
  c.add_capacitor("m", "0", 1e-12);
  c.add_inductor("q", "n", 5e-9, 0.0, "L2");
  c.add_capacitor("n", "0", 1e-12);
  c.add_resistor("q", "0", 10.0);
  c.add_mutual("L1", "L2", 0.8, "K");
  TransientOptions opt;
  opt.t_stop = 20e-9;
  opt.dt = 2e-12;
  const auto result = run_transient(c, opt);
  for (const auto& node : {"m", "n"}) {
    const Trace t = result.waveforms.trace(node);
    EXPECT_LT(t.max_value(), 2.5) << node;
    EXPECT_GT(t.min_value(), -2.5) << node;
  }
}

TEST(Coupling, ParserReadsKElement) {
  const auto parsed = parse_netlist(R"(
V1 in 0 STEP(0 1 0)
R1 in a 50
L1 a 0 1n
L2 b 0 1n
R2 b 0 50
K1 L1 L2 0.3
)");
  ASSERT_EQ(parsed.circuit.mutuals().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.circuit.mutuals()[0].coupling, 0.3);
  EXPECT_THROW(parse_netlist("K1 L1 L2 0.5\n"), ParseError);  // unknown inductors
}

TEST(Crosstalk, CouplingMechanismsAndFarEndCancellation) {
  CoupledLinesSpec spec;
  spec.line = {100.0, 5e-9, 1e-12};
  spec.segments = 20;

  spec.coupling_capacitance = 0.0;
  spec.inductive_k = 0.0;
  const double none = simulate_crosstalk_peak(spec, 100.0, 50e-15);

  spec.coupling_capacitance = 0.3e-12;
  const double capacitive = simulate_crosstalk_peak(spec, 100.0, 50e-15);

  spec.coupling_capacitance = 0.0;
  spec.inductive_k = 0.4;
  const double inductive = simulate_crosstalk_peak(spec, 100.0, 50e-15);

  spec.coupling_capacitance = 0.3e-12;
  const double both = simulate_crosstalk_peak(spec, 100.0, 50e-15);

  EXPECT_LT(none, 1e-6);
  EXPECT_GT(capacitive, 0.01);
  EXPECT_GT(inductive, 0.01);
  // The classic far-end-crosstalk fact: capacitive and inductive coupling
  // inject opposite-polarity noise at the far end and partially cancel.
  EXPECT_LT(both, capacitive + inductive);
  EXPECT_LT(both, 1.0);  // bounded by the supply
}

TEST(Crosstalk, BuilderStructure) {
  CoupledLinesSpec spec;
  spec.line = {100.0, 5e-9, 1e-12};
  spec.segments = 8;
  spec.coupling_capacitance = 0.2e-12;
  spec.inductive_k = 0.3;
  const Circuit c = build_crosstalk_pair(spec, 100.0, 50e-15);
  EXPECT_EQ(c.inductors().size(), 16u);
  EXPECT_EQ(c.mutuals().size(), 8u);
  EXPECT_NO_THROW(c.validate());
  // Total coupling capacitance preserved (pair elements are named
  // "<prefix>.p<pair>.cc<segment>" by add_coupled_bus).
  double cc = 0.0;
  for (const auto& cap : c.capacitors())
    if (cap.name.rfind("xt.p0.cc", 0) == 0) cc += cap.capacitance;
  EXPECT_NEAR(cc, 0.2e-12, 1e-20);
}

TEST(Crosstalk, Validation) {
  CoupledLinesSpec spec;
  spec.line = {100.0, 5e-9, 1e-12};
  spec.segments = 0;
  Circuit c;
  EXPECT_THROW(add_coupled_lines(c, "x", "a", "b", "c", "d", spec),
               std::invalid_argument);
  spec.segments = 4;
  spec.coupling_capacitance = -1.0;
  EXPECT_THROW(add_coupled_lines(c, "x", "a", "b", "c", "d", spec),
               std::invalid_argument);
  spec.coupling_capacitance = 0.0;
  EXPECT_THROW(build_crosstalk_pair(spec, 0.0, 1e-15), std::invalid_argument);
}

}  // namespace
