// Observability subsystem: registry aggregation, histogram math, Chrome
// trace export, and the thread-pool accounting invariant.
//
// The contract under test is README "Observability": telemetry is
// write-only (nothing here feeds compute), per-thread shards aggregate to
// the same totals a single thread would produce, histogram percentiles are
// hand-computable from the power-of-two bucket shape, and the trace file is
// valid, well-nested Chrome trace-event JSON.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "numeric/sparse.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"

namespace {

using namespace rlcsim;

std::uint64_t counter_of(const obs::MetricsSnapshot& snap,
                         const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0u : it->second;
}

// ------------------------------------------------------------ aggregation

TEST(ObsRegistry, CrossThreadAggregationEqualsSingleThreadTotal) {
  const obs::Counter parallel_counter("test.obs.cross_thread");
  const obs::Counter serial_counter("test.obs.single_thread");
  const std::uint64_t parallel_before = parallel_counter.total();
  const std::uint64_t serial_before = serial_counter.total();

  constexpr std::size_t kItems = 1024;
  constexpr std::uint64_t kPerItem = 3;

  runtime::ThreadPool pool(4);
  pool.parallel_for(kItems, [&](std::size_t, std::size_t) {
    parallel_counter.add_always(kPerItem);
  });
  for (std::size_t i = 0; i < kItems; ++i) serial_counter.add_always(kPerItem);

  // However the items landed on shards, the aggregate is the serial total.
  EXPECT_EQ(parallel_counter.total() - parallel_before, kItems * kPerItem);
  EXPECT_EQ(parallel_counter.total() - parallel_before,
            serial_counter.total() - serial_before);
}

TEST(ObsRegistry, SnapshotAndJsonCarryRegisteredCounters) {
  const obs::Counter counter("test.obs.json_counter");
  counter.add_always(3);
  const obs::MetricsSnapshot snap = obs::snapshot();
  EXPECT_GE(counter_of(snap, "test.obs.json_counter"), 3u);

  const std::string json = obs::metrics_json();
  EXPECT_NE(json.find("\"test.obs.json_counter\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

// ---------------------------------------------------------- histogram math

TEST(ObsHistogram, BucketShapeIsThePinnedPowerOfTwoLadder) {
  // bucket b >= 1 covers [2^(b-32), 2^(b-31)); bucket 32 is [1, 2).
  EXPECT_EQ(obs::histogram_bucket_of(1.0), 32u);
  EXPECT_EQ(obs::histogram_bucket_of(1.5), 32u);
  EXPECT_EQ(obs::histogram_bucket_of(2.0), 33u);
  EXPECT_EQ(obs::histogram_bucket_of(3.0), 33u);
  EXPECT_EQ(obs::histogram_bucket_of(0.5), 31u);
  // Bucket 0 collects zero, negatives, NaN, and underflow.
  EXPECT_EQ(obs::histogram_bucket_of(0.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_of(-7.0), 0u);
  EXPECT_EQ(obs::histogram_bucket_of(std::nan("")), 0u);
  // Overflow clamps to the top bucket.
  EXPECT_EQ(obs::histogram_bucket_of(1e300), 63u);
  EXPECT_DOUBLE_EQ(obs::histogram_bucket_upper_bound(32), 2.0);
  EXPECT_DOUBLE_EQ(obs::histogram_bucket_upper_bound(33), 4.0);
  // Lower bounds: the previous bucket's upper bound, except bucket 0 (the
  // zero/negative/underflow sink) whose conceptual lower bound is 0.
  EXPECT_DOUBLE_EQ(obs::histogram_bucket_lower_bound(32), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_bucket_lower_bound(33), 2.0);
  EXPECT_DOUBLE_EQ(obs::histogram_bucket_lower_bound(0), 0.0);
}

TEST(ObsHistogram, PercentilesMatchHandComputedGolden) {
  if (!obs::metrics_enabled())
    GTEST_SKIP() << "RLCSIM_METRICS=0 in this environment";
  const obs::Histogram hist("test.obs.percentile_golden");
  // {1, 1, 1, 1, 3}: four values in bucket 32 ([1, 2)), one in bucket 33
  // ([2, 4)).
  for (int i = 0; i < 4; ++i) hist.record(1.0);
  hist.record(3.0);

  const obs::HistogramSnapshot snap = hist.total();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 7.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 3.0);
  // p50: rank ceil(0.5 * 5) = 3, the 3rd of bucket 32's four occupants ->
  // log-interpolated 1 * 2^(3/4).
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), std::pow(2.0, 0.75));
  // p99: rank 5 fills bucket 33 -> 2 * 2^1 = 4, clamped to the exact
  // max 3.0 (the old upper-bound answer was 4.0 — a 33% overstatement).
  EXPECT_DOUBLE_EQ(snap.percentile(99.0), 3.0);
  // Rank clamps to [1, count]: p0 interpolates the first occupant of
  // bucket 32 (1 * 2^(1/4)), p100 clamps to the exact max.
  EXPECT_DOUBLE_EQ(snap.percentile(0.0), std::pow(2.0, 0.25));
  EXPECT_DOUBLE_EQ(snap.percentile(100.0), 3.0);
}

TEST(ObsHistogram, PercentileInterpolationStaysInsideObservedRange) {
  if (!obs::metrics_enabled())
    GTEST_SKIP() << "RLCSIM_METRICS=0 in this environment";
  // One value, recorded once: every percentile must report exactly it.
  // The pre-interpolation behavior returned the bucket upper bound 2.0 for
  // a lone 1.1 — the ~2x overstatement the perfkit comparator cares about.
  const obs::Histogram hist("test.obs.percentile_single");
  hist.record(1.1);
  const obs::HistogramSnapshot snap = hist.total();
  EXPECT_DOUBLE_EQ(snap.percentile(50.0), 1.1);
  EXPECT_DOUBLE_EQ(snap.percentile(99.0), 1.1);

  // Values in bucket 0 report the exact observed minimum.
  const obs::Histogram zeros("test.obs.percentile_zeros");
  zeros.record(0.0);
  zeros.record(0.0);
  EXPECT_DOUBLE_EQ(zeros.total().percentile(50.0), 0.0);
}

TEST(ObsHistogram, EmptySnapshotReportsZero) {
  const obs::HistogramSnapshot empty;
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
}

// ------------------------------------------------ name-keyed aggregation

TEST(ObsRegistry, NameKeyedTotalsMatchHandleTotals) {
  const obs::Counter counter("test.obs.named_counter");
  counter.add_always(5);
  const auto by_name = obs::counter_total("test.obs.named_counter");
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(*by_name, counter.total());
  EXPECT_FALSE(obs::counter_total("test.obs.never_registered").has_value());

  if (!obs::metrics_enabled())
    GTEST_SKIP() << "RLCSIM_METRICS=0 in this environment";
  const obs::Histogram hist("test.obs.named_histogram");
  hist.record(2.5);
  const auto hist_by_name = obs::histogram_total("test.obs.named_histogram");
  ASSERT_TRUE(hist_by_name.has_value());
  EXPECT_EQ(hist_by_name->count, hist.total().count);
  EXPECT_DOUBLE_EQ(hist_by_name->sum, hist.total().sum);
  EXPECT_FALSE(obs::histogram_total("test.obs.never_registered").has_value());
}

// ------------------------------------------------------------ trace export

struct ParsedEvent {
  std::string name;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  long long tid = 0;
  std::string line;
};

// Pulls every trace event out of the one-event-per-line JSON body.
std::vector<ParsedEvent> parse_events(const std::string& text) {
  std::vector<ParsedEvent> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    const std::size_t name_key = line.find("\"name\":\"");
    if (name_key == std::string::npos) continue;
    ParsedEvent event;
    event.line = line;
    const std::size_t name_start = name_key + 8;
    event.name = line.substr(name_start, line.find('"', name_start) - name_start);
    event.ts = std::stod(line.substr(line.find("\"ts\":") + 5));
    event.dur = std::stod(line.substr(line.find("\"dur\":") + 6));
    event.tid = std::stoll(line.substr(line.find("\"tid\":") + 6));
    out.push_back(event);
  }
  return out;
}

TEST(ObsTrace, FileIsValidWellNestedChromeTraceJson) {
  obs::end_trace();  // make sure no earlier trace is active
  const std::string path = testing::TempDir() + "rlcsim_obs_trace_test.json";
  obs::begin_trace(path);
  {
    obs::ScopedSpan outer("test.obs.outer");
    { obs::ScopedSpan inner("test.obs.inner", 7); }
    { obs::ScopedSpan inner("test.obs.inner", 8); }
  }
  obs::end_trace();

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Structurally valid JSON document in the Chrome trace-event shape.
  EXPECT_EQ(text.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find("\n]}\n"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));

  const std::vector<ParsedEvent> events = parse_events(text);
  ParsedEvent outer;
  std::vector<ParsedEvent> inners;
  for (const ParsedEvent& event : events) {
    EXPECT_NE(event.line.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(event.line.find("\"cat\":\"rlcsim\""), std::string::npos);
    if (event.name == "test.obs.outer") outer = event;
    if (event.name == "test.obs.inner") inners.push_back(event);
  }
  ASSERT_EQ(outer.name, "test.obs.outer");
  ASSERT_EQ(inners.size(), 2u);
  for (const ParsedEvent& inner : inners) {
    // Both inner spans are strictly contained in the outer span.
    EXPECT_EQ(inner.tid, outer.tid);
    EXPECT_GE(inner.ts, outer.ts);
    EXPECT_LE(inner.ts + inner.dur, outer.ts + outer.dur);
  }
  // The integer span arg exports as args.n.
  EXPECT_NE(inners[0].line.find("\"args\":{\"n\":7}"), std::string::npos);
  EXPECT_NE(inners[1].line.find("\"args\":{\"n\":8}"), std::string::npos);
  // And siblings do not overlap (the two inner spans are sequential).
  const ParsedEvent& a = inners[0];
  const ParsedEvent& b = inners[1];
  EXPECT_TRUE(a.ts + a.dur <= b.ts || b.ts + b.dur <= a.ts);

  std::remove(path.c_str());
}

TEST(ObsTrace, BadPathThrowsNamingTheKnobAndPath) {
  obs::end_trace();
  const std::string bad = "/nonexistent_rlcsim_dir/trace.json";
  try {
    obs::begin_trace(bad);
    FAIL() << "expected std::invalid_argument for unwritable trace path";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("RLCSIM_TRACE"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find(bad), std::string::npos);
  }
  // The failed begin must leave tracing inactive.
  EXPECT_FALSE(obs::trace_active());
}

TEST(ObsTrace, DoubleBeginThrowsLogicError) {
  obs::end_trace();
  const std::string path = testing::TempDir() + "rlcsim_obs_trace_twice.json";
  obs::begin_trace(path);
  EXPECT_THROW(obs::begin_trace(path), std::logic_error);
  obs::end_trace();
  std::remove(path.c_str());
}

// ------------------------------------------------- thread-pool accounting

TEST(ObsPool, TasksExecutedSumsToTasksSubmitted) {
  if (!obs::metrics_enabled())
    GTEST_SKIP() << "RLCSIM_METRICS=0 in this environment";
  const obs::MetricsSnapshot before = obs::snapshot();
  {
    runtime::ThreadPool pool(4);
    pool.parallel_for(64, [&](std::size_t, std::size_t) {
      // Nested parallel_for degrades to the inline path; its tasks must be
      // booked symmetrically too.
      pool.parallel_for(4, [](std::size_t, std::size_t) {});
    });
  }
  const obs::MetricsSnapshot after = obs::snapshot();
  const std::uint64_t submitted =
      counter_of(after, "pool.tasks_submitted") -
      counter_of(before, "pool.tasks_submitted");
  const std::uint64_t executed = counter_of(after, "pool.tasks_executed") -
                                 counter_of(before, "pool.tasks_executed");
  EXPECT_EQ(submitted, executed);
  EXPECT_GE(submitted, 64u + 64u * 4u);
}

// --------------------------------------------- legacy stats view semantics

TEST(ObsLuStats, ViewCopiesFreezeAndLiveViewTracks) {
  numeric::SparseLuStatsView& live = numeric::sparse_lu_stats();
  live = {};  // reset: stores a frozen zero snapshot into this thread's cells
  EXPECT_EQ(static_cast<std::size_t>(live.symbolic), 0u);

  const numeric::SparseLuStatsView frozen_at_zero = live;
  ++live.symbolic;
  live.numeric += 2;

  // The copy froze at the values it was taken at; the live view moved on.
  EXPECT_EQ(static_cast<std::size_t>(frozen_at_zero.symbolic), 0u);
  EXPECT_EQ(static_cast<std::size_t>(live.symbolic), 1u);
  EXPECT_EQ(static_cast<std::size_t>(live.numeric), 2u);

  // Conversion to the plain value struct snapshots the same numbers.
  const numeric::SparseLuStats value = live;
  EXPECT_EQ(value.symbolic, 1u);
  EXPECT_EQ(value.numeric, 2u);
  EXPECT_EQ(value.ejected_lanes, 0u);
  live = {};
}

}  // namespace
