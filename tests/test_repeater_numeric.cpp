#include "core/repeater_numeric.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim;
using namespace rlcsim::core;

TEST(NormalizedOptimum, ApproachesBakogluAsTVanishes) {
  const NormalizedOptimum opt = normalized_optimum(0.05);
  EXPECT_NEAR(opt.h_factor, 1.0, 0.03);
  EXPECT_NEAR(opt.k_factor, 1.0, 0.03);
  EXPECT_THROW(normalized_optimum(0.0), std::invalid_argument);
}

TEST(NormalizedOptimum, FactorsDecreaseWithT) {
  double prev_h = 1.1, prev_k = 1.1;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const NormalizedOptimum opt = normalized_optimum(t);
    EXPECT_LT(opt.h_factor, prev_h) << "T=" << t;
    EXPECT_LT(opt.k_factor, prev_k) << "T=" << t;
    EXPECT_GT(opt.h_factor, 0.0);
    EXPECT_GT(opt.k_factor, 0.0);
    prev_h = opt.h_factor;
    prev_k = opt.k_factor;
  }
}

TEST(NormalizedOptimum, IsActuallyAMinimum) {
  // Perturbing the found optimum in any direction must not reduce the delay.
  const double t = 3.0;
  const NormalizedOptimum opt = normalized_optimum(t);
  const tline::LineParams line{1.0, t, 1.0};
  const MinBuffer buffer{1.0, 1.0, 1.0, 0.0};
  const RepeaterDesign rc = bakoglu_rc(line, buffer);
  const RepeaterDesign best{opt.h_factor * rc.size, opt.k_factor * rc.sections};
  const double d0 = total_delay(line, buffer, best);
  for (double eps : {-0.02, 0.02}) {
    EXPECT_GE(total_delay(line, buffer, {best.size * (1.0 + eps), best.sections}),
              d0 * (1.0 - 1e-9));
    EXPECT_GE(total_delay(line, buffer, {best.size, best.sections * (1.0 + eps)}),
              d0 * (1.0 - 1e-9));
  }
}

TEST(NormalizedOptimum, ScaleInvariance) {
  // The factors must be identical for any physical instantiation with the
  // same T (the appendix's dimensional-analysis claim).
  const NormalizedOptimum norm = normalized_optimum(2.0);

  const tline::LineParams line{450.0, 2.0 * 450.0 * 15e-12, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0, 0.0};
  ASSERT_NEAR(t_lr(line, buffer), 2.0, 1e-9);
  const OptimizedDesign phys = optimize(line, buffer, kPaperFit, 0.0);
  const RepeaterDesign rc = bakoglu_rc(line, buffer);
  EXPECT_NEAR(phys.continuous.size / rc.size, norm.h_factor, 0.01);
  EXPECT_NEAR(phys.continuous.sections / rc.sections, norm.k_factor, 0.01);
}

TEST(Optimize, BeatsClosedFormSeeds) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0, 0.0};
  const OptimizedDesign best = optimize(line, buffer);
  EXPECT_LE(best.continuous_delay,
            total_delay(line, buffer, ismail_friedman_rlc(line, buffer)) * 1.0001);
  EXPECT_LE(best.continuous_delay,
            total_delay(line, buffer, bakoglu_rc(line, buffer)) * 1.0001);
}

TEST(Optimize, PracticalDesignHasIntegerSections) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0, 0.0};
  const OptimizedDesign best = optimize(line, buffer);
  EXPECT_DOUBLE_EQ(best.practical.sections,
                   std::round(best.practical.sections));
  EXPECT_GE(best.practical.sections, 1.0);
  // Rounding costs a little but not much (flat minimum).
  EXPECT_LT(best.practical_delay, best.continuous_delay * 1.05);
}

TEST(RcSizingPenalty, NonnegativeAndGrowing) {
  EXPECT_DOUBLE_EQ(rc_sizing_penalty_percent(0.0), 0.0);
  double prev = -1e-9;
  for (double t : {1.0, 3.0, 6.0, 10.0}) {
    const double p = rc_sizing_penalty_percent(t);
    EXPECT_GE(p, -1e-6) << "T=" << t;
    EXPECT_GT(p, prev) << "T=" << t;
    prev = p;
  }
  // At T = 10 ignoring inductance costs double-digit percent extra delay.
  EXPECT_GT(rc_sizing_penalty_percent(10.0), 8.0);
  EXPECT_THROW(rc_sizing_penalty_percent(-1.0), std::invalid_argument);
}

TEST(ClosedFormExcess, SmallAtModestT) {
  // In the near-RC regime the published closed form is essentially optimal
  // under our objective too (the paper's < 0.05% claim holds there).
  EXPECT_LT(closed_form_excess_delay(0.3), 0.0005);
  EXPECT_LT(closed_form_excess_delay(1.0), 0.01);
  // At larger T our faithful objective and the paper's curves diverge (see
  // EXPERIMENTS.md); the excess grows but stays bounded.
  EXPECT_LT(closed_form_excess_delay(5.0), 0.25);
}

TEST(AreaBudget, UnconstrainedWhenBudgetIsGenerous) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0e-12, 0.0};
  const OptimizedDesign free = optimize(line, buffer);
  const double generous =
      2.0 * repeater_area(buffer, free.continuous);
  const ConstrainedDesign c = optimize_with_area_budget(line, buffer, generous);
  EXPECT_FALSE(c.constraint_active);
  EXPECT_NEAR(c.delay, free.continuous_delay, free.continuous_delay * 1e-6);
}

TEST(AreaBudget, BindingConstraintSitsOnBoundary) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0e-12, 0.0};
  const OptimizedDesign free = optimize(line, buffer);
  const double tight = 0.25 * repeater_area(buffer, free.continuous);
  const ConstrainedDesign c = optimize_with_area_budget(line, buffer, tight);
  EXPECT_TRUE(c.constraint_active);
  EXPECT_NEAR(repeater_area(buffer, c.design), tight, tight * 1e-6);
  EXPECT_GT(c.delay, free.continuous_delay);
}

TEST(AreaBudget, DelayMonotoneInBudget) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0e-12, 0.0};
  const double base = repeater_area(buffer, optimize(line, buffer).continuous);
  double prev = 1e18;
  for (double fraction : {0.1, 0.2, 0.4, 0.8}) {
    const double d = optimize_with_area_budget(line, buffer, fraction * base).delay;
    EXPECT_LT(d, prev) << "fraction=" << fraction;
    prev = d;
  }
}

TEST(AreaBudget, Validation) {
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};
  const MinBuffer buffer{3000.0, 5e-15, 1.0e-12, 0.0};
  EXPECT_THROW(optimize_with_area_budget(line, buffer, 0.0), std::invalid_argument);
  EXPECT_THROW(optimize_with_area_budget(line, buffer, 0.5 * buffer.area),
               std::invalid_argument);
}

TEST(DelayIncreaseEq16, LiteralDefinitionAnchorsDocumented) {
  // The literal eq. (16) with the paper's closed-form sizings, under our
  // reconstruction of the objective. We assert reproducible behavior, not
  // the paper's 10/20/30 anchors (see EXPERIMENTS.md for the analysis).
  const double at3 = delay_increase_percent(3.0);
  const double at5 = delay_increase_percent(5.0);
  EXPECT_LT(std::fabs(at3), 15.0);
  EXPECT_LT(std::fabs(at5), 25.0);
  EXPECT_DOUBLE_EQ(delay_increase_percent(0.0), 0.0);
}

}  // namespace
