// Timing-graph engine (src/graph/): wire-tree stamping, construction
// validation, linear-chain bit-identity against repbus::compose_bus_chain,
// H-tree skew/slew against the cascaded full-MNA oracle, and thread-count
// determinism of the levelized parallel evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "graph/h_tree.h"
#include "graph/timing_graph.h"
#include "repbus/stage_compose.h"
#include "sim/builders.h"
#include "sim/transient.h"

namespace {

using namespace rlcsim;

// The Table-1-derived bench bus (see test_repbus.cpp).
const tline::LineParams kLine{500.0, 1e-8, 1e-12};
const core::MinBuffer kBuf{3000.0, 5e-15, 1.0, 0.0};

repbus::RepeaterBusSpec chain_spec(repbus::Placement placement) {
  repbus::RepeaterBusSpec spec;
  spec.bus = tline::make_bus(5, kLine, 0.4, 0.25);
  spec.sections = 4;
  spec.size = 32.0;
  spec.buffer = kBuf;
  spec.placement = placement;
  spec.segments_per_section = 8;
  return spec;
}

graph::HTreeSpec tree_spec() {
  graph::HTreeSpec spec;
  spec.levels = 4;  // 15 stages, 16 sinks
  spec.root_line = {150.0, 5e-10, 3e-13};
  spec.taper = 0.6;
  spec.buffer = kBuf;
  spec.size = 32.0;
  spec.source_rise = 2e-11;
  spec.segments_per_branch = 5;
  spec.sink_capacitance = 2e-14;
  spec.sink_imbalance = 0.15;
  spec.order = 4;
  return spec;
}

// Exact equality, field by field — the embedding must not perturb one bit.
void expect_chain_identical(const repbus::ComposedChainMetrics& a,
                            const repbus::ComposedChainMetrics& b) {
  ASSERT_EQ(a.victim_delay_50.has_value(), b.victim_delay_50.has_value());
  if (a.victim_delay_50) {
    EXPECT_EQ(*a.victim_delay_50, *b.victim_delay_50);
  }
  EXPECT_EQ(a.peak_noise, b.peak_noise);
  EXPECT_EQ(a.victim_fire_times, b.victim_fire_times);
  EXPECT_EQ(a.glitch_fired, b.glitch_fired);
  EXPECT_EQ(a.glitch_depth, b.glitch_depth);
  EXPECT_EQ(a.glitch_boundaries, b.glitch_boundaries);
}

// ---------------------------------------------------------------------------
// Wire-tree stamping (the per-element topology refactor under the graph)
// ---------------------------------------------------------------------------

TEST(WireTree, SingleBranchMatchesLadder) {
  // A one-branch tree IS a ladder: same element stamping order, same values,
  // so the transient responses agree to the last bit.
  const tline::LineParams line{300.0, 2e-9, 4e-13};
  auto build = [&](bool as_tree) {
    sim::Circuit circuit;
    circuit.add_voltage_source("in", "0", sim::StepSpec{0.0, 1.0, 0.0, 0.0},
                               "v");
    circuit.add_resistor("in", "drv", 150.0, "r");
    if (as_tree) {
      sim::WireTree tree;
      tree.branches.push_back({-1, line, 8, 3e-14});
      std::vector<std::string> ends;
      sim::add_wire_tree(circuit, "w", "drv", tree, &ends);
      return std::make_pair(circuit, ends[0]);
    }
    sim::add_rlc_ladder(circuit, "w.b0", "drv", "w.b0.end", line, 8);
    circuit.add_capacitor("w.b0.end", "0", 3e-14, 0.0, "w.b0.cs");
    return std::make_pair(circuit, std::string("w.b0.end"));
  };
  const auto [ladder, ladder_end] = build(false);
  const auto [tree, tree_end] = build(true);
  sim::TransientOptions options;
  options.t_stop = 5e-9;
  const auto a = sim::run_transient(ladder, options);
  const auto b = sim::run_transient(tree, options);
  const sim::Trace ta = a.waveforms.trace(ladder_end);
  const sim::Trace tb = b.waveforms.trace(tree_end);
  const auto& va = ta.value();
  const auto& vb = tb.value();
  ASSERT_EQ(va.size(), vb.size());
  EXPECT_EQ(std::memcmp(va.data(), vb.data(), va.size() * sizeof(double)), 0);
}

TEST(WireTree, BranchPointSplitsTheResponse) {
  // A 3-branch Y: both arm ends settle to vdd, and the (identical) arms
  // agree with each other exactly while lagging the branch point.
  const tline::LineParams line{200.0, 1e-9, 2e-13};
  sim::Circuit circuit;
  circuit.add_voltage_source("in", "0", sim::StepSpec{0.0, 1.0, 0.0, 0.0}, "v");
  circuit.add_resistor("in", "drv", 100.0, "r");
  sim::WireTree tree;
  tree.branches.push_back({-1, line, 6, 0.0});
  tree.branches.push_back({0, line, 6, 2e-14});
  tree.branches.push_back({0, line, 6, 2e-14});
  std::vector<std::string> ends;
  sim::add_wire_tree(circuit, "y", "drv", tree, &ends);
  ASSERT_EQ(ends.size(), 3u);
  sim::TransientOptions options;
  options.t_stop = 10e-9;
  const auto result = sim::run_transient(circuit, options);
  const auto trunk = result.waveforms.trace(ends[0]);
  const auto left = result.waveforms.trace(ends[1]);
  const auto right = result.waveforms.trace(ends[2]);
  EXPECT_NEAR(left.final_value(), 1.0, 1e-3);
  const double t_trunk = *trunk.crossing(0.5, 0.0, +1);
  const double t_left = *left.crossing(0.5, 0.0, +1);
  EXPECT_GT(t_left, t_trunk);
  // Symmetric arms agree to solver precision (row order differs per branch).
  EXPECT_NEAR(t_left, *right.crossing(0.5, 0.0, +1), 1e-6 * t_left);
}

TEST(WireTree, ValidationRejectsBadTrees) {
  const tline::LineParams line{100.0, 0.0, 1e-13};
  sim::WireTree tree;
  EXPECT_THROW(sim::validate(tree), std::invalid_argument);  // empty
  tree.branches.push_back({0, line, 4, 0.0});  // parent must precede: self
  EXPECT_THROW(sim::validate(tree), std::invalid_argument);
  tree.branches[0].parent = -1;
  EXPECT_NO_THROW(sim::validate(tree));
  tree.branches.push_back({2, line, 4, 0.0});  // forward reference
  EXPECT_THROW(sim::validate(tree), std::invalid_argument);
  tree.branches[1].parent = 0;
  tree.branches[1].segments = 0;
  EXPECT_THROW(sim::validate(tree), std::invalid_argument);
  tree.branches[1].segments = 4;
  tree.branches[1].sink_capacitance = -1e-15;
  EXPECT_THROW(sim::validate(tree), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Graph construction validation
// ---------------------------------------------------------------------------

graph::StageModel tiny_stage_model() {
  sim::Circuit circuit;
  circuit.add_voltage_source("in", "0", sim::DcSpec{0.0}, "v");
  circuit.add_resistor("in", "drv", 100.0, "r");
  sim::add_rlc_ladder(circuit, "w", "drv", "out", {200.0, 1e-9, 2e-13}, 6);
  return graph::reduce_stage(circuit, {"out"}, 3, 1e-10);
}

TEST(TimingGraph, DagByConstructionRejectsForwardFanin) {
  graph::TimingGraph g;
  graph::StageNode node;
  node.model = tiny_stage_model();
  node.fanin = {0, 0};  // no node 0 yet: cycles are unrepresentable
  EXPECT_THROW(g.add_stage(node), std::invalid_argument);
  node.fanin = {-1, 0};
  const int first = g.add_stage(node);
  EXPECT_EQ(first, 0);
  node.fanin = {0, 1};  // node 0 has a single output
  EXPECT_THROW(g.add_stage(node), std::invalid_argument);
  node.fanin = {0, 0};
  EXPECT_EQ(g.add_stage(node), 1);
  node.pre = node.post = 0.5;  // a non-transition is not a stage
  EXPECT_THROW(g.add_stage(node), std::invalid_argument);
}

TEST(TimingGraph, ReduceStageRejectsNonSingleDriverCircuits) {
  sim::Circuit circuit;
  circuit.add_voltage_source("in", "0", sim::DcSpec{0.0}, "v");
  circuit.add_resistor("in", "out", 100.0, "r");
  circuit.add_capacitor("out", "0", 1e-13, 0.0, "c");
  EXPECT_NO_THROW(graph::reduce_stage(circuit, {"out"}, 2, 0.0));
  EXPECT_THROW(graph::reduce_stage(circuit, {"out"}, 0, 0.0),
               std::invalid_argument);
  sim::Circuit buffered = circuit;
  buffered.add_buffer("out", "b", 100.0, 1e-15, 1.0, 0.5, "buf");
  EXPECT_THROW(graph::reduce_stage(buffered, {"out"}, 2, 0.0),
               std::invalid_argument);
  circuit.add_voltage_source("in2", "0", sim::DcSpec{0.0}, "v2");
  circuit.add_resistor("in2", "out", 100.0, "r2");
  EXPECT_THROW(graph::reduce_stage(circuit, {"out"}, 2, 0.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Linear chains: the graph must reproduce compose_bus_chain BIT-FOR-BIT
// ---------------------------------------------------------------------------

TEST(TimingGraph, LinearChainBitIdenticalToComposeBusChain) {
  for (const auto placement :
       {repbus::Placement::kUniform, repbus::Placement::kStaggered,
        repbus::Placement::kInterleaved}) {
    const repbus::RepeaterBusSpec spec = chain_spec(placement);
    const repbus::StageModels models = repbus::build_stage_models(spec, 4);
    for (const auto pattern : {core::SwitchingPattern::kOppositePhase,
                               core::SwitchingPattern::kQuietVictim}) {
      const repbus::ComposedChainMetrics composed =
          repbus::compose_bus_chain(spec, pattern, models);
      graph::TimingGraph g;
      const int chain = g.add_bus_chain(spec, pattern, models);
      EXPECT_EQ(chain, 0);
      EXPECT_EQ(g.node_count(), 4u);
      for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        const graph::GraphResult result = g.evaluate(threads);
        ASSERT_EQ(result.chains.size(), 1u);
        expect_chain_identical(result.chains[0], composed);
      }
    }
  }
}

TEST(TimingGraph, ChainGeometryMismatchIsRejected) {
  const repbus::RepeaterBusSpec spec = chain_spec(repbus::Placement::kUniform);
  repbus::RepeaterBusSpec other = spec;
  other.sections = 3;
  const repbus::StageModels models = repbus::build_stage_models(other, 4);
  graph::TimingGraph g;
  EXPECT_THROW(
      g.add_bus_chain(spec, core::SwitchingPattern::kSamePhase, models),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// H-tree: reduced graph vs cascaded-MNA oracle, and determinism
// ---------------------------------------------------------------------------

TEST(HTree, SkewAndSlewWithinThreePercentOfMnaOracle) {
  const graph::HTreeComparison compare = graph::compare_h_tree(tree_spec());
  EXPECT_EQ(compare.stages, 15u);
  EXPECT_EQ(compare.sinks, 16u);
  // The imbalanced right-arm loads make the skew structurally nonzero.
  EXPECT_GT(compare.mna_skew, 0.0);
  EXPECT_LT(compare.max_arrival_error, 0.03);
  EXPECT_LT(compare.max_slew_error, 0.03);
  EXPECT_LT(compare.skew_error, 0.03);
}

TEST(HTree, EvaluationBitIdenticalAcrossThreadCounts) {
  const graph::HTreeGraph tree = graph::build_h_tree(tree_spec());
  const graph::GraphResult one = tree.graph.evaluate(1);
  EXPECT_EQ(one.threads_used, 1u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{3}}) {
    const graph::GraphResult many = tree.graph.evaluate(threads);
    ASSERT_EQ(many.nodes.size(), one.nodes.size());
    for (std::size_t k = 0; k < one.nodes.size(); ++k) {
      const auto& a = one.nodes[k];
      const auto& b = many.nodes[k];
      ASSERT_EQ(a.arrival.size(), b.arrival.size());
      EXPECT_EQ(std::memcmp(a.arrival.data(), b.arrival.data(),
                            a.arrival.size() * sizeof(double)),
                0);
      EXPECT_EQ(a.peak_noise, b.peak_noise);
      for (std::size_t s = 0; s < a.slew.size(); ++s) {
        ASSERT_EQ(a.slew[s].has_value(), b.slew[s].has_value());
        if (a.slew[s]) {
          EXPECT_EQ(*a.slew[s], *b.slew[s]);
        }
      }
    }
  }
}

TEST(HTree, FireTimesAccumulateDownTheLevels) {
  // Every child's sink arrival strictly exceeds its parent's (fire-time
  // semantics: the child's ramp STARTS at the parent's 50% crossing).
  const graph::HTreeGraph tree = graph::build_h_tree(tree_spec());
  const graph::GraphResult result = tree.graph.evaluate();
  for (std::size_t stage = 1; stage < tree.stage_nodes.size(); ++stage) {
    const std::size_t parent = (stage - 1) / 2;
    const auto& p = result.nodes[static_cast<std::size_t>(
        tree.stage_nodes[parent])];
    const auto& c =
        result.nodes[static_cast<std::size_t>(tree.stage_nodes[stage])];
    const double parent_arrival =
        p.arrival[stage == 2 * parent + 1 ? 0 : 1];
    EXPECT_GT(c.arrival[0], parent_arrival);
    EXPECT_GT(c.arrival[1], parent_arrival);
  }
  // The imbalanced right arm is always the later one within a stage.
  for (const int node : tree.stage_nodes) {
    const auto& metrics = result.nodes[static_cast<std::size_t>(node)];
    EXPECT_GT(metrics.arrival[1], metrics.arrival[0]);
  }
}

}  // namespace
