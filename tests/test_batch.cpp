// Batched solver core (numeric/sparse_batch.h + the seams above it): the
// whole feature rests on ONE claim — a W-lane batch produces bit-identical
// numbers to W independent scalar runs — so these tests compare raw bytes
// (memcmp), not tolerances: solver lanes vs scalar SparseLu (including an
// engineered zero-pivot ejection), batched AnalyticResponse evaluation vs
// the scalar closed form, and batched transient sweeps across every
// (lane width, thread count) combination including tile remainders and NaN
// points. Plus the zero-coupling pattern regression: a coupling axis through
// 0 must keep ONE sparsity pattern (2 symbolic factorizations per sweep).
#include "numeric/sparse_batch.h"

#include <cmath>
#include <cstring>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/crosstalk.h"
#include "mor/reduce.h"
#include "mor/response.h"
#include "numeric/sparse.h"
#include "sim/builders.h"
#include "sim/mna.h"
#include "sweep/sweep.h"

namespace {

using namespace rlcsim;
using numeric::BatchedValues;
using numeric::RealSparse;
using numeric::RealSparseLu;
using numeric::SparseLuBatch;

// Bitwise double-vector comparison: NaN == NaN, +0 != -0.
void expect_bits_equal(const std::vector<double>& a,
                       const std::vector<double>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (!a.empty())
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << what;
}

// Deterministic random diagonally-bumped sparse system (the ladder-like
// shape every MNA matrix here has: strong diagonal, scattered off-diagonals).
std::vector<numeric::Triplet<double>> random_system(int n, double density,
                                                    unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<numeric::Triplet<double>> t;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (i == j)
        t.push_back({i, j, 2.0 + value(rng)});
      else if (coin(rng) < density)
        t.push_back({i, j, value(rng)});
    }
  return t;
}

TEST(BatchedValuesTest, RejectsUnsupportedLaneWidths) {
  for (std::size_t lanes : {std::size_t{0}, std::size_t{2}, std::size_t{3},
                            std::size_t{5}, std::size_t{16}}) {
    EXPECT_THROW(BatchedValues(4, lanes), std::invalid_argument) << lanes;
  }
  EXPECT_TRUE(numeric::is_supported_lane_width(1));
  EXPECT_TRUE(numeric::is_supported_lane_width(4));
  EXPECT_TRUE(numeric::is_supported_lane_width(8));
  EXPECT_FALSE(numeric::is_supported_lane_width(2));
}

TEST(BatchedValuesTest, LaneTransfersRoundTrip) {
  BatchedValues v(3, 4);
  v.set_lane(2, {1.0, 2.0, 3.0});
  EXPECT_EQ(v.at(1, 2), 2.0);
  std::vector<double> out;
  v.extract_lane(2, out);
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));
  v.clear_lane(2);
  v.extract_lane(2, out);
  EXPECT_EQ(out, (std::vector<double>{0.0, 0.0, 0.0}));
  EXPECT_THROW(v.set_lane(4, {0.0, 0.0, 0.0}), std::out_of_range);
  EXPECT_THROW(v.set_lane(0, {0.0}), std::invalid_argument);
}

// The core property: refactor + solve of W value lanes over one donor
// factorization is byte-for-byte the W scalar refactor + solve results.
TEST(SparseLuBatchTest, BitIdenticalToScalarLanes) {
  for (const int n : {7, 23, 60}) {
    for (const std::size_t lanes : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
      const auto base = random_system(n, 4.0 / n, 17u + static_cast<unsigned>(n));
      const RealSparse donor_matrix(n, base);
      const RealSparseLu donor(donor_matrix);
      const std::size_t nnz = static_cast<std::size_t>(donor_matrix.nnz());

      // Per-lane variants: same pattern, perturbed values (lane 0 keeps the
      // donor's own values — the "same matrix" lane must reproduce it too).
      std::mt19937 rng(99u + static_cast<unsigned>(n));
      std::uniform_real_distribution<double> bump(0.5, 1.5);
      std::vector<std::vector<double>> lane_values(lanes, donor_matrix.values());
      std::vector<std::vector<double>> lane_rhs(lanes);
      for (std::size_t w = 0; w < lanes; ++w) {
        if (w > 0)
          for (double& x : lane_values[w]) x *= bump(rng);
        lane_rhs[w].resize(static_cast<std::size_t>(n));
        for (double& x : lane_rhs[w]) x = bump(rng) - 1.0;
      }

      BatchedValues values(nnz, lanes), rhs(static_cast<std::size_t>(n), lanes);
      for (std::size_t w = 0; w < lanes; ++w) {
        values.set_lane(w, lane_values[w]);
        rhs.set_lane(w, lane_rhs[w]);
      }
      SparseLuBatch batch(donor, lanes);
      batch.refactor(values);
      EXPECT_EQ(batch.ejected_lane_count(), 0u);
      batch.solve_in_place(rhs);

      for (std::size_t w = 0; w < lanes; ++w) {
        RealSparseLu scalar(donor);  // copy: same recorded symbolic analysis
        scalar.refactor(RealSparse(donor_matrix.pattern_ptr(), lane_values[w]));
        const std::vector<double> expected = scalar.solve(lane_rhs[w]);
        std::vector<double> got;
        rhs.extract_lane(w, got);
        expect_bits_equal(expected, got, "solver lane");
      }
    }
  }
}

// A lane whose values turn the recorded pivot exactly zero must eject to
// the scalar path alone (scalar refactor re-pivots there), leaving every
// other lane batched — and the stats must account for all of it.
TEST(SparseLuBatchTest, ZeroPivotLaneEjectsIndividually) {
  // [[5, 1], [1, 1]] without RCM: |5| > |1| makes row 0 the recorded first
  // pivot unambiguously, so a lane with a00 = 0 hits an exactly-zero stale
  // pivot — while its matrix [[0, 1], [1, 1]] stays nonsingular for the
  // re-pivoting scalar fallback.
  const RealSparse donor_matrix(
      2, {{0, 0, 5.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}});
  RealSparseLu::Options no_reorder;
  no_reorder.reorder = false;
  const RealSparseLu donor(donor_matrix, no_reorder);
  const std::size_t lanes = 4;

  std::vector<std::vector<double>> lane_values(lanes, donor_matrix.values());
  for (double& x : lane_values[2])
    if (x == 5.0) x = 0.0;  // lane 2: zero where the recorded pivot sits
  for (double& x : lane_values[3]) x *= 1.5;

  BatchedValues values(static_cast<std::size_t>(donor_matrix.nnz()), lanes);
  for (std::size_t w = 0; w < lanes; ++w) values.set_lane(w, lane_values[w]);

  numeric::sparse_lu_stats() = {};
  SparseLuBatch batch(donor, lanes);
  batch.refactor(values);
  EXPECT_EQ(batch.ejected_lane_count(), 1u);
  EXPECT_FALSE(batch.lane_ejected(0));
  EXPECT_TRUE(batch.lane_ejected(2));
  // 3 batched numeric passes + the ejected lane's full scalar
  // refactorization (1 symbolic + 1 numeric).
  EXPECT_EQ(numeric::sparse_lu_stats().ejected_lanes, 1u);
  EXPECT_EQ(numeric::sparse_lu_stats().symbolic, 1u);
  EXPECT_EQ(numeric::sparse_lu_stats().numeric, lanes);

  BatchedValues rhs(2, lanes);
  const std::vector<double> b{1.0, 2.0};
  for (std::size_t w = 0; w < lanes; ++w) rhs.set_lane(w, b);
  batch.solve_in_place(rhs);
  for (std::size_t w = 0; w < lanes; ++w) {
    RealSparseLu scalar(donor);
    scalar.refactor(RealSparse(donor_matrix.pattern_ptr(), lane_values[w]));
    std::vector<double> got;
    rhs.extract_lane(w, got);
    expect_bits_equal(scalar.solve(b), got, "ejected-lane solve");
  }
}

// ----------------------------------------------------- AnalyticResponse

mor::PoleResidueModel oscillatory_model() {
  mor::PoleResidueModel model;
  model.poles = {{-1.0e9, 0.0}, {-4.0e8, 3.0e9}, {-4.0e8, -3.0e9}};
  model.residues = {{1.2e9, 0.0}, {-0.6e9, 2.0e8}, {-0.6e9, -2.0e8}};
  model.dc_gain = 0.9;
  model.delay = 2.0e-10;
  return model;
}

TEST(AnalyticResponseBatch, ValuesBitIdenticalToScalarEvaluation) {
  mor::AnalyticResponse response(0.05);
  response.add_step(oscillatory_model(), 1.0);
  response.add_ramp(oscillatory_model(), -0.4, /*rise=*/3.0e-10,
                    /*start=*/1.0e-10);

  // 257 samples (non-multiple of the 8-wide block) spanning the pre-onset
  // zeros, the onset edges, the ramp window, and the settled tail.
  const std::size_t count = 257;
  std::vector<double> times(count), batched(count), scalar(count);
  for (std::size_t i = 0; i < count; ++i) {
    times[i] = 3.0e-9 * static_cast<double>(i) / static_cast<double>(count - 1);
    scalar[i] = response.value(times[i]);
  }
  response.values(times.data(), batched.data(), count);
  expect_bits_equal(scalar, batched, "analytic response block");

  // Odd partial block on its own.
  std::vector<double> small(13);
  response.values(times.data(), small.data(), 13);
  for (std::size_t i = 0; i < 13; ++i) EXPECT_EQ(small[i], scalar[i]);
}

TEST(AnalyticResponseBatch, FirstCrossingStillRefinesExactly) {
  // Single-pole step 1 - exp(-t/tau): the blocked coarse scan must bracket
  // and Brent-refine the same crossing, tau * ln(2).
  const double tau = 1.0e-9;
  mor::PoleResidueModel model;
  model.poles = {{-1.0 / tau, 0.0}};
  model.residues = {{1.0 / tau, 0.0}};
  model.dc_gain = 1.0;
  mor::AnalyticResponse response;
  response.add_step(model, 1.0);
  const auto crossing = response.first_crossing(0.5, +1);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_NEAR(*crossing, tau * std::log(2.0), 1e-6 * tau);
  const auto metrics = response.measure(0.0, 1.0);
  ASSERT_TRUE(metrics.delay_50.has_value());
  EXPECT_EQ(*metrics.delay_50, *crossing);
}

// ------------------------------------------------------------- sweeps

// The grid of the existing sweep tests: 27 points — deliberately NOT a
// multiple of 4 or 8, so every batched run exercises a remainder tile.
sweep::SweepSpec small_grid() {
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.axes = {
      sweep::values(sweep::Variable::kDriverResistance, {200.0, 500.0, 900.0}),
      sweep::logspace(sweep::Variable::kLineInductance, 1e-8, 1e-6, 3),
      sweep::values(sweep::Variable::kLoadCapacitance, {0.1e-12, 0.5e-12, 1e-12}),
  };
  return spec;
}

sweep::EngineOptions batch_options(std::size_t threads, std::size_t lanes,
                                   const sweep::SweepSpec& spec) {
  sweep::EngineOptions options;
  options.threads = threads;
  options.lanes = lanes;
  options.segments = 25;
  // Batching needs the shared grid an explicit t_stop provides: the largest
  // per-scenario default horizon keeps every point's crossing inside it.
  for (std::size_t i = 0; i < spec.size(); ++i)
    options.t_stop = std::max(
        options.t_stop, sim::default_transient_horizon(spec.at(i).system));
  options.dt = options.t_stop / 2000.0;
  return options;
}

TEST(SweepBatch, TransientSweepBitIdenticalAcrossLanesAndThreads) {
  const sweep::SweepSpec spec = small_grid();
  const sweep::SweepEngine reference(batch_options(1, 1, spec));
  const auto scalar = reference.run(spec, sweep::Analysis::kTransientDelay);
  ASSERT_EQ(scalar.values.size(), spec.size());
  for (double v : scalar.values) EXPECT_TRUE(std::isfinite(v));

  for (const std::size_t lanes : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      const sweep::SweepEngine engine(batch_options(threads, lanes, spec));
      const auto batched = engine.run(spec, sweep::Analysis::kTransientDelay);
      expect_bits_equal(scalar.values, batched.values, "batched sweep");
      // Symbolic-reuse contract is unchanged by batching: one system + one
      // DC analysis for the whole sweep.
      EXPECT_EQ(batched.symbolic_factorizations, 2u)
          << lanes << " lanes, " << threads << " threads";
    }
  }
}

TEST(SweepBatch, TinyGridFallsThroughScalar) {
  // 2 points < any batch width: the undersized tile must fall through to
  // the scalar path and still match a lanes=1 engine bitwise.
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.axes = {
      sweep::values(sweep::Variable::kDriverResistance, {300.0, 800.0})};
  const sweep::SweepEngine scalar_engine(batch_options(1, 1, spec));
  const sweep::SweepEngine batch_engine(batch_options(2, 8, spec));
  const auto a = scalar_engine.run(spec, sweep::Analysis::kTransientDelay);
  const auto b = batch_engine.run(spec, sweep::Analysis::kTransientDelay);
  expect_bits_equal(a.values, b.values, "undersized tile");
}

TEST(SweepBatch, PointAccountingSumsAndSplitsHonestly) {
  // The batched/scalar split is the only witness of WHERE points ran (the
  // fallback is bit-identical by design, so values can't tell). Regression:
  // the counters must always sum to the grid size, a scalar engine must
  // report zero batched points, and a batched engine on the 27-point grid
  // must batch the 3 full tiles (the seeded reference point and the
  // remainder ride the scalar path).
  const sweep::SweepSpec spec = small_grid();
  const sweep::SweepEngine scalar(batch_options(1, 1, spec));
  const auto a = scalar.run(spec, sweep::Analysis::kTransientDelay);
  EXPECT_EQ(a.batched_points, 0u);
  EXPECT_EQ(a.scalar_points, spec.size());

  for (const std::size_t lanes : {std::size_t{4}, std::size_t{8}}) {
    const sweep::SweepEngine engine(batch_options(2, lanes, spec));
    const auto b = engine.run(spec, sweep::Analysis::kTransientDelay);
    EXPECT_EQ(b.batched_points + b.scalar_points, spec.size()) << lanes;
    EXPECT_GE(b.batched_points, 24u) << lanes;  // 3 full tiles of 8 / 6 of 4
    EXPECT_EQ(b.ejected_lanes, 0u) << lanes;
  }

  // run_custom has no batch path: everything is a scalar point.
  const auto c = scalar.run_custom(
      17, [](std::size_t i, sweep::SweepEngine::PointContext&) {
        return static_cast<double>(i);
      });
  EXPECT_EQ(c.batched_points, 0u);
  EXPECT_EQ(c.scalar_points, 17u);
}

TEST(SweepBatch, RejectsUnsupportedLaneCount) {
  sweep::SweepSpec spec = small_grid();
  sweep::EngineOptions options = batch_options(1, 1, spec);
  options.lanes = 3;
  const sweep::SweepEngine engine(options);
  EXPECT_THROW(engine.run(spec, sweep::Analysis::kTransientDelay),
               std::invalid_argument);
}

TEST(SweepBatch, NaNPointsStayDeterministicAcrossLanesAndThreads) {
  // A switching-pattern axis with a quiet victim yields NaN delay points;
  // bitwise determinism must hold through them at every (lanes, threads).
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.cc_ratio = 0.4;
  spec.axes = {
      sweep::switching_patterns({core::SwitchingPattern::kQuietVictim,
                                 core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase}),
      sweep::values(sweep::Variable::kDriverResistance, {300.0, 800.0}),
  };
  sweep::EngineOptions base;
  base.segments = 12;
  const sweep::SweepEngine reference(base);
  const auto scalar = reference.run(spec, sweep::Analysis::kCrosstalkDelay);
  ASSERT_EQ(scalar.values.size(), 6u);
  EXPECT_TRUE(std::isnan(scalar.values[0]));  // quiet victim
  EXPECT_TRUE(std::isfinite(scalar.values[2]));

  for (const std::size_t lanes : {std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      sweep::EngineOptions options = base;
      options.threads = threads;
      options.lanes = lanes;
      const sweep::SweepEngine engine(options);
      const auto result = engine.run(spec, sweep::Analysis::kCrosstalkDelay);
      expect_bits_equal(scalar.values, result.values, "NaN-point sweep");
    }
  }
}

// ------------------------------------------- zero-coupling pattern fork

TEST(ZeroCouplingPattern, StructuralStampsKeepOnePattern) {
  const tline::LineParams line{1000.0, 1e-7, 1e-12};
  const auto bus_of = [&](double cc_ratio) {
    return tline::make_bus(2, line, cc_ratio, 0.0);
  };
  const auto circuit_of = [&](double cc_ratio, sim::StampOptions stamp) {
    sim::Circuit c;
    c.add_resistor("in0", "0", 50.0, "g0");
    c.add_resistor("in1", "0", 50.0, "g1");
    sim::add_coupled_bus(c, "bus", {"in0", "in1"}, {"out0", "out1"},
                         bus_of(cc_ratio), 6, stamp);
    return c;
  };
  const sim::MnaAssembler zero(circuit_of(0.0, {}));
  const sim::MnaAssembler coupled(circuit_of(0.5, {}));
  EXPECT_EQ(zero.system_pattern()->row_ptr, coupled.system_pattern()->row_ptr);
  EXPECT_EQ(zero.system_pattern()->col_idx, coupled.system_pattern()->col_idx);

  // The escape hatch restores the value-dependent (pruned) pattern.
  sim::StampOptions prune;
  prune.prune_zeros = true;
  const sim::MnaAssembler pruned(circuit_of(0.0, prune));
  EXPECT_LT(pruned.system_pattern()->nnz(), zero.system_pattern()->nnz());
}

// The acceptance regression: a coupling axis whose range INCLUDES 0 stays
// on the 1-symbolic-factorization-per-matrix-kind contract (2 total).
TEST(ZeroCouplingPattern, SweepThroughZeroKeepsTwoFactorizations) {
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.base.xtalk.bus_lines = 3;
  spec.axes = {
      sweep::values(sweep::Variable::kCouplingCapRatio, {0.0, 0.3, 0.6})};
  sweep::EngineOptions options;
  options.segments = 12;
  options.threads = 1;
  const sweep::SweepEngine engine(options);
  const auto result = engine.run(spec, sweep::Analysis::kCrosstalkNoise);
  ASSERT_EQ(result.values.size(), 3u);
  for (double v : result.values) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(result.symbolic_factorizations, 2u);
}

}  // namespace
