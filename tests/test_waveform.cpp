#include "sim/waveform.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::sim;

Trace first_order_trace(double tau, double t_end, int n) {
  std::vector<double> t, v;
  for (int i = 0; i <= n; ++i) {
    t.push_back(t_end * i / n);
    v.push_back(1.0 - std::exp(-t.back() / tau));
  }
  return Trace(std::move(t), std::move(v));
}

TEST(Trace, ConstructionValidation) {
  EXPECT_THROW(Trace({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Trace({0.0, 1.0}, {1.0}), std::invalid_argument);
}

TEST(Trace, AtInterpolatesLinearly) {
  const Trace tr({0.0, 1.0, 2.0}, {0.0, 2.0, 2.0});
  EXPECT_DOUBLE_EQ(tr.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(tr.at(1.7), 2.0);
  EXPECT_DOUBLE_EQ(tr.at(-5.0), 0.0);  // clamped
}

TEST(Trace, DelayOfFirstOrderResponse) {
  const Trace tr = first_order_trace(1.0, 8.0, 8000);
  EXPECT_NEAR(tr.delay(1.0), std::log(2.0), 1e-4);
  EXPECT_NEAR(tr.delay(1.0, 0.9), std::log(10.0), 1e-3);
}

TEST(Trace, DelayThrowsWhenNeverCrossing) {
  const Trace tr({0.0, 1.0}, {0.0, 0.3});
  EXPECT_THROW(tr.delay(1.0), std::runtime_error);
}

TEST(Trace, RiseTime) {
  const Trace tr = first_order_trace(1.0, 10.0, 10000);
  EXPECT_NEAR(tr.rise_time(1.0), std::log(9.0), 1e-3);
}

TEST(Trace, OvershootAndExtremes) {
  std::vector<double> t, v;
  for (int i = 0; i <= 1000; ++i) {
    t.push_back(i * 0.01);
    v.push_back(1.0 - std::exp(-t.back()) * std::cos(3.0 * t.back()) * 1.2);
  }
  const Trace tr(t, v);
  EXPECT_GT(tr.max_value(), 1.0);
  EXPECT_LT(tr.min_value(), 0.0);
  EXPECT_NEAR(tr.overshoot(1.0), tr.max_value() - 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(tr.overshoot(2.0), 0.0);  // far below that reference
  EXPECT_THROW(tr.overshoot(0.0), std::invalid_argument);
}

TEST(Trace, CrossingDirections) {
  const Trace tr({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(*tr.crossing(0.5, 0.0, +1), 0.5);
  EXPECT_DOUBLE_EQ(*tr.crossing(0.5, 0.0, -1), 1.5);
  EXPECT_DOUBLE_EQ(*tr.crossing(0.5, 1.6, +1), 2.5);
  EXPECT_FALSE(tr.crossing(2.0, 0.0, +1));
}

TEST(WaveformCsv, RoundTripFormat) {
  std::map<std::string, std::vector<double>> values;
  values["a"] = {0.0, 1.0};
  values["b"] = {2.0, 3.0};
  const WaveformSet ws({0.0, 1e-9}, std::move(values));

  std::ostringstream out;
  write_csv(ws, out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "time,a,b");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 15), "0.000000000e+00");
  std::getline(in, line);
  EXPECT_NE(line.find("1.000000000e-09"), std::string::npos);
  EXPECT_NE(line.find("3.000000000e+00"), std::string::npos);
}

TEST(WaveformCsv, ColumnSelectionAndErrors) {
  std::map<std::string, std::vector<double>> values;
  values["a"] = {0.0, 1.0};
  values["b"] = {2.0, 3.0};
  const WaveformSet ws({0.0, 1.0}, std::move(values));
  std::ostringstream out;
  write_csv(ws, out, {"b"});
  EXPECT_EQ(out.str().substr(0, 7), "time,b\n");
  std::ostringstream out2;
  EXPECT_THROW(write_csv(ws, out2, {"missing"}), std::out_of_range);
  EXPECT_THROW(write_csv_file(ws, "/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(WaveformSet, TraceAccessAndErrors) {
  std::map<std::string, std::vector<double>> values;
  values["a"] = {0.0, 1.0};
  values["b"] = {2.0, 3.0};
  const WaveformSet ws({0.0, 1.0}, std::move(values));
  EXPECT_TRUE(ws.has("a"));
  EXPECT_FALSE(ws.has("c"));
  EXPECT_DOUBLE_EQ(ws.trace("b").final_value(), 3.0);
  EXPECT_THROW(ws.trace("c"), std::out_of_range);
  const auto names = ws.node_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
