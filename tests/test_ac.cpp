#include "sim/ac.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include <gtest/gtest.h>

#include "sim/builders.h"
#include "tline/transfer.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::sim;

TEST(Ac, RcLowPassPole) {
  // R = 1k into C = 1p: pole at 1/(2 pi RC) ~ 159 MHz.
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.0}, "vin");
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  const double f_pole = 1.0 / (2.0 * M_PI * 1e-9);
  const auto h = ac_transfer_at(c, "vin", "out", f_pole);
  EXPECT_NEAR(std::abs(h), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::arg(h) * 180.0 / M_PI, -45.0, 1e-6);
}

TEST(Ac, DcGainOfDivider) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.0}, "vin");
  c.add_resistor("in", "out", 1000.0);
  c.add_resistor("out", "0", 3000.0);
  EXPECT_NEAR(std::abs(ac_transfer_at(c, "vin", "out", 1.0)), 0.75, 1e-12);
}

TEST(Ac, SeriesRlcResonance) {
  // Series RLC peaks (at the cap) near f0 = 1/(2 pi sqrt(LC)) with
  // Q = (1/R) sqrt(L/C).
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.0}, "vin");
  c.add_resistor("in", "a", 10.0);
  c.add_inductor("a", "out", 1e-9);
  c.add_capacitor("out", "0", 1e-12);
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(1e-9 * 1e-12));
  const double q = std::sqrt(1e-9 / 1e-12) / 10.0;
  EXPECT_NEAR(std::abs(ac_transfer_at(c, "vin", "out", f0)), q, q * 1e-6);
}

TEST(Ac, LadderMatchesAbcdTransferExactly) {
  // The AC solution of the lumped ladder and the frequency-domain ABCD
  // cascade are two routes to the same rational function: agreement should
  // be at rounding level, not discretization level.
  const tline::GateLineLoad sys{300.0, {700.0, 2e-9, 1.5e-12}, 0.8e-12};
  const Circuit circuit = build_gate_line_load(sys, 24);
  for (double f : {1e7, 1e8, 1e9, 5e9}) {
    const auto from_mna = ac_transfer_at(circuit, "vsrc", "out", f);
    const auto from_abcd =
        tline::transfer_lumped(sys, 24, tline::Complex(0.0, 2.0 * M_PI * f));
    EXPECT_LT(std::abs(from_mna - from_abcd), 1e-9 * std::abs(from_abcd) + 1e-15)
        << "f=" << f;
  }
}

TEST(Ac, MutualCouplingTransformerAction) {
  // Two coupled inductors as a weak transformer: the open-circuit secondary
  // voltage is (M/L1) * v_primary-inductor. With a voltage source directly
  // across L1, v_sec = k sqrt(L1 L2)/L1 * v_in.
  Circuit c;
  c.add_voltage_source("p", "0", DcSpec{0.0}, "vin");
  c.add_inductor("p", "0", 4e-9, 0.0, "L1");
  c.add_inductor("s", "0", 1e-9, 0.0, "L2");
  c.add_resistor("s", "0", 1e9, "rload");  // ~open secondary
  c.add_mutual("L1", "L2", 0.5, "K1");
  const auto h = ac_transfer_at(c, "vin", "s", 1e9);
  // M = 0.5 sqrt(4n * 1n) = 1n; v_s = M/L1 = 0.25 of v_in.
  EXPECT_NEAR(std::abs(h), 0.25, 1e-6);
}

TEST(Ac, Validation) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.0}, "vin");
  c.add_resistor("in", "out", 100.0);
  c.add_resistor("out", "0", 100.0);
  EXPECT_THROW(ac_transfer_at(c, "nope", "out", 1e6), std::invalid_argument);
  EXPECT_THROW(ac_transfer_at(c, "vin", "nope", 1e6), std::invalid_argument);
  EXPECT_THROW(ac_transfer(c, "vin", "out", {-1.0}), std::invalid_argument);
}

TEST(Ac, LogFrequencies) {
  const auto f = log_frequencies(1e6, 1e9, 4);
  ASSERT_EQ(f.size(), 4u);
  EXPECT_DOUBLE_EQ(f.front(), 1e6);
  EXPECT_NEAR(f.back(), 1e9, 1e-3);
  EXPECT_NEAR(f[1] / f[0], 10.0, 1e-9);
  EXPECT_THROW(log_frequencies(0.0, 1e9, 4), std::invalid_argument);
  EXPECT_THROW(log_frequencies(1e6, 1e9, 1), std::invalid_argument);
}

TEST(Ac, BandwidthOfRcPole) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.0}, "vin");
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  const auto bw = bandwidth_3db(c, "vin", "out", 1e3, 1e12);
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(*bw, 1.0 / (2.0 * M_PI * 1e-9), 1e-3 / (2.0 * M_PI * 1e-9));
}

TEST(Ac, SampleFormatHelpers) {
  AcSample s{1e6, {0.5, 0.0}};
  EXPECT_NEAR(s.magnitude_db(), -6.0206, 1e-3);
  EXPECT_DOUBLE_EQ(s.phase_deg(), 0.0);
}

// AC-vs-transient cross-check: the -3 dB bandwidth from AC analysis must be
// consistent with the 10-90 rise time of the transient step response
// (tr * bw ~ 0.35 for a single-pole system).
TEST(AcTransientConsistency, RiseTimeBandwidthProduct) {
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0}, "vin");
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  const auto bw = bandwidth_3db(c, "vin", "out", 1e3, 1e12);
  ASSERT_TRUE(bw.has_value());
  TransientOptions opt;
  opt.t_stop = 10e-9;
  opt.dt = 1e-12;
  const double tr = run_transient(c, opt).waveforms.trace("out").rise_time(1.0);
  EXPECT_NEAR(tr * *bw, 0.3497, 0.005);
}

}  // namespace
