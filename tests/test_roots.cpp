#include "numeric/roots.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

TEST(BracketRoot, FindsSignChangeByExpansion) {
  // Root at x = 10, initial interval far to the left.
  const auto f = [](double x) { return x - 10.0; };
  const Bracket b = bracket_root(f, 0.0, 1.0);
  EXPECT_LT(f(b.lo) * f(b.hi), 0.0);
}

TEST(BracketRoot, ThrowsWhenNoRoot) {
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_THROW(bracket_root(f, -1.0, 1.0, 10), std::runtime_error);
}

TEST(BracketRoot, RejectsBadInterval) {
  EXPECT_THROW(bracket_root([](double x) { return x; }, 2.0, 1.0),
               std::invalid_argument);
}

TEST(Bisect, LinearFunction) {
  EXPECT_NEAR(bisect([](double x) { return 2.0 * x - 3.0; }, 0.0, 10.0), 1.5, 1e-9);
}

TEST(Bisect, RequiresBracket) {
  EXPECT_THROW(bisect([](double x) { return x + 5.0; }, 0.0, 1.0),
               std::invalid_argument);
}

TEST(Brent, PolynomialRoot) {
  const auto f = [](double x) { return x * x * x - 2.0 * x - 5.0; };
  const double root = brent(f, 2.0, 3.0);
  EXPECT_NEAR(root, 2.0945514815423265, 1e-12);
}

TEST(Brent, TranscendentalRoot) {
  const double root = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(root, 0.7390851332151607, 1e-12);
}

TEST(Brent, EndpointRoots) {
  EXPECT_DOUBLE_EQ(brent([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(brent([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Brent, SteepFunction) {
  // Nearly-vertical crossing stresses the interpolation safeguards.
  const auto f = [](double x) { return std::tanh(1e6 * (x - 0.123456789)); };
  EXPECT_NEAR(brent(f, 0.0, 1.0), 0.123456789, 1e-9);
}

TEST(NewtonSafe, ConvergesWithDerivative) {
  const auto f = [](double x) { return x * x - 2.0; };
  const auto df = [](double x) { return 2.0 * x; };
  EXPECT_NEAR(newton_safe(f, df, 0.0, 2.0), std::sqrt(2.0), 1e-12);
}

TEST(NewtonSafe, SurvivesZeroDerivative) {
  // f'(0) = 0: the safeguard must fall back to bisection steps.
  const auto f = [](double x) { return x * x * x - 0.001; };
  const auto df = [](double x) { return 3.0 * x * x; };
  EXPECT_NEAR(newton_safe(f, df, -1.0, 1.0), 0.1, 1e-9);
}

// The three bracketing solvers must agree on a family of shifted roots.
class RootSolverAgreement : public ::testing::TestWithParam<double> {};

TEST_P(RootSolverAgreement, AllSolversFindSameRoot) {
  const double shift = GetParam();
  const auto f = [shift](double x) { return std::expm1(x) - shift; };
  const double expected = std::log1p(shift);
  const double lo = -2.0, hi = 50.0;
  EXPECT_NEAR(bisect(f, lo, hi, {.x_tolerance = 1e-13}), expected, 1e-10);
  EXPECT_NEAR(brent(f, lo, hi, {.x_tolerance = 1e-13}), expected, 1e-10);
  EXPECT_NEAR(newton_safe(f, [](double x) { return std::exp(x); }, lo, hi,
                          {.x_tolerance = 1e-13}),
              expected, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(ShiftSweep, RootSolverAgreement,
                         ::testing::Values(0.1, 0.5, 1.0, 3.0, 10.0, 100.0, 1e4));

}  // namespace
