#include "tline/two_port.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::tline;

constexpr double kTol = 1e-12;

void expect_close(Complex a, Complex b, double tol = kTol) {
  EXPECT_NEAR(std::abs(a - b), 0.0, tol) << "a=" << a << " b=" << b;
}

TEST(Abcd, IdentityCascade) {
  const Abcd eye;
  const Abcd r = series_resistor(50.0);
  const Abcd both = eye.cascade(r);
  expect_close(both.a, r.a);
  expect_close(both.b, r.b);
  expect_close(both.c, r.c);
  expect_close(both.d, r.d);
}

TEST(Abcd, SeriesImpedancesAdd) {
  const Abcd two = series_resistor(30.0).cascade(series_resistor(20.0));
  expect_close(two.b, Complex(50.0, 0.0));
  expect_close(two.a, Complex(1.0, 0.0));
}

TEST(Abcd, ShuntAdmittancesAdd) {
  const Complex s(0.0, 1e9);
  const Abcd two = shunt_capacitor(1e-12, s).cascade(shunt_capacitor(2e-12, s));
  expect_close(two.c, s * 3e-12);
}

TEST(Abcd, ReciprocityDeterminantOne) {
  // Every R/L/C two-port is reciprocal: AD - BC = 1, preserved by cascade.
  const Complex s(1e8, 2e9);
  const Abcd net = series_resistor(100.0)
                       .cascade(shunt_capacitor(1e-12, s))
                       .cascade(series_inductor(1e-9, s))
                       .cascade(shunt_capacitor(2e-12, s));
  expect_close(net.a * net.d - net.b * net.c, Complex(1.0, 0.0), 1e-10);
}

TEST(DistributedLine, ReciprocalAndSymmetric) {
  const LineParams line{100.0, 1e-9, 1e-12};
  const Complex s(1e8, 5e9);
  const Abcd net = distributed_line(line, s);
  expect_close(net.a, net.d);  // symmetric line
  expect_close(net.a * net.d - net.b * net.c, Complex(1.0, 0.0), 1e-9);
}

TEST(DistributedLine, DcLimitIsSeriesResistance) {
  // At s -> 0 the line is just its total series resistance.
  const LineParams line{123.0, 1e-9, 1e-12};
  const Abcd net = distributed_line(line, Complex(1e-3, 0.0));
  expect_close(net.a, Complex(1.0, 0.0), 1e-6);
  expect_close(net.b, Complex(123.0, 0.0), 1e-4);
}

TEST(DistributedLine, HandlesZeroInductance) {
  // RC line: theta = sqrt(s R C), finite and well-defined.
  const LineParams line{1000.0, 0.0, 1e-12};
  const Complex s(0.0, 1e9);
  const Abcd net = distributed_line(line, s);
  EXPECT_TRUE(std::isfinite(net.a.real()));
  EXPECT_TRUE(std::isfinite(net.b.imag()));
  expect_close(net.a * net.d - net.b * net.c, Complex(1.0, 0.0), 1e-9);
}

TEST(LumpedLadder, ConvergesToDistributedLine) {
  const LineParams line{200.0, 2e-9, 2e-12};
  const Complex s(0.0, 2.0 * M_PI * 1e9);
  const Abcd exact = distributed_line(line, s);
  double prev_err = 1e9;
  for (int segments : {4, 16, 64}) {
    const Abcd ladder = lumped_ladder(line, segments, s);
    const double err = std::abs(ladder.a - exact.a) + std::abs(ladder.b - exact.b) +
                       std::abs(ladder.c - exact.c);
    EXPECT_LT(err, prev_err);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-3 * std::abs(exact.b));
}

TEST(LumpedLadder, SecondOrderConvergence) {
  // Pi-segment discretization error should fall ~4x when segments double.
  const LineParams line{100.0, 1e-9, 1e-12};
  const Complex s(0.0, 2.0 * M_PI * 2e9);
  const Abcd exact = distributed_line(line, s);
  const auto err = [&](int n) {
    const Abcd l = lumped_ladder(line, n, s);
    return std::abs(l.a - exact.a);
  };
  const double ratio = err(10) / err(20);
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(TerminatedTransfer, VoltageDividerSanity) {
  // Pure resistive divider: source 100 ohm into shunt -> H = R/(R+Rs) with
  // a load resistor expressed as load admittance.
  const Abcd nothing;  // direct connection
  const Complex h = terminated_transfer(nothing, Complex(100.0, 0.0),
                                        Complex(1.0 / 300.0, 0.0));
  expect_close(h, Complex(300.0 / 400.0, 0.0));
}

TEST(TerminatedTransfer, OverflowYieldsZero) {
  // Huge attenuation: cosh overflows; the transfer must be 0, not NaN.
  const LineParams line{1e6, 1e-9, 1e-9};
  const Abcd net = distributed_line(line, Complex(1e12, 0.0));
  const Complex h = terminated_transfer(net, Complex(0.0, 0.0), Complex(0.0, 0.0));
  EXPECT_TRUE(std::isfinite(h.real()));
  EXPECT_TRUE(std::isfinite(h.imag()));
  expect_close(h, Complex(0.0, 0.0), 1e-30);
}

TEST(TerminatedTransfer, MatchedLosslessLineIsAllPass) {
  // A lossless line driven and loaded by its characteristic impedance has
  // |H| = z0/(z0+zs) * ... for matched source: |Vout/Vin| = 0.5 independent
  // of frequency (half the voltage at the matched source divider).
  const LineParams line{0.0, 1e-9, 1e-12};  // lossless
  const double z0 = std::sqrt(1e-9 / 1e-12);
  for (double f : {1e8, 1e9, 5e9}) {
    const Complex s(0.0, 2.0 * M_PI * f);
    const Abcd net = distributed_line(line, s);
    const Complex h =
        terminated_transfer(net, Complex(z0, 0.0), Complex(1.0 / z0, 0.0));
    EXPECT_NEAR(std::abs(h), 0.5, 1e-9) << "f=" << f;
  }
}

}  // namespace
