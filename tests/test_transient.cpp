#include "sim/transient.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::sim;

Circuit rc_charger(double r, double c) {
  Circuit circuit;
  circuit.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0});
  circuit.add_resistor("in", "out", r);
  circuit.add_capacitor("out", "0", c);
  return circuit;
}

TEST(Transient, RcChargeMatchesAnalytic) {
  const double tau = 1e-9;
  const Circuit c = rc_charger(1000.0, 1e-12);
  TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 2.5e-12;
  const auto r = run_transient(c, opt);
  const Trace out = r.waveforms.trace("out");
  for (double t : {0.3e-9, 1e-9, 2e-9, 4e-9})
    EXPECT_NEAR(out.at(t), 1.0 - std::exp(-t / tau), 2e-4) << "t=" << t;
}

TEST(Transient, RlCurrentRamp) {
  // V step into R + L to ground: v_L decays with tau = L/R; node between
  // R and L approaches 0.
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0});
  c.add_resistor("in", "mid", 100.0);
  c.add_inductor("mid", "0", 1e-9);
  TransientOptions opt;
  opt.t_stop = 100e-12;
  opt.dt = 0.05e-12;
  const auto r = run_transient(c, opt);
  const Trace mid = r.waveforms.trace("mid");
  const double tau = 1e-9 / 100.0;  // 10 ps
  for (double t : {5e-12, 10e-12, 30e-12})
    EXPECT_NEAR(mid.at(t), std::exp(-t / tau), 3e-3) << "t=" << t;
}

TEST(Transient, SeriesRlcUnderdampedRinging) {
  // R=20, L=1n, C=1p: zeta = R/2 sqrt(C/L) ~ 0.316 -> overshoot
  // exp(-pi z / sqrt(1-z^2)) ~ 35%.
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0});
  c.add_resistor("in", "a", 20.0);
  c.add_inductor("a", "out", 1e-9);
  c.add_capacitor("out", "0", 1e-12);
  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 0.2e-12;
  const auto r = run_transient(c, opt);
  const Trace out = r.waveforms.trace("out");
  const double zeta = 20.0 / 2.0 * std::sqrt(1e-12 / 1e-9);
  const double expected_overshoot =
      std::exp(-M_PI * zeta / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(out.overshoot(1.0), expected_overshoot, 0.01);
  // Ringing frequency: peak at pi/wd.
  const double wd = 1.0 / std::sqrt(1e-9 * 1e-12) * std::sqrt(1.0 - zeta * zeta);
  const auto peak = out.crossing(1.0 + expected_overshoot * 0.99, 0.0, +1);
  ASSERT_TRUE(peak);
  EXPECT_NEAR(*peak, M_PI / wd, 0.1 * M_PI / wd);
}

TEST(Transient, TrapezoidalBeatsBackwardEulerAtSameStep) {
  const Circuit c = rc_charger(1000.0, 1e-12);
  TransientOptions trap;
  trap.t_stop = 3e-9;
  trap.dt = 20e-12;
  trap.integrator = Integrator::kTrapezoidal;
  TransientOptions be = trap;
  be.integrator = Integrator::kBackwardEuler;
  be.be_steps_after_breakpoint = 0;

  const Trace out_trap = run_transient(c, trap).waveforms.trace("out");
  const Trace out_be = run_transient(c, be).waveforms.trace("out");
  double err_trap = 0.0, err_be = 0.0;
  for (double t = 0.4e-9; t < 3e-9; t += 0.1e-9) {
    const double exact = 1.0 - std::exp(-t / 1e-9);
    err_trap = std::max(err_trap, std::fabs(out_trap.at(t) - exact));
    err_be = std::max(err_be, std::fabs(out_be.at(t) - exact));
  }
  EXPECT_LT(err_trap, err_be * 0.25);
}

TEST(Transient, StepGridLandsOnBreakpoints) {
  // A pulse with edges not commensurate with dt: the recorded times must
  // include the exact edge instants.
  Circuit c;
  c.add_voltage_source("in", "0", PulseSpec{0.0, 1.0, 0.33e-9, 1e-12, 1e-12, 0.5e-9, 0.0});
  c.add_resistor("in", "out", 100.0);
  c.add_capacitor("out", "0", 1e-12);
  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 0.1e-9;
  const auto r = run_transient(c, opt);
  const auto& times = r.waveforms.time();
  const auto near_any = [&](double target) {
    for (double t : times)
      if (std::fabs(t - target) < 1e-15) return true;
    return false;
  };
  EXPECT_TRUE(near_any(0.33e-9));
  EXPECT_TRUE(near_any(0.33e-9 + 1e-12));
}

TEST(Transient, BufferFiresAtInterpolatedCrossing) {
  // Slow ramp into a buffer: the input crosses 0.5 at exactly 1 ns; the
  // buffer must fire within a small fraction of dt of that instant.
  Circuit c;
  PwlSpec ramp;
  ramp.points = {{0.0, 0.0}, {2e-9, 1.0}};
  c.add_voltage_source("in", "0", ramp);
  c.add_resistor("in", "bin", 1.0);  // negligible
  c.add_buffer("bin", "bout", 100.0, 1e-15);
  c.add_capacitor("bout", "0", 1e-12);
  TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 0.25e-9;  // deliberately coarse: crossing is mid-step
  const auto r = run_transient(c, opt);
  ASSERT_EQ(r.buffer_fire_times.size(), 1u);
  EXPECT_NEAR(r.buffer_fire_times[0], 1e-9, 0.02e-9);
  // And the buffer output then charges toward vdd.
  EXPECT_NEAR(r.waveforms.trace("bout").final_value(), 1.0, 1e-3);
}

TEST(Transient, UnfiredBufferStaysQuiet) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.2});  // never crosses 0.5
  c.add_resistor("in", "bin", 1.0);
  c.add_buffer("bin", "bout", 100.0, 1e-15);
  c.add_capacitor("bout", "0", 1e-12);
  TransientOptions opt;
  opt.t_stop = 1e-9;
  const auto r = run_transient(c, opt);
  EXPECT_TRUE(std::isinf(r.buffer_fire_times[0]));
  EXPECT_NEAR(r.waveforms.trace("bout").final_value(), 0.0, 1e-9);
}

TEST(Transient, LuFactorizationsAreCached) {
  const Circuit c = rc_charger(1000.0, 1e-12);
  TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 1e-12;
  const auto r = run_transient(c, opt);
  EXPECT_EQ(r.steps_taken, 4000u);
  // DC + (BE and trapezoidal at the fixed dt) ~ a handful, not thousands.
  EXPECT_LE(r.lu_factorizations, 6u);
}

TEST(Transient, OptionValidation) {
  const Circuit c = rc_charger(1.0, 1e-12);
  TransientOptions bad;
  bad.t_stop = 0.0;
  EXPECT_THROW(run_transient(c, bad), std::invalid_argument);
  bad.t_stop = 1e-9;
  bad.dt = 2e-9;
  EXPECT_THROW(run_transient(c, bad), std::invalid_argument);
}

TEST(DcOperatingPoint, MatchesHandAnalysis) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{9.0});
  c.add_resistor("in", "a", 1000.0);
  c.add_resistor("a", "0", 2000.0);
  const auto x = dc_operating_point(c);
  EXPECT_NEAR(x[static_cast<std::size_t>(*c.find_node("a"))], 6.0, 1e-6);
}

// Convergence order probe: halving dt must shrink the trapezoidal error
// by ~4x on a smooth interval.
class TrapConvergence : public ::testing::TestWithParam<double> {};

TEST_P(TrapConvergence, SecondOrderInDt) {
  const double dt = GetParam();
  const Circuit c = rc_charger(1000.0, 1e-12);
  const auto run_error = [&](double step) {
    TransientOptions opt;
    opt.t_stop = 2e-9;
    opt.dt = step;
    const Trace out = run_transient(c, opt).waveforms.trace("out");
    // Sample at a smooth point away from the t=0 discontinuity.
    return std::fabs(out.at(1.5e-9) - (1.0 - std::exp(-1.5)));
  };
  const double ratio = run_error(dt) / run_error(dt / 2.0);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

INSTANTIATE_TEST_SUITE_P(Steps, TrapConvergence, ::testing::Values(40e-12, 20e-12));

}  // namespace
