#include "core/fitting.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::core;

TEST(ScaledDelayData, GridShapeAndContent) {
  const auto samples = generate_scaled_delay_data({0.3, 0.8}, {0.0, 0.5}, {0.0, 1.0});
  ASSERT_EQ(samples.size(), 8u);
  for (const auto& s : samples) {
    EXPECT_GT(s.scaled_delay, 0.0);
    // t' is bounded by its zeta -> 0 (1.0) and RC-limit (1.48 zeta + eps) forms.
    EXPECT_LT(s.scaled_delay, 1.0 + 1.6 * s.zeta);
  }
  EXPECT_THROW(generate_scaled_delay_data({}, {0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(generate_scaled_delay_data({-1.0}, {0.0}, {0.0}), std::invalid_argument);
}

TEST(ScaledDelayData, ScaledDelayDependsMainlyOnZeta) {
  // The paper's Fig. 2 message: at fixed zeta, varying RT and CT inside
  // [0, 1] moves t' only slightly.
  const auto samples =
      generate_scaled_delay_data({0.6}, {0.0, 0.5, 1.0}, {0.0, 0.5, 1.0});
  double lo = 1e9, hi = 0.0;
  for (const auto& s : samples) {
    lo = std::min(lo, s.scaled_delay);
    hi = std::max(hi, s.scaled_delay);
  }
  EXPECT_LT((hi - lo) / lo, 0.25);
}

TEST(FitDelayConstants, RecoversPaperValuesFromExactData) {
  // Fit on the region the paper tabulates (RT, CT in {0.1, 0.5, 1.0}, zeta
  // up to ~2.5) starting far from the published constants. CT = 0 corners
  // are excluded: an unloaded far end reflection-doubles the wave and the
  // exact first crossing departs from any zeta-only curve there (visible as
  // the spread in the paper's own Fig. 2).
  std::vector<double> zetas;
  for (double z = 0.15; z <= 2.5; z += 0.2) zetas.push_back(z);
  const auto samples =
      generate_scaled_delay_data(zetas, {0.1, 0.5, 1.0}, {0.1, 0.5, 1.0});
  const DelayFitOutcome fit = fit_delay_constants(samples);
  // Our exact reference data is not AS/X, so expect the same ballpark, not
  // identity: the paper's constants are {2.9, 1.35, 1.48}.
  // (Measured on this grid: {2.94, 1.34, 1.47}.)
  EXPECT_NEAR(fit.constants.linear, 1.48, 0.12);
  EXPECT_NEAR(fit.constants.exp_power, 1.35, 0.45);
  EXPECT_NEAR(fit.constants.exp_scale, 2.9, 1.2);
  // The fit describes the data well in aggregate; the worst single point
  // (RT = 1, CT = 0.1 near critical damping) carries the genuine RT/CT
  // spread visible in the paper's Fig. 2, so bound RMS tightly and the max
  // loosely.
  EXPECT_LT(fit.rms_residual, 0.08);
  EXPECT_LT(fit.max_rel_error, 0.25);
}

TEST(FitDelayConstants, Validation) {
  EXPECT_THROW(fit_delay_constants({}), std::invalid_argument);
}

TEST(ErrorFactorData, MonotoneFactors) {
  const auto samples = generate_error_factor_data({0.5, 2.0, 5.0});
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_GT(samples[0].h_factor, samples[1].h_factor);
  EXPECT_GT(samples[1].h_factor, samples[2].h_factor);
  EXPECT_GT(samples[0].k_factor, samples[1].k_factor);
}

TEST(FitErrorFactors, FunctionalFormFitsNumericData) {
  std::vector<double> ts;
  for (double t = 0.5; t <= 8.0; t += 0.75) ts.push_back(t);
  const auto samples = generate_error_factor_data(ts);
  const ErrorFactorFit hf = fit_h_factor(samples);
  const ErrorFactorFit kf = fit_k_factor(samples);
  // The paper's 1/[1+aT^3]^b family describes our numeric optimum too —
  // with different constants (see EXPERIMENTS.md).
  EXPECT_LT(hf.max_rel_error, 0.05);
  EXPECT_LT(kf.max_rel_error, 0.05);
  EXPECT_GT(hf.coefficient, 0.0);
  EXPECT_GT(kf.exponent, 0.0);
}

TEST(FitErrorFactors, Validation) {
  EXPECT_THROW(fit_h_factor({}), std::invalid_argument);
  EXPECT_THROW(fit_k_factor({{1.0, 0.9, 0.9}}), std::invalid_argument);
}

}  // namespace
