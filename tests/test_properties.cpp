// Property-based sweeps over the physics invariants the library rests on.
#include <cmath>

#include <gtest/gtest.h>

#include "core/delay_model.h"
#include "numeric/laplace.h"
#include "sim/builders.h"
#include "tline/rc_line.h"
#include "tline/step_response.h"

namespace {

using namespace rlcsim;

// ---------------------------------------------------------------------------
// Invariant 1: the exact step response is causal, bounded, and settles to 1.
// ---------------------------------------------------------------------------
class ResponseSanity : public ::testing::TestWithParam<double> {};

TEST_P(ResponseSanity, BoundedAndSettling) {
  const double lt = GetParam();
  const tline::GateLineLoad sys{500.0, {500.0, lt, 1e-12}, 0.5e-12};
  const double horizon = 20.0 * std::max(tline::moments(sys).b1,
                                         sys.line.time_of_flight());
  const auto r = tline::step_response(sys, horizon, 300);
  for (std::size_t i = 0; i < r.time.size(); ++i) {
    EXPECT_GT(r.value[i], -0.4) << "t=" << r.time[i];   // bounded undershoot
    EXPECT_LT(r.value[i], 2.1) << "t=" << r.time[i];    // bounded overshoot
  }
  EXPECT_NEAR(r.value.back(), 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(InductanceDecades, ResponseSanity,
                         ::testing::Values(1e-9, 1e-8, 1e-7, 1e-6, 1e-5));

// ---------------------------------------------------------------------------
// Invariant 2: delay monotonicity in each impedance, model AND simulator.
// ---------------------------------------------------------------------------
TEST(Monotonicity, DelayIncreasesWithLineCapacitance) {
  double prev_model = 0.0, prev_exact = 0.0;
  for (double ct : {0.5e-12, 1e-12, 2e-12, 4e-12}) {
    const tline::GateLineLoad sys{500.0, {500.0, 1e-8, ct}, 0.5e-12};
    const double model = core::rlc_delay(sys);
    const double exact = tline::threshold_delay(sys);
    EXPECT_GT(model, prev_model);
    EXPECT_GT(exact, prev_exact);
    prev_model = model;
    prev_exact = exact;
  }
}

TEST(Monotonicity, DelayIncreasesWithInductanceInLcRegime) {
  // With low loss the delay is flight-time dominated: more L = slower.
  double prev = 0.0;
  for (double lt : {1e-9, 4e-9, 1.6e-8, 6.4e-8}) {
    const tline::GateLineLoad sys{50.0, {50.0, lt, 1e-12}, 0.1e-12};
    const double exact = tline::threshold_delay(sys);
    EXPECT_GT(exact, prev) << "Lt=" << lt;
    prev = exact;
  }
}

// ---------------------------------------------------------------------------
// Invariant 3: zeta is dimensionless and scale-invariant; the scaled delay
// t' = tpd * wn depends on (zeta, RT, CT) only.
// ---------------------------------------------------------------------------
class ScaledDelayInvariance : public ::testing::TestWithParam<double> {};

TEST_P(ScaledDelayInvariance, SameZetaRtCtSameScaledDelay) {
  const double scale = GetParam();
  // Base system.
  const tline::GateLineLoad base{250.0, {500.0, 2e-8, 1e-12}, 0.5e-12};
  // Impedance-scaled system: R *= s, L *= s^2 keeps zeta, RT, CT fixed.
  const tline::GateLineLoad scaled{250.0 * scale,
                                   {500.0 * scale, 2e-8 * scale * scale, 1e-12},
                                   0.5e-12};
  const core::DelayModel mb(base), ms(scaled);
  ASSERT_NEAR(ms.zeta(), mb.zeta(), 1e-12);

  const double tb = tline::threshold_delay(base) * mb.omega_n();
  const double ts = tline::threshold_delay(scaled) * ms.omega_n();
  EXPECT_NEAR(ts, tb, tb * 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaledDelayInvariance,
                         ::testing::Values(0.1, 0.5, 3.0, 20.0));

// ---------------------------------------------------------------------------
// Invariant 4: ladder discretization converges monotonically (in envelope)
// to the distributed answer, and 40+ segments is inside 1%.
// ---------------------------------------------------------------------------
class LadderConvergence : public ::testing::TestWithParam<double> {};

TEST_P(LadderConvergence, SimulatorConvergesToExact) {
  const double lt = GetParam();
  const tline::GateLineLoad sys{300.0, {600.0, lt, 1.5e-12}, 0.7e-12};
  const double exact = tline::threshold_delay(sys);
  const double with_40 = sim::simulate_gate_line_delay(sys, 40);
  const double with_120 = sim::simulate_gate_line_delay(sys, 120);
  EXPECT_LT(std::fabs(with_120 - exact), std::fabs(with_40 - exact) + exact * 1e-4);
  EXPECT_NEAR(with_40, exact, exact * 0.01);
}

INSTANTIATE_TEST_SUITE_P(InductanceSweep, LadderConvergence,
                         ::testing::Values(1e-8, 1e-7, 1e-6));

// ---------------------------------------------------------------------------
// Invariant 5: for overdamped (RC-like) systems the two independent Laplace
// inversion algorithms agree on the whole waveform.
// ---------------------------------------------------------------------------
TEST(InversionCrossCheck, EulerAndStehfestAgreeOnOverdampedLine) {
  const tline::GateLineLoad sys{1000.0, {2000.0, 1e-10, 1e-12}, 0.5e-12};
  const auto via_euler = [&](double t) { return tline::step_response_at(sys, t); };
  const auto via_stehfest = [&](double t) {
    return numeric::invert_stehfest(
        [&](double s) {
          return std::real(tline::transfer_exact(sys, {s, 0.0})) / s;
        },
        t);
  };
  const double tau = tline::moments(sys).b1;
  for (double x : {0.2, 0.5, 1.0, 2.0, 4.0})
    EXPECT_NEAR(via_euler(x * tau), via_stehfest(x * tau), 1e-4) << "x=" << x;
}

// ---------------------------------------------------------------------------
// Invariant 6: eq. (9) accuracy claim over a random-ish but deterministic
// cloud of systems within the fitted range.
// ---------------------------------------------------------------------------
TEST(Eq9Accuracy, CloudWithinNinePercent) {
  int checked = 0;
  for (int i = 0; i < 24; ++i) {
    // Deterministic pseudo-random parameters in the fitted range.
    const double u1 = 0.5 + 0.5 * std::sin(12.9898 * i + 78.233);
    const double u2 = 0.5 + 0.5 * std::sin(39.3468 * i + 11.135);
    const double u3 = 0.5 + 0.5 * std::sin(93.9898 * i + 53.421);
    const double rt_ratio = 0.05 + 0.95 * u1;
    const double ct_ratio = 0.05 + 0.95 * u2;
    const double lt = std::pow(10.0, -9.0 + 4.0 * u3);  // 1e-9 .. 1e-5 H

    const double rtr = 500.0, ct_line = 1e-12;
    const tline::GateLineLoad sys{rtr, {rtr / rt_ratio, lt, ct_line},
                                  ct_ratio * ct_line};
    const double model = core::rlc_delay(sys);
    const double exact = tline::threshold_delay(sys);
    EXPECT_NEAR(model, exact, exact * 0.09)
        << "RT=" << rt_ratio << " CT=" << ct_ratio << " Lt=" << lt;
    ++checked;
  }
  EXPECT_EQ(checked, 24);
}

// ---------------------------------------------------------------------------
// Invariant 7: RC formulas are the L->0 limit of everything.
// ---------------------------------------------------------------------------
TEST(RcLimit, AllPathsConverge) {
  const double rtr = 400.0, rt = 1200.0, ct = 1e-12, cl = 0.3e-12;
  const tline::GateLineLoad nearly_rc{rtr, {rt, 1e-13, ct}, cl};
  const double exact_rlc = tline::threshold_delay(nearly_rc);
  const double exact_rc = tline::rc_exact_delay(rtr, rt, ct, cl);
  EXPECT_NEAR(exact_rlc, exact_rc, exact_rc * 0.01);
  EXPECT_NEAR(core::rlc_delay(nearly_rc), exact_rc, exact_rc * 0.06);
  EXPECT_NEAR(tline::sakurai_delay(rtr, rt, ct, cl), exact_rc, exact_rc * 0.05);
}

}  // namespace
