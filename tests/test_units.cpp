#include "numeric/units.h"

#include <cmath>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::units;
using namespace rlcsim::units::literals;

TEST(UnitsLiterals, ScaleCorrectly) {
  EXPECT_DOUBLE_EQ(1.0_kohm, 1000.0);
  EXPECT_DOUBLE_EQ(2.5_pF, 2.5e-12);
  EXPECT_DOUBLE_EQ(3.0_fF, 3.0e-15);
  EXPECT_DOUBLE_EQ(1.0_nH, 1.0e-9);
  EXPECT_DOUBLE_EQ(10.0_ps, 1.0e-11);
  EXPECT_DOUBLE_EQ(5.0_mm, 5.0e-3);
  EXPECT_DOUBLE_EQ(0.25_um, 0.25e-6);
}

TEST(UnitsEng, PicksPrefixAndDigits) {
  EXPECT_EQ(eng(3.3e-10, "s"), "330.0 ps");
  EXPECT_EQ(eng(1.0e-12, "F"), "1.000 pF");
  EXPECT_EQ(eng(500.0, "ohm"), "500.0 ohm");
  EXPECT_EQ(eng(6.0e3, "ohm"), "6.000 kohm");
  EXPECT_EQ(eng(0.0, "V"), "0 V");
}

TEST(UnitsEng, NegativeValues) {
  EXPECT_EQ(eng(-2.5e-9, "s"), "-2.500 ns");
}

TEST(UnitsEng, SignificantDigitControl) {
  EXPECT_EQ(eng(1.23456e-9, "s", 6), "1.23456 ns");
  EXPECT_EQ(eng(1.23456e-9, "s", 2), "1.2 ns");
}

TEST(UnitsParse, PlainNumbers) {
  EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("-3.5"), -3.5);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e-12"), 1e-12);
}

TEST(UnitsParse, ScaleSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("2.5n"), 2.5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("3u"), 3e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("4m"), 4e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("5k"), 5e3);
  EXPECT_DOUBLE_EQ(parse_spice_number("6MEG"), 6e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("7g"), 7e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("8f"), 8e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("9t"), 9e12);
}

TEST(UnitsParse, UnitWordsAfterSuffix) {
  EXPECT_DOUBLE_EQ(parse_spice_number("5pF"), 5e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("1kohm"), 1e3);
  // A bare unit word with no scale prefix is a plain multiplier of 1.
  EXPECT_DOUBLE_EQ(parse_spice_number("5V"), 5.0);
}

TEST(UnitsParse, MalformedReturnsNan) {
  EXPECT_TRUE(std::isnan(parse_spice_number("")));
  EXPECT_TRUE(std::isnan(parse_spice_number("abc")));
  EXPECT_TRUE(std::isnan(parse_spice_number("--1")));
}

TEST(UnitsParse, MegBeforeMilli) {
  // Regression guard: "meg" must not be parsed as "m" + "eg".
  EXPECT_DOUBLE_EQ(parse_spice_number("1meg"), 1e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("1m"), 1e-3);
}

}  // namespace
