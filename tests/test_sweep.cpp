#include "sweep/sweep.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/delay_model.h"
#include "core/repeater_numeric.h"
#include "runtime/thread_pool.h"
#include "sim/builders.h"

namespace {

using namespace rlcsim;

// A 3x3x3 grid whose 25-segment ladders put the transient engine on the
// sparse-solver path (~80 unknowns), so the symbolic-reuse machinery is
// actually exercised rather than bypassed by the dense fallback.
sweep::SweepSpec small_grid() {
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.axes = {
      sweep::values(sweep::Variable::kDriverResistance, {200.0, 500.0, 900.0}),
      sweep::logspace(sweep::Variable::kLineInductance, 1e-8, 1e-6, 3),
      sweep::values(sweep::Variable::kLoadCapacitance, {0.1e-12, 0.5e-12, 1e-12}),
  };
  return spec;
}

sweep::EngineOptions engine_options(std::size_t threads) {
  sweep::EngineOptions options;
  options.threads = threads;
  options.segments = 25;
  return options;
}

TEST(SweepSpec, IndexingRoundTrips) {
  const sweep::SweepSpec spec = small_grid();
  ASSERT_EQ(spec.size(), 27u);
  for (std::size_t flat = 0; flat < spec.size(); ++flat) {
    const auto idx = spec.indices(flat);
    EXPECT_EQ(spec.flat_index(idx), flat);
  }
  // Last axis varies fastest; axes apply their values to the scenario.
  const auto s0 = spec.at(0);
  const auto s1 = spec.at(1);
  EXPECT_DOUBLE_EQ(s0.system.driver_resistance, 200.0);
  EXPECT_DOUBLE_EQ(s0.system.load_capacitance, 0.1e-12);
  EXPECT_DOUBLE_EQ(s1.system.driver_resistance, 200.0);
  EXPECT_DOUBLE_EQ(s1.system.load_capacitance, 0.5e-12);
  EXPECT_DOUBLE_EQ(spec.at(26).system.driver_resistance, 900.0);
}

TEST(SweepSpec, ValidatesAxes) {
  sweep::SweepSpec spec = small_grid();
  spec.axes.push_back(sweep::values(sweep::Variable::kLineResistance, {}));
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  sweep::SweepSpec length_spec;
  length_spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.0};
  length_spec.axes = {sweep::linspace(sweep::Variable::kLineLength, 1e-3, 1e-2, 4)};
  // No per-unit-length parasitics set: a length axis cannot be resolved.
  EXPECT_THROW(length_spec.validate(), std::invalid_argument);
  length_spec.per_length = {5000.0, 1e-6, 1e-10, 0.0};
  EXPECT_NO_THROW(length_spec.validate());
  EXPECT_DOUBLE_EQ(length_spec.at(3).system.line.total_resistance, 50.0);
}

TEST(SweepEngine, ClosedFormMatchesDirectEvaluation) {
  const sweep::SweepSpec spec = small_grid();
  const sweep::SweepEngine engine(engine_options(3));
  const auto result = engine.run(spec, sweep::Analysis::kClosedFormDelay);
  ASSERT_EQ(result.values.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i)
    EXPECT_EQ(result.values[i], core::rlc_delay(spec.at(i).system)) << "point " << i;
}

// The tentpole guarantee: a transient sweep is bit-identical at every
// thread count, because every point replays the pivot order recorded by the
// one reference factorization rather than depending on which worker ran it.
TEST(SweepEngine, TransientSweepBitIdenticalAcrossThreadCounts) {
  const sweep::SweepSpec spec = small_grid();
  const sweep::SweepEngine one(engine_options(1));
  const sweep::SweepEngine two(engine_options(2));
  const sweep::SweepEngine five(engine_options(5));

  const auto r1 = one.run(spec, sweep::Analysis::kTransientDelay);
  const auto r2 = two.run(spec, sweep::Analysis::kTransientDelay);
  const auto r5 = five.run(spec, sweep::Analysis::kTransientDelay);

  ASSERT_EQ(r1.values.size(), spec.size());
  for (std::size_t i = 0; i < spec.size(); ++i) {
    EXPECT_EQ(r1.values[i], r2.values[i]) << "1-vs-2 thread mismatch at " << i;
    EXPECT_EQ(r1.values[i], r5.values[i]) << "1-vs-5 thread mismatch at " << i;
    EXPECT_TRUE(std::isfinite(r1.values[i]));
  }
}

// Symbolic-factorization accounting: one system + one DC analysis for the
// whole sweep, every other run a reuse hit — at any thread count.
TEST(SweepEngine, TransientSweepReusesSymbolicFactorization) {
  const sweep::SweepSpec spec = small_grid();
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const sweep::SweepEngine engine(engine_options(threads));
    const auto result = engine.run(spec, sweep::Analysis::kTransientDelay);
    EXPECT_EQ(result.symbolic_factorizations, 2u) << threads << " threads";
    EXPECT_EQ(result.solver_reuse_hits, spec.size() - 1) << threads << " threads";
  }
}

// Oracle cross-check: engine results equal a direct, reuse-free
// run_transient (via simulate_gate_line_delay) on pseudo-random grid points.
TEST(SweepEngine, TransientMatchesDirectSimulation) {
  sweep::SweepSpec spec;
  spec.base.system = {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};
  spec.axes = {
      sweep::linspace(sweep::Variable::kDriverResistance, 100.0, 1000.0, 5),
      sweep::logspace(sweep::Variable::kLineInductance, 3e-8, 3e-7, 4),
      sweep::linspace(sweep::Variable::kLoadCapacitance, 0.1e-12, 1e-12, 4),
  };
  const sweep::EngineOptions options = engine_options(4);
  const sweep::SweepEngine engine(options);
  const auto result = engine.run(spec, sweep::Analysis::kTransientDelay);

  // 20 deterministic pseudo-random points (LCG), compared to the direct path.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int draw = 0; draw < 20; ++draw) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t i = static_cast<std::size_t>(state >> 33) % spec.size();
    const double direct =
        sim::simulate_gate_line_delay(spec.at(i).system, options.segments);
    EXPECT_NEAR(result.values[i], direct, 1e-9 * direct) << "point " << i;
  }
}

TEST(SweepEngine, ExceptionFromWorkerPropagatesLowestIndex) {
  const sweep::SweepEngine engine(engine_options(4));
  try {
    engine.run_custom(64, [](std::size_t i, sweep::SweepEngine::PointContext&) {
      if (i >= 3) throw std::runtime_error("sweep point " + std::to_string(i));
      return static_cast<double>(i);
    });
    FAIL() << "expected the worker exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "sweep point 3");
  }
  // The engine (and its pool) stay usable after a failed sweep.
  const auto ok = engine.run_custom(
      8, [](std::size_t i, sweep::SweepEngine::PointContext&) {
        return static_cast<double>(i) * 2.0;
      });
  ASSERT_EQ(ok.values.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(ok.values[i], 2.0 * i);
}

// A bad scenario inside run() propagates too (invalid_argument from the
// delay model), rather than poisoning other points.
TEST(SweepEngine, InvalidScenarioThrowsFromRun) {
  sweep::SweepSpec spec = small_grid();
  spec.axes[1] = sweep::values(sweep::Variable::kLineInductance, {1e-8, -1e-8, 1e-7});
  const sweep::SweepEngine engine(engine_options(2));
  EXPECT_THROW(engine.run(spec, sweep::Analysis::kClosedFormDelay),
               std::invalid_argument);
}

TEST(SweepEngine, RepeaterBatchMatchesSerialOptimize) {
  // T_{L/R} ~ 3 — the paper's "common for wide wires" regime, where the
  // optimum has k > 1 and both coarse passes search a nonempty box.
  const tline::LineParams line{100.0, 10e-9, 2e-12};
  const core::MinBuffer buffer{5000.0, 6.6e-15, 1.0, 0.0};
  const core::OptimizedDesign serial = core::optimize(line, buffer);
  const sweep::SweepEngine engine(engine_options(4));
  const core::OptimizedDesign parallel = engine.optimize_repeater(line, buffer);
  // Both coarse passes feed the same Nelder-Mead polish; the minimum is
  // flat, so delays agree far tighter than the (h, k) coordinates.
  EXPECT_NEAR(parallel.continuous_delay, serial.continuous_delay,
              1e-7 * serial.continuous_delay);
  EXPECT_NEAR(parallel.continuous.size, serial.continuous.size,
              1e-3 * serial.continuous.size);
  EXPECT_NEAR(parallel.continuous.sections, serial.continuous.sections,
              1e-3 * serial.continuous.sections);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(10000);
  std::atomic<std::size_t> max_worker{0};
  pool.parallel_for(hits.size(), [&](std::size_t i, std::size_t worker) {
    hits[i].fetch_add(1);
    std::size_t seen = max_worker.load();
    while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  EXPECT_LT(max_worker.load(), 4u);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  runtime::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(32 * 8);
  pool.parallel_for(32, [&](std::size_t i, std::size_t) {
    pool.parallel_for(8, [&](std::size_t j, std::size_t) {
      hits[i * 8 + j].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInlineWithoutBackgroundWorkers) {
  runtime::ThreadPool pool(1);
  std::vector<int> hits(100, 0);  // plain ints: no other thread may touch them
  pool.parallel_for(hits.size(), [&](std::size_t i, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

}  // namespace
