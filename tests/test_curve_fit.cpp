#include "numeric/curve_fit.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

std::vector<double> linspace(double lo, double hi, int n) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = lo + (hi - lo) * i / (n - 1);
  return v;
}

TEST(CurveFit, RecoversLinearModel) {
  const FitModel model = [](double x, const std::vector<double>& p) {
    return p[0] + p[1] * x;
  };
  const auto xs = linspace(0.0, 10.0, 25);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 - 0.5 * x);
  const auto fit = fit_levenberg_marquardt(model, xs, ys, {0.0, 0.0});
  EXPECT_NEAR(fit.params[0], 3.0, 1e-8);
  EXPECT_NEAR(fit.params[1], -0.5, 1e-8);
  EXPECT_LT(fit.rss, 1e-15);
}

TEST(CurveFit, RecoversExponentialDecay) {
  const FitModel model = [](double x, const std::vector<double>& p) {
    return p[0] * std::exp(-p[1] * x);
  };
  const auto xs = linspace(0.0, 5.0, 40);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * std::exp(-1.3 * x));
  const auto fit = fit_levenberg_marquardt(model, xs, ys, {1.0, 0.5});
  EXPECT_NEAR(fit.params[0], 2.5, 1e-6);
  EXPECT_NEAR(fit.params[1], 1.3, 1e-6);
}

TEST(CurveFit, RecoversThreeParameterDelayForm) {
  // The exact functional family of the paper's eq. (9).
  const FitModel model = [](double z, const std::vector<double>& p) {
    return std::exp(-p[0] * std::pow(z, p[1])) + p[2] * z;
  };
  const auto xs = linspace(0.05, 3.0, 60);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(std::exp(-2.9 * std::pow(x, 1.35)) + 1.48 * x);
  const auto fit = fit_levenberg_marquardt(model, xs, ys, {2.0, 1.0, 1.0});
  EXPECT_NEAR(fit.params[0], 2.9, 1e-4);
  EXPECT_NEAR(fit.params[1], 1.35, 1e-4);
  EXPECT_NEAR(fit.params[2], 1.48, 1e-5);
}

TEST(CurveFit, NoisyDataStillCloses) {
  const FitModel model = [](double x, const std::vector<double>& p) {
    return p[0] * x * x + p[1];
  };
  const auto xs = linspace(-2.0, 2.0, 50);
  std::vector<double> ys;
  int i = 0;
  for (double x : xs)
    ys.push_back(4.0 * x * x + 1.0 + 1e-3 * std::sin(37.0 * ++i));  // deterministic noise
  const auto fit = fit_levenberg_marquardt(model, xs, ys, {1.0, 0.0});
  EXPECT_NEAR(fit.params[0], 4.0, 1e-3);
  EXPECT_NEAR(fit.params[1], 1.0, 1e-3);
}

TEST(CurveFit, WeightsEmphasizeRegion) {
  // A line fit with one wild outlier: weight 0 removes its influence.
  const FitModel model = [](double x, const std::vector<double>& p) {
    return p[0] * x;
  };
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 100.0};
  std::vector<double> w{1.0, 1.0, 1.0, 0.0};
  const auto fit = fit_levenberg_marquardt(model, xs, ys, {1.0}, {}, w);
  EXPECT_NEAR(fit.params[0], 2.0, 1e-9);
}

TEST(CurveFit, RejectsBadInputs) {
  const FitModel model = [](double x, const std::vector<double>& p) { return p[0] * x; };
  EXPECT_THROW(fit_levenberg_marquardt(model, {}, {}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_levenberg_marquardt(model, {1.0}, {1.0, 2.0}, {1.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_levenberg_marquardt(model, {1.0}, {1.0}, {}), std::invalid_argument);
  EXPECT_THROW(fit_levenberg_marquardt(model, {1.0, 2.0}, {1.0, 2.0}, {1.0}, {},
                                       {1.0}),
               std::invalid_argument);
}

// Power-law recovery across decades of exponent.
class PowerLawFit : public ::testing::TestWithParam<double> {};

TEST_P(PowerLawFit, RecoversExponent) {
  const double exponent = GetParam();
  const FitModel model = [](double x, const std::vector<double>& p) {
    return p[0] * std::pow(x, p[1]);
  };
  const auto xs = linspace(0.5, 4.0, 30);
  std::vector<double> ys;
  for (double x : xs) ys.push_back(1.7 * std::pow(x, exponent));
  const auto fit = fit_levenberg_marquardt(model, xs, ys, {1.0, 1.0});
  EXPECT_NEAR(fit.params[0], 1.7, 1e-5);
  EXPECT_NEAR(fit.params[1], exponent, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PowerLawFit,
                         ::testing::Values(0.24, 0.5, 1.0, 1.35, 2.0, 3.0));

}  // namespace
