// Moment-matching model-order reduction (src/mor/) tests: block moments
// against the closed-form denominator expansion, AWE/Pade and block-Arnoldi
// reductions against the MNA transient oracle, the analytic response
// metrics, the reduced crosstalk path, and the sweep engine's reduced
// analyses (one symbolic factorization, bit-identical at any thread count).
#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/crosstalk.h"
#include "core/two_pole.h"
#include "mor/moments.h"
#include "mor/reduce.h"
#include "mor/response.h"
#include "numeric/sparse.h"
#include "sim/builders.h"
#include "sweep/sweep.h"
#include "tline/transfer.h"

namespace {

using namespace rlcsim;

// The paper's canonical moderately damped system.
const tline::GateLineLoad kSystem{500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12};

mor::LinearSystem linear_system_of(const tline::GateLineLoad& system,
                                   int segments) {
  const sim::Circuit circuit = sim::build_gate_line_load(system, segments);
  const sim::MnaAssembler mna(circuit);
  return mor::make_linear_system(mna, {"out"});
}

// ---------------------------------------------------------------------------
// Moments
// ---------------------------------------------------------------------------

TEST(Moments, MatchClosedFormDenominatorExpansion) {
  // H(s) = 1/(1 + b1 s + b2 s^2 + ...) expands as 1 - b1 s + (b1^2 - b2) s^2.
  // The ladder's b1 equals the distributed b1 EXACTLY (the pi ladder's
  // trapezoidal Elmore sum is exact for the linear integrand); b2 converges
  // with segment count.
  const auto expected = tline::moments(kSystem);
  const mor::LinearSystem linear = linear_system_of(kSystem, 40);
  const mor::MomentGenerator generator(linear);
  const auto m =
      generator.transfer_moments(linear.outputs[0], linear.inputs[0], 3);
  EXPECT_NEAR(m[0], 1.0, 1e-12);
  EXPECT_NEAR(m[1], -expected.b1, 1e-9 * expected.b1);
  EXPECT_NEAR(m[2], expected.b1 * expected.b1 - expected.b2,
              1e-3 * expected.b2);
}

TEST(Moments, BlockRecurrenceMatchesTransferMoments) {
  const mor::LinearSystem linear = linear_system_of(kSystem, 24);
  const mor::MomentGenerator generator(linear);
  const auto blocks = generator.block_moments(linear.inputs[0], 4);
  const auto transfer =
      generator.transfer_moments(linear.outputs[0], linear.inputs[0], 4);
  for (int k = 0; k < 4; ++k) {
    double dot = 0.0;
    for (std::size_t i = 0; i < linear.outputs[0].size(); ++i)
      dot += linear.outputs[0][i] * blocks[static_cast<std::size_t>(k)][i];
    EXPECT_DOUBLE_EQ(dot, transfer[static_cast<std::size_t>(k)]) << "k=" << k;
  }
}

TEST(Moments, MakeLinearSystemRejectsUnknownNode) {
  const sim::Circuit circuit = sim::build_gate_line_load(kSystem, 8);
  const sim::MnaAssembler mna(circuit);
  EXPECT_THROW(mor::make_linear_system(mna, {"nonexistent"}),
               std::invalid_argument);
}

TEST(Moments, ConductanceReuseReplaysOneSymbolic) {
  const mor::LinearSystem linear = linear_system_of(kSystem, 40);
  mor::ConductanceReuse reuse;
  numeric::sparse_lu_stats() = {};
  const mor::MomentGenerator first(linear, &reuse);
  EXPECT_EQ(numeric::sparse_lu_stats().symbolic, 1u);
  // Topologically identical rebuild: numeric-only refactorization.
  const mor::LinearSystem again =
      linear_system_of({600.0, {1200.0, 2e-7, 1.5e-12}, 0.4e-12}, 40);
  const mor::MomentGenerator second(again, &reuse);
  EXPECT_EQ(numeric::sparse_lu_stats().symbolic, 1u);
  EXPECT_EQ(reuse.reuse_hits, 1u);
  // A structurally DIFFERENT system must not touch the record.
  const mor::LinearSystem other = linear_system_of(kSystem, 17);
  const mor::MomentGenerator third(other, &reuse);
  EXPECT_EQ(numeric::sparse_lu_stats().symbolic, 2u);
  EXPECT_EQ(reuse.reuse_hits, 1u);
}

// ---------------------------------------------------------------------------
// Pade / AWE
// ---------------------------------------------------------------------------

TEST(PadeReduce, ModelReproducesItsMoments) {
  const mor::LinearSystem linear = linear_system_of(kSystem, 40);
  const mor::MomentGenerator generator(linear);
  const auto m =
      generator.transfer_moments(linear.outputs[0], linear.inputs[0], 8);
  const mor::PoleResidueModel model = mor::pade_reduce(m, 4);
  ASSERT_EQ(model.order, 4);
  EXPECT_TRUE(model.stable);
  EXPECT_LT(model.max_real_pole, 0.0);
  // A full-order [3/4] Pade matches all 8 moments; the residue fit pins the
  // first 4 exactly and the Hankel system the next 4.
  for (int k = 0; k < 8; ++k) {
    const double scale = std::fabs(m[static_cast<std::size_t>(k)]) + 1e-300;
    EXPECT_NEAR(model.moment(k) / scale, m[static_cast<std::size_t>(k)] / scale,
                1e-6)
        << "k=" << k;
  }
  EXPECT_NEAR(model.dc_gain, 1.0, 1e-9);
}

TEST(PadeReduce, ConjugatePairsAreExactlySymmetric) {
  // Underdamped line: complex poles must come in exact conjugate pairs.
  const tline::GateLineLoad underdamped{50.0, {100.0, 1e-6, 1e-12}, 0.1e-12};
  const mor::LinearSystem linear = linear_system_of(underdamped, 40);
  const mor::MomentGenerator generator(linear);
  const auto m =
      generator.transfer_moments(linear.outputs[0], linear.inputs[0], 12);
  const mor::PoleResidueModel model = mor::pade_reduce(m, 6);
  bool found_complex = false;
  for (std::size_t i = 0; i < model.poles.size();) {
    if (model.poles[i].imag() != 0.0) {
      found_complex = true;
      ASSERT_LT(i + 1, model.poles.size());
      EXPECT_EQ(model.poles[i + 1], std::conj(model.poles[i]));
      EXPECT_EQ(model.residues[i + 1], std::conj(model.residues[i]));
      i += 2;
    } else {
      EXPECT_EQ(model.residues[i].imag(), 0.0);
      ++i;
    }
  }
  EXPECT_TRUE(found_complex) << "expected ringing poles on this line";
  // Real response at arbitrary times: imaginary parts cancel exactly.
  const double t = 0.5e-9;
  EXPECT_TRUE(std::isfinite(model.step_response(t)));
}

TEST(PadeReduce, ZeroMomentsGiveZeroModel) {
  const mor::PoleResidueModel model =
      mor::pade_reduce(std::vector<double>(8, 0.0), 4);
  EXPECT_EQ(model.order, 0);
  EXPECT_EQ(model.dc_gain, 0.0);
  EXPECT_EQ(model.step_response(1e-9), 0.0);
  EXPECT_TRUE(model.stable);
}

TEST(PadeReduce, ArgumentValidation) {
  EXPECT_THROW(mor::pade_reduce({1.0, -1e-9}, 0), std::invalid_argument);
  EXPECT_THROW(mor::pade_reduce({1.0, -1e-9}, 2), std::invalid_argument);
}

TEST(DelayExtraction, RecombinationRoundTrips) {
  const std::vector<double> m{1.0, -2e-9, 3e-18, -4e-27, 5e-36, -6e-45};
  const auto shifted = mor::extract_delay(m, 1e-9);
  const auto back = mor::extract_delay(shifted, -1e-9);
  for (std::size_t k = 0; k < m.size(); ++k)
    EXPECT_NEAR(back[k], m[k], 1e-12 * std::fabs(m[k]) + 1e-300) << "k=" << k;
}

TEST(DelayExtraction, LowLossLineUsesTransportDelay) {
  // A near-lossless line's 50% crossing is a wavefront arrival; the plain
  // s = 0 expansion misses it by several percent at q = 4 while the
  // delay-extracted reduction lands close to the transient oracle.
  const tline::GateLineLoad wave{500.0, {500.0, 1e-5, 1e-12}, 1e-12};
  const double oracle = sim::simulate_gate_line_delay(wave, 60);
  const double reduced = mor::reduced_gate_delay(wave, 60, 4);
  EXPECT_NEAR(reduced, oracle, 0.03 * oracle);
}

// ---------------------------------------------------------------------------
// Reduced delay vs the transient oracle
// ---------------------------------------------------------------------------

TEST(ReducedDelay, MatchesTransientAcrossDampingRegimes) {
  const tline::GateLineLoad cases[] = {
      {500.0, {1000.0, 1e-7, 1e-12}, 0.5e-12},  // moderately damped
      {5000.0, {5000.0, 1e-8, 1e-12}, 1e-12},   // heavily damped (RC-like)
      {500.0, {500.0, 1e-6, 1e-12}, 1e-12},     // underdamped, ringing
  };
  for (const auto& system : cases) {
    const double oracle = sim::simulate_gate_line_delay(system, 60);
    const double reduced = mor::reduced_gate_delay(system, 60, 6);
    EXPECT_NEAR(reduced, oracle, 0.02 * oracle)
        << "Rt=" << system.line.total_resistance
        << " Lt=" << system.line.total_inductance;
  }
}

TEST(ReducedDelay, OrderTwoTracksTwoPoleModel) {
  // q = 2 is the paper's model class: same 2-pole denominator family, plus
  // the Pade numerator. They need not agree exactly but must be close on a
  // damped line.
  const double two_pole = core::TwoPoleModel(kSystem).threshold_delay(0.5);
  const double reduced = mor::reduced_gate_delay(kSystem, 60, 2);
  EXPECT_NEAR(reduced, two_pole, 0.05 * two_pole);
}

// ---------------------------------------------------------------------------
// Block Arnoldi
// ---------------------------------------------------------------------------

TEST(Arnoldi, MatchesPadeOnSingleInput) {
  const mor::LinearSystem linear = linear_system_of(kSystem, 40);
  const mor::ReducedModel reduced = mor::arnoldi_reduce(linear, 8);
  EXPECT_EQ(reduced.order(), 8);
  const mor::PoleResidueModel projected = mor::pole_residue(reduced, 0, 0);
  EXPECT_TRUE(projected.stable);
  EXPECT_NEAR(projected.dc_gain, 1.0, 1e-6);

  mor::AnalyticResponse response;
  response.add_step(projected, 1.0);
  const auto crossing = response.first_crossing(0.5);
  ASSERT_TRUE(crossing.has_value());
  const double oracle = sim::simulate_gate_line_delay(kSystem, 40);
  EXPECT_NEAR(*crossing, oracle, 0.01 * oracle);
}

TEST(Arnoldi, ProjectionPreservesEarlyMoments) {
  // A q-dimensional block-Krylov projection matches the first ~q/p block
  // moments of every (output, input) transfer.
  const mor::LinearSystem linear = linear_system_of(kSystem, 40);
  const mor::MomentGenerator generator(linear);
  const auto exact =
      generator.transfer_moments(linear.outputs[0], linear.inputs[0], 6);
  const mor::ReducedModel reduced = mor::arnoldi_reduce(linear, 6);
  const mor::PoleResidueModel projected = mor::pole_residue(reduced, 0, 0);
  for (int k = 0; k < 4; ++k) {
    const double scale = std::fabs(exact[static_cast<std::size_t>(k)]);
    EXPECT_NEAR(projected.moment(k), exact[static_cast<std::size_t>(k)],
                1e-5 * scale)
        << "k=" << k;
  }
}

TEST(Arnoldi, DeflationOnDependentInputs) {
  // Two identical input columns: the second block-0 vector is linearly
  // dependent and must be deflated, not kept as noise.
  mor::LinearSystem linear = linear_system_of(kSystem, 24);
  linear.inputs.push_back(linear.inputs[0]);
  linear.input_names.push_back("dup");
  const mor::ReducedModel reduced = mor::arnoldi_reduce(linear, 6);
  EXPECT_GE(reduced.deflated, 1);
  EXPECT_EQ(reduced.order(), 6);
}

TEST(Arnoldi, ArgumentValidation) {
  const mor::LinearSystem linear = linear_system_of(kSystem, 12);
  EXPECT_THROW(mor::arnoldi_reduce(linear, 0), std::invalid_argument);
  const mor::ReducedModel reduced = mor::arnoldi_reduce(linear, 4);
  EXPECT_THROW(mor::pole_residue(reduced, 0, 99), std::invalid_argument);
  EXPECT_THROW(mor::pole_residue(reduced, 99, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Analytic response metrics
// ---------------------------------------------------------------------------

TEST(AnalyticResponse, SingleRealPoleMatchesClosedForm) {
  // H = (1/tau)/(s + 1/tau): step response 1 - e^{-t/tau}.
  const double tau = 1e-9;
  mor::PoleResidueModel model;
  model.poles = {std::complex<double>(-1.0 / tau, 0.0)};
  model.residues = {std::complex<double>(1.0 / tau, 0.0)};
  model.order = 1;
  model.dc_gain = 1.0;
  model.stable = true;
  model.max_real_pole = -1.0 / tau;

  mor::AnalyticResponse response;
  response.add_step(model, 1.0);
  EXPECT_NEAR(response.value(tau), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(response.final_value(), 1.0, 1e-12);
  const auto t50 = response.first_crossing(0.5);
  ASSERT_TRUE(t50.has_value());
  EXPECT_NEAR(*t50, tau * std::log(2.0), 1e-12 * tau);

  const auto metrics = response.measure(0.0, 1.0);
  ASSERT_TRUE(metrics.delay_50.has_value());
  ASSERT_TRUE(metrics.rise_10_90.has_value());
  // 10-90 rise of a single pole: tau * ln(9).
  EXPECT_NEAR(*metrics.rise_10_90, tau * std::log(9.0), 1e-9 * tau);
  EXPECT_NEAR(metrics.overshoot, 0.0, 1e-9);
}

TEST(AnalyticResponse, RampSettlesToSameFinalValue) {
  const double tau = 1e-9;
  mor::PoleResidueModel model;
  model.poles = {std::complex<double>(-1.0 / tau, 0.0)};
  model.residues = {std::complex<double>(1.0 / tau, 0.0)};
  model.order = 1;
  model.dc_gain = 1.0;

  mor::AnalyticResponse step;
  step.add_step(model, 1.0);
  mor::AnalyticResponse ramp;
  ramp.add_ramp(model, 1.0, 0.5e-9);
  EXPECT_NEAR(ramp.value(20.0 * tau), step.value(20.0 * tau), 1e-9);
  // A ramped input can only be slower to 50%.
  const auto step50 = step.first_crossing(0.5);
  const auto ramp50 = ramp.first_crossing(0.5);
  ASSERT_TRUE(step50 && ramp50);
  EXPECT_GT(*ramp50, *step50);
}

TEST(AnalyticResponse, OvershootMatchesSecondOrderFormula) {
  // Underdamped 2nd-order system: overshoot = exp(-pi zeta / sqrt(1-zeta^2)).
  const double wn = 2e9, zeta = 0.3;
  const double wd = wn * std::sqrt(1.0 - zeta * zeta);
  const std::complex<double> p(-zeta * wn, wd);
  // H = wn^2 / (s^2 + 2 zeta wn s + wn^2) in pole-residue form.
  const std::complex<double> r = wn * wn / (p - std::conj(p));
  mor::PoleResidueModel model;
  model.poles = {p, std::conj(p)};
  model.residues = {r, std::conj(r)};
  model.order = 2;
  model.dc_gain = 1.0;

  mor::AnalyticResponse response;
  response.add_step(model, 1.0);
  const auto metrics = response.measure(0.0, 1.0);
  const double expected =
      std::exp(-std::numbers::pi * zeta / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(metrics.overshoot, expected, 1e-6);
  EXPECT_NEAR(metrics.peak_noise, expected, 1e-6);  // overshoot IS the excursion
}

TEST(AnalyticResponse, NeverCrossingIsAbsent) {
  mor::PoleResidueModel model;
  model.poles = {std::complex<double>(-1e9, 0.0)};
  model.residues = {std::complex<double>(5e8, 0.0)};  // dc 0.5
  model.order = 1;
  model.dc_gain = 0.5;
  mor::AnalyticResponse response;
  response.add_step(model, 1.0);
  EXPECT_FALSE(response.first_crossing(0.9).has_value());
}

// ---------------------------------------------------------------------------
// Reduced crosstalk
// ---------------------------------------------------------------------------

TEST(ReducedCrosstalk, TracksTransientOnTheBusCorners) {
  const tline::CoupledBus bus =
      tline::make_bus(5, {200.0, 5e-9, 1e-12}, 0.4, 0.25);
  core::CrosstalkOptions opt;
  opt.driver_resistance = 100.0;
  opt.load_capacitance = 50e-15;
  opt.segments = 16;
  for (auto pattern : {core::SwitchingPattern::kSamePhase,
                       core::SwitchingPattern::kOppositePhase}) {
    const auto full = core::analyze_crosstalk(bus, pattern, opt);
    const auto reduced = core::analyze_crosstalk_reduced(bus, pattern, opt, 4);
    ASSERT_TRUE(full.victim_delay_50 && reduced.victim_delay_50);
    EXPECT_NEAR(*reduced.victim_delay_50, *full.victim_delay_50,
                0.03 * *full.victim_delay_50)
        << core::switching_pattern_name(pattern);
  }
  // Quiet-victim peak noise, the classic crosstalk metric.
  const auto full = core::analyze_crosstalk(
      bus, core::SwitchingPattern::kQuietVictim, opt);
  const auto reduced = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kQuietVictim, opt, 6);
  EXPECT_FALSE(reduced.victim_delay_50.has_value());
  EXPECT_NEAR(reduced.peak_noise, full.peak_noise, 0.10 * full.peak_noise);
}

TEST(ReducedCrosstalk, MillerOrderingHoldsAtOrderTwo) {
  // The ROADMAP's Miller-corrected two-pole: even at q = 2 the reduced
  // model must order the corners (same-phase < opposite-phase delay).
  const tline::CoupledBus bus =
      tline::make_bus(3, {200.0, 5e-9, 1e-12}, 0.4, 0.2);
  core::CrosstalkOptions opt;
  opt.driver_resistance = 100.0;
  opt.load_capacitance = 50e-15;
  opt.segments = 16;
  const auto same = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kSamePhase, opt, 2);
  const auto opposite = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kOppositePhase, opt, 2);
  ASSERT_TRUE(same.victim_delay_50 && opposite.victim_delay_50);
  EXPECT_LT(*same.victim_delay_50, *opposite.victim_delay_50);
  ASSERT_TRUE(opposite.delay_pushout.has_value());
  EXPECT_GT(*opposite.delay_pushout, 0.0);
}

// ---------------------------------------------------------------------------
// Reduced sweep analyses
// ---------------------------------------------------------------------------

sweep::SweepSpec reduced_spec() {
  sweep::SweepSpec spec;
  spec.base.system = {100.0, {200.0, 5e-9, 1e-12}, 50e-15};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.reduction_order = 4;
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.1, 0.5, 3),
      sweep::linspace(sweep::Variable::kMutualRatio, 0.05, 0.3, 3),
      sweep::switching_patterns({core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase}),
  };
  return spec;
}

TEST(ReducedSweep, BitIdenticalAcrossThreadCountsWithOneSymbolic) {
  const sweep::SweepSpec spec = reduced_spec();
  std::vector<double> reference;
  for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    sweep::EngineOptions options;
    options.threads = threads;
    options.segments = 12;
    const sweep::SweepEngine engine(options);
    const auto result = engine.run(spec, sweep::Analysis::kReducedDelay);
    ASSERT_EQ(result.values.size(), spec.size());
    for (double v : result.values) EXPECT_TRUE(std::isfinite(v));
    // ONE symbolic factorization (the G LU) for the whole sweep.
    EXPECT_EQ(result.symbolic_factorizations, 1u) << threads << " threads";
    if (threads == 1) {
      reference = result.values;
    } else {
      ASSERT_EQ(result.values.size(), reference.size());
      EXPECT_EQ(0, std::memcmp(result.values.data(), reference.data(),
                               reference.size() * sizeof(double)));
      EXPECT_GT(result.solver_reuse_hits, 0u);
    }
  }
}

TEST(ReducedSweep, ReductionOrderAxisConvergesTowardTransient) {
  sweep::SweepSpec spec;
  spec.base.system = {100.0, {200.0, 5e-9, 1e-12}, 50e-15};
  spec.base.xtalk = {3, 0.3, 0.2, core::SwitchingPattern::kOppositePhase, 0, 4};
  spec.axes = {sweep::values(sweep::Variable::kReductionOrder, {2, 6})};

  sweep::EngineOptions options;
  options.threads = 1;
  options.segments = 12;
  const sweep::SweepEngine engine(options);
  const auto reduced = engine.run(spec, sweep::Analysis::kReducedDelay);

  sweep::SweepSpec transient_spec = spec;
  transient_spec.axes.clear();
  const auto transient =
      engine.run(transient_spec, sweep::Analysis::kCrosstalkDelay);
  const double oracle = transient.values[0];
  ASSERT_TRUE(std::isfinite(oracle));
  // Higher order is at least as accurate, and q = 6 is within 2%.
  EXPECT_LE(std::fabs(reduced.values[1] - oracle),
            std::fabs(reduced.values[0] - oracle) + 1e-15);
  EXPECT_NEAR(reduced.values[1], oracle, 0.02 * oracle);
}

TEST(ReducedSweep, AxisValidation) {
  sweep::SweepSpec spec = reduced_spec();
  spec.axes.push_back(sweep::values(sweep::Variable::kReductionOrder, {0}));
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kReductionOrder, {2.5});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kShieldEvery, {-1});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kShieldEvery, {0, 1, 2});
  EXPECT_NO_THROW(spec.validate());
}

// ---------------------------------------------------------------------------
// Projection-basis reuse across a sweep (EngineOptions::reuse_projection)
// ---------------------------------------------------------------------------

TEST(ProjectionReuse, ProjectOntoReproducesArnoldiAtTheNominalPoint) {
  const mor::LinearSystem linear = linear_system_of(kSystem, 40);
  mor::ArnoldiBasis basis;
  const mor::ReducedModel direct = mor::arnoldi_reduce(linear, 6, nullptr, &basis);
  ASSERT_EQ(basis.order(), 6u);
  ASSERT_EQ(basis.dimension(), linear.unknowns());
  const mor::ReducedModel projected = mor::project_onto(linear, basis);
  ASSERT_EQ(projected.order(), direct.order());
  for (int i = 0; i < direct.order(); ++i)
    for (int j = 0; j < direct.order(); ++j) {
      EXPECT_DOUBLE_EQ(projected.G(i, j), direct.G(i, j));
      EXPECT_DOUBLE_EQ(projected.C(i, j), direct.C(i, j));
    }

  // Structural mismatch (different segment count -> different dimension) is
  // rejected, not silently mis-projected.
  const mor::LinearSystem other = linear_system_of(kSystem, 41);
  EXPECT_THROW(mor::project_onto(other, basis), std::invalid_argument);
  EXPECT_THROW(mor::project_onto(linear, mor::ArnoldiBasis{}),
               std::invalid_argument);
}

TEST(ProjectionReuse, SweepTracksReprojectionAndStaysDeterministic) {
  // Accuracy-vs-reprojection: a basis projected once at the nominal point
  // must track fresh per-point reductions across a moderate coupling range,
  // and its results must stay bit-identical at any thread count.
  sweep::SweepSpec spec;
  spec.base.system = {100.0, {200.0, 5e-9, 1e-12}, 50e-15};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.cc_ratio = 0.35;
  spec.base.xtalk.lm_ratio = 0.15;
  spec.base.xtalk.reduction_order = 6;
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.25, 0.45, 3),
      sweep::linspace(sweep::Variable::kMutualRatio, 0.10, 0.20, 3),
  };

  sweep::EngineOptions fresh_options;
  fresh_options.segments = 20;
  const sweep::SweepEngine fresh_engine(fresh_options);
  const sweep::SweepResult fresh =
      fresh_engine.run(spec, sweep::Analysis::kReducedDelay);

  sweep::EngineOptions projected_options = fresh_options;
  projected_options.reuse_projection = true;
  const sweep::SweepEngine projected_engine(projected_options);
  const sweep::SweepResult projected =
      projected_engine.run(spec, sweep::Analysis::kReducedDelay);

  ASSERT_EQ(projected.values.size(), fresh.values.size());
  for (std::size_t i = 0; i < fresh.values.size(); ++i) {
    ASSERT_TRUE(std::isfinite(projected.values[i]));
    // A few percent across a +-30% coupling excursion around nominal.
    EXPECT_LT(std::fabs(projected.values[i] - fresh.values[i]) / fresh.values[i],
              0.05)
        << "grid point " << i;
  }
  // The whole projected sweep performs exactly ONE symbolic factorization
  // (the nominal Arnoldi's G), like every reduced sweep.
  EXPECT_EQ(projected.symbolic_factorizations, 1u);

  // Determinism: bit-identical at 1 and 3 threads.
  projected_options.threads = 3;
  const sweep::SweepEngine threaded(projected_options);
  const sweep::SweepResult threaded_result =
      threaded.run(spec, sweep::Analysis::kReducedDelay);
  EXPECT_EQ(threaded_result.values, projected.values);
}

TEST(ProjectionReuse, ReductionOrderAxisIsNotFlattenedByTheBasis) {
  // The basis fixes q, so a kReductionOrder axis must fall back to fresh
  // per-point reductions at each point's own order — a projected sweep used
  // to return the nominal-order value at every order, silently.
  sweep::SweepSpec spec;
  spec.base.system = {100.0, {200.0, 5e-9, 1e-12}, 50e-15};
  spec.base.xtalk.bus_lines = 3;
  spec.base.xtalk.cc_ratio = 0.3;
  spec.base.xtalk.lm_ratio = 0.15;
  // Nominal (point 0) at a robust order; the q = 2 point must NOT silently
  // reuse its basis.
  spec.axes = {sweep::values(sweep::Variable::kReductionOrder, {6.0, 2.0})};
  sweep::EngineOptions options;
  options.segments = 16;
  const sweep::SweepEngine fresh_engine(options);
  const auto fresh = fresh_engine.run(spec, sweep::Analysis::kReducedDelay);
  options.reuse_projection = true;
  const sweep::SweepEngine projected_engine(options);
  const auto projected = projected_engine.run(spec, sweep::Analysis::kReducedDelay);
  // Orders differ -> values differ; the off-nominal point matches the
  // fresh reduction exactly (identical code path, fresh symbolic).
  EXPECT_NE(projected.values[0], projected.values[1]);
  EXPECT_DOUBLE_EQ(projected.values[1], fresh.values[1]);
}

TEST(ProjectionReuse, MixedTopologyGridFallsBackPerPoint) {
  // A kBusLines axis changes the circuit structure: those points cannot
  // ride the nominal basis and must fall back to fresh reductions instead
  // of throwing or projecting garbage.
  sweep::SweepSpec spec;
  spec.base.system = {100.0, {200.0, 5e-9, 1e-12}, 50e-15};
  spec.base.xtalk.cc_ratio = 0.3;
  spec.base.xtalk.lm_ratio = 0.15;
  spec.base.xtalk.reduction_order = 5;
  spec.axes = {sweep::values(sweep::Variable::kBusLines, {3.0, 5.0})};
  sweep::EngineOptions options;
  options.segments = 16;
  options.reuse_projection = true;
  const sweep::SweepEngine engine(options);
  const sweep::SweepResult result =
      engine.run(spec, sweep::Analysis::kReducedDelay);
  ASSERT_EQ(result.values.size(), 2u);
  for (double v : result.values) EXPECT_TRUE(std::isfinite(v) && v > 0.0);
}

}  // namespace
