// Coupled multi-line bus (CoupledBus) + crosstalk analysis tests, plus the
// sentinel-metric regression tests: bandwidth_3db and measure_step must
// report "not in record" as ABSENT, never as a fabricated 0, and the
// two-pole threshold query must fail loudly instead of handing the root
// finder an unbracketed interval.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/crosstalk.h"
#include "core/two_pole.h"
#include "sim/ac.h"
#include "sim/builders.h"
#include "sim/transient.h"
#include "sweep/sweep.h"
#include "tline/coupled_bus.h"
#include "tline/step_response.h"

namespace {

using namespace rlcsim;

// Each line: moderately damped wide wire so delays are well-defined.
const tline::LineParams kLine{200.0, 5e-9, 1e-12};
constexpr double kRdrv = 100.0;
constexpr double kCload = 50e-15;

core::CrosstalkOptions options_for(int segments) {
  core::CrosstalkOptions opt;
  opt.driver_resistance = kRdrv;
  opt.load_capacitance = kCload;
  opt.segments = segments;
  return opt;
}

// ---------------------------------------------------------------------------
// CoupledBus model
// ---------------------------------------------------------------------------

TEST(CoupledBus, MakeBusDerivesTotalsFromRatios) {
  const tline::CoupledBus bus = tline::make_bus(4, kLine, 0.5, 0.3);
  EXPECT_EQ(bus.lines, 4);
  EXPECT_DOUBLE_EQ(bus.coupling_capacitance, 0.5 * kLine.total_capacitance);
  EXPECT_DOUBLE_EQ(bus.mutual_inductance, 0.3 * kLine.total_inductance);
  EXPECT_DOUBLE_EQ(bus.cc_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(bus.lm_ratio(), 0.3);
  EXPECT_EQ(bus.victim_index(), 1);
  EXPECT_EQ(tline::make_bus(2, kLine, 0.0, 0.0).victim_index(), 0);
  EXPECT_EQ(tline::make_bus(5, kLine, 0.0, 0.0).victim_index(), 2);
  EXPECT_FALSE(tline::describe(bus).empty());
}

TEST(CoupledBus, PositiveDefinitenessBoundTightensWithWidth) {
  // k < 1/(2 cos(pi/(N+1))): 1 for a pair, -> 1/2 for wide buses.
  EXPECT_NEAR(tline::max_lm_ratio(2), 1.0, 1e-12);
  EXPECT_NEAR(tline::max_lm_ratio(3), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(tline::max_lm_ratio(5), 1.0 / std::sqrt(3.0), 1e-12);
  // k = 0.8 is a valid pair but an indefinite (unstable) 5-line bus; the
  // N-dependent bound must reject it up front instead of letting the
  // transient silently diverge.
  EXPECT_NO_THROW(tline::make_bus(2, kLine, 0.1, 0.8));
  EXPECT_THROW(tline::make_bus(5, kLine, 0.1, 0.8), std::invalid_argument);
}

TEST(CoupledBus, ValidationRejectsBadFields) {
  EXPECT_THROW(tline::make_bus(1, kLine, 0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(tline::make_bus(3, kLine, -0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(tline::make_bus(3, kLine, 0.1, -0.1), std::invalid_argument);
  // k >= 1 would make the segment inductance matrix singular/indefinite.
  EXPECT_THROW(tline::make_bus(3, kLine, 0.1, 1.0), std::invalid_argument);
  tline::CoupledBus nan_bus;
  nan_bus.lines = 3;
  nan_bus.line = kLine;
  nan_bus.coupling_capacitance = std::nan("");
  EXPECT_THROW(tline::validate(nan_bus), std::invalid_argument);
  // The line itself is validated too (RC-only lines are rejected).
  EXPECT_THROW(tline::make_bus(3, {100.0, 0.0, 1e-12}, 0.1, 0.0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// MNA builder
// ---------------------------------------------------------------------------

TEST(CoupledBusBuilder, StampsLaddersAndNearestNeighborCoupling) {
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.3, 0.2);
  const int segments = 6;
  const sim::Circuit c = sim::build_coupled_bus(
      bus, {sim::BusDrive::kRising, sim::BusDrive::kQuietLow,
            sim::BusDrive::kFalling},
      kRdrv, kCload, segments);
  EXPECT_NO_THROW(c.validate());
  EXPECT_EQ(c.inductors().size(), 3u * segments);
  // Nearest-neighbor only: 2 adjacent pairs x segments mutuals.
  EXPECT_EQ(c.mutuals().size(), 2u * segments);
  for (const auto& m : c.mutuals()) EXPECT_DOUBLE_EQ(m.coupling, 0.2);
  // Each adjacent pair's line-to-line capacitance sums to the total Cc.
  for (const char* pair : {"bus.p0.cc", "bus.p1.cc"}) {
    double cc = 0.0;
    for (const auto& cap : c.capacitors())
      if (cap.name.rfind(pair, 0) == 0) cc += cap.capacitance;
    EXPECT_NEAR(cc, bus.coupling_capacitance, 1e-24) << pair;
  }
}

TEST(CoupledBusBuilder, Validation) {
  const tline::CoupledBus bus = tline::make_bus(2, kLine, 0.2, 0.1);
  sim::Circuit c;
  EXPECT_THROW(sim::add_coupled_bus(c, "b", {"a"}, {"x", "y"}, bus, 4),
               std::invalid_argument);
  EXPECT_THROW(sim::add_coupled_bus(c, "b", {"a", "b"}, {"x", "y"}, bus, 0),
               std::invalid_argument);
  EXPECT_THROW(
      sim::build_coupled_bus(bus, {sim::BusDrive::kRising}, kRdrv, kCload, 4),
      std::invalid_argument);
  EXPECT_THROW(sim::build_coupled_bus(
                   bus, {sim::BusDrive::kRising, sim::BusDrive::kRising}, 0.0,
                   kCload, 4),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Acceptance: 2-line K-segment coupled transient, sparse vs dense <= 1e-9
// ---------------------------------------------------------------------------

TEST(CoupledBusCrossValidate, SparseMatchesDenseOracle) {
  const tline::CoupledBus bus = tline::make_bus(2, kLine, 0.4, 0.3);
  const sim::Circuit c = sim::build_coupled_bus(
      bus, {sim::BusDrive::kRising, sim::BusDrive::kQuietLow}, kRdrv, kCload,
      30);

  sim::TransientOptions opt;
  opt.t_stop = 4e-9;
  const auto run_with = [&](sim::SolverKind solver) {
    opt.solver = solver;
    return sim::run_transient(c, opt);
  };
  const auto dense = run_with(sim::SolverKind::kDense);
  const auto sparse = run_with(sim::SolverKind::kSparse);
  EXPECT_FALSE(dense.used_sparse_solver);
  EXPECT_TRUE(sparse.used_sparse_solver);

  for (const char* node : {"line0.out", "line1.out", "line0.drv", "line1.drv"}) {
    const sim::Trace dense_trace = dense.waveforms.trace(node);
    const sim::Trace sparse_trace = sparse.waveforms.trace(node);
    const auto& vd = dense_trace.value();
    const auto& vs = sparse_trace.value();
    ASSERT_EQ(vd.size(), vs.size());
    double max_err = 0.0;
    for (std::size_t i = 0; i < vd.size(); ++i)
      max_err = std::max(max_err, std::fabs(vd[i] - vs[i]));
    EXPECT_LE(max_err, 1e-9) << node;
  }
}

// ---------------------------------------------------------------------------
// Acceptance: zero-coupling bus reproduces the isolated-line 50% delay
// ---------------------------------------------------------------------------

TEST(Crosstalk, ZeroCouplingBusMatchesIsolatedLineDelay) {
  const int segments = 24;
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.0, 0.0);
  const auto metrics = core::analyze_crosstalk(
      bus, core::SwitchingPattern::kSamePhase, options_for(segments));
  ASSERT_TRUE(metrics.victim_delay_50.has_value());

  const tline::GateLineLoad isolated{kRdrv, kLine, kCload};
  const double reference = sim::simulate_gate_line_delay(isolated, segments);
  EXPECT_NEAR(*metrics.victim_delay_50, reference, 1e-6 * reference);

  // Push-out bookkeeping is exactly victim minus the two-pole reference.
  ASSERT_TRUE(metrics.delay_pushout.has_value());
  ASSERT_TRUE(metrics.isolated_delay_two_pole.has_value());
  EXPECT_DOUBLE_EQ(*metrics.delay_pushout,
                   *metrics.victim_delay_50 - *metrics.isolated_delay_two_pole);

  // And a quiet victim between decoupled neighbors hears nothing.
  const auto quiet = core::analyze_crosstalk(
      bus, core::SwitchingPattern::kQuietVictim, options_for(segments));
  EXPECT_FALSE(quiet.victim_delay_50.has_value());
  EXPECT_FALSE(quiet.delay_pushout.has_value());
  EXPECT_LT(quiet.peak_noise, 1e-9);
}

TEST(Crosstalk, MillerEffectOrdersThePatternCorners) {
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.5, 0.0);
  const auto opt = options_for(16);
  const auto same =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kSamePhase, opt);
  const auto opposite =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kOppositePhase, opt);
  ASSERT_TRUE(same.victim_delay_50 && opposite.victim_delay_50);
  // Opposite-phase neighbors Miller-amplify Cc; same-phase bootstraps it away.
  EXPECT_GT(*opposite.victim_delay_50, *same.victim_delay_50);
  EXPECT_GT(*opposite.delay_pushout, *same.delay_pushout);
}

TEST(Crosstalk, QuietVictimNoiseGrowsWithCoupling) {
  const auto opt = options_for(16);
  const auto noise_at = [&](double cc_ratio) {
    const tline::CoupledBus bus = tline::make_bus(3, kLine, cc_ratio, 0.0);
    return core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt)
        .peak_noise;
  };
  const double weak = noise_at(0.1);
  const double strong = noise_at(0.5);
  EXPECT_GT(weak, 1e-3);
  EXPECT_GT(strong, weak);
  EXPECT_LT(strong, 1.0);  // bounded by the supply
}

// ---------------------------------------------------------------------------
// Shield insertion
// ---------------------------------------------------------------------------

TEST(Shields, VictimAnchoredPlacementRule) {
  // shield_every = s grounds every line whose distance from the victim is a
  // positive multiple of s; the victim itself never is one.
  EXPECT_FALSE(core::is_shield_line(2, 2, 1));
  EXPECT_TRUE(core::is_shield_line(1, 2, 1));
  EXPECT_TRUE(core::is_shield_line(4, 2, 1));
  EXPECT_FALSE(core::is_shield_line(1, 2, 2));
  EXPECT_TRUE(core::is_shield_line(0, 2, 2));
  EXPECT_TRUE(core::is_shield_line(4, 2, 2));
  EXPECT_FALSE(core::is_shield_line(3, 2, 0));  // 0 = no shields
}

TEST(Shields, FullShieldingKillsNoiseAndDelaySpread) {
  const tline::CoupledBus bus = tline::make_bus(5, kLine, 0.4, 0.25);
  auto opt = options_for(16);

  const auto unshielded_quiet =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt);
  opt.shield_every = 1;  // every neighbor grounded
  const auto shielded_quiet =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt);
  // Nearest-neighbor coupling + grounded neighbors = no aggressor path.
  EXPECT_GT(unshielded_quiet.peak_noise, 0.05);
  EXPECT_LT(shielded_quiet.peak_noise, 1e-6);

  const auto same =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kSamePhase, opt);
  const auto opposite =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kOppositePhase, opt);
  ASSERT_TRUE(same.victim_delay_50 && opposite.victim_delay_50);
  // The switching pattern no longer matters...
  EXPECT_NEAR(*same.victim_delay_50, *opposite.victim_delay_50,
              1e-6 * *same.victim_delay_50);
  // ...but the shields' fixed ground load costs delay vs the bootstrapped
  // same-phase corner of the unshielded bus.
  opt.shield_every = 0;
  const auto free_same =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kSamePhase, opt);
  EXPECT_GT(*same.victim_delay_50, *free_same.victim_delay_50);
}

TEST(Shields, ReducedPathAgreesWithTransient) {
  const tline::CoupledBus bus = tline::make_bus(5, kLine, 0.4, 0.25);
  auto opt = options_for(16);
  opt.shield_every = 2;
  const auto full =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kOppositePhase, opt);
  const auto reduced = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kOppositePhase, opt, 4);
  ASSERT_TRUE(full.victim_delay_50 && reduced.victim_delay_50);
  EXPECT_NEAR(*reduced.victim_delay_50, *full.victim_delay_50,
              0.03 * *full.victim_delay_50);
}

// ---------------------------------------------------------------------------
// Heterogeneous buses
// ---------------------------------------------------------------------------

TEST(HeterogeneousBus, UniformVectorsMatchUniformBus) {
  const tline::CoupledBus uniform = tline::make_bus(3, kLine, 0.3, 0.2);
  const tline::CoupledBus hetero = tline::make_bus(
      {kLine, kLine, kLine},
      {uniform.coupling_capacitance, uniform.coupling_capacitance},
      {uniform.mutual_inductance, uniform.mutual_inductance});
  ASSERT_TRUE(hetero.heterogeneous());
  const auto opt = options_for(12);
  const auto a =
      core::analyze_crosstalk(uniform, core::SwitchingPattern::kOppositePhase, opt);
  const auto b =
      core::analyze_crosstalk(hetero, core::SwitchingPattern::kOppositePhase, opt);
  ASSERT_TRUE(a.victim_delay_50 && b.victim_delay_50);
  // Same electrical network, bit-identical assembly path.
  EXPECT_DOUBLE_EQ(*a.victim_delay_50, *b.victim_delay_50);
  EXPECT_DOUBLE_EQ(a.peak_noise, b.peak_noise);
}

TEST(HeterogeneousBus, PerLineAccessorsAndValidation) {
  tline::LineParams wide = kLine;
  wide.total_resistance = 100.0;
  const tline::CoupledBus bus =
      tline::make_bus({kLine, wide, kLine}, {0.2e-12, 0.4e-12}, {1e-9, 2e-9});
  EXPECT_DOUBLE_EQ(bus.line_at(1).total_resistance, 100.0);
  EXPECT_DOUBLE_EQ(bus.pair_cc(1), 0.4e-12);
  EXPECT_DOUBLE_EQ(bus.pair_lm(0), 1e-9);
  // Scalar mirrors track line 0 / pair 0.
  EXPECT_DOUBLE_EQ(bus.line.total_resistance, kLine.total_resistance);
  EXPECT_DOUBLE_EQ(bus.coupling_capacitance, 0.2e-12);

  // Size mismatches are named errors.
  EXPECT_THROW(tline::make_bus({kLine, kLine}, {0.1e-12, 0.1e-12}, {1e-9}),
               std::invalid_argument);
  EXPECT_THROW(tline::make_bus({kLine}, {}, {}), std::invalid_argument);
}

TEST(HeterogeneousBus, TridiagonalBoundGeneralizesMaxLmRatio) {
  // The LDLt test on equal entries must agree with the closed-form uniform
  // bound 1/(2 cos(pi/(N+1))).
  const double k_max = tline::max_lm_ratio(5);
  const std::vector<double> self(5, 1.0);
  EXPECT_TRUE(tline::mutual_chain_positive_definite(
      self, std::vector<double>(4, 0.99 * k_max)));
  EXPECT_FALSE(tline::mutual_chain_positive_definite(
      self, std::vector<double>(4, 1.01 * k_max)));

  // A heterogeneous chain that every PAIRWISE bound accepts but the chain
  // rejects: k = 0.8 per pair is fine for N = 2 yet indefinite at N = 5.
  const std::vector<double> lines(5, kLine.total_inductance);
  const std::vector<double> strong(4, 0.8 * kLine.total_inductance);
  EXPECT_FALSE(tline::mutual_chain_positive_definite(lines, strong));
  EXPECT_THROW(
      tline::make_bus(std::vector<tline::LineParams>(5, kLine),
                      std::vector<double>(4, 0.1e-12), strong),
      std::invalid_argument);
}

TEST(HeterogeneousBus, AsymmetricCouplingShiftsTheVictim) {
  // Strong coupling on one side only: the victim hears that neighbor more.
  const auto opt = options_for(12);
  const tline::CoupledBus left_heavy = tline::make_bus(
      {kLine, kLine, kLine}, {0.5e-12, 0.05e-12}, {1e-9, 0.1e-9});
  const tline::CoupledBus balanced = tline::make_bus(
      {kLine, kLine, kLine}, {0.275e-12, 0.275e-12}, {0.55e-9, 0.55e-9});
  const auto heavy = core::analyze_crosstalk(
      left_heavy, core::SwitchingPattern::kOppositePhase, opt);
  const auto even = core::analyze_crosstalk(
      balanced, core::SwitchingPattern::kOppositePhase, opt);
  ASSERT_TRUE(heavy.victim_delay_50 && even.victim_delay_50);
  // Both are valid slow corners; they must differ (the coupling topology
  // matters, not just the totals) and stay the same order of magnitude.
  EXPECT_NE(*heavy.victim_delay_50, *even.victim_delay_50);
  EXPECT_NEAR(*heavy.victim_delay_50, *even.victim_delay_50,
              0.5 * *even.victim_delay_50);
}

// ---------------------------------------------------------------------------
// Sweep integration: crosstalk axes ride the pool, bit-identical
// ---------------------------------------------------------------------------

sweep::SweepSpec crosstalk_spec() {
  sweep::SweepSpec spec;
  spec.base.system = {kRdrv, kLine, kCload};
  spec.base.xtalk.bus_lines = 3;
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.0, 0.6, 3),
      sweep::values(sweep::Variable::kMutualRatio, {0.0, 0.2}),
      sweep::switching_patterns({core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase,
                                 core::SwitchingPattern::kQuietVictim}),
  };
  return spec;
}

TEST(CrosstalkSweep, BitIdenticalAcrossThreadCounts) {
  const sweep::SweepSpec spec = crosstalk_spec();
  const auto run_with = [&](std::size_t threads) {
    sweep::EngineOptions options;
    options.threads = threads;
    options.segments = 12;
    const sweep::SweepEngine engine(options);
    return engine.run(spec, sweep::Analysis::kCrosstalkDelay);
  };
  const auto one = run_with(1);
  const auto four = run_with(4);
  ASSERT_EQ(one.values.size(), spec.size());
  ASSERT_EQ(four.values.size(), one.values.size());
  // Bitwise comparison: quiet-victim points are NaN (absent), and NaN !=
  // NaN would hide a genuine mismatch elsewhere.
  EXPECT_EQ(std::memcmp(one.values.data(), four.values.data(),
                        one.values.size() * sizeof(double)),
            0);

  // Quiet-victim points are absent (NaN), switching points are real delays.
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto pattern = spec.at(i).xtalk.pattern;
    if (pattern == core::SwitchingPattern::kQuietVictim)
      EXPECT_TRUE(std::isnan(one.values[i])) << i;
    else
      EXPECT_GT(one.values[i], 0.0) << i;
  }
}

TEST(CrosstalkSweep, NoiseAnalysisAndReuse) {
  // Strictly positive coupling everywhere: a zero Cc or Lm value would drop
  // those stamps from the sparsity pattern and fork the grid into several
  // topologies (each paying its own symbolic analysis). With one topology
  // the whole grid replays point 0's recorded pair.
  sweep::SweepSpec spec;
  spec.base.system = {kRdrv, kLine, kCload};
  spec.base.xtalk.bus_lines = 3;
  spec.axes = {
      sweep::linspace(sweep::Variable::kCouplingCapRatio, 0.2, 0.6, 3),
      sweep::values(sweep::Variable::kMutualRatio, {0.1, 0.2}),
      sweep::switching_patterns({core::SwitchingPattern::kSamePhase,
                                 core::SwitchingPattern::kOppositePhase,
                                 core::SwitchingPattern::kQuietVictim}),
  };
  sweep::EngineOptions options;
  options.threads = 2;
  options.segments = 12;
  const sweep::SweepEngine engine(options);
  const auto result = engine.run(spec, sweep::Analysis::kCrosstalkNoise);
  // Noise is defined for every pattern; no NaN anywhere.
  for (double v : result.values) EXPECT_TRUE(std::isfinite(v));
  // One topology: 2 symbolic factorizations (system + DC) total, recorded at
  // point 0 and replayed by every worker.
  EXPECT_EQ(result.symbolic_factorizations, 2u);
  EXPECT_GT(result.solver_reuse_hits, 0u);
}

TEST(CrosstalkSweep, AxisValidation) {
  sweep::SweepSpec spec = crosstalk_spec();
  spec.axes.push_back(sweep::values(sweep::Variable::kBusLines, {2.5}));
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kBusLines, {1.0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kSwitchingPattern, {3.0});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kMutualRatio, {-0.2});
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.axes.back() = sweep::values(sweep::Variable::kBusLines, {2.0, 4.0});
  EXPECT_NO_THROW(spec.validate());
}

// ---------------------------------------------------------------------------
// Regression: bandwidth_3db reports "no crossing" as absent, not 0 Hz
// ---------------------------------------------------------------------------

TEST(BandwidthRegression, NoCrossingInWindowIsAbsent) {
  // Single-pole RC with f3db ~ 159 MHz; scan far below the corner.
  sim::Circuit c;
  c.add_voltage_source("in", "0", sim::DcSpec{0.0}, "vin");
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  const auto below_corner = sim::bandwidth_3db(c, "vin", "out", 1e3, 1e6);
  EXPECT_FALSE(below_corner.has_value());
  // The same circuit scanned across the corner still finds it.
  const auto across = sim::bandwidth_3db(c, "vin", "out", 1e3, 1e12);
  ASSERT_TRUE(across.has_value());
  EXPECT_GT(*across, 0.0);
}

TEST(BandwidthRegression, SweepRecordsAbsenceAsNaN) {
  sweep::SweepSpec spec;
  spec.base.system = {kRdrv, kLine, kCload};
  spec.axes = {sweep::linspace(sweep::Variable::kDriverResistance, 100.0,
                               200.0, 2)};
  sweep::EngineOptions options;
  options.threads = 1;
  options.segments = 12;
  options.ac_f_lo = 1e3;
  options.ac_f_hi = 1e5;  // far below any corner of this system
  const sweep::SweepEngine engine(options);
  const auto result = engine.run(spec, sweep::Analysis::kAcBandwidth);
  for (double v : result.values) EXPECT_TRUE(std::isnan(v));  // absent, not 0
}

// ---------------------------------------------------------------------------
// Regression: measure_step on truncated records fabricates nothing
// ---------------------------------------------------------------------------

TEST(MeasureStepRegression, TruncatedBelow90HasNoRiseTime) {
  // Reaches 50% but never 90%: delay defined, rise time absent (was 0.0).
  std::vector<double> t, v;
  for (int i = 0; i <= 100; ++i) {
    t.push_back(0.01 * i);
    v.push_back(0.6 * i / 100.0);
  }
  const auto m = tline::measure_step(t, v);
  EXPECT_GT(m.delay_50, 0.0);
  EXPECT_FALSE(m.rise_10_90.has_value());
  EXPECT_FALSE(m.settle_2pct.has_value());
}

TEST(MeasureStepRegression, CompleteRecordHasRiseTime) {
  std::vector<double> t, v;
  for (int i = 0; i <= 4000; ++i) {
    t.push_back(i * 0.005);
    v.push_back(1.0 - std::exp(-t.back()));
  }
  const auto m = tline::measure_step(t, v);
  ASSERT_TRUE(m.rise_10_90.has_value());
  EXPECT_NEAR(*m.rise_10_90, std::log(9.0), 1e-3);
}

TEST(MeasureStepRegression, SettleIsFirstReentryAfterLastViolation) {
  // Overshoot to 1.5 at t=1, back inside the 2% band between t=1 and t=2.
  // The old code reported t=1 (the last out-of-band SAMPLE); the settle time
  // is the interpolated band re-entry at v = 1.02.
  const std::vector<double> t{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> v{0.0, 1.5, 0.99, 1.0};
  const auto m = tline::measure_step(t, v);
  ASSERT_TRUE(m.settle_2pct.has_value());
  const double expected = 1.0 + (1.02 - 1.5) / (0.99 - 1.5);  // ~1.9412
  EXPECT_NEAR(*m.settle_2pct, expected, 1e-12);
  EXPECT_GT(*m.settle_2pct, 1.0);  // strictly after the last violation
}

TEST(MeasureStepRegression, ViolationOnFinalSampleIsUnsettled) {
  const std::vector<double> t{0.0, 1.0, 2.0};
  const std::vector<double> v{0.0, 1.0, 1.5};  // leaves the band at the end
  const auto m = tline::measure_step(t, v);
  EXPECT_FALSE(m.settle_2pct.has_value());
}

// ---------------------------------------------------------------------------
// Regression: extreme-damping two-pole threshold query fails loudly
// ---------------------------------------------------------------------------

TEST(TwoPoleRegression, ExtremeDampingThrowsInsteadOfUnbracketedBrent) {
  // zeta = 0.5e20: the slow pole cancels to exactly 0 in double precision,
  // the computed step response plateaus at 0, and no bracket exists. This
  // must surface as a clear runtime_error, not a numeric-layer failure.
  const core::TwoPoleModel degenerate(1.0, 1e-40);
  EXPECT_GT(degenerate.damping(), 1e19);
  EXPECT_THROW(degenerate.threshold_delay(0.5), core::BracketError);
  // BracketError IS a runtime_error, so generic handlers still catch it.
  EXPECT_THROW(degenerate.threshold_delay(0.5), std::runtime_error);

  // Large-but-representable damping still works: response ~ 1 - e^{-t/b1}.
  const core::TwoPoleModel large(1.0, 1e-8);
  EXPECT_NEAR(large.threshold_delay(0.5), std::log(2.0), 1e-2);
}

// ---------------------------------------------------------------------------
// Full (beyond nearest-neighbor) coupling matrices
// ---------------------------------------------------------------------------

namespace fullbus {

numeric::RealMatrix coupling_matrix(int n, double adjacent, double second = 0.0) {
  numeric::RealMatrix m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (std::abs(i - j) == 1) m(i, j) = adjacent;
      if (std::abs(i - j) == 2) m(i, j) = second;
    }
  return m;
}

}  // namespace fullbus

TEST(FullCouplingBus, AccessorsAndMirrors) {
  const std::vector<tline::LineParams> lines(4, kLine);
  const tline::CoupledBus bus = tline::make_full_bus(
      lines, fullbus::coupling_matrix(4, 0.3e-12, 0.05e-12),
      fullbus::coupling_matrix(4, 0.8e-9, 0.2e-9));
  ASSERT_TRUE(bus.full_coupling());
  ASSERT_TRUE(bus.heterogeneous());
  // Adjacent-pair readers still see the first off-diagonal...
  EXPECT_DOUBLE_EQ(bus.pair_cc(1), 0.3e-12);
  EXPECT_DOUBLE_EQ(bus.pair_lm(2), 0.8e-9);
  // ... and the any-pair accessors see the whole matrix.
  EXPECT_DOUBLE_EQ(bus.coupling_cc(0, 2), 0.05e-12);
  EXPECT_DOUBLE_EQ(bus.coupling_lm(1, 3), 0.2e-9);
  EXPECT_DOUBLE_EQ(bus.coupling_cc(0, 3), 0.0);
  // Nearest-neighbor buses answer 0 beyond the neighbors.
  const tline::CoupledBus nn = tline::make_bus(4, kLine, 0.3, 0.16);
  EXPECT_DOUBLE_EQ(nn.coupling_cc(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(nn.coupling_cc(1, 2), 0.3 * kLine.total_capacitance);
}

TEST(FullCouplingBus, ShapeMismatchIsRejectedUpFront) {
  // The mirror extraction must NOT index a wrongly-shaped matrix before the
  // size check runs (used to be an out-of-bounds read, caught by ASan).
  const std::vector<tline::LineParams> lines(5, kLine);
  EXPECT_THROW(tline::make_full_bus(lines, fullbus::coupling_matrix(3, 0.1e-12), {}),
               std::invalid_argument);
  EXPECT_THROW(tline::make_full_bus(lines, {}, fullbus::coupling_matrix(7, 0.1e-9)),
               std::invalid_argument);
}

TEST(FullCouplingBus, GeneralLdltValidation) {
  const std::vector<tline::LineParams> lines(4, kLine);
  // Asymmetric matrix rejected.
  numeric::RealMatrix bad = fullbus::coupling_matrix(4, 0.3e-12);
  bad(0, 1) = 0.4e-12;
  EXPECT_THROW(tline::make_full_bus(lines, bad, {}), std::invalid_argument);
  // Nonzero diagonal rejected (self terms live in the line totals).
  bad = fullbus::coupling_matrix(4, 0.3e-12);
  bad(1, 1) = 1e-15;
  EXPECT_THROW(tline::make_full_bus(lines, bad, {}), std::invalid_argument);
  // Negative coupling rejected.
  bad = fullbus::coupling_matrix(4, 0.3e-12);
  bad(2, 3) = bad(3, 2) = -1e-15;
  EXPECT_THROW(tline::make_full_bus(lines, bad, {}), std::invalid_argument);
  // An adjacent-only mutual matrix right AT the tridiagonal stability bound
  // is indefinite; the general dense LDLt must reject it like the
  // tridiagonal test does.
  const double lm_limit = tline::max_lm_ratio(4) * kLine.total_inductance;
  EXPECT_THROW(
      tline::make_full_bus(lines, {}, fullbus::coupling_matrix(4, 1.01 * lm_limit)),
      std::invalid_argument);
  EXPECT_NO_THROW(
      tline::make_full_bus(lines, {}, fullbus::coupling_matrix(4, 0.9 * lm_limit)));
  // An indefinite FULL matrix whose adjacent terms alone would pass the
  // tridiagonal test (a = 0.6 Lt < 0.618 Lt bound, but the strong second-
  // neighbor terms drive the (1,-1,-1,1) mode negative: 4 - 2a - 4s < 0) —
  // only the dense LDLt catches it.
  const double lt = kLine.total_inductance;
  EXPECT_NO_THROW(tline::make_full_bus(lines, {}, fullbus::coupling_matrix(4, 0.6 * lt)));
  EXPECT_THROW(
      tline::make_full_bus(lines, {}, fullbus::coupling_matrix(4, 0.6 * lt, 0.75 * lt)),
      std::invalid_argument);
}

TEST(FullCouplingBus, AdjacentOnlyMatricesMatchNearestNeighborPath) {
  // A full-coupling bus whose matrices carry only the first off-diagonal is
  // ELECTRICALLY the nearest-neighbor bus: identical stamps, identical
  // results, bit for bit — the fast path is intact.
  const tline::CoupledBus nn = tline::make_bus(
      {kLine, kLine, kLine}, {0.3e-12, 0.3e-12}, {0.8e-9, 0.8e-9});
  const tline::CoupledBus full = tline::make_full_bus(
      {kLine, kLine, kLine}, fullbus::coupling_matrix(3, 0.3e-12),
      fullbus::coupling_matrix(3, 0.8e-9));
  const auto opt = options_for(12);
  const auto a =
      core::analyze_crosstalk(nn, core::SwitchingPattern::kOppositePhase, opt);
  const auto b =
      core::analyze_crosstalk(full, core::SwitchingPattern::kOppositePhase, opt);
  ASSERT_TRUE(a.victim_delay_50 && b.victim_delay_50);
  EXPECT_DOUBLE_EQ(*a.victim_delay_50, *b.victim_delay_50);
  EXPECT_DOUBLE_EQ(a.peak_noise, b.peak_noise);
}

TEST(FullCouplingBus, SecondNeighborCouplingRaisesVictimNoise) {
  // On a 5-line bus the victim's second neighbors (lines 0 and 4) switch
  // too: giving them a DIRECT path to the victim must raise the quiet-victim
  // noise over the nearest-neighbor model, in both the transient and the
  // reduced analytic paths.
  const std::vector<tline::LineParams> lines(5, kLine);
  const tline::CoupledBus nn = tline::make_full_bus(
      lines, fullbus::coupling_matrix(5, 0.3e-12), fullbus::coupling_matrix(5, 0.5e-9));
  const tline::CoupledBus full = tline::make_full_bus(
      lines, fullbus::coupling_matrix(5, 0.3e-12, 0.12e-12),
      fullbus::coupling_matrix(5, 0.5e-9, 0.2e-9));
  const auto opt = options_for(12);
  const auto nn_noise =
      core::analyze_crosstalk(nn, core::SwitchingPattern::kQuietVictim, opt);
  const auto full_noise =
      core::analyze_crosstalk(full, core::SwitchingPattern::kQuietVictim, opt);
  EXPECT_GT(full_noise.peak_noise, 1.1 * nn_noise.peak_noise);
  const auto reduced_nn = core::analyze_crosstalk_reduced(
      nn, core::SwitchingPattern::kQuietVictim, opt, 4);
  const auto reduced_full = core::analyze_crosstalk_reduced(
      full, core::SwitchingPattern::kQuietVictim, opt, 4);
  EXPECT_GT(reduced_full.peak_noise, 1.1 * reduced_nn.peak_noise);
  // The reduced path tracks the transient on the full-coupling bus too.
  EXPECT_NEAR(reduced_full.peak_noise, full_noise.peak_noise,
              0.15 * full_noise.peak_noise);
}

// ---------------------------------------------------------------------------
// Ramp/slow-edge aggressor support (the reduced path must honor slew)
// ---------------------------------------------------------------------------

TEST(RampAggressor, SlowEdgeQuenchesNoiseAndReducedPathHonorsIt) {
  // Capacitive crosstalk is a dV/dt effect: an aggressor edge much slower
  // than the line's own time constants couples far less noise. The reduced
  // path used to drive ideal steps whatever the built source's slew — this
  // pins the fix: with a slow edge, (a) the transient noise drops by > 2x,
  // and (b) the reduced path tracks the transient, not the step value.
  const tline::CoupledBus bus = tline::make_bus(2, kLine, 0.5, 0.2);
  auto fast = options_for(24);
  auto slow = fast;
  slow.source_rise = 2e-9;  // ~10x the line's RC scale: a genuinely slow edge

  const double step_noise =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, fast)
          .peak_noise;
  const double ramp_noise =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, slow)
          .peak_noise;
  ASSERT_GT(step_noise, 2.0 * ramp_noise);

  const double reduced_step =
      core::analyze_crosstalk_reduced(bus, core::SwitchingPattern::kQuietVictim,
                                      fast, 4)
          .peak_noise;
  const double reduced_ramp =
      core::analyze_crosstalk_reduced(bus, core::SwitchingPattern::kQuietVictim,
                                      slow, 4)
          .peak_noise;
  // The reduced value follows the slew (would fail by > 2x if the ramp were
  // silently replaced by a step)...
  EXPECT_NEAR(reduced_ramp, ramp_noise, 0.15 * ramp_noise);
  // ... and reproduces the step/ramp ratio of the transient.
  EXPECT_GT(reduced_step, 2.0 * reduced_ramp);
}

// ---------------------------------------------------------------------------
// Rich drive shapes via drive_overrides (regression: silent approximation)
// ---------------------------------------------------------------------------

// The reduced path must decode every drive shape it accepts EXACTLY (one
// superposed ramp per linear piece) — or throw. The pre-fix decode kept a
// pulse's leading edge and silently DROPPED the trailing one, so a reduced
// "noise" number for a pulsed aggressor described a different waveform than
// the transient it claimed to replace.

TEST(DriveOverrides, MultiSegmentPwlIsDecodedExactly) {
  // A stutter-step aggressor edge: rise to vdd/2, hold, finish the swing.
  // Three linear pieces (one zero-slope), two real coupling edges.
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.5, 0.2);
  auto opt = options_for(24);
  opt.drive_overrides.assign(3, std::nullopt);
  const sim::PwlSpec stutter{
      {{0.0, 0.0}, {0.3e-9, 0.5}, {0.8e-9, 0.5}, {1.2e-9, 1.0}}};
  opt.drive_overrides[0] = stutter;
  opt.drive_overrides[2] = stutter;
  const auto transient =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt);
  const auto reduced = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kQuietVictim, opt, 4);
  EXPECT_NEAR(reduced.peak_noise, transient.peak_noise,
              0.15 * transient.peak_noise);
}

TEST(DriveOverrides, FinitePulseKeepsTheTrailingEdge) {
  // Slow rise (500 ps), SHARP fall (20 ps): the trailing edge dominates the
  // coupled noise. Dropping it (the old bug) would undershoot the transient
  // noise by far more than this tolerance.
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.5, 0.2);
  auto opt = options_for(24);
  opt.t_stop = 5e-9;  // cover the full pulse plus settling
  opt.drive_overrides.assign(3, std::nullopt);
  const sim::PulseSpec pulse{0.0, 1.0, 0.0, /*rise=*/500e-12,
                             /*fall=*/20e-12, /*width=*/300e-12, /*period=*/0.0};
  opt.drive_overrides[0] = pulse;
  opt.drive_overrides[2] = pulse;
  const auto transient =
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt);
  const auto reduced = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kQuietVictim, opt, 4);
  EXPECT_NEAR(reduced.peak_noise, transient.peak_noise,
              0.15 * transient.peak_noise);
}

TEST(DriveOverrides, ShapesWithNoFiniteDecodeThrowInsteadOfApproximating) {
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.5, 0.2);
  auto opt = options_for(12);
  opt.t_stop = 5e-9;
  opt.drive_overrides.assign(3, std::nullopt);
  // A periodic train has no finite edge superposition: the transient path
  // handles it, the reduced path must REFUSE rather than truncate.
  sim::PulseSpec train{0.0, 1.0, 0.0, 50e-12, 50e-12, 300e-12, 2e-9};
  opt.drive_overrides[0] = train;
  EXPECT_NO_THROW(
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt));
  EXPECT_THROW(core::analyze_crosstalk_reduced(
                   bus, core::SwitchingPattern::kQuietVictim, opt, 4),
               std::invalid_argument);
  // Malformed PWL (non-increasing times) is rejected, not reordered.
  opt.drive_overrides[0] = sim::PwlSpec{{{0.0, 0.0}, {1e-9, 1.0}, {1e-9, 0.5}}};
  EXPECT_THROW(core::analyze_crosstalk_reduced(
                   bus, core::SwitchingPattern::kQuietVictim, opt, 4),
               std::invalid_argument);
  // Wrong-size override tables are rejected by BOTH paths.
  opt.drive_overrides.assign(2, std::nullopt);
  EXPECT_THROW(
      core::analyze_crosstalk(bus, core::SwitchingPattern::kQuietVictim, opt),
      std::invalid_argument);
  EXPECT_THROW(core::analyze_crosstalk_reduced(
                   bus, core::SwitchingPattern::kQuietVictim, opt, 4),
               std::invalid_argument);
}

TEST(RampAggressor, SlowEdgeSoftensTheMillerCorners) {
  // With a slow shared input edge the same-/opposite-phase delay spread
  // narrows; transient and reduced paths must agree on the slow-edge delay.
  const tline::CoupledBus bus = tline::make_bus(3, kLine, 0.4, 0.2);
  auto slow = options_for(24);
  slow.source_rise = 1e-9;
  const auto transient = core::analyze_crosstalk(
      bus, core::SwitchingPattern::kOppositePhase, slow);
  const auto reduced = core::analyze_crosstalk_reduced(
      bus, core::SwitchingPattern::kOppositePhase, slow, 4);
  ASSERT_TRUE(transient.victim_delay_50 && reduced.victim_delay_50);
  EXPECT_NEAR(*reduced.victim_delay_50, *transient.victim_delay_50,
              0.03 * *transient.victim_delay_50);
}

}  // namespace
