#include "sim/netlist_parser.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/transient.h"

namespace {

using namespace rlcsim::sim;

TEST(Parser, MinimalRcNetlist) {
  const auto parsed = parse_netlist(R"(* simple RC
V1 in 0 STEP(0 1 0)
R1 in out 1k
C1 out 0 1p
.tran 1p 5n
.end
)");
  EXPECT_EQ(parsed.circuit.resistors().size(), 1u);
  EXPECT_EQ(parsed.circuit.capacitors().size(), 1u);
  EXPECT_EQ(parsed.circuit.voltage_sources().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.circuit.resistors()[0].resistance, 1000.0);
  EXPECT_DOUBLE_EQ(parsed.circuit.capacitors()[0].capacitance, 1e-12);
  ASSERT_TRUE(parsed.tran);
  EXPECT_DOUBLE_EQ(parsed.tran->dt, 1e-12);
  EXPECT_DOUBLE_EQ(parsed.tran->t_stop, 5e-9);
}

TEST(Parser, ParsedCircuitSimulates) {
  const auto parsed = parse_netlist(R"(
V1 in 0 STEP(0 1 0)
R1 in out 1k
C1 out 0 1p
.tran 2.5p 5n
)");
  const auto result = run_transient(parsed.circuit, *parsed.tran);
  const double v = result.waveforms.trace("out").at(1e-9);
  EXPECT_NEAR(v, 1.0 - std::exp(-1.0), 1e-3);
}

TEST(Parser, TitleLineIsCaptured) {
  const auto parsed = parse_netlist(R"(my circuit title
V1 a 0 DC 1
R1 a 0 50
)");
  EXPECT_EQ(parsed.title, "my circuit title");
}

TEST(Parser, AllSourceForms) {
  const auto parsed = parse_netlist(R"(
V1 a 0 DC 2.5
V2 b 0 STEP(0 1 10p 5p)
V3 c 0 PULSE(0 1 0 10p 10p 1n 2n)
V4 d 0 PWL(0 0 1n 1 2n 0.5)
I1 0 a DC 1m
R1 a 0 1k
R2 b 0 1k
R3 c 0 1k
R4 d 0 1k
)");
  const auto& vs = parsed.circuit.voltage_sources();
  ASSERT_EQ(vs.size(), 4u);
  EXPECT_TRUE(std::holds_alternative<DcSpec>(vs[0].spec));
  EXPECT_TRUE(std::holds_alternative<StepSpec>(vs[1].spec));
  EXPECT_TRUE(std::holds_alternative<PulseSpec>(vs[2].spec));
  EXPECT_TRUE(std::holds_alternative<PwlSpec>(vs[3].spec));
  EXPECT_DOUBLE_EQ(std::get<StepSpec>(vs[1].spec).delay, 10e-12);
  EXPECT_DOUBLE_EQ(std::get<StepSpec>(vs[1].spec).rise, 5e-12);
  EXPECT_DOUBLE_EQ(std::get<PulseSpec>(vs[2].spec).width, 1e-9);
  EXPECT_EQ(std::get<PwlSpec>(vs[3].spec).points.size(), 3u);
  EXPECT_EQ(parsed.circuit.current_sources().size(), 1u);
}

TEST(Parser, BareValueIsDc) {
  const auto parsed = parse_netlist("V1 a 0 3.3\nR1 a 0 1k\n");
  EXPECT_DOUBLE_EQ(std::get<DcSpec>(parsed.circuit.voltage_sources()[0].spec).value,
                   3.3);
}

TEST(Parser, BufferElement) {
  const auto parsed = parse_netlist(R"(
V1 in 0 STEP(0 1 0)
R1 in a 10
B1 a b ROUT=120 CIN=3f VDD=2.5 TH=0.4
C1 b 0 1p
)");
  const auto& bufs = parsed.circuit.buffers();
  ASSERT_EQ(bufs.size(), 1u);
  EXPECT_DOUBLE_EQ(bufs[0].output_resistance, 120.0);
  EXPECT_DOUBLE_EQ(bufs[0].input_capacitance, 3e-15);
  EXPECT_DOUBLE_EQ(bufs[0].vdd, 2.5);
  EXPECT_DOUBLE_EQ(bufs[0].threshold, 0.4);
}

TEST(Parser, InitialConditions) {
  const auto parsed = parse_netlist(R"(
V1 a 0 DC 1
R1 a b 1k
C1 b 0 1p IC=0.5
L1 b 0 1n IC=1m
)");
  EXPECT_DOUBLE_EQ(parsed.circuit.capacitors()[0].initial_voltage, 0.5);
  EXPECT_DOUBLE_EQ(parsed.circuit.inductors()[0].initial_current, 1e-3);
}

TEST(Parser, CommentsAndBlankLines) {
  EXPECT_NO_THROW(parse_netlist(R"(* header comment

V1 a 0 DC 1   ; trailing comment
* another comment
R1 a 0 50
)"));
}

TEST(ParserErrors, ReportLineNumbers) {
  try {
    parse_netlist("V1 a 0 DC 1\nR1 a 0 50\nR2 a 0 bogus\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(ParserErrors, SpecificMessages) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), ParseError);                     // missing value
  EXPECT_THROW(parse_netlist("V1 a 0 STEP(0)\nR1 a 0 1\n"), ParseError);   // bad STEP
  EXPECT_THROW(parse_netlist("V1 a 0 PWL(0 0 0 1)\nR1 a 0 1\n"), ParseError);  // non-increasing
  EXPECT_THROW(parse_netlist("B1 a b CIN=1f\nR1 a 0 1\n"), ParseError);    // missing ROUT
  EXPECT_THROW(parse_netlist(".frobnicate\n"), ParseError);                // unknown card
  EXPECT_THROW(parse_netlist(".tran 1n\n"), ParseError);                   // bad .tran
  EXPECT_THROW(parse_netlist("V1 a 0 DC 1\n.end\nR1 a 0 1\n"), ParseError);  // after .end
  EXPECT_THROW(parse_netlist(""), ParseError);                             // empty
  EXPECT_THROW(parse_netlist("Q1 a b c\n"), ParseError);                   // unknown element
}

TEST(Parser, ScaleSuffixesInValues) {
  const auto parsed = parse_netlist(R"(
V1 a 0 DC 1
R1 a b 2meg
R2 b c 1.5k
C1 c 0 3f
L1 c 0 2u
)");
  EXPECT_DOUBLE_EQ(parsed.circuit.resistors()[0].resistance, 2e6);
  EXPECT_DOUBLE_EQ(parsed.circuit.resistors()[1].resistance, 1500.0);
  EXPECT_DOUBLE_EQ(parsed.circuit.capacitors()[0].capacitance, 3e-15);
  EXPECT_DOUBLE_EQ(parsed.circuit.inductors()[0].inductance, 2e-6);
}

TEST(Parser, PulseWithSpacesInsideParens) {
  EXPECT_NO_THROW(parse_netlist("V1 a 0 PULSE( 0 1 0 10p 10p 1n )\nR1 a 0 1k\n"));
}

// ---- robustness: malformed input must raise ParseError, never UB ---------

// Expects a ParseError whose message mentions `needle` and carries `line`.
void expect_parse_error(const std::string& netlist, int line,
                        const std::string& needle) {
  try {
    parse_netlist(netlist);
    FAIL() << "expected ParseError for: " << netlist;
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
  }
}

TEST(ParserErrors, DuplicateElementNames) {
  expect_parse_error("V1 a 0 DC 1\nR1 a b 1k\nR1 b 0 2k\n", 3, "duplicate");
  // Case-insensitive, like every other SPICE name.
  expect_parse_error("V1 a 0 DC 1\nRload a 0 1k\nRLOAD a 0 1k\n", 3, "duplicate");
  // Across element kinds the first letter differs, so names may collide
  // only within... no: SPICE names include the letter, C1 and R1 coexist.
  EXPECT_NO_THROW(parse_netlist("V1 a 0 DC 1\nR1 a 0 1k\nC1 a 0 1p\nL1 a 0 1n\n"));
}

TEST(ParserErrors, ZeroAndNegativeElementValues) {
  expect_parse_error("V1 a 0 DC 1\nR1 a 0 0\n", 2, "positive");
  expect_parse_error("V1 a 0 DC 1\nR1 a 0 -5\n", 2, "positive");
  expect_parse_error("V1 a 0 DC 1\nC1 a 0 0\n", 2, "positive");
  expect_parse_error("V1 a 0 DC 1\nC1 a 0 -1p\n", 2, "positive");
  expect_parse_error("V1 a 0 DC 1\nL1 a 0 0\n", 2, "positive");
  expect_parse_error("V1 a 0 DC 1\nL1 a 0 -1n\n", 2, "positive");
  // Overflow to infinity is rejected too, with the offending text echoed.
  expect_parse_error("V1 a 0 DC 1\nR1 a 0 1e400\n", 2, "1e400");
}

TEST(ParserErrors, StructuralErrorsCarryLineNumbers) {
  // Source shorted to itself: caught by the circuit layer, reported with
  // the netlist line.
  expect_parse_error("V1 a a DC 1\nR1 a 0 1k\n", 1, "terminals");
  // Buffer threshold outside (0, 1).
  expect_parse_error("V1 a 0 DC 1\nB1 a b ROUT=100 CIN=1f TH=1.5\nR1 b 0 1k\n", 2,
                     "threshold");
  // K-card referencing an unknown inductor name.
  expect_parse_error("V1 a 0 DC 1\nL1 a 0 1n\nK1 L1 L9 0.5\n", 3, "L9");
  // K-card coupling an inductor to itself.
  expect_parse_error("V1 a 0 DC 1\nL1 a 0 1n\nK1 L1 L1 0.5\n", 3, "itself");
}

TEST(ParserErrors, MalformedLines) {
  expect_parse_error("V1 a 0 DC 1\nR1 a 0 1..2\n", 2, "1..2");  // junk suffix
  expect_parse_error("V1 a 0 DC 1\nR1 a 0 1k extra\n", 2, "value");
  expect_parse_error("V1 a 0 STEP(0 1\nR1 a 0 1k\n", 1, "malformed");  // unclosed (
  expect_parse_error("V1 a 0 PULSE(0 1 0 1p 1p 1n 2n 3n)\nR1 a 0 1k\n", 1, "PULSE");
  expect_parse_error("K1 L1\n", 1, "nodes");  // too few tokens
}

TEST(Parser, ValidNetlistStillParsesAfterHardening) {
  // The hardened parser accepts everything the simulator can actually run.
  const auto parsed = parse_netlist(R"(hardening smoke test
V1 in 0 STEP(0 1 0 5p)
R1 in n1 50
L1 n1 n2 1n IC=0
C1 n2 0 100f IC=0
Lx n2 out 2n
Ky L1 Lx 0.3
B1 out buf ROUT=200 CIN=2f
Cb buf 0 10f
.tran 1p 4n
)");
  EXPECT_EQ(parsed.circuit.inductors().size(), 2u);
  EXPECT_EQ(parsed.circuit.mutuals().size(), 1u);
  ASSERT_TRUE(parsed.tran);
}

}  // namespace
