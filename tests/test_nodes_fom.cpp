#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "tech/fom.h"
#include "tech/nodes.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::tech;

TEST(Nodes, IntrinsicDelayShrinksWithScaling) {
  const auto nodes = all_nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_LT(intrinsic_delay(nodes[1]), intrinsic_delay(nodes[0]));
  EXPECT_LT(intrinsic_delay(nodes[2]), intrinsic_delay(nodes[1]));
  // 0.25 um era: ~tens of ps.
  EXPECT_NEAR(intrinsic_delay(nodes[0]), 18e-12, 1e-12);
}

TEST(Nodes, ScaledBufferFollowsHRule) {
  const DeviceParams d = node_250nm();
  const ScaledBuffer b = scale_buffer(d, 40.0);
  EXPECT_DOUBLE_EQ(b.output_resistance, d.r0 / 40.0);
  EXPECT_DOUBLE_EQ(b.input_capacitance, d.c0 * 40.0);
  EXPECT_DOUBLE_EQ(b.area, d.area_min * 40.0);
  EXPECT_THROW(scale_buffer(d, 0.0), std::invalid_argument);
}

TEST(Nodes, MinBufferAdapter) {
  const DeviceParams d = node_250nm();
  const core::MinBuffer b = as_min_buffer(d);
  EXPECT_DOUBLE_EQ(b.r0, d.r0);
  EXPECT_DOUBLE_EQ(b.c0, d.c0);
  EXPECT_DOUBLE_EQ(b.area, d.area_min);
}

TEST(Nodes, WidePresetHasLowerResistanceThanSignal) {
  const DeviceParams d = node_250nm();
  const auto wide = tech::extract(wide_clock_wire(d));
  const auto sig = tech::extract(signal_wire(d));
  EXPECT_LT(wide.resistance, sig.resistance * 0.2);
}

TEST(Nodes, WideClockWireReachesInductiveRegimeAt250nm) {
  // The paper claims T_{L/R} ~ 5 is common at 0.25 um for low-resistance
  // wires; our presets must land in that regime (within a factor ~2).
  const DeviceParams d = node_250nm();
  const auto pul = tech::extract(wide_clock_wire(d));
  const double t = (pul.inductance / pul.resistance) / intrinsic_delay(d);
  EXPECT_GT(t, 2.0);
  EXPECT_LT(t, 12.0);
}

TEST(Fom, WindowOrderingAndExistence) {
  const tline::PerUnitLength pul{10e3, 0.5e-6, 0.15e-9};  // low-R global wire
  const InductanceWindow w = inductance_window(pul, 50e-12);
  EXPECT_TRUE(w.exists());
  EXPECT_GT(w.min_length, 0.0);
  EXPECT_GT(w.max_length, w.min_length);
  EXPECT_THROW(inductance_window(pul, 0.0), std::invalid_argument);
  EXPECT_THROW(inductance_window({0.0, 0.5e-6, 0.15e-9}, 1e-12), std::invalid_argument);
}

TEST(Fom, ResistiveWireHasNoWindow) {
  // Very resistive wire: attenuation bound falls below the rise-time bound.
  const tline::PerUnitLength pul{5e6, 0.3e-6, 0.2e-9};
  const InductanceWindow w = inductance_window(pul, 100e-12);
  EXPECT_FALSE(w.exists());
}

TEST(Fom, InductanceMattersInsideWindowOnly) {
  const tline::PerUnitLength pul{10e3, 0.5e-6, 0.15e-9};
  const double tr = 50e-12;
  const InductanceWindow w = inductance_window(pul, tr);
  const double mid = 0.5 * (w.min_length + w.max_length);
  EXPECT_TRUE(inductance_matters(pul, mid, tr));
  EXPECT_FALSE(inductance_matters(pul, w.min_length * 0.5, tr));
  EXPECT_FALSE(inductance_matters(pul, w.max_length * 2.0, tr));
  EXPECT_THROW(inductance_matters(pul, 0.0, tr), std::invalid_argument);
}

TEST(Fom, FasterEdgesWidenTheWindow) {
  const tline::PerUnitLength pul{10e3, 0.5e-6, 0.15e-9};
  const InductanceWindow slow = inductance_window(pul, 200e-12);
  const InductanceWindow fast = inductance_window(pul, 20e-12);
  EXPECT_LT(fast.min_length, slow.min_length);
  EXPECT_DOUBLE_EQ(fast.max_length, slow.max_length);  // upper bound is R-driven
}

TEST(Fom, LineDampingMatchesLineParams) {
  const tline::PerUnitLength pul{10e3, 0.5e-6, 0.15e-9};
  const double l = 5e-3;
  EXPECT_NEAR(line_damping(pul, l),
              tline::make_line(pul, l).intrinsic_damping(), 1e-15);
}

TEST(Fom, DampingQuantifiesTheWindowUpperBound) {
  // At the attenuation bound l_max = (2/R) sqrt(L/C), the line damping
  // zeta0 = (R l / 4) sqrt(C/L) equals exactly 0.5 — the overdamping onset.
  const tline::PerUnitLength pul{10e3, 0.5e-6, 0.15e-9};
  const InductanceWindow w = inductance_window(pul, 1e-12);
  EXPECT_NEAR(line_damping(pul, w.max_length), 0.5, 1e-12);
}

}  // namespace
