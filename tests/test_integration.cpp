// Cross-module integration tests: the closed-form model, the exact
// frequency-domain solution, and the time-domain MNA simulator are three
// independent implementations that must tell one consistent story.
#include <cmath>

#include <gtest/gtest.h>

#include "core/delay_model.h"
#include "core/repeater.h"
#include "core/two_pole.h"
#include "sim/builders.h"
#include "sim/netlist_parser.h"
#include "tline/rc_line.h"
#include "tline/step_response.h"

namespace {

using namespace rlcsim;

// ---------------------------------------------------------------------------
// The Table-1 property: eq. (9) vs the two reference engines, across the
// paper's own parameter grid (RT, CT in {0.1, 0.5, 1.0}, Lt 1e-8..1e-5 H).
// ---------------------------------------------------------------------------
struct Table1Param {
  double rt, ct, lt;
};

class Table1Agreement : public ::testing::TestWithParam<Table1Param> {};

TEST_P(Table1Agreement, ModelWithin8PercentOfBothReferences) {
  const auto [rt, ct, lt] = GetParam();
  const double rtr = 500.0, ct_line = 1e-12;
  const tline::GateLineLoad sys{rtr, {rtr / rt, lt, ct_line}, ct * ct_line};

  const double model = core::rlc_delay(sys);
  const double laplace = tline::threshold_delay(sys);
  const double mna = sim::simulate_gate_line_delay(sys, 120);

  // The two simulators agree to well under a percent...
  EXPECT_NEAR(mna, laplace, laplace * 0.005)
      << "RT=" << rt << " CT=" << ct << " Lt=" << lt;
  // ...and the closed form matches them to the paper's advertised accuracy
  // (5%, with a small margin for our references not being AS/X).
  EXPECT_NEAR(model, laplace, laplace * 0.08)
      << "RT=" << rt << " CT=" << ct << " Lt=" << lt;
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, Table1Agreement,
    ::testing::Values(Table1Param{0.5, 0.1, 1e-8}, Table1Param{0.5, 0.5, 1e-7},
                      Table1Param{0.5, 1.0, 1e-6}, Table1Param{1.0, 0.1, 1e-7},
                      Table1Param{1.0, 0.5, 1e-5}, Table1Param{1.0, 1.0, 1e-8},
                      Table1Param{0.1, 0.5, 1e-6}, Table1Param{0.1, 1.0, 1e-8}));

// ---------------------------------------------------------------------------
// Quadratic -> linear length dependence (Section II).
// ---------------------------------------------------------------------------
TEST(LengthDependence, RcIsQuadraticLcIsLinear) {
  // Resistive wire: doubling the length ~quadruples the delay.
  const tline::PerUnitLength rc_wire{50e3, 5e-9, 0.2e-9};  // very resistive
  const auto delay_at = [](const tline::PerUnitLength& pul, double len) {
    const tline::GateLineLoad sys{0.0, tline::make_line(pul, len), 0.0};
    return tline::threshold_delay(sys);
  };
  const double rc_ratio = delay_at(rc_wire, 10e-3) / delay_at(rc_wire, 5e-3);
  EXPECT_GT(rc_ratio, 3.5);

  // Inductive wire: doubling the length ~doubles the delay.
  const tline::PerUnitLength lc_wire{100.0, 0.5e-6, 0.2e-9};
  const double lc_ratio = delay_at(lc_wire, 10e-3) / delay_at(lc_wire, 5e-3);
  EXPECT_LT(lc_ratio, 2.3);
  EXPECT_GT(lc_ratio, 1.8);
}

TEST(LengthDependence, ModelTracksTheTransition) {
  // The closed form must show the same ratios as the exact solution.
  const tline::PerUnitLength wire{5e3, 0.3e-6, 0.2e-9};
  for (double len : {2e-3, 8e-3}) {
    const tline::GateLineLoad sys{0.0, tline::make_line(wire, len), 0.0};
    const double exact = tline::threshold_delay(sys);
    EXPECT_NEAR(core::rlc_delay(sys), exact, exact * 0.06) << "len=" << len;
  }
}

// ---------------------------------------------------------------------------
// Repeater chain: closed-form total delay vs full chain simulation with
// behavioral buffers.
// ---------------------------------------------------------------------------
TEST(RepeaterChainIntegration, ModelMatchesSimulatedChain) {
  const tline::LineParams line{200.0, 5e-9, 2e-12};
  const core::MinBuffer buf{3000.0, 5e-15, 1.0, 0.0};
  const core::RepeaterDesign design =
      core::rounded_sections(line, buf, core::ismail_friedman_rlc(line, buf));
  const sim::RepeaterChainSpec spec{line, static_cast<int>(design.sections),
                                    design.size, buf.r0, buf.c0, 40, 1.0};
  const double simulated = sim::simulate_repeater_chain_delay(spec);
  const double modeled = core::total_delay(line, buf, design);
  EXPECT_NEAR(modeled, simulated, simulated * 0.08);
}

TEST(RepeaterChainIntegration, RlcSizingBeatsRcSizingInSimulation) {
  // Ground truth for the paper's core engineering claim at strong
  // inductance: simulate both sizings; the RLC-aware one is faster AND
  // far smaller.
  const core::MinBuffer buf{3000.0, 5e-15, 1.0, 0.0};
  const tline::LineParams line{450.0, 33.75e-9, 45e-12};  // T = 5
  const core::RepeaterDesign rc = core::bakoglu_rc(line, buf);
  const core::RepeaterDesign rlc = core::ismail_friedman_rlc(line, buf);

  const auto chain_delay = [&](const core::RepeaterDesign& d) {
    sim::RepeaterChainSpec spec{line,
                                static_cast<int>(std::lround(d.sections)),
                                d.size, buf.r0, buf.c0, 16, 1.0};
    return sim::simulate_repeater_chain_delay(spec);
  };
  const double t_rc = chain_delay(rc);
  const double t_rlc = chain_delay(rlc);
  EXPECT_LT(t_rlc, t_rc * 1.02);  // not slower (usually faster)
  // And the area ratio is the dramatic part: ~5.4x at T = 5.
  const double area_ratio = (rc.size * std::lround(rc.sections)) /
                            (rlc.size * std::lround(rlc.sections));
  EXPECT_GT(area_ratio, 4.0);
}

// ---------------------------------------------------------------------------
// Netlist path equals programmatic path.
// ---------------------------------------------------------------------------
TEST(NetlistIntegration, ParsedLadderMatchesBuilderLadder) {
  // 4-segment pi ladder written out by hand in netlist form.
  const std::string netlist = R"(hand-written 4-segment ladder
V1 vin 0 STEP(0 1 0)
R0 vin drv 500
C0 drv 0 0.125p
R1 drv m0 125
L1 m0 n0 2.5n
C1 n0 0 0.25p
R2 n0 m1 125
L2 m1 n1 2.5n
C2 n1 0 0.25p
R3 n1 m2 125
L3 m2 n2 2.5n
C3 n2 0 0.25p
R4 n2 m3 125
L4 m3 out 2.5n
C4 out 0 0.125p
CL out 0 1p
.tran 4p 40n
)";
  const auto parsed = sim::parse_netlist(netlist);
  const auto result = sim::run_transient(parsed.circuit, *parsed.tran);
  const double parsed_delay = result.waveforms.trace("out").delay(1.0);

  const tline::GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, 1e-12};
  const double built_delay = sim::simulate_gate_line_delay(sys, 4, 40e-9, 4e-12);
  EXPECT_NEAR(parsed_delay, built_delay, built_delay * 0.01);
}

// ---------------------------------------------------------------------------
// Two-pole model vs exact response: overshoot prediction in the ringing
// regime.
// ---------------------------------------------------------------------------
TEST(TwoPoleIntegration, OvershootPredictionInRingingRegime) {
  const tline::GateLineLoad sys{50.0, {50.0, 1e-8, 1e-12}, 0.1e-12};
  const core::TwoPoleModel two_pole(sys);
  ASSERT_TRUE(two_pole.underdamped());

  const auto sampled = tline::step_response(sys, 20e-9, 800);
  const auto metrics = tline::measure_step(sampled.time, sampled.value);
  EXPECT_NEAR(two_pole.overshoot(), metrics.overshoot, 0.12);
  EXPECT_GT(metrics.overshoot, 0.05);
}

// ---------------------------------------------------------------------------
// Elmore/b1 moment: the simulator's area-under-curve must reproduce it.
// ---------------------------------------------------------------------------
TEST(MomentIntegration, SimulatorReproducesFirstMoment) {
  // b1 = integral of (1 - v(t)) dt for a unit step (when overshoot is mild).
  const tline::GateLineLoad sys{500.0, {500.0, 1e-9, 1e-12}, 1e-12};
  const auto circuit = sim::build_gate_line_load(sys, 100);
  sim::TransientOptions opt;
  opt.t_stop = 30e-9;
  opt.dt = 10e-12;
  const auto result = sim::run_transient(circuit, opt);
  const auto trace = result.waveforms.trace("out");
  double integral = 0.0;
  const auto& times = trace.time();
  const auto& values = trace.value();
  for (std::size_t i = 1; i < times.size(); ++i)
    integral += (1.0 - 0.5 * (values[i] + values[i - 1])) * (times[i] - times[i - 1]);
  EXPECT_NEAR(integral, tline::moments(sys).b1, tline::moments(sys).b1 * 0.02);
}

}  // namespace
