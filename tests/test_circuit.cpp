#include "sim/circuit.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::sim;

TEST(Nodes, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("GND"), kGround);
  EXPECT_EQ(c.node_count(), 0u);
}

TEST(Nodes, StableIdsAndLookup) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.node_count(), 2u);
  EXPECT_EQ(c.find_node("a"), a);
  EXPECT_FALSE(c.find_node("missing").has_value());
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_EQ(c.node_name(kGround), "0");
  EXPECT_THROW(c.node_name(99), std::out_of_range);
}

TEST(Elements, ValueValidation) {
  Circuit c;
  EXPECT_THROW(c.add_resistor("a", "0", 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_resistor("a", "0", -5.0), std::invalid_argument);
  EXPECT_THROW(c.add_capacitor("a", "0", 0.0), std::invalid_argument);
  EXPECT_THROW(c.add_inductor("a", "0", -1e-9), std::invalid_argument);
  EXPECT_THROW(c.add_voltage_source("a", "a", DcSpec{1.0}), std::invalid_argument);
  EXPECT_THROW(c.add_buffer("a", "b", 0.0, 1e-15), std::invalid_argument);
  EXPECT_THROW(c.add_buffer("a", "b", 100.0, -1e-15), std::invalid_argument);
  EXPECT_THROW(c.add_buffer("a", "b", 100.0, 1e-15, 1.0, 1.5), std::invalid_argument);
}

TEST(SourceValue, DcAndStep) {
  EXPECT_DOUBLE_EQ(source_value(DcSpec{2.5}, 100.0), 2.5);
  const StepSpec step{0.0, 1.0, 1e-9, 0.0};
  EXPECT_DOUBLE_EQ(source_value(step, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(source_value(step, 1e-9), 0.0);  // strict edge
  EXPECT_DOUBLE_EQ(source_value(step, 1.001e-9), 1.0);
}

TEST(SourceValue, StepAtTimeZeroKeepsDcPointAtV0) {
  // The regression that broke the whole simulator once: a step with delay 0
  // must still read v0 at exactly t = 0.
  const StepSpec step{0.0, 1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(source_value(step, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(source_value(step, 1e-15), 1.0);
}

TEST(SourceValue, StepWithRamp) {
  const StepSpec step{1.0, 3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(source_value(step, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(source_value(step, 2.0), 2.0);  // halfway up the ramp
  EXPECT_DOUBLE_EQ(source_value(step, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(source_value(step, 9.0), 3.0);
}

TEST(SourceValue, Pwl) {
  PwlSpec pwl;
  pwl.points = {{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}, {4.0, -1.0}};
  EXPECT_DOUBLE_EQ(source_value(pwl, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(source_value(pwl, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(source_value(pwl, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(source_value(pwl, 3.5), 0.5);
  EXPECT_DOUBLE_EQ(source_value(pwl, 10.0), -1.0);
}

TEST(SourceValue, PulseTrain) {
  const PulseSpec p{0.0, 1.0, 1.0, 0.1, 0.1, 0.5, 2.0};
  EXPECT_DOUBLE_EQ(source_value(p, 0.5), 0.0);          // before delay
  EXPECT_NEAR(source_value(p, 1.05), 0.5, 1e-12);       // mid-rise
  EXPECT_DOUBLE_EQ(source_value(p, 1.3), 1.0);          // flat top
  EXPECT_NEAR(source_value(p, 1.65), 0.5, 1e-12);       // mid-fall
  EXPECT_DOUBLE_EQ(source_value(p, 2.0), 0.0);          // low
  EXPECT_DOUBLE_EQ(source_value(p, 3.3), 1.0);          // next period's top
}

TEST(Validate, EmptyCircuit) {
  Circuit c;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Validate, FloatingNodeDetected) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{1.0});
  c.add_resistor("in", "a", 100.0);
  c.add_capacitor("b", "0", 1e-12);  // "b" reachable only through nothing
  try {
    c.validate();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'b'"), std::string::npos);
  }
}

TEST(Validate, InductorAndVsourceCountAsDcPaths) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{1.0});
  c.add_inductor("in", "mid", 1e-9);
  c.add_resistor("mid", "out", 10.0);
  c.add_capacitor("out", "0", 1e-12);
  EXPECT_NO_THROW(c.validate());
}

TEST(Validate, BufferOutputIsGrounded) {
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{});
  c.add_resistor("in", "a", 10.0);
  c.add_buffer("a", "b", 100.0, 1e-15);
  c.add_capacitor("b", "0", 1e-12);  // b driven only by the buffer
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
