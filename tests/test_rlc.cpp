#include "tline/rlc.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::tline;

TEST(PerUnitLength, DerivedQuantities) {
  PerUnitLength pul{25.0, 0.5e-6, 0.2e-9, 0.0};  // 25 ohm/m? (units arbitrary here)
  EXPECT_DOUBLE_EQ(pul.lossless_z0(), std::sqrt(0.5e-6 / 0.2e-9));
  EXPECT_DOUBLE_EQ(pul.velocity(), 1.0 / std::sqrt(0.5e-6 * 0.2e-9));
}

TEST(PerUnitLength, DerivedQuantitiesValidate) {
  PerUnitLength bad{1.0, 0.0, 0.0, 0.0};
  EXPECT_THROW(bad.lossless_z0(), std::invalid_argument);
  EXPECT_THROW(bad.velocity(), std::invalid_argument);
}

TEST(LineParams, SectionScaling) {
  const LineParams line{100.0, 4e-9, 2e-12};
  const LineParams s = line.section(4);
  EXPECT_DOUBLE_EQ(s.total_resistance, 25.0);
  EXPECT_DOUBLE_EQ(s.total_inductance, 1e-9);
  EXPECT_DOUBLE_EQ(s.total_capacitance, 0.5e-12);
  EXPECT_THROW(line.section(0), std::invalid_argument);
}

TEST(LineParams, TimeScales) {
  const LineParams line{100.0, 4e-9, 1e-12};
  EXPECT_DOUBLE_EQ(line.time_of_flight(), std::sqrt(4e-9 * 1e-12));
  EXPECT_DOUBLE_EQ(line.rc_time(), 1e-10);
  // zeta0 = (R/4) sqrt(C/L).
  EXPECT_DOUBLE_EQ(line.intrinsic_damping(), 25.0 * std::sqrt(1e-12 / 4e-9));
}

TEST(LineParams, SectioningPreservesDamping) {
  // zeta of a section: (R/k/4) sqrt((C/k)/(L/k)) = zeta/k. The per-section
  // damping drops linearly in k — the physics behind repeater insertion
  // becoming useless in the LC limit.
  const LineParams line{200.0, 8e-9, 3e-12};
  const double z1 = line.intrinsic_damping();
  EXPECT_NEAR(line.section(5).intrinsic_damping(), z1 / 5.0, 1e-15);
}

TEST(MakeLine, ScalesByLength) {
  const PerUnitLength pul{25.0e3, 0.5e-6, 0.2e-9};  // per meter
  const LineParams line = make_line(pul, 2e-3);     // 2 mm
  EXPECT_DOUBLE_EQ(line.total_resistance, 50.0);
  EXPECT_DOUBLE_EQ(line.total_inductance, 1e-9);
  EXPECT_DOUBLE_EQ(line.total_capacitance, 0.4e-12);
  EXPECT_THROW(make_line(pul, 0.0), std::invalid_argument);
  EXPECT_THROW(make_line(pul, -1.0), std::invalid_argument);
}

TEST(Validate, AcceptsGoodRejectsBad) {
  EXPECT_NO_THROW(validate({100.0, 1e-9, 1e-12}));
  EXPECT_THROW(validate({100.0, 0.0, 1e-12}), std::invalid_argument);  // needs L > 0
  EXPECT_NO_THROW(validate_rc({100.0, 0.0, 1e-12}));
  EXPECT_THROW(validate_rc({100.0, -1e-9, 1e-12}), std::invalid_argument);
  EXPECT_THROW(validate({-1.0, 1e-9, 1e-12}), std::invalid_argument);
  EXPECT_THROW(validate({100.0, 1e-9, 0.0}), std::invalid_argument);
  const double nan = std::nan("");
  EXPECT_THROW(validate({nan, 1e-9, 1e-12}), std::invalid_argument);
}

TEST(Describe, MentionsAllParasitics) {
  const std::string d = describe({500.0, 1e-9, 1e-12});
  EXPECT_NE(d.find("Rt="), std::string::npos);
  EXPECT_NE(d.find("Lt="), std::string::npos);
  EXPECT_NE(d.find("Ct="), std::string::npos);
  EXPECT_NE(d.find("zeta0="), std::string::npos);
}

}  // namespace
