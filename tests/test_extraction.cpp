#include "tech/extraction.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::tech;

const Materials kCu{1.7e-8, 3.9, 1.0};

TEST(Resistance, BulkFormula) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  EXPECT_DOUBLE_EQ(extract_resistance(w, kCu), 1.7e-8 / (1e-6 * 0.5e-6));
  // 34 ohm/mm for this cross-section: the right order for global copper.
  EXPECT_NEAR(extract_resistance(w, kCu) * 1e-3, 34.0, 1.0);
}

TEST(Resistance, Validation) {
  EXPECT_THROW(extract_resistance({0.0, 1e-6, 1e-6, 0.0}, kCu), std::invalid_argument);
  EXPECT_THROW(extract_resistance({1e-6, 1e-6, 1e-6, 0.0}, {0.0, 3.9, 1.0}),
               std::invalid_argument);
}

TEST(Capacitance, ExceedsParallelPlate) {
  // Fringe fields always add to the plate term.
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  const double plate = 8.854e-12 * 3.9 * w.width / w.height;
  const double c = extract_capacitance(w, kCu);
  EXPECT_GT(c, plate);
  // Typical global wires: 100-300 pF/m.
  EXPECT_GT(c, 50e-12);
  EXPECT_LT(c, 500e-12);
}

TEST(Capacitance, CouplingIncreasesWithProximity) {
  WireGeometry near{1e-6, 0.5e-6, 1e-6, 0.5e-6};
  WireGeometry far = near;
  far.spacing = 5e-6;
  WireGeometry isolated = near;
  isolated.spacing = 0.0;
  EXPECT_GT(extract_capacitance(near, kCu), extract_capacitance(far, kCu));
  EXPECT_GT(extract_capacitance(far, kCu), extract_capacitance(isolated, kCu));
}

TEST(Capacitance, ScalesWithPermittivity) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  Materials lowk = kCu;
  lowk.relative_permittivity = 2.0;
  EXPECT_NEAR(extract_capacitance(w, lowk) / extract_capacitance(w, kCu), 2.0 / 3.9,
              1e-9);
}

TEST(LoopInductance, TypicalMagnitude) {
  // On-chip wires over a return plane: ~0.2-1 nH/mm.
  const WireGeometry w{2e-6, 1e-6, 3e-6, 0.0};
  const double l = extract_loop_inductance(w, kCu);
  EXPECT_GT(l * 1e-3, 0.1e-9);
  EXPECT_LT(l * 1e-3, 2e-9);
}

TEST(LoopInductance, NarrowerWireHasMoreInductance) {
  WireGeometry narrow{0.5e-6, 0.5e-6, 3e-6, 0.0};
  WireGeometry wide{20e-6, 0.5e-6, 3e-6, 0.0};
  EXPECT_GT(extract_loop_inductance(narrow, kCu), extract_loop_inductance(wide, kCu));
}

TEST(PartialSelfInductance, GrowsLogarithmicallyWithLength) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  const double per_mm_short = partial_self_inductance_per_length(w, 1e-3);
  const double per_mm_long = partial_self_inductance_per_length(w, 10e-3);
  EXPECT_GT(per_mm_long, per_mm_short);           // log growth of the average
  EXPECT_LT(per_mm_long, per_mm_short * 2.0);     // but slow
  // ~1-2 nH/mm scale for isolated thin wires.
  EXPECT_GT(per_mm_short, 0.5e-9 / 1e-3 * 1e-3);  // > 0.5 nH/mm in H/m terms... (0.5e-6)
  EXPECT_THROW(partial_self_inductance_per_length(w, 0.0), std::invalid_argument);
  EXPECT_THROW(partial_self_inductance_per_length(w, 1e-6), std::invalid_argument);
}

TEST(FullExtraction, SignalVelocityBelowLight) {
  const WireGeometry w{2e-6, 1e-6, 3e-6, 0.0};
  const auto pul = extract(w, kCu);
  EXPECT_GT(pul.resistance, 0.0);
  EXPECT_GT(pul.capacitance, 0.0);
  EXPECT_GT(pul.inductance, 0.0);
  EXPECT_DOUBLE_EQ(pul.conductance, 0.0);
  const double c0 = 299792458.0;
  EXPECT_LT(pul.velocity(), c0);
  EXPECT_GT(pul.velocity(), 0.05 * c0);  // on-chip waves are a good fraction of c
}

TEST(FullExtraction, CharacteristicImpedancePlausible) {
  const WireGeometry w{2e-6, 1e-6, 3e-6, 0.0};
  const auto pul = extract(w, kCu);
  // On-chip z0 is tens of ohms.
  EXPECT_GT(pul.lossless_z0(), 10.0);
  EXPECT_LT(pul.lossless_z0(), 300.0);
}

}  // namespace
