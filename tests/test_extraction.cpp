#include "tech/extraction.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/crosstalk.h"
#include "tline/coupled_bus.h"

namespace {

using namespace rlcsim::tech;

const Materials kCu{1.7e-8, 3.9, 1.0};

TEST(Resistance, BulkFormula) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  EXPECT_DOUBLE_EQ(extract_resistance(w, kCu), 1.7e-8 / (1e-6 * 0.5e-6));
  // 34 ohm/mm for this cross-section: the right order for global copper.
  EXPECT_NEAR(extract_resistance(w, kCu) * 1e-3, 34.0, 1.0);
}

TEST(Resistance, Validation) {
  EXPECT_THROW(extract_resistance({0.0, 1e-6, 1e-6, 0.0}, kCu), std::invalid_argument);
  EXPECT_THROW(extract_resistance({1e-6, 1e-6, 1e-6, 0.0}, {0.0, 3.9, 1.0}),
               std::invalid_argument);
}

TEST(Capacitance, ExceedsParallelPlate) {
  // Fringe fields always add to the plate term.
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  const double plate = 8.854e-12 * 3.9 * w.width / w.height;
  const double c = extract_capacitance(w, kCu);
  EXPECT_GT(c, plate);
  // Typical global wires: 100-300 pF/m.
  EXPECT_GT(c, 50e-12);
  EXPECT_LT(c, 500e-12);
}

TEST(Capacitance, CouplingIncreasesWithProximity) {
  WireGeometry near{1e-6, 0.5e-6, 1e-6, 0.5e-6};
  WireGeometry far = near;
  far.spacing = 5e-6;
  WireGeometry isolated = near;
  isolated.spacing = 0.0;
  EXPECT_GT(extract_capacitance(near, kCu), extract_capacitance(far, kCu));
  EXPECT_GT(extract_capacitance(far, kCu), extract_capacitance(isolated, kCu));
}

TEST(Capacitance, ScalesWithPermittivity) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  Materials lowk = kCu;
  lowk.relative_permittivity = 2.0;
  EXPECT_NEAR(extract_capacitance(w, lowk) / extract_capacitance(w, kCu), 2.0 / 3.9,
              1e-9);
}

TEST(LoopInductance, TypicalMagnitude) {
  // On-chip wires over a return plane: ~0.2-1 nH/mm.
  const WireGeometry w{2e-6, 1e-6, 3e-6, 0.0};
  const double l = extract_loop_inductance(w, kCu);
  EXPECT_GT(l * 1e-3, 0.1e-9);
  EXPECT_LT(l * 1e-3, 2e-9);
}

TEST(LoopInductance, NarrowerWireHasMoreInductance) {
  WireGeometry narrow{0.5e-6, 0.5e-6, 3e-6, 0.0};
  WireGeometry wide{20e-6, 0.5e-6, 3e-6, 0.0};
  EXPECT_GT(extract_loop_inductance(narrow, kCu), extract_loop_inductance(wide, kCu));
}

TEST(PartialSelfInductance, GrowsLogarithmicallyWithLength) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.0};
  const double per_mm_short = partial_self_inductance_per_length(w, 1e-3);
  const double per_mm_long = partial_self_inductance_per_length(w, 10e-3);
  EXPECT_GT(per_mm_long, per_mm_short);           // log growth of the average
  EXPECT_LT(per_mm_long, per_mm_short * 2.0);     // but slow
  // ~1-2 nH/mm scale for isolated thin wires.
  EXPECT_GT(per_mm_short, 0.5e-9 / 1e-3 * 1e-3);  // > 0.5 nH/mm in H/m terms... (0.5e-6)
  EXPECT_THROW(partial_self_inductance_per_length(w, 0.0), std::invalid_argument);
  EXPECT_THROW(partial_self_inductance_per_length(w, 1e-6), std::invalid_argument);
}

TEST(FullExtraction, SignalVelocityBelowLight) {
  const WireGeometry w{2e-6, 1e-6, 3e-6, 0.0};
  const auto pul = extract(w, kCu);
  EXPECT_GT(pul.resistance, 0.0);
  EXPECT_GT(pul.capacitance, 0.0);
  EXPECT_GT(pul.inductance, 0.0);
  EXPECT_DOUBLE_EQ(pul.conductance, 0.0);
  const double c0 = 299792458.0;
  EXPECT_LT(pul.velocity(), c0);
  EXPECT_GT(pul.velocity(), 0.05 * c0);  // on-chip waves are a good fraction of c
}

TEST(FullExtraction, CharacteristicImpedancePlausible) {
  const WireGeometry w{2e-6, 1e-6, 3e-6, 0.0};
  const auto pul = extract(w, kCu);
  // On-chip z0 is tens of ohms.
  EXPECT_GT(pul.lossless_z0(), 10.0);
  EXPECT_LT(pul.lossless_z0(), 300.0);
}

// ---------------------------------------------------------------------------
// Coupling split + the tech -> tline bus seam
// ---------------------------------------------------------------------------

TEST(CouplingSplit, GroundPlusTwoSidewallsIsTheTotal) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.5e-6};
  EXPECT_DOUBLE_EQ(
      extract_capacitance(w, kCu),
      extract_ground_capacitance(w, kCu) + 2.0 * extract_coupling_capacitance(w, kCu));
  // Isolated wire: no sidewall term, ground == total.
  WireGeometry isolated = w;
  isolated.spacing = 0.0;
  EXPECT_DOUBLE_EQ(extract_coupling_capacitance(isolated, kCu), 0.0);
  EXPECT_DOUBLE_EQ(extract_capacitance(isolated, kCu),
                   extract_ground_capacitance(isolated, kCu));
}

TEST(CouplingSplit, MutualInductanceFallsWithDistanceAndStaysBelowSelf) {
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.5e-6};
  const double length = 1e-3;
  const double self = partial_self_inductance_per_length(w, length);
  const double near = partial_mutual_inductance_per_length(1.5e-6, length);
  const double far = partial_mutual_inductance_per_length(15e-6, length);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
  EXPECT_LT(near, self);  // k < 1 for separated parallel wires
  EXPECT_THROW(partial_mutual_inductance_per_length(0.0, length),
               std::invalid_argument);
  EXPECT_THROW(partial_mutual_inductance_per_length(1e-6, 0.5e-6),
               std::invalid_argument);
}

TEST(CouplingSplit, LoopMutualIsReturnPlaneConsistent) {
  // With a return plane, the image-pair loop mutual decays much faster than
  // the free-wire partial mutual and keeps k = M/L small enough for
  // nearest-neighbor bus chains.
  const WireGeometry w{1e-6, 0.5e-6, 1e-6, 0.5e-6};
  const double self = extract_loop_inductance(w, kCu);
  const double near = extract_loop_mutual_inductance(1.5e-6, w.height);
  const double far = extract_loop_mutual_inductance(15e-6, w.height);
  EXPECT_GT(near, far);
  EXPECT_GT(far, 0.0);
  EXPECT_LT(near / self, 0.5);  // comfortably inside every chain bound
  EXPECT_THROW(extract_loop_mutual_inductance(0.0, 1e-6), std::invalid_argument);
  EXPECT_THROW(extract_loop_mutual_inductance(1e-6, 0.0), std::invalid_argument);
}

// Golden pin of the whole tech -> tline -> core seam: extracted per-um
// values feed a CoupledBus build and one crosstalk analysis point. The
// numbers pin today's extraction formulas; a change in ANY layer of the
// seam (fit constants, bus assembly, victim metric) moves them.
TEST(BusSeam, ExtractedBusGoldenCrosstalkPoint) {
  // Three 1 mm global-layer copper tracks, 1 um wide, 0.5 um apart.
  const WireGeometry wire{1e-6, 0.5e-6, 1e-6, 0.5e-6};
  const double length = 1e-3;

  rlcsim::tline::PerUnitLength pul;
  pul.resistance = extract_resistance(wire, kCu);
  pul.capacitance = extract_ground_capacitance(wire, kCu);
  pul.inductance = extract_loop_inductance(wire, kCu);
  const double cc_per_m = extract_coupling_capacitance(wire, kCu);
  const double lm_per_m = extract_loop_mutual_inductance(
      wire.spacing + wire.width, wire.height);

  // Golden per-um values (1e-15 F/um etc.), pinned loosely enough to
  // tolerate libm differences but tightly enough to catch formula drift.
  EXPECT_NEAR(pul.resistance * 1e-6, 0.034, 0.001);           // ohm/um
  EXPECT_NEAR(pul.capacitance * 1e-6 * 1e15, 0.1226, 0.001);  // fF/um
  EXPECT_NEAR(cc_per_m * 1e-6 * 1e15, 0.0337, 0.001);         // fF/um
  EXPECT_NEAR(pul.inductance * 1e-6 * 1e12, 0.3880, 0.004);   // pH/um
  EXPECT_NEAR(lm_per_m * 1e-6 * 1e12, 0.1022, 0.002);         // pH/um

  const rlcsim::tline::LineParams line = rlcsim::tline::make_line(pul, length);
  const rlcsim::tline::CoupledBus bus = rlcsim::tline::make_bus(
      {line, line, line}, std::vector<double>(2, cc_per_m * length),
      std::vector<double>(2, lm_per_m * length));
  ASSERT_TRUE(bus.heterogeneous());

  rlcsim::core::CrosstalkOptions opt;
  opt.driver_resistance = 100.0;
  opt.load_capacitance = 5e-15;
  opt.segments = 16;
  const auto opposite = rlcsim::core::analyze_crosstalk(
      bus, rlcsim::core::SwitchingPattern::kOppositePhase, opt);
  const auto quiet = rlcsim::core::analyze_crosstalk(
      bus, rlcsim::core::SwitchingPattern::kQuietVictim, opt);
  ASSERT_TRUE(opposite.victim_delay_50.has_value());

  // Golden victim metrics for this extracted bus (2% pins: transient
  // discretization is deterministic; the slack covers libm variation).
  const double delay = *opposite.victim_delay_50;
  EXPECT_NEAR(delay * 1e12, 23.33, 0.02 * 23.33);  // ps
  EXPECT_NEAR(quiet.peak_noise * 1e3, 261.9, 0.02 * 261.9);  // mV

  // The reduced path reproduces the extracted-bus delay. This short wire is
  // deeply underdamped (zeta ~ 0.15, delay ~ 3x time of flight) — the hard
  // regime for rational models — so q = 6 within 5% is the honest pin here.
  const auto reduced = rlcsim::core::analyze_crosstalk_reduced(
      bus, rlcsim::core::SwitchingPattern::kOppositePhase, opt, 6);
  ASSERT_TRUE(reduced.victim_delay_50.has_value());
  EXPECT_NEAR(*reduced.victim_delay_50, delay, 0.05 * delay);
}

}  // namespace
