// Sparse-vs-dense cross-validation of the full simulator stack, plus the
// solver-policy and LU-cache regressions introduced with the sparse MNA
// subsystem.
//
//  * Coupled RLC lines (capacitive + mutual-inductive coupling) simulated
//    with the solver forced dense and forced sparse must agree to 1e-9 in
//    both transient waveforms and AC transfer — the mutual-inductance cross
//    stamps are the easiest thing for a sparse assembly path to get wrong.
//  * An AC sweep must perform exactly one symbolic factorization however
//    many frequency points it visits (pattern reuse).
//  * A transient run must share one symbolic factorization across all its
//    (dt, integrator) LU-cache entries.
//  * Breakpoint-clipped step sizes that differ only by ulps must NOT create
//    extra LU factorizations (quantized cache keys).
//  * Pulse breakpoint collection is bounded by t_stop/period, not a magic
//    cycle cap: long-period pulses stay cheap, and megacycle trains are not
//    silently truncated.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "numeric/sparse.h"
#include "sim/ac.h"
#include "sim/builders.h"
#include "sim/transient.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::sim;

CoupledLinesSpec coupled_spec(int segments) {
  CoupledLinesSpec spec;
  spec.line = {100.0, 5e-9, 1e-12};   // Rt, Lt, Ct
  spec.coupling_capacitance = 0.3e-12;
  spec.inductive_k = 0.4;
  spec.segments = segments;
  return spec;
}

double max_trace_deviation(const TransientResult& a, const TransientResult& b) {
  double max_err = 0.0;
  for (const auto& node : a.waveforms.node_names()) {
    const Trace ta = a.waveforms.trace(node);
    const Trace tb = b.waveforms.trace(node);
    const auto& va = ta.value();
    const auto& vb = tb.value();
    EXPECT_EQ(va.size(), vb.size()) << node;
    for (std::size_t i = 0; i < std::min(va.size(), vb.size()); ++i)
      max_err = std::max(max_err, std::fabs(va[i] - vb[i]));
  }
  return max_err;
}

TEST(CrossValidate, CoupledLinesTransientSparseMatchesDense) {
  // 40 segments/line -> ~200 unknowns with 40 mutual couplings: big enough
  // that kAuto picks sparse, rich enough to exercise every stamp type.
  const Circuit circuit = build_crosstalk_pair(coupled_spec(40), 100.0, 50e-15);
  TransientOptions options;
  options.t_stop = 2e-9;
  options.dt = 1e-12;

  TransientOptions dense = options;
  dense.solver = SolverKind::kDense;
  TransientOptions sparse = options;
  sparse.solver = SolverKind::kSparse;

  const auto rd = run_transient(circuit, dense);
  const auto rs = run_transient(circuit, sparse);
  EXPECT_FALSE(rd.used_sparse_solver);
  EXPECT_TRUE(rs.used_sparse_solver);
  EXPECT_EQ(rd.steps_taken, rs.steps_taken);
  EXPECT_LE(max_trace_deviation(rd, rs), 1e-9);
}

TEST(CrossValidate, CoupledLinesAcSparseMatchesDense) {
  const Circuit circuit = build_crosstalk_pair(coupled_spec(40), 100.0, 50e-15);
  const auto freqs = log_frequencies(1e6, 1e11, 60);
  // The aggressor driver is the "agg.drv" source; compare victim far end.
  const std::string source = circuit.voltage_sources().front().name;
  for (const char* node : {"agg.out", "vic.out"}) {
    const auto hd = ac_transfer(circuit, source, node, freqs, SolverKind::kDense);
    const auto hs = ac_transfer(circuit, source, node, freqs, SolverKind::kSparse);
    ASSERT_EQ(hd.size(), hs.size());
    for (std::size_t i = 0; i < hd.size(); ++i)
      EXPECT_LE(std::abs(hd[i].value - hs[i].value), 1e-9)
          << node << " f=" << freqs[i];
  }
}

TEST(CrossValidate, AutoPolicyPicksBySize) {
  // Tiny circuit -> dense; large ladder -> sparse.
  Circuit small;
  small.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0});
  small.add_resistor("in", "out", 100.0);
  small.add_capacitor("out", "0", 1e-12);
  TransientOptions options;
  options.t_stop = 1e-9;
  EXPECT_FALSE(run_transient(small, options).used_sparse_solver);

  const Circuit big = build_crosstalk_pair(coupled_spec(40), 100.0, 50e-15);
  EXPECT_TRUE(run_transient(big, options).used_sparse_solver);
}

TEST(AcSweep, ExactlyOneSymbolicFactorizationPerSweep) {
  const Circuit circuit = build_crosstalk_pair(coupled_spec(40), 100.0, 50e-15);
  const std::string source = circuit.voltage_sources().front().name;
  const auto freqs = log_frequencies(1e6, 1e10, 100);

  AcSweepInfo info;
  ac_transfer(circuit, source, "vic.out", freqs, SolverKind::kSparse, &info);
  EXPECT_TRUE(info.used_sparse_solver);
  EXPECT_EQ(info.symbolic_factorizations, 1u)
      << "a 100-point sweep must reuse one symbolic factorization";
  // One full factorization at the pivot frequency + one refactor per point.
  EXPECT_EQ(info.numeric_factorizations, freqs.size() + 1);
}

TEST(TransientCache, SharesOneSymbolicAcrossDtAndIntegratorKeys) {
  // Trapezoidal with BE damping steps and a mid-run breakpoint produces
  // several distinct (dt, integrator) cache keys; with the sparse solver all
  // of them must share the first key's symbolic analysis.
  const Circuit circuit = build_crosstalk_pair(coupled_spec(40), 100.0, 50e-15);
  TransientOptions options;
  options.t_stop = 2e-9;
  options.dt = 1e-12;
  options.solver = SolverKind::kSparse;

  numeric::sparse_lu_stats() = {};
  const auto result = run_transient(circuit, options);
  EXPECT_TRUE(result.used_sparse_solver);
  EXPECT_GE(result.lu_factorizations, 2u);  // BE + trapezoidal at least
  // One symbolic for the DC operating point (different pattern) plus one for
  // the whole transient system — never one per cache key.
  EXPECT_EQ(numeric::sparse_lu_stats().symbolic, 2u);
}

TEST(TransientCache, UlpDifferentClippedStepsShareAFactorization) {
  // A PWL source with points at exact step multiples n*dt computed two ways
  // (i*dt vs t_stop-scaled) yields breakpoint-clipped dts differing by ulps.
  // With exact-double cache keys every such breakpoint paid a fresh LU; the
  // quantized key must collapse them.
  Circuit circuit;
  PwlSpec ramp;
  const double t_stop = 4e-9;
  const double dt = 1e-12;
  ramp.points = {{0.0, 0.0}};
  // Breakpoints intentionally at ulp-perturbed multiples of dt.
  for (int k = 1; k <= 8; ++k) {
    const double t = (t_stop * k) / 8.0 * (1.0 + ((k % 2) ? 3e-16 : -3e-16));
    ramp.points.emplace_back(t, 0.1 * k);
  }
  circuit.add_voltage_source("in", "0", ramp);
  circuit.add_resistor("in", "out", 100.0);
  circuit.add_capacitor("out", "0", 1e-12);

  TransientOptions options;
  options.t_stop = t_stop;
  options.dt = dt;
  const auto result = run_transient(circuit, options);
  // Nominal dt in both integrators, plus at most a couple of genuinely
  // different clipped steps — NOT one factorization per breakpoint.
  EXPECT_LE(result.lu_factorizations, 4u);
}

TEST(Breakpoints, LongPeriodPulseOnlyContributesCoveredCycles) {
  // Period far beyond the window: only cycle 0's edges, and instantly.
  PulseSpec pulse;
  pulse.delay = 1e-10;
  pulse.rise = 1e-12;
  pulse.fall = 1e-12;
  pulse.width = 2e-10;
  pulse.period = 3600.0;  // one hour
  std::set<double> bp;
  collect_source_breakpoints(SourceSpec{pulse}, 1e-9, bp);
  EXPECT_EQ(bp.size(), 4u);
  EXPECT_TRUE(bp.count(1e-10));

  // Delay beyond the window: nothing.
  bp.clear();
  pulse.delay = 2.0;
  collect_source_breakpoints(SourceSpec{pulse}, 1e-9, bp);
  EXPECT_TRUE(bp.empty());
}

TEST(Breakpoints, MegacyclePulseTrainIsNotTruncated) {
  // 150000 cycles fit in the window: the seed's 100000-cycle cap silently
  // dropped the tail edges; the bound must now come from t_stop/period.
  PulseSpec pulse;
  pulse.delay = 0.0;
  pulse.rise = 1e-12;
  pulse.fall = 1e-12;
  pulse.width = 2e-9;
  pulse.period = 1e-8;
  const double t_stop = 1.5e-3;  // 150000 cycles
  std::set<double> bp;
  collect_source_breakpoints(SourceSpec{pulse}, t_stop, bp);
  // An edge from a cycle far beyond the old cap must be present.
  const double late_base = 149999 * pulse.period;
  EXPECT_TRUE(bp.lower_bound(late_base - 1e-12) != bp.end());
  EXPECT_GE(*bp.rbegin(), late_base);
  // 150000 full cycles of 4 edges; the final cycle boundary may or may not
  // land inside the window depending on rounding.
  EXPECT_GE(bp.size(), 4u * 150000u);
  EXPECT_LE(bp.size(), 4u * 150000u + 4u);
}

TEST(Breakpoints, PathologicalCycleCountThrowsInsteadOfExhaustingMemory) {
  // period << t_stop: >1e6 cycles could never be integrated (every edge
  // forces a step); the collector must refuse loudly, not OOM.
  PulseSpec pulse;
  pulse.period = 1e-12;
  std::set<double> bp;
  EXPECT_THROW(collect_source_breakpoints(SourceSpec{pulse}, 1.0, bp),
               std::invalid_argument);
}

TEST(Transient, MinDtFractionValidation) {
  Circuit circuit;
  circuit.add_voltage_source("in", "0", StepSpec{0.0, 1.0, 0.0, 0.0});
  circuit.add_resistor("in", "out", 100.0);
  circuit.add_capacitor("out", "0", 1e-12);
  TransientOptions options;
  options.t_stop = 1e-9;
  options.min_dt_fraction = 0.0;  // would make the dt quantum degenerate
  EXPECT_THROW(run_transient(circuit, options), std::invalid_argument);
  options.min_dt_fraction = 2.0;
  EXPECT_THROW(run_transient(circuit, options), std::invalid_argument);
}

TEST(Transient, PulseDrivenLadderSparseMatchesDense) {
  // End-to-end: a repeating pulse through an RLC ladder (many breakpoint
  // landings and clipped steps), both solvers, same grid.
  Circuit circuit;
  circuit.add_voltage_source("vin", "0",
                             PulseSpec{0.0, 1.0, 0.1e-9, 10e-12, 10e-12, 0.4e-9, 1.1e-9},
                             "vsrc");
  circuit.add_resistor("vin", "drv", 200.0, "rtr");
  add_rlc_ladder(circuit, "line", "drv", "out", {200.0, 2e-8, 0.5e-12}, 30);
  circuit.add_capacitor("out", "0", 0.2e-12, 0.0, "cload");
  TransientOptions options;
  options.t_stop = 3e-9;
  options.dt = 1e-12;
  TransientOptions dense = options;
  dense.solver = SolverKind::kDense;
  TransientOptions sparse = options;
  sparse.solver = SolverKind::kSparse;
  const auto rd = run_transient(circuit, dense);
  const auto rs = run_transient(circuit, sparse);
  EXPECT_EQ(rd.steps_taken, rs.steps_taken);
  EXPECT_LE(max_trace_deviation(rd, rs), 1e-9);
}

}  // namespace
