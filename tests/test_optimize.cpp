#include "numeric/optimize.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

TEST(GoldenSection, QuadraticMinimum) {
  const auto m = golden_section([](double x) { return (x - 2.0) * (x - 2.0); }, -10.0,
                                10.0, {.x_tolerance = 1e-10});
  EXPECT_NEAR(m.x, 2.0, 1e-8);
  EXPECT_NEAR(m.value, 0.0, 1e-15);
}

TEST(GoldenSection, RejectsEmptyInterval) {
  EXPECT_THROW(golden_section([](double x) { return x; }, 1.0, 1.0),
               std::invalid_argument);
}

TEST(BrentMin, QuarticMinimum) {
  const auto f = [](double x) { return std::pow(x - 0.3, 4) + 1.5; };
  const auto m = brent_min(f, -5.0, 5.0, {.x_tolerance = 1e-10});
  EXPECT_NEAR(m.x, 0.3, 1e-4);  // quartic floor is flat; loose x tolerance
  EXPECT_NEAR(m.value, 1.5, 1e-12);
}

TEST(BrentMin, AsymmetricValley) {
  const auto f = [](double x) { return std::exp(x) - 2.0 * x; };
  const auto m = brent_min(f, -2.0, 4.0);
  EXPECT_NEAR(m.x, std::log(2.0), 1e-7);
}

TEST(BrentMin, FasterThanGoldenOnSmooth) {
  const auto f = [](double x) { return (x - 1.0) * (x - 1.0) + 3.0; };
  const auto brent = brent_min(f, -100.0, 100.0, {.x_tolerance = 1e-10});
  const auto golden = golden_section(f, -100.0, 100.0, {.x_tolerance = 1e-10});
  EXPECT_NEAR(brent.x, golden.x, 1e-7);
  EXPECT_LT(brent.iterations, golden.iterations);
}

TEST(NelderMead, Rosenbrock2D) {
  const auto rosenbrock = [](const std::vector<double>& p) {
    const double a = 1.0 - p[0];
    const double b = p[1] - p[0] * p[0];
    return a * a + 100.0 * b * b;
  };
  const auto m = nelder_mead(rosenbrock, {-1.2, 1.0}, {0.5},
                             {.x_tolerance = 1e-10, .max_iterations = 5000});
  EXPECT_NEAR(m.x[0], 1.0, 1e-5);
  EXPECT_NEAR(m.x[1], 1.0, 1e-5);
  EXPECT_TRUE(m.converged);
}

TEST(NelderMead, Quadratic4D) {
  const auto f = [](const std::vector<double>& p) {
    double acc = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double d = p[i] - static_cast<double>(i);
      acc += (i + 1.0) * d * d;
    }
    return acc;
  };
  const auto m = nelder_mead(f, {5.0, 5.0, 5.0, 5.0}, {1.0},
                             {.x_tolerance = 1e-9, .max_iterations = 5000});
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(m.x[i], static_cast<double>(i), 1e-4);
}

TEST(NelderMead, RejectsBadArguments) {
  const auto f = [](const std::vector<double>& p) { return p[0]; };
  EXPECT_THROW(nelder_mead(f, {}, {1.0}), std::invalid_argument);
  EXPECT_THROW(nelder_mead(f, {1.0, 2.0}, {1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(GridRefine2D, FindsGlobalAmongLocalMinima) {
  // Two valleys; the global one is off-center and narrow.
  const auto f = [](double x, double y) {
    const double local = (x - 3.0) * (x - 3.0) + (y - 3.0) * (y - 3.0) + 1.0;
    const double global =
        10.0 * ((x + 2.0) * (x + 2.0) + (y + 1.0) * (y + 1.0));
    return std::min(local, global);
  };
  const auto m = grid_refine_2d(f, -5.0, 5.0, -5.0, 5.0, 30, 14);
  EXPECT_NEAR(m.x[0], -2.0, 1e-4);
  EXPECT_NEAR(m.x[1], -1.0, 1e-4);
}

TEST(GridRefine2D, RejectsDegenerateRectangles) {
  const auto f = [](double, double) { return 0.0; };
  EXPECT_THROW(grid_refine_2d(f, 1.0, 1.0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(grid_refine_2d(f, 0.0, 1.0, 0.0, 1.0, 2), std::invalid_argument);
}

// Both 1-D minimizers must agree across a family of shifted log-quadratics.
class Minimizer1DAgreement : public ::testing::TestWithParam<double> {};

TEST_P(Minimizer1DAgreement, GoldenAndBrentAgree) {
  const double center = GetParam();
  const auto f = [center](double x) {
    return std::cosh(x - center);  // smooth, unimodal, minimum at `center`
  };
  const auto g = golden_section(f, center - 7.0, center + 9.0, {.x_tolerance = 1e-11});
  const auto b = brent_min(f, center - 7.0, center + 9.0, {.x_tolerance = 1e-11});
  EXPECT_NEAR(g.x, center, 1e-7);
  EXPECT_NEAR(b.x, center, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(CenterSweep, Minimizer1DAgreement,
                         ::testing::Values(-3.0, -0.5, 0.0, 0.25, 1.0, 4.0));

}  // namespace
