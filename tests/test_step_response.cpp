#include "tline/step_response.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "tline/rc_line.h"

namespace {

using namespace rlcsim::tline;

TEST(StepResponseAt, StartsAtZeroEndsAtOne) {
  const GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, 1e-12};
  EXPECT_DOUBLE_EQ(step_response_at(sys, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(step_response_at(sys, -1.0), 0.0);
  // Settled well past all time constants.
  EXPECT_NEAR(step_response_at(sys, 1e-6), 1.0, 1e-4);
}

TEST(StepResponse, SampledGridShape) {
  const GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, 1e-12};
  const SampledResponse r = step_response(sys, 10e-9, 100);
  ASSERT_EQ(r.time.size(), 100u);
  ASSERT_EQ(r.value.size(), 100u);
  EXPECT_DOUBLE_EQ(r.time.front(), 0.1e-9);
  EXPECT_DOUBLE_EQ(r.time.back(), 10e-9);
  EXPECT_THROW(step_response(sys, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(step_response(sys, 1e-9, 1), std::invalid_argument);
}

TEST(ThresholdDelay, MatchesRcModalForResistiveLine) {
  // Nearly-RC line (tiny L): the exact RLC delay must approach the
  // independent modal-series RC result.
  const double rt = 1000.0, ct = 1e-12;
  const GateLineLoad sys{0.0, {rt, 1e-13, ct}, 0.0};
  const double rlc = threshold_delay(sys);
  const double rc = rc_modal_delay(rt, ct);
  EXPECT_NEAR(rlc, rc, rc * 0.01);
}

TEST(ThresholdDelay, LosslessLineIsTimeOfFlight) {
  // R -> 0: the far end sees (an overshooting) step arriving at sqrt(LtCt).
  const GateLineLoad sys{0.0, {1e-3, 1e-8, 1e-12}, 0.0};
  const double tof = sys.line.time_of_flight();
  EXPECT_NEAR(threshold_delay(sys), tof, tof * 0.01);
}

TEST(ThresholdDelay, UnderdampedFirstCrossingNotLater) {
  // Strongly ringing system: the search must return the FIRST crossing,
  // which is below the Elmore delay for underdamped responses.
  const GateLineLoad sys{50.0, {100.0, 1e-8, 1e-12}, 0.2e-12};
  const double t50 = threshold_delay(sys);
  const DenominatorMoments m = moments(sys);
  EXPECT_LT(t50, m.b1);
  // And the response there really is 0.5.
  EXPECT_NEAR(step_response_at(sys, t50), 0.5, 1e-6);
}

TEST(ThresholdDelay, MonotoneInThreshold) {
  const GateLineLoad sys{500.0, {500.0, 1e-7, 1e-12}, 0.5e-12};
  EXPECT_LT(threshold_delay(sys, 0.1), threshold_delay(sys, 0.5));
  EXPECT_LT(threshold_delay(sys, 0.5), threshold_delay(sys, 0.9));
  EXPECT_THROW(threshold_delay(sys, 0.0), std::invalid_argument);
  EXPECT_THROW(threshold_delay(sys, 1.0), std::invalid_argument);
}

TEST(MeasureStep, SyntheticFirstOrder) {
  // v(t) = 1 - e^{-t}: delay = ln 2, rise = ln 9, no overshoot.
  std::vector<double> t, v;
  for (int i = 0; i <= 4000; ++i) {
    t.push_back(i * 0.005);
    v.push_back(1.0 - std::exp(-t.back()));
  }
  const StepMetrics m = measure_step(t, v);
  EXPECT_NEAR(m.delay_50, std::log(2.0), 1e-4);
  ASSERT_TRUE(m.rise_10_90.has_value());
  EXPECT_NEAR(*m.rise_10_90, std::log(9.0), 1e-3);
  EXPECT_DOUBLE_EQ(m.overshoot, 0.0);
  ASSERT_TRUE(m.settle_2pct.has_value());
  EXPECT_NEAR(*m.settle_2pct, -std::log(0.02), 0.01);
}

TEST(MeasureStep, OvershootingSecondOrder) {
  // zeta = 0.2 normalized second order: overshoot = exp(-pi z / sqrt(1-z^2)).
  const double zeta = 0.2;
  const double wd = std::sqrt(1.0 - zeta * zeta);
  std::vector<double> t, v;
  for (int i = 0; i <= 8000; ++i) {
    t.push_back(i * 0.005);
    v.push_back(1.0 - std::exp(-zeta * t.back()) *
                          (std::cos(wd * t.back()) +
                           zeta / wd * std::sin(wd * t.back())));
  }
  const StepMetrics m = measure_step(t, v);
  EXPECT_NEAR(m.overshoot, std::exp(-M_PI * zeta / wd), 1e-3);
  EXPECT_GT(m.delay_50, 0.0);
}

TEST(MeasureStep, UnsettledWaveformHasNoSettleTime) {
  std::vector<double> t{0.0, 1.0, 2.0};
  std::vector<double> v{0.0, 0.5, 0.9};  // still 10% away at the end
  const StepMetrics m = measure_step(t, v);
  EXPECT_FALSE(m.settle_2pct.has_value());
}

TEST(MeasureStep, Validation) {
  EXPECT_THROW(measure_step({0.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(measure_step({0.0, 1.0}, {0.0, 1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(measure_step({0.0, 1.0}, {0.0, 0.1}), std::runtime_error);
}

}  // namespace
