#include "tline/transfer.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::tline;

TEST(GateLineLoad, Ratios) {
  const GateLineLoad sys{500.0, {1000.0, 1e-9, 2e-12}, 1e-12};
  EXPECT_DOUBLE_EQ(sys.rt_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(sys.ct_ratio(), 0.5);
}

TEST(GateLineLoad, Validation) {
  EXPECT_NO_THROW(validate({500.0, {1000.0, 1e-9, 1e-12}, 1e-13}));
  EXPECT_NO_THROW(validate({0.0, {1000.0, 1e-9, 1e-12}, 0.0}));
  EXPECT_THROW(validate({-1.0, {1000.0, 1e-9, 1e-12}, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate({1.0, {1000.0, 1e-9, 1e-12}, -1e-15}), std::invalid_argument);
  EXPECT_THROW(validate({1.0, {1000.0, 0.0, 1e-12}, 0.0}), std::invalid_argument);
}

TEST(TransferExact, DcGainIsUnity) {
  const GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, 1e-12};
  const Complex h = transfer_exact(sys, Complex(1.0, 0.0));  // ~DC
  EXPECT_NEAR(h.real(), 1.0, 1e-6);
  EXPECT_NEAR(h.imag(), 0.0, 1e-6);
}

TEST(TransferExact, MagnitudeRollsOff) {
  const GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, 1e-12};
  double prev = 1.0;
  for (double f : {1e7, 1e8, 1e9}) {
    const double mag = std::abs(transfer_exact(sys, Complex(0.0, 2.0 * M_PI * f)));
    EXPECT_LT(mag, prev * 1.3);  // allow mild resonant peaking
    prev = mag;
  }
  EXPECT_LT(prev, 0.2);  // well past the corner by 1 GHz
}

TEST(TransferLumped, ConvergesToExact) {
  const GateLineLoad sys{200.0, {800.0, 4e-9, 2e-12}, 0.5e-12};
  const Complex s(0.0, 2.0 * M_PI * 3e9);
  const Complex exact = transfer_exact(sys, s);
  double prev_err = 1e9;
  for (int segments : {2, 8, 32, 128}) {
    const double err = std::abs(transfer_lumped(sys, segments, s) - exact);
    EXPECT_LE(err, prev_err * 1.001);
    prev_err = err;
  }
  EXPECT_LT(prev_err, 1e-4);
  EXPECT_THROW(transfer_lumped(sys, 0, s), std::invalid_argument);
}

TEST(Moments, ClosedFormMatchesNumericDerivatives) {
  // b1 and b2 from the closed form must equal the Taylor coefficients of
  // 1/H(s) measured by central differences at s ~ 0.
  const GateLineLoad sys{300.0, {700.0, 2e-9, 1.5e-12}, 0.8e-12};
  const DenominatorMoments m = moments(sys);

  const double h = 1e4;  // |s| step, far below the corner (~1/b1)
  const auto d = [&](double s_real) {
    return 1.0 / transfer_exact(sys, Complex(s_real, 0.0)).real();
  };
  const double b1_numeric = (d(h) - d(-h)) / (2.0 * h);
  const double b2_numeric = (d(h) - 2.0 * d(0.0) + d(-h)) / (h * h) / 2.0;
  EXPECT_NEAR(b1_numeric, m.b1, std::fabs(m.b1) * 1e-5);
  EXPECT_NEAR(b2_numeric, m.b2, std::fabs(m.b2) * 1e-3);
}

TEST(Moments, B1IsElmoreDelay) {
  const double rtr = 450.0, rt = 900.0, ct = 1.2e-12, cl = 0.4e-12;
  const GateLineLoad sys{rtr, {rt, 1e-9, ct}, cl};
  EXPECT_DOUBLE_EQ(moments(sys).b1, rtr * (ct + cl) + rt * (ct / 2.0 + cl));
}

TEST(Moments, InductanceEntersOnlyB2) {
  const GateLineLoad a{500.0, {500.0, 1e-9, 1e-12}, 1e-12};
  const GateLineLoad b{500.0, {500.0, 9e-9, 1e-12}, 1e-12};
  EXPECT_DOUBLE_EQ(moments(a).b1, moments(b).b1);
  EXPECT_LT(moments(a).b2, moments(b).b2);
  // The Lt contribution is linear: b2(9L) - b2(L) = 8 L (Ct/2 + CL).
  EXPECT_NEAR(moments(b).b2 - moments(a).b2, 8e-9 * (0.5e-12 + 1e-12), 1e-24);
}

// Across a parameter sweep, the DC limit of the lumped and exact transfer
// functions must both be exactly 1 (voltage division with no DC load).
class TransferDcSweep : public ::testing::TestWithParam<double> {};

TEST_P(TransferDcSweep, UnityDcGain) {
  const double lt = GetParam();
  const GateLineLoad sys{500.0, {500.0, lt, 1e-12}, 1e-12};
  EXPECT_NEAR(transfer_exact(sys, Complex(10.0, 0.0)).real(), 1.0, 1e-5);
  EXPECT_NEAR(transfer_lumped(sys, 16, Complex(10.0, 0.0)).real(), 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(InductanceSweep, TransferDcSweep,
                         ::testing::Values(1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5));

}  // namespace
