#include "numeric/stats.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

TEST(Stats, MeanRmsMaxAbs) {
  const std::vector<double> v{1.0, -2.0, 3.0, -4.0};
  EXPECT_DOUBLE_EQ(mean(v), -0.5);
  EXPECT_DOUBLE_EQ(rms(v), std::sqrt(30.0 / 4.0));
  EXPECT_DOUBLE_EQ(max_abs(v), 4.0);
  EXPECT_DOUBLE_EQ(max_abs({}), 0.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean({}), std::invalid_argument);
  EXPECT_THROW(rms({}), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(Stats, Percentile) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 1.75);
  EXPECT_THROW(percentile(v, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile(v, 101.0), std::invalid_argument);
}

TEST(Stats, CompareSummary) {
  const std::vector<double> a{1.0, 2.2, 3.0};
  const std::vector<double> b{1.0, 2.0, 3.3};
  const ErrorSummary s = compare(a, b);
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.max_abs, 0.3, 1e-12);
  EXPECT_NEAR(s.mean_abs, 0.5 / 3.0, 1e-12);
  EXPECT_NEAR(s.max_rel, 0.1, 1e-12);
}

TEST(Stats, CompareValidatesSizes) {
  EXPECT_THROW(compare({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(compare({}, {}), std::invalid_argument);
}

TEST(Stats, RelErrorFloorGuardsZeroReference) {
  EXPECT_DOUBLE_EQ(rel_error(1.5, 1.0), 0.5);
  // Against a zero reference the floor keeps the result finite.
  EXPECT_LT(rel_error(1e-31, 0.0), 1.0);
}

}  // namespace
