#include "core/two_pole.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "tline/step_response.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::core;

TEST(TwoPole, MomentsFromSystem) {
  const tline::GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, 1e-12};
  const TwoPoleModel m(sys);
  const auto moments = tline::moments(sys);
  EXPECT_DOUBLE_EQ(m.b1(), moments.b1);
  EXPECT_DOUBLE_EQ(m.b2(), moments.b2);
}

TEST(TwoPole, NormalizedParameters) {
  // b1 = 2 zeta / wn, b2 = 1 / wn^2.
  const TwoPoleModel m(2.0e-9, 1.0e-18);
  EXPECT_DOUBLE_EQ(m.natural_frequency(), 1e9);
  EXPECT_DOUBLE_EQ(m.damping(), 1.0);
}

TEST(TwoPole, PolesUnderAndOverdamped) {
  const TwoPoleModel under(0.4e-9, 1.0e-18);  // zeta = 0.2
  const auto [u1, u2] = under.poles();
  EXPECT_NE(u1.imag(), 0.0);
  EXPECT_DOUBLE_EQ(u1.real(), u2.real());
  EXPECT_DOUBLE_EQ(u1.imag(), -u2.imag());
  EXPECT_LT(u1.real(), 0.0);

  const TwoPoleModel over(4e-9, 1.0e-18);  // zeta = 2
  const auto [o1, o2] = over.poles();
  EXPECT_DOUBLE_EQ(o1.imag(), 0.0);
  EXPECT_LT(o1.real(), o2.real());
  EXPECT_LT(o2.real(), 0.0);
  // Product of poles = 1/b2.
  EXPECT_NEAR(o1.real() * o2.real(), 1.0 / 1.0e-18, 1e18 * 1e-9);
}

TEST(TwoPole, StepResponseLimits) {
  const TwoPoleModel m(1e-9, 1e-19);
  EXPECT_DOUBLE_EQ(m.step_response(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.step_response(-1.0), 0.0);
  EXPECT_NEAR(m.step_response(100e-9), 1.0, 1e-9);
}

TEST(TwoPole, CriticallyDampedFormula) {
  // zeta = 1: v(t) = 1 - (1 + wt) e^{-wt}. At wt = 1: 1 - 2/e.
  const TwoPoleModel m(2.0e-9, 1.0e-18);
  EXPECT_NEAR(m.step_response(1e-9), 1.0 - 2.0 / std::exp(1.0), 1e-9);
}

TEST(TwoPole, UnderdampedMatchesClassicFormula) {
  const double zeta = 0.3, wn = 1e9;
  const TwoPoleModel m(2.0 * zeta / wn, 1.0 / (wn * wn));
  const double t = 2e-9;
  const double wd = wn * std::sqrt(1.0 - zeta * zeta);
  const double expected =
      1.0 - std::exp(-zeta * wn * t) *
                (std::cos(wd * t) + zeta / std::sqrt(1 - zeta * zeta) * std::sin(wd * t));
  EXPECT_NEAR(m.step_response(t), expected, 1e-12);
}

TEST(TwoPole, ThresholdDelayConsistent) {
  for (double zeta : {0.2, 0.7, 1.0, 1.8, 4.0}) {
    const double wn = 1e9;
    const TwoPoleModel m(2.0 * zeta / wn, 1.0 / (wn * wn));
    const double t50 = m.threshold_delay(0.5);
    EXPECT_NEAR(m.step_response(t50), 0.5, 1e-9) << "zeta=" << zeta;
    EXPECT_LT(m.threshold_delay(0.1), t50);
  }
  const TwoPoleModel m(1e-9, 1e-19);
  EXPECT_THROW(m.threshold_delay(0.0), std::invalid_argument);
  EXPECT_THROW(m.threshold_delay(1.0), std::invalid_argument);
}

TEST(TwoPole, OvershootAndPeakTime) {
  const double zeta = 0.4, wn = 2e9;
  const TwoPoleModel m(2.0 * zeta / wn, 1.0 / (wn * wn));
  const double os = std::exp(-M_PI * zeta / std::sqrt(1.0 - zeta * zeta));
  EXPECT_NEAR(m.overshoot(), os, 1e-12);
  ASSERT_TRUE(m.peak_time());
  // The response at the peak time equals 1 + overshoot.
  EXPECT_NEAR(m.step_response(*m.peak_time()), 1.0 + os, 1e-9);

  const TwoPoleModel od(4.0 / wn, 1.0 / (wn * wn));  // zeta = 2
  EXPECT_DOUBLE_EQ(od.overshoot(), 0.0);
  EXPECT_FALSE(od.peak_time());
}

TEST(TwoPole, TracksExactResponseForModerateDamping) {
  // The moment-matched two-pole model should predict the exact 50% delay of
  // the distributed system within ~10% in the gate-dominated regime (where
  // two poles dominate).
  const tline::GateLineLoad sys{1500.0, {300.0, 1e-9, 1e-12}, 2e-12};
  const TwoPoleModel m(sys);
  const double exact = tline::threshold_delay(sys);
  EXPECT_NEAR(m.threshold_delay(0.5), exact, exact * 0.10);
}

TEST(TwoPole, Validation) {
  EXPECT_THROW(TwoPoleModel(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TwoPoleModel(1.0, -1.0), std::invalid_argument);
}

// Property sweep: structural bounds on the 50% delay. Overdamped responses
// cross before the first moment b1 (median before mean of a positive
// impulse response); underdamped responses cross before their first peak.
class TwoPoleBounds : public ::testing::TestWithParam<double> {};

TEST_P(TwoPoleBounds, FirstCrossingBounds) {
  const double zeta = GetParam();
  const double wn = 1e9;
  const TwoPoleModel m(2.0 * zeta / wn, 1.0 / (wn * wn));
  const double t50 = m.threshold_delay(0.5);
  if (zeta >= 1.0) {
    EXPECT_LT(t50, m.b1() * 1.0000001);
  } else {
    ASSERT_TRUE(m.peak_time());
    EXPECT_LT(t50, *m.peak_time());
  }
  EXPECT_GT(t50, 0.0);
}

INSTANTIATE_TEST_SUITE_P(DampingSweep, TwoPoleBounds,
                         ::testing::Values(0.15, 0.5, 0.9, 1.0, 1.5, 3.0, 10.0));

}  // namespace
