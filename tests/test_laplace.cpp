#include "numeric/laplace.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;
using Complex = std::complex<double>;

TEST(Euler, StepFunction) {
  // F = 1/s -> f(t) = 1.
  const LaplaceFn f = [](Complex s) { return 1.0 / s; };
  for (double t : {0.1, 1.0, 10.0}) EXPECT_NEAR(invert_euler(f, t), 1.0, 1e-7);
}

TEST(Euler, Ramp) {
  const LaplaceFn f = [](Complex s) { return 1.0 / (s * s); };
  for (double t : {0.5, 2.0, 7.0}) EXPECT_NEAR(invert_euler(f, t), t, 1e-6 * t + 1e-8);
}

TEST(Euler, Exponential) {
  const LaplaceFn f = [](Complex s) { return 1.0 / (s + 2.0); };
  for (double t : {0.1, 1.0, 3.0})
    EXPECT_NEAR(invert_euler(f, t), std::exp(-2.0 * t), 1e-7);
}

TEST(Euler, OscillatorySine) {
  // The case Stehfest cannot do: F = 1/(s^2+1) -> sin t.
  const LaplaceFn f = [](Complex s) { return 1.0 / (s * s + 1.0); };
  for (double t : {0.3, 1.0, 3.14, 6.0, 12.0})
    EXPECT_NEAR(invert_euler(f, t), std::sin(t), 1e-6);
}

TEST(Euler, DampedCosine) {
  // F = (s+a)/((s+a)^2 + w^2) -> e^{-at} cos(wt).
  const double a = 0.5, w = 4.0;
  const LaplaceFn f = [=](Complex s) { return (s + a) / ((s + a) * (s + a) + w * w); };
  for (double t : {0.2, 1.0, 2.5})
    EXPECT_NEAR(invert_euler(f, t), std::exp(-a * t) * std::cos(w * t), 1e-6);
}

TEST(Euler, RejectsNonpositiveTime) {
  const LaplaceFn f = [](Complex s) { return 1.0 / s; };
  EXPECT_THROW(invert_euler(f, 0.0), std::invalid_argument);
  EXPECT_THROW(invert_euler(f, -1.0), std::invalid_argument);
}

TEST(Euler, VectorOverloadMatchesScalar) {
  const LaplaceFn f = [](Complex s) { return 1.0 / (s + 1.0); };
  const std::vector<double> times{0.5, 1.0, 2.0};
  const auto values = invert_euler(f, times);
  ASSERT_EQ(values.size(), 3u);
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_DOUBLE_EQ(values[i], invert_euler(f, times[i]));
}

TEST(Stehfest, StepRampExponential) {
  // n = 7 Stehfest delivers ~5-6 correct digits on smooth transforms.
  EXPECT_NEAR(invert_stehfest([](double s) { return 1.0 / s; }, 3.0), 1.0, 1e-8);
  EXPECT_NEAR(invert_stehfest([](double s) { return 1.0 / (s * s); }, 2.0), 2.0, 1e-6);
  EXPECT_NEAR(invert_stehfest([](double s) { return 1.0 / (s + 1.0); }, 1.5),
              std::exp(-1.5), 5e-6);
}

TEST(Stehfest, DiffusionKernel) {
  // F = exp(-sqrt(s))/s -> erfc(1/(2 sqrt(t))): the RC-line family.
  const LaplaceRealFn f = [](double s) { return std::exp(-std::sqrt(s)) / s; };
  for (double t : {0.25, 1.0, 4.0})
    EXPECT_NEAR(invert_stehfest(f, t), std::erfc(0.5 / std::sqrt(t)), 5e-5);
}

TEST(Stehfest, RejectsBadArguments) {
  const LaplaceRealFn f = [](double s) { return 1.0 / s; };
  EXPECT_THROW(invert_stehfest(f, 0.0), std::invalid_argument);
  EXPECT_THROW(invert_stehfest(f, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(invert_stehfest(f, 1.0, 13), std::invalid_argument);
}

TEST(EulerVsStehfest, AgreeOnSmoothTransform) {
  // Both algorithms, zero shared code, must agree on an overdamped response.
  const double tau = 3.0;
  const LaplaceFn fc = [=](Complex s) { return 1.0 / (s * (1.0 + s * tau)); };
  const LaplaceRealFn fr = [=](double s) { return 1.0 / (s * (1.0 + s * tau)); };
  for (double t : {0.5, 2.0, 5.0, 15.0}) {
    const double expected = 1.0 - std::exp(-t / tau);
    EXPECT_NEAR(invert_euler(fc, t), expected, 1e-7);
    EXPECT_NEAR(invert_stehfest(fr, t), expected, 1e-4);
  }
}

// Parameterized sweep over second-order damping: Euler inversion vs the
// analytic step response of 1/(s (s^2 + 2 zeta s + 1)).
class EulerSecondOrder : public ::testing::TestWithParam<double> {};

TEST_P(EulerSecondOrder, MatchesAnalyticStepResponse) {
  const double zeta = GetParam();
  const LaplaceFn f = [=](Complex s) {
    return 1.0 / (s * (s * s + 2.0 * zeta * s + 1.0));
  };
  const auto analytic = [=](double t) {
    if (zeta < 1.0) {
      const double wd = std::sqrt(1.0 - zeta * zeta);
      return 1.0 - std::exp(-zeta * t) *
                       (std::cos(wd * t) + zeta / wd * std::sin(wd * t));
    }
    const double rt = std::sqrt(zeta * zeta - 1.0);
    const double p1 = -zeta + rt, p2 = -zeta - rt;
    return 1.0 + (p2 * std::exp(p1 * t) - p1 * std::exp(p2 * t)) / (p1 - p2);
  };
  for (double t : {0.5, 1.0, 2.0, 5.0, 9.0})
    EXPECT_NEAR(invert_euler(f, t), analytic(t), 2e-6) << "zeta=" << zeta << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(DampingSweep, EulerSecondOrder,
                         ::testing::Values(0.1, 0.3, 0.7, 1.2, 2.0, 5.0));

}  // namespace
