#include "numeric/matrix.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

TEST(Matrix, ConstructionAndIndexing) {
  RealMatrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 4.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
}

TEST(Matrix, IdentityAndMultiply) {
  const RealMatrix eye = RealMatrix::identity(3);
  RealMatrix a(3, 3);
  double v = 1.0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  const RealMatrix b = eye * a;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b(i, j), a(i, j));
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  RealMatrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVector) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  const std::vector<double> x{5.0, 6.0};
  const auto y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Lu, SolvesKnownSystem) {
  RealMatrix a(3, 3);
  a(0, 0) = 2; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 2) = 2;
  a(2, 0) = 1; a(2, 1) = 0; a(2, 2) = 0;
  const std::vector<double> b{4.0, 5.0, 6.0};
  const auto x = solve(a, b);
  // Verify by substitution.
  EXPECT_NEAR(2 * x[0] + x[1] + x[2], 4.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1] + 2 * x[2], 5.0, 1e-12);
  EXPECT_NEAR(x[0], 6.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  RealMatrix a(2, 2);
  a(0, 0) = 0.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 0.0;
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(Lu, SingularThrows) {
  RealMatrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 4.0;
  EXPECT_THROW(RealLu{a}, std::runtime_error);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(RealLu{RealMatrix(2, 3)}, std::invalid_argument);
}

TEST(Lu, RhsSizeMismatchThrows) {
  const RealLu lu(RealMatrix::identity(3));
  EXPECT_THROW(lu.solve({1.0, 2.0}), std::invalid_argument);
}

TEST(Lu, Determinant) {
  RealMatrix a(2, 2);
  a(0, 0) = 3.0; a(0, 1) = 8.0;
  a(1, 0) = 4.0; a(1, 1) = 6.0;
  EXPECT_NEAR(RealLu(a).determinant(), -14.0, 1e-12);
  EXPECT_NEAR(RealLu(RealMatrix::identity(5)).determinant(), 1.0, 1e-12);
}

TEST(Lu, ReusableAcrossRhs) {
  RealMatrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 1.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0;
  const RealLu lu(a);
  const auto x1 = lu.solve({1.0, 0.0});
  const auto x2 = lu.solve({0.0, 1.0});
  EXPECT_NEAR(4 * x1[0] + x1[1], 1.0, 1e-12);
  EXPECT_NEAR(x2[0] + 3 * x2[1], 1.0, 1e-12);
}

TEST(Lu, ComplexSystem) {
  using C = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = C(1.0, 1.0); a(0, 1) = C(0.0, -1.0);
  a(1, 0) = C(2.0, 0.0); a(1, 1) = C(3.0, 1.0);
  const std::vector<C> b{C(1.0, 0.0), C(0.0, 2.0)};
  const auto x = solve(a, b);
  const C r0 = a(0, 0) * x[0] + a(0, 1) * x[1] - b[0];
  const C r1 = a(1, 0) * x[0] + a(1, 1) * x[1] - b[1];
  EXPECT_LT(std::abs(r0), 1e-12);
  EXPECT_LT(std::abs(r1), 1e-12);
}

// Random-ish (deterministic) SPD-like systems across sizes: solve then verify
// the residual.
class LuResidual : public ::testing::TestWithParam<int> {};

TEST_P(LuResidual, ResidualSmall) {
  const int n = GetParam();
  RealMatrix a(n, n);
  std::vector<double> b(n);
  // Deterministic diagonally-dominant fill.
  for (int i = 0; i < n; ++i) {
    b[i] = std::sin(i + 1.0);
    for (int j = 0; j < n; ++j)
      a(i, j) = (i == j) ? n + std::cos(i) : std::sin(0.7 * i + 1.3 * j);
  }
  const auto x = solve(a, b);
  for (int i = 0; i < n; ++i) {
    double acc = 0.0;
    for (int j = 0; j < n; ++j) acc += a(i, j) * x[j];
    EXPECT_NEAR(acc, b[i], 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidual, ::testing::Values(1, 2, 5, 20, 80, 200));

TEST(Ldlt, PositiveDefiniteTest) {
  using rlcsim::numeric::RealMatrix;
  using rlcsim::numeric::symmetric_positive_definite;
  // Diagonally dominant symmetric: PD.
  RealMatrix a(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = (i == j) ? 4.0 : 1.0;
  EXPECT_TRUE(symmetric_positive_definite(a));
  // Tridiagonal Toeplitz 1 + 2k cos(j pi / (n+1)): indefinite at k = 0.8
  // for n = 3 (2 * 0.8 * cos(pi/4) > 1) — the case the tline layer rejects.
  RealMatrix t(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    t(i, i) = 1.0;
    if (i + 1 < 3) t(i, i + 1) = t(i + 1, i) = 0.8;
  }
  EXPECT_FALSE(symmetric_positive_definite(t));
  for (std::size_t i = 0; i + 1 < 3; ++i) t(i, i + 1) = t(i + 1, i) = 0.5;
  EXPECT_TRUE(symmetric_positive_definite(t));
  // Semi-definite (zero eigenvalue) is NOT positive definite.
  RealMatrix s(2, 2);
  s(0, 0) = s(0, 1) = s(1, 0) = s(1, 1) = 1.0;
  EXPECT_FALSE(symmetric_positive_definite(s));
  // Shape/symmetry violations throw.
  EXPECT_THROW(symmetric_positive_definite(RealMatrix(2, 3)),
               std::invalid_argument);
  RealMatrix asym(2, 2);
  asym(0, 0) = asym(1, 1) = 1.0;
  asym(0, 1) = 0.5;
  asym(1, 0) = -0.5;
  EXPECT_THROW(symmetric_positive_definite(asym), std::invalid_argument);
}

}  // namespace
