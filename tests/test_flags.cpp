// Environment / command-line knob hardening: RLCSIM_THREADS, RLCSIM_LANES
// and the shared bench --threads parser must REJECT junk with a clear
// message instead of silently defaulting (a typo'd thread count quietly
// becoming "all cores" or an empty scaling study is the regression these
// pin down).
#include <cstdlib>
#include <stdexcept>

#include <gtest/gtest.h>

#include "../bench/bench_util.h"
#include "numeric/sparse_batch.h"
#include "obs/obs.h"
#include "runtime/env.h"
#include "runtime/thread_pool.h"

namespace {

using rlcsim::runtime::default_thread_count;

// Scoped environment-variable override; restores the previous state. Tests
// using it run single-threaded (gtest default), so setenv is race-free here.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_old_)
      ::setenv(name_.c_str(), old_.c_str(), 1);
    else
      ::unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

class ScopedThreadsEnv : public ScopedEnv {
 public:
  explicit ScopedThreadsEnv(const char* value)
      : ScopedEnv("RLCSIM_THREADS", value) {}
};

class ScopedLanesEnv : public ScopedEnv {
 public:
  explicit ScopedLanesEnv(const char* value)
      : ScopedEnv("RLCSIM_LANES", value) {}
};

TEST(ThreadsEnv, PositiveIntegerIsHonored) {
  {
    ScopedThreadsEnv env("3");
    EXPECT_EQ(default_thread_count(), 3u);
  }
  {
    ScopedThreadsEnv env(" 4");  // strtol-style leading whitespace is fine
    EXPECT_EQ(default_thread_count(), 4u);
  }
}

TEST(ThreadsEnv, UnsetAndEmptyFallBackToHardware) {
  {
    ScopedThreadsEnv env(nullptr);
    EXPECT_GE(default_thread_count(), 1u);
  }
  {
    ScopedThreadsEnv env("");  // empty = "no override", not junk
    EXPECT_GE(default_thread_count(), 1u);
  }
}

TEST(ThreadsEnv, JunkThrowsWithTheOffendingValue) {
  for (const char* bad : {"abc", "4x", "-2", "0", "2.5", "1e3",
                          "99999999999999999999"}) {
    ScopedThreadsEnv env(bad);
    try {
      (void)default_thread_count();
      FAIL() << "expected std::invalid_argument for RLCSIM_THREADS=" << bad;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("RLCSIM_THREADS"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(bad), std::string::npos);
    }
  }
}

TEST(LanesEnv, SupportedWidthsAreHonored) {
  {
    ScopedLanesEnv env("1");
    EXPECT_EQ(rlcsim::numeric::default_lane_width(), 1u);
  }
  {
    ScopedLanesEnv env("4");
    EXPECT_EQ(rlcsim::numeric::default_lane_width(), 4u);
  }
  {
    ScopedLanesEnv env("8");
    EXPECT_EQ(rlcsim::numeric::default_lane_width(), 8u);
  }
}

TEST(LanesEnv, UnsetEmptyAndAutoPickTheWidestKernel) {
  for (const char* value : {static_cast<const char*>(nullptr), "", "auto"}) {
    ScopedLanesEnv env(value);
    EXPECT_EQ(rlcsim::numeric::default_lane_width(), 8u);
  }
}

TEST(LanesEnv, JunkThrowsWithTheOffendingValue) {
  // Unsupported widths are junk too: "2" silently meaning "some default"
  // is exactly what an override knob must not do.
  for (const char* bad : {"abc", "2", "3", "16", "0", "-4", "4x", "8.0",
                          "1e1", " 4 ", "99999999999999999999"}) {
    ScopedLanesEnv env(bad);
    try {
      (void)rlcsim::numeric::default_lane_width();
      FAIL() << "expected std::invalid_argument for RLCSIM_LANES=" << bad;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("RLCSIM_LANES"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(bad), std::string::npos);
    }
  }
}

// Both knobs above route through the shared runtime::parse_env_* helpers;
// these pin the helpers' own contract directly so a future knob gets the
// junk-throws behavior for free.
TEST(ParseEnvInt, ContractDirectly) {
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", nullptr);
    EXPECT_FALSE(
        rlcsim::runtime::parse_env_int("RLCSIM_TEST_KNOB", 1, 100).has_value());
  }
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", "");  // empty = no override, not junk
    EXPECT_FALSE(
        rlcsim::runtime::parse_env_int("RLCSIM_TEST_KNOB", 1, 100).has_value());
  }
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", "42");
    EXPECT_EQ(rlcsim::runtime::parse_env_int("RLCSIM_TEST_KNOB", 1, 100), 42);
  }
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", " 7");  // strtol leading whitespace ok
    EXPECT_EQ(rlcsim::runtime::parse_env_int("RLCSIM_TEST_KNOB", 1, 100), 7);
  }
  // Junk, partial parses, and out-of-range values all throw naming the
  // variable and the offending text.
  for (const char* bad : {"abc", "7x", "2.5", "1e3", "0", "-3", "101",
                          "99999999999999999999"}) {
    ScopedEnv env("RLCSIM_TEST_KNOB", bad);
    try {
      (void)rlcsim::runtime::parse_env_int("RLCSIM_TEST_KNOB", 1, 100);
      FAIL() << "expected std::invalid_argument for value " << bad;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("RLCSIM_TEST_KNOB"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(bad), std::string::npos);
    }
  }
}

TEST(ParseEnvEnum, ContractDirectly) {
  const auto parse = [] {
    return rlcsim::runtime::parse_env_enum(
        "RLCSIM_TEST_KNOB", {{"auto", 8}, {"1", 1}, {"4", 4}},
        "1, 4, or \"auto\"");
  };
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", nullptr);
    EXPECT_FALSE(parse().has_value());
  }
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", "");
    EXPECT_FALSE(parse().has_value());
  }
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", "auto");
    EXPECT_EQ(parse(), 8);
  }
  {
    ScopedEnv env("RLCSIM_TEST_KNOB", "4");
    EXPECT_EQ(parse(), 4);
  }
  // Exact-token matching: whitespace, zero padding, and near-misses are
  // junk — no numeric aliasing onto the token list.
  for (const char* bad : {"AUTO", " 4", "04", "4 ", "2", "junk"}) {
    ScopedEnv env("RLCSIM_TEST_KNOB", bad);
    try {
      (void)parse();
      FAIL() << "expected std::invalid_argument for value \"" << bad << "\"";
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("RLCSIM_TEST_KNOB"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(bad), std::string::npos);
    }
  }
}

// The observability knobs ride the same junk-throws contract. These pin
// the pure re-reading parsers (parse_metrics_env / trace_path_from_env);
// the cached metrics_enabled()/trace_active() gates are process-lifetime
// and covered behaviorally by test_obs.
TEST(MetricsEnv, UnsetEmptyAndOneEnable) {
  for (const char* value : {static_cast<const char*>(nullptr), "", "1"}) {
    ScopedEnv env("RLCSIM_METRICS", value);
    EXPECT_TRUE(rlcsim::obs::parse_metrics_env());
  }
}

TEST(MetricsEnv, ZeroDisables) {
  ScopedEnv env("RLCSIM_METRICS", "0");
  EXPECT_FALSE(rlcsim::obs::parse_metrics_env());
}

TEST(MetricsEnv, JunkThrowsWithTheOffendingValue) {
  // Exact-token matching: boolean spellings, padding, and whitespace are
  // junk — a typo must not silently flip telemetry on or off.
  for (const char* bad : {"2", "true", "on", "01", " 1", "yes"}) {
    ScopedEnv env("RLCSIM_METRICS", bad);
    try {
      (void)rlcsim::obs::parse_metrics_env();
      FAIL() << "expected std::invalid_argument for RLCSIM_METRICS=" << bad;
    } catch (const std::invalid_argument& error) {
      EXPECT_NE(std::string(error.what()).find("RLCSIM_METRICS"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(bad), std::string::npos);
    }
  }
}

TEST(TraceEnv, UnsetAndEmptyMeanNoTrace) {
  for (const char* value : {static_cast<const char*>(nullptr), ""}) {
    ScopedEnv env("RLCSIM_TRACE", value);
    EXPECT_FALSE(rlcsim::obs::trace_path_from_env().has_value());
  }
}

TEST(TraceEnv, AnyOtherValueIsTheOutputPath) {
  ScopedEnv env("RLCSIM_TRACE", "/tmp/rlcsim_trace.json");
  EXPECT_EQ(rlcsim::obs::trace_path_from_env(),
            std::string("/tmp/rlcsim_trace.json"));
}

TEST(ThreadListFlag, ParsesValidLists) {
  EXPECT_EQ(benchutil::parse_thread_list("1"),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(benchutil::parse_thread_list("1,2,8"),
            (std::vector<std::size_t>{1, 2, 8}));
}

TEST(ThreadListFlag, RejectsJunkEntriesLoudly) {
  for (const char* bad : {"", "a", "1,,2", "1,2,", "0", "1,-2", "1,2x",
                          "2.5", "99999999999999999999", "1,70000"}) {
    EXPECT_THROW((void)benchutil::parse_thread_list(bad),
                 std::invalid_argument)
        << "input: \"" << bad << "\"";
  }
  // The message names the offending entry, not just the whole string.
  try {
    (void)benchutil::parse_thread_list("1,junk,4");
    FAIL();
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("junk"), std::string::npos);
  }
}

}  // namespace
