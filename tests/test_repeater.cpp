#include "core/repeater.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim;
using namespace rlcsim::core;

const tline::LineParams kLine{450.0, 33.75e-9, 45e-12};  // T_{L/R} = 5 with kBuf
const MinBuffer kBuf{3000.0, 5e-15, 1.0, 0.0};            // R0 C0 = 15 ps

TEST(TLr, Definition) {
  // T = (Lt/Rt) / (R0 C0) = 75 ps / 15 ps = 5.
  EXPECT_NEAR(t_lr(kLine, kBuf), 5.0, 1e-12);
  EXPECT_THROW(t_lr({0.0, 1e-9, 1e-12}, kBuf), std::invalid_argument);
}

TEST(Bakoglu, ClosedForms) {
  const RepeaterDesign d = bakoglu_rc(kLine, kBuf);
  EXPECT_NEAR(d.size, std::sqrt(kBuf.r0 * 45e-12 / (450.0 * kBuf.c0)), 1e-9);
  EXPECT_NEAR(d.sections, std::sqrt(450.0 * 45e-12 / (2.0 * kBuf.r0 * kBuf.c0)), 1e-9);
  // Works for an RC line (Lt = 0) too.
  EXPECT_NO_THROW(bakoglu_rc({450.0, 0.0, 45e-12}, kBuf));
}

TEST(ErrorFactors, UnityAtZeroAndDecreasing) {
  EXPECT_DOUBLE_EQ(h_error_factor(0.0), 1.0);
  EXPECT_DOUBLE_EQ(k_error_factor(0.0), 1.0);
  double ph = 1.0, pk = 1.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    EXPECT_LT(h_error_factor(t), ph);
    EXPECT_LT(k_error_factor(t), pk);
    ph = h_error_factor(t);
    pk = k_error_factor(t);
  }
  EXPECT_THROW(h_error_factor(-1.0), std::invalid_argument);
  EXPECT_THROW(k_error_factor(-1.0), std::invalid_argument);
}

TEST(ErrorFactors, PublishedValues) {
  // h'(T) = [1 + 0.16 T^3]^-0.24, k'(T) = [1 + 0.18 T^3]^-0.30.
  EXPECT_NEAR(h_error_factor(5.0), std::pow(1.0 + 0.16 * 125.0, -0.24), 1e-12);
  EXPECT_NEAR(k_error_factor(5.0), std::pow(1.0 + 0.18 * 125.0, -0.30), 1e-12);
}

TEST(IsmailFriedman, ReducesToBakogluWithoutInductance) {
  const tline::LineParams rc_ish{450.0, 1e-15, 45e-12};  // negligible L
  const RepeaterDesign rc = bakoglu_rc(rc_ish, kBuf);
  const RepeaterDesign rlc = ismail_friedman_rlc(rc_ish, kBuf);
  EXPECT_NEAR(rlc.size, rc.size, rc.size * 1e-6);
  EXPECT_NEAR(rlc.sections, rc.sections, rc.sections * 1e-6);
}

TEST(IsmailFriedman, ShrinksDesignWithInductance) {
  const RepeaterDesign rc = bakoglu_rc(kLine, kBuf);
  const RepeaterDesign rlc = ismail_friedman_rlc(kLine, kBuf);
  EXPECT_LT(rlc.size, rc.size);
  EXPECT_LT(rlc.sections, rc.sections);
  EXPECT_NEAR(rlc.size, rc.size * h_error_factor(5.0), 1e-9);
  EXPECT_NEAR(rlc.sections, rc.sections * k_error_factor(5.0), 1e-9);
}

TEST(TotalDelay, MatchesKTimesSectionModel) {
  const RepeaterDesign d{100.0, 4.0};
  const double total = total_delay(kLine, kBuf, d);
  const tline::GateLineLoad section{kBuf.r0 / d.size, kLine.section(4),
                                    kBuf.c0 * d.size};
  EXPECT_NEAR(total, 4.0 * rlc_delay(section), total * 1e-12);
}

TEST(TotalDelay, Validation) {
  EXPECT_THROW(total_delay(kLine, kBuf, {0.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(total_delay(kLine, kBuf, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(total_delay(kLine, {0.0, 1e-15}, {1.0, 1.0}), std::invalid_argument);
}

TEST(RoundedSections, PicksBetterInteger) {
  const RepeaterDesign d{100.0, 3.4};
  const RepeaterDesign r = rounded_sections(kLine, kBuf, d);
  EXPECT_TRUE(r.sections == 3.0 || r.sections == 4.0);
  const double t3 = total_delay(kLine, kBuf, {100.0, 3.0});
  const double t4 = total_delay(kLine, kBuf, {100.0, 4.0});
  EXPECT_DOUBLE_EQ(total_delay(kLine, kBuf, r), std::min(t3, t4));
  // Fractional k < 1 rounds up to 1.
  EXPECT_DOUBLE_EQ(rounded_sections(kLine, kBuf, {100.0, 0.3}).sections, 1.0);
}

TEST(AreaIncrease, PaperAnchors) {
  // The two quantitative anchors printed in the paper's Section III.
  EXPECT_NEAR(area_increase_percent(3.0), 154.0, 1.0);
  EXPECT_NEAR(area_increase_percent(5.0), 435.0, 1.5);
  EXPECT_DOUBLE_EQ(area_increase_percent(0.0), 0.0);
  EXPECT_THROW(area_increase_percent(-1.0), std::invalid_argument);
}

TEST(AreaIncrease, ConsistentWithErrorFactors) {
  // %AI = 100 (1/(h'k') - 1) by construction.
  for (double t : {1.0, 2.5, 6.0}) {
    const double from_factors =
        100.0 * (1.0 / (h_error_factor(t) * k_error_factor(t)) - 1.0);
    EXPECT_NEAR(area_increase_percent(t), from_factors, 1e-9);
  }
}

TEST(RepeaterArea, Formula) {
  MinBuffer b = kBuf;
  b.area = 2.0;
  EXPECT_DOUBLE_EQ(repeater_area(b, {10.0, 5.0}), 100.0);
}

TEST(DynamicPower, WirePlusRepeaterCap) {
  MinBuffer b = kBuf;
  b.output_capacitance = 5e-15;
  const double p = dynamic_power(kLine, b, {10.0, 5.0}, 1e9, 2.5);
  const double expected = 1e9 * 2.5 * 2.5 * (45e-12 + 5.0 * 10.0 * 10e-15);
  EXPECT_NEAR(p, expected, expected * 1e-12);
  EXPECT_THROW(dynamic_power(kLine, b, {1.0, 1.0}, 0.0, 1.0), std::invalid_argument);
}

TEST(DynamicPower, RcSizingCostsMorePower) {
  const RepeaterDesign rc = bakoglu_rc(kLine, kBuf);
  const RepeaterDesign rlc = ismail_friedman_rlc(kLine, kBuf);
  EXPECT_GT(dynamic_power(kLine, kBuf, rc, 1e9, 2.5),
            dynamic_power(kLine, kBuf, rlc, 1e9, 2.5));
}

TEST(MinBuffer, Validation) {
  EXPECT_THROW(validate(MinBuffer{0.0, 1e-15, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate(MinBuffer{1.0, 0.0, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(validate(MinBuffer{1.0, 1e-15, 1.0, -1e-15}), std::invalid_argument);
}

// Sweep: the RLC design's own-model delay never exceeds the RC design's by
// more than a whisker across T (both are near-optimal sizings of a flat
// objective; the RLC one must never be catastrophically worse).
class SizingSanity : public ::testing::TestWithParam<double> {};

TEST_P(SizingSanity, ClosedFormSizingsStayReasonable) {
  const double t = GetParam();
  const tline::LineParams line{1.0, t, 1.0};
  const MinBuffer buffer{1.0, 1.0, 1.0, 0.0};
  const double d_rc = total_delay(line, buffer, bakoglu_rc(line, buffer));
  const double d_rlc = total_delay(line, buffer, ismail_friedman_rlc(line, buffer));
  EXPECT_GT(d_rc, 0.0);
  EXPECT_GT(d_rlc, 0.0);
  EXPECT_LT(d_rlc, d_rc * 1.35);
  EXPECT_LT(d_rc, d_rlc * 1.35);
}

INSTANTIATE_TEST_SUITE_P(TSweep, SizingSanity,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0));

}  // namespace
