#include "tline/ramp_response.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tline/step_response.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::tline;

const GateLineLoad kSystem{500.0, {500.0, 1e-8, 1e-12}, 1e-12};

TEST(Ramp, ResponseBasics) {
  EXPECT_DOUBLE_EQ(ramp_response_at(kSystem, 1e-10, 0.0), 0.0);
  // Well past everything: settles to 1.
  EXPECT_NEAR(ramp_response_at(kSystem, 1e-10, 1e-6), 1.0, 1e-4);
  EXPECT_THROW(ramp_response_at(kSystem, 0.0, 1e-9), std::invalid_argument);
}

TEST(Ramp, FastRampConvergesToStepResponse) {
  const double t = 2e-9;
  const double step = step_response_at(kSystem, t);
  const double fast = ramp_response_at(kSystem, 1e-13, t);
  EXPECT_NEAR(fast, step, 5e-4);
}

TEST(Ramp, SlowRampFollowsInput) {
  // For tr far above the system time constant, the output tracks the input:
  // at t = tr/2 the output is ~0.5 (minus a small lag).
  const double tr = 1e-6;  // vastly slower than the ~2 ns system
  const double mid = ramp_response_at(kSystem, tr, tr / 2.0);
  EXPECT_NEAR(mid, 0.5, 0.01);
}

TEST(Ramp, DelayConvergesToStepDelayAsTrShrinks) {
  const double step_delay = threshold_delay(kSystem);
  const double fast = ramp_threshold_delay(kSystem, 1e-12);
  EXPECT_NEAR(fast, step_delay, step_delay * 0.01);
}

TEST(Ramp, DelayIncreasesWithRiseTime) {
  double prev = 0.0;
  for (double tr : {0.1e-9, 1e-9, 4e-9, 16e-9}) {
    const double d = ramp_threshold_delay(kSystem, tr);
    EXPECT_GT(d, prev * 0.999) << "tr=" << tr;
    prev = d;
  }
}

TEST(Ramp, StepApproximationErrorSmallForFastEdges) {
  // The paper's step-input assumption: fine while tr is below the system
  // time constant, degrading beyond it.
  const double b1 = moments(kSystem).b1;
  EXPECT_LT(step_approximation_error(kSystem, 0.1 * b1), 0.05);
  EXPECT_GT(step_approximation_error(kSystem, 5.0 * b1), 0.10);
}

TEST(Ramp, Validation) {
  EXPECT_THROW(ramp_threshold_delay(kSystem, 0.0), std::invalid_argument);
  EXPECT_THROW(ramp_threshold_delay(kSystem, 1e-9, 0.0), std::invalid_argument);
  EXPECT_THROW(ramp_threshold_delay(kSystem, 1e-9, 1.0), std::invalid_argument);
}

// The 50%-to-50% ramp delay of a first-order-like overdamped system is
// bounded below by the step delay for any rise time (linear-system fact for
// monotone step responses).
class RampBound : public ::testing::TestWithParam<double> {};

TEST_P(RampBound, RampDelayAtLeastStepDelay) {
  const double tr = GetParam();
  const double step_delay = threshold_delay(kSystem);
  EXPECT_GE(ramp_threshold_delay(kSystem, tr), step_delay * 0.995);
}

INSTANTIATE_TEST_SUITE_P(RiseTimes, RampBound,
                         ::testing::Values(1e-11, 1e-10, 1e-9, 5e-9, 2e-8));

}  // namespace
