#include "core/delay_model.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim;
using namespace rlcsim::core;

// Table-1 style system builder: Rtr = 500, Ct = 1 pF, Rt = Rtr / RT,
// CL = CT * Ct.
tline::GateLineLoad table1_system(double rt_ratio, double ct_ratio, double lt) {
  const double rtr = 500.0, ct = 1e-12;
  return {rtr, {rtr / rt_ratio, lt, ct}, ct_ratio * ct};
}

TEST(Zeta, HandComputedValue) {
  // RT = CT = 1, Rt = 500, Ct = 1 pF, Lt = 1e-8 H:
  // zeta = 250 * sqrt(1e-12/1e-8) * (1+1+1+0.5)/sqrt(2) = 2.5 * 3.5/1.41421.
  const DelayModel m(table1_system(1.0, 1.0, 1e-8));
  EXPECT_NEAR(m.zeta(), 2.5 * 3.5 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(m.omega_n(), 1.0 / std::sqrt(1e-8 * 2e-12), 1.0);
  EXPECT_DOUBLE_EQ(m.rt(), 1.0);
  EXPECT_DOUBLE_EQ(m.ct(), 1.0);
}

TEST(Eq9, ReproducesPaperTable1Cells) {
  // Cells from Table 1 (RT = 0.5 and 1.0 groups) that pin down the zeta
  // formula; values in ps as printed in the paper's "(9)" columns.
  struct Cell {
    double rt, ct, lt, tpd_ps;
  };
  const Cell cells[] = {
      {1.0, 1.0, 1e-8, 1294.0},  // matches to ~0.1%
      {0.5, 1.0, 1e-8, 1811.0},
      {0.5, 0.5, 1e-7, 1297.0},
      {1.0, 0.1, 1e-8, 630.0},
      {0.5, 0.1, 1e-8, 841.0},
  };
  for (const auto& cell : cells) {
    const DelayModel m(table1_system(cell.rt, cell.ct, cell.lt));
    EXPECT_NEAR(m.delay() * 1e12, cell.tpd_ps, cell.tpd_ps * 0.035)
        << "RT=" << cell.rt << " CT=" << cell.ct << " Lt=" << cell.lt;
  }
}

TEST(Eq9, RcLimitIs037RtCt) {
  // RT = CT = 0, L -> 0: tpd -> 0.37 Rt Ct exactly (the paper's analytic
  // limit; 1.48/4 = 0.37).
  const double rt = 1000.0, ct = 1e-12;
  const tline::GateLineLoad sys{0.0, {rt, 1e-13, ct}, 0.0};
  const DelayModel m(sys);
  EXPECT_NEAR(m.delay(), 0.37 * rt * ct, 0.37 * rt * ct * 1e-3);
  EXPECT_DOUBLE_EQ(m.rc_limit_delay(), 0.37 * rt * ct);
}

TEST(Eq9, LcLimitIsTimeOfFlight) {
  // R -> 0: tpd -> sqrt(Lt Ct).
  const double lt = 1e-8, ct = 1e-12;
  const tline::GateLineLoad sys{0.0, {1e-4, lt, ct}, 0.0};
  const DelayModel m(sys);
  const double tof = std::sqrt(lt * ct);
  EXPECT_NEAR(m.delay(), tof, tof * 1e-3);
  EXPECT_DOUBLE_EQ(m.lc_limit_delay(), tof);
}

TEST(Eq9, ScaledDelayFunctionalForm) {
  EXPECT_DOUBLE_EQ(scaled_delay_of(0.0), 1.0);  // e^0 + 0
  const double z = 0.8;
  EXPECT_DOUBLE_EQ(scaled_delay_of(z),
                   std::exp(-2.9 * std::pow(z, 1.35)) + 1.48 * z);
  EXPECT_THROW(scaled_delay_of(-0.1), std::invalid_argument);
}

TEST(Eq9, CustomFitConstants) {
  const DelayFitConstants alt{2.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(scaled_delay_of(1.0, alt), std::exp(-2.0) + 1.0);
}

TEST(Regime, Classification) {
  EXPECT_EQ(DelayModel(table1_system(0.1, 0.1, 1e-5)).regime(),
            DampingRegime::kUnderdamped);
  EXPECT_EQ(DelayModel(table1_system(1.0, 1.0, 1e-8)).regime(),
            DampingRegime::kOverdamped);
}

TEST(FittedRange, Flagging) {
  EXPECT_TRUE(DelayModel(table1_system(0.5, 0.5, 1e-8)).in_fitted_range());
  EXPECT_FALSE(DelayModel(table1_system(5.0, 0.5, 1e-8)).in_fitted_range());
  const std::string d = DelayModel(table1_system(5.0, 0.5, 1e-8)).describe();
  EXPECT_NE(d.find("outside"), std::string::npos);
}

TEST(DelayModel, MonotoneInDrivingResistance) {
  double prev = 0.0;
  for (double rtr : {100.0, 200.0, 400.0, 800.0}) {
    const tline::GateLineLoad sys{rtr, {500.0, 1e-8, 1e-12}, 0.5e-12};
    const double d = rlc_delay(sys);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(DelayModel, MonotoneInLoadCapacitance) {
  double prev = 0.0;
  for (double cl : {0.1e-12, 0.3e-12, 0.6e-12, 1e-12}) {
    const tline::GateLineLoad sys{500.0, {500.0, 1e-8, 1e-12}, cl};
    const double d = rlc_delay(sys);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(DelayModel, Validation) {
  EXPECT_THROW(DelayModel({500.0, {500.0, 0.0, 1e-12}, 0.0}), std::invalid_argument);
  EXPECT_THROW(zeta_of(0.5, 0.5, 500.0, 0.0, 1e-12), std::invalid_argument);
  EXPECT_THROW(zeta_of(0.5, 0.5, 500.0, 1e-9, 0.0), std::invalid_argument);
}

// Dimensional-consistency property: scaling R by a, L by a^2 leaves zeta
// unchanged and scales the delay by a * ... — more precisely, the delay of
// (a Rt, a^2 Lt, Ct, a Rtr, CL) is a times the original.
class DelayScaling : public ::testing::TestWithParam<double> {};

TEST_P(DelayScaling, ImpedanceScalingLaw) {
  const double a = GetParam();
  const tline::GateLineLoad base{300.0, {700.0, 2e-9, 1.5e-12}, 0.8e-12};
  const tline::GateLineLoad scaled{300.0 * a,
                                   {700.0 * a, 2e-9 * a * a, 1.5e-12},
                                   0.8e-12};
  const DelayModel mb(base), ms(scaled);
  EXPECT_NEAR(ms.zeta(), mb.zeta(), mb.zeta() * 1e-12);
  EXPECT_NEAR(ms.delay(), a * mb.delay(), a * mb.delay() * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Scales, DelayScaling, ::testing::Values(0.25, 0.5, 2.0, 8.0));

}  // namespace
