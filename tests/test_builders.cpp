#include "sim/builders.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tline/rc_line.h"
#include "tline/step_response.h"

namespace {

using namespace rlcsim;
using namespace rlcsim::sim;

TEST(Ladder, ElementCounts) {
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{});
  add_rlc_ladder(c, "ln", "in", "out", {100.0, 1e-9, 1e-12}, 8);
  EXPECT_EQ(c.resistors().size(), 8u);
  EXPECT_EQ(c.inductors().size(), 8u);
  EXPECT_EQ(c.capacitors().size(), 16u);  // two half-caps per segment
  EXPECT_NO_THROW(c.validate());
}

TEST(Ladder, TotalsPreserved) {
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{});
  add_rlc_ladder(c, "ln", "in", "out", {100.0, 4e-9, 2e-12}, 5);
  double r = 0.0, l = 0.0, cap = 0.0;
  for (const auto& e : c.resistors()) r += e.resistance;
  for (const auto& e : c.inductors()) l += e.inductance;
  for (const auto& e : c.capacitors()) cap += e.capacitance;
  EXPECT_NEAR(r, 100.0, 1e-9);
  EXPECT_NEAR(l, 4e-9, 1e-20);
  EXPECT_NEAR(cap, 2e-12, 1e-24);
}

TEST(Ladder, RcOnlyOmitsInductors) {
  Circuit c;
  c.add_voltage_source("in", "0", StepSpec{});
  add_rlc_ladder(c, "ln", "in", "out", {100.0, 0.0, 1e-12}, 4);
  EXPECT_TRUE(c.inductors().empty());
  EXPECT_EQ(c.resistors().size(), 4u);
}

TEST(Ladder, RejectsBadSegmentCount) {
  Circuit c;
  EXPECT_THROW(add_rlc_ladder(c, "x", "a", "b", {1.0, 1e-9, 1e-12}, 0),
               std::invalid_argument);
}

TEST(GateLineLoad, SimulatedDelayMatchesLaplaceReference) {
  const tline::GateLineLoad sys{500.0, {500.0, 1e-7, 1e-12}, 0.5e-12};
  const double reference = tline::threshold_delay(sys);
  const double simulated = simulate_gate_line_delay(sys, 120);
  EXPECT_NEAR(simulated, reference, reference * 0.01);
}

TEST(GateLineLoad, SegmentConvergence) {
  const tline::GateLineLoad sys{200.0, {400.0, 5e-8, 1e-12}, 0.3e-12};
  const double reference = tline::threshold_delay(sys);
  const double coarse = std::fabs(simulate_gate_line_delay(sys, 6) - reference);
  const double fine = std::fabs(simulate_gate_line_delay(sys, 96) - reference);
  EXPECT_LT(fine, coarse);
  EXPECT_LT(fine, reference * 0.01);
}

TEST(GateLineLoad, ZeroDriverResistanceWorks) {
  const tline::GateLineLoad sys{0.0, {100.0, 1e-8, 1e-12}, 0.0};
  const double simulated = simulate_gate_line_delay(sys, 80);
  const double reference = tline::threshold_delay(sys);
  EXPECT_NEAR(simulated, reference, reference * 0.02);
}

TEST(RepeaterChain, StructureAndValidation) {
  RepeaterChainSpec spec;
  spec.line = {300.0, 3e-9, 3e-12};
  spec.sections = 3;
  spec.size = 10.0;
  spec.r0 = 1000.0;
  spec.c0 = 5e-15;
  spec.segments_per_section = 10;
  const Circuit c = build_repeater_chain(spec);
  EXPECT_EQ(c.buffers().size(), 2u);  // stages 2..k
  EXPECT_EQ(c.voltage_sources().size(), 1u);
  EXPECT_EQ(c.inductors().size(), 30u);
  EXPECT_NO_THROW(c.validate());

  RepeaterChainSpec bad = spec;
  bad.sections = 0;
  EXPECT_THROW(build_repeater_chain(bad), std::invalid_argument);
  bad = spec;
  bad.r0 = 0.0;
  EXPECT_THROW(build_repeater_chain(bad), std::invalid_argument);
  bad = spec;
  bad.size = 0.0;
  EXPECT_THROW(build_repeater_chain(bad), std::invalid_argument);
}

TEST(RepeaterChain, SingleSectionEqualsGateLineLoad) {
  // k = 1 chain is exactly the canonical gate + line + load system.
  RepeaterChainSpec spec;
  spec.line = {400.0, 4e-8, 2e-12};
  spec.sections = 1;
  spec.size = 8.0;
  spec.r0 = 2000.0;
  spec.c0 = 10e-15;
  spec.segments_per_section = 80;
  const double chain = simulate_repeater_chain_delay(spec);
  const tline::GateLineLoad sys{spec.r0 / spec.size, spec.line, spec.c0 * spec.size};
  const double reference = tline::threshold_delay(sys);
  EXPECT_NEAR(chain, reference, reference * 0.02);
}

TEST(RepeaterChain, DelayGrowsWithUndersizedBuffers) {
  RepeaterChainSpec good;
  good.line = {400.0, 4e-9, 2e-12};
  good.sections = 3;
  good.size = 30.0;
  good.r0 = 2000.0;
  good.c0 = 10e-15;
  good.segments_per_section = 20;
  RepeaterChainSpec weak = good;
  weak.size = 2.0;  // massively undersized drivers
  EXPECT_GT(simulate_repeater_chain_delay(weak), simulate_repeater_chain_delay(good));
}

}  // namespace
