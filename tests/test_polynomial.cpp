#include "numeric/polynomial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace {

using namespace rlcsim::numeric;

TEST(Polyval, RealAndComplexHorner) {
  const std::vector<double> p{1.0, -2.0, 3.0};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(polyval(p, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(p, 2.0), 9.0);
  const std::complex<double> z(1.0, 1.0);
  const std::complex<double> expected = 1.0 - 2.0 * z + 3.0 * z * z;
  EXPECT_NEAR(std::abs(polyval(p, z) - expected), 0.0, 1e-14);
}

TEST(Polyder, Derivative) {
  const std::vector<double> p{5.0, 1.0, -2.0, 4.0};  // 5 + x - 2x^2 + 4x^3
  const std::vector<double> d = polyder(p);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 1.0);
  EXPECT_DOUBLE_EQ(d[1], -4.0);
  EXPECT_DOUBLE_EQ(d[2], 12.0);
  EXPECT_EQ(polyder({7.0}).size(), 1u);
  EXPECT_DOUBLE_EQ(polyder({7.0})[0], 0.0);
}

TEST(Quadratic, RealRootsStableForm) {
  // x^2 - 1e8 x + 1 = 0: naive formula loses the small root to cancellation.
  const auto r = solve_quadratic(1.0, -1e8, 1.0);
  const double small = std::min(r.r1.real(), r.r2.real());
  const double large = std::max(r.r1.real(), r.r2.real());
  EXPECT_NEAR(small, 1e-8, 1e-16);
  EXPECT_NEAR(large, 1e8, 1.0);
}

TEST(Quadratic, ComplexConjugatePair) {
  const auto r = solve_quadratic(1.0, 2.0, 5.0);  // roots -1 +/- 2i
  EXPECT_NEAR(r.r1.real(), -1.0, 1e-12);
  EXPECT_NEAR(std::fabs(r.r1.imag()), 2.0, 1e-12);
  EXPECT_NEAR(r.r2.real(), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.r1.imag(), -r.r2.imag());
}

TEST(Quadratic, RejectsDegenerate) {
  EXPECT_THROW(solve_quadratic(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(Cubic, ThreeRealRoots) {
  // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
  auto roots = solve_cubic(1.0, -6.0, 11.0, -6.0);
  std::vector<double> reals;
  for (const auto& r : roots) {
    EXPECT_NEAR(r.imag(), 0.0, 1e-9);
    reals.push_back(r.real());
  }
  std::sort(reals.begin(), reals.end());
  EXPECT_NEAR(reals[0], 1.0, 1e-9);
  EXPECT_NEAR(reals[1], 2.0, 1e-9);
  EXPECT_NEAR(reals[2], 3.0, 1e-9);
}

TEST(Cubic, OneRealTwoComplex) {
  // (x-2)(x^2+1) = x^3 - 2x^2 + x - 2.
  const auto roots = solve_cubic(1.0, -2.0, 1.0, -2.0);
  int real_count = 0;
  for (const auto& r : roots) {
    if (std::fabs(r.imag()) < 1e-9) {
      ++real_count;
      EXPECT_NEAR(r.real(), 2.0, 1e-9);
    } else {
      EXPECT_NEAR(std::fabs(r.imag()), 1.0, 1e-9);
      EXPECT_NEAR(r.real(), 0.0, 1e-9);
    }
  }
  EXPECT_EQ(real_count, 1);
}

TEST(Cubic, RejectsDegenerate) {
  EXPECT_THROW(solve_cubic(0.0, 1.0, 1.0, 1.0), std::invalid_argument);
}

TEST(Polyroots, MatchesClosedFormsAtLowDegree) {
  // Degree 1 and 2 dispatch to the closed forms.
  const auto lin = polyroots({3.0, 1.5});
  ASSERT_EQ(lin.size(), 1u);
  EXPECT_NEAR(lin[0].real(), -2.0, 1e-12);

  const auto quad = polyroots({2.0, -3.0, 1.0});  // (x-1)(x-2)
  ASSERT_EQ(quad.size(), 2u);
}

TEST(Polyroots, QuinticKnownRoots) {
  // (x-1)(x-2)(x-3)(x-4)(x-5), coefficients lowest-first.
  const std::vector<double> p{-120.0, 274.0, -225.0, 85.0, -15.0, 1.0};
  auto roots = polyroots(p);
  ASSERT_EQ(roots.size(), 5u);
  std::vector<double> reals;
  for (const auto& r : roots) {
    EXPECT_NEAR(r.imag(), 0.0, 1e-6);
    reals.push_back(r.real());
  }
  std::sort(reals.begin(), reals.end());
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(reals[i], i + 1.0, 1e-6);
}

TEST(Polyroots, ResidualIsSmall) {
  const std::vector<double> p{1.0, 2.0, 3.0, 4.0, 5.0};
  for (const auto& r : polyroots(p))
    EXPECT_LT(std::abs(polyval(p, r)), 1e-8);
}

TEST(Polyroots, IgnoresTrailingZeros) {
  const auto roots = polyroots({-2.0, 1.0, 0.0, 0.0});
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_NEAR(roots[0].real(), 2.0, 1e-12);
}

}  // namespace
