#include "sim/mna.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "numeric/matrix.h"

namespace {

using namespace rlcsim::sim;
using rlcsim::numeric::RealLu;

TEST(DcSolve, VoltageDivider) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{10.0});
  c.add_resistor("in", "mid", 1000.0);
  c.add_resistor("mid", "0", 3000.0);
  const MnaAssembler mna(c);
  TransientState empty;
  const auto x = RealLu(mna.dc_matrix()).solve(mna.dc_rhs(0.0, empty));
  const auto mid = c.find_node("mid");
  ASSERT_TRUE(mid);
  EXPECT_NEAR(x[static_cast<std::size_t>(*mid)], 7.5, 1e-6);
}

TEST(DcSolve, InductorIsShort) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{5.0});
  c.add_inductor("in", "out", 1e-9);
  c.add_resistor("out", "0", 100.0);
  const MnaAssembler mna(c);
  TransientState empty;
  const auto x = RealLu(mna.dc_matrix()).solve(mna.dc_rhs(0.0, empty));
  const auto out = c.find_node("out");
  EXPECT_NEAR(x[static_cast<std::size_t>(*out)], 5.0, 1e-6);
  // Inductor branch current = 5 V / 100 ohm.
  EXPECT_NEAR(x[mna.inductor_branch(0)], 0.05, 1e-9);
}

TEST(DcSolve, CapacitorIsOpen) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{2.0});
  c.add_resistor("in", "out", 1000.0);
  c.add_capacitor("out", "0", 1e-12);
  const MnaAssembler mna(c);
  TransientState empty;
  const auto x = RealLu(mna.dc_matrix()).solve(mna.dc_rhs(0.0, empty));
  const auto out = c.find_node("out");
  // No DC current -> no drop across the resistor (up to the Gmin leak).
  EXPECT_NEAR(x[static_cast<std::size_t>(*out)], 2.0, 1e-6);
}

TEST(Assembler, UnknownLayout) {
  Circuit c;
  c.add_voltage_source("a", "0", DcSpec{1.0});
  c.add_voltage_source("b", "0", DcSpec{2.0});
  c.add_inductor("a", "b", 1e-9);
  c.add_resistor("b", "0", 1.0);
  const MnaAssembler mna(c);
  EXPECT_EQ(mna.node_count(), 2u);
  EXPECT_EQ(mna.unknown_count(), 2u + 2u + 1u);
  EXPECT_EQ(mna.vsource_branch(0), 2u);
  EXPECT_EQ(mna.vsource_branch(1), 3u);
  EXPECT_EQ(mna.inductor_branch(0), 4u);
}

TEST(TransientMatrix, CapacitorCompanionConductance) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{0.0});
  c.add_resistor("in", "out", 1.0);
  c.add_capacitor("out", "0", 2e-12);
  const MnaAssembler mna(c);
  const double dt = 1e-9;
  const auto trap = mna.transient_matrix(dt, Integrator::kTrapezoidal);
  const auto be = mna.transient_matrix(dt, Integrator::kBackwardEuler);
  const auto out = static_cast<std::size_t>(*c.find_node("out"));
  // Diagonal at "out": 1/R + G_c. Trapezoidal G = 2C/dt, BE G = C/dt.
  EXPECT_NEAR(trap(out, out), 1.0 + 2.0 * 2e-12 / dt, 1e-9);
  EXPECT_NEAR(be(out, out), 1.0 + 2e-12 / dt, 1e-9);
  EXPECT_THROW(mna.transient_matrix(0.0, Integrator::kTrapezoidal),
               std::invalid_argument);
}

TEST(InitialState, PopulatesFromDcSolution) {
  Circuit c;
  c.add_voltage_source("in", "0", DcSpec{3.0});
  c.add_inductor("in", "out", 1e-9);
  c.add_resistor("out", "0", 3.0);
  c.add_capacitor("out", "0", 1e-12);
  const MnaAssembler mna(c);
  TransientState empty;
  const auto x = RealLu(mna.dc_matrix()).solve(mna.dc_rhs(0.0, empty));
  const TransientState s = mna.initial_state(x);
  EXPECT_EQ(s.node_voltage.size(), 2u);
  EXPECT_NEAR(s.inductor_current[0], 1.0, 1e-6);
  EXPECT_EQ(s.capacitor_current.size(), 1u);
  EXPECT_DOUBLE_EQ(s.capacitor_current[0], 0.0);
  EXPECT_DOUBLE_EQ(s.time, 0.0);
}

TEST(BufferDrive, SwitchesAtFireTime) {
  Buffer b;
  b.vdd = 2.5;
  b.output_v1 = 2.5;  // the builder methods set this; a raw Buffer must too
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, inf, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, 1e-9, 0.5e-9), 0.0);
  // The value AT the fire instant is the pre-switch level (the StepSpec
  // convention, so a fire at t keeps the t-epsilon drive).
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, 1e-9, 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, 1e-9, 2e-9), 2.5);
}

TEST(BufferDrive, RampedAndInvertingEdges) {
  Buffer b;
  b.vdd = 1.0;
  b.output_v0 = 1.0;  // inverting: high before fire
  b.output_v1 = 0.0;
  b.output_rise = 2e-10;
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, 1e-9, 0.0), 1.0);
  EXPECT_NEAR(MnaAssembler::buffer_drive(b, 1e-9, 1.1e-9), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, 1e-9, 1.2e-9), 0.0);
  EXPECT_DOUBLE_EQ(MnaAssembler::buffer_drive(b, 1e-9, 5e-9), 0.0);
}

TEST(Assembler, RejectsInvalidCircuit) {
  Circuit c;  // empty
  EXPECT_THROW(MnaAssembler{c}, std::invalid_argument);
}

}  // namespace
