// Golden-value regression pins against the paper (conf_dac_IsmailF99).
//
// Unlike the behavioral tests (test_delay_model etc.), these pin the MODEL
// OUTPUTS to frozen numeric values: eq. (9) evaluated at the Table 1
// operating points, the zeta -> 0 / zeta -> inf limits, and the closed-form
// repeater factors at the paper's anchor T values. The goldens were computed
// from the implemented closed forms at the time this suite was written and
// agree with the paper's published anchors; any future refactor that
// silently drifts the constants or the formula shapes fails here first.
#include <cmath>

#include <gtest/gtest.h>

#include "core/delay_model.h"
#include "core/repeater.h"
#include "tline/rlc.h"

namespace {

using namespace rlcsim;

// Relative-tolerance helper: closed forms should be stable to near machine
// precision across refactors; 1e-9 leaves room only for reassociation.
void expect_rel(double value, double golden, double rel = 1e-9) {
  EXPECT_NEAR(value, golden, std::fabs(golden) * rel)
      << "value " << value << " vs golden " << golden;
}

TEST(PaperRegression, FitConstantsArePublishedValues) {
  EXPECT_DOUBLE_EQ(core::kPaperFit.exp_scale, 2.9);
  EXPECT_DOUBLE_EQ(core::kPaperFit.exp_power, 1.35);
  EXPECT_DOUBLE_EQ(core::kPaperFit.linear, 1.48);
}

TEST(PaperRegression, ScaledDelayGoldens) {
  // t'pd(zeta) = exp(-2.9 zeta^1.35) + 1.48 zeta, eq. (9) numerator.
  expect_rel(core::scaled_delay_of(0.25), 1.00999824178858);
  expect_rel(core::scaled_delay_of(0.50), 1.06057246063504);
  expect_rel(core::scaled_delay_of(1.00), 1.53502322005641);
  expect_rel(core::scaled_delay_of(2.00), 2.96061588417577);
}

TEST(PaperRegression, ZetaGolden) {
  // eq. (6) at RT = CT = 0.5, Rt = 1 kohm, Lt = 100 nH, Ct = 1 pF.
  expect_rel(core::zeta_of(0.5, 0.5, 1000.0, 1e-7, 1e-12), 2.25924028528766);
}

// eq. (9) tpd over the full Table 1 grid (Rtr = 500 ohm, Ct = 1 pF under
// the paper's stated definitions Rt = Rtr/RT, CL = CT*Ct). Rows: RT in
// {0.1, 0.5, 1.0} x Lt in {1e-5..1e-8} H; columns: CT in {0.1, 0.5, 1.0}.
TEST(PaperRegression, Table1ClosedFormDelayGoldens) {
  const double rts[] = {5000.0, 1000.0, 500.0};
  const double lts[] = {1e-5, 1e-6, 1e-7, 1e-8};
  const double cts[] = {0.1, 0.5, 1.0};
  const double golden[3][4][3] = {
      {{3.5800585258179e-09, 4.81182218175311e-09, 6.58838210050551e-09},
       {2.62987222877392e-09, 4.25512663532794e-09, 6.29000386790528e-09},
       {2.62700000000025e-09, 4.255e-09, 6.29e-09},
       {2.627e-09, 4.255e-09, 6.29e-09}},
      {{3.37708717292188e-09, 3.91915354764351e-09, 4.51186962882091e-09},
       {1.140204069168e-09, 1.48915707034418e-09, 1.97144278090314e-09},
       {8.51747228054677e-10, 1.29506358352154e-09, 1.85000403686828e-09},
       {8.51000000000031e-10, 1.295e-09, 1.85e-09}},
      {{3.3963885502624e-09, 3.94986736209929e-09, 4.54060887715065e-09},
       {1.07432335681917e-09, 1.30533685468455e-09, 1.60531260748545e-09},
       {6.34760695499061e-10, 9.26531151535986e-10, 1.2953418172306e-09},
       {6.29000000492251e-10, 9.25000000000522e-10, 1.295e-09}}};

  for (int r = 0; r < 3; ++r)
    for (int l = 0; l < 4; ++l)
      for (int c = 0; c < 3; ++c) {
        const tline::GateLineLoad sys{500.0, {rts[r], lts[l], 1e-12},
                                      cts[c] * 1e-12};
        expect_rel(core::rlc_delay(sys), golden[r][l][c]);
      }
}

TEST(PaperRegression, TimeOfFlightLimit) {
  // zeta -> 0 (R -> 0): tpd -> 1/wn; with CL = 0 that is sqrt(Lt Ct), the
  // time of flight. Drive zeta down with a tiny line resistance: the scaled
  // delay is 1 + 1.48 zeta - O(zeta^1.35), so the relative excess is O(zeta).
  const tline::GateLineLoad sys{0.0, {1e-4, 1e-8, 1e-12}, 0.0};
  const core::DelayModel model(sys);
  ASSERT_LT(model.zeta(), 1e-6);
  expect_rel(model.delay(), model.lc_limit_delay(), 1e-5);
  expect_rel(model.lc_limit_delay(), std::sqrt(1e-8 * 1e-12), 1e-12);
}

TEST(PaperRegression, DistributedRcLimit) {
  // zeta -> inf (L -> 0): tpd -> 0.37 Rt Ct. With RT = CT = 0 the identity
  // 1.48 zeta / wn = 0.37 Rt Ct is exact once the exponential has
  // underflowed, so the agreement is to machine precision.
  const tline::GateLineLoad sys{0.0, {10000.0, 1e-12, 1e-12}, 0.0};
  const core::DelayModel model(sys);
  ASSERT_GT(model.zeta(), 50.0);
  expect_rel(model.delay(), model.rc_limit_delay(), 1e-12);
  expect_rel(model.rc_limit_delay(), 0.37 * 10000.0 * 1e-12, 1e-12);
}

TEST(PaperRegression, RepeaterErrorFactorGoldens) {
  // eqs. (14)/(15): h' = [1 + 0.16 T^3]^-0.24, k' = [1 + 0.18 T^3]^-0.3.
  expect_rel(core::h_error_factor(1.0), 0.965006153259867);
  expect_rel(core::k_error_factor(1.0), 0.951558291344048);
  expect_rel(core::h_error_factor(3.0), 0.669547215505159);
  expect_rel(core::k_error_factor(3.0), 0.588343168705175);
  expect_rel(core::h_error_factor(5.0), 0.481578810034352);
  expect_rel(core::k_error_factor(5.0), 0.387864151236989);
  // T -> 0 recovers the Bakoglu RC solution.
  expect_rel(core::h_error_factor(0.0), 1.0, 1e-15);
  expect_rel(core::k_error_factor(0.0), 1.0, 1e-15);
}

TEST(PaperRegression, AreaIncreaseGoldensMatchPaperAnchors) {
  // eq. (18); the paper quotes ~154% at T = 3 and ~435% at T = 5.
  expect_rel(core::area_increase_percent(3.0), 153.85637640527);
  expect_rel(core::area_increase_percent(5.0), 435.368715511328);
  EXPECT_NEAR(core::area_increase_percent(3.0), 154.0, 1.0);
  EXPECT_NEAR(core::area_increase_percent(5.0), 435.0, 1.0);
}

}  // namespace
