// Clock H-tree workload for the timing-graph engine, with its cascaded
// full-MNA correctness oracle.
//
// The tree is `levels` levels of identical 3-branch stages: a trunk from the
// stage driver to a branch point, then a left and a right arm (a
// sim::WireTree — the per-element topology stamping the graph engine
// needed). Each arm end either drives the next level's buffer (internal
// levels) or a leaf sink load. Per level the wire totals taper by
// `taper`; the RIGHT arm's load is scaled by (1 + sink_imbalance) at EVERY
// level, so the skew between the 2^levels sinks is structurally nonzero —
// the quantity the reduced graph must reproduce against the MNA oracle.
//
// Both paths share every physical choice (driver r0/h, buffer loads h*c0,
// per-level output edges, loads, segment counts); they differ ONLY in the
// evaluation machinery — closed-form reduced stages composed by fire times
// versus one flat transient of the whole tree with behavioral buffers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/repeater.h"
#include "graph/timing_graph.h"
#include "sim/circuit.h"
#include "tline/rlc.h"

namespace rlcsim::graph {

struct HTreeSpec {
  int levels = 4;               // buffer levels; 2^levels - 1 stages
  tline::LineParams root_line;  // level-0 stage totals (trunk + one arm)
  double taper = 0.5;           // per-level wire-total scaling
  core::MinBuffer buffer;       // minimum repeater (r0, c0)
  double size = 4.0;            // h — every stage driver is h-sized
  double vdd = 1.0;
  double source_rise = 0.0;     // root input edge, s
  int segments_per_branch = 8;  // ladder cells per trunk/arm
  double sink_capacitance = 0.0;  // leaf sink load, F
  double sink_imbalance = 0.1;    // right-arm load excess (fraction)
  int order = 4;                  // AWE reduction order per stage transfer
};

// Throws std::invalid_argument (naming the field) on invalid specs.
void validate(const HTreeSpec& spec);

// Wire totals of one level-`level` stage (root_line tapered), split as
// trunk = arms = half the level totals.
tline::LineParams level_line(const HTreeSpec& spec, int level);

// The level-`level` stage driver's output edge duration: the shared
// 2.2 * (r0/h) * (stage wire cap + both loads) estimate, used identically
// as the graph stage ramp and the MNA buffer output_rise.
double stage_edge(const HTreeSpec& spec, int level);

// The graph form: 2^levels - 1 stage nodes in heap order (stage s's
// children are 2s+1 / 2s+2; fanin output 0 = left arm, 1 = right arm), one
// reduced StageModel per level shared by all stages of that level (one
// mor::ConductanceReuse spans the build). `sinks` lists the 2^levels leaf
// pins left to right.
struct HTreeGraph {
  TimingGraph graph;
  std::vector<int> stage_nodes;  // heap order, size 2^levels - 1
  std::vector<Pin> sinks;        // leaf (node, output) pins, left to right
};
HTreeGraph build_h_tree(const HTreeSpec& spec);

// The oracle form: the whole tree as ONE circuit — step source behind r0/h,
// every stage a stamped WireTree, every internal arm end a behavioral
// switching buffer (threshold vdd/2, output edge stage_edge of its level),
// every leaf an explicit sink cap. `sink_nodes` (non-null) receives the
// leaf node names left to right, aligned with HTreeGraph::sinks.
sim::Circuit build_h_tree_circuit(const HTreeSpec& spec,
                                  std::vector<std::string>* sink_nodes);

// Reduced-graph vs cascaded-MNA comparison over every sink.
struct HTreeComparison {
  std::vector<double> graph_arrival;  // per sink, s
  std::vector<double> mna_arrival;
  std::vector<double> graph_slew;  // 10-90, s
  std::vector<double> mna_slew;
  double graph_skew = 0.0;  // max - min sink arrival
  double mna_skew = 0.0;
  double max_arrival_error = 0.0;  // max per-sink |g - m| / m
  double max_slew_error = 0.0;     // max per-sink |g - m| / m
  // Skew disagreement normalized by the mean MNA arrival (skew itself can
  // be arbitrarily small, so a delay-normalized gate is the robust one).
  double skew_error = 0.0;
  std::size_t stages = 0;
  std::size_t sinks = 0;
  std::size_t threads_used = 0;
};

// Builds both forms, evaluates the graph with `threads`, runs the oracle
// transient (horizon auto-extended until every sink crosses), measures.
HTreeComparison compare_h_tree(const HTreeSpec& spec, std::size_t threads = 0);

}  // namespace rlcsim::graph
