#include "graph/h_tree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "sim/builders.h"
#include "sim/transient.h"

namespace rlcsim::graph {

void validate(const HTreeSpec& spec) {
  if (spec.levels < 1)
    throw std::invalid_argument("HTreeSpec: levels must be >= 1");
  if (spec.levels > 12)
    throw std::invalid_argument("HTreeSpec: levels > 12 (4095+ stages) is not a workload");
  tline::validate_rc(spec.root_line);
  if (!(spec.taper > 0.0) || !std::isfinite(spec.taper))
    throw std::invalid_argument("HTreeSpec: taper must be finite and > 0");
  core::validate(spec.buffer);
  if (!(spec.size > 0.0))
    throw std::invalid_argument("HTreeSpec: size must be > 0");
  if (!(spec.vdd > 0.0))
    throw std::invalid_argument("HTreeSpec: vdd must be > 0");
  if (!(spec.source_rise >= 0.0) || !std::isfinite(spec.source_rise))
    throw std::invalid_argument("HTreeSpec: source_rise must be finite and >= 0");
  if (spec.segments_per_branch < 1)
    throw std::invalid_argument("HTreeSpec: segments_per_branch must be >= 1");
  if (!(spec.sink_capacitance >= 0.0) || !std::isfinite(spec.sink_capacitance))
    throw std::invalid_argument("HTreeSpec: sink_capacitance must be finite and >= 0");
  if (!(spec.sink_imbalance >= 0.0) || !std::isfinite(spec.sink_imbalance))
    throw std::invalid_argument("HTreeSpec: sink_imbalance must be finite and >= 0");
  if (spec.order < 1)
    throw std::invalid_argument("HTreeSpec: order must be >= 1");
}

tline::LineParams level_line(const HTreeSpec& spec, int level) {
  const double factor = std::pow(spec.taper, level);
  tline::LineParams line = spec.root_line;
  line.total_resistance *= factor;
  line.total_inductance *= factor;
  line.total_capacitance *= factor;
  return line;
}

namespace {

// (left, right) loads hanging off a level's arm ends: the next level's
// buffer inputs, or the leaf sink caps, right side scaled by the imbalance.
struct ArmLoads {
  double left = 0.0;
  double right = 0.0;
};

ArmLoads arm_loads(const HTreeSpec& spec, int level) {
  const bool leaf = level == spec.levels - 1;
  const double base =
      leaf ? spec.sink_capacitance : spec.size * spec.buffer.c0;
  return {base, base * (1.0 + spec.sink_imbalance)};
}

// The stage's 3-branch wire tree; `with_loads` stamps the arm loads as sink
// caps (the reduced stage circuit), the MNA form stamps them itself (buffer
// input caps plus the explicit imbalance cap).
sim::WireTree stage_tree(const HTreeSpec& spec, int level, bool with_loads) {
  const tline::LineParams half = level_line(spec, level).section(2);
  const ArmLoads loads = arm_loads(spec, level);
  sim::WireTree tree;
  tree.branches.push_back({-1, half, spec.segments_per_branch, 0.0});
  tree.branches.push_back(
      {0, half, spec.segments_per_branch, with_loads ? loads.left : 0.0});
  tree.branches.push_back(
      {0, half, spec.segments_per_branch, with_loads ? loads.right : 0.0});
  return tree;
}

int level_of_stage(int stage) {
  int level = 0;
  while ((2 << level) - 1 <= stage) ++level;
  return level;
}

}  // namespace

double stage_edge(const HTreeSpec& spec, int level) {
  const tline::LineParams half = level_line(spec, level).section(2);
  const ArmLoads loads = arm_loads(spec, level);
  const double wire_cap = 3.0 * half.total_capacitance;  // trunk + both arms
  return 2.2 * (spec.buffer.r0 / spec.size) *
         (wire_cap + loads.left + loads.right);
}

HTreeGraph build_h_tree(const HTreeSpec& spec) {
  validate(spec);
  const double r_drv = spec.buffer.r0 / spec.size;

  // One reduced model per level, one symbolic factorization for all of them
  // (every level's stage circuit has the same topology).
  mor::ConductanceReuse reuse;
  std::vector<StageModel> models;
  models.reserve(spec.levels);
  for (int level = 0; level < spec.levels; ++level) {
    sim::Circuit circuit;
    circuit.add_voltage_source("in", "0", sim::DcSpec{0.0}, "vin");
    circuit.add_resistor("in", "drv", r_drv, "rdrv");
    std::vector<std::string> ends;
    sim::add_wire_tree(circuit, "t", "drv",
                       stage_tree(spec, level, /*with_loads=*/true), &ends);
    const tline::LineParams half = level_line(spec, level).section(2);
    const double max_delay = 2.0 * half.time_of_flight();
    models.push_back(reduce_stage(circuit, {ends[1], ends[2]}, spec.order,
                                  max_delay, &reuse));
  }

  HTreeGraph tree;
  const int stages = (1 << spec.levels) - 1;
  tree.stage_nodes.reserve(stages);
  for (int stage = 0; stage < stages; ++stage) {
    const int level = level_of_stage(stage);
    StageNode node;
    node.model = models[static_cast<std::size_t>(level)];
    if (stage == 0) {
      node.fanin = {-1, 0};
      node.ramp = spec.source_rise;
    } else {
      const int parent = (stage - 1) / 2;
      node.fanin = {tree.stage_nodes[static_cast<std::size_t>(parent)],
                    stage == 2 * parent + 1 ? 0 : 1};
      node.ramp = stage_edge(spec, level);
    }
    node.pre = 0.0;
    node.post = spec.vdd;
    node.vdd = spec.vdd;
    tree.stage_nodes.push_back(tree.graph.add_stage(std::move(node)));
  }
  const int first_leaf = (1 << (spec.levels - 1)) - 1;
  for (int stage = first_leaf; stage < stages; ++stage) {
    const int node = tree.stage_nodes[static_cast<std::size_t>(stage)];
    tree.sinks.push_back({node, 0});
    tree.sinks.push_back({node, 1});
  }
  return tree;
}

sim::Circuit build_h_tree_circuit(const HTreeSpec& spec,
                                  std::vector<std::string>* sink_nodes) {
  validate(spec);
  const double r_drv = spec.buffer.r0 / spec.size;
  const double c_in = spec.size * spec.buffer.c0;
  const int stages = (1 << spec.levels) - 1;

  sim::Circuit circuit;
  circuit.add_voltage_source(
      "vin", "0", sim::StepSpec{0.0, spec.vdd, 0.0, spec.source_rise}, "vin");
  circuit.add_resistor("vin", "s0.drv", r_drv, "rdrv0");
  if (sink_nodes) sink_nodes->clear();

  for (int stage = 0; stage < stages; ++stage) {
    const int level = level_of_stage(stage);
    const bool leaf = level == spec.levels - 1;
    const std::string prefix = "s" + std::to_string(stage);
    std::vector<std::string> ends;
    sim::add_wire_tree(circuit, prefix, prefix + ".drv",
                       stage_tree(spec, level, /*with_loads=*/false), &ends);
    const ArmLoads loads = arm_loads(spec, level);
    for (int side = 0; side < 2; ++side) {
      const std::string& arm = ends[static_cast<std::size_t>(1 + side)];
      if (leaf) {
        const double sink = side == 0 ? loads.left : loads.right;
        if (sink > 0.0)
          circuit.add_capacitor(arm, "0", sink, 0.0,
                                prefix + ".sink" + std::to_string(side));
        if (sink_nodes) sink_nodes->push_back(arm);
      } else {
        const int child = 2 * stage + 1 + side;
        const std::string child_drv =
            "s" + std::to_string(child) + ".drv";
        // The buffer stamps the base h*c0 input load; the right arm's
        // imbalance excess is an explicit extra cap so both sides present
        // exactly the loads the reduced stage model was built with.
        circuit.add_switching_buffer(arm, child_drv, r_drv, c_in, +1, 0.0,
                                     spec.vdd, stage_edge(spec, level + 1),
                                     spec.vdd, 0.5,
                                     prefix + ".buf" + std::to_string(side));
        if (side == 1 && spec.sink_imbalance > 0.0)
          circuit.add_capacitor(arm, "0", loads.right - loads.left, 0.0,
                                prefix + ".imb");
      }
    }
  }
  return circuit;
}

HTreeComparison compare_h_tree(const HTreeSpec& spec, std::size_t threads) {
  HTreeGraph tree = build_h_tree(spec);
  const GraphResult graph = tree.graph.evaluate(threads);

  HTreeComparison out;
  out.stages = tree.stage_nodes.size();
  out.sinks = tree.sinks.size();
  out.threads_used = graph.threads_used;
  for (const Pin& sink : tree.sinks) {
    const NodeMetrics& metrics =
        graph.nodes[static_cast<std::size_t>(sink.node)];
    out.graph_arrival.push_back(
        metrics.arrival[static_cast<std::size_t>(sink.output)]);
    const auto& slew = metrics.slew[static_cast<std::size_t>(sink.output)];
    if (!slew)
      throw std::runtime_error(
          "compare_h_tree: a sink response never bracketed the 10-90 band");
    out.graph_slew.push_back(*slew);
  }

  std::vector<std::string> sink_nodes;
  const sim::Circuit circuit = build_h_tree_circuit(spec, &sink_nodes);

  // Horizon: a per-level RC + time-of-flight bound summed over the root-to-
  // sink path, with headroom; extended x4 until every sink has crossed.
  double horizon = spec.source_rise;
  for (int level = 0; level < spec.levels; ++level) {
    const tline::LineParams line = level_line(spec, level);
    horizon += 4.0 * ((spec.buffer.r0 / spec.size) *
                          (1.5 * line.total_capacitance +
                           spec.size * spec.buffer.c0) +
                      line.rc_time() + line.time_of_flight()) +
               stage_edge(spec, level);
  }
  sim::TransientOptions options;
  options.t_stop = horizon;
  sim::TransientResult result;
  const double level_50 = 0.5 * spec.vdd;
  for (int attempt = 0;; ++attempt) {
    result = sim::run_transient(circuit, options);
    bool all_crossed = true;
    for (const std::string& node : sink_nodes)
      if (!result.waveforms.trace(node).crossing(level_50, 0.0, +1)) {
        all_crossed = false;
        break;
      }
    if (all_crossed) break;
    if (attempt >= 3)
      throw std::runtime_error(
          "compare_h_tree: a sink never crossed 50% within the extended "
          "horizon");
    options.t_stop *= 4.0;
  }
  for (const std::string& node : sink_nodes) {
    const sim::Trace trace = result.waveforms.trace(node);
    out.mna_arrival.push_back(*trace.crossing(level_50, 0.0, +1));
    out.mna_slew.push_back(trace.rise_time(spec.vdd));
  }

  const auto span = [](const std::vector<double>& v) {
    const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
    return *hi - *lo;
  };
  out.graph_skew = span(out.graph_arrival);
  out.mna_skew = span(out.mna_arrival);
  double mean_mna = 0.0;
  for (std::size_t s = 0; s < out.sinks; ++s) {
    mean_mna += out.mna_arrival[s];
    out.max_arrival_error = std::max(
        out.max_arrival_error,
        std::abs(out.graph_arrival[s] - out.mna_arrival[s]) /
            out.mna_arrival[s]);
    if (out.mna_slew[s] > 0.0)
      out.max_slew_error =
          std::max(out.max_slew_error,
                   std::abs(out.graph_slew[s] - out.mna_slew[s]) /
                       out.mna_slew[s]);
  }
  mean_mna /= static_cast<double>(out.sinks);
  out.skew_error = std::abs(out.graph_skew - out.mna_skew) / mean_mna;
  return out;
}

}  // namespace rlcsim::graph
