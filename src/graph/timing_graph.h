// Timing-graph engine over reduced stage macromodels — the DAG
// generalization of repbus::compose_bus_chain.
//
// Topology model: a node is ONE driver stage — a buffer (or the external
// input) driving a reduced macromodel of its interconnect (point-to-point
// ladder or branching sim::WireTree), with one reduced transfer per fanout
// output. An edge is a (node, output) pin: the 50% crossing measured at a
// stage output IS the absolute start time of the fanout stage's driver
// ramp — exactly the fire-time semantics of the MNA chain's switching
// buffers and of compose_bus_chain's stage walk. Nothing in the graph steps
// time: every node evaluation is a closed-form mor::AnalyticResponse
// superposition, measured once.
//
// Evaluation is topological levelization on the work-stealing thread pool:
// level(n) = 1 + level(fanin), nodes of one level evaluated by one
// parallel_for. Every node writes only its own result slot and reads only
// completed levels, so results are BIT-IDENTICAL at every thread count —
// the contract every subsystem of this repo keeps. Graphs are DAGs by
// construction (a stage may only reference an already-added fanin), so
// cycles are unrepresentable rather than detected.
//
// Linear chains embed exactly: add_bus_chain expands a repeatered-bus spec
// into `sections` chain nodes that call the SAME repbus chain-walk helpers
// (evaluate_chain_stage / accumulate_chain_stage) compose_bus_chain calls,
// one stage per node — so a chain evaluated through the graph reproduces
// compose_bus_chain bit-for-bit, at any thread count.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "mor/moments.h"
#include "mor/reduce.h"
#include "repbus/stage_compose.h"
#include "sim/circuit.h"

namespace rlcsim::graph {

// Reduced macromodel of one single-driver stage: one transfer (and its
// exact moment-0 DC gain) per fanout output.
struct StageModel {
  std::vector<mor::PoleResidueModel> transfer;  // per output
  std::vector<double> dc;                       // DC gains (moment 0)
  std::vector<std::string> outputs;             // stage-circuit node names
};

// AWE-reduces `circuit`'s (driver -> outputs) transfers to `order` poles
// over ONE sparse G factorization. The circuit must contain exactly one
// voltage source (the stage driver, input column 0) and no buffers;
// `max_delay` bounds the transport-delay extraction (e.g. the driver->sink
// time of flight). `reuse` shares the symbolic factorization across stages
// with identical topology (an H-tree's levels, for instance).
StageModel reduce_stage(const sim::Circuit& circuit,
                        const std::vector<std::string>& outputs, int order,
                        double max_delay,
                        mor::ConductanceReuse* reuse = nullptr);

// A fire-time source: output `output` of node `node`, or the primary input
// (node = -1, which fires at t = 0).
struct Pin {
  int node = -1;
  int output = 0;
};

// One generic stage: its reduced model, where its driver's fire time comes
// from, and the driver's transition.
struct StageNode {
  StageModel model;
  Pin fanin;
  double pre = 0.0;   // driver output level before it fires
  double post = 1.0;  // ... after (ramped over `ramp` from the fire time)
  double ramp = 0.0;  // driver edge duration, s (0 = ideal step)
  double vdd = 1.0;   // envelope reference for the 50% / 10-90 measurements
};

// Per-node results. Generic stage nodes: arrival = absolute 50% crossing
// per output, slew = 10-90 transition per output (absent when the response
// never brackets the levels), peak_noise = worst excursion outside the
// drive envelope. Chain nodes: arrival = the stage's measured per-line
// crossings (next fire times), peak_noise = the victim's stage noise,
// slew empty.
struct NodeMetrics {
  std::vector<double> arrival;
  std::vector<std::optional<double>> slew;
  double peak_noise = 0.0;
};

struct GraphResult {
  std::vector<NodeMetrics> nodes;
  // One ComposedChainMetrics per add_bus_chain call, identical to what
  // compose_bus_chain returns for the same (spec, pattern, models).
  std::vector<repbus::ComposedChainMetrics> chains;
  std::size_t levels = 0;
  std::size_t threads_used = 0;
};

class TimingGraph {
 public:
  // Adds a generic stage; returns its node id. Throws std::invalid_argument
  // on an empty/mismatched model, a fanin pin referencing a not-yet-added
  // node (the DAG-by-construction rule), or an out-of-range fanin output.
  int add_stage(StageNode node);

  // Expands a repeatered-bus chain into `spec.sections` linearly dependent
  // chain nodes (node s evaluates walk stage s+1... i.e. stage s, fed by
  // node s-1) and returns the chain id indexing GraphResult::chains.
  // Validates spec/models via repbus::make_chain_walk. The models are
  // copied into the graph; the first chain node's ids follow the nodes
  // already added.
  int add_bus_chain(const repbus::RepeaterBusSpec& spec,
                    core::SwitchingPattern pattern, repbus::StageModels models);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t chain_count() const { return chains_.size(); }

  // Evaluates the whole graph. `threads` = 0 picks the runtime default
  // (RLCSIM_THREADS honored). Deterministic: bit-identical results at every
  // thread count.
  GraphResult evaluate(std::size_t threads = 0) const;

 private:
  struct NodeRecord {
    int chain = -1;       // -1 = generic stage, else chain id
    int chain_stage = 0;  // 1-based walk stage (chain nodes only)
    StageNode stage;      // generic nodes only
  };
  struct ChainRecord {
    repbus::RepeaterBusSpec spec;
    core::SwitchingPattern pattern = core::SwitchingPattern::kQuietVictim;
    repbus::StageModels models;
    int first_node = 0;
  };

  int fanin_of(const NodeRecord& record) const;

  std::vector<NodeRecord> nodes_;
  std::vector<ChainRecord> chains_;
};

}  // namespace rlcsim::graph
