#include "graph/timing_graph.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "mor/response.h"
#include "numeric/fp_env.h"
#include "obs/obs.h"
#include "runtime/thread_pool.h"
#include "sim/mna.h"

namespace rlcsim::graph {

StageModel reduce_stage(const sim::Circuit& circuit,
                        const std::vector<std::string>& outputs, int order,
                        double max_delay, mor::ConductanceReuse* reuse) {
  OBS_SPAN("graph.reduce_stage");
  OBS_COUNTER_ADD("graph.stage_reductions", 1);
  if (order < 1)
    throw std::invalid_argument("reduce_stage: order must be >= 1");
  if (outputs.empty())
    throw std::invalid_argument("reduce_stage: at least one output required");
  if (circuit.voltage_sources().size() != 1 ||
      !circuit.current_sources().empty() || !circuit.buffers().empty())
    throw std::invalid_argument(
        "reduce_stage: the stage circuit must contain exactly one voltage "
        "source (the driver) and no other sources or buffers");

  const sim::MnaAssembler mna(circuit);
  const mor::LinearSystem linear = mor::make_linear_system(mna, outputs);
  const mor::MomentGenerator generator(linear, reuse);

  StageModel model;
  model.outputs = outputs;
  model.transfer.reserve(outputs.size());
  model.dc.reserve(outputs.size());
  for (std::size_t s = 0; s < outputs.size(); ++s) {
    const std::vector<double> moments = generator.transfer_moments(
        linear.outputs[s], linear.inputs[0], 2 * order);
    model.dc.push_back(moments[0]);
    model.transfer.push_back(mor::reduce_transfer(moments, order, max_delay));
  }
  return model;
}

int TimingGraph::fanin_of(const NodeRecord& record) const {
  if (record.chain < 0) return record.stage.fanin.node;
  return record.chain_stage == 1
             ? -1
             : chains_[static_cast<std::size_t>(record.chain)].first_node +
                   record.chain_stage - 2;
}

int TimingGraph::add_stage(StageNode node) {
  if (node.model.transfer.empty() ||
      node.model.transfer.size() != node.model.dc.size())
    throw std::invalid_argument(
        "TimingGraph: stage model needs matching, non-empty transfer and dc "
        "tables");
  if (node.pre == node.post)
    throw std::invalid_argument(
        "TimingGraph: a stage driver must transition (pre != post)");
  if (!(node.ramp >= 0.0) || !std::isfinite(node.ramp))
    throw std::invalid_argument("TimingGraph: ramp must be finite and >= 0");
  if (!(node.vdd > 0.0))
    throw std::invalid_argument("TimingGraph: vdd must be > 0");
  // DAG by construction: a fanin may only name an ALREADY-ADDED node, so a
  // cycle (including a self-edge) cannot be expressed at all.
  if (node.fanin.node < -1 ||
      node.fanin.node >= static_cast<int>(nodes_.size()))
    throw std::invalid_argument(
        "TimingGraph: fanin must reference an already-added node (or -1 for "
        "the primary input)");
  if (node.fanin.node >= 0) {
    const NodeRecord& fanin =
        nodes_[static_cast<std::size_t>(node.fanin.node)];
    const int outputs =
        fanin.chain >= 0
            ? chains_[static_cast<std::size_t>(fanin.chain)].spec.bus.lines
            : static_cast<int>(fanin.stage.model.transfer.size());
    if (node.fanin.output < 0 || node.fanin.output >= outputs)
      throw std::invalid_argument(
          "TimingGraph: fanin output out of range for node " +
          std::to_string(node.fanin.node));
  } else if (node.fanin.output != 0) {
    throw std::invalid_argument(
        "TimingGraph: the primary input has a single output (0)");
  }
  NodeRecord record;
  record.stage = std::move(node);
  nodes_.push_back(std::move(record));
  return static_cast<int>(nodes_.size()) - 1;
}

int TimingGraph::add_bus_chain(const repbus::RepeaterBusSpec& spec,
                               core::SwitchingPattern pattern,
                               repbus::StageModels models) {
  // Validation (spec fields + model/geometry compatibility) is exactly
  // make_chain_walk's; the walk itself is rebuilt against the graph-owned
  // copies at evaluate time.
  (void)repbus::make_chain_walk(spec, pattern, models);
  ChainRecord chain;
  chain.spec = spec;
  chain.pattern = pattern;
  chain.models = std::move(models);
  chain.first_node = static_cast<int>(nodes_.size());
  const int id = static_cast<int>(chains_.size());
  chains_.push_back(std::move(chain));
  for (int stage = 1; stage <= spec.sections; ++stage) {
    NodeRecord record;
    record.chain = id;
    record.chain_stage = stage;
    nodes_.push_back(std::move(record));
  }
  return id;
}

namespace {

// Running state of one chain, carried node to node along the chain's path.
struct ChainScratch {
  std::vector<repbus::StageLineState> state;
  repbus::ComposedChainMetrics metrics;
};

}  // namespace

GraphResult TimingGraph::evaluate(std::size_t threads) const {
  OBS_SPAN("graph.evaluate");
  OBS_COUNTER_ADD("graph.evaluations", 1);
  const numeric::fp_env_guard fp_guard("graph::TimingGraph::evaluate");
  const std::size_t n = nodes_.size();
  OBS_COUNTER_ADD("graph.nodes_evaluated", n);
  GraphResult out;
  out.nodes.resize(n);
  out.chains.resize(chains_.size());

  // Topological levelization: level = 1 + level(fanin). Fanins always
  // precede their nodes (DAG by construction), so one forward pass settles
  // every level.
  std::vector<std::size_t> level(n, 0);
  std::size_t max_level = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const int fanin = fanin_of(nodes_[k]);
    level[k] = fanin < 0 ? 0 : level[static_cast<std::size_t>(fanin)] + 1;
    max_level = std::max(max_level, level[k]);
  }
  std::vector<std::vector<std::size_t>> buckets(n == 0 ? 0 : max_level + 1);
  for (std::size_t k = 0; k < n; ++k) buckets[level[k]].push_back(k);
  out.levels = buckets.size();

  // The chain walks hold pointers into chains_, which is immutable here.
  std::vector<repbus::ChainWalk> walks;
  walks.reserve(chains_.size());
  for (const ChainRecord& chain : chains_)
    walks.push_back(
        repbus::make_chain_walk(chain.spec, chain.pattern, chain.models));
  std::vector<ChainScratch> scratch(n);

  runtime::ThreadPool pool(threads);
  out.threads_used = pool.size();

  for (std::size_t lvl = 0; lvl < buckets.size(); ++lvl) {
    const std::vector<std::size_t>& bucket = buckets[lvl];
    // One level at a time; within a level every node writes ONLY its own
    // slots (out.nodes[k], scratch[k]) and reads only completed levels —
    // the determinism contract needs nothing further.
    OBS_SPAN("graph.level", static_cast<long>(lvl));
    pool.parallel_for(bucket.size(), [&](std::size_t b, std::size_t) {
      const std::size_t k = bucket[b];
      const NodeRecord& record = nodes_[k];
      if (record.chain >= 0) {
        const repbus::ChainWalk& walk =
            walks[static_cast<std::size_t>(record.chain)];
        ChainScratch local;
        if (record.chain_stage == 1) {
          local.state = repbus::initial_chain_state(walk);
          local.metrics.victim_fire_times.push_back(0.0);
        } else {
          local = scratch[k - 1];  // the previous chain node, one level up
        }
        const repbus::ChainStageResult result = repbus::evaluate_chain_stage(
            walk, local.state, record.chain_stage);
        repbus::accumulate_chain_stage(walk, result, record.chain_stage,
                                       local.state, local.metrics);
        out.nodes[k].arrival = result.next_t;
        out.nodes[k].peak_noise = result.victim_noise;
        scratch[k] = std::move(local);
      } else {
        const StageNode& node = record.stage;
        const double t_fire =
            node.fanin.node < 0
                ? 0.0
                : out.nodes[static_cast<std::size_t>(node.fanin.node)]
                      .arrival[static_cast<std::size_t>(node.fanin.output)];
        NodeMetrics& metrics = out.nodes[k];
        const std::size_t outputs = node.model.transfer.size();
        metrics.arrival.resize(outputs);
        metrics.slew.resize(outputs);
        const double delta = node.post - node.pre;
        for (std::size_t s = 0; s < outputs; ++s) {
          mor::AnalyticResponse response(node.pre * node.model.dc[s]);
          if (node.ramp > 0.0)
            response.add_ramp(node.model.transfer[s], delta, node.ramp,
                              t_fire);
          else
            response.add_step(node.model.transfer[s], delta, t_fire);
          const double lo = node.pre * node.model.dc[s];
          const double hi = response.final_value();
          const int direction = hi > lo ? +1 : -1;
          const auto crossing =
              response.first_crossing(0.5 * (lo + hi), direction);
          if (!crossing)
            throw std::runtime_error(
                "TimingGraph: node " + std::to_string(k) + " output " +
                node.model.outputs[s] +
                " never crossed 50% within the (auto-extended) window");
          metrics.arrival[s] = *crossing;
          const mor::ResponseMetrics measured =
              response.measure(lo, hi, /*want_rise=*/true);
          metrics.slew[s] = measured.rise_10_90;
          metrics.peak_noise =
              std::max(metrics.peak_noise, measured.peak_noise);
        }
      }
    });
  }

  for (std::size_t c = 0; c < chains_.size(); ++c) {
    const ChainRecord& chain = chains_[c];
    const std::size_t last = static_cast<std::size_t>(
        chain.first_node + chain.spec.sections - 1);
    out.chains[c] = scratch[last].metrics;
  }
  return out;
}

}  // namespace rlcsim::graph
