#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace rlcsim::obs {
namespace {

struct TraceState {
  std::mutex mutex;
  std::string path;
  bool active = false;
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState s;
  return s;
}

// Fast-path flag so spans outside an active trace cost one relaxed load.
std::atomic<bool> g_trace_on{false};

// Nanoseconds since the process trace epoch (pinned at first use, which
// begin_trace forces so every event in a trace shares one origin).
std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void maybe_start_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const auto path = trace_path_from_env();
    if (path) begin_trace(*path);
  });
}

// Prints a ns quantity as microseconds with exact .3 fraction — integer
// arithmetic only, so the JSON round-trips the nanosecond losslessly.
void print_us(std::FILE* f, std::uint64_t ns) {
  std::fprintf(f, "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
               static_cast<unsigned long long>(ns % 1000));
}

}  // namespace

std::optional<std::string> trace_path_from_env() {
  const char* raw = std::getenv("RLCSIM_TRACE");
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  return std::string(raw);
}

bool trace_active() {
  maybe_start_from_env();
  return g_trace_on.load(std::memory_order_acquire);
}

void begin_trace(const std::string& path) {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active)
    throw std::logic_error(
        "obs::begin_trace: a trace is already active (writing to \"" +
        s.path + "\")");
  // Probe the path NOW: a typo'd RLCSIM_TRACE must fail loudly at startup,
  // not lose the whole trace at exit.
  std::FILE* probe = std::fopen(path.c_str(), "w");
  if (probe == nullptr)
    throw std::invalid_argument(
        "RLCSIM_TRACE: cannot open trace output path \"" + path + "\"");
  std::fclose(probe);
  (void)now_ns();  // pin the epoch before any span starts
  s.path = path;
  s.active = true;
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { end_trace(); });
  }
  g_trace_on.store(true, std::memory_order_release);
}

void end_trace() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.active) return;
  g_trace_on.store(false, std::memory_order_release);
  s.active = false;

  auto events = drain_trace_events();
  // Perfetto groups by tid and expects a parent's "X" event before its
  // children; (tid, start asc, dur desc) puts enclosing spans first.
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    if (a.second.start_ns != b.second.start_ns)
      return a.second.start_ns < b.second.start_ns;
    return a.second.dur_ns > b.second.dur_ns;
  });

  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (f == nullptr) return;  // probed at begin; exit paths must not throw
  std::fprintf(f, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
  bool first = true;
  for (const auto& [tid, event] : events) {
    if (!first) std::fprintf(f, ",\n");
    first = false;
    std::fprintf(f, "{\"name\":\"%s\",\"cat\":\"rlcsim\",\"ph\":\"X\",\"ts\":",
                 event.name);
    print_us(f, event.start_ns);
    std::fprintf(f, ",\"dur\":");
    print_us(f, event.dur_ns);
    std::fprintf(f, ",\"pid\":1,\"tid\":%llu",
                 static_cast<unsigned long long>(tid));
    if (event.arg != kSpanNoArg)
      std::fprintf(f, ",\"args\":{\"n\":%ld}", event.arg);
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

ScopedSpan::ScopedSpan(const char* name, long arg) : name_(name), arg_(arg) {
  tracing_ = trace_active();
  timing_ = tracing_ || metrics_enabled();
  if (timing_) start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!timing_) return;
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t dur_ns = end_ns > start_ns_ ? end_ns - start_ns_ : 0;
  if (tracing_ && g_trace_on.load(std::memory_order_acquire))
    append_trace_event(TraceEvent{name_, start_ns_, dur_ns, arg_});
  record_span_seconds(name_, static_cast<double>(dur_ns) * 1e-9);
}

}  // namespace rlcsim::obs
