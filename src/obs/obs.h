// Umbrella header for the observability subsystem: counters/histograms
// (obs/metrics.h) plus spans/tracing/Stopwatch (obs/trace.h). Library code
// instruments through this single include.
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"
