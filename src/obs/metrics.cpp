#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "runtime/env.h"

namespace rlcsim::obs {
namespace {

// Per-histogram shard cells. Owner-thread-only writers, so the CAS loops
// for the double fields succeed on the first try; relaxed ordering is
// enough because aggregation tolerates (and documents) in-flight slack.
struct HistogramCells {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<double> sum{0.0};
  std::atomic<double> min{std::numeric_limits<double>::infinity()};
  std::atomic<double> max{-std::numeric_limits<double>::infinity()};
};

struct Shard {
  std::size_t index = 0;  // stable thread id for trace export
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<HistogramCells, kMaxHistograms> histograms{};
  // Trace-event buffer (obs/trace.cpp). Guarded by a mutex rather than
  // being lock-free: span recording only happens when a trace is active,
  // and only this thread appends — the lock exists for the drain.
  std::mutex event_mutex;
  std::vector<TraceEvent> events;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, std::size_t> counter_ids;
  std::vector<std::string> counter_names;  // id -> name
  std::map<std::string, std::size_t> histogram_ids;
  std::vector<std::string> histogram_names;
  // Shards are created on a thread's first metric touch and owned here for
  // the process lifetime — a retired thread's totals stay aggregatable,
  // and cell addresses never move (no growth races on the cells).
  std::vector<std::unique_ptr<Shard>> shards;
};

Registry& registry() {
  // Intentionally leaked (never destroyed): the registry must outlive BOTH
  // the atexit-registered end_trace() flush (which may be registered before
  // this object is first constructed, hence would otherwise run after its
  // destructor) and any instrumented code running during static teardown.
  // Still reachable through this static pointer, so leak checkers are
  // quiet; process exit reclaims it.
  static Registry* reg = new Registry;
  return *reg;
}

// The one sanctioned thread_local in the tree outside runtime/thread_pool:
// the whole point of per-thread shards is that the hot-path write needs a
// pointer to THIS thread's cells without taking a lock. Raw pointer (no
// destructor) into registry-owned storage, so thread exit is a no-op.
thread_local Shard* tls_shard = nullptr;  // rlcsim-lint: allow(thread-local)

Shard& this_shard() {
  if (tls_shard == nullptr) {
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.shards.push_back(std::make_unique<Shard>());
    reg.shards.back()->index = reg.shards.size() - 1;
    tls_shard = reg.shards.back().get();
  }
  return *tls_shard;
}

std::size_t register_name(std::map<std::string, std::size_t>& ids,
                          std::vector<std::string>& names, const char* name,
                          std::size_t capacity, const char* kind) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto found = ids.find(name);
  if (found != ids.end()) return found->second;
  if (names.size() >= capacity)
    throw std::runtime_error(std::string("obs: ") + kind +
                             " registry full registering \"" + name +
                             "\" — raise the capacity constant");
  const std::size_t id = names.size();
  names.emplace_back(name);
  ids.emplace(name, id);
  return id;
}

void atomic_add_double(std::atomic<double>& cell, double delta) {
  double current = cell.load(std::memory_order_relaxed);
  while (!cell.compare_exchange_weak(current, current + delta,
                                     std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& cell, double value) {
  double current = cell.load(std::memory_order_relaxed);
  while (value < current && !cell.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& cell, double value) {
  double current = cell.load(std::memory_order_relaxed);
  while (value > current && !cell.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- env knobs

bool parse_metrics_env() {
  const auto parsed = runtime::parse_env_enum("RLCSIM_METRICS",
                                              {{"0", 0}, {"1", 1}}, "0 or 1");
  return parsed.value_or(1) == 1;
}

bool metrics_enabled() {
  static const bool enabled = parse_metrics_env();
  return enabled;
}

// ------------------------------------------------------------ histogram math

std::size_t histogram_bucket_of(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN
  int exponent = 0;
  (void)std::frexp(value, &exponent);  // value = m * 2^exponent, m in [0.5, 1)
  const long bucket = static_cast<long>(exponent) + 31;
  if (bucket < 1) return 0;
  if (bucket > static_cast<long>(kHistogramBuckets) - 1)
    return kHistogramBuckets - 1;
  return static_cast<std::size_t>(bucket);
}

double histogram_bucket_upper_bound(std::size_t bucket) {
  return std::ldexp(1.0, static_cast<int>(bucket) - 31);
}

double histogram_bucket_lower_bound(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 32);
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  double rank = std::ceil(p / 100.0 * static_cast<double>(count));
  if (rank < 1.0) rank = 1.0;
  if (rank > static_cast<double>(count)) rank = static_cast<double>(count);
  std::uint64_t before = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(before + in_bucket) >= rank) {
      // Bucket 0 (zero/negative/underflow) has no logarithmic width to
      // interpolate across; the exact observed minimum is the honest answer.
      if (b == 0) return min;
      // Geometric interpolation: the rank sits a fraction f through this
      // bucket's occupants, so report lower * 2^f — the log-uniform
      // position inside [2^(b-32), 2^(b-31)). Clamping to the exact
      // observed extrema makes p100 report max (not the bucket bound, up
      // to 2x above it) and keeps p0 at or above min.
      const double fraction = (rank - static_cast<double>(before)) /
                              static_cast<double>(in_bucket);
      double value = histogram_bucket_lower_bound(b) * std::pow(2.0, fraction);
      if (value < min) value = min;
      if (value > max) value = max;
      return value;
    }
    before += in_bucket;
  }
  return max;
}

// ------------------------------------------------------------------ Counter

Counter::Counter(const char* name)
    : id_(register_name(registry().counter_ids, registry().counter_names, name,
                        kMaxCounters, "counter")) {}

void Counter::add(std::uint64_t n) const {
  if (!metrics_enabled()) return;
  add_always(n);
}

void Counter::add_always(std::uint64_t n) const {
  this_shard().counters[id_].fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t Counter::this_thread_value() const {
  return this_shard().counters[id_].load(std::memory_order_relaxed);
}

void Counter::this_thread_store(std::uint64_t value) const {
  this_shard().counters[id_].store(value, std::memory_order_relaxed);
}

std::uint64_t Counter::total() const {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t sum = 0;
  for (const auto& shard : reg.shards)
    sum += shard->counters[id_].load(std::memory_order_relaxed);
  return sum;
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(const char* name)
    : id_(register_name(registry().histogram_ids, registry().histogram_names,
                        name, kMaxHistograms, "histogram")) {}

void Histogram::record(double value) const {
  if (!metrics_enabled()) return;
  HistogramCells& cells = this_shard().histograms[id_];
  cells.buckets[histogram_bucket_of(value)].fetch_add(
      1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(cells.sum, value);
  atomic_min_double(cells.min, value);
  atomic_max_double(cells.max, value);
}

namespace {

HistogramSnapshot merge_histogram_locked(const Registry& reg, std::size_t id) {
  HistogramSnapshot out;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& shard : reg.shards) {
    const HistogramCells& cells = shard->histograms[id];
    const std::uint64_t count = cells.count.load(std::memory_order_relaxed);
    if (count == 0) continue;
    out.count += count;
    out.sum += cells.sum.load(std::memory_order_relaxed);
    const double shard_min = cells.min.load(std::memory_order_relaxed);
    const double shard_max = cells.max.load(std::memory_order_relaxed);
    if (shard_min < lo) lo = shard_min;
    if (shard_max > hi) hi = shard_max;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      out.buckets[b] += cells.buckets[b].load(std::memory_order_relaxed);
  }
  if (out.count > 0) {
    out.min = lo;
    out.max = hi;
  }
  return out;
}

}  // namespace

HistogramSnapshot Histogram::total() const {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return merge_histogram_locked(reg, id_);
}

// -------------------------------------------------------------- aggregation

MetricsSnapshot snapshot() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  MetricsSnapshot out;
  for (const auto& [name, id] : reg.counter_ids) {
    std::uint64_t sum = 0;
    for (const auto& shard : reg.shards)
      sum += shard->counters[id].load(std::memory_order_relaxed);
    out.counters.emplace(name, sum);
  }
  for (const auto& [name, id] : reg.histogram_ids)
    out.histograms.emplace(name, merge_histogram_locked(reg, id));
  return out;
}

std::optional<std::uint64_t> counter_total(const std::string& name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto found = reg.counter_ids.find(name);
  if (found == reg.counter_ids.end()) return std::nullopt;
  std::uint64_t sum = 0;
  for (const auto& shard : reg.shards)
    sum += shard->counters[found->second].load(std::memory_order_relaxed);
  return sum;
}

std::optional<HistogramSnapshot> histogram_total(const std::string& name) {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  const auto found = reg.histogram_ids.find(name);
  if (found == reg.histogram_ids.end()) return std::nullopt;
  return merge_histogram_locked(reg, found->second);
}

std::string metrics_json(int indent) {
  const MetricsSnapshot snap = snapshot();
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    char line[160];
    std::snprintf(line, sizeof line, "%s    \"%s\": %llu", pad.c_str(),
                  name.c_str(), static_cast<unsigned long long>(value));
    out += line;
  }
  out += first ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    char line[320];
    std::snprintf(line, sizeof line,
                  "%s    \"%s\": {\"count\": %llu, \"sum\": %.9g, "
                  "\"min\": %.9g, \"max\": %.9g, \"p50\": %.9g, "
                  "\"p99\": %.9g}",
                  pad.c_str(), name.c_str(),
                  static_cast<unsigned long long>(hist.count), hist.sum,
                  hist.min, hist.max, hist.percentile(50.0),
                  hist.percentile(99.0));
    out += line;
  }
  out += first ? "}\n" : "\n" + pad + "  }\n";
  out += pad + "}";
  return out;
}

void reset_all_for_test() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& shard : reg.shards) {
    for (auto& cell : shard->counters)
      cell.store(0, std::memory_order_relaxed);
    for (auto& hist : shard->histograms) {
      for (auto& bucket : hist.buckets)
        bucket.store(0, std::memory_order_relaxed);
      hist.count.store(0, std::memory_order_relaxed);
      hist.sum.store(0.0, std::memory_order_relaxed);
      hist.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
      hist.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    }
  }
}

// ---------------------------------------------------- trace-event shard hooks

void append_trace_event(const TraceEvent& event) {
  Shard& shard = this_shard();
  const std::lock_guard<std::mutex> lock(shard.event_mutex);
  shard.events.push_back(event);
}

std::vector<std::pair<std::size_t, TraceEvent>> drain_trace_events() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  std::vector<std::pair<std::size_t, TraceEvent>> out;
  for (const auto& shard : reg.shards) {
    const std::lock_guard<std::mutex> shard_lock(shard->event_mutex);
    for (const TraceEvent& event : shard->events)
      out.emplace_back(shard->index, event);
    shard->events.clear();
  }
  return out;
}

void record_span_seconds(const char* name, double seconds) {
  if (!metrics_enabled()) return;
  Registry& reg = registry();
  std::size_t id = 0;
  {
    // Span names are string literals arriving repeatedly; resolve through
    // the registry map (register on first sight) rather than keeping a
    // static per call site — ScopedSpan is a function, not a macro body.
    const std::string key = std::string("span.") + name;
    id = register_name(reg.histogram_ids, reg.histogram_names, key.c_str(),
                       kMaxHistograms, "histogram");
  }
  HistogramCells& cells = this_shard().histograms[id];
  cells.buckets[histogram_bucket_of(seconds)].fetch_add(
      1, std::memory_order_relaxed);
  cells.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(cells.sum, seconds);
  atomic_min_double(cells.min, seconds);
  atomic_max_double(cells.max, seconds);
}

}  // namespace rlcsim::obs
