// Process-wide observability metrics registry.
//
// One instrumentation layer for every engine in the stack: named counters
// and histograms registered by string name, stored in PER-THREAD shards
// (one cache-friendly block of relaxed atomics per thread, created on the
// thread's first touch and owned by the registry forever), aggregated only
// when somebody asks for a snapshot. Writes never take a lock and never
// contend — each thread touches only its own shard — so instrumenting a
// hot path costs a thread-local lookup plus one relaxed atomic add.
//
// Determinism contract (the reason this subsystem exists at all, see
// README "Determinism contract"): telemetry is WRITE-ONLY from compute's
// perspective. Nothing in src/ outside src/obs/ may branch on a metric
// value or on a clock; the registry records what happened, it never
// steers what happens next. That is why tracing/metrics can be toggled
// freely while every memcmp bit-identity gate keeps passing — and CI
// re-runs those gates with telemetry ON to prove it.
//
// Env knobs (runtime::parse_env_* junk-throws contract):
//   RLCSIM_METRICS=0|1  gates the OBS_* macro instrumentation and span
//                       duration histograms (default 1; junk throws).
//                       Load-bearing legacy counters (sparse_lu_stats())
//                       stay live either way — they feed SweepResult /
//                       AcSweepInfo metadata that tests pin.
//   RLCSIM_TRACE=<path> enables Chrome-trace span recording (obs/trace.h).
//
// Compile-time kill switch: defining RLCSIM_OBS_DISABLE (CMake
// -DRLCSIM_OBS=OFF) expands every OBS_* macro to nothing — true
// zero-overhead no-ops, not runtime branches.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace rlcsim::obs {

// Registry capacity. Fixed so shard cell addresses are stable for the
// process lifetime (no growth, no reallocation races); registering beyond
// these throws std::runtime_error — raise the constant, don't shard names.
inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxHistograms = 64;
inline constexpr std::size_t kHistogramBuckets = 64;

// ------------------------------------------------------------- env knobs

// Re-reads RLCSIM_METRICS on every call (pure; for tests). Unset or empty
// means enabled; "0"/"1" select; anything else throws std::invalid_argument
// naming the variable and the value.
bool parse_metrics_env();

// Cached once per process: the value parse_metrics_env() returned at first
// use. The OBS_* macros check this — one static read, no env traffic.
bool metrics_enabled();

// --------------------------------------------------------- histogram math

// Power-of-two bucketing: bucket b >= 1 covers [2^(b-32), 2^(b-31)), so
// bucket 32 is [1, 2); bucket 0 collects zero/negative/underflow (< 2^-31)
// and NaN; overflow clamps to bucket 63. Coarse by design — the point is a
// deterministic, allocation-free shape with hand-computable percentiles,
// not a research-grade sketch.
std::size_t histogram_bucket_of(double value);
// The EXCLUSIVE upper bound 2^(bucket-31) of a bucket.
double histogram_bucket_upper_bound(std::size_t bucket);
// The INCLUSIVE lower bound 2^(bucket-32) of a bucket; 0 for bucket 0
// (which collects zero/negative/underflow/NaN and has no log width).
double histogram_bucket_lower_bound(std::size_t bucket);

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // exact observed extrema (0 when count == 0)
  double max = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  // Log-interpolated percentile estimate, p in [0, 100]: locates the bucket
  // holding rank ceil(p/100 * count) (clamped to [1, count]), interpolates
  // geometrically across the bucket's [2^(b-32), 2^(b-31)) span by the
  // rank's position within it, and clamps to the exact observed [min, max].
  // Returning the raw bucket upper bound — the pre-PR-10 behavior — could
  // overstate a percentile by almost 2x at this bucket width, which would
  // poison any tolerance window compared against it (tools/perfkit). Rank
  // within bucket 0 (zero/negative/underflow) reports the exact min; an
  // empty histogram reports 0.
  double percentile(double p) const;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;
};

// ---------------------------------------------------------------- handles

// Cheap copyable handle; construction registers (or resolves) the name.
// Intended use is one `static const Counter` per call site — the OBS_*
// macros below do exactly that.
class Counter {
 public:
  explicit Counter(const char* name);

  // Gated by metrics_enabled(): the general instrumentation entry point.
  void add(std::uint64_t n = 1) const;
  // UNgated: for the load-bearing legacy counters (sparse_lu_stats()) whose
  // values feed result METADATA that tests and benches pin. Still
  // write-only telemetry — compute never branches on them.
  void add_always(std::uint64_t n = 1) const;

  // This thread's shard cell (the per-thread view sparse_lu_stats() keeps).
  std::uint64_t this_thread_value() const;
  void this_thread_store(std::uint64_t value) const;

  // Aggregated over every shard (live and retired threads).
  std::uint64_t total() const;

 private:
  std::size_t id_;
};

class Histogram {
 public:
  explicit Histogram(const char* name);
  void record(double value) const;  // gated by metrics_enabled()
  HistogramSnapshot total() const;  // aggregated over every shard

 private:
  std::size_t id_;
};

// ------------------------------------------------------------- aggregation

// Aggregates every registered metric across all shards, names sorted.
MetricsSnapshot snapshot();

// Name-keyed single-metric aggregation (what external consumers — tests,
// tools/perfkit, the future resident service — need without paying for a
// full snapshot or holding a handle). std::nullopt = name never registered;
// a registered-but-untouched metric reports zeros, matching snapshot().
std::optional<std::uint64_t> counter_total(const std::string& name);
std::optional<HistogramSnapshot> histogram_total(const std::string& name);

// The unified `"metrics": {...}` JSON object every BENCH_*.json embeds:
// {"counters": {...}, "histograms": {name: {count,sum,min,max,p50,p99}}}.
// `indent` is the column of the opening brace's line (continuation lines
// indent relative to it).
std::string metrics_json(int indent = 2);

// Zeroes every cell in every shard (counters, histograms). Test isolation
// only — production code never resets (and never reads, see above).
void reset_all_for_test();

// ------------------------------------------------- trace-event shard hooks
// Span events buffer in the same per-thread shards (obs/trace.h uses these;
// they are not part of the instrumentation API).

inline constexpr long kSpanNoArg = std::numeric_limits<long>::min();

struct TraceEvent {
  const char* name;        // string literal (OBS_SPAN contract)
  std::uint64_t start_ns;  // since the process trace epoch
  std::uint64_t dur_ns;
  long arg;                // kSpanNoArg = none
};

void append_trace_event(const TraceEvent& event);
// Drains every shard's buffered events; .first is the shard (thread) index.
std::vector<std::pair<std::size_t, TraceEvent>> drain_trace_events();
// Records a completed span's duration into histogram "span.<name>".
void record_span_seconds(const char* name, double seconds);

// ------------------------------------------------------------------ macros

#if defined(RLCSIM_OBS_DISABLE)
#define OBS_COUNTER_ADD(name, n) ((void)0)
#define OBS_HISTOGRAM_RECORD(name, value) ((void)0)
#else
// One static handle per call site: registration cost is paid once, the hot
// path is a gate check + thread-local shard lookup + relaxed atomic add.
#define OBS_COUNTER_ADD(name, n)                                    \
  do {                                                              \
    static const ::rlcsim::obs::Counter obs_counter_handle_(name);  \
    obs_counter_handle_.add(static_cast<std::uint64_t>(n));         \
  } while (0)
#define OBS_HISTOGRAM_RECORD(name, value)                              \
  do {                                                                 \
    static const ::rlcsim::obs::Histogram obs_histogram_handle_(name); \
    obs_histogram_handle_.record(static_cast<double>(value));          \
  } while (0)
#endif

}  // namespace rlcsim::obs
