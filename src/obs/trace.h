// Scoped spans and Chrome trace-event export.
//
// OBS_SPAN("sweep.point") opens an RAII span: when a trace is active
// (RLCSIM_TRACE=<path> or an explicit begin_trace call) the span buffers a
// Chrome trace-event into this thread's shard, and when metrics are
// enabled its duration also lands in histogram "span.<name>". With neither
// active a span is a pair of cheap atomic-flag checks; with
// RLCSIM_OBS_DISABLE defined it compiles away entirely.
//
// The output is the Chrome trace-event JSON format ("X" complete events,
// microsecond timestamps): load it at https://ui.perfetto.dev or
// chrome://tracing. tid is the obs shard index (stable per thread), pid 1.
//
// Span naming convention: dot-separated subsystem.operation, lowercase —
// "sweep.run", "sweep.point", "transient.run", "graph.evaluate",
// "graph.level", "mor.arnoldi_reduce". A span's optional integer arg
// (e.g. the graph level index) exports as args.n.
//
// Determinism: spans READ the clock but nothing outside src/obs/ ever
// does, and no compute branches on anything recorded here — the lint
// wallclock-scope rule enforces the boundary (see obs/metrics.h).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "obs/metrics.h"

namespace rlcsim::obs {

// The ONLY sanctioned way for library code outside src/obs/ to measure
// elapsed wall time (for result METADATA like SweepResult::elapsed_seconds
// — never for control flow). Monotonic; trivially copyable.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Re-reads RLCSIM_TRACE on every call (pure; for tests). Unset or empty
// means "no trace"; any other value is the output path.
std::optional<std::string> trace_path_from_env();

// True while a trace is collecting. First call consults RLCSIM_TRACE once
// per process (lazy auto-start; a bad path throws std::invalid_argument
// naming the variable and the path, per the env junk-throws contract).
bool trace_active();

// Starts collecting span events, to be written to `path` by end_trace().
// The path is probed immediately — an unwritable path throws
// std::invalid_argument up front, not after the run. Throws
// std::logic_error if a trace is already active.
void begin_trace(const std::string& path);

// Drains all buffered events, writes the Chrome trace JSON, and
// deactivates tracing. No-op when no trace is active. Also registered
// atexit by begin_trace, so RLCSIM_TRACE runs flush on normal exit.
void end_trace();

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, long arg = kSpanNoArg);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  long arg_;
  std::uint64_t start_ns_ = 0;
  bool timing_ = false;   // either sink wants the duration
  bool tracing_ = false;  // trace was active at open
};

#if defined(RLCSIM_OBS_DISABLE)
#define OBS_SPAN(...) ((void)0)
#else
#define OBS_SPAN_CONCAT_IMPL(a, b) a##b
#define OBS_SPAN_CONCAT(a, b) OBS_SPAN_CONCAT_IMPL(a, b)
#define OBS_SPAN(...) \
  const ::rlcsim::obs::ScopedSpan OBS_SPAN_CONCAT(obs_span_, __LINE__)(__VA_ARGS__)
#endif

}  // namespace rlcsim::obs
