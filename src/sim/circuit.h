// Circuit netlist data model for the MNA transient simulator.
//
// This is the AS/X substitute: linear R/L/C elements, independent sources,
// and a behavioral repeater ("buffer") element that switches its output
// driver when its input crosses a threshold — exactly the linearized CMOS
// gate model the paper uses (output resistance Rtr = R0/h, input capacitance
// CL = h C0, step-like switching).
//
// Nodes are referred to by name; "0" and "gnd" are ground. The Circuit owns
// the name <-> index mapping; elements store indices.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace rlcsim::sim {

using NodeId = int;
inline constexpr NodeId kGround = -1;

// ---------------------------------------------------------------- sources

struct DcSpec {
  double value = 0.0;
};

// v0 -> v1 at t = delay, with an optional linear ramp of `rise` seconds.
struct StepSpec {
  double v0 = 0.0;
  double v1 = 1.0;
  double delay = 0.0;
  double rise = 0.0;
};

// Piecewise-linear waveform; points must have strictly increasing times.
struct PwlSpec {
  std::vector<std::pair<double, double>> points;
};

// SPICE PULSE(v0 v1 td tr tf pw period). period == 0 means single pulse.
struct PulseSpec {
  double v0 = 0.0;
  double v1 = 1.0;
  double delay = 0.0;
  double rise = 1e-12;
  double fall = 1e-12;
  double width = 1e-9;
  double period = 0.0;
};

using SourceSpec = std::variant<DcSpec, StepSpec, PwlSpec, PulseSpec>;

// Source value at time t.
double source_value(const SourceSpec& spec, double t);

// ---------------------------------------------------------------- elements

struct Resistor {
  NodeId n1 = kGround;
  NodeId n2 = kGround;
  double resistance = 0.0;
  std::string name;
};

struct Capacitor {
  NodeId n1 = kGround;
  NodeId n2 = kGround;
  double capacitance = 0.0;
  double initial_voltage = 0.0;
  std::string name;
};

struct Inductor {
  NodeId n1 = kGround;  // current flows n1 -> n2 through the inductor
  NodeId n2 = kGround;
  double inductance = 0.0;
  double initial_current = 0.0;
  std::string name;
};

struct VoltageSource {
  NodeId positive = kGround;
  NodeId negative = kGround;
  SourceSpec spec;
  std::string name;
};

struct CurrentSource {  // current flows from `from` node to `to` node
  NodeId from = kGround;
  NodeId to = kGround;
  SourceSpec spec;
  std::string name;
};

// Mutual inductive coupling between two inductors (SPICE 'K' element),
// stored by inductor index with the mutual inductance M = k sqrt(L1 L2)
// precomputed.
struct MutualCoupling {
  std::size_t inductor_a = 0;
  std::size_t inductor_b = 0;
  double coupling = 0.0;  // k in [0, 1)
  double mutual = 0.0;    // M, henries
  std::string name;
};

// Behavioral repeater: threshold buffer.
//   input node:  loads the net with `input_capacitance` to ground;
//   output:      a source behind `output_resistance` that switches from
//                `output_v0` to `output_v1` (over a linear `output_rise`
//                ramp, 0 = ideal step) at the moment the input first crosses
//                `threshold * vdd` in `input_direction`.
// The default edge fields reproduce the classic non-inverting buffer (fires
// on a rising crossing, output steps 0 -> vdd); add_switching_buffer() sets
// them for falling chains and inverting (polarity-interleaved) repeaters.
// The transient engine locates the crossing with step bisection, so the fire
// time is resolved well below the time step.
struct Buffer {
  NodeId input = kGround;
  NodeId output = kGround;
  double output_resistance = 0.0;
  double input_capacitance = 0.0;
  double vdd = 1.0;
  double threshold = 0.5;  // fraction of vdd
  std::string name;
  // Edge behavior (defaults = the classic non-inverting rising buffer).
  int input_direction = +1;   // +1: fires on a rising input crossing; -1: falling
  double output_v0 = 0.0;     // output drive level before the fire instant
  double output_v1 = 1.0;     // ... after it (ramped over output_rise)
  double output_rise = 0.0;   // linear output edge duration, s (0 = ideal step)
};

// ---------------------------------------------------------------- circuit

class Circuit {
 public:
  // Returns the node id for `name`, creating it on first use. "0" and "gnd"
  // (any case) return kGround.
  NodeId node(const std::string& name);
  // Lookup without creating; std::nullopt if the name is unknown.
  std::optional<NodeId> find_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  std::size_t node_count() const { return node_names_.size(); }

  void add_resistor(const std::string& n1, const std::string& n2, double r,
                    std::string name = {});
  void add_capacitor(const std::string& n1, const std::string& n2, double c,
                     double initial_voltage = 0.0, std::string name = {});
  // add_capacitor that also admits c == 0: a STRUCTURAL capacitor occupies
  // its MNA slots (so topologically identical circuits whose coupling values
  // include 0 share one sparsity pattern) while contributing nothing
  // numerically — every companion-model term is proportional to c.
  void add_structural_capacitor(const std::string& n1, const std::string& n2,
                                double c, double initial_voltage = 0.0,
                                std::string name = {});
  void add_inductor(const std::string& n1, const std::string& n2, double l,
                    double initial_current = 0.0, std::string name = {});
  void add_voltage_source(const std::string& positive, const std::string& negative,
                          SourceSpec spec, std::string name = {});
  void add_current_source(const std::string& from, const std::string& to,
                          SourceSpec spec, std::string name = {});
  // Replaces the spec of an already-added voltage source (element index, the
  // order of voltage_sources()). The drive-override seam: analyses build a
  // canonical testbench, then swap in richer per-line drives (multi-segment
  // PWL, pulses) the builder's drive tables cannot express. Topology and
  // sparsity pattern are untouched. Throws std::out_of_range on a bad index.
  void set_voltage_source_spec(std::size_t index, SourceSpec spec);
  void add_buffer(const std::string& input, const std::string& output,
                  double output_resistance, double input_capacitance, double vdd = 1.0,
                  double threshold = 0.5, std::string name = {});
  // Buffer with an explicit edge: fires on `input_direction` (+1 rising, -1
  // falling) crossings of threshold*vdd, output transitions output_v0 ->
  // output_v1 over a linear `output_rise` ramp (0 = ideal step). Covers
  // falling repeater chains and inverting (polarity-interleaved) repeaters;
  // add_buffer() is the (+1, 0, vdd, step) special case.
  void add_switching_buffer(const std::string& input, const std::string& output,
                            double output_resistance, double input_capacitance,
                            int input_direction, double output_v0, double output_v1,
                            double output_rise = 0.0, double vdd = 1.0,
                            double threshold = 0.5, std::string name = {});
  // Couples two previously added inductors (referenced by their element
  // names) with coefficient k in [0, 1). Throws std::invalid_argument for
  // unknown inductor names, self-coupling, or k outside [0, 1).
  void add_mutual(const std::string& inductor_a, const std::string& inductor_b,
                  double k, std::string name = {});

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Inductor>& inductors() const { return inductors_; }
  const std::vector<VoltageSource>& voltage_sources() const { return vsources_; }
  const std::vector<CurrentSource>& current_sources() const { return isources_; }
  const std::vector<Buffer>& buffers() const { return buffers_; }
  const std::vector<MutualCoupling>& mutuals() const { return mutuals_; }

  // Structural sanity checks; throws std::invalid_argument with a precise
  // message on: nonpositive R/C/L values, sources shorted to themselves,
  // nodes with no DC path to ground (floating via capacitors only is
  // reported), and empty circuits.
  void validate() const;

 private:
  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Inductor> inductors_;
  std::vector<VoltageSource> vsources_;
  std::vector<CurrentSource> isources_;
  std::vector<Buffer> buffers_;
  std::vector<MutualCoupling> mutuals_;
};

}  // namespace rlcsim::sim
