// Transient analysis engine.
//
// Fixed-step implicit integration (trapezoidal by default) with SPICE-style
// breakpoint handling: the step grid always lands exactly on source
// discontinuities and buffer switching instants, and the first step(s) after
// each discontinuity use backward Euler to damp the trapezoidal rule's
// spurious oscillation on jumps.
//
// Buffer events are located by step rejection: when a buffer's input crosses
// its threshold inside a step, the step is re-taken so it ends exactly at the
// (interpolated) crossing time, the buffer is marked fired there, and
// integration restarts from that breakpoint.
//
// Solver policy: the assembled MNA system is G + (factor/dt)*C over one
// fixed sparsity pattern (see sim/mna.h). Below kSparseSolverThreshold
// unknowns the dense LU wins on constant factors and doubles as the
// correctness oracle; at or above it the engine switches to the sparse LU,
// whose symbolic factorization is computed once per run and shared by every
// (dt, integrator) numeric factorization. Step sizes are quantized onto a
// min_dt_fraction grid before keying the LU cache, so breakpoint-clipped dt
// values that differ only by ulps reuse one factorization instead of
// triggering spurious refactorizations.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "numeric/sparse.h"
#include "sim/circuit.h"
#include "sim/mna.h"
#include "sim/waveform.h"

namespace rlcsim::sim {

// Cross-run sparse-solver state for sweeps: the sparsity patterns and
// symbolic factorizations of a previous run over a topologically identical
// circuit. A sweep evaluates thousands of circuits that differ only in
// element VALUES; handing the same SolverReuse to every run on a thread
// means the first run pays the symbolic analyses (system + DC) and every
// later run does numeric-only refactorization along the recorded pivot
// order. A run whose circuit has a structurally different pattern runs
// WITHOUT reuse and leaves the recorded state untouched (so which circuit a
// worker saw first can never change pivot orders) — reuse is an
// optimization, never a correctness constraint.
//
// The donors are only ever copied from (SparseLu copy + refactor), so one
// SolverReuse may be shared READ-ONLY by concurrent runs as long as no run
// encounters a mismatching pattern; the sweep engine gives each worker its
// own instance seeded from one reference run to keep results bit-identical
// at any thread count.
struct SolverReuse {
  numeric::SparsePatternPtr system_pattern;
  std::shared_ptr<const numeric::RealSparseLu> system_symbolic;
  numeric::SparsePatternPtr dc_pattern;
  std::shared_ptr<const numeric::RealSparseLu> dc_symbolic;
  std::size_t reuse_hits = 0;  // runs that reused a recorded symbolic
};

struct TransientOptions {
  double t_stop = 0.0;      // required, > 0
  double dt = 0.0;          // 0 -> t_stop / 4000
  Integrator integrator = Integrator::kTrapezoidal;
  int be_steps_after_breakpoint = 2;  // BE steps before switching back to trap
  double dc_gmin = 1e-12;
  // Guard: reject pathological event cascades (step shrinking forever).
  // Also the LU-cache quantization grid: dt is snapped to multiples of
  // min_dt_fraction * dt before factorizing.
  double min_dt_fraction = 1e-9;  // min event step as a fraction of dt
  SolverKind solver = SolverKind::kAuto;
  // Optional cross-run symbolic-factorization reuse (sweep hot path). The
  // pointee must outlive the run; it is read and updated in place. Ignored
  // on the dense solver path.
  SolverReuse* reuse = nullptr;
};

struct TransientResult {
  WaveformSet waveforms;
  std::vector<double> buffer_fire_times;  // +inf where a buffer never fired
  std::size_t steps_taken = 0;
  std::size_t lu_factorizations = 0;  // numeric factorizations (cache misses)
  bool used_sparse_solver = false;
};

// Runs a transient analysis. Throws std::invalid_argument for bad options
// and std::runtime_error if the MNA matrix is singular.
TransientResult run_transient(const Circuit& circuit, const TransientOptions& options);

// DC operating point: node voltages (and branch currents) with capacitors
// open and inductors shorted, sources evaluated at t = 0. Uses the same
// size-based dense/sparse solver policy as run_transient.
std::vector<double> dc_operating_point(const Circuit& circuit, double gmin = 1e-12);

// Source discontinuity times within [0, t_stop]: step corners, PWL points,
// and every pulse edge of every cycle whose start lies in the window
// (bounded by t_stop/period). Throws std::invalid_argument for pulse trains
// of more than 1e6 cycles — no transient could land on that many edges, so
// such a spec is an error rather than something to truncate silently.
// Exposed for testing.
void collect_source_breakpoints(const SourceSpec& spec, double t_stop,
                                std::set<double>& out);

}  // namespace rlcsim::sim
