// Transient analysis engine.
//
// Fixed-step implicit integration (trapezoidal by default) with SPICE-style
// breakpoint handling: the step grid always lands exactly on source
// discontinuities and buffer switching instants, and the first step(s) after
// each discontinuity use backward Euler to damp the trapezoidal rule's
// spurious oscillation on jumps.
//
// Buffer events are located by step rejection: when a buffer's input crosses
// its threshold inside a step, the step is re-taken so it ends exactly at the
// (interpolated) crossing time, the buffer is marked fired there, and
// integration restarts from that breakpoint.
#pragma once

#include <vector>

#include "sim/circuit.h"
#include "sim/mna.h"
#include "sim/waveform.h"

namespace rlcsim::sim {

struct TransientOptions {
  double t_stop = 0.0;      // required, > 0
  double dt = 0.0;          // 0 -> t_stop / 4000
  Integrator integrator = Integrator::kTrapezoidal;
  int be_steps_after_breakpoint = 2;  // BE steps before switching back to trap
  double dc_gmin = 1e-12;
  // Guard: reject pathological event cascades (step shrinking forever).
  double min_dt_fraction = 1e-9;  // min event step as a fraction of dt
};

struct TransientResult {
  WaveformSet waveforms;
  std::vector<double> buffer_fire_times;  // +inf where a buffer never fired
  std::size_t steps_taken = 0;
  std::size_t lu_factorizations = 0;
};

// Runs a transient analysis. Throws std::invalid_argument for bad options
// and std::runtime_error if the MNA matrix is singular.
TransientResult run_transient(const Circuit& circuit, const TransientOptions& options);

// DC operating point: node voltages (and branch currents) with capacitors
// open and inductors shorted, sources evaluated at t = 0.
std::vector<double> dc_operating_point(const Circuit& circuit, double gmin = 1e-12);

}  // namespace rlcsim::sim
