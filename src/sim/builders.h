// Circuit construction helpers for the structures this library studies:
// lumped ladders for distributed lines, gate + line + load systems, and
// repeater chains (paper, Fig. 3).
#pragma once

#include <string>
#include <vector>

#include "sim/circuit.h"
#include "sim/transient.h"
#include "tline/coupled_bus.h"
#include "tline/rlc.h"
#include "tline/transfer.h"

namespace rlcsim::sim {

// One lumped-pi segment stamped between two EXISTING nodes: shunt c_half at
// each end, series r_seg then l_seg (l_seg == 0 skips the inductor and its
// midpoint node). This is the per-element stamping primitive — ladders,
// coupled buses, and branching wire trees all compose it over their own node
// graphs instead of each hand-rolling the element loop.
void add_pi_segment(Circuit& circuit, const std::string& tag,
                    const std::string& near, const std::string& far,
                    double r_seg, double l_seg, double c_half);

// Appends an N-segment lumped-pi RLC ladder between `in` and `out`.
// Each segment: shunt Ct/2N at the near node, series Rt/N then Lt/N, shunt
// Ct/2N at the far node. Internal nodes are "<prefix>.mN"/"<prefix>.nN".
void add_rlc_ladder(Circuit& circuit, const std::string& prefix, const std::string& in,
                    const std::string& out, const tline::LineParams& line, int segments);

// ------------------------------------------------- branching wire trees
// Per-element topology stamping beyond point-to-point ladders: a branching
// interconnect tree (multi-sink fanout nets, clock-tree stages). Branch k
// starts where its parent branch ends (parent == -1 roots at the driven
// input) and runs its own RLC totals over `segments` ladder cells to its far
// node. Multiple branches sharing one parent make that parent's far node a
// branch point; `sink_capacitance` models a receiver gate or the next
// stage's buffer input at the branch's far end.
struct WireBranch {
  int parent = -1;                // index of the upstream branch; -1 = root
  tline::LineParams line;         // this branch's own totals
  int segments = 1;
  double sink_capacitance = 0.0;  // explicit load at the far end, F (>= 0)
};
struct WireTree {
  std::vector<WireBranch> branches;
};

// Throws std::invalid_argument (naming the branch) on empty trees, a parent
// index that does not precede the branch (the topological-order contract —
// it also makes cycles unrepresentable), bad segment counts, negative sink
// loads, or invalid line totals.
void validate(const WireTree& tree);

// Stamps the tree rooted at `in`. Branch k's far node is "<prefix>.b<k>.end"
// (collected in `ends`, one per branch, when non-null): leaf ends are the
// tree's sinks, but interior branch points are addressable outputs too.
void add_wire_tree(Circuit& circuit, const std::string& prefix,
                   const std::string& in, const WireTree& tree,
                   std::vector<std::string>* ends = nullptr);

// Builds the canonical system: step source (0 -> vdd at t=0, linear rise
// `source_rise`) behind Rtr, driving the ladder into CL. Nodes: "vin" (ideal
// source), "drv" (after Rtr), "out" (far end).
Circuit build_gate_line_load(const tline::GateLineLoad& system, int segments,
                             double vdd = 1.0, double source_rise = 0.0);

// The automatic simulation horizon simulate_gate_line_delay (and the sweep
// engine) start from: several times the larger of the Elmore delay and the
// time of flight.
double default_transient_horizon(const tline::GateLineLoad& system);

// Runs a transient and returns the result together with the first rising
// crossing of `level` at `node`. If the response has not crossed within
// options.t_stop, the horizon is extended x4 (up to 4 attempts, resetting
// dt to the caller's policy each time — 0 re-derives from t_stop); throws
// std::runtime_error prefixed with `context` if it never crosses. The shared
// auto-extend policy of every delay-measuring entry point.
struct DelayRun {
  TransientResult result;
  double crossing = 0.0;  // s
};
DelayRun run_until_crossing(const Circuit& circuit, const std::string& node,
                            double level, TransientOptions options,
                            const char* context);

// Convenience: simulate build_gate_line_load and return the 50% delay of
// "out". `t_stop` = 0 picks a horizon from the system's time scales
// automatically; `dt` = 0 picks t_stop / 4000.
double simulate_gate_line_delay(const tline::GateLineLoad& system, int segments = 100,
                                double t_stop = 0.0, double dt = 0.0,
                                double threshold = 0.5);

// Two identical parallel RLC ladders ("aggressor" and "victim") with
// capacitive and inductive coupling per segment — the crosstalk structure
// wide parallel buses and clock shields form. `coupling_capacitance` is the
// TOTAL line-to-line capacitance; `inductive_k` couples corresponding
// segment inductors. A convenience wrapper over add_coupled_bus with a
// 2-line tline::CoupledBus (inductive_k == Lm/Lt).
struct CoupledLinesSpec {
  tline::LineParams line;            // each line's own totals
  double coupling_capacitance = 0.0; // total Cc between the lines, F
  double inductive_k = 0.0;          // mutual coefficient per segment, [0, 1)
  int segments = 40;
};
void add_coupled_lines(Circuit& circuit, const std::string& prefix,
                       const std::string& in_a, const std::string& out_a,
                       const std::string& in_b, const std::string& out_b,
                       const CoupledLinesSpec& spec);

// Crosstalk testbench: aggressor driven by a step behind `driver_resistance`,
// victim held by an identical quiescent driver; both loaded with
// `load_capacitance`. Nodes: "agg.out", "vic.out".
Circuit build_crosstalk_pair(const CoupledLinesSpec& spec, double driver_resistance,
                             double load_capacitance, double vdd = 1.0);

// Peak |voltage| induced on the quiet victim's far end, volts.
double simulate_crosstalk_peak(const CoupledLinesSpec& spec,
                               double driver_resistance, double load_capacitance,
                               double t_stop = 0.0);

// Appends a tline::CoupledBus as N parallel K-segment RLC ladders with
// per-pair coupling: Cc/K between corresponding ladder nodes of coupled
// lines and mutual inductance Lm/K (coefficient k = Lm/Lt) between
// corresponding segment inductors. Nearest-neighbor buses stamp adjacent
// pairs only (the fast path); full-coupling buses (CoupledBus::full_cc/lm)
// stamp EVERY pair with a nonzero total. Heterogeneous buses use each
// line's own totals and each pair's own Cc/Lm. Line i runs from ins[i] to outs[i];
// internal elements are named "<prefix>.l<i>...". All coupling stamps land
// in the MNA C-triplet set over the shared G/C pattern (sim/mna.h), so the
// sparse symbolic-reuse path applies to buses exactly as to single lines.
// How add_coupled_bus treats zero-valued coupling entries.
struct StampOptions {
  // By default a zero adjacent-pair Cc (and a zero Lm between two inductive
  // lines) still stamps a STRUCTURAL element — an explicit 0 in the CSR
  // values on the same pattern — so a coupling axis whose range includes 0
  // keeps ONE sparsity pattern and ONE symbolic factorization across the
  // whole sweep. (Entirely-zero far pairs are never stamped: no axis varies
  // them.) Setting prune_zeros restores the value-dependent pattern fork
  // (skip every stamp that is exactly 0): the escape hatch for dense
  // full-coupling buses where the extra structural slots are pure overhead.
  bool prune_zeros = false;
};

void add_coupled_bus(Circuit& circuit, const std::string& prefix,
                     const std::vector<std::string>& ins,
                     const std::vector<std::string>& outs,
                     const tline::CoupledBus& bus, int segments,
                     const StampOptions& stamp = {});

// What each bus line's driver does during a bus transition.
enum class BusDrive {
  kQuietLow,   // held at 0 V through the driver (noise victim)
  kQuietHigh,  // held at vdd through the driver
  kRising,     // steps 0 -> vdd at t = 0
  kFalling,    // steps vdd -> 0 at t = 0 (pre-switch DC level is vdd)
  kShieldGrounded,  // a shield track: tied to ground through the driver
                    // resistance at the NEAR end and through an equal tie
                    // resistance at the FAR end (dual-ended grounding, the
                    // standard shield practice), and no receiver load. The
                    // far-end tie lands on a matrix position the load cap
                    // already occupies, so shield placement sweeps keep ONE
                    // sparsity pattern and stay on the symbolic-reuse path.
};

// Bus crosstalk testbench: every line driven per `drives` behind
// `driver_resistance`, loaded with `load_capacitance`. drives.size() must
// equal bus.lines. Nodes: "line<i>.in" (ideal source), "line<i>.drv",
// "line<i>.out" (far end), i in [0, bus.lines). `source_rise` > 0 gives
// every switching drive a linear edge of that duration (slow-slew
// aggressors); 0 keeps ideal steps.
Circuit build_coupled_bus(const tline::CoupledBus& bus,
                          const std::vector<BusDrive>& drives,
                          double driver_resistance, double load_capacitance,
                          int segments, double vdd = 1.0, double source_rise = 0.0);

// Repeater chain per Fig. 3: k equal line sections, each driven by a buffer
// h times the minimum size (output resistance r0/h, input capacitance h*c0).
// The first stage is an ideal step behind r0/h; stages 2..k are behavioral
// buffers switching at 50% of vdd; the final section is loaded by h*c0
// (the input of the next stage of logic).
//
// Node of interest: "stage<k>.out" — the far end of the last section. The
// total delay of the repeater system is the 50% crossing of that node (the
// final load's voltage), matching the paper's k * tpd_section definition.
struct RepeaterChainSpec {
  tline::LineParams line;  // totals of the WHOLE line
  int sections = 1;        // k
  double size = 1.0;       // h
  double r0 = 0.0;         // minimum-buffer output resistance
  double c0 = 0.0;         // minimum-buffer input capacitance
  int segments_per_section = 40;
  double vdd = 1.0;
};
Circuit build_repeater_chain(const RepeaterChainSpec& spec);

// Simulates the chain and returns the 50% delay at the final load.
double simulate_repeater_chain_delay(const RepeaterChainSpec& spec, double t_stop = 0.0,
                                     double dt = 0.0);

}  // namespace rlcsim::sim
