// AC (small-signal frequency-domain) analysis.
//
// Solves the complex MNA system at s = j*2*pi*f with one chosen voltage
// source set to 1 V (all other independent sources zeroed) and returns the
// node transfer function H(f) = V(node)/V(source). Buffers contribute their
// input capacitance and output conductance (quiescent output stage).
//
// The system at every frequency is G + s*C over ONE sparsity pattern (see
// sim/mna.h), so a sweep assembles the pattern once, performs one symbolic
// sparse factorization at the first point, and only refactorizes values at
// each subsequent point. Small systems use the dense LU instead (same
// size policy as the transient engine). Each sparse solve is residual-checked
// and falls back to a fresh full factorization if the reused pivot order has
// gone stale — accuracy never depends on the reuse heuristic.
//
// This shares the element stamps' topology with the transient engine but
// uses the true admittances sC and sL instead of companion models, so
// AC-vs-transient agreement is a genuine cross-check of the integrator, and
// AC-vs-ABCD agreement (tline/two_port.h) a cross-check of the stamps.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sim/circuit.h"
#include "sim/mna.h"

namespace rlcsim::sim {

struct AcSample {
  double frequency = 0.0;  // Hz
  std::complex<double> value;

  double magnitude() const { return std::abs(value); }
  double magnitude_db() const;
  double phase_deg() const;
};

// Solver work performed by one AC sweep (for asserting pattern reuse).
struct AcSweepInfo {
  std::size_t symbolic_factorizations = 0;  // sparse full factorizations
  std::size_t numeric_factorizations = 0;   // total factorizations (any kind)
  bool used_sparse_solver = false;
};

// Transfer from `source_name` (a voltage source) to `node`. Throws
// std::invalid_argument if the source or node does not exist. `info`, when
// non-null, receives the sweep's factorization counts.
std::vector<AcSample> ac_transfer(const Circuit& circuit,
                                  const std::string& source_name,
                                  const std::string& node,
                                  const std::vector<double>& frequencies,
                                  SolverKind solver = SolverKind::kAuto,
                                  AcSweepInfo* info = nullptr);

// Convenience single-frequency version.
std::complex<double> ac_transfer_at(const Circuit& circuit,
                                    const std::string& source_name,
                                    const std::string& node, double frequency);

// Logarithmically spaced frequency grid [f_lo, f_hi], points >= 2.
std::vector<double> log_frequencies(double f_lo, double f_hi, int points);

// -3 dB bandwidth of a low-pass transfer: the lowest frequency where |H|
// falls below |H(f_lo)|/sqrt(2), refined by Brent's method. Returns
// std::nullopt when the magnitude never drops 3 dB inside [f_lo, f_hi] —
// "no crossing" is reported as absent, never as a 0 Hz sentinel.
std::optional<double> bandwidth_3db(const Circuit& circuit,
                                    const std::string& source_name,
                                    const std::string& node, double f_lo,
                                    double f_hi);

}  // namespace rlcsim::sim
