// AC (small-signal frequency-domain) analysis.
//
// Solves the complex MNA system at s = j*2*pi*f with one chosen voltage
// source set to 1 V (all other independent sources zeroed) and returns the
// node transfer function H(f) = V(node)/V(source). Buffers contribute their
// input capacitance and output conductance (quiescent output stage).
//
// This shares the element stamps' topology with the transient engine but
// uses the true admittances sC and sL instead of companion models, so
// AC-vs-transient agreement is a genuine cross-check of the integrator, and
// AC-vs-ABCD agreement (tline/two_port.h) a cross-check of the stamps.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "sim/circuit.h"

namespace rlcsim::sim {

struct AcSample {
  double frequency = 0.0;  // Hz
  std::complex<double> value;

  double magnitude() const { return std::abs(value); }
  double magnitude_db() const;
  double phase_deg() const;
};

// Transfer from `source_name` (a voltage source) to `node`. Throws
// std::invalid_argument if the source or node does not exist.
std::vector<AcSample> ac_transfer(const Circuit& circuit,
                                  const std::string& source_name,
                                  const std::string& node,
                                  const std::vector<double>& frequencies);

// Convenience single-frequency version.
std::complex<double> ac_transfer_at(const Circuit& circuit,
                                    const std::string& source_name,
                                    const std::string& node, double frequency);

// Logarithmically spaced frequency grid [f_lo, f_hi], points >= 2.
std::vector<double> log_frequencies(double f_lo, double f_hi, int points);

// -3 dB bandwidth of a low-pass transfer: the lowest frequency where |H|
// falls below |H(DC)|/sqrt(2), refined by bisection. Returns 0 if it never
// falls within [f_lo, f_hi].
double bandwidth_3db(const Circuit& circuit, const std::string& source_name,
                     const std::string& node, double f_lo, double f_hi);

}  // namespace rlcsim::sim
