#include "sim/netlist_parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "numeric/units.h"

namespace rlcsim::sim {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// Splits on whitespace, but keeps "FN(...)" function groups together even if
// they contain spaces, and splits '(' ')' ',' as separators inside groups.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  int paren_depth = 0;
  for (char c : line) {
    if (c == '(') ++paren_depth;
    if (c == ')') --paren_depth;
    if (std::isspace(static_cast<unsigned char>(c)) && paren_depth == 0) {
      if (!current.empty()) {
        tokens.push_back(current);
        current.clear();
      }
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

double number_or_throw(const std::string& token, int line) {
  const double v = units::parse_spice_number(token);
  if (std::isnan(v)) throw ParseError(line, "bad number '" + token + "'");
  return v;
}

// Parses "name(a b c)" or "name(a,b,c)"; returns arguments. `token` has
// already been matched against `name` case-insensitively by the caller.
std::vector<double> function_args(const std::string& token, std::size_t name_len,
                                  int line) {
  const std::size_t open = token.find('(');
  const std::size_t close = token.rfind(')');
  if (open != name_len || close == std::string::npos || close < open)
    throw ParseError(line, "malformed source '" + token + "'");
  std::string inner = token.substr(open + 1, close - open - 1);
  std::replace(inner.begin(), inner.end(), ',', ' ');
  std::istringstream stream(inner);
  std::vector<double> args;
  std::string word;
  while (stream >> word) args.push_back(number_or_throw(word, line));
  return args;
}

SourceSpec parse_source(const std::vector<std::string>& tokens, std::size_t first,
                        int line) {
  if (first >= tokens.size())
    throw ParseError(line, "missing source specification");
  // Re-join remaining tokens so "PULSE (0 1 ...)" and "PULSE(0 1 ...)" both work.
  std::string joined;
  for (std::size_t i = first; i < tokens.size(); ++i) {
    if (!joined.empty()) joined += ' ';
    joined += tokens[i];
  }
  const std::string lower = to_lower(joined);

  if (lower.rfind("dc", 0) == 0) {
    std::istringstream stream(joined.substr(2));
    std::string value;
    if (!(stream >> value)) throw ParseError(line, "DC source needs a value");
    return DcSpec{number_or_throw(value, line)};
  }
  if (lower.rfind("step", 0) == 0) {
    const auto args = function_args(joined, 4, line);
    if (args.size() < 3 || args.size() > 4)
      throw ParseError(line, "STEP needs (v0 v1 tdelay [trise])");
    StepSpec s{args[0], args[1], args[2], args.size() == 4 ? args[3] : 0.0};
    return s;
  }
  if (lower.rfind("pulse", 0) == 0) {
    const auto args = function_args(joined, 5, line);
    if (args.size() < 6 || args.size() > 7)
      throw ParseError(line, "PULSE needs (v0 v1 td tr tf pw [period])");
    PulseSpec p{args[0], args[1], args[2], args[3], args[4], args[5],
                args.size() == 7 ? args[6] : 0.0};
    return p;
  }
  if (lower.rfind("pwl", 0) == 0) {
    const auto args = function_args(joined, 3, line);
    if (args.size() < 4 || args.size() % 2 != 0)
      throw ParseError(line, "PWL needs an even number (>= 4) of values");
    PwlSpec p;
    for (std::size_t i = 0; i < args.size(); i += 2) {
      if (!p.points.empty() && args[i] <= p.points.back().first)
        throw ParseError(line, "PWL times must be strictly increasing");
      p.points.emplace_back(args[i], args[i + 1]);
    }
    return p;
  }
  // Bare value == DC.
  return DcSpec{number_or_throw(tokens[first], line)};
}

// Extracts "key=value" (case-insensitive key) from tokens; returns nullopt
// when absent.
std::optional<double> keyword_value(const std::vector<std::string>& tokens,
                                    std::size_t first, const std::string& key,
                                    int line) {
  for (std::size_t i = first; i < tokens.size(); ++i) {
    const std::string lower = to_lower(tokens[i]);
    const std::string prefix = to_lower(key) + "=";
    if (lower.rfind(prefix, 0) == 0)
      return number_or_throw(tokens[i].substr(prefix.size()), line);
  }
  return std::nullopt;
}

}  // namespace

ParsedNetlist parse_netlist(const std::string& text) {
  ParsedNetlist out;
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  bool first_content_line = true;
  bool ended = false;
  // Element names must be unique (case-insensitive, SPICE convention): a
  // duplicated name is almost always an editing mistake, and K-cards and
  // diagnostics refer to elements by name.
  std::set<std::string> seen_names;

  while (std::getline(stream, raw)) {
    ++line_no;
    // Strip comments: '*' at start of line, or " ; " trailing.
    std::string line = raw;
    if (!line.empty() && line.front() == '*') continue;
    const std::size_t semi = line.find(';');
    if (semi != std::string::npos) line = line.substr(0, semi);
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (ended)
      throw ParseError(line_no, "content after .end");

    const std::string head_lower = to_lower(tokens[0]);

    if (head_lower[0] == '.') {
      if (head_lower == ".end") {
        ended = true;
        continue;
      }
      if (head_lower == ".tran") {
        if (tokens.size() != 3) throw ParseError(line_no, ".tran needs tstep tstop");
        TransientOptions tran;
        tran.dt = number_or_throw(tokens[1], line_no);
        tran.t_stop = number_or_throw(tokens[2], line_no);
        if (!(tran.t_stop > 0.0) || !(tran.dt > 0.0) || tran.dt >= tran.t_stop)
          throw ParseError(line_no, ".tran needs 0 < tstep < tstop");
        out.tran = tran;
        continue;
      }
      throw ParseError(line_no, "unknown directive '" + tokens[0] + "'");
    }

    const char kind = static_cast<char>(
        std::tolower(static_cast<unsigned char>(tokens[0][0])));
    const bool looks_like_element =
        kind == 'r' || kind == 'c' || kind == 'l' || kind == 'v' || kind == 'i' ||
        kind == 'b' || kind == 'k';
    if (first_content_line && !looks_like_element) {
      out.title = raw;
      first_content_line = false;
      continue;
    }
    first_content_line = false;
    if (!looks_like_element)
      throw ParseError(line_no, "unknown element '" + tokens[0] + "'");
    if (tokens.size() < 3)
      throw ParseError(line_no, "element '" + tokens[0] + "' needs two nodes");

    const std::string& name = tokens[0];
    const std::string& n1 = tokens[1];
    const std::string& n2 = tokens[2];

    if (!seen_names.insert(to_lower(name)).second)
      throw ParseError(line_no, "duplicate element name '" + name + "'");

    // Positive-value guard for passive elements: a zero or negative R/C/L is
    // always a typo (0 shorts the MNA stamps into a singular or
    // nonsensical system) and must fail HERE with the line number, not
    // surface later as a solver error or undefined behavior.
    const auto positive_value = [&](const std::string& token,
                                    const char* what) -> double {
      const double v = number_or_throw(token, line_no);
      if (!(v > 0.0) || !std::isfinite(v))
        throw ParseError(line_no, std::string(what) + " must be a positive finite value, got '" +
                                      token + "'");
      return v;
    };

    // Circuit-level structural checks (self-loops, threshold ranges...)
    // reported with this line's number.
    const auto rethrow_with_line = [&](const std::invalid_argument& e) {
      throw ParseError(line_no, e.what());
    };

    try {
      switch (kind) {
        case 'r': {
          if (tokens.size() != 4)
            throw ParseError(line_no, "R needs exactly one value");
          out.circuit.add_resistor(n1, n2, positive_value(tokens[3], "resistance"),
                                   name);
          break;
        }
        case 'c': {
          if (tokens.size() < 4) throw ParseError(line_no, "C needs a value");
          const double ic = keyword_value(tokens, 4, "ic", line_no).value_or(0.0);
          out.circuit.add_capacitor(n1, n2, positive_value(tokens[3], "capacitance"),
                                    ic, name);
          break;
        }
        case 'l': {
          if (tokens.size() < 4) throw ParseError(line_no, "L needs a value");
          const double ic = keyword_value(tokens, 4, "ic", line_no).value_or(0.0);
          out.circuit.add_inductor(n1, n2, positive_value(tokens[3], "inductance"),
                                   ic, name);
          break;
        }
        case 'v': {
          out.circuit.add_voltage_source(n1, n2, parse_source(tokens, 3, line_no),
                                         name);
          break;
        }
        case 'i': {
          out.circuit.add_current_source(n1, n2, parse_source(tokens, 3, line_no),
                                         name);
          break;
        }
        case 'k': {
          // Kname Lxxx Lyyy k — n1/n2 here are the inductor element names.
          if (tokens.size() != 4) throw ParseError(line_no, "K needs L1 L2 k");
          out.circuit.add_mutual(n1, n2, number_or_throw(tokens[3], line_no), name);
          break;
        }
        case 'b': {
          const auto rout = keyword_value(tokens, 3, "rout", line_no);
          const auto cin = keyword_value(tokens, 3, "cin", line_no);
          if (!rout || !cin)
            throw ParseError(line_no, "buffer needs ROUT= and CIN=");
          const double vdd = keyword_value(tokens, 3, "vdd", line_no).value_or(1.0);
          const double th = keyword_value(tokens, 3, "th", line_no).value_or(0.5);
          out.circuit.add_buffer(n1, n2, *rout, *cin, vdd, th, name);
          break;
        }
        default:
          throw ParseError(line_no, "unhandled element kind");
      }
    } catch (const std::invalid_argument& e) {
      rethrow_with_line(e);
    }
  }

  if (out.circuit.node_count() == 0)
    throw ParseError(line_no, "netlist contains no elements");
  return out;
}

}  // namespace rlcsim::sim
