#include "sim/circuit.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

namespace rlcsim::sim {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool is_ground_name(const std::string& name) {
  const std::string l = lower(name);
  return l == "0" || l == "gnd";
}

double pwl_value(const PwlSpec& spec, double t) {
  if (spec.points.empty()) return 0.0;
  if (t <= spec.points.front().first) return spec.points.front().second;
  if (t >= spec.points.back().first) return spec.points.back().second;
  for (std::size_t i = 1; i < spec.points.size(); ++i) {
    if (t <= spec.points[i].first) {
      const auto& [t0, v0] = spec.points[i - 1];
      const auto& [t1, v1] = spec.points[i];
      const double frac = (t - t0) / (t1 - t0);
      return v0 + frac * (v1 - v0);
    }
  }
  return spec.points.back().second;
}

double pulse_value(const PulseSpec& p, double t) {
  // As with StepSpec, edges are strict so the t = 0 operating point sees v0.
  if (t <= p.delay) return p.v0;
  double local = t - p.delay;
  if (p.period > 0.0) local = std::fmod(local, p.period);
  if (p.rise > 0.0 && local <= p.rise)
    return p.v0 + (p.v1 - p.v0) * local / p.rise;
  local -= p.rise;
  if (local < p.width) return p.v1;
  local -= p.width;
  if (local < p.fall) return p.v1 + (p.v0 - p.v1) * local / p.fall;
  return p.v0;
}

}  // namespace

double source_value(const SourceSpec& spec, double t) {
  return std::visit(
      [t](const auto& s) -> double {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, DcSpec>) {
          return s.value;
        } else if constexpr (std::is_same_v<T, StepSpec>) {
          // The value AT the switching instant is the pre-switch value, so a
          // step with delay = 0 still yields a v0 DC operating point at t = 0.
          if (s.rise <= 0.0) return t > s.delay ? s.v1 : s.v0;
          if (t <= s.delay) return s.v0;
          if (t >= s.delay + s.rise) return s.v1;
          return s.v0 + (s.v1 - s.v0) * (t - s.delay) / s.rise;
        } else if constexpr (std::is_same_v<T, PwlSpec>) {
          return pwl_value(s, t);
        } else {
          return pulse_value(s, t);
        }
      },
      spec);
}

NodeId Circuit::node(const std::string& name) {
  if (is_ground_name(name)) return kGround;
  for (std::size_t i = 0; i < node_names_.size(); ++i)
    if (node_names_[i] == name) return static_cast<NodeId>(i);
  node_names_.push_back(name);
  return static_cast<NodeId>(node_names_.size() - 1);
}

std::optional<NodeId> Circuit::find_node(const std::string& name) const {
  if (is_ground_name(name)) return kGround;
  for (std::size_t i = 0; i < node_names_.size(); ++i)
    if (node_names_[i] == name) return static_cast<NodeId>(i);
  return std::nullopt;
}

const std::string& Circuit::node_name(NodeId id) const {
  static const std::string ground = "0";
  if (id == kGround) return ground;
  if (id < 0 || static_cast<std::size_t>(id) >= node_names_.size())
    throw std::out_of_range("Circuit::node_name: bad node id");
  return node_names_[static_cast<std::size_t>(id)];
}

void Circuit::add_resistor(const std::string& n1, const std::string& n2, double r,
                           std::string name) {
  if (!(r > 0.0) || !std::isfinite(r))
    throw std::invalid_argument("resistor '" + name + "': resistance must be > 0");
  resistors_.push_back({node(n1), node(n2), r, std::move(name)});
}

void Circuit::add_capacitor(const std::string& n1, const std::string& n2, double c,
                            double initial_voltage, std::string name) {
  if (!(c > 0.0) || !std::isfinite(c))
    throw std::invalid_argument("capacitor '" + name + "': capacitance must be > 0");
  capacitors_.push_back({node(n1), node(n2), c, initial_voltage, std::move(name)});
}

void Circuit::add_structural_capacitor(const std::string& n1, const std::string& n2,
                                       double c, double initial_voltage,
                                       std::string name) {
  if (!(c >= 0.0) || !std::isfinite(c))
    throw std::invalid_argument("capacitor '" + name + "': capacitance must be >= 0");
  capacitors_.push_back({node(n1), node(n2), c, initial_voltage, std::move(name)});
}

void Circuit::add_inductor(const std::string& n1, const std::string& n2, double l,
                           double initial_current, std::string name) {
  if (!(l > 0.0) || !std::isfinite(l))
    throw std::invalid_argument("inductor '" + name + "': inductance must be > 0");
  inductors_.push_back({node(n1), node(n2), l, initial_current, std::move(name)});
}

void Circuit::add_voltage_source(const std::string& positive,
                                 const std::string& negative, SourceSpec spec,
                                 std::string name) {
  const NodeId p = node(positive);
  const NodeId n = node(negative);
  if (p == n)
    throw std::invalid_argument("voltage source '" + name + "': both terminals on one node");
  vsources_.push_back({p, n, std::move(spec), std::move(name)});
}

void Circuit::add_current_source(const std::string& from, const std::string& to,
                                 SourceSpec spec, std::string name) {
  isources_.push_back({node(from), node(to), std::move(spec), std::move(name)});
}

void Circuit::set_voltage_source_spec(std::size_t index, SourceSpec spec) {
  if (index >= vsources_.size())
    throw std::out_of_range("set_voltage_source_spec: no voltage source at index " +
                            std::to_string(index));
  vsources_[index].spec = std::move(spec);
}

void Circuit::add_buffer(const std::string& input, const std::string& output,
                         double output_resistance, double input_capacitance,
                         double vdd, double threshold, std::string name) {
  add_switching_buffer(input, output, output_resistance, input_capacitance,
                       /*input_direction=*/+1, /*output_v0=*/0.0,
                       /*output_v1=*/vdd, /*output_rise=*/0.0, vdd, threshold,
                       std::move(name));
}

void Circuit::add_switching_buffer(const std::string& input, const std::string& output,
                                   double output_resistance, double input_capacitance,
                                   int input_direction, double output_v0,
                                   double output_v1, double output_rise, double vdd,
                                   double threshold, std::string name) {
  if (!(output_resistance > 0.0))
    throw std::invalid_argument("buffer '" + name + "': output resistance must be > 0");
  if (input_capacitance < 0.0)
    throw std::invalid_argument("buffer '" + name + "': input capacitance must be >= 0");
  if (!(threshold > 0.0 && threshold < 1.0))
    throw std::invalid_argument("buffer '" + name + "': threshold must be in (0,1)");
  if (input_direction != +1 && input_direction != -1)
    throw std::invalid_argument("buffer '" + name + "': input direction must be +1 or -1");
  if (!std::isfinite(output_v0) || !std::isfinite(output_v1))
    throw std::invalid_argument("buffer '" + name + "': output levels must be finite");
  if (!(output_rise >= 0.0) || !std::isfinite(output_rise))
    throw std::invalid_argument("buffer '" + name + "': output rise must be >= 0");
  buffers_.push_back({node(input), node(output), output_resistance, input_capacitance,
                      vdd, threshold, std::move(name), input_direction, output_v0,
                      output_v1, output_rise});
}

void Circuit::add_mutual(const std::string& inductor_a, const std::string& inductor_b,
                         double k, std::string name) {
  if (!(k >= 0.0 && k < 1.0))
    throw std::invalid_argument("mutual '" + name + "': k must be in [0, 1)");
  const auto find_inductor = [&](const std::string& wanted) -> std::size_t {
    for (std::size_t i = 0; i < inductors_.size(); ++i)
      if (inductors_[i].name == wanted) return i;
    throw std::invalid_argument("mutual '" + name + "': unknown inductor '" +
                                wanted + "'");
  };
  const std::size_t a = find_inductor(inductor_a);
  const std::size_t b = find_inductor(inductor_b);
  if (a == b)
    throw std::invalid_argument("mutual '" + name + "': cannot couple an inductor to itself");
  const double m =
      k * std::sqrt(inductors_[a].inductance * inductors_[b].inductance);
  mutuals_.push_back({a, b, k, m, std::move(name)});
}

void Circuit::validate() const {
  const std::size_t element_count = resistors_.size() + capacitors_.size() +
                                    inductors_.size() + vsources_.size() +
                                    isources_.size() + buffers_.size();
  if (element_count == 0) throw std::invalid_argument("Circuit: empty circuit");
  if (node_names_.empty())
    throw std::invalid_argument("Circuit: no non-ground nodes");

  // Every node needs a DC path to ground for the MNA matrix to be
  // non-singular: walk the graph of R, L, V-source (and buffer-output)
  // edges from ground.
  const std::size_t n = node_names_.size();
  std::vector<std::vector<std::size_t>> adjacency(n);
  std::vector<char> grounded(n, 0);
  auto link = [&](NodeId a, NodeId b) {
    if (a == kGround && b == kGround) return;
    if (a == kGround) {
      grounded[static_cast<std::size_t>(b)] = 1;
      return;
    }
    if (b == kGround) {
      grounded[static_cast<std::size_t>(a)] = 1;
      return;
    }
    adjacency[static_cast<std::size_t>(a)].push_back(static_cast<std::size_t>(b));
    adjacency[static_cast<std::size_t>(b)].push_back(static_cast<std::size_t>(a));
  };
  for (const auto& r : resistors_) link(r.n1, r.n2);
  for (const auto& l : inductors_) link(l.n1, l.n2);
  for (const auto& v : vsources_) link(v.positive, v.negative);
  // A buffer's output stage is a source behind a resistor to ground.
  for (const auto& b : buffers_)
    if (b.output != kGround) grounded[static_cast<std::size_t>(b.output)] = 1;

  std::vector<char> reached = grounded;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i)
    if (reached[i]) stack.push_back(i);
  while (!stack.empty()) {
    const std::size_t v = stack.back();
    stack.pop_back();
    for (std::size_t w : adjacency[v]) {
      if (!reached[w]) {
        reached[w] = 1;
        stack.push_back(w);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!reached[i])
      throw std::invalid_argument("Circuit: node '" + node_names_[i] +
                                  "' has no DC path to ground");
  }
}

}  // namespace rlcsim::sim
