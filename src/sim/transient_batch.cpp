#include "sim/transient_batch.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "numeric/sparse_batch.h"
#include "obs/obs.h"
#include "sim/mna.h"
#include "sim/waveform.h"

// Batched stepping is memcmp'd against the scalar path; excess-precision
// double evaluation would fork the two (see numeric/fp_env.h).
static_assert(FLT_EVAL_METHOD == 0,
              "rlcsim batch kernels require FLT_EVAL_METHOD == 0 "
              "(strict double evaluation)");

namespace rlcsim::sim {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

bool same_structure(const numeric::SparsePattern& a, const numeric::SparsePattern& b) {
  return a.n == b.n && a.row_ptr == b.row_ptr && a.col_idx == b.col_idx;
}

std::set<double> breakpoints_of(const Circuit& circuit, double t_stop) {
  std::set<double> breakpoints;
  breakpoints.insert(0.0);
  breakpoints.insert(t_stop);
  for (const auto& v : circuit.voltage_sources())
    collect_source_breakpoints(v.spec, t_stop, breakpoints);
  for (const auto& i : circuit.current_sources())
    collect_source_breakpoints(i.spec, t_stop, breakpoints);
  return breakpoints;
}

}  // namespace

std::optional<std::vector<double>> run_batched_crossings(
    const std::vector<Circuit>& circuits, const std::string& node, double level,
    const TransientOptions& options, const char* context) {
  OBS_SPAN("transient.batch");
  const std::size_t lanes = circuits.size();
  if (!numeric::is_supported_lane_width(lanes)) return std::nullopt;

  // Ineligible-option combinations fall back rather than throw: the scalar
  // path then raises exactly the diagnostics run_transient documents.
  if (!(options.t_stop > 0.0)) return std::nullopt;
  const double dt_nominal =
      options.dt > 0.0 ? options.dt : options.t_stop / 4000.0;
  if (dt_nominal >= options.t_stop) return std::nullopt;
  if (!(options.min_dt_fraction >= 1e-12) || options.min_dt_fraction > 1.0)
    return std::nullopt;

  // The batch replays RECORDED symbolic factorizations — without a fully
  // seeded SolverReuse each lane would pay (and pivot) its own symbolic
  // analysis, which is exactly the scalar path.
  SolverReuse* reuse = options.reuse;
  if (!reuse || !reuse->system_pattern || !reuse->system_symbolic ||
      !reuse->dc_pattern || !reuse->dc_symbolic)
    return std::nullopt;

  // Per-lane assemblers; every lane must be buffer-free (shared step grid),
  // observe an actual node, and match the recorded system pattern.
  std::vector<MnaAssembler> assemblers;
  assemblers.reserve(lanes);
  std::vector<NodeId> node_id(lanes, kGround);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const Circuit& circuit = circuits[lane];
    if (!circuit.buffers().empty()) return std::nullopt;
    const auto found = circuit.find_node(node);
    if (!found || *found == kGround) return std::nullopt;
    node_id[lane] = *found;
    assemblers.emplace_back(circuit);
  }
  const std::size_t unknowns = assemblers[0].unknown_count();
  if (!use_sparse_solver(options.solver, unknowns)) return std::nullopt;
  for (const MnaAssembler& assembler : assemblers) {
    if (assembler.unknown_count() != unknowns) return std::nullopt;
    if (!same_structure(*reuse->system_pattern, *assembler.system_pattern()))
      return std::nullopt;
  }

  // The batched RHS/advance kernels below walk lane 0's element topology for
  // EVERY lane (element-outer, lane-inner), so all lanes must agree on
  // element counts and node/branch indices — only the VALUES may differ.
  // Sweep tiles are built by one builder and always qualify; anything else
  // falls back to the scalar per-point path.
  const Circuit& c0 = circuits[0];
  const auto& caps0 = c0.capacitors();
  const auto& inductors0 = c0.inductors();
  const auto& mutuals0 = c0.mutuals();
  const auto& vsources0 = c0.voltage_sources();
  const auto& isources0 = c0.current_sources();
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    const Circuit& c = circuits[lane];
    if (c.node_count() != c0.node_count()) return std::nullopt;
    if (c.capacitors().size() != caps0.size() ||
        c.inductors().size() != inductors0.size() ||
        c.mutuals().size() != mutuals0.size() ||
        c.voltage_sources().size() != vsources0.size() ||
        c.current_sources().size() != isources0.size())
      return std::nullopt;
    for (std::size_t k = 0; k < caps0.size(); ++k)
      if (c.capacitors()[k].n1 != caps0[k].n1 ||
          c.capacitors()[k].n2 != caps0[k].n2)
        return std::nullopt;
    for (std::size_t k = 0; k < inductors0.size(); ++k)
      if (c.inductors()[k].n1 != inductors0[k].n1 ||
          c.inductors()[k].n2 != inductors0[k].n2)
        return std::nullopt;
    for (std::size_t k = 0; k < mutuals0.size(); ++k)
      if (c.mutuals()[k].inductor_a != mutuals0[k].inductor_a ||
          c.mutuals()[k].inductor_b != mutuals0[k].inductor_b)
        return std::nullopt;
    for (std::size_t k = 0; k < vsources0.size(); ++k)
      if (c.voltage_sources()[k].positive != vsources0[k].positive ||
          c.voltage_sources()[k].negative != vsources0[k].negative)
        return std::nullopt;
    for (std::size_t k = 0; k < isources0.size(); ++k)
      if (c.current_sources()[k].to != isources0[k].to ||
          c.current_sources()[k].from != isources0[k].from)
        return std::nullopt;
  }

  // Lane-major element value tables (SoA mirrors of the per-lane circuits).
  const std::size_t n_nodes = c0.node_count();
  std::vector<double> cap_c(caps0.size() * lanes);
  std::vector<double> ind_l(inductors0.size() * lanes);
  std::vector<double> mut_m(mutuals0.size() * lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const Circuit& c = circuits[lane];
    for (std::size_t k = 0; k < caps0.size(); ++k)
      cap_c[k * lanes + lane] = c.capacitors()[k].capacitance;
    for (std::size_t k = 0; k < inductors0.size(); ++k)
      ind_l[k * lanes + lane] = c.inductors()[k].inductance;
    for (std::size_t k = 0; k < mutuals0.size(); ++k)
      mut_m[k * lanes + lane] = c.mutuals()[k].mutual;
  }
  std::vector<std::size_t> ind_branch(inductors0.size());
  for (std::size_t k = 0; k < inductors0.size(); ++k)
    ind_branch[k] = assemblers[0].inductor_branch(k);
  std::vector<std::size_t> vsrc_branch(vsources0.size());
  for (std::size_t k = 0; k < vsources0.size(); ++k)
    vsrc_branch[k] = assemblers[0].vsource_branch(k);

  // Sweep tiles usually vary the passives, not the drive, so most sources
  // carry the SAME spec in every lane: detect that once here and the step
  // loop evaluates the waveform once per step instead of once per lane
  // (value-exact — identical spec, identical t, identical result).
  const auto specs_equal = [](const SourceSpec& a, const SourceSpec& b) {
    if (a.index() != b.index()) return false;
    return std::visit(
        [&](const auto& sa) {
          using T = std::decay_t<decltype(sa)>;
          const auto& sb = std::get<T>(b);
          if constexpr (std::is_same_v<T, DcSpec>) {
            return sa.value == sb.value;
          } else if constexpr (std::is_same_v<T, StepSpec>) {
            return sa.v0 == sb.v0 && sa.v1 == sb.v1 && sa.delay == sb.delay &&
                   sa.rise == sb.rise;
          } else if constexpr (std::is_same_v<T, PwlSpec>) {
            return sa.points == sb.points;
          } else {
            return sa.v0 == sb.v0 && sa.v1 == sb.v1 && sa.delay == sb.delay &&
                   sa.rise == sb.rise && sa.fall == sb.fall &&
                   sa.width == sb.width && sa.period == sb.period;
          }
        },
        a);
  };
  std::vector<char> vsrc_shared(vsources0.size(), 1);
  std::vector<char> isrc_shared(isources0.size(), 1);
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    const Circuit& c = circuits[lane];
    for (std::size_t k = 0; k < vsources0.size(); ++k)
      if (!specs_equal(c.voltage_sources()[k].spec, vsources0[k].spec))
        vsrc_shared[k] = 0;
    for (std::size_t k = 0; k < isources0.size(); ++k)
      if (!specs_equal(c.current_sources()[k].spec, isources0[k].spec))
        isrc_shared[k] = 0;
  }

  // Shared breakpoint set: buffer-free circuits step on source corners
  // only, so equal sets mean an identical (state-independent) dt sequence.
  const std::set<double> breakpoints = breakpoints_of(circuits[0], options.t_stop);
  for (std::size_t lane = 1; lane < lanes; ++lane)
    if (breakpoints_of(circuits[lane], options.t_stop) != breakpoints)
      return std::nullopt;

  // --- batched DC operating point -----------------------------------------
  numeric::BatchedValues dc_values(
      static_cast<std::size_t>(reuse->dc_pattern->nnz()), lanes);
  numeric::BatchedValues dc_solution(unknowns, lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const numeric::RealSparse dc = assemblers[lane].dc_sparse(options.dc_gmin);
    if (!same_structure(dc.pattern(), *reuse->dc_pattern)) return std::nullopt;
    dc_values.set_lane(lane, dc.values());
    TransientState empty;  // buffer-free: no fire times to carry
    dc_solution.set_lane(lane, assemblers[lane].dc_rhs(0.0, empty));
  }
  numeric::SparseLuBatch dc_lu(*reuse->dc_symbolic, lanes);
  dc_lu.refactor(dc_values);
  dc_lu.solve_in_place(dc_solution);

  // Lane-major SoA transient state (the batch-kernel mirror of
  // MnaAssembler::initial_state): node voltages are the first n_nodes
  // solution slots, capacitor histories start at zero, inductor currents
  // come from their branch unknowns.
  double time = 0.0;
  std::vector<double> nv(dc_solution.data(), dc_solution.data() + n_nodes * lanes);
  std::vector<double> cap_i(caps0.size() * lanes, 0.0);
  std::vector<double> ind_i(inductors0.size() * lanes);
  for (std::size_t k = 0; k < inductors0.size(); ++k)
    for (std::size_t lane = 0; lane < lanes; ++lane)
      ind_i[k * lanes + lane] = dc_solution.at(ind_branch[k], lane);

  // --- LU cache keyed by (quantized dt, integrator), as in run_transient ---
  const double dt_quantum = dt_nominal * options.min_dt_fraction;
  const auto quantize = [&](double dt) {
    return static_cast<std::int64_t>(std::llround(dt / dt_quantum));
  };
  std::map<std::pair<std::int64_t, int>, numeric::SparseLuBatch> lu_cache;
  reuse->reuse_hits += lanes;  // one replayed system symbolic per lane
  OBS_COUNTER_ADD("reuse.solver_hits", lanes);
  OBS_COUNTER_ADD("batch.tiles", 1);
  OBS_COUNTER_ADD("batch.lanes", lanes);
  numeric::BatchedValues system_values(
      static_cast<std::size_t>(reuse->system_pattern->nnz()), lanes);

  // last_* short-circuits the map on the common steady run of equal steps
  // (the key only changes at breakpoint-clipped steps and method switches).
  std::pair<std::int64_t, int> last_key{std::numeric_limits<std::int64_t>::min(),
                                        -1};
  const numeric::SparseLuBatch* last_factor = nullptr;
  const auto factorized = [&](double dt,
                              Integrator method) -> const numeric::SparseLuBatch& {
    const auto key = std::make_pair(quantize(dt), static_cast<int>(method));
    if (last_factor != nullptr && key == last_key) {
      OBS_COUNTER_ADD("cache.lu_dt_batch.hits", 1);
      return *last_factor;
    }
    auto it = lu_cache.find(key);
    if (it != lu_cache.end()) {
      OBS_COUNTER_ADD("cache.lu_dt_batch.hits", 1);
    } else {
      OBS_COUNTER_ADD("cache.lu_dt_batch.misses", 1);
    }
    if (it == lu_cache.end()) {
      const double scale = MnaAssembler::transient_scale(dt, method);
      for (std::size_t lane = 0; lane < lanes; ++lane)
        assemblers[lane].stamp_values_into(scale, system_values, lane);
      numeric::SparseLuBatch factor(*reuse->system_symbolic, lanes);
      factor.refactor(system_values);
      it = lu_cache.emplace(key, std::move(factor)).first;
    }
    last_key = key;
    last_factor = &it->second;
    return *last_factor;
  };

  // Per-(dt, integrator) companion coefficients, hoisted out of the step
  // kernels: g = (trap ? 2 : 1) * C / dt for capacitors, the inductor and
  // mutual history factors likewise. Each entry is computed with the exact
  // scalar-path expression, and the step loop's dt is RE-DERIVED from its
  // quantized key (dt = quantize(dt) * dt_quantum), so caching by key is
  // value-exact — this just moves ~element_count lane divisions per step
  // into the rare dt-change path, as the LU cache already does for stamping.
  struct StepCoeffs {
    std::int64_t key = std::numeric_limits<std::int64_t>::min();
    int method = -1;
    std::vector<double> cap_g, ind_h, mut_h;
  };
  StepCoeffs coeffs;
  coeffs.cap_g.resize(cap_c.size());
  coeffs.ind_h.resize(ind_l.size());
  coeffs.mut_h.resize(mut_m.size());
  const auto coeffs_for = [&](double dt, Integrator method) -> const StepCoeffs& {
    const std::int64_t key = quantize(dt);
    if (coeffs.key == key && coeffs.method == static_cast<int>(method))
      return coeffs;
    const bool trap = method == Integrator::kTrapezoidal;
    for (std::size_t i = 0; i < cap_c.size(); ++i)
      coeffs.cap_g[i] = (trap ? 2.0 : 1.0) * cap_c[i] / dt;
    for (std::size_t i = 0; i < ind_l.size(); ++i)
      coeffs.ind_h[i] = trap ? 2.0 * ind_l[i] / dt : ind_l[i] / dt;
    const double mutual_factor = trap ? 2.0 : 1.0;
    for (std::size_t i = 0; i < mut_m.size(); ++i)
      coeffs.mut_h[i] = mutual_factor * mut_m[i] / dt;
    coeffs.key = key;
    coeffs.method = static_cast<int>(method);
    return coeffs;
  };

  // --- recording: the shared time grid + ONE node column per lane ----------
  const std::size_t expected_steps =
      static_cast<std::size_t>(options.t_stop / dt_nominal) +
      2 * breakpoints.size() + 16;
  std::vector<double> times;
  times.reserve(expected_steps);
  std::vector<std::vector<double>> values(lanes);
  for (auto& column : values) column.reserve(expected_steps);

  // --- main loop: run_transient's grid walk, minus the (absent) buffer
  // event machinery. The stepping kernels run with a COMPILE-TIME lane
  // width W so the lane-inner loops unroll/vectorize exactly like the
  // SparseLuBatch kernels do; per lane the slot-update sequence (and every
  // expression) is the scalar transient_rhs_into / advance_state one, so
  // results stay bit-identical to W scalar runs.
  const double min_dt = dt_nominal * options.min_dt_fraction;
  numeric::BatchedValues solution(unknowns, lanes);

  const auto run_steps = [&](auto width) {
    constexpr std::size_t W = decltype(width)::value;

    // Batched transient RHS: transient_rhs_into with the lane loop innermost.
    // The dt-dependent companion factors come precomputed in `coeff` (each
    // the exact scalar-path expression; see coeffs_for above). The kernels
    // use the same vectorization recipe as SparseLuBatch::solve_kernel —
    // restrict-qualified base pointers, per-element staging arrays, and
    // `#pragma GCC unroll 1` to keep the lane loops as loops — because the
    // same phantom store/load aliasing otherwise compiles them scalar.
    const auto batched_rhs = [&](double dt, Integrator method,
                                 const StepCoeffs& coeff,
                                 numeric::BatchedValues& rhs) {
      // Only the node rows accumulate (+=) and need clearing: every branch
      // row — inductor and voltage-source alike — is assigned (=) below.
      std::fill_n(rhs.data(), n_nodes * W, 0.0);
      double* __restrict const r = rhs.data();
      const double* __restrict const nvp = nv.data();
      const double* __restrict const ci = cap_i.data();
      const double* __restrict const ii = ind_i.data();
      const double* __restrict const cg = coeff.cap_g.data();
      const double* __restrict const ih = coeff.ind_h.data();
      const double* __restrict const mh = coeff.mut_h.data();
      const double t_next = time + dt;
      const bool trap = method == Integrator::kTrapezoidal;

      // Capacitor companions (buffer input caps are absent: buffer-free).
      double hist[W];
      for (std::size_t k = 0; k < caps0.size(); ++k) {
        const NodeId n1 = caps0[k].n1, n2 = caps0[k].n2;
#pragma GCC unroll 1
        for (std::size_t lane = 0; lane < W; ++lane) {
          const double v_prev =
              (n1 == kGround ? 0.0
                             : nvp[static_cast<std::size_t>(n1) * W + lane]) -
              (n2 == kGround ? 0.0
                             : nvp[static_cast<std::size_t>(n2) * W + lane]);
          const double g = cg[k * W + lane];
          hist[lane] = trap ? g * v_prev + ci[k * W + lane] : g * v_prev;
        }
        if (n1 != kGround) {
          double* __restrict const rn = r + static_cast<std::size_t>(n1) * W;
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane) rn[lane] += hist[lane];
        }
        if (n2 != kGround) {
          double* __restrict const rn = r + static_cast<std::size_t>(n2) * W;
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane) rn[lane] -= hist[lane];
        }
      }

      // Inductor branch histories.
      for (std::size_t k = 0; k < inductors0.size(); ++k) {
        const NodeId n1 = inductors0[k].n1, n2 = inductors0[k].n2;
        double* __restrict const rj = r + ind_branch[k] * W;
#pragma GCC unroll 1
        for (std::size_t lane = 0; lane < W; ++lane) {
          const double v_prev =
              (n1 == kGround ? 0.0
                             : nvp[static_cast<std::size_t>(n1) * W + lane]) -
              (n2 == kGround ? 0.0
                             : nvp[static_cast<std::size_t>(n2) * W + lane]);
          if (trap)
            rj[lane] = -v_prev - ih[k * W + lane] * ii[k * W + lane];
          else
            rj[lane] = -ih[k * W + lane] * ii[k * W + lane];
        }
      }
      // Mutual-coupling history terms mirror the matrix cross stamps. The
      // two updates hit two DIFFERENT branch rows (ia != ib), so splitting
      // them into separate lane loops preserves each row's += sequence.
      for (std::size_t k = 0; k < mutuals0.size(); ++k) {
        const std::size_t ia = mutuals0[k].inductor_a, ib = mutuals0[k].inductor_b;
        double* __restrict const ra = r + ind_branch[ia] * W;
        double* __restrict const rb = r + ind_branch[ib] * W;
#pragma GCC unroll 1
        for (std::size_t lane = 0; lane < W; ++lane)
          ra[lane] -= mh[k * W + lane] * ii[ib * W + lane];
#pragma GCC unroll 1
        for (std::size_t lane = 0; lane < W; ++lane)
          rb[lane] -= mh[k * W + lane] * ii[ia * W + lane];
      }

      // Sources evaluated at the END of the step (implicit methods); a
      // lane-shared spec is evaluated once and broadcast.
      for (std::size_t k = 0; k < vsources0.size(); ++k) {
        double* __restrict const rj = r + vsrc_branch[k] * W;
        if (vsrc_shared[k]) {
          const double v = source_value(vsources0[k].spec, t_next);
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane) rj[lane] = v;
        } else {
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane)
            rj[lane] =
                source_value(circuits[lane].voltage_sources()[k].spec, t_next);
        }
      }
      for (std::size_t k = 0; k < isources0.size(); ++k) {
        const NodeId to = isources0[k].to, from = isources0[k].from;
        if (isrc_shared[k]) {
          const double i = source_value(isources0[k].spec, t_next);
          if (to != kGround) {
            double* __restrict const rn = r + static_cast<std::size_t>(to) * W;
#pragma GCC unroll 1
            for (std::size_t lane = 0; lane < W; ++lane) rn[lane] += i;
          }
          if (from != kGround) {
            double* __restrict const rn =
                r + static_cast<std::size_t>(from) * W;
#pragma GCC unroll 1
            for (std::size_t lane = 0; lane < W; ++lane) rn[lane] -= i;
          }
        } else {
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane) {
            const double i =
                source_value(circuits[lane].current_sources()[k].spec, t_next);
            if (to != kGround)
              r[static_cast<std::size_t>(to) * W + lane] += i;
            if (from != kGround)
              r[static_cast<std::size_t>(from) * W + lane] -= i;
          }
        }
      }
    };

    // Batched post-solve update: advance_state's history recurrences over
    // the SoA state (capacitor loop reads the OLD node voltages, which are
    // only overwritten afterwards, exactly as in the scalar version). The
    // restrict locals live in an inner block so the trailing copy through
    // nv.data() does not overlap their scope.
    const auto batched_advance = [&](const numeric::BatchedValues& sol,
                                     double dt, Integrator method,
                                     const StepCoeffs& coeff) {
      const bool trap = method == Integrator::kTrapezoidal;
      {
        const double* __restrict const s = sol.data();
        const double* __restrict const nvp = nv.data();
        double* __restrict const ci = cap_i.data();
        double* __restrict const ii = ind_i.data();
        const double* __restrict const cg = coeff.cap_g.data();
        for (std::size_t k = 0; k < caps0.size(); ++k) {
          const NodeId n1 = caps0[k].n1, n2 = caps0[k].n2;
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane) {
            const double v_old =
                (n1 == kGround ? 0.0
                               : nvp[static_cast<std::size_t>(n1) * W + lane]) -
                (n2 == kGround ? 0.0
                               : nvp[static_cast<std::size_t>(n2) * W + lane]);
            const double v_new =
                (n1 == kGround ? 0.0
                               : s[static_cast<std::size_t>(n1) * W + lane]) -
                (n2 == kGround ? 0.0
                               : s[static_cast<std::size_t>(n2) * W + lane]);
            const double g = cg[k * W + lane];
            ci[k * W + lane] = trap ? g * (v_new - v_old) - ci[k * W + lane]
                                    : g * (v_new - v_old);
          }
        }
        for (std::size_t k = 0; k < inductors0.size(); ++k) {
          const double* __restrict const sj = s + ind_branch[k] * W;
#pragma GCC unroll 1
          for (std::size_t lane = 0; lane < W; ++lane)
            ii[k * W + lane] = sj[lane];
        }
      }
      std::copy_n(sol.data(), n_nodes * W, nv.data());
      time += dt;
    };

    const auto record = [&]() {
      times.push_back(time);
#pragma GCC unroll 1
      for (std::size_t lane = 0; lane < W; ++lane)
        values[lane].push_back(
            nv[static_cast<std::size_t>(node_id[lane]) * W + lane]);
    };
    record();

    int be_steps_left = options.be_steps_after_breakpoint;
    while (time < options.t_stop - 0.5 * min_dt) {
      const auto next_bp = breakpoints.upper_bound(time + 0.5 * min_dt);
      const double bp_time =
          (next_bp != breakpoints.end()) ? *next_bp : options.t_stop;
      double dt = std::min(dt_nominal, bp_time - time);
      dt = std::min(dt, options.t_stop - time);
      dt = static_cast<double>(quantize(dt)) * dt_quantum;
      if (dt <= 0.0) break;

      const Integrator method =
          (be_steps_left > 0) ? Integrator::kBackwardEuler : options.integrator;

      const StepCoeffs& coeff = coeffs_for(dt, method);
      batched_rhs(dt, method, coeff, solution);
      factorized(dt, method).solve_in_place(solution);
      const bool lands_on_breakpoint =
          std::fabs((time + dt) - bp_time) <= 0.5 * min_dt;
      batched_advance(solution, dt, method, coeff);

      if (lands_on_breakpoint)
        be_steps_left = options.be_steps_after_breakpoint;
      else if (be_steps_left > 0)
        --be_steps_left;
      record();
    }
  };
  switch (lanes) {
    case 1: run_steps(std::integral_constant<std::size_t, 1>{}); break;
    case 4: run_steps(std::integral_constant<std::size_t, 4>{}); break;
    case 8: run_steps(std::integral_constant<std::size_t, 8>{}); break;
    default: return std::nullopt;  // unreachable: width validated on entry
  }

  // --- crossings; non-crossing lanes re-run the scalar auto-extend ---------
  std::vector<double> crossings(lanes, kNaN);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const Trace trace(times, values[lane]);
    if (const auto crossing = trace.crossing(level, 0.0, +1)) {
      crossings[lane] = *crossing;
      continue;
    }
    // run_until_crossing discards a non-crossing first window and re-runs at
    // 4x the horizon with the caller's dt policy — replicate its attempts
    // 2..4 (the batched pass above WAS attempt 1) so the lane's value stays
    // bit-identical to the scalar path's.
    TransientOptions scalar_options = options;
    const double dt0 = options.dt;
    scalar_options.t_stop = options.t_stop * 4.0;
    scalar_options.dt = dt0;
    bool crossed = false;
    for (int attempt = 1; attempt < 4; ++attempt) {
      const TransientResult result = run_transient(circuits[lane], scalar_options);
      const auto crossing = result.waveforms.trace(node).crossing(level, 0.0, +1);
      if (crossing) {
        crossings[lane] = *crossing;
        crossed = true;
        break;
      }
      scalar_options.t_stop *= 4.0;
      scalar_options.dt = dt0;
    }
    if (!crossed)
      throw std::runtime_error(std::string(context) + ": '" + node +
                               "' never crossed the threshold within the "
                               "(auto-extended) horizon");
  }
  return crossings;
}

}  // namespace rlcsim::sim
