#include "sim/mna.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlcsim::sim {
namespace {

// Adds `g` between nodes a and b in the conductance block.
void stamp_conductance(numeric::RealMatrix& m, NodeId a, NodeId b, double g) {
  if (a != kGround) {
    m(a, a) += g;
    if (b != kGround) {
      m(a, b) -= g;
      m(b, a) -= g;
    }
  }
  if (b != kGround) m(b, b) += g;
}

// Adds current `i` flowing INTO node a and OUT of node b.
void stamp_current(std::vector<double>& rhs, NodeId a, NodeId b, double i) {
  if (a != kGround) rhs[static_cast<std::size_t>(a)] += i;
  if (b != kGround) rhs[static_cast<std::size_t>(b)] -= i;
}

double node_voltage(const std::vector<double>& v, NodeId n) {
  return n == kGround ? 0.0 : v[static_cast<std::size_t>(n)];
}

}  // namespace

MnaAssembler::MnaAssembler(const Circuit& circuit) : circuit_(circuit) {
  circuit_.validate();
  n_nodes_ = circuit_.node_count();
  vsource_base_ = n_nodes_;
  inductor_base_ = vsource_base_ + circuit_.voltage_sources().size();
  n_unknowns_ = inductor_base_ + circuit_.inductors().size();
}

std::size_t MnaAssembler::vsource_branch(std::size_t vsource_index) const {
  return vsource_base_ + vsource_index;
}

std::size_t MnaAssembler::inductor_branch(std::size_t inductor_index) const {
  return inductor_base_ + inductor_index;
}

numeric::RealMatrix MnaAssembler::dc_matrix(double gmin) const {
  numeric::RealMatrix m(n_unknowns_, n_unknowns_);
  for (std::size_t i = 0; i < n_nodes_; ++i) m(i, i) += gmin;

  for (const auto& r : circuit_.resistors())
    stamp_conductance(m, r.n1, r.n2, 1.0 / r.resistance);

  // Capacitors are open at DC: no stamp.

  // Inductors are shorts at DC: branch equation v1 - v2 = 0, KCL couples j.
  const auto& inductors = circuit_.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k) {
    const auto& l = inductors[k];
    const std::size_t j = inductor_branch(k);
    if (l.n1 != kGround) {
      m(l.n1, j) += 1.0;
      m(j, l.n1) += 1.0;
    }
    if (l.n2 != kGround) {
      m(l.n2, j) -= 1.0;
      m(j, l.n2) -= 1.0;
    }
  }

  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k) {
    const auto& v = vsources[k];
    const std::size_t j = vsource_branch(k);
    if (v.positive != kGround) {
      m(v.positive, j) += 1.0;
      m(j, v.positive) += 1.0;
    }
    if (v.negative != kGround) {
      m(v.negative, j) -= 1.0;
      m(j, v.negative) -= 1.0;
    }
  }

  // Buffer output stage: conductance 1/Rout from output node to ground.
  for (const auto& b : circuit_.buffers())
    stamp_conductance(m, b.output, kGround, 1.0 / b.output_resistance);

  return m;
}

std::vector<double> MnaAssembler::dc_rhs(double t, const TransientState& state) const {
  std::vector<double> rhs(n_unknowns_, 0.0);
  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k)
    rhs[vsource_branch(k)] = source_value(vsources[k].spec, t);
  for (const auto& i : circuit_.current_sources())
    stamp_current(rhs, i.to, i.from, source_value(i.spec, t));
  const auto& buffers = circuit_.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    const double fire =
        state.buffer_fire_time.empty() ? std::numeric_limits<double>::infinity()
                                       : state.buffer_fire_time[k];
    const double v = buffer_drive(b, fire, t);
    stamp_current(rhs, b.output, kGround, v / b.output_resistance);
  }
  return rhs;
}

numeric::RealMatrix MnaAssembler::transient_matrix(double dt, Integrator method) const {
  if (!(dt > 0.0)) throw std::invalid_argument("transient_matrix: dt must be > 0");
  numeric::RealMatrix m(n_unknowns_, n_unknowns_);

  for (const auto& r : circuit_.resistors())
    stamp_conductance(m, r.n1, r.n2, 1.0 / r.resistance);

  const double cap_factor = (method == Integrator::kTrapezoidal) ? 2.0 : 1.0;
  for (const auto& c : circuit_.capacitors())
    stamp_conductance(m, c.n1, c.n2, cap_factor * c.capacitance / dt);

  // Inductor branch: v1 - v2 - (factor * L / dt) j = history.
  const double ind_factor = (method == Integrator::kTrapezoidal) ? 2.0 : 1.0;
  const auto& inductors = circuit_.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k) {
    const auto& l = inductors[k];
    const std::size_t j = inductor_branch(k);
    if (l.n1 != kGround) {
      m(l.n1, j) += 1.0;
      m(j, l.n1) += 1.0;
    }
    if (l.n2 != kGround) {
      m(l.n2, j) -= 1.0;
      m(j, l.n2) -= 1.0;
    }
    m(j, j) -= ind_factor * l.inductance / dt;
  }

  // Mutual couplings add symmetric cross terms between inductor branch rows:
  // v_a = La dja/dt + M djb/dt (and vice versa).
  for (const auto& mutual : circuit_.mutuals()) {
    const std::size_t ja = inductor_branch(mutual.inductor_a);
    const std::size_t jb = inductor_branch(mutual.inductor_b);
    m(ja, jb) -= ind_factor * mutual.mutual / dt;
    m(jb, ja) -= ind_factor * mutual.mutual / dt;
  }

  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k) {
    const auto& v = vsources[k];
    const std::size_t j = vsource_branch(k);
    if (v.positive != kGround) {
      m(v.positive, j) += 1.0;
      m(j, v.positive) += 1.0;
    }
    if (v.negative != kGround) {
      m(v.negative, j) -= 1.0;
      m(j, v.negative) -= 1.0;
    }
  }

  for (const auto& b : circuit_.buffers()) {
    stamp_conductance(m, b.output, kGround, 1.0 / b.output_resistance);
    if (b.input_capacitance > 0.0)
      stamp_conductance(m, b.input, kGround, cap_factor * b.input_capacitance / dt);
  }

  return m;
}

std::vector<double> MnaAssembler::transient_rhs(double dt, Integrator method,
                                                const TransientState& state) const {
  std::vector<double> rhs(n_unknowns_, 0.0);
  const double t_next = state.time + dt;
  const bool trap = method == Integrator::kTrapezoidal;

  // Capacitor companions.
  const auto& caps = circuit_.capacitors();
  for (std::size_t k = 0; k < caps.size(); ++k) {
    const auto& c = caps[k];
    const double v_prev =
        node_voltage(state.node_voltage, c.n1) - node_voltage(state.node_voltage, c.n2);
    const double g = (trap ? 2.0 : 1.0) * c.capacitance / dt;
    const double i_hist = trap ? g * v_prev + state.capacitor_current[k] : g * v_prev;
    stamp_current(rhs, c.n1, c.n2, i_hist);
  }

  // Buffer input capacitance companions. History current for buffer input
  // caps is folded into the same formula with i_prev tracked in
  // capacitor_current beyond the plain capacitors (see initial_state).
  const auto& buffers = circuit_.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    if (b.input_capacitance <= 0.0) continue;
    const std::size_t slot = caps.size() + k;
    const double v_prev = node_voltage(state.node_voltage, b.input);
    const double g = (trap ? 2.0 : 1.0) * b.input_capacitance / dt;
    const double i_hist = trap ? g * v_prev + state.capacitor_current[slot] : g * v_prev;
    stamp_current(rhs, b.input, kGround, i_hist);
  }

  // Inductor branch histories.
  const auto& inductors = circuit_.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k) {
    const auto& l = inductors[k];
    const std::size_t j = inductor_branch(k);
    const double v_prev =
        node_voltage(state.node_voltage, l.n1) - node_voltage(state.node_voltage, l.n2);
    if (trap)
      rhs[j] = -v_prev - (2.0 * l.inductance / dt) * state.inductor_current[k];
    else
      rhs[j] = -(l.inductance / dt) * state.inductor_current[k];
  }
  // Mutual-coupling history terms mirror the matrix cross stamps.
  const double mutual_factor = trap ? 2.0 : 1.0;
  for (const auto& mutual : circuit_.mutuals()) {
    const std::size_t ja = inductor_branch(mutual.inductor_a);
    const std::size_t jb = inductor_branch(mutual.inductor_b);
    rhs[ja] -= (mutual_factor * mutual.mutual / dt) *
               state.inductor_current[mutual.inductor_b];
    rhs[jb] -= (mutual_factor * mutual.mutual / dt) *
               state.inductor_current[mutual.inductor_a];
  }

  // Sources evaluated at the END of the step (implicit methods).
  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k)
    rhs[vsource_branch(k)] = source_value(vsources[k].spec, t_next);
  for (const auto& i : circuit_.current_sources())
    stamp_current(rhs, i.to, i.from, source_value(i.spec, t_next));
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    const double v = buffer_drive(b, state.buffer_fire_time[k], t_next);
    stamp_current(rhs, b.output, kGround, v / b.output_resistance);
  }

  return rhs;
}

TransientState MnaAssembler::initial_state(const std::vector<double>& dc_solution) const {
  if (dc_solution.size() != n_unknowns_)
    throw std::invalid_argument("initial_state: solution size mismatch");
  TransientState s;
  s.time = 0.0;
  s.node_voltage.assign(dc_solution.begin(),
                        dc_solution.begin() + static_cast<std::ptrdiff_t>(n_nodes_));
  // One history-current slot per capacitor, then one per buffer input cap.
  s.capacitor_current.assign(
      circuit_.capacitors().size() + circuit_.buffers().size(), 0.0);
  s.inductor_current.resize(circuit_.inductors().size());
  for (std::size_t k = 0; k < circuit_.inductors().size(); ++k)
    s.inductor_current[k] = dc_solution[inductor_branch(k)];
  s.buffer_fire_time.assign(circuit_.buffers().size(),
                            std::numeric_limits<double>::infinity());
  return s;
}

void MnaAssembler::advance_state(const std::vector<double>& solution, double dt,
                                 Integrator method, TransientState& state) const {
  if (solution.size() != n_unknowns_)
    throw std::invalid_argument("advance_state: solution size mismatch");
  const bool trap = method == Integrator::kTrapezoidal;

  std::vector<double> new_voltages(
      solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(n_nodes_));

  // Capacitor history currents: i_new = g (v_new - v_old) - i_old (trap)
  //                             i_new = g (v_new - v_old)          (BE)
  const auto& caps = circuit_.capacitors();
  for (std::size_t k = 0; k < caps.size(); ++k) {
    const auto& c = caps[k];
    const double v_old =
        node_voltage(state.node_voltage, c.n1) - node_voltage(state.node_voltage, c.n2);
    const double v_new = node_voltage(new_voltages, c.n1) - node_voltage(new_voltages, c.n2);
    const double g = (trap ? 2.0 : 1.0) * c.capacitance / dt;
    state.capacitor_current[k] =
        trap ? g * (v_new - v_old) - state.capacitor_current[k] : g * (v_new - v_old);
  }
  const auto& buffers = circuit_.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    if (b.input_capacitance <= 0.0) continue;
    const std::size_t slot = caps.size() + k;
    const double v_old = node_voltage(state.node_voltage, b.input);
    const double v_new = node_voltage(new_voltages, b.input);
    const double g = (trap ? 2.0 : 1.0) * b.input_capacitance / dt;
    state.capacitor_current[slot] =
        trap ? g * (v_new - v_old) - state.capacitor_current[slot]
             : g * (v_new - v_old);
  }

  for (std::size_t k = 0; k < circuit_.inductors().size(); ++k)
    state.inductor_current[k] = solution[inductor_branch(k)];

  state.node_voltage = std::move(new_voltages);
  state.time += dt;
}

double MnaAssembler::buffer_drive(const Buffer& buffer, double fire_time, double t) {
  return (t >= fire_time) ? buffer.vdd : 0.0;
}

}  // namespace rlcsim::sim
