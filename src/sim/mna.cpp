#include "sim/mna.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/sparse_batch.h"

namespace rlcsim::sim {
namespace {

// Adds current `i` flowing INTO node a and OUT of node b.
void stamp_current(std::vector<double>& rhs, NodeId a, NodeId b, double i) {
  if (a != kGround) rhs[static_cast<std::size_t>(a)] += i;
  if (b != kGround) rhs[static_cast<std::size_t>(b)] -= i;
}

double node_voltage(const std::vector<double>& v, NodeId n) {
  return n == kGround ? 0.0 : v[static_cast<std::size_t>(n)];
}

// Adds `g` between nodes a and b into a triplet set.
void stamp_conductance(std::vector<numeric::Triplet<double>>& t, NodeId a, NodeId b,
                       double g) {
  if (a != kGround) {
    t.push_back({a, a, g});
    if (b != kGround) {
      t.push_back({a, b, -g});
      t.push_back({b, a, -g});
    }
  }
  if (b != kGround) t.push_back({b, b, g});
}

// Symmetric +/-1 incidence between a node pair and a branch row/column.
void stamp_branch_incidence(std::vector<numeric::Triplet<double>>& t, NodeId n1,
                            NodeId n2, int branch) {
  if (n1 != kGround) {
    t.push_back({n1, branch, 1.0});
    t.push_back({branch, n1, 1.0});
  }
  if (n2 != kGround) {
    t.push_back({n2, branch, -1.0});
    t.push_back({branch, n2, -1.0});
  }
}

}  // namespace

bool use_sparse_solver(SolverKind solver, std::size_t unknowns) {
  switch (solver) {
    case SolverKind::kDense:
      return false;
    case SolverKind::kSparse:
      return true;
    case SolverKind::kAuto:
      break;
  }
  return unknowns >= kSparseSolverThreshold;
}

MnaAssembler::MnaAssembler(const Circuit& circuit) : circuit_(circuit) {
  circuit_.validate();
  n_nodes_ = circuit_.node_count();
  vsource_base_ = n_nodes_;
  inductor_base_ = vsource_base_ + circuit_.voltage_sources().size();
  n_unknowns_ = inductor_base_ + circuit_.inductors().size();
  stamp_system();
}

std::size_t MnaAssembler::vsource_branch(std::size_t vsource_index) const {
  return vsource_base_ + vsource_index;
}

std::size_t MnaAssembler::inductor_branch(std::size_t inductor_index) const {
  return inductor_base_ + inductor_index;
}

void MnaAssembler::stamp_system() {
  // ---- G: conductances and incidence (timestep/frequency independent) ----
  for (const auto& r : circuit_.resistors())
    stamp_conductance(g_triplets_, r.n1, r.n2, 1.0 / r.resistance);

  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k)
    stamp_branch_incidence(g_triplets_, vsources[k].positive, vsources[k].negative,
                           static_cast<int>(vsource_branch(k)));

  const auto& inductors = circuit_.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k)
    stamp_branch_incidence(g_triplets_, inductors[k].n1, inductors[k].n2,
                           static_cast<int>(inductor_branch(k)));

  for (const auto& b : circuit_.buffers())
    stamp_conductance(g_triplets_, b.output, kGround, 1.0 / b.output_resistance);

  // ---- C: capacitances and -L/-M branch terms; the assembled system is
  // G + scale*C with scale = factor/dt (transient companion) or s (AC) ----
  for (const auto& c : circuit_.capacitors())
    stamp_conductance(c_triplets_, c.n1, c.n2, c.capacitance);

  for (const auto& b : circuit_.buffers())
    if (b.input_capacitance > 0.0)
      stamp_conductance(c_triplets_, b.input, kGround, b.input_capacitance);

  for (std::size_t k = 0; k < inductors.size(); ++k) {
    const int j = static_cast<int>(inductor_branch(k));
    c_triplets_.push_back({j, j, -inductors[k].inductance});
  }
  for (const auto& mutual : circuit_.mutuals()) {
    const int ja = static_cast<int>(inductor_branch(mutual.inductor_a));
    const int jb = static_cast<int>(inductor_branch(mutual.inductor_b));
    c_triplets_.push_back({ja, jb, -mutual.mutual});
    c_triplets_.push_back({jb, ja, -mutual.mutual});
  }

  // ---- merged pattern + value slots --------------------------------------
  std::vector<std::pair<int, int>> positions;
  positions.reserve(g_triplets_.size() + c_triplets_.size());
  for (const auto& t : g_triplets_) positions.emplace_back(t.row, t.col);
  for (const auto& t : c_triplets_) positions.emplace_back(t.row, t.col);
  std::vector<int> slots;
  pattern_ = numeric::build_pattern(static_cast<int>(n_unknowns_), positions, &slots);
  g_slots_.assign(slots.begin(), slots.begin() + static_cast<std::ptrdiff_t>(g_triplets_.size()));
  c_slots_.assign(slots.begin() + static_cast<std::ptrdiff_t>(g_triplets_.size()), slots.end());
}

void MnaAssembler::system_values(double scale, std::vector<double>& out) const {
  out.assign(static_cast<std::size_t>(pattern_->nnz()), 0.0);
  for (std::size_t k = 0; k < g_triplets_.size(); ++k)
    out[static_cast<std::size_t>(g_slots_[k])] += g_triplets_[k].value;
  for (std::size_t k = 0; k < c_triplets_.size(); ++k)
    out[static_cast<std::size_t>(c_slots_[k])] += scale * c_triplets_[k].value;
}

void MnaAssembler::system_values(std::complex<double> scale,
                                 std::vector<std::complex<double>>& out) const {
  out.assign(static_cast<std::size_t>(pattern_->nnz()), std::complex<double>{});
  for (std::size_t k = 0; k < g_triplets_.size(); ++k)
    out[static_cast<std::size_t>(g_slots_[k])] += g_triplets_[k].value;
  for (std::size_t k = 0; k < c_triplets_.size(); ++k)
    out[static_cast<std::size_t>(c_slots_[k])] += scale * c_triplets_[k].value;
}

void MnaAssembler::stamp_values_into(double scale, numeric::BatchedValues& out,
                                     std::size_t lane) const {
  if (out.slots() != static_cast<std::size_t>(pattern_->nnz()))
    throw std::invalid_argument(
        "MnaAssembler::stamp_values_into: slot count does not match the "
        "system pattern");
  out.clear_lane(lane);
  for (std::size_t k = 0; k < g_triplets_.size(); ++k)
    out.at(static_cast<std::size_t>(g_slots_[k]), lane) += g_triplets_[k].value;
  for (std::size_t k = 0; k < c_triplets_.size(); ++k)
    out.at(static_cast<std::size_t>(c_slots_[k]), lane) +=
        scale * c_triplets_[k].value;
}

void MnaAssembler::conductance_values(std::vector<double>& out) const {
  out.assign(static_cast<std::size_t>(pattern_->nnz()), 0.0);
  for (std::size_t k = 0; k < g_triplets_.size(); ++k)
    out[static_cast<std::size_t>(g_slots_[k])] += g_triplets_[k].value;
}

void MnaAssembler::susceptance_values(std::vector<double>& out) const {
  out.assign(static_cast<std::size_t>(pattern_->nnz()), 0.0);
  for (std::size_t k = 0; k < c_triplets_.size(); ++k)
    out[static_cast<std::size_t>(c_slots_[k])] += c_triplets_[k].value;
}

std::vector<double> MnaAssembler::vsource_vector(std::size_t vsource_index) const {
  if (vsource_index >= circuit_.voltage_sources().size())
    throw std::invalid_argument("vsource_vector: index out of range");
  std::vector<double> b(n_unknowns_, 0.0);
  b[vsource_branch(vsource_index)] = 1.0;
  return b;
}

std::vector<double> MnaAssembler::isource_vector(std::size_t isource_index) const {
  if (isource_index >= circuit_.current_sources().size())
    throw std::invalid_argument("isource_vector: index out of range");
  std::vector<double> b(n_unknowns_, 0.0);
  const auto& source = circuit_.current_sources()[isource_index];
  stamp_current(b, source.to, source.from, 1.0);
  return b;
}

std::vector<double> MnaAssembler::buffer_vector(std::size_t buffer_index) const {
  if (buffer_index >= circuit_.buffers().size())
    throw std::invalid_argument("buffer_vector: index out of range");
  std::vector<double> b(n_unknowns_, 0.0);
  const auto& buffer = circuit_.buffers()[buffer_index];
  stamp_current(b, buffer.output, kGround, 1.0 / buffer.output_resistance);
  return b;
}

std::vector<double> MnaAssembler::node_selector(NodeId node) const {
  if (node == kGround || node < 0 || static_cast<std::size_t>(node) >= n_nodes_)
    throw std::invalid_argument("node_selector: not a non-ground circuit node");
  std::vector<double> l(n_unknowns_, 0.0);
  l[static_cast<std::size_t>(node)] = 1.0;
  return l;
}

double MnaAssembler::transient_scale(double dt, Integrator method) {
  if (!(dt > 0.0)) throw std::invalid_argument("transient_matrix: dt must be > 0");
  return (method == Integrator::kTrapezoidal ? 2.0 : 1.0) / dt;
}

numeric::RealSparse MnaAssembler::dc_sparse(double gmin) const {
  std::vector<numeric::Triplet<double>> t;
  for (std::size_t i = 0; i < n_nodes_; ++i)
    t.push_back({static_cast<int>(i), static_cast<int>(i), gmin});

  for (const auto& r : circuit_.resistors())
    stamp_conductance(t, r.n1, r.n2, 1.0 / r.resistance);

  // Capacitors are open at DC: no stamp.

  // Inductors are shorts at DC: branch equation v1 - v2 = 0, KCL couples j.
  const auto& inductors = circuit_.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k)
    stamp_branch_incidence(t, inductors[k].n1, inductors[k].n2,
                           static_cast<int>(inductor_branch(k)));

  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k)
    stamp_branch_incidence(t, vsources[k].positive, vsources[k].negative,
                           static_cast<int>(vsource_branch(k)));

  // Buffer output stage: conductance 1/Rout from output node to ground.
  for (const auto& b : circuit_.buffers())
    stamp_conductance(t, b.output, kGround, 1.0 / b.output_resistance);

  return numeric::RealSparse(static_cast<int>(n_unknowns_), t);
}

numeric::RealMatrix MnaAssembler::dc_matrix(double gmin) const {
  return dc_sparse(gmin).to_dense();
}

std::vector<double> MnaAssembler::dc_rhs(double t, const TransientState& state) const {
  std::vector<double> rhs(n_unknowns_, 0.0);
  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k)
    rhs[vsource_branch(k)] = source_value(vsources[k].spec, t);
  for (const auto& i : circuit_.current_sources())
    stamp_current(rhs, i.to, i.from, source_value(i.spec, t));
  const auto& buffers = circuit_.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    const double fire =
        state.buffer_fire_time.empty() ? std::numeric_limits<double>::infinity()
                                       : state.buffer_fire_time[k];
    const double v = buffer_drive(b, fire, t);
    stamp_current(rhs, b.output, kGround, v / b.output_resistance);
  }
  return rhs;
}

numeric::RealMatrix MnaAssembler::transient_matrix(double dt, Integrator method) const {
  std::vector<double> values;
  system_values(transient_scale(dt, method), values);
  return numeric::RealSparse(pattern_, std::move(values)).to_dense();
}

void MnaAssembler::transient_rhs_into(double dt, Integrator method,
                                      const TransientState& state,
                                      std::vector<double>& rhs) const {
  rhs.assign(n_unknowns_, 0.0);
  const double t_next = state.time + dt;
  const bool trap = method == Integrator::kTrapezoidal;

  // Capacitor companions.
  const auto& caps = circuit_.capacitors();
  for (std::size_t k = 0; k < caps.size(); ++k) {
    const auto& c = caps[k];
    const double v_prev =
        node_voltage(state.node_voltage, c.n1) - node_voltage(state.node_voltage, c.n2);
    const double g = (trap ? 2.0 : 1.0) * c.capacitance / dt;
    const double i_hist = trap ? g * v_prev + state.capacitor_current[k] : g * v_prev;
    stamp_current(rhs, c.n1, c.n2, i_hist);
  }

  // Buffer input capacitance companions. History current for buffer input
  // caps is folded into the same formula with i_prev tracked in
  // capacitor_current beyond the plain capacitors (see initial_state).
  const auto& buffers = circuit_.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    if (b.input_capacitance <= 0.0) continue;
    const std::size_t slot = caps.size() + k;
    const double v_prev = node_voltage(state.node_voltage, b.input);
    const double g = (trap ? 2.0 : 1.0) * b.input_capacitance / dt;
    const double i_hist = trap ? g * v_prev + state.capacitor_current[slot] : g * v_prev;
    stamp_current(rhs, b.input, kGround, i_hist);
  }

  // Inductor branch histories.
  const auto& inductors = circuit_.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k) {
    const auto& l = inductors[k];
    const std::size_t j = inductor_branch(k);
    const double v_prev =
        node_voltage(state.node_voltage, l.n1) - node_voltage(state.node_voltage, l.n2);
    if (trap)
      rhs[j] = -v_prev - (2.0 * l.inductance / dt) * state.inductor_current[k];
    else
      rhs[j] = -(l.inductance / dt) * state.inductor_current[k];
  }
  // Mutual-coupling history terms mirror the matrix cross stamps.
  const double mutual_factor = trap ? 2.0 : 1.0;
  for (const auto& mutual : circuit_.mutuals()) {
    const std::size_t ja = inductor_branch(mutual.inductor_a);
    const std::size_t jb = inductor_branch(mutual.inductor_b);
    rhs[ja] -= (mutual_factor * mutual.mutual / dt) *
               state.inductor_current[mutual.inductor_b];
    rhs[jb] -= (mutual_factor * mutual.mutual / dt) *
               state.inductor_current[mutual.inductor_a];
  }

  // Sources evaluated at the END of the step (implicit methods).
  const auto& vsources = circuit_.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k)
    rhs[vsource_branch(k)] = source_value(vsources[k].spec, t_next);
  for (const auto& i : circuit_.current_sources())
    stamp_current(rhs, i.to, i.from, source_value(i.spec, t_next));
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    const double v = buffer_drive(b, state.buffer_fire_time[k], t_next);
    stamp_current(rhs, b.output, kGround, v / b.output_resistance);
  }
}

std::vector<double> MnaAssembler::transient_rhs(double dt, Integrator method,
                                                const TransientState& state) const {
  std::vector<double> rhs;
  transient_rhs_into(dt, method, state, rhs);
  return rhs;
}

TransientState MnaAssembler::initial_state(const std::vector<double>& dc_solution) const {
  if (dc_solution.size() != n_unknowns_)
    throw std::invalid_argument("initial_state: solution size mismatch");
  TransientState s;
  s.time = 0.0;
  s.node_voltage.assign(dc_solution.begin(),
                        dc_solution.begin() + static_cast<std::ptrdiff_t>(n_nodes_));
  // One history-current slot per capacitor, then one per buffer input cap.
  s.capacitor_current.assign(
      circuit_.capacitors().size() + circuit_.buffers().size(), 0.0);
  s.inductor_current.resize(circuit_.inductors().size());
  for (std::size_t k = 0; k < circuit_.inductors().size(); ++k)
    s.inductor_current[k] = dc_solution[inductor_branch(k)];
  s.buffer_fire_time.assign(circuit_.buffers().size(),
                            std::numeric_limits<double>::infinity());
  return s;
}

void MnaAssembler::advance_state(const std::vector<double>& solution, double dt,
                                 Integrator method, TransientState& state) const {
  if (solution.size() != n_unknowns_)
    throw std::invalid_argument("advance_state: solution size mismatch");
  const bool trap = method == Integrator::kTrapezoidal;

  // The first n_nodes_ entries of `solution` are the new node voltages; the
  // histories are updated straight from them (no temporary copy) and the
  // state vector is overwritten last.
  // Capacitor history currents: i_new = g (v_new - v_old) - i_old (trap)
  //                             i_new = g (v_new - v_old)          (BE)
  const auto& caps = circuit_.capacitors();
  for (std::size_t k = 0; k < caps.size(); ++k) {
    const auto& c = caps[k];
    const double v_old =
        node_voltage(state.node_voltage, c.n1) - node_voltage(state.node_voltage, c.n2);
    const double v_new = node_voltage(solution, c.n1) - node_voltage(solution, c.n2);
    const double g = (trap ? 2.0 : 1.0) * c.capacitance / dt;
    state.capacitor_current[k] =
        trap ? g * (v_new - v_old) - state.capacitor_current[k] : g * (v_new - v_old);
  }
  const auto& buffers = circuit_.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    const auto& b = buffers[k];
    if (b.input_capacitance <= 0.0) continue;
    const std::size_t slot = caps.size() + k;
    const double v_old = node_voltage(state.node_voltage, b.input);
    const double v_new = node_voltage(solution, b.input);
    const double g = (trap ? 2.0 : 1.0) * b.input_capacitance / dt;
    state.capacitor_current[slot] =
        trap ? g * (v_new - v_old) - state.capacitor_current[slot]
             : g * (v_new - v_old);
  }

  for (std::size_t k = 0; k < circuit_.inductors().size(); ++k)
    state.inductor_current[k] = solution[inductor_branch(k)];

  state.node_voltage.assign(solution.begin(),
                            solution.begin() + static_cast<std::ptrdiff_t>(n_nodes_));
  state.time += dt;
}

double MnaAssembler::buffer_drive(const Buffer& buffer, double fire_time, double t) {
  // The value AT the fire instant is the pre-switch level (matching the
  // StepSpec convention in source_value), and an output_rise > 0 ramps
  // linearly to the post-switch level.
  if (!(t > fire_time)) return buffer.output_v0;
  if (buffer.output_rise <= 0.0 || t >= fire_time + buffer.output_rise)
    return buffer.output_v1;
  return buffer.output_v0 + (buffer.output_v1 - buffer.output_v0) *
                                (t - fire_time) / buffer.output_rise;
}

}  // namespace rlcsim::sim
