// Modified Nodal Analysis assembly.
//
// Unknown vector layout: [ node voltages (0..N-1) | voltage-source branch
// currents | inductor branch currents ]. Capacitors enter through Norton
// companion models (conductance + history current source); inductors keep
// their branch current as an unknown so zero-resistance inductive loops stay
// well-conditioned. Buffers contribute their input capacitance and a Norton
// (source/Rout) output stage, so they add no extra unknowns.
#pragma once

#include <vector>

#include "numeric/matrix.h"
#include "sim/circuit.h"

namespace rlcsim::sim {

enum class Integrator {
  kBackwardEuler,
  kTrapezoidal,
};

// Dynamic state carried between transient steps.
struct TransientState {
  double time = 0.0;
  std::vector<double> node_voltage;       // size N
  std::vector<double> capacitor_current;  // per capacitor (trapezoidal history)
  std::vector<double> inductor_current;   // per inductor
  std::vector<double> buffer_fire_time;   // per buffer; +inf until fired
};

class MnaAssembler {
 public:
  explicit MnaAssembler(const Circuit& circuit);

  std::size_t node_count() const { return n_nodes_; }
  std::size_t unknown_count() const { return n_unknowns_; }
  std::size_t vsource_branch(std::size_t vsource_index) const;
  std::size_t inductor_branch(std::size_t inductor_index) const;

  // DC operating point matrix/RHS at time t: capacitors removed, inductors
  // shorted (their branch equation becomes v1 - v2 = 0). A Gmin conductance
  // is added on every node so capacitor-only nodes do not make the matrix
  // singular.
  numeric::RealMatrix dc_matrix(double gmin = 1e-12) const;
  std::vector<double> dc_rhs(double t, const TransientState& state) const;

  // Companion-model transient matrix for step size dt. Depends only on dt
  // and the integrator, so callers cache the LU factorization per dt.
  numeric::RealMatrix transient_matrix(double dt, Integrator method) const;

  // RHS for advancing from `state` (at time state.time) to state.time + dt.
  std::vector<double> transient_rhs(double dt, Integrator method,
                                    const TransientState& state) const;

  // Initializes state from a DC solution vector.
  TransientState initial_state(const std::vector<double>& dc_solution) const;

  // Post-solve state update: extracts new node voltages, recomputes companion
  // histories. `solution` is the MNA unknown vector at state.time + dt.
  void advance_state(const std::vector<double>& solution, double dt, Integrator method,
                     TransientState& state) const;

  // Buffer output source voltage at time t given its fire time.
  static double buffer_drive(const Buffer& buffer, double fire_time, double t);

 private:
  const Circuit& circuit_;
  std::size_t n_nodes_ = 0;
  std::size_t n_unknowns_ = 0;
  std::size_t vsource_base_ = 0;
  std::size_t inductor_base_ = 0;
};

}  // namespace rlcsim::sim
