// Modified Nodal Analysis assembly.
//
// Unknown vector layout: [ node voltages (0..N-1) | voltage-source branch
// currents | inductor branch currents ]. Capacitors enter through Norton
// companion models (conductance + history current source); inductors keep
// their branch current as an unknown so zero-resistance inductive loops stay
// well-conditioned. Buffers contribute their input capacitance and a Norton
// (source/Rout) output stage, so they add no extra unknowns.
//
// The assembler stamps the circuit ONCE, at construction, into two
// frequency/timestep-independent triplet sets sharing one sparsity pattern:
//
//   G — conductances and source/inductor incidence (+/-1) entries;
//   C — capacitances, and the inductor -L / mutual -M branch entries.
//
// Every system the simulator ever solves is then a value-only rescale
//
//   transient:  G + (factor/dt) * C      (factor = 1 BE, 2 trapezoidal)
//   AC:         G + s * C                (s = j*2*pi*f)
//
// so a transient run or an AC sweep assembles the pattern exactly once and
// only rewrites the CSR value array afterwards. The dense matrices returned
// by dc_matrix()/transient_matrix() are densified from the same triplets and
// serve as the small-system fast path and the correctness oracle.
#pragma once

#include <complex>
#include <vector>

#include "numeric/matrix.h"
#include "numeric/sparse.h"
#include "sim/circuit.h"

namespace rlcsim::numeric {
class BatchedValues;  // numeric/sparse_batch.h
}

namespace rlcsim::sim {

enum class Integrator {
  kBackwardEuler,
  kTrapezoidal,
};

// Linear-solver selection for the analyses.
enum class SolverKind {
  kAuto,    // dense below kSparseSolverThreshold unknowns, sparse above
  kDense,   // force the dense LU (correctness oracle)
  kSparse,  // force the sparse LU
};

// Unknown count at/above which SolverKind::kAuto picks the sparse LU. Below
// it the dense factorization wins on constant factors and doubles as the
// correctness oracle.
inline constexpr std::size_t kSparseSolverThreshold = 64;

// Resolves a SolverKind against a system size.
bool use_sparse_solver(SolverKind solver, std::size_t unknowns);

// Dynamic state carried between transient steps.
struct TransientState {
  double time = 0.0;
  std::vector<double> node_voltage;       // size N
  std::vector<double> capacitor_current;  // per capacitor (trapezoidal history)
  std::vector<double> inductor_current;   // per inductor
  std::vector<double> buffer_fire_time;   // per buffer; +inf until fired
};

class MnaAssembler {
 public:
  explicit MnaAssembler(const Circuit& circuit);

  std::size_t node_count() const { return n_nodes_; }
  std::size_t unknown_count() const { return n_unknowns_; }
  std::size_t vsource_branch(std::size_t vsource_index) const;
  std::size_t inductor_branch(std::size_t inductor_index) const;

  // ---- shared G + scale*C system (transient & AC hot paths) --------------

  // Sparsity pattern of G union C, built once in the constructor.
  const numeric::SparsePatternPtr& system_pattern() const { return pattern_; }

  // CSR values of G + scale*C over system_pattern(). `out` is resized to
  // nnz; no other allocation.
  void system_values(double scale, std::vector<double>& out) const;
  void system_values(std::complex<double> scale,
                     std::vector<std::complex<double>>& out) const;

  // Scenario-batched stamping seam: writes G + scale*C into ONE lane of a
  // BatchedValues whose slot count is system_pattern()->nnz(), with the
  // exact accumulation order of system_values() — the lane's contents are
  // bit-identical to the scalar value vector, so a SparseLuBatch refactor
  // over W stamped lanes reproduces W scalar refactors exactly.
  void stamp_values_into(double scale, numeric::BatchedValues& out,
                         std::size_t lane) const;

  // Companion-model transient scale factor/dt for the C block.
  static double transient_scale(double dt, Integrator method);

  // ---- port/observable extraction (model-order reduction seam) -----------
  //
  // The s-domain view the mor/ layer reduces:
  //
  //   (G + sC) x(s) = B u(s),   y(s) = L^T x(s)
  //
  // where the columns of B are the unit-amplitude incidence vectors of the
  // circuit's sources (scale by the actual source swing to reproduce the
  // assembled RHS contribution) and the columns of L are node selectors.
  // G and C are exposed separately over the SAME system_pattern() the
  // transient/AC hot paths use, so a reduction shares their sparsity work.

  // CSR values of G alone (scale-independent stamps) over system_pattern().
  void conductance_values(std::vector<double>& out) const;
  // CSR values of C alone (the stamps system_values() multiplies by scale).
  void susceptance_values(std::vector<double>& out) const;

  // Unit-amplitude input incidence vector (size unknown_count()) of one
  // voltage source: 1 at its branch row.
  std::vector<double> vsource_vector(std::size_t vsource_index) const;
  // ... of one current source: +1 into `to`, -1 out of `from`.
  std::vector<double> isource_vector(std::size_t isource_index) const;
  // ... of one buffer's Norton output stage: 1/Rout at the output node (the
  // buffer drive enters the RHS as v_drive / Rout).
  std::vector<double> buffer_vector(std::size_t buffer_index) const;

  // Output selector e_node (size unknown_count()). Throws for kGround or an
  // out-of-range node.
  std::vector<double> node_selector(NodeId node) const;

  // The circuit this assembler stamped (node-name lookups for port APIs).
  const Circuit& circuit() const { return circuit_; }

  // ---- DC operating point ------------------------------------------------

  // DC matrix at time t: capacitors removed, inductors shorted (their branch
  // equation becomes v1 - v2 = 0). A Gmin conductance is added on every node
  // so capacitor-only nodes do not make the matrix singular. The DC pattern
  // differs from system_pattern() (inductor rows change meaning).
  numeric::RealSparse dc_sparse(double gmin = 1e-12) const;
  numeric::RealMatrix dc_matrix(double gmin = 1e-12) const;
  std::vector<double> dc_rhs(double t, const TransientState& state) const;

  // ---- transient ---------------------------------------------------------

  // Companion-model transient matrix for step size dt (densified from the
  // G/C triplets). Depends only on dt and the integrator, so callers cache
  // the LU factorization per dt.
  numeric::RealMatrix transient_matrix(double dt, Integrator method) const;

  // RHS for advancing from `state` (at time state.time) to state.time + dt.
  // The _into variant writes into a caller-owned buffer (resized to the
  // unknown count) so the per-step hot loop does not allocate.
  void transient_rhs_into(double dt, Integrator method, const TransientState& state,
                          std::vector<double>& rhs) const;
  std::vector<double> transient_rhs(double dt, Integrator method,
                                    const TransientState& state) const;

  // Initializes state from a DC solution vector.
  TransientState initial_state(const std::vector<double>& dc_solution) const;

  // Post-solve state update: extracts new node voltages, recomputes companion
  // histories. `solution` is the MNA unknown vector at state.time + dt.
  void advance_state(const std::vector<double>& solution, double dt, Integrator method,
                     TransientState& state) const;

  // Buffer output source voltage at time t given its fire time.
  static double buffer_drive(const Buffer& buffer, double fire_time, double t);

 private:
  void stamp_system();

  const Circuit& circuit_;
  std::size_t n_nodes_ = 0;
  std::size_t n_unknowns_ = 0;
  std::size_t vsource_base_ = 0;
  std::size_t inductor_base_ = 0;

  // Time/frequency-independent stamps: values and their slots in the merged
  // CSR pattern (slot k is where triplet k's value accumulates).
  std::vector<numeric::Triplet<double>> g_triplets_, c_triplets_;
  std::vector<int> g_slots_, c_slots_;
  numeric::SparsePatternPtr pattern_;
};

}  // namespace rlcsim::sim
