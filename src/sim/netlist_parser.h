// SPICE-like netlist parsing.
//
// Supported subset (one element per line, '*' comments, case-insensitive
// element letters, SPICE scale suffixes f/p/n/u/m/k/meg/g/t):
//
//   Rname n1 n2 value
//   Cname n1 n2 value [IC=v0]
//   Lname n1 n2 value [IC=i0]
//   Vname n+ n- DC value
//   Vname n+ n- STEP(v0 v1 tdelay [trise])
//   Vname n+ n- PULSE(v0 v1 td tr tf pw [period])
//   Vname n+ n- PWL(t1 v1 t2 v2 ...)
//   Iname n+ n- <same source forms>
//   Bname nin nout ROUT=r CIN=c [VDD=v] [TH=fraction]   (behavioral repeater)
//   Kname Lxxx Lyyy k                                    (mutual coupling)
//   .tran tstep tstop
//   .end                                                 (optional)
//
// Errors are reported as ParseError with the 1-based line number and the
// offending text. Beyond syntax, the parser rejects: duplicate element
// names (case-insensitive), zero/negative/non-finite R, C, L values, and
// structurally invalid elements (self-looped sources, bad buffer
// thresholds, unknown K-card inductors) — all as ParseError, never as
// undefined behavior in a later analysis.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "sim/circuit.h"
#include "sim/transient.h"

namespace rlcsim::sim {

class ParseError : public std::runtime_error {
 public:
  ParseError(int line, const std::string& message)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " + message),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

struct ParsedNetlist {
  Circuit circuit;
  std::optional<TransientOptions> tran;  // from a .tran card, if present
  std::string title;                     // first line if it is not an element
};

ParsedNetlist parse_netlist(const std::string& text);

}  // namespace rlcsim::sim
