// Scenario-batched transient stepping.
//
// The sweep engine's transient hot path runs W topologically identical
// circuits that differ only in element VALUES, on one shared time grid
// (explicit t_stop/dt, no buffers, identical source breakpoints). This
// entry point steps all W of them in lockstep: per step it assembles W
// right-hand sides, performs ONE batched numeric refactor/solve over the
// recorded symbolic factorization (numeric::SparseLuBatch, lane-major SoA
// values the autovectorizer turns into SIMD), and records only the single
// node the caller asked about — instead of W independent scalar runs each
// recording every node.
//
// Bit-identity contract: every per-lane number is produced by the same
// arithmetic, in the same order, as the scalar run_until_crossing path —
// the batched kernels guarantee it per solve (see numeric/sparse_batch.h),
// the stamping seam guarantees it per matrix (MnaAssembler::
// stamp_values_into), and the shared step-size sequence is state-
// independent for buffer-free circuits. A lane that does not cross within
// the shared horizon falls back to the scalar auto-extend attempts exactly
// as run_until_crossing would (the failed first window is discarded there
// too), so batched sweep results are memcmp-equal to scalar ones.
//
// Eligibility is checked, not assumed: a batch whose lanes cannot share the
// grid (structural pattern mismatch, buffers, dense-solver sizes, missing
// recorded symbolics, per-scenario horizons, differing breakpoint sets)
// returns std::nullopt and the caller runs the points scalar.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/circuit.h"
#include "sim/transient.h"

namespace rlcsim::sim {

// First rising crossing of `level` at `node`, per lane, for W = 1/4/8
// circuits stepped as one batch. Requires options.reuse populated with the
// recorded system + DC patterns and symbolic factorizations every lane
// structurally matches (the sweep engine's point-0 seeding provides this).
// Returns std::nullopt when the batch is ineligible — the caller must then
// evaluate the points through the scalar path; throws (like the scalar
// path) only for failures the scalar path would also throw for, e.g. a lane
// that never crosses within the auto-extended horizon.
std::optional<std::vector<double>> run_batched_crossings(
    const std::vector<Circuit>& circuits, const std::string& node, double level,
    const TransientOptions& options, const char* context);

}  // namespace rlcsim::sim
