#include "sim/transient.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "numeric/matrix.h"
#include "numeric/sparse.h"
#include "obs/obs.h"

namespace rlcsim::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double node_voltage_of(const std::vector<double>& v, NodeId n) {
  return n == kGround ? 0.0 : v[static_cast<std::size_t>(n)];
}

bool same_structure(const numeric::SparsePattern& a, const numeric::SparsePattern& b) {
  return a.n == b.n && a.row_ptr == b.row_ptr && a.col_idx == b.col_idx;
}

// One cached transient-system factorization: dense LU or sparse LU,
// whichever the run's solver policy selected.
struct CachedFactor {
  std::optional<numeric::RealLu> dense;
  std::optional<numeric::RealSparseLu> sparse;

  void solve_in_place(std::vector<double>& x) const {
    if (dense)
      dense->solve_in_place(x);
    else
      sparse->solve_in_place(x);
  }
};

}  // namespace

void collect_source_breakpoints(const SourceSpec& spec, double t_stop,
                                std::set<double>& out) {
  if (const auto* step = std::get_if<StepSpec>(&spec)) {
    if (step->delay <= t_stop) out.insert(step->delay);
    if (step->rise > 0.0 && step->delay + step->rise <= t_stop)
      out.insert(step->delay + step->rise);
    return;
  }
  if (const auto* pwl = std::get_if<PwlSpec>(&spec)) {
    for (const auto& [t, _] : pwl->points)
      if (t >= 0.0 && t <= t_stop) out.insert(t);
    return;
  }
  if (const auto* pulse = std::get_if<PulseSpec>(&spec)) {
    const bool repeats = pulse->period > 0.0;
    // Every cycle whose base lies inside [0, t_stop] contributes edges; the
    // count is bounded by t_stop/period, not by an arbitrary cycle cap. A
    // simulation must land a step on each edge anyway, so a cycle count no
    // run could ever integrate is a spec error, not something to truncate
    // silently: fail loudly instead of exhausting memory.
    constexpr double kMaxPulseCycles = 1'000'000;
    const double cycles =
        repeats ? std::floor((t_stop - pulse->delay) / pulse->period) : 0.0;
    // Compare BEFORE casting: a double beyond int64 range would make the
    // cast undefined and could skip this guard entirely.
    if (cycles > kMaxPulseCycles)
      throw std::invalid_argument(
          "collect_source_breakpoints: pulse period is so small that t_stop "
          "covers more than 1e6 cycles; refusing to enumerate breakpoints");
    const std::int64_t last_cycle = static_cast<std::int64_t>(cycles);
    for (std::int64_t cycle = 0; cycle <= last_cycle; ++cycle) {
      const double base = pulse->delay + static_cast<double>(cycle) * pulse->period;
      if (base > t_stop) break;
      const double edges[4] = {base, base + pulse->rise, base + pulse->rise + pulse->width,
                               base + pulse->rise + pulse->width + pulse->fall};
      for (double e : edges)
        if (e <= t_stop) out.insert(e);
    }
  }
}

std::vector<double> dc_operating_point(const Circuit& circuit, double gmin) {
  const MnaAssembler assembler(circuit);
  TransientState empty;
  empty.buffer_fire_time.assign(circuit.buffers().size(), kInf);
  const auto rhs = assembler.dc_rhs(0.0, empty);
  if (use_sparse_solver(SolverKind::kAuto, assembler.unknown_count()))
    return numeric::RealSparseLu(assembler.dc_sparse(gmin)).solve(rhs);
  return numeric::RealLu(assembler.dc_matrix(gmin)).solve(rhs);
}

TransientResult run_transient(const Circuit& circuit, const TransientOptions& options) {
  OBS_SPAN("transient.run");
  OBS_COUNTER_ADD("transient.runs", 1);
  if (!(options.t_stop > 0.0))
    throw std::invalid_argument("run_transient: t_stop must be > 0");
  const double dt_nominal =
      options.dt > 0.0 ? options.dt : options.t_stop / 4000.0;
  if (dt_nominal >= options.t_stop)
    throw std::invalid_argument("run_transient: dt must be < t_stop");
  // The lower bound keeps dt/dt_quantum inside int64 range for the LU-cache
  // quantization below (1e-12 still allows million-fold event-step refinement).
  if (!(options.min_dt_fraction >= 1e-12) || options.min_dt_fraction > 1.0)
    throw std::invalid_argument(
        "run_transient: min_dt_fraction must be in [1e-12, 1]");

  const MnaAssembler assembler(circuit);
  const bool use_sparse = use_sparse_solver(options.solver, assembler.unknown_count());

  // --- cross-run symbolic reuse (sweep hot path) ---------------------------
  // Adopt the caller's recorded patterns when they structurally match this
  // circuit's, so the recorded symbolic factorizations can be replayed; on a
  // mismatch the reuse state is re-seeded from this run.
  SolverReuse* reuse = use_sparse ? options.reuse : nullptr;
  numeric::SparsePatternPtr system_pattern = assembler.system_pattern();
  if (reuse) {
    if (!reuse->system_pattern) {
      reuse->system_pattern = system_pattern;  // first run seeds the record
    } else if (same_structure(*reuse->system_pattern, *system_pattern)) {
      system_pattern = reuse->system_pattern;
    } else {
      // Different topology: run without reuse and leave the record alone.
      // Re-seeding here would make later runs' pivot order depend on which
      // circuit a worker happened to see first — breaking the sweep
      // engine's bit-identical-at-any-thread-count guarantee.
      reuse = nullptr;
    }
  }

  // --- initial state from the DC operating point --------------------------
  TransientState state;
  {
    TransientState empty;
    empty.buffer_fire_time.assign(circuit.buffers().size(), kInf);
    const auto rhs = assembler.dc_rhs(0.0, empty);
    std::vector<double> dc_solution;
    if (use_sparse) {
      numeric::RealSparse dc = assembler.dc_sparse(options.dc_gmin);
      SolverReuse* dc_reuse = reuse;
      if (dc_reuse) {
        if (!dc_reuse->dc_pattern) {
          dc_reuse->dc_pattern = dc.pattern_ptr();
        } else if (same_structure(*dc_reuse->dc_pattern, dc.pattern())) {
          dc = numeric::RealSparse(dc_reuse->dc_pattern, std::move(dc.values()));
        } else {
          dc_reuse = nullptr;  // same rationale as the system pattern above
        }
      }
      if (dc_reuse && dc_reuse->dc_symbolic) {
        numeric::RealSparseLu lu(*dc_reuse->dc_symbolic);  // copy: reuse symbolic
        lu.refactor(dc);
        dc_solution = lu.solve(rhs);
      } else {
        numeric::RealSparseLu lu(dc);
        if (dc_reuse)
          dc_reuse->dc_symbolic = std::make_shared<const numeric::RealSparseLu>(lu);
        dc_solution = lu.solve(rhs);
      }
    } else {
      dc_solution = numeric::RealLu(assembler.dc_matrix(options.dc_gmin)).solve(rhs);
    }
    state = assembler.initial_state(dc_solution);
  }

  // --- breakpoints ---------------------------------------------------------
  std::set<double> breakpoints;
  breakpoints.insert(0.0);
  breakpoints.insert(options.t_stop);
  for (const auto& v : circuit.voltage_sources())
    collect_source_breakpoints(v.spec, options.t_stop, breakpoints);
  for (const auto& i : circuit.current_sources())
    collect_source_breakpoints(i.spec, options.t_stop, breakpoints);

  // --- LU cache keyed by (quantized dt, integrator) ------------------------
  // Step sizes are snapped to multiples of `dt_quantum` before factorizing,
  // so breakpoint-clipped dts that differ only in the last few ulps share a
  // factorization instead of each paying a fresh one. The snap error is at
  // most half a quantum (= 0.5 * min_dt_fraction * dt_nominal), far below
  // the breakpoint landing tolerance.
  const double dt_quantum = dt_nominal * options.min_dt_fraction;
  const auto quantize = [&](double dt) {
    return static_cast<std::int64_t>(std::llround(dt / dt_quantum));
  };

  std::map<std::pair<std::int64_t, int>, CachedFactor> lu_cache;
  std::size_t factorizations = 0;
  // All sparse numeric factorizations share one symbolic analysis: the one
  // recorded in `reuse` from a previous compatible run when available (the
  // pattern never changes within a run, and a sweep's does not change across
  // runs either), else the first factorization of this run.
  const numeric::RealSparseLu* symbolic_donor =
      (reuse && reuse->system_symbolic) ? reuse->system_symbolic.get() : nullptr;
  if (symbolic_donor) {
    ++reuse->reuse_hits;
    OBS_COUNTER_ADD("reuse.solver_hits", 1);
  } else {
    OBS_COUNTER_ADD("reuse.solver_misses", 1);
  }
  std::vector<double> system_values;  // reused CSR value buffer

  const auto factorized = [&](double dt, Integrator method) -> const CachedFactor& {
    const auto key = std::make_pair(quantize(dt), static_cast<int>(method));
    auto it = lu_cache.find(key);
    if (it != lu_cache.end()) {
      OBS_COUNTER_ADD("cache.lu_dt.hits", 1);
    } else {
      OBS_COUNTER_ADD("cache.lu_dt.misses", 1);
    }
    if (it == lu_cache.end()) {
      CachedFactor factor;
      if (use_sparse) {
        assembler.system_values(MnaAssembler::transient_scale(dt, method),
                                system_values);
        const numeric::RealSparse a(system_pattern, system_values);
        if (symbolic_donor) {
          factor.sparse.emplace(*symbolic_donor);  // copy factors: reuse symbolic
          factor.sparse->refactor(a);
        } else {
          factor.sparse.emplace(a);
        }
      } else {
        factor.dense.emplace(assembler.transient_matrix(dt, method));
      }
      it = lu_cache.emplace(key, std::move(factor)).first;
      if (use_sparse && !symbolic_donor) {
        symbolic_donor = &*it->second.sparse;
        if (reuse)
          reuse->system_symbolic =
              std::make_shared<const numeric::RealSparseLu>(*it->second.sparse);
      }
      ++factorizations;
    }
    return it->second;
  };

  // --- recording -----------------------------------------------------------
  std::vector<double> times;
  std::map<std::string, std::vector<double>> node_values;
  const std::size_t n_nodes = circuit.node_count();
  std::vector<std::vector<double>*> columns(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    columns[i] = &node_values[circuit.node_name(static_cast<NodeId>(i))];
  const auto record = [&](const TransientState& s) {
    times.push_back(s.time);
    for (std::size_t i = 0; i < n_nodes; ++i) columns[i]->push_back(s.node_voltage[i]);
  };
  record(state);

  // --- main loop -----------------------------------------------------------
  const double min_dt = dt_nominal * options.min_dt_fraction;
  int be_steps_left = options.be_steps_after_breakpoint;
  std::size_t steps = 0;
  const auto& buffers = circuit.buffers();
  std::vector<double> solution;  // reused RHS/solution buffer

  // Marks a buffer fired at the CURRENT state time: the fire instant becomes
  // a breakpoint, and so does the end of its output ramp (a slope
  // discontinuity the step grid must land on, like a StepSpec corner).
  const auto fire_buffer = [&](int k) {
    state.buffer_fire_time[static_cast<std::size_t>(k)] = state.time;
    breakpoints.insert(state.time);
    const double rise = buffers[static_cast<std::size_t>(k)].output_rise;
    if (rise > 0.0 && state.time + rise < options.t_stop)
      breakpoints.insert(state.time + rise);
  };

  while (state.time < options.t_stop - 0.5 * min_dt) {
    // Distance to the next breakpoint bounds the step; snap to the cache
    // quantization grid so the factorization and the RHS use the same dt.
    const auto next_bp = breakpoints.upper_bound(state.time + 0.5 * min_dt);
    const double bp_time = (next_bp != breakpoints.end()) ? *next_bp : options.t_stop;
    double dt = std::min(dt_nominal, bp_time - state.time);
    dt = std::min(dt, options.t_stop - state.time);
    dt = static_cast<double>(quantize(dt)) * dt_quantum;
    if (dt <= 0.0) break;

    const Integrator method =
        (be_steps_left > 0) ? Integrator::kBackwardEuler : options.integrator;

    assembler.transient_rhs_into(dt, method, state, solution);
    factorized(dt, method).solve_in_place(solution);

    // Buffer event detection: did any unfired buffer's input cross its
    // threshold during this step? On a symmetric bus several buffers cross
    // SIMULTANEOUSLY (identical lines switching together), so events are a
    // cluster, not a single buffer: everything within a small fraction of
    // the step of the earliest crossing fires together (the interpolated
    // times of "identical" crossings differ by rounding noise only). Firing
    // one alone would leave its twins parked exactly AT their threshold,
    // where a strict crossing test can never trigger again — so an unfired
    // buffer already at/past its threshold also counts as a crossing, at
    // the step start (the belt-and-braces recovery for any parked state).
    double earliest_event = kInf;  // earliest INTERPOLATED crossing
    std::vector<std::pair<double, std::size_t>> crossings;  // (tc, buffer)
    for (std::size_t k = 0; k < buffers.size(); ++k) {
      if (state.buffer_fire_time[k] != kInf) continue;
      const auto& b = buffers[k];
      const double level = b.threshold * b.vdd;
      const double v_old = node_voltage_of(state.node_voltage, b.input);
      const double v_new = node_voltage_of(solution, b.input);
      const bool past_old =
          b.input_direction >= 0 ? v_old >= level : v_old <= level;
      const bool past_new =
          b.input_direction >= 0 ? v_new >= level : v_new <= level;
      if (!past_old && !past_new) continue;
      if (past_old) {
        // Parked at/past threshold (the simultaneity recovery): fires at
        // whatever time this step settles on, and — crucially — does NOT
        // enter the subdivision decision, or its step-start tc would mask a
        // genuine mid-step crossing of another buffer.
        crossings.emplace_back(state.time, k);
        continue;
      }
      const double tc =
          state.time + dt * (level - v_old) / (v_new - v_old);
      crossings.emplace_back(tc, k);
      earliest_event = std::min(earliest_event, tc);
    }
    const bool have_event = !crossings.empty();
    const double cluster_window = 1e-6 * dt;

    if (have_event && earliest_event > state.time + min_dt &&
        earliest_event < state.time + dt * (1.0 - 1e-9)) {
      // Reject; re-take the step so it ends exactly at the crossing, firing
      // the whole cluster there — parked buffers included (later crossings
      // stay unfired and are re-detected from the shortened step's end
      // state).
      const double dt_event =
          static_cast<double>(quantize(earliest_event - state.time)) * dt_quantum;
      assembler.transient_rhs_into(dt_event, method, state, solution);
      factorized(dt_event, method).solve_in_place(solution);
      assembler.advance_state(solution, dt_event, method, state);
      for (const auto& [tc, k] : crossings)
        if (tc <= earliest_event + cluster_window)
          fire_buffer(static_cast<int>(k));
      be_steps_left = options.be_steps_after_breakpoint;
      record(state);
      ++steps;
      continue;
    }

    const bool lands_on_breakpoint =
        std::fabs((state.time + dt) - bp_time) <= 0.5 * min_dt;
    assembler.advance_state(solution, dt, method, state);
    if (have_event) {
      // Crossing at (or numerically at) the step end — or too close to the
      // step start to subdivide: fire every detected crossing here.
      for (const auto& [tc, k] : crossings) fire_buffer(static_cast<int>(k));
      be_steps_left = options.be_steps_after_breakpoint;
    } else if (lands_on_breakpoint) {
      be_steps_left = options.be_steps_after_breakpoint;
    } else if (be_steps_left > 0) {
      --be_steps_left;
    }
    record(state);
    ++steps;
  }

  OBS_COUNTER_ADD("transient.steps", steps);
  TransientResult result;
  result.waveforms = WaveformSet(std::move(times), std::move(node_values));
  result.buffer_fire_times = state.buffer_fire_time;
  result.steps_taken = steps;
  result.lu_factorizations = factorizations;
  result.used_sparse_solver = use_sparse;
  return result;
}

}  // namespace rlcsim::sim
