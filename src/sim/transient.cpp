#include "sim/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "numeric/matrix.h"

namespace rlcsim::sim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Source discontinuity times within [0, t_stop].
void collect_source_breakpoints(const SourceSpec& spec, double t_stop,
                                std::set<double>& out) {
  if (const auto* step = std::get_if<StepSpec>(&spec)) {
    if (step->delay <= t_stop) out.insert(step->delay);
    if (step->rise > 0.0 && step->delay + step->rise <= t_stop)
      out.insert(step->delay + step->rise);
    return;
  }
  if (const auto* pwl = std::get_if<PwlSpec>(&spec)) {
    for (const auto& [t, _] : pwl->points)
      if (t >= 0.0 && t <= t_stop) out.insert(t);
    return;
  }
  if (const auto* pulse = std::get_if<PulseSpec>(&spec)) {
    const bool repeats = pulse->period > 0.0;
    for (int cycle = 0; cycle < 100000; ++cycle) {
      const double base = pulse->delay + (repeats ? cycle * pulse->period : 0.0);
      if (base > t_stop) break;
      const double edges[4] = {base, base + pulse->rise, base + pulse->rise + pulse->width,
                               base + pulse->rise + pulse->width + pulse->fall};
      for (double e : edges)
        if (e <= t_stop) out.insert(e);
      if (!repeats) break;
    }
  }
}

double node_voltage_of(const std::vector<double>& v, NodeId n) {
  return n == kGround ? 0.0 : v[static_cast<std::size_t>(n)];
}

}  // namespace

std::vector<double> dc_operating_point(const Circuit& circuit, double gmin) {
  const MnaAssembler assembler(circuit);
  TransientState empty;
  empty.buffer_fire_time.assign(circuit.buffers().size(), kInf);
  const numeric::RealLu lu(assembler.dc_matrix(gmin));
  return lu.solve(assembler.dc_rhs(0.0, empty));
}

TransientResult run_transient(const Circuit& circuit, const TransientOptions& options) {
  if (!(options.t_stop > 0.0))
    throw std::invalid_argument("run_transient: t_stop must be > 0");
  const double dt_nominal =
      options.dt > 0.0 ? options.dt : options.t_stop / 4000.0;
  if (dt_nominal >= options.t_stop)
    throw std::invalid_argument("run_transient: dt must be < t_stop");

  const MnaAssembler assembler(circuit);

  // --- initial state from the DC operating point --------------------------
  TransientState state;
  {
    TransientState empty;
    empty.buffer_fire_time.assign(circuit.buffers().size(), kInf);
    const numeric::RealLu dc_lu(assembler.dc_matrix(options.dc_gmin));
    state = assembler.initial_state(dc_lu.solve(assembler.dc_rhs(0.0, empty)));
  }

  // --- breakpoints ---------------------------------------------------------
  std::set<double> breakpoints;
  breakpoints.insert(0.0);
  breakpoints.insert(options.t_stop);
  for (const auto& v : circuit.voltage_sources())
    collect_source_breakpoints(v.spec, options.t_stop, breakpoints);
  for (const auto& i : circuit.current_sources())
    collect_source_breakpoints(i.spec, options.t_stop, breakpoints);

  // --- LU cache keyed by (dt, integrator) ----------------------------------
  std::map<std::pair<double, int>, numeric::RealLu> lu_cache;
  std::size_t factorizations = 0;
  const auto factorized = [&](double dt, Integrator method) -> const numeric::RealLu& {
    const auto key = std::make_pair(dt, static_cast<int>(method));
    auto it = lu_cache.find(key);
    if (it == lu_cache.end()) {
      it = lu_cache.emplace(key, numeric::RealLu(assembler.transient_matrix(dt, method)))
               .first;
      ++factorizations;
    }
    return it->second;
  };

  // --- recording -----------------------------------------------------------
  std::vector<double> times;
  std::map<std::string, std::vector<double>> node_values;
  const std::size_t n_nodes = circuit.node_count();
  std::vector<std::vector<double>*> columns(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i)
    columns[i] = &node_values[circuit.node_name(static_cast<NodeId>(i))];
  const auto record = [&](const TransientState& s) {
    times.push_back(s.time);
    for (std::size_t i = 0; i < n_nodes; ++i) columns[i]->push_back(s.node_voltage[i]);
  };
  record(state);

  // --- main loop -----------------------------------------------------------
  const double min_dt = dt_nominal * options.min_dt_fraction;
  int be_steps_left = options.be_steps_after_breakpoint;
  std::size_t steps = 0;
  const auto& buffers = circuit.buffers();

  while (state.time < options.t_stop - 0.5 * min_dt) {
    // Distance to the next breakpoint bounds the step.
    const auto next_bp = breakpoints.upper_bound(state.time + 0.5 * min_dt);
    const double bp_time = (next_bp != breakpoints.end()) ? *next_bp : options.t_stop;
    double dt = std::min(dt_nominal, bp_time - state.time);
    dt = std::min(dt, options.t_stop - state.time);
    if (dt <= 0.0) break;

    const Integrator method =
        (be_steps_left > 0) ? Integrator::kBackwardEuler : options.integrator;

    std::vector<double> solution =
        factorized(dt, method).solve(assembler.transient_rhs(dt, method, state));

    // Buffer event detection: did any unfired buffer's input cross its
    // threshold during this step?
    double earliest_event = kInf;
    int event_buffer = -1;
    for (std::size_t k = 0; k < buffers.size(); ++k) {
      if (state.buffer_fire_time[k] != kInf) continue;
      const auto& b = buffers[k];
      const double level = b.threshold * b.vdd;
      const double v_old = node_voltage_of(state.node_voltage, b.input);
      const double v_new = node_voltage_of(solution, b.input);
      if (v_old < level && v_new >= level) {
        const double frac = (level - v_old) / (v_new - v_old);
        const double tc = state.time + frac * dt;
        if (tc < earliest_event) {
          earliest_event = tc;
          event_buffer = static_cast<int>(k);
        }
      }
    }

    if (event_buffer >= 0 && earliest_event > state.time + min_dt &&
        earliest_event < state.time + dt * (1.0 - 1e-9)) {
      // Reject; re-take the step so it ends exactly at the crossing.
      const double dt_event = earliest_event - state.time;
      solution = factorized(dt_event, method)
                     .solve(assembler.transient_rhs(dt_event, method, state));
      assembler.advance_state(solution, dt_event, method, state);
      state.buffer_fire_time[static_cast<std::size_t>(event_buffer)] = state.time;
      breakpoints.insert(state.time);
      be_steps_left = options.be_steps_after_breakpoint;
      record(state);
      ++steps;
      continue;
    }

    const bool lands_on_breakpoint =
        std::fabs((state.time + dt) - bp_time) <= 0.5 * min_dt;
    assembler.advance_state(solution, dt, method, state);
    if (event_buffer >= 0) {
      // Crossing at (or numerically at) the step end: fire there.
      state.buffer_fire_time[static_cast<std::size_t>(event_buffer)] = state.time;
      breakpoints.insert(state.time);
      be_steps_left = options.be_steps_after_breakpoint;
    } else if (lands_on_breakpoint) {
      be_steps_left = options.be_steps_after_breakpoint;
    } else if (be_steps_left > 0) {
      --be_steps_left;
    }
    record(state);
    ++steps;
  }

  TransientResult result;
  result.waveforms = WaveformSet(std::move(times), std::move(node_values));
  result.buffer_fire_times = state.buffer_fire_time;
  result.steps_taken = steps;
  result.lu_factorizations = factorizations;
  return result;
}

}  // namespace rlcsim::sim
