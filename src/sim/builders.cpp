#include "sim/builders.h"

#include <cmath>
#include <stdexcept>

#include "tline/rc_line.h"

namespace rlcsim::sim {

void add_pi_segment(Circuit& circuit, const std::string& tag,
                    const std::string& near, const std::string& far,
                    double r_seg, double l_seg, double c_half) {
  circuit.add_capacitor(near, "0", c_half, 0.0, tag + ".cn");
  if (l_seg > 0.0) {
    const std::string mid = tag + ".m";
    circuit.add_resistor(near, mid, r_seg, tag + ".r");
    circuit.add_inductor(mid, far, l_seg, 0.0, tag + ".l");
  } else {
    circuit.add_resistor(near, far, r_seg, tag + ".r");
  }
  circuit.add_capacitor(far, "0", c_half, 0.0, tag + ".cf");
}

void add_rlc_ladder(Circuit& circuit, const std::string& prefix, const std::string& in,
                    const std::string& out, const tline::LineParams& line,
                    int segments) {
  if (segments < 1) throw std::invalid_argument("add_rlc_ladder: segments must be >= 1");
  tline::validate_rc(line);
  const double n = static_cast<double>(segments);
  const double r_seg = line.total_resistance / n;
  const double l_seg = line.total_inductance / n;
  const double c_half = line.total_capacitance / (2.0 * n);

  std::string near = in;
  for (int i = 0; i < segments; ++i) {
    const std::string tag = prefix + "." + std::to_string(i);
    const std::string far = (i == segments - 1) ? out : prefix + ".n" + std::to_string(i);
    add_pi_segment(circuit, tag, near, far, r_seg, l_seg, c_half);
    near = far;
  }
}

void validate(const WireTree& tree) {
  if (tree.branches.empty())
    throw std::invalid_argument("WireTree: tree has no branches");
  for (std::size_t k = 0; k < tree.branches.size(); ++k) {
    const WireBranch& branch = tree.branches[k];
    const std::string where = "WireTree: branch " + std::to_string(k);
    if (branch.parent < -1 || branch.parent >= static_cast<int>(k))
      throw std::invalid_argument(where +
                                  ": parent must precede the branch (-1 = root)");
    if (branch.segments < 1)
      throw std::invalid_argument(where + ": segments must be >= 1");
    if (!(branch.sink_capacitance >= 0.0) ||
        !std::isfinite(branch.sink_capacitance))
      throw std::invalid_argument(where + ": sink capacitance must be >= 0");
    tline::validate_rc(branch.line);
  }
}

void add_wire_tree(Circuit& circuit, const std::string& prefix,
                   const std::string& in, const WireTree& tree,
                   std::vector<std::string>* ends) {
  validate(tree);
  std::vector<std::string> far_nodes(tree.branches.size());
  for (std::size_t k = 0; k < tree.branches.size(); ++k) {
    const WireBranch& branch = tree.branches[k];
    const std::string tag = prefix + ".b" + std::to_string(k);
    const std::string& start = branch.parent < 0 ? in : far_nodes[branch.parent];
    const std::string end = tag + ".end";
    add_rlc_ladder(circuit, tag, start, end, branch.line, branch.segments);
    if (branch.sink_capacitance > 0.0)
      circuit.add_capacitor(end, "0", branch.sink_capacitance, 0.0, tag + ".cs");
    far_nodes[k] = end;
  }
  if (ends) *ends = std::move(far_nodes);
}

Circuit build_gate_line_load(const tline::GateLineLoad& system, int segments,
                             double vdd, double source_rise) {
  tline::validate(system);
  Circuit circuit;
  circuit.add_voltage_source("vin", "0", StepSpec{0.0, vdd, 0.0, source_rise}, "vsrc");
  if (system.driver_resistance > 0.0) {
    circuit.add_resistor("vin", "drv", system.driver_resistance, "rtr");
  } else {
    // Zero driver resistance: the ladder hangs directly off the source.
    // A tiny series resistance keeps the topology uniform without affecting
    // the response (1e-6 of the line resistance or 1 micro-ohm).
    const double tiny = std::max(1e-6, 1e-9 * system.line.total_resistance);
    circuit.add_resistor("vin", "drv", tiny, "rtr");
  }
  add_rlc_ladder(circuit, "line", "drv", "out", system.line, segments);
  if (system.load_capacitance > 0.0)
    circuit.add_capacitor("out", "0", system.load_capacitance, 0.0, "cload");
  return circuit;
}

double default_transient_horizon(const tline::GateLineLoad& system) {
  const double elmore = tline::elmore_delay(
      system.driver_resistance, system.line.total_resistance,
      system.line.total_capacitance, system.load_capacitance);
  const double tof = std::sqrt(system.line.total_inductance *
                               (system.line.total_capacitance + system.load_capacitance));
  return 8.0 * std::max(elmore, tof);
}

DelayRun run_until_crossing(const Circuit& circuit, const std::string& node,
                            double level, TransientOptions options,
                            const char* context) {
  const double dt0 = options.dt;
  for (int attempt = 0; attempt < 4; ++attempt) {
    TransientResult result = run_transient(circuit, options);
    const auto crossing = result.waveforms.trace(node).crossing(level, 0.0, +1);
    if (crossing) return {std::move(result), *crossing};
    options.t_stop *= 4.0;
    options.dt = dt0;  // keep caller's dt policy (0 re-derives from t_stop)
  }
  throw std::runtime_error(std::string(context) + ": '" + node +
                           "' never crossed the threshold within the "
                           "(auto-extended) horizon");
}

double simulate_gate_line_delay(const tline::GateLineLoad& system, int segments,
                                double t_stop, double dt, double threshold) {
  const Circuit circuit = build_gate_line_load(system, segments);
  TransientOptions options;
  options.t_stop = (t_stop > 0.0) ? t_stop : default_transient_horizon(system);
  options.dt = dt;
  return run_until_crossing(circuit, "out", threshold * 1.0, options,
                            "simulate_gate_line_delay")
      .crossing;
}

void add_coupled_lines(Circuit& circuit, const std::string& prefix,
                       const std::string& in_a, const std::string& out_a,
                       const std::string& in_b, const std::string& out_b,
                       const CoupledLinesSpec& spec) {
  // A coupled pair IS a 2-line bus: the per-segment coupling coefficient
  // equals Lm/Lt, so inductive_k maps to Lm = k * Lt.
  tline::CoupledBus bus;
  bus.lines = 2;
  bus.line = spec.line;
  bus.coupling_capacitance = spec.coupling_capacitance;
  bus.mutual_inductance = spec.inductive_k * spec.line.total_inductance;
  add_coupled_bus(circuit, prefix, {in_a, in_b}, {out_a, out_b}, bus,
                  spec.segments);
}

Circuit build_crosstalk_pair(const CoupledLinesSpec& spec, double driver_resistance,
                             double load_capacitance, double vdd) {
  if (!(driver_resistance > 0.0))
    throw std::invalid_argument("build_crosstalk_pair: driver resistance must be > 0");
  Circuit circuit;
  circuit.add_voltage_source("agg.vin", "0", StepSpec{0.0, vdd, 0.0, 0.0}, "vagg");
  circuit.add_resistor("agg.vin", "agg.drv", driver_resistance, "agg.rtr");
  // Quiet victim: held low through an identical driver.
  circuit.add_voltage_source("vic.vin", "0", DcSpec{0.0}, "vvic");
  circuit.add_resistor("vic.vin", "vic.drv", driver_resistance, "vic.rtr");

  add_coupled_lines(circuit, "xt", "agg.drv", "agg.out", "vic.drv", "vic.out", spec);

  if (load_capacitance > 0.0) {
    circuit.add_capacitor("agg.out", "0", load_capacitance, 0.0, "agg.cl");
    circuit.add_capacitor("vic.out", "0", load_capacitance, 0.0, "vic.cl");
  }
  return circuit;
}

double simulate_crosstalk_peak(const CoupledLinesSpec& spec,
                               double driver_resistance, double load_capacitance,
                               double t_stop) {
  const Circuit circuit =
      build_crosstalk_pair(spec, driver_resistance, load_capacitance);
  const tline::GateLineLoad one{driver_resistance, spec.line, load_capacitance};
  TransientOptions options;
  options.t_stop = (t_stop > 0.0) ? t_stop : default_transient_horizon(one);
  const TransientResult result = run_transient(circuit, options);
  const Trace victim = result.waveforms.trace("vic.out");
  return std::max(std::fabs(victim.max_value()), std::fabs(victim.min_value()));
}

void add_coupled_bus(Circuit& circuit, const std::string& prefix,
                     const std::vector<std::string>& ins,
                     const std::vector<std::string>& outs,
                     const tline::CoupledBus& bus, int segments,
                     const StampOptions& stamp) {
  tline::validate(bus);
  if (segments < 1)
    throw std::invalid_argument("add_coupled_bus: segments must be >= 1");
  const std::size_t n = static_cast<std::size_t>(bus.lines);
  if (ins.size() != n || outs.size() != n)
    throw std::invalid_argument(
        "add_coupled_bus: ins/outs must have one node per bus line");

  const auto line_prefix = [&](int i) {
    return prefix + ".l" + std::to_string(i);
  };
  for (int i = 0; i < bus.lines; ++i)
    add_rlc_ladder(circuit, line_prefix(i), ins[i], outs[i], bus.line_at(i),
                   segments);

  // The ladder names its far nodes "<prefix>.n<j>", except the final `out`.
  const auto node_of = [&](int i, int j) {
    return (j == segments - 1) ? outs[static_cast<std::size_t>(i)]
                               : line_prefix(i) + ".n" + std::to_string(j);
  };
  // All coupled pairs: adjacent ones always (the nearest-neighbor fast path,
  // with the historical ".p<i>" names), plus every farther pair carried by a
  // full-coupling bus (".p<i>x<j>" names). An ADJACENT pair whose Cc/Lm
  // happen to be exactly 0 still stamps STRUCTURAL elements (explicit zero
  // values, same pattern) unless stamp.prune_zeros — a coupling axis
  // sweeping through 0 must not fork the sparsity pattern and silently
  // re-run the symbolic factorization mid-sweep. Entirely-zero FAR pairs
  // are never stamped: no sweep axis varies them (nearest-neighbor buses
  // have none by construction, and a full-coupling bus whose far entries
  // are all 0 stays bit-identical to its nearest-neighbor equivalent).
  for (int i = 0; i < bus.lines; ++i) {
    for (int far = i + 1; far < bus.lines; ++far) {
      const double cc = bus.coupling_cc(i, far);
      const double lm = bus.coupling_lm(i, far);
      if (cc <= 0.0 && lm <= 0.0 && far > i + 1) continue;
      const std::string pair =
          far == i + 1 ? prefix + ".p" + std::to_string(i)
                       : prefix + ".p" + std::to_string(i) + "x" + std::to_string(far);
      const double cc_seg = cc / segments;
      // Per-segment coupling coefficient of the pair: (Lm/K)/sqrt(Li/K * Lj/K)
      // — the 1/K cancels, so k is segment-count independent. A 0/0 pair
      // (zero Lm over inductor-less lines) is simply uncoupled, not NaN.
      const bool inductive = bus.line_at(i).total_inductance > 0.0 &&
                             bus.line_at(far).total_inductance > 0.0;
      const double k = lm > 0.0 || inductive
                           ? lm / std::sqrt(bus.line_at(i).total_inductance *
                                            bus.line_at(far).total_inductance)
                           : 0.0;
      for (int j = 0; j < segments; ++j) {
        if (cc_seg > 0.0 || !stamp.prune_zeros) {
          circuit.add_structural_capacitor(node_of(i, j), node_of(far, j),
                                           cc_seg, 0.0,
                                           pair + ".cc" + std::to_string(j));
        }
        // A structural mutual needs its two segment inductors to exist —
        // add_rlc_ladder only creates them for inductive lines.
        if (k > 0.0 || (!stamp.prune_zeros && inductive)) {
          const std::string tag = "." + std::to_string(j) + ".l";
          circuit.add_mutual(line_prefix(i) + tag, line_prefix(far) + tag, k,
                             pair + ".k" + std::to_string(j));
        }
      }
    }
  }
}

Circuit build_coupled_bus(const tline::CoupledBus& bus,
                          const std::vector<BusDrive>& drives,
                          double driver_resistance, double load_capacitance,
                          int segments, double vdd, double source_rise) {
  if (!(driver_resistance > 0.0))
    throw std::invalid_argument("build_coupled_bus: driver resistance must be > 0");
  if (load_capacitance < 0.0)
    throw std::invalid_argument("build_coupled_bus: load capacitance must be >= 0");
  if (!(source_rise >= 0.0) || !std::isfinite(source_rise))
    throw std::invalid_argument("build_coupled_bus: source rise must be >= 0");
  if (drives.size() != static_cast<std::size_t>(bus.lines))
    throw std::invalid_argument("build_coupled_bus: one drive per bus line");

  Circuit circuit;
  std::vector<std::string> ins, outs;
  for (int i = 0; i < bus.lines; ++i) {
    const std::string tag = "line" + std::to_string(i);
    const BusDrive drive = drives[static_cast<std::size_t>(i)];
    SourceSpec spec;
    switch (drive) {
      case BusDrive::kQuietLow: spec = DcSpec{0.0}; break;
      case BusDrive::kQuietHigh: spec = DcSpec{vdd}; break;
      case BusDrive::kRising: spec = StepSpec{0.0, vdd, 0.0, source_rise}; break;
      case BusDrive::kFalling: spec = StepSpec{vdd, 0.0, 0.0, source_rise}; break;
      case BusDrive::kShieldGrounded: spec = DcSpec{0.0}; break;
    }
    circuit.add_voltage_source(tag + ".in", "0", spec, tag + ".v");
    circuit.add_resistor(tag + ".in", tag + ".drv", driver_resistance,
                         tag + ".rtr");
    ins.push_back(tag + ".drv");
    outs.push_back(tag + ".out");
    if (drive == BusDrive::kShieldGrounded) {
      // Dual-ended grounding: a shield has no receiver; its far end ties to
      // ground through the same resistance instead of loading a gate.
      circuit.add_resistor(tag + ".out", "0", driver_resistance, tag + ".tie");
    } else if (load_capacitance > 0.0) {
      circuit.add_capacitor(tag + ".out", "0", load_capacitance, 0.0,
                            tag + ".cl");
    }
  }
  add_coupled_bus(circuit, "bus", ins, outs, bus, segments);
  return circuit;
}

Circuit build_repeater_chain(const RepeaterChainSpec& spec) {
  tline::validate_rc(spec.line);
  if (spec.sections < 1)
    throw std::invalid_argument("build_repeater_chain: sections must be >= 1");
  if (!(spec.size > 0.0))
    throw std::invalid_argument("build_repeater_chain: size h must be > 0");
  if (!(spec.r0 > 0.0 && spec.c0 > 0.0))
    throw std::invalid_argument("build_repeater_chain: r0 and c0 must be > 0");

  const tline::LineParams section = spec.line.section(spec.sections);
  const double rtr = spec.r0 / spec.size;
  const double cin = spec.c0 * spec.size;

  Circuit circuit;
  // Stage 1: ideal step behind the buffer output resistance.
  circuit.add_voltage_source("vin", "0", StepSpec{0.0, spec.vdd, 0.0, 0.0}, "vsrc");
  circuit.add_resistor("vin", "stage1.drv", rtr, "stage1.rtr");
  add_rlc_ladder(circuit, "stage1", "stage1.drv", "stage1.out", section,
                 spec.segments_per_section);

  for (int i = 2; i <= spec.sections; ++i) {
    const std::string prev_out = "stage" + std::to_string(i - 1) + ".out";
    const std::string tag = "stage" + std::to_string(i);
    circuit.add_buffer(prev_out, tag + ".drv", rtr, cin, spec.vdd, 0.5, tag + ".buf");
    add_rlc_ladder(circuit, tag, tag + ".drv", tag + ".out", section,
                   spec.segments_per_section);
  }

  // The final section drives the input capacitance of the next logic stage.
  const std::string last_out = "stage" + std::to_string(spec.sections) + ".out";
  circuit.add_capacitor(last_out, "0", cin, 0.0, "cload");
  return circuit;
}

double simulate_repeater_chain_delay(const RepeaterChainSpec& spec, double t_stop,
                                     double dt) {
  const Circuit circuit = build_repeater_chain(spec);
  const std::string last_out = "stage" + std::to_string(spec.sections) + ".out";

  // Horizon estimate: k times a generous single-section bound.
  const tline::LineParams section = spec.line.section(spec.sections);
  const tline::GateLineLoad one{spec.r0 / spec.size, section, spec.c0 * spec.size};
  const double elmore = tline::elmore_delay(
      one.driver_resistance, section.total_resistance, section.total_capacitance,
      one.load_capacitance);
  const double tof = std::sqrt(section.total_inductance *
                               (section.total_capacitance + one.load_capacitance));
  TransientOptions options;
  options.t_stop =
      (t_stop > 0.0) ? t_stop : 10.0 * spec.sections * std::max(elmore, tof);
  options.dt = dt;
  return run_until_crossing(circuit, last_out, 0.5 * spec.vdd, options,
                            "simulate_repeater_chain_delay")
      .crossing;
}

}  // namespace rlcsim::sim
