#include "sim/builders.h"

#include <cmath>
#include <stdexcept>

#include "tline/rc_line.h"

namespace rlcsim::sim {

void add_rlc_ladder(Circuit& circuit, const std::string& prefix, const std::string& in,
                    const std::string& out, const tline::LineParams& line,
                    int segments) {
  if (segments < 1) throw std::invalid_argument("add_rlc_ladder: segments must be >= 1");
  tline::validate_rc(line);
  const double n = static_cast<double>(segments);
  const double r_seg = line.total_resistance / n;
  const double l_seg = line.total_inductance / n;
  const double c_half = line.total_capacitance / (2.0 * n);

  std::string near = in;
  for (int i = 0; i < segments; ++i) {
    const std::string tag = prefix + "." + std::to_string(i);
    const std::string far = (i == segments - 1) ? out : prefix + ".n" + std::to_string(i);
    circuit.add_capacitor(near, "0", c_half, 0.0, tag + ".cn");
    if (l_seg > 0.0) {
      const std::string mid = tag + ".m";
      circuit.add_resistor(near, mid, r_seg, tag + ".r");
      circuit.add_inductor(mid, far, l_seg, 0.0, tag + ".l");
    } else {
      circuit.add_resistor(near, far, r_seg, tag + ".r");
    }
    circuit.add_capacitor(far, "0", c_half, 0.0, tag + ".cf");
    near = far;
  }
}

Circuit build_gate_line_load(const tline::GateLineLoad& system, int segments,
                             double vdd, double source_rise) {
  tline::validate(system);
  Circuit circuit;
  circuit.add_voltage_source("vin", "0", StepSpec{0.0, vdd, 0.0, source_rise}, "vsrc");
  if (system.driver_resistance > 0.0) {
    circuit.add_resistor("vin", "drv", system.driver_resistance, "rtr");
  } else {
    // Zero driver resistance: the ladder hangs directly off the source.
    // A tiny series resistance keeps the topology uniform without affecting
    // the response (1e-6 of the line resistance or 1 micro-ohm).
    const double tiny = std::max(1e-6, 1e-9 * system.line.total_resistance);
    circuit.add_resistor("vin", "drv", tiny, "rtr");
  }
  add_rlc_ladder(circuit, "line", "drv", "out", system.line, segments);
  if (system.load_capacitance > 0.0)
    circuit.add_capacitor("out", "0", system.load_capacitance, 0.0, "cload");
  return circuit;
}

double default_transient_horizon(const tline::GateLineLoad& system) {
  const double elmore = tline::elmore_delay(
      system.driver_resistance, system.line.total_resistance,
      system.line.total_capacitance, system.load_capacitance);
  const double tof = std::sqrt(system.line.total_inductance *
                               (system.line.total_capacitance + system.load_capacitance));
  return 8.0 * std::max(elmore, tof);
}

double simulate_gate_line_delay(const tline::GateLineLoad& system, int segments,
                                double t_stop, double dt, double threshold) {
  const Circuit circuit = build_gate_line_load(system, segments);
  TransientOptions options;
  options.t_stop = (t_stop > 0.0) ? t_stop : default_transient_horizon(system);
  options.dt = dt;
  TransientResult result = run_transient(circuit, options);
  Trace out = result.waveforms.trace("out");

  // If the horizon was too short (response hasn't crossed), extend and retry.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const auto crossing = out.crossing(threshold * 1.0, 0.0, +1);
    if (crossing) return *crossing;
    options.t_stop *= 4.0;
    options.dt = dt;  // keep caller's dt policy (0 re-derives from t_stop)
    result = run_transient(circuit, options);
    out = result.waveforms.trace("out");
  }
  throw std::runtime_error(
      "simulate_gate_line_delay: output never crossed the threshold");
}

void add_coupled_lines(Circuit& circuit, const std::string& prefix,
                       const std::string& in_a, const std::string& out_a,
                       const std::string& in_b, const std::string& out_b,
                       const CoupledLinesSpec& spec) {
  if (spec.segments < 1)
    throw std::invalid_argument("add_coupled_lines: segments must be >= 1");
  if (spec.coupling_capacitance < 0.0)
    throw std::invalid_argument("add_coupled_lines: coupling capacitance must be >= 0");
  tline::validate(spec.line);

  const std::string pa = prefix + ".a";
  const std::string pb = prefix + ".b";
  add_rlc_ladder(circuit, pa, in_a, out_a, spec.line, spec.segments);
  add_rlc_ladder(circuit, pb, in_b, out_b, spec.line, spec.segments);

  // Line-to-line capacitance between corresponding ladder nodes. The ladder
  // names its far nodes "<prefix>.nK" (and the last one is `out`).
  const auto node_of = [&](const std::string& p, const std::string& out, int i) {
    return (i == spec.segments - 1) ? out : p + ".n" + std::to_string(i);
  };
  const double cc_seg = spec.coupling_capacitance / spec.segments;
  if (cc_seg > 0.0) {
    for (int i = 0; i < spec.segments; ++i) {
      circuit.add_capacitor(node_of(pa, out_a, i), node_of(pb, out_b, i), cc_seg,
                            0.0, prefix + ".cc" + std::to_string(i));
    }
  }
  // Inductive coupling between corresponding segment inductors (named
  // "<prefix>.<i>.l" by add_rlc_ladder).
  if (spec.inductive_k > 0.0) {
    for (int i = 0; i < spec.segments; ++i) {
      const std::string tag = "." + std::to_string(i) + ".l";
      circuit.add_mutual(pa + tag, pb + tag, spec.inductive_k,
                         prefix + ".k" + std::to_string(i));
    }
  }
}

Circuit build_crosstalk_pair(const CoupledLinesSpec& spec, double driver_resistance,
                             double load_capacitance, double vdd) {
  if (!(driver_resistance > 0.0))
    throw std::invalid_argument("build_crosstalk_pair: driver resistance must be > 0");
  Circuit circuit;
  circuit.add_voltage_source("agg.vin", "0", StepSpec{0.0, vdd, 0.0, 0.0}, "vagg");
  circuit.add_resistor("agg.vin", "agg.drv", driver_resistance, "agg.rtr");
  // Quiet victim: held low through an identical driver.
  circuit.add_voltage_source("vic.vin", "0", DcSpec{0.0}, "vvic");
  circuit.add_resistor("vic.vin", "vic.drv", driver_resistance, "vic.rtr");

  add_coupled_lines(circuit, "xt", "agg.drv", "agg.out", "vic.drv", "vic.out", spec);

  if (load_capacitance > 0.0) {
    circuit.add_capacitor("agg.out", "0", load_capacitance, 0.0, "agg.cl");
    circuit.add_capacitor("vic.out", "0", load_capacitance, 0.0, "vic.cl");
  }
  return circuit;
}

double simulate_crosstalk_peak(const CoupledLinesSpec& spec,
                               double driver_resistance, double load_capacitance,
                               double t_stop) {
  const Circuit circuit =
      build_crosstalk_pair(spec, driver_resistance, load_capacitance);
  const tline::GateLineLoad one{driver_resistance, spec.line, load_capacitance};
  TransientOptions options;
  options.t_stop = (t_stop > 0.0) ? t_stop : default_transient_horizon(one);
  const TransientResult result = run_transient(circuit, options);
  const Trace victim = result.waveforms.trace("vic.out");
  return std::max(std::fabs(victim.max_value()), std::fabs(victim.min_value()));
}

Circuit build_repeater_chain(const RepeaterChainSpec& spec) {
  tline::validate_rc(spec.line);
  if (spec.sections < 1)
    throw std::invalid_argument("build_repeater_chain: sections must be >= 1");
  if (!(spec.size > 0.0))
    throw std::invalid_argument("build_repeater_chain: size h must be > 0");
  if (!(spec.r0 > 0.0 && spec.c0 > 0.0))
    throw std::invalid_argument("build_repeater_chain: r0 and c0 must be > 0");

  const tline::LineParams section = spec.line.section(spec.sections);
  const double rtr = spec.r0 / spec.size;
  const double cin = spec.c0 * spec.size;

  Circuit circuit;
  // Stage 1: ideal step behind the buffer output resistance.
  circuit.add_voltage_source("vin", "0", StepSpec{0.0, spec.vdd, 0.0, 0.0}, "vsrc");
  circuit.add_resistor("vin", "stage1.drv", rtr, "stage1.rtr");
  add_rlc_ladder(circuit, "stage1", "stage1.drv", "stage1.out", section,
                 spec.segments_per_section);

  for (int i = 2; i <= spec.sections; ++i) {
    const std::string prev_out = "stage" + std::to_string(i - 1) + ".out";
    const std::string tag = "stage" + std::to_string(i);
    circuit.add_buffer(prev_out, tag + ".drv", rtr, cin, spec.vdd, 0.5, tag + ".buf");
    add_rlc_ladder(circuit, tag, tag + ".drv", tag + ".out", section,
                   spec.segments_per_section);
  }

  // The final section drives the input capacitance of the next logic stage.
  const std::string last_out = "stage" + std::to_string(spec.sections) + ".out";
  circuit.add_capacitor(last_out, "0", cin, 0.0, "cload");
  return circuit;
}

double simulate_repeater_chain_delay(const RepeaterChainSpec& spec, double t_stop,
                                     double dt) {
  const Circuit circuit = build_repeater_chain(spec);
  const std::string last_out = "stage" + std::to_string(spec.sections) + ".out";

  // Horizon estimate: k times a generous single-section bound.
  const tline::LineParams section = spec.line.section(spec.sections);
  const tline::GateLineLoad one{spec.r0 / spec.size, section, spec.c0 * spec.size};
  const double elmore = tline::elmore_delay(
      one.driver_resistance, section.total_resistance, section.total_capacitance,
      one.load_capacitance);
  const double tof = std::sqrt(section.total_inductance *
                               (section.total_capacitance + one.load_capacitance));
  double horizon =
      (t_stop > 0.0) ? t_stop : 10.0 * spec.sections * std::max(elmore, tof);

  for (int attempt = 0; attempt < 4; ++attempt) {
    TransientOptions options;
    options.t_stop = horizon;
    options.dt = dt;
    const TransientResult result = run_transient(circuit, options);
    const auto crossing =
        result.waveforms.trace(last_out).crossing(0.5 * spec.vdd, 0.0, +1);
    if (crossing) return *crossing;
    horizon *= 4.0;
  }
  throw std::runtime_error(
      "simulate_repeater_chain_delay: final stage never crossed 50%");
}

}  // namespace rlcsim::sim
