#include "sim/ac.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/matrix.h"
#include "numeric/roots.h"
#include "sim/mna.h"

namespace rlcsim::sim {
namespace {

using Complex = std::complex<double>;

void stamp_conductance(numeric::ComplexMatrix& m, NodeId a, NodeId b, Complex g) {
  if (a != kGround) {
    m(a, a) += g;
    if (b != kGround) {
      m(a, b) -= g;
      m(b, a) -= g;
    }
  }
  if (b != kGround) m(b, b) += g;
}

// Builds and solves the complex MNA system at angular frequency w with unit
// excitation on `source_index`; returns the full unknown vector.
std::vector<Complex> solve_at(const Circuit& circuit, const MnaAssembler& layout,
                              std::size_t source_index, double w) {
  const std::size_t n = layout.unknown_count();
  numeric::ComplexMatrix m(n, n);
  const Complex s(0.0, w);

  for (const auto& r : circuit.resistors())
    stamp_conductance(m, r.n1, r.n2, Complex(1.0 / r.resistance, 0.0));
  for (const auto& c : circuit.capacitors())
    stamp_conductance(m, c.n1, c.n2, s * c.capacitance);
  for (const auto& b : circuit.buffers()) {
    stamp_conductance(m, b.output, kGround, Complex(1.0 / b.output_resistance, 0.0));
    if (b.input_capacitance > 0.0)
      stamp_conductance(m, b.input, kGround, s * b.input_capacitance);
  }

  const auto& inductors = circuit.inductors();
  for (std::size_t k = 0; k < inductors.size(); ++k) {
    const auto& l = inductors[k];
    const std::size_t j = layout.inductor_branch(k);
    if (l.n1 != kGround) {
      m(l.n1, j) += 1.0;
      m(j, l.n1) += 1.0;
    }
    if (l.n2 != kGround) {
      m(l.n2, j) -= 1.0;
      m(j, l.n2) -= 1.0;
    }
    m(j, j) -= s * l.inductance;
  }
  for (const auto& mutual : circuit.mutuals()) {
    const std::size_t ja = layout.inductor_branch(mutual.inductor_a);
    const std::size_t jb = layout.inductor_branch(mutual.inductor_b);
    m(ja, jb) -= s * mutual.mutual;
    m(jb, ja) -= s * mutual.mutual;
  }

  const auto& vsources = circuit.voltage_sources();
  std::vector<Complex> rhs(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < vsources.size(); ++k) {
    const auto& v = vsources[k];
    const std::size_t j = layout.vsource_branch(k);
    if (v.positive != kGround) {
      m(v.positive, j) += 1.0;
      m(j, v.positive) += 1.0;
    }
    if (v.negative != kGround) {
      m(v.negative, j) -= 1.0;
      m(j, v.negative) -= 1.0;
    }
    if (k == source_index) rhs[j] = Complex(1.0, 0.0);
  }
  // AC current sources are not excited (the API drives one V source).

  return numeric::ComplexLu(std::move(m)).solve(rhs);
}

std::size_t find_source(const Circuit& circuit, const std::string& name) {
  const auto& vsources = circuit.voltage_sources();
  for (std::size_t i = 0; i < vsources.size(); ++i)
    if (vsources[i].name == name) return i;
  throw std::invalid_argument("ac_transfer: no voltage source named '" + name + "'");
}

}  // namespace

double AcSample::magnitude_db() const { return 20.0 * std::log10(magnitude()); }

double AcSample::phase_deg() const {
  return std::arg(value) * 180.0 / std::numbers::pi;
}

std::vector<AcSample> ac_transfer(const Circuit& circuit,
                                  const std::string& source_name,
                                  const std::string& node,
                                  const std::vector<double>& frequencies) {
  const MnaAssembler layout(circuit);
  const std::size_t source = find_source(circuit, source_name);
  const auto node_id = circuit.find_node(node);
  if (!node_id || *node_id == kGround)
    throw std::invalid_argument("ac_transfer: unknown (or ground) node '" + node + "'");

  std::vector<AcSample> out;
  out.reserve(frequencies.size());
  for (double f : frequencies) {
    if (!(f >= 0.0)) throw std::invalid_argument("ac_transfer: negative frequency");
    const auto x = solve_at(circuit, layout, source, 2.0 * std::numbers::pi * f);
    out.push_back({f, x[static_cast<std::size_t>(*node_id)]});
  }
  return out;
}

std::complex<double> ac_transfer_at(const Circuit& circuit,
                                    const std::string& source_name,
                                    const std::string& node, double frequency) {
  return ac_transfer(circuit, source_name, node, {frequency}).front().value;
}

std::vector<double> log_frequencies(double f_lo, double f_hi, int points) {
  if (!(f_lo > 0.0) || !(f_hi > f_lo) || points < 2)
    throw std::invalid_argument("log_frequencies: need 0 < f_lo < f_hi, points >= 2");
  std::vector<double> out(points);
  const double ratio = std::log(f_hi / f_lo);
  for (int i = 0; i < points; ++i)
    out[i] = f_lo * std::exp(ratio * i / (points - 1));
  return out;
}

double bandwidth_3db(const Circuit& circuit, const std::string& source_name,
                     const std::string& node, double f_lo, double f_hi) {
  const double dc_mag = std::abs(ac_transfer_at(circuit, source_name, node, f_lo));
  const double target = dc_mag / std::sqrt(2.0);
  const auto below = [&](double f) {
    return std::abs(ac_transfer_at(circuit, source_name, node, f)) - target;
  };
  // Scan log-spaced points for the first drop below the target, then refine.
  const auto freqs = log_frequencies(f_lo, f_hi, 60);
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    if (below(freqs[i]) < 0.0) {
      return numeric::brent(below, freqs[i - 1], freqs[i],
                            {.x_tolerance = freqs[i] * 1e-9});
    }
  }
  return 0.0;
}

}  // namespace rlcsim::sim
