#include "sim/ac.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <optional>
#include <stdexcept>

#include "numeric/matrix.h"
#include "numeric/roots.h"
#include "numeric/sparse.h"

namespace rlcsim::sim {
namespace {

using Complex = std::complex<double>;

std::size_t find_source(const Circuit& circuit, const std::string& name) {
  const auto& vsources = circuit.voltage_sources();
  for (std::size_t i = 0; i < vsources.size(); ++i)
    if (vsources[i].name == name) return i;
  throw std::invalid_argument("ac_transfer: no voltage source named '" + name + "'");
}

}  // namespace

double AcSample::magnitude_db() const { return 20.0 * std::log10(magnitude()); }

double AcSample::phase_deg() const {
  return std::arg(value) * 180.0 / std::numbers::pi;
}

std::vector<AcSample> ac_transfer(const Circuit& circuit,
                                  const std::string& source_name,
                                  const std::string& node,
                                  const std::vector<double>& frequencies,
                                  SolverKind solver, AcSweepInfo* info) {
  const MnaAssembler layout(circuit);
  const std::size_t source = find_source(circuit, source_name);
  const auto node_id = circuit.find_node(node);
  if (!node_id || *node_id == kGround)
    throw std::invalid_argument("ac_transfer: unknown (or ground) node '" + node + "'");

  const std::size_t n = layout.unknown_count();
  const bool sparse = use_sparse_solver(solver, n);

  // Unit excitation on the chosen source; all other sources zeroed.
  std::vector<Complex> rhs(n, Complex{});
  rhs[layout.vsource_branch(source)] = Complex(1.0, 0.0);

  AcSweepInfo stats;
  stats.used_sparse_solver = sparse;
  const auto global_before = numeric::sparse_lu_stats();

  // One pattern for the whole sweep; only the values change per point.
  numeric::ComplexSparse a(layout.system_pattern());
  std::optional<numeric::ComplexSparseLu> lu;
  if (sparse && !frequencies.empty()) {
    // The sweep's single symbolic factorization. Pivot at the HIGHEST
    // frequency: that is where s*C swamps G and the pivot choice is
    // stressed; at lower frequencies the system is closer to diagonally
    // dominant and the same order stays accurate.
    const double f_max = *std::max_element(frequencies.begin(), frequencies.end());
    layout.system_values(Complex(0.0, 2.0 * std::numbers::pi * f_max), a.values());
    lu.emplace(a);
  }

  std::vector<AcSample> out;
  out.reserve(frequencies.size());
  for (double f : frequencies) {
    if (!(f >= 0.0)) throw std::invalid_argument("ac_transfer: negative frequency");
    const Complex s(0.0, 2.0 * std::numbers::pi * f);
    layout.system_values(s, a.values());

    std::vector<Complex> x;
    if (sparse) {
      lu->refactor(a);
      x = lu->solve(rhs);
      // The pivot order is reused across the whole sweep. Iterative
      // refinement through the existing factors recovers full accuracy at
      // O(nnz) per pass without any new factorization; a fresh re-pivot
      // (which costs a symbolic analysis) is reserved for outright
      // breakdown. The residual r = A x - b doubles as the correction RHS,
      // so each pass costs one sparse multiply and one solve. Thresholds
      // scale with the attainable floor eps*||A||*||x|| so large-norm
      // systems do not spin on unreachable absolute targets.
      double a_norm = 0.0;
      for (const auto& v : a.values()) a_norm = std::max(a_norm, std::abs(v));
      double x_norm = 0.0;
      for (const auto& v : x) x_norm = std::max(x_norm, std::abs(v));
      const double floor_scale = std::max(1.0, a_norm * x_norm);
      double res_norm = 0.0;
      for (int pass = 0;; ++pass) {
        auto r = a.multiply(x);
        res_norm = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          r[i] -= rhs[i];
          res_norm = std::max(res_norm, std::abs(r[i]));
        }
        if (res_norm <= 1e-13 * floor_scale || pass == 3) break;
        lu->solve_in_place(r);
        for (std::size_t i = 0; i < n; ++i) x[i] -= r[i];
      }
      if (res_norm > 1e-6 * floor_scale) {
        lu.emplace(a);
        x = lu->solve(rhs);
      }
    } else {
      x = numeric::ComplexLu(a.to_dense()).solve(rhs);
      ++stats.numeric_factorizations;
    }
    out.push_back({f, x[static_cast<std::size_t>(*node_id)]});
  }

  if (sparse) {
    const auto& global_after = numeric::sparse_lu_stats();
    stats.symbolic_factorizations = global_after.symbolic - global_before.symbolic;
    stats.numeric_factorizations = global_after.numeric - global_before.numeric;
  }
  if (info) *info = stats;
  return out;
}

std::complex<double> ac_transfer_at(const Circuit& circuit,
                                    const std::string& source_name,
                                    const std::string& node, double frequency) {
  return ac_transfer(circuit, source_name, node, {frequency}).front().value;
}

std::vector<double> log_frequencies(double f_lo, double f_hi, int points) {
  if (!(f_lo > 0.0) || !(f_hi > f_lo) || points < 2)
    throw std::invalid_argument("log_frequencies: need 0 < f_lo < f_hi, points >= 2");
  std::vector<double> out(points);
  const double ratio = std::log(f_hi / f_lo);
  for (int i = 0; i < points; ++i)
    out[i] = f_lo * std::exp(ratio * i / (points - 1));
  return out;
}

std::optional<double> bandwidth_3db(const Circuit& circuit,
                                    const std::string& source_name,
                                    const std::string& node, double f_lo,
                                    double f_hi) {
  const double dc_mag = std::abs(ac_transfer_at(circuit, source_name, node, f_lo));
  const double target = dc_mag / std::sqrt(2.0);
  const auto below = [&](double f) {
    return std::abs(ac_transfer_at(circuit, source_name, node, f)) - target;
  };
  // Scan log-spaced points for the first drop below the target, then refine.
  const auto freqs = log_frequencies(f_lo, f_hi, 60);
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    if (below(freqs[i]) < 0.0) {
      return numeric::brent(below, freqs[i - 1], freqs[i],
                            {.x_tolerance = freqs[i] * 1e-9});
    }
  }
  return std::nullopt;  // never dropped 3 dB inside [f_lo, f_hi]
}

}  // namespace rlcsim::sim
