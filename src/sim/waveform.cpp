#include "sim/waveform.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "numeric/interpolate.h"

namespace rlcsim::sim {

Trace::Trace(std::vector<double> time, std::vector<double> value)
    : time_(std::move(time)), value_(std::move(value)) {
  if (time_.size() != value_.size())
    throw std::invalid_argument("Trace: time/value size mismatch");
  if (time_.size() < 2) throw std::invalid_argument("Trace: need >= 2 samples");
}

double Trace::at(double t) const { return numeric::interp_linear(time_, value_, t); }

std::optional<double> Trace::crossing(double level, double t_from, int direction) const {
  return numeric::find_crossing(time_, value_, level, t_from, direction);
}

double Trace::max_value() const { return *std::max_element(value_.begin(), value_.end()); }

double Trace::min_value() const { return *std::min_element(value_.begin(), value_.end()); }

double Trace::final_value() const { return value_.back(); }

double Trace::delay(double final_reference, double fraction) const {
  const auto t = crossing(fraction * final_reference, time_.front(), +1);
  if (!t)
    throw std::runtime_error("Trace::delay: waveform never crosses the threshold");
  return *t;
}

double Trace::overshoot(double final_reference) const {
  if (final_reference == 0.0)
    throw std::invalid_argument("Trace::overshoot: final_reference must be nonzero");
  return std::max(0.0, max_value() / final_reference - 1.0);
}

double Trace::rise_time(double final_reference) const {
  const auto t10 = crossing(0.1 * final_reference, time_.front(), +1);
  const auto t90 = crossing(0.9 * final_reference, time_.front(), +1);
  if (!t10 || !t90) return 0.0;
  return *t90 - *t10;
}

WaveformSet::WaveformSet(std::vector<double> time,
                         std::map<std::string, std::vector<double>> node_values)
    : time_(std::move(time)), values_(std::move(node_values)) {}

Trace WaveformSet::trace(const std::string& node) const {
  const auto it = values_.find(node);
  if (it == values_.end())
    throw std::out_of_range("WaveformSet: no trace recorded for node '" + node + "'");
  return Trace(time_, it->second);
}

std::vector<std::string> WaveformSet::node_names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, _] : values_) names.push_back(name);
  return names;
}

void write_csv(const WaveformSet& waveforms, std::ostream& out,
               const std::vector<std::string>& nodes) {
  const std::vector<std::string> columns =
      nodes.empty() ? waveforms.node_names() : nodes;
  // Resolve all traces up front so unknown names fail before any output.
  std::vector<Trace> traces;
  traces.reserve(columns.size());
  for (const auto& name : columns) traces.push_back(waveforms.trace(name));

  out << "time";
  for (const auto& name : columns) out << ',' << name;
  out << '\n';
  const auto& time = waveforms.time();
  char buf[32];
  for (std::size_t i = 0; i < time.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.9e", time[i]);
    out << buf;
    for (const auto& trace : traces) {
      std::snprintf(buf, sizeof(buf), "%.9e", trace.value()[i]);
      out << ',' << buf;
    }
    out << '\n';
  }
}

void write_csv_file(const WaveformSet& waveforms, const std::string& path,
                    const std::vector<std::string>& nodes) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_csv_file: cannot open '" + path + "'");
  write_csv(waveforms, file, nodes);
}

}  // namespace rlcsim::sim
