// Recorded transient waveforms, measurements on them, and CSV export.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rlcsim::sim {

// One scalar trace sampled on a (shared) time grid.
class Trace {
 public:
  Trace() = default;
  Trace(std::vector<double> time, std::vector<double> value);

  const std::vector<double>& time() const { return time_; }
  const std::vector<double>& value() const { return value_; }
  std::size_t size() const { return time_.size(); }

  // Linear interpolation at time t (clamped to the record).
  double at(double t) const;

  // First crossing of `level` at/after t_from in the given direction
  // (+1 rising, -1 falling, 0 either). Sub-sample accurate (linear).
  std::optional<double> crossing(double level, double t_from = 0.0,
                                 int direction = 0) const;

  double max_value() const;
  double min_value() const;
  double final_value() const;

  // 50% propagation delay relative to an ideal step at t = 0: the first
  // rising crossing of `fraction * final_reference`. Throws
  // std::runtime_error if the trace never crosses.
  double delay(double final_reference, double fraction = 0.5) const;

  // Overshoot above `final_reference`, as a fraction (0.15 == 15%).
  double overshoot(double final_reference) const;

  // 10%-90% rise time relative to final_reference; 0 when not measurable.
  double rise_time(double final_reference) const;

 private:
  std::vector<double> time_;
  std::vector<double> value_;
};

// All recorded node traces of one transient run.
class WaveformSet {
 public:
  WaveformSet() = default;
  WaveformSet(std::vector<double> time,
              std::map<std::string, std::vector<double>> node_values);

  const std::vector<double>& time() const { return time_; }
  bool has(const std::string& node) const { return values_.count(node) != 0; }
  // Throws std::out_of_range with the node name if absent.
  Trace trace(const std::string& node) const;
  std::vector<std::string> node_names() const;

 private:
  std::vector<double> time_;
  std::map<std::string, std::vector<double>> values_;
};

// Writes "time,node1,node2,..." CSV (scientific notation, plot-ready).
// `nodes` empty means all recorded nodes, in name order. Throws
// std::out_of_range for unknown node names.
void write_csv(const WaveformSet& waveforms, std::ostream& out,
               const std::vector<std::string>& nodes = {});
// Convenience file variant; throws std::runtime_error if the file cannot be
// opened.
void write_csv_file(const WaveformSet& waveforms, const std::string& path,
                    const std::vector<std::string>& nodes = {});

}  // namespace rlcsim::sim
