#include "numeric/laplace.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rlcsim::numeric {
namespace {

// Binomial coefficients C(n, k) as doubles (n small, <= ~20 here).
double binomial(int n, int k) {
  double acc = 1.0;
  for (int i = 1; i <= k; ++i) acc *= static_cast<double>(n - k + i) / i;
  return acc;
}

}  // namespace

double invert_euler(const LaplaceFn& f, double t, const EulerOptions& opt) {
  if (!(t > 0.0)) throw std::invalid_argument("invert_euler: t must be > 0");
  const double a = opt.a;
  const int n = opt.n_terms;
  const int m = opt.euler_terms;
  const double pi = std::numbers::pi;

  // Alternating series terms: u_k = (-1)^k Re F((a + 2 k pi i) / (2t)).
  auto term = [&](int k) {
    const std::complex<double> s(a / (2.0 * t), k * pi / t);
    const double re = std::real(f(s));
    return (k % 2 == 0) ? re : -re;
  };

  double partial = 0.5 * std::real(f(std::complex<double>(a / (2.0 * t), 0.0)));
  for (int k = 1; k <= n; ++k) partial += term(k);

  // Euler (binomial) averaging of the next m partial sums accelerates the
  // alternating tail by many orders of magnitude.
  std::vector<double> partials(m + 1);
  partials[0] = partial;
  for (int j = 1; j <= m; ++j) partials[j] = partials[j - 1] + term(n + j);

  double accelerated = 0.0;
  const double scale = std::pow(2.0, -m);
  for (int j = 0; j <= m; ++j) accelerated += binomial(m, j) * scale * partials[j];

  return std::exp(a / 2.0) / t * accelerated;
}

std::vector<double> invert_euler(const LaplaceFn& f, const std::vector<double>& times,
                                 const EulerOptions& opt) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(invert_euler(f, t, opt));
  return out;
}

double invert_stehfest(const LaplaceRealFn& f, double t, int n) {
  if (!(t > 0.0)) throw std::invalid_argument("invert_stehfest: t must be > 0");
  if (n < 2 || n > 12) throw std::invalid_argument("invert_stehfest: n out of [2,12]");
  const double ln2 = std::numbers::ln2;
  const int terms = 2 * n;

  double acc = 0.0;
  for (int k = 1; k <= terms; ++k) {
    // Stehfest weight V_k.
    double vk = 0.0;
    const int j_lo = (k + 1) / 2;
    const int j_hi = std::min(k, n);
    for (int j = j_lo; j <= j_hi; ++j) {
      // j^n (2j)! / [ (n-j)! j! (j-1)! (k-j)! (2j-k)! ]
      //   = j^n C(2j, j) j / [ (n-j)! (k-j)! (2j-k)! ]
      // using (2j)! = C(2j,j) j! j! — keeps intermediates tame.
      const double num =
          std::pow(static_cast<double>(j), n) * binomial(2 * j, j) * j;
      double denom = 1.0;
      for (int i = 2; i <= n - j; ++i) denom *= i;
      for (int i = 2; i <= k - j; ++i) denom *= i;
      for (int i = 2; i <= 2 * j - k; ++i) denom *= i;
      vk += num / denom;
    }
    if ((k + n) % 2 != 0) vk = -vk;
    acc += vk * f(k * ln2 / t);
  }
  return ln2 / t * acc;
}

std::vector<double> invert_stehfest(const LaplaceRealFn& f,
                                    const std::vector<double>& times, int n) {
  std::vector<double> out;
  out.reserve(times.size());
  for (double t : times) out.push_back(invert_stehfest(f, t, n));
  return out;
}

}  // namespace rlcsim::numeric
