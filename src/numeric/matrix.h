// Dense matrices and LU factorization, real and complex.
//
// The MNA simulator assembles small dense systems (tens to a few hundred
// unknowns for ladder models), so a cache-friendly dense LU with partial
// pivoting is the right tool — no sparse machinery needed at this scale.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace rlcsim::numeric {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  T& at(std::size_t r, std::size_t c) {
    check(r, c);
    return (*this)(r, c);
  }
  const T& at(std::size_t r, std::size_t c) const {
    check(r, c);
    return (*this)(r, c);
  }

  void fill(T value) { data_.assign(data_.size(), value); }

  Matrix operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) throw std::invalid_argument("Matrix multiply: shape mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(i, k);
        if (a == T{}) continue;
        for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
      }
    return out;
  }

  std::vector<T> operator*(const std::vector<T>& v) const {
    if (cols_ != v.size()) throw std::invalid_argument("Matrix-vector: shape mismatch");
    std::vector<T> out(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * v[j];
    return out;
  }

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix index out of range");
  }
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = Matrix<double>;
using ComplexMatrix = Matrix<std::complex<double>>;

// LU factorization with partial pivoting, kept separate from Matrix so a
// factorization can be reused across many right-hand sides (the transient
// engine re-solves the same matrix every accepted step at fixed step size).
template <typename T>
class LuFactorization {
 public:
  // Factors a square matrix. Throws std::invalid_argument for non-square
  // input and std::runtime_error for (numerically) singular matrices.
  explicit LuFactorization(Matrix<T> a);

  std::size_t size() const { return n_; }

  // Solves A x = b for one right-hand side.
  std::vector<T> solve(const std::vector<T>& b) const;

  // In-place variant for hot loops: overwrites `x` (the RHS on entry) with
  // the solution, using an internal scratch buffer reused across calls.
  void solve_in_place(std::vector<T>& x) const;

  // Determinant from the factorization (product of U's diagonal and pivot sign).
  T determinant() const;

 private:
  std::size_t n_ = 0;
  Matrix<T> lu_;
  std::vector<std::size_t> pivot_;
  int pivot_sign_ = 1;
  mutable std::vector<T> work_;  // solve_in_place scratch
};

using RealLu = LuFactorization<double>;
using ComplexLu = LuFactorization<std::complex<double>>;

// Convenience one-shot solve.
template <typename T>
std::vector<T> solve(Matrix<T> a, const std::vector<T>& b) {
  return LuFactorization<T>(std::move(a)).solve(b);
}

// True iff the SYMMETRIC matrix is positive definite: LDLt without pivoting
// (legitimate exactly because the test target is symmetric), positive
// definite iff every pivot d_i > 0. Only the lower triangle is read, and a
// non-square or asymmetric (beyond a small relative tolerance) matrix throws
// std::invalid_argument. The dense generalization of the tridiagonal
// tline::mutual_chain_positive_definite test, for full coupling matrices.
bool symmetric_positive_definite(const RealMatrix& a);

}  // namespace rlcsim::numeric
