#include "numeric/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

namespace rlcsim::numeric {
namespace {

double magnitude(double v) { return std::fabs(v); }
double magnitude(const std::complex<double>& v) { return std::abs(v); }

}  // namespace

// ------------------------------------------------------------------ pattern

SparsePatternPtr build_pattern(int n, const std::vector<std::pair<int, int>>& entries,
                               std::vector<int>* slots) {
  if (n < 0) throw std::invalid_argument("build_pattern: negative dimension");
  for (const auto& [r, c] : entries)
    if (r < 0 || r >= n || c < 0 || c >= n)
      throw std::out_of_range("build_pattern: entry outside matrix");

  std::vector<int> order(entries.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return entries[a] < entries[b];
  });

  auto pattern = std::make_shared<SparsePattern>();
  pattern->n = n;
  pattern->row_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  pattern->col_idx.reserve(entries.size());
  if (slots) slots->assign(entries.size(), -1);

  int prev_row = -1, prev_col = -1;
  for (int k : order) {
    const auto [r, c] = entries[static_cast<std::size_t>(k)];
    if (r != prev_row || c != prev_col) {
      pattern->col_idx.push_back(c);
      ++pattern->row_ptr[static_cast<std::size_t>(r) + 1];
      prev_row = r;
      prev_col = c;
    }
    if (slots)
      (*slots)[static_cast<std::size_t>(k)] = static_cast<int>(pattern->col_idx.size()) - 1;
  }
  for (int i = 0; i < n; ++i) pattern->row_ptr[i + 1] += pattern->row_ptr[i];
  return pattern;
}

// --------------------------------------------------------------------- CSR

template <typename T>
SparseMatrix<T>::SparseMatrix(int n, const std::vector<Triplet<T>>& triplets) {
  std::vector<std::pair<int, int>> positions(triplets.size());
  for (std::size_t k = 0; k < triplets.size(); ++k)
    positions[k] = {triplets[k].row, triplets[k].col};
  std::vector<int> slots;
  pattern_ = build_pattern(n, positions, &slots);
  values_.assign(static_cast<std::size_t>(pattern_->nnz()), T{});
  for (std::size_t k = 0; k < triplets.size(); ++k)
    values_[static_cast<std::size_t>(slots[k])] += triplets[k].value;
}

template <typename T>
std::vector<T> SparseMatrix<T>::multiply(const std::vector<T>& x) const {
  const int n = size();
  if (x.size() != static_cast<std::size_t>(n))
    throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  std::vector<T> y(static_cast<std::size_t>(n), T{});
  for (int r = 0; r < n; ++r) {
    T acc{};
    for (int p = pattern_->row_ptr[r]; p < pattern_->row_ptr[r + 1]; ++p)
      acc += values_[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(pattern_->col_idx[static_cast<std::size_t>(p)])];
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

template <typename T>
Matrix<T> SparseMatrix<T>::to_dense() const {
  const int n = size();
  Matrix<T> m(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r)
    for (int p = pattern_->row_ptr[r]; p < pattern_->row_ptr[r + 1]; ++p)
      m(static_cast<std::size_t>(r),
        static_cast<std::size_t>(pattern_->col_idx[static_cast<std::size_t>(p)])) +=
          values_[static_cast<std::size_t>(p)];
  return m;
}

template class SparseMatrix<double>;
template class SparseMatrix<std::complex<double>>;

// ---------------------------------------------------------------- ordering

namespace {

// Symmetrized adjacency (pattern union its transpose, self-loops dropped).
std::vector<std::vector<int>> symmetric_adjacency(const SparsePattern& pattern) {
  const int n = pattern.n;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    for (int p = pattern.row_ptr[r]; p < pattern.row_ptr[r + 1]; ++p) {
      const int c = pattern.col_idx[static_cast<std::size_t>(p)];
      if (c == r) continue;
      adj[static_cast<std::size_t>(r)].push_back(c);
      adj[static_cast<std::size_t>(c)].push_back(r);
    }
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

// BFS from `start`; returns a minimum-degree vertex of the last level
// (a pseudo-peripheral candidate).
int bfs_farthest(const std::vector<std::vector<int>>& adj, int start,
                 std::vector<int>& level_buf) {
  std::fill(level_buf.begin(), level_buf.end(), -1);
  std::queue<int> q;
  q.push(start);
  level_buf[static_cast<std::size_t>(start)] = 0;
  int last_level = 0;
  std::vector<int> last_nodes{start};
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    const int lv = level_buf[static_cast<std::size_t>(v)];
    if (lv > last_level) {
      last_level = lv;
      last_nodes.clear();
    }
    if (lv == last_level) last_nodes.push_back(v);
    for (int w : adj[static_cast<std::size_t>(v)]) {
      if (level_buf[static_cast<std::size_t>(w)] < 0) {
        level_buf[static_cast<std::size_t>(w)] = lv + 1;
        q.push(w);
      }
    }
  }
  int best = last_nodes.front();
  for (int v : last_nodes)
    if (adj[static_cast<std::size_t>(v)].size() < adj[static_cast<std::size_t>(best)].size())
      best = v;
  return best;
}

}  // namespace

std::vector<int> rcm_ordering(const SparsePattern& pattern) {
  const int n = pattern.n;
  const auto adj = symmetric_adjacency(pattern);

  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<char> visited(static_cast<std::size_t>(n), 0);
  std::vector<int> level_buf(static_cast<std::size_t>(n), -1);
  std::vector<int> nbrs;

  for (int seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    // Lowest-degree unvisited vertex of this component would be ideal; the
    // double-BFS pseudo-peripheral refinement below makes the exact seed
    // unimportant.
    int start = bfs_farthest(adj, seed, level_buf);
    start = bfs_farthest(adj, start, level_buf);

    // Cuthill-McKee BFS with neighbors enqueued in ascending degree order.
    std::queue<int> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = 1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop();
      order.push_back(v);
      nbrs.clear();
      for (int w : adj[static_cast<std::size_t>(v)])
        if (!visited[static_cast<std::size_t>(w)]) nbrs.push_back(w);
      std::sort(nbrs.begin(), nbrs.end(), [&](int a, int b) {
        return adj[static_cast<std::size_t>(a)].size() < adj[static_cast<std::size_t>(b)].size();
      });
      for (int w : nbrs) {
        visited[static_cast<std::size_t>(w)] = 1;
        q.push(w);
      }
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

// ------------------------------------------------------------------- stats

SparseLuStatsView& sparse_lu_stats() {
  // One global view object; per-thread isolation lives in the obs
  // registry's shards (each Cell access resolves the CALLING thread's
  // cell), so concurrent sweeps never race on the counters and the same
  // numbers aggregate into bench metrics blocks for free.
  // Observability metadata only — never feeds result values.
  static SparseLuStatsView view(/*live=*/true);
  return view;
}

// --------------------------------------------------------------------- LU

template <typename T>
SparseLu<T>::SparseLu(const SparseMatrix<T>& a, Options options) {
  n_ = a.size();
  if (n_ == 0) throw std::invalid_argument("SparseLu: empty matrix");
  pattern_ = a.pattern_ptr();

  if (options.reorder && n_ > 2) {
    perm_ = rcm_ordering(*pattern_);
  } else {
    perm_.resize(static_cast<std::size_t>(n_));
    std::iota(perm_.begin(), perm_.end(), 0);
  }
  inv_perm_.resize(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i) inv_perm_[static_cast<std::size_t>(perm_[i])] = i;

  build_csc(a);
  work_.assign(static_cast<std::size_t>(n_), T{});
  full_factor(a);
}

template <typename T>
void SparseLu<T>::build_csc(const SparseMatrix<T>& a) {
  const auto& pattern = a.pattern();
  const int nnz = pattern.nnz();
  csc_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  csc_row_.resize(static_cast<std::size_t>(nnz));
  csc_src_.resize(static_cast<std::size_t>(nnz));

  for (int p = 0; p < nnz; ++p)
    ++csc_ptr_[static_cast<std::size_t>(
                    inv_perm_[static_cast<std::size_t>(pattern.col_idx[p])]) +
                1];
  for (int j = 0; j < n_; ++j) csc_ptr_[j + 1] += csc_ptr_[j];

  std::vector<int> fill(csc_ptr_.begin(), csc_ptr_.end() - 1);
  for (int r = 0; r < n_; ++r) {
    const int r2 = inv_perm_[static_cast<std::size_t>(r)];
    for (int p = pattern.row_ptr[r]; p < pattern.row_ptr[r + 1]; ++p) {
      const int j2 = inv_perm_[static_cast<std::size_t>(pattern.col_idx[p])];
      const int pos = fill[static_cast<std::size_t>(j2)]++;
      csc_row_[static_cast<std::size_t>(pos)] = r2;
      csc_src_[static_cast<std::size_t>(pos)] = p;
    }
  }
}

template <typename T>
void SparseLu<T>::full_factor(const SparseMatrix<T>& a) {
  const auto& av = a.values();
  const std::size_t reserve = 4 * static_cast<std::size_t>(a.nnz()) +
                              2 * static_cast<std::size_t>(n_);

  lp_.assign(1, 0);
  up_.assign(1, 0);
  li_.clear();
  ui_.clear();
  lx_.clear();
  ux_.clear();
  li_.reserve(reserve);
  lx_.reserve(reserve);
  ui_.reserve(reserve);
  ux_.reserve(reserve);
  pivot_inv_.assign(static_cast<std::size_t>(n_), -1);

  std::vector<T> x(static_cast<std::size_t>(n_), T{});
  std::vector<char> marked(static_cast<std::size_t>(n_), 0);
  std::vector<int> xi(static_cast<std::size_t>(n_));
  std::vector<int> dfs_stack(static_cast<std::size_t>(n_));
  std::vector<int> pos_stack(static_cast<std::size_t>(n_));

  // Iterative DFS through L's structure: the pattern of L\A2(:,j) is the set
  // of rows reachable from A2(:,j)'s rows. Emits into xi[top..n) in
  // topological order. Row indices are A2 (pre-pivot) rows; pivot_inv_ maps
  // a row to its L column once it has been chosen as a pivot.
  const auto dfs = [&](int start, int top) {
    int head = 0;
    dfs_stack[0] = start;
    while (head >= 0) {
      const int i = dfs_stack[static_cast<std::size_t>(head)];
      const int jl = pivot_inv_[static_cast<std::size_t>(i)];
      if (!marked[static_cast<std::size_t>(i)]) {
        marked[static_cast<std::size_t>(i)] = 1;
        pos_stack[static_cast<std::size_t>(head)] = (jl < 0) ? 0 : lp_[jl];
      }
      bool done = true;
      const int p_end = (jl < 0) ? 0 : lp_[jl + 1];
      for (int p = pos_stack[static_cast<std::size_t>(head)]; p < p_end; ++p) {
        const int child = li_[static_cast<std::size_t>(p)];
        if (marked[static_cast<std::size_t>(child)]) continue;
        pos_stack[static_cast<std::size_t>(head)] = p + 1;
        dfs_stack[static_cast<std::size_t>(++head)] = child;
        done = false;
        break;
      }
      if (done) {
        --head;
        xi[static_cast<std::size_t>(--top)] = i;
      }
    }
    return top;
  };

  for (int j = 0; j < n_; ++j) {
    // --- symbolic: reachability of column j ------------------------------
    int top = n_;
    for (int p = csc_ptr_[j]; p < csc_ptr_[j + 1]; ++p) {
      const int i = csc_row_[static_cast<std::size_t>(p)];
      if (!marked[static_cast<std::size_t>(i)]) top = dfs(i, top);
    }

    // --- numeric: x = L \ A2(:,j) ---------------------------------------
    for (int p = top; p < n_; ++p) x[static_cast<std::size_t>(xi[p])] = T{};
    for (int p = csc_ptr_[j]; p < csc_ptr_[j + 1]; ++p)
      x[static_cast<std::size_t>(csc_row_[p])] += av[static_cast<std::size_t>(csc_src_[p])];
    for (int p = top; p < n_; ++p) {
      const int i = xi[static_cast<std::size_t>(p)];
      marked[static_cast<std::size_t>(i)] = 0;  // reset for the next column
      const int jl = pivot_inv_[static_cast<std::size_t>(i)];
      if (jl < 0) continue;
      const T xi_val = x[static_cast<std::size_t>(i)];
      if (xi_val == T{}) continue;
      for (int q = lp_[jl] + 1; q < lp_[jl + 1]; ++q)
        x[static_cast<std::size_t>(li_[q])] -= lx_[static_cast<std::size_t>(q)] * xi_val;
    }

    // --- pivot: largest magnitude among not-yet-pivotal rows -------------
    int pivot_row = -1;
    double pivot_mag = -1.0;
    for (int p = top; p < n_; ++p) {
      const int i = xi[static_cast<std::size_t>(p)];
      if (pivot_inv_[static_cast<std::size_t>(i)] >= 0) continue;
      const double m = magnitude(x[static_cast<std::size_t>(i)]);
      if (m > pivot_mag) {
        pivot_mag = m;
        pivot_row = i;
      }
    }
    if (pivot_row < 0 || pivot_mag <= 0.0)
      throw std::runtime_error("SparseLu: matrix is singular");
    const T pivot = x[static_cast<std::size_t>(pivot_row)];

    // --- emit U(:,j) in discovery (topological) order, pivot last --------
    for (int p = top; p < n_; ++p) {
      const int i = xi[static_cast<std::size_t>(p)];
      const int jl = pivot_inv_[static_cast<std::size_t>(i)];
      if (jl < 0) continue;
      ui_.push_back(jl);
      ux_.push_back(x[static_cast<std::size_t>(i)]);
    }
    ui_.push_back(j);
    ux_.push_back(pivot);
    up_.push_back(static_cast<int>(ui_.size()));

    // --- emit L(:,j): unit diagonal first --------------------------------
    pivot_inv_[static_cast<std::size_t>(pivot_row)] = j;
    li_.push_back(pivot_row);
    lx_.push_back(T{1});
    for (int p = top; p < n_; ++p) {
      const int i = xi[static_cast<std::size_t>(p)];
      if (pivot_inv_[static_cast<std::size_t>(i)] >= 0) continue;
      li_.push_back(i);
      lx_.push_back(x[static_cast<std::size_t>(i)] / pivot);
    }
    lp_.push_back(static_cast<int>(li_.size()));
  }

  // Remap L's rows from A2 space into pivot space so the solves and the
  // refactorization replay work entirely in final row order.
  for (auto& i : li_) i = pivot_inv_[static_cast<std::size_t>(i)];

  ++sparse_lu_stats().symbolic;
  ++sparse_lu_stats().numeric;
}

template <typename T>
bool SparseLu<T>::numeric_refactor(const SparseMatrix<T>& a) {
  const auto& av = a.values();
  std::vector<T>& x = work_;

  for (int j = 0; j < n_; ++j) {
    for (int q = up_[j]; q < up_[j + 1]; ++q) x[static_cast<std::size_t>(ui_[q])] = T{};
    for (int q = lp_[j]; q < lp_[j + 1]; ++q) x[static_cast<std::size_t>(li_[q])] = T{};
    for (int p = csc_ptr_[j]; p < csc_ptr_[j + 1]; ++p)
      x[static_cast<std::size_t>(pivot_inv_[static_cast<std::size_t>(csc_row_[p])])] +=
          av[static_cast<std::size_t>(csc_src_[p])];

    // Replay the recorded elimination sequence (stored topologically).
    for (int q = up_[j]; q < up_[j + 1] - 1; ++q) {
      const int k = ui_[static_cast<std::size_t>(q)];
      const T ukj = x[static_cast<std::size_t>(k)];
      ux_[static_cast<std::size_t>(q)] = ukj;
      if (ukj == T{}) continue;
      for (int r = lp_[k] + 1; r < lp_[k + 1]; ++r)
        x[static_cast<std::size_t>(li_[r])] -= lx_[static_cast<std::size_t>(r)] * ukj;
    }

    const T pivot = x[static_cast<std::size_t>(j)];
    if (pivot == T{}) return false;  // stale pivot order: caller re-pivots
    ux_[static_cast<std::size_t>(up_[j + 1]) - 1] = pivot;
    lx_[static_cast<std::size_t>(lp_[j])] = T{1};
    for (int r = lp_[j] + 1; r < lp_[j + 1]; ++r)
      lx_[static_cast<std::size_t>(r)] = x[static_cast<std::size_t>(li_[r])] / pivot;
  }

  ++sparse_lu_stats().numeric;
  return true;
}

template <typename T>
void SparseLu<T>::refactor(const SparseMatrix<T>& a) {
  if (a.pattern_ptr() != pattern_) {
    // Structurally identical patterns are as good as pointer-identical ones:
    // the recorded CSC scatter map (csc_src_) indexes CSR value positions,
    // which depend only on the structure. Adopting the caller's pattern
    // pointer makes every later refactor against it an O(1) check. This is
    // what lets a sweep reuse one symbolic analysis across circuits that are
    // rebuilt per grid point with identical topology.
    if (!a.pattern_ptr() || !pattern_ || a.pattern().n != pattern_->n ||
        a.pattern().row_ptr != pattern_->row_ptr ||
        a.pattern().col_idx != pattern_->col_idx)
      throw std::invalid_argument("SparseLu::refactor: pattern mismatch");
    pattern_ = a.pattern_ptr();
  }
  if (!numeric_refactor(a)) full_factor(a);
}

template <typename T>
std::vector<T> SparseLu<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x = b;
  solve_in_place(x);
  return x;
}

template <typename T>
void SparseLu<T>::solve_in_place(std::vector<T>& x) const {
  if (x.size() != static_cast<std::size_t>(n_))
    throw std::invalid_argument("SparseLu::solve: rhs size mismatch");
  OBS_COUNTER_ADD("lu.solves", 1);
  std::vector<T>& w = work_;

  // A2 = A(perm,perm) and P2 A2 = L U, so w = P2 * (b permuted by perm).
  for (int i = 0; i < n_; ++i)
    w[static_cast<std::size_t>(pivot_inv_[i])] = x[static_cast<std::size_t>(perm_[i])];

  for (int j = 0; j < n_; ++j) {  // L: unit diagonal stored first per column
    const T xj = w[static_cast<std::size_t>(j)];
    if (xj == T{}) continue;
    for (int p = lp_[j] + 1; p < lp_[j + 1]; ++p)
      w[static_cast<std::size_t>(li_[p])] -= lx_[static_cast<std::size_t>(p)] * xj;
  }
  for (int j = n_ - 1; j >= 0; --j) {  // U: pivot stored last per column
    const T xj = (w[static_cast<std::size_t>(j)] /=
                  ux_[static_cast<std::size_t>(up_[j + 1]) - 1]);
    if (xj == T{}) continue;
    for (int p = up_[j]; p < up_[j + 1] - 1; ++p)
      w[static_cast<std::size_t>(ui_[p])] -= ux_[static_cast<std::size_t>(p)] * xj;
  }

  for (int j = 0; j < n_; ++j)
    x[static_cast<std::size_t>(perm_[j])] = w[static_cast<std::size_t>(j)];
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace rlcsim::numeric
