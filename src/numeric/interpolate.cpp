#include "numeric/interpolate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcsim::numeric {
namespace {

void validate_grid(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("interp: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("interp: need at least 2 samples");
  for (std::size_t i = 1; i < xs.size(); ++i)
    if (!(xs[i] > xs[i - 1]))
      throw std::invalid_argument("interp: x grid must be strictly increasing");
}

// Index of the interval [xs[i], xs[i+1]] containing x (clamped).
std::size_t interval_index(const std::vector<double>& xs, double x) {
  if (x <= xs.front()) return 0;
  if (x >= xs.back()) return xs.size() - 2;
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  return static_cast<std::size_t>(it - xs.begin()) - 1;
}

}  // namespace

double interp_linear(const std::vector<double>& xs, const std::vector<double>& ys,
                     double x) {
  validate_grid(xs, ys);
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const std::size_t i = interval_index(xs, x);
  const double t = (x - xs[i]) / (xs[i + 1] - xs[i]);
  return ys[i] + t * (ys[i + 1] - ys[i]);
}

MonotoneCubic::MonotoneCubic(std::vector<double> xs, std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  validate_grid(xs_, ys_);
  const std::size_t n = xs_.size();
  std::vector<double> secants(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    secants[i] = (ys_[i + 1] - ys_[i]) / (xs_[i + 1] - xs_[i]);

  slopes_.resize(n);
  slopes_.front() = secants.front();
  slopes_.back() = secants.back();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    if (secants[i - 1] * secants[i] <= 0.0)
      slopes_[i] = 0.0;  // local extremum: flat tangent preserves monotonicity
    else
      slopes_[i] = 0.5 * (secants[i - 1] + secants[i]);
  }
  // Fritsch–Carlson limiter.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (secants[i] == 0.0) {
      slopes_[i] = slopes_[i + 1] = 0.0;
      continue;
    }
    const double a = slopes_[i] / secants[i];
    const double b = slopes_[i + 1] / secants[i];
    const double norm = a * a + b * b;
    if (norm > 9.0) {
      const double tau = 3.0 / std::sqrt(norm);
      slopes_[i] = tau * a * secants[i];
      slopes_[i + 1] = tau * b * secants[i];
    }
  }
}

double MonotoneCubic::operator()(double x) const {
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const std::size_t i = interval_index(xs_, x);
  const double h = xs_[i + 1] - xs_[i];
  const double t = (x - xs_[i]) / h;
  const double t2 = t * t;
  const double t3 = t2 * t;
  const double h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
  const double h10 = t3 - 2.0 * t2 + t;
  const double h01 = -2.0 * t3 + 3.0 * t2;
  const double h11 = t3 - t2;
  return h00 * ys_[i] + h10 * h * slopes_[i] + h01 * ys_[i + 1] +
         h11 * h * slopes_[i + 1];
}

std::optional<double> find_crossing(const std::vector<double>& xs,
                                    const std::vector<double>& ys, double level,
                                    double x_from, int direction) {
  validate_grid(xs, ys);
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] < x_from) continue;
    const double y0 = ys[i] - level;
    const double y1 = ys[i + 1] - level;
    const bool rising = y0 < 0.0 && y1 >= 0.0;
    const bool falling = y0 > 0.0 && y1 <= 0.0;
    if ((direction >= 0 && rising) || (direction <= 0 && falling)) {
      const double t = (y1 == y0) ? 0.0 : -y0 / (y1 - y0);
      const double x = xs[i] + t * (xs[i + 1] - xs[i]);
      if (x >= x_from) return x;
    }
  }
  return std::nullopt;
}

}  // namespace rlcsim::numeric
