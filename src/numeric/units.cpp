#include "numeric/units.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <limits>

namespace rlcsim::units {
namespace {

struct Prefix {
  double scale;
  const char* symbol;
};

// Ordered largest-to-smallest for the engineering formatter.
constexpr std::array<Prefix, 11> kPrefixes{{
    {1e12, "T"},
    {1e9, "G"},
    {1e6, "M"},
    {1e3, "k"},
    {1.0, ""},
    {1e-3, "m"},
    {1e-6, "u"},
    {1e-9, "n"},
    {1e-12, "p"},
    {1e-15, "f"},
    {1e-18, "a"},
}};

}  // namespace

std::string eng(double value, const std::string& unit, int significant_digits) {
  if (value == 0.0) return "0 " + unit;
  if (!std::isfinite(value)) return std::to_string(value) + " " + unit;

  const double magnitude = std::fabs(value);
  const Prefix* chosen = &kPrefixes.back();
  for (const Prefix& p : kPrefixes) {
    if (magnitude >= p.scale) {
      chosen = &p;
      break;
    }
  }
  const double scaled = value / chosen->scale;
  // Significant digits -> decimals: scaled is in [1, 1000).
  int integer_digits = 1;
  const double abs_scaled = std::fabs(scaled);
  if (abs_scaled >= 100.0)
    integer_digits = 3;
  else if (abs_scaled >= 10.0)
    integer_digits = 2;
  const int decimals = std::max(0, significant_digits - integer_digits);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %s%s", decimals, scaled, chosen->symbol,
                unit.c_str());
  return buf;
}

double parse_spice_number(const std::string& text) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  if (text.empty()) return nan;

  // Numeric part.
  std::size_t pos = 0;
  double base = 0.0;
  try {
    base = std::stod(text, &pos);
  } catch (...) {
    return nan;
  }
  if (pos >= text.size()) return base;

  // Suffix part: lower-case it, then match the longest known scale prefix.
  std::string suffix;
  suffix.reserve(text.size() - pos);
  for (std::size_t i = pos; i < text.size(); ++i)
    suffix.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(text[i]))));

  // "meg" must be checked before "m".
  if (suffix.rfind("meg", 0) == 0) return base * 1e6;
  switch (suffix.front()) {
    case 'f': return base * 1e-15;
    case 'p': return base * 1e-12;
    case 'n': return base * 1e-9;
    case 'u': return base * 1e-6;
    case 'm': return base * 1e-3;
    case 'k': return base * 1e3;
    case 'g': return base * 1e9;
    case 't': return base * 1e12;
    default:
      // Unknown letter: SPICE convention treats it as a unit word (e.g. "5V").
      return std::isalpha(static_cast<unsigned char>(suffix.front())) ? base : nan;
  }
}

}  // namespace rlcsim::units
