#include "numeric/optimize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace rlcsim::numeric {
namespace {

constexpr double kGolden = 0.6180339887498949;  // (sqrt(5) - 1) / 2

}  // namespace

Minimum1D golden_section(const std::function<double(double)>& f, double lo, double hi,
                         const MinimizeOptions& opt) {
  if (!(lo < hi)) throw std::invalid_argument("golden_section: lo must be < hi");
  double a = lo, b = hi;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  int it = 0;
  while (std::fabs(b - a) > opt.x_tolerance && it < opt.max_iterations) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = f(x2);
    }
    ++it;
  }
  const double x = 0.5 * (a + b);
  return {x, f(x), it};
}

Minimum1D brent_min(const std::function<double(double)>& f, double lo, double hi,
                    const MinimizeOptions& opt) {
  if (!(lo < hi)) throw std::invalid_argument("brent_min: lo must be < hi");
  // Brent's minimization (Numerical-Recipes-style structure, reimplemented).
  const double cgold = 1.0 - kGolden;
  double a = lo, b = hi;
  double x = a + cgold * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  int it = 0;
  for (; it < opt.max_iterations; ++it) {
    const double xm = 0.5 * (a + b);
    const double tol1 = opt.x_tolerance * std::fabs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::fabs(x - xm) <= tol2 - 0.5 * (b - a)) break;
    bool use_golden = true;
    if (std::fabs(e) > tol1) {
      // Parabolic fit through x, v, w.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_prev = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) d = (xm > x) ? tol1 : -tol1;
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = cgold * e;
    }
    const double u = (std::fabs(d) >= tol1) ? x + d : x + (d > 0.0 ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x)
        a = x;
      else
        b = x;
      v = w; w = x; x = u;
      fv = fw; fw = fx; fx = fu;
    } else {
      if (u < x)
        a = u;
      else
        b = u;
      if (fu <= fw || w == x) {
        v = w; w = u;
        fv = fw; fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  return {x, fx, it};
}

MinimumND nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                      const std::vector<double>& start,
                      const std::vector<double>& initial_step,
                      const MinimizeOptions& opt) {
  const std::size_t n = start.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty start point");
  std::vector<double> steps = initial_step;
  if (steps.size() == 1 && n > 1) steps.assign(n, initial_step.front());
  if (steps.size() != n)
    throw std::invalid_argument("nelder_mead: step size count mismatch");

  // Build the initial simplex.
  std::vector<std::vector<double>> pts(n + 1, start);
  for (std::size_t i = 0; i < n; ++i) pts[i + 1][i] += steps[i];
  std::vector<double> values(n + 1);
  for (std::size_t i = 0; i <= n; ++i) values[i] = f(pts[i]);

  constexpr double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;
  int it = 0;
  bool converged = false;
  std::vector<std::size_t> order(n + 1);
  for (; it < opt.max_iterations; ++it) {
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });

    // Convergence: simplex diameter.
    double diameter = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diameter = std::max(
          diameter, std::fabs(pts[order.back()][i] - pts[order.front()][i]));
    }
    if (diameter < opt.x_tolerance) {
      converged = true;
      break;
    }

    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += pts[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d)
        p[d] = centroid[d] + coeff * (pts[worst][d] - centroid[d]);
      return p;
    };

    const std::vector<double> reflected = blend(-alpha);
    const double f_reflected = f(reflected);
    if (f_reflected < values[best]) {
      const std::vector<double> expanded = blend(-gamma);
      const double f_expanded = f(expanded);
      if (f_expanded < f_reflected) {
        pts[worst] = expanded;
        values[worst] = f_expanded;
      } else {
        pts[worst] = reflected;
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      pts[worst] = reflected;
      values[worst] = f_reflected;
      continue;
    }
    const std::vector<double> contracted = blend(rho);
    const double f_contracted = f(contracted);
    if (f_contracted < values[worst]) {
      pts[worst] = contracted;
      values[worst] = f_contracted;
      continue;
    }
    // Shrink toward the best point.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d)
        pts[i][d] = pts[best][d] + sigma * (pts[i][d] - pts[best][d]);
      values[i] = f(pts[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (values[i] < values[best]) best = i;
  return {pts[best], values[best], it, converged};
}

MinimumND grid_refine_2d(const std::function<double(double, double)>& f, double x_lo,
                         double x_hi, double y_lo, double y_hi, int grid_points,
                         int refinements) {
  if (!(x_lo < x_hi) || !(y_lo < y_hi))
    throw std::invalid_argument("grid_refine_2d: empty rectangle");
  if (grid_points < 3) throw std::invalid_argument("grid_refine_2d: grid too coarse");

  double best_x = x_lo, best_y = y_lo;
  double best_value = std::numeric_limits<double>::infinity();
  int evaluations = 0;
  for (int r = 0; r < refinements; ++r) {
    const double dx = (x_hi - x_lo) / (grid_points - 1);
    const double dy = (y_hi - y_lo) / (grid_points - 1);
    for (int i = 0; i < grid_points; ++i) {
      for (int j = 0; j < grid_points; ++j) {
        const double x = x_lo + i * dx;
        const double y = y_lo + j * dy;
        const double value = f(x, y);
        ++evaluations;
        if (value < best_value) {
          best_value = value;
          best_x = x;
          best_y = y;
        }
      }
    }
    // Zoom into a 3-cell window around the incumbent (clamped to the original
    // rectangle on the first pass only via max/min against current bounds).
    x_lo = best_x - 1.5 * dx;
    x_hi = best_x + 1.5 * dx;
    y_lo = best_y - 1.5 * dy;
    y_hi = best_y + 1.5 * dy;
  }
  return {{best_x, best_y}, best_value, evaluations, true};
}

}  // namespace rlcsim::numeric
