// Scenario-batched value layer under the sparse LU's symbolic machinery.
//
// Every sweep in this library evaluates thousands of matrices that share ONE
// sparsity pattern and — via SparseLu::refactor — one recorded elimination
// sequence. The scalar hot path still walks that sequence once per scenario;
// this header walks it once per BATCH: a BatchedValues holds W scenarios'
// CSR value arrays side by side (structure-of-arrays, lane-major:
// values[slot * W + lane]), and SparseLuBatch replays the donor
// factorization's recorded pivot order updating all W lanes per CSR slot.
//
// The lane loops are plain double arithmetic over contiguous double[W]
// blocks — exactly the shape the autovectorizer turns into SIMD under
// -march=native — with NO intrinsics, so correctness never depends on the
// target ISA. Bit-identity contract: because the pivot order is frozen from
// the donor's symbolic analysis, every lane takes the same control path and
// performs the same arithmetic, in the same order, as W independent scalar
// SparseLu::refactor calls — results are bit-identical (the scalar replay's
// exact-zero guards are reproduced per lane as value-preserving blends, so
// even signed zeros match). A lane whose values hit the exact-zero stale
// pivot ejects to the scalar path INDIVIDUALLY (SparseLu copy + refactor,
// which re-pivots), again matching what the scalar path would have done.
//
// Lane widths are W in {1, 4, 8}, dispatched at runtime (templated kernels
// instantiated per width); RLCSIM_LANES overrides the default dispatch.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "numeric/sparse.h"

namespace rlcsim::numeric {

// Lane widths the batched kernels are instantiated for.
inline constexpr std::size_t kBatchLaneWidths[] = {1, 4, 8};
bool is_supported_lane_width(std::size_t lanes);

// Default lane width of the batched sweep paths: the RLCSIM_LANES
// environment knob when set ("1" | "4" | "8" | "auto"; unset/empty/auto =
// the widest kernel, 8). Anything else throws std::invalid_argument naming
// the variable and the offending value — a typo'd lane count silently
// falling back to some default is exactly the failure mode an override knob
// must not have (the RLCSIM_THREADS hardening, applied here).
std::size_t default_lane_width();

// W CSR value arrays (or W right-hand sides) over one shared structure,
// stored lane-major so the elimination inner loops touch W contiguous
// doubles per slot.
class BatchedValues {
 public:
  BatchedValues() = default;
  // `slots` = pattern nnz for matrix values, or n for RHS vectors.
  // Throws std::invalid_argument for an unsupported lane count.
  BatchedValues(std::size_t slots, std::size_t lanes);

  std::size_t slots() const { return slots_; }
  std::size_t lanes() const { return lanes_; }

  double& at(std::size_t slot, std::size_t lane) {
    return data_[slot * lanes_ + lane];
  }
  double at(std::size_t slot, std::size_t lane) const {
    return data_[slot * lanes_ + lane];
  }
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  // Scalar <-> lane transfers (sizes must match `slots`).
  void set_lane(std::size_t lane, const std::vector<double>& values);
  void extract_lane(std::size_t lane, std::vector<double>& out) const;

  // Zero one lane (fresh accumulation target for stamping loops).
  void clear_lane(std::size_t lane);

 private:
  std::size_t slots_ = 0;
  std::size_t lanes_ = 1;
  std::vector<double> data_;
};

// Batched numeric refactorization + solve along a donor RealSparseLu's
// recorded symbolic analysis. The donor is copied at construction (so the
// batch owns its symbolic state) and also serves as the template for the
// per-lane scalar ejection fallback.
class SparseLuBatch {
 public:
  // Throws std::invalid_argument for an unsupported lane count.
  SparseLuBatch(const RealSparseLu& donor, std::size_t lanes);

  std::size_t size() const { return donor_.size(); }
  std::size_t lanes() const { return lanes_; }

  // Numeric-only refactorization of all W lanes: `values` must hold the CSR
  // value arrays (donor pattern slot order, slots() == pattern nnz). Counts
  // as one numeric pass PER NON-EJECTED LANE in sparse_lu_stats(); ejected
  // lanes count under ejected_lanes plus whatever their scalar fallback
  // factorization records.
  void refactor(const BatchedValues& values);

  // In-place batched triangular solves: x holds W right-hand sides
  // (slots() == size()) and receives the W solutions. Ejected lanes are
  // routed through their scalar fallback factorization transparently.
  void solve_in_place(BatchedValues& x) const;

  // Lanes ejected by the last refactor() (zero stale pivot -> scalar path).
  std::size_t ejected_lane_count() const;
  bool lane_ejected(std::size_t lane) const { return ejected_[lane] != 0; }

 private:
  template <int W>
  void refactor_kernel(const BatchedValues& values);
  template <int W>
  void solve_kernel(BatchedValues& x) const;

  RealSparseLu donor_;
  std::size_t lanes_ = 1;
  // Batched factor values, lane-major over the donor's lx_/ux_ layouts.
  std::vector<double> lx_, ux_;
  std::vector<char> ejected_;
  // Scalar fallbacks, allocated lazily per ejected lane.
  mutable std::vector<std::unique_ptr<RealSparseLu>> scalar_;
  mutable std::vector<double> work_;         // n * lanes solve scratch
  mutable std::vector<double> scalar_work_;  // n scratch for ejected lanes
};

}  // namespace rlcsim::numeric
