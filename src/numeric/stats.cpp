#include "numeric/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcsim::numeric {

double mean(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("mean: empty input");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double rms(const std::vector<double>& v) {
  if (v.empty()) throw std::invalid_argument("rms: empty input");
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double max_abs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

ErrorSummary compare(const std::vector<double>& a, const std::vector<double>& b,
                     double rel_floor) {
  if (a.size() != b.size() || a.empty())
    throw std::invalid_argument("compare: size mismatch or empty");
  ErrorSummary s;
  s.count = a.size();
  double abs_acc = 0.0, rel_acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double abs_err = std::fabs(a[i] - b[i]);
    const double rel = abs_err / std::max(std::fabs(b[i]), rel_floor);
    s.max_abs = std::max(s.max_abs, abs_err);
    s.max_rel = std::max(s.max_rel, rel);
    abs_acc += abs_err;
    rel_acc += rel;
  }
  s.mean_abs = abs_acc / static_cast<double>(s.count);
  s.mean_rel = rel_acc / static_cast<double>(s.count);
  return s;
}

double rel_error(double value, double reference, double rel_floor) {
  return std::fabs(value - reference) / std::max(std::fabs(reference), rel_floor);
}

}  // namespace rlcsim::numeric
