// Small-degree polynomial utilities.
//
// Coefficients are stored lowest-degree first: p(x) = c[0] + c[1] x + ... .
// The transfer-function layer uses these for the moment-matched two-pole
// model (quadratic denominators) and for pole extraction.
#pragma once

#include <complex>
#include <vector>

namespace rlcsim::numeric {

// Horner evaluation of p(x) with real coefficients (lowest degree first).
double polyval(const std::vector<double>& coeffs, double x);
std::complex<double> polyval(const std::vector<double>& coeffs, std::complex<double> x);

// Coefficients of dp/dx.
std::vector<double> polyder(const std::vector<double>& coeffs);

// Roots of a x^2 + b x + c = 0 (note: highest-degree-first arguments, matching
// the school form). Returns both roots; they are complex conjugates when the
// discriminant is negative. Throws std::invalid_argument when a == 0.
struct QuadraticRoots {
  std::complex<double> r1;
  std::complex<double> r2;
};
QuadraticRoots solve_quadratic(double a, double b, double c);

// Real-coefficient cubic a x^3 + b x^2 + c x + d = 0 via the trigonometric /
// Cardano method. Throws std::invalid_argument when a == 0.
std::vector<std::complex<double>> solve_cubic(double a, double b, double c, double d);

// All (complex) roots of an arbitrary real polynomial via the Durand–Kerner
// iteration. Intended for the low-degree (<10) denominators that arise from
// lumped approximations; not a production eigensolver.
std::vector<std::complex<double>> polyroots(const std::vector<double>& coeffs,
                                            int max_iterations = 500,
                                            double tolerance = 1e-12);

}  // namespace rlcsim::numeric
