// Floating-point environment guards for the bit-identity contract.
//
// Every memcmp gate in the tree (sweep/graph/batch determinism checks)
// assumes the IEEE-754 default environment: round-to-nearest-even and
// gradual underflow. A library or plugin that flips the rounding mode or
// sets FTZ/DAZ (common in audio/game middleware, and what -ffast-math
// links in via crtfastmath.o) would silently change results while every
// algorithm still "works" — the worst possible failure mode for a
// determinism contract. These guards turn that silent drift into a loud
// error at the entry points of the result-producing subsystems.
//
// Three layers, checked at different times:
//   - configure time: CMakeLists.txt rejects -ffast-math/-ffp-contract=fast
//     flag soup outright;
//   - compile time: static_assert(FLT_EVAL_METHOD == 0) where the batch
//     kernels live (numeric/sparse_batch.cpp, sim/transient_batch.cpp);
//   - run time: fp_env_guard at sweep/graph entry (debug builds).
#pragma once

namespace rlcsim::numeric {

// True iff the current thread's FP environment matches the contract:
// round-to-nearest and no flush-to-zero / denormals-are-zero behavior
// (probed by actually producing and consuming a subnormal, so it catches
// MXCSR bits regardless of how they were set).
bool fp_env_matches_contract();

// Throws std::runtime_error naming `where` when the environment is
// off-contract. Always checks when called, in every build type — callers
// that only want the check in debug builds go through fp_env_guard.
void check_fp_env(const char* where);

// Entry-point guard: checks in debug builds, no-op in release (the probe
// is cheap, but entry points sit on hot paths and the CI sanitizer jobs
// build Debug, so debug-only keeps release overhead at zero while every
// PR still runs the check).
class fp_env_guard {
 public:
  explicit fp_env_guard(const char* where) {
#ifndef NDEBUG
    check_fp_env(where);
#else
    (void)where;
#endif
  }
};

}  // namespace rlcsim::numeric
