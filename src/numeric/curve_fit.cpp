#include "numeric/curve_fit.h"

#include <cmath>
#include <stdexcept>

#include "numeric/matrix.h"

namespace rlcsim::numeric {
namespace {

double residual_sum_squares(const FitModel& model, const std::vector<double>& x,
                            const std::vector<double>& y,
                            const std::vector<double>& w,
                            const std::vector<double>& params) {
  double rss = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = w[i] * (y[i] - model(x[i], params));
    rss += r * r;
  }
  return rss;
}

}  // namespace

FitResult fit_levenberg_marquardt(const FitModel& model, const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  const std::vector<double>& initial,
                                  const FitOptions& options,
                                  const std::vector<double>& weights) {
  if (x.empty() || x.size() != y.size())
    throw std::invalid_argument("fit_levenberg_marquardt: bad data sizes");
  if (initial.empty())
    throw std::invalid_argument("fit_levenberg_marquardt: no parameters");
  if (!weights.empty() && weights.size() != x.size())
    throw std::invalid_argument("fit_levenberg_marquardt: weight size mismatch");

  const std::size_t n = x.size();
  const std::size_t p = initial.size();
  std::vector<double> w = weights.empty() ? std::vector<double>(n, 1.0) : weights;

  std::vector<double> params = initial;
  double lambda = options.initial_lambda;
  double rss = residual_sum_squares(model, x, y, w, params);

  FitResult result;
  int it = 0;
  for (; it < options.max_iterations; ++it) {
    // Weighted residuals and forward-difference Jacobian.
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = w[i] * (y[i] - model(x[i], params));

    RealMatrix jac(n, p);
    for (std::size_t j = 0; j < p; ++j) {
      std::vector<double> bumped = params;
      const double h = options.jacobian_epsilon *
                       std::max(1.0, std::fabs(params[j]));
      bumped[j] += h;
      for (std::size_t i = 0; i < n; ++i) {
        const double bumped_model = model(x[i], bumped);
        jac(i, j) = w[i] * (bumped_model - model(x[i], params)) / h;
      }
    }

    // Normal equations: (J^T J + lambda diag(J^T J)) delta = J^T r.
    RealMatrix jtj(p, p);
    std::vector<double> jtr(p, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t a = 0; a < p; ++a) {
        jtr[a] += jac(i, a) * r[i];
        for (std::size_t b = a; b < p; ++b) jtj(a, b) += jac(i, a) * jac(i, b);
      }
    }
    for (std::size_t a = 0; a < p; ++a)
      for (std::size_t b = 0; b < a; ++b) jtj(a, b) = jtj(b, a);

    double max_gradient = 0.0;
    for (double g : jtr) max_gradient = std::max(max_gradient, std::fabs(g));
    if (max_gradient < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Try steps, inflating lambda until one reduces the RSS.
    bool stepped = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      RealMatrix damped = jtj;
      for (std::size_t a = 0; a < p; ++a)
        damped(a, a) += lambda * std::max(jtj(a, a), 1e-30);

      std::vector<double> delta;
      try {
        delta = solve(damped, jtr);
      } catch (const std::runtime_error&) {
        lambda *= options.lambda_up;
        continue;
      }

      std::vector<double> trial = params;
      double step_norm = 0.0;
      for (std::size_t a = 0; a < p; ++a) {
        trial[a] += delta[a];
        step_norm = std::max(step_norm, std::fabs(delta[a]));
      }
      const double trial_rss = residual_sum_squares(model, x, y, w, trial);
      if (std::isfinite(trial_rss) && trial_rss < rss) {
        params = std::move(trial);
        rss = trial_rss;
        lambda = std::max(lambda * options.lambda_down, 1e-14);
        stepped = true;
        if (step_norm < options.step_tolerance) result.converged = true;
        break;
      }
      lambda *= options.lambda_up;
    }
    if (!stepped || result.converged) {
      result.converged = result.converged || !stepped;
      break;
    }
  }

  result.params = std::move(params);
  result.rss = rss;
  result.iterations = it;
  return result;
}

}  // namespace rlcsim::numeric
