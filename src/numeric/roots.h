// Scalar root finding on black-box functions.
//
// All routines work on `std::function<double(double)>`-compatible callables
// and report failures by exception (std::invalid_argument for precondition
// violations, std::runtime_error for non-convergence) — consistent with the
// rest of the numeric layer.
#pragma once

#include <functional>

namespace rlcsim::numeric {

struct RootOptions {
  double x_tolerance = 1e-12;   // absolute tolerance on the root location
  double f_tolerance = 0.0;     // stop when |f| falls below this (0 = ignore)
  int max_iterations = 200;
};

// Expands/bisects outward from [lo, hi] until f(lo) and f(hi) have opposite
// signs. Returns the bracketing interval. Throws std::runtime_error if no
// sign change is found within `max_expansions` geometric expansions.
struct Bracket {
  double lo = 0.0;
  double hi = 0.0;
};
Bracket bracket_root(const std::function<double(double)>& f, double lo, double hi,
                     int max_expansions = 60);

// Classic bisection on a sign-changing interval. Robust, linear convergence.
double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opt = {});

// Brent's method (inverse quadratic interpolation + secant + bisection
// safeguard). The workhorse root finder of the library.
double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opt = {});

// Newton's method with a bisection safeguard: requires a bracketing interval
// in addition to the derivative; never leaves the bracket.
double newton_safe(const std::function<double(double)>& f,
                   const std::function<double(double)>& df, double lo, double hi,
                   const RootOptions& opt = {});

}  // namespace rlcsim::numeric
