// Sparse linear algebra for the MNA hot paths.
//
// The simulator's matrices (N-segment RLC ladders, repeater chains, coupled
// buses) are >99% zero and nearly banded, and — crucially — every transient
// step size and every AC frequency point shares ONE sparsity pattern: the
// system is always G + scale*C for a frequency/timestep-independent
// conductance pattern G and susceptance pattern C. This header provides the
// three pieces that exploit that:
//
//  * triplet (COO) assembly compressed into CSR with duplicate summing, with
//    a slot map so re-stamping new VALUES into a fixed pattern is a flat
//    array write (no hashing, no searching);
//  * a fill-reducing reverse Cuthill-McKee (RCM) ordering, which makes the
//    ladder matrices nearly banded so LU fill stays O(n);
//  * a left-looking sparse LU (Gilbert–Peierls) with partial pivoting whose
//    symbolic factorization (fill pattern + pivot order) is computed once
//    and then reused by `refactor()` for every subsequent value change —
//    the KLU-style refactorization that turns an AC sweep or a multi-dt
//    transient into one symbolic analysis plus cheap numeric passes.
//
// The dense LuFactorization in matrix.h remains the correctness oracle; the
// simulator selects between the two by system size (see sim/transient.h).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "numeric/matrix.h"
#include "obs/metrics.h"

namespace rlcsim::numeric {

// ------------------------------------------------------------------ pattern

// One (row, col, value) assembly entry. Duplicates are summed on compression.
template <typename T>
struct Triplet {
  int row = 0;
  int col = 0;
  T value{};
};

// Sparsity structure of a square CSR matrix, shared (via shared_ptr) between
// every matrix/factorization with the same pattern: real transient systems,
// complex AC systems, and the LU symbolic analysis all point at one copy.
struct SparsePattern {
  int n = 0;                 // square dimension
  std::vector<int> row_ptr;  // size n + 1
  std::vector<int> col_idx;  // size nnz, ascending within each row

  int nnz() const { return static_cast<int>(col_idx.size()); }
};

using SparsePatternPtr = std::shared_ptr<const SparsePattern>;

// Compresses entry positions into a CSR pattern (duplicates merged, columns
// sorted). If `slots` is non-null, slots->at(k) receives the index into the
// CSR value array where entry k lands, so assembly loops can re-stamp values
// with `values[slots[k]] += v` and never touch the pattern again.
SparsePatternPtr build_pattern(int n, const std::vector<std::pair<int, int>>& entries,
                               std::vector<int>* slots = nullptr);

// --------------------------------------------------------------------- CSR

template <typename T>
class SparseMatrix {
 public:
  SparseMatrix() = default;

  // An all-zero matrix over an existing pattern (values to be stamped).
  explicit SparseMatrix(SparsePatternPtr pattern)
      : pattern_(std::move(pattern)),
        values_(static_cast<std::size_t>(pattern_->nnz()), T{}) {}

  SparseMatrix(SparsePatternPtr pattern, std::vector<T> values)
      : pattern_(std::move(pattern)), values_(std::move(values)) {
    if (values_.size() != static_cast<std::size_t>(pattern_->nnz()))
      throw std::invalid_argument("SparseMatrix: values/pattern size mismatch");
  }

  // Convenience: compress a triplet list (duplicates summed).
  SparseMatrix(int n, const std::vector<Triplet<T>>& triplets);

  int size() const { return pattern_ ? pattern_->n : 0; }
  int nnz() const { return pattern_ ? pattern_->nnz() : 0; }
  const SparsePattern& pattern() const { return *pattern_; }
  const SparsePatternPtr& pattern_ptr() const { return pattern_; }
  std::vector<T>& values() { return values_; }
  const std::vector<T>& values() const { return values_; }

  // y = A x (for residual checks and tests).
  std::vector<T> multiply(const std::vector<T>& x) const;

  Matrix<T> to_dense() const;

 private:
  SparsePatternPtr pattern_;
  std::vector<T> values_;
};

using RealSparse = SparseMatrix<double>;
using ComplexSparse = SparseMatrix<std::complex<double>>;

// ---------------------------------------------------------------- ordering

// Reverse Cuthill-McKee ordering of the symmetrized pattern; perm[new] = old.
// Handles disconnected components; starts each component from a
// pseudo-peripheral vertex found by repeated BFS.
std::vector<int> rcm_ordering(const SparsePattern& pattern);

// ------------------------------------------------------------------- stats

// Per-thread factorization counters, for verifying symbolic reuse (an AC
// sweep must perform exactly ONE symbolic analysis however many frequency
// points it visits). Per-thread: each thread sees only its own work, so
// concurrent sweeps never race. Reset with `sparse_lu_stats() = {};`.
//
// Batch accounting: a W-lane SparseLuBatch::refactor counts as W numeric
// passes (one per lane), so the counters stay comparable across lane widths;
// a lane that hits the zero-pivot ejection counts under ejected_lanes and
// its scalar-fallback factorization adds to symbolic/numeric as usual.

// Plain value snapshot of the counters (also the reset token: assigning a
// default-constructed SparseLuStats to the view zeroes this thread's cells).
struct SparseLuStats {
  std::size_t symbolic = 0;  // full factorizations (pattern + pivot search)
  std::size_t numeric = 0;   // total numeric passes (full + refactor)
  std::size_t ejected_lanes = 0;  // batch lanes ejected to the scalar path
};

// Live per-thread view over the obs metrics registry (counters
// "lu.symbolic", "lu.numeric", "lu.ejected_lanes" — what used to be a
// justified thread_local here now lives in the registry's per-thread
// shards, so the same numbers surface in every BENCH_*.json metrics
// block). The legacy call patterns keep working unchanged:
//
//   ++sparse_lu_stats().symbolic;                  // increment (live cell)
//   sparse_lu_stats() = {};                        // reset this thread
//   std::size_t n = sparse_lu_stats().numeric;     // read (live cell)
//   const auto before = sparse_lu_stats();         // FREEZES a snapshot
//
// A copy of the view (or of a field) freezes the values at copy time, so
// before/after diffing à la `after.symbolic - before.symbolic` still sees
// the work done in between even though both copies came from the same
// global accessor. These counters are load-bearing result metadata
// (SweepResult, AC reuse verification), so they bypass the RLCSIM_METRICS
// gate — see obs::Counter::add_always.
class SparseLuStatsView {
 public:
  class Cell {
   public:
    Cell(const Cell& other)  // freezing copy
        : counter_(other.counter_),
          frozen_(true),
          frozen_value_(other.value()) {}
    Cell& operator=(const Cell&) = delete;

    operator std::size_t() const { return static_cast<std::size_t>(value()); }
    Cell& operator++() {
      counter_.add_always(1);
      return *this;
    }
    Cell& operator+=(std::size_t n) {
      counter_.add_always(n);
      return *this;
    }

   private:
    friend class SparseLuStatsView;
    Cell(const char* name, bool live) : counter_(name), frozen_(!live) {}
    std::uint64_t value() const {
      return frozen_ ? frozen_value_ : counter_.this_thread_value();
    }
    obs::Counter counter_;
    bool frozen_;
    std::uint64_t frozen_value_ = 0;
  };

  Cell symbolic;
  Cell numeric;
  Cell ejected_lanes;

  // A default-constructed view is a frozen ZERO snapshot — exactly the
  // reset token `sparse_lu_stats() = {};` needs.
  SparseLuStatsView() : SparseLuStatsView(/*live=*/false) {}
  SparseLuStatsView(const SparseLuStatsView&) = default;  // freezes all cells
  // Overwrites THIS thread's cells with the right-hand side's (frozen or
  // live) values; with a default-constructed RHS this is the reset idiom.
  SparseLuStatsView& operator=(const SparseLuStatsView& other) {
    symbolic.counter_.this_thread_store(other.symbolic.value());
    numeric.counter_.this_thread_store(other.numeric.value());
    ejected_lanes.counter_.this_thread_store(other.ejected_lanes.value());
    return *this;
  }
  operator SparseLuStats() const {
    return SparseLuStats{symbolic, numeric, ejected_lanes};
  }

 private:
  friend SparseLuStatsView& sparse_lu_stats();
  explicit SparseLuStatsView(bool live)
      : symbolic("lu.symbolic", live),
        numeric("lu.numeric", live),
        ejected_lanes("lu.ejected_lanes", live) {}
};

SparseLuStatsView& sparse_lu_stats();

// --------------------------------------------------------------------- LU

// Sparse LU with partial pivoting and symbolic-factorization reuse.
//
// Construction performs the full (symbolic + numeric) factorization:
// RCM pre-ordering, then a left-looking column factorization that discovers
// the fill pattern by depth-first reachability and pivots by magnitude.
// `refactor(a)` accepts a matrix with the same pattern — pointer-identical
// or structurally identical (a sweep rebuilds topologically identical
// circuits per grid point, each with its own pattern allocation) — and
// redoes only the numeric work along the recorded pattern with the recorded
// pivot sequence — no graph traversal, no allocation. If the recorded pivot
// sequence hits an exactly-zero pivot on the new values, refactor falls back
// to a fresh full factorization (counted as symbolic) rather than failing.
//
// Copying a SparseLu copies the factors; copy + refactor is the cheap way to
// hold several numeric factorizations (e.g. one per transient step size)
// that share one symbolic analysis.
template <typename T>
class SparseLu {
 public:
  struct Options {
    bool reorder = true;  // apply RCM before factorizing
  };

  explicit SparseLu(const SparseMatrix<T>& a, Options options = {});

  // Numeric-only refactorization; `a` must share the constructor's pattern.
  void refactor(const SparseMatrix<T>& a);

  std::size_t size() const { return static_cast<std::size_t>(n_); }

  std::vector<T> solve(const std::vector<T>& b) const;
  // In-place variant for hot loops (no allocation beyond an internal
  // workspace reused across calls).
  void solve_in_place(std::vector<T>& x) const;

  // Fill statistics (L + U stored entries, including both diagonals).
  std::size_t factor_nnz() const { return li_.size() + ui_.size(); }

 private:
  // The scenario-batched value layer replays this factorization's recorded
  // elimination sequence for W value lanes at once (numeric/sparse_batch.h).
  friend class SparseLuBatch;

  void build_csc(const SparseMatrix<T>& a);
  void full_factor(const SparseMatrix<T>& a);
  bool numeric_refactor(const SparseMatrix<T>& a);

  int n_ = 0;
  SparsePatternPtr pattern_;  // of the assembled matrix (for refactor checks)

  // Symmetric fill-reducing permutation: perm_[new] = old, inv_perm_[old] = new.
  std::vector<int> perm_, inv_perm_;

  // CSC view of the permuted matrix A2 = A(perm, perm): for column j of A2,
  // csc_row_[p] is the A2 row index and csc_src_[p] the index into the input
  // CSR value array (so refactor scatters values without rebuilding).
  std::vector<int> csc_ptr_, csc_row_, csc_src_;

  // Factors of P2 * A2 = L * U. L columns store the unit diagonal first; U
  // columns store the pivot last. Row indices of L are in pivot (final)
  // order; U row indices are pivot-order too, stored in the topological
  // order the factorization discovered (which is what refactor replays).
  std::vector<int> lp_, li_, up_, ui_;
  std::vector<T> lx_, ux_;
  std::vector<int> pivot_inv_;  // A2 row -> pivot position

  mutable std::vector<T> work_;  // solve scratch, size n
};

using RealSparseLu = SparseLu<double>;
using ComplexSparseLu = SparseLu<std::complex<double>>;

}  // namespace rlcsim::numeric
