// SI unit helpers for electrical quantities.
//
// The library works in base SI units throughout (ohms, henries, farads,
// seconds, meters). These helpers exist so that example and bench code can
// state values the way a circuit designer writes them ("500 ohm", "1 pF",
// "25 ps/mm") and print results in engineering notation.
#pragma once

#include <cmath>
#include <string>

namespace rlcsim::units {

// Multiplicative scale factors. Usage: `double c = 1.0 * pico;  // 1 pF`.
inline constexpr double femto = 1e-15;
inline constexpr double pico = 1e-12;
inline constexpr double nano = 1e-9;
inline constexpr double micro = 1e-6;
inline constexpr double milli = 1e-3;
inline constexpr double kilo = 1e3;
inline constexpr double mega = 1e6;
inline constexpr double giga = 1e9;

// User-defined literals for the quantities this library actually uses.
// They attach no type (everything stays `double`, matching EDA convention of
// raw SI values), only scale.
namespace literals {
constexpr double operator""_ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kohm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_H(long double v) { return static_cast<double>(v); }
constexpr double operator""_nH(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pH(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_mm(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
}  // namespace literals

// Formats `value` in engineering notation with an SI prefix, e.g.
// eng(3.3e-10, "s") == "330 ps". Values of exactly zero print as "0 <unit>".
std::string eng(double value, const std::string& unit, int significant_digits = 4);

// Parses a SPICE-style scaled number: "1p", "2.5n", "3meg", "4k", "10u".
// Case-insensitive. Returns NaN on malformed input (SPICE parsers are
// traditionally permissive; the netlist parser reports the error with
// context). Recognized suffixes: f, p, n, u, m, k, meg, g, t and an optional
// trailing unit word which is ignored (e.g. "5pF" -> 5e-12).
double parse_spice_number(const std::string& text);

}  // namespace rlcsim::units
