// Interpolation over sampled data and threshold-crossing location.
//
// The waveform layer measures 50% delays by locating threshold crossings in
// sampled transient data; sub-sample accuracy comes from the interpolants
// here rather than from brute-force tiny time steps.
#pragma once

#include <optional>
#include <vector>

namespace rlcsim::numeric {

// Piecewise-linear interpolation of (xs, ys) at x. xs must be strictly
// increasing. Values outside the range clamp to the end samples.
double interp_linear(const std::vector<double>& xs, const std::vector<double>& ys,
                     double x);

// Monotone cubic (Fritsch–Carlson) interpolant. Shape-preserving: never
// overshoots the data, which matters when refining crossings of waveforms
// that genuinely ring — the ringing is in the samples, not the interpolant.
class MonotoneCubic {
 public:
  MonotoneCubic(std::vector<double> xs, std::vector<double> ys);
  double operator()(double x) const;

 private:
  std::vector<double> xs_, ys_, slopes_;
};

// First x >= x_from where the piecewise-linear interpolant of (xs, ys)
// crosses `level` in the given direction (+1 rising, -1 falling, 0 either).
// Returns std::nullopt when no crossing exists.
std::optional<double> find_crossing(const std::vector<double>& xs,
                                    const std::vector<double>& ys, double level,
                                    double x_from = 0.0, int direction = 0);

}  // namespace rlcsim::numeric
