// Error metrics and small descriptive statistics.
//
// Every reproduction bench reports model-vs-reference deviations through
// these helpers so the output format (and the definition of "% error") is
// uniform across tables and figures.
#pragma once

#include <cstddef>
#include <vector>

namespace rlcsim::numeric {

double mean(const std::vector<double>& v);
double rms(const std::vector<double>& v);
double max_abs(const std::vector<double>& v);

// Percentile with linear interpolation between order statistics, p in [0,100].
double percentile(std::vector<double> v, double p);

// |a - b| element-wise metrics. Relative errors are |a-b| / max(|b|, floor),
// with `floor` guarding near-zero references.
struct ErrorSummary {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  double max_rel = 0.0;   // as a fraction (0.05 == 5%)
  double mean_rel = 0.0;
  std::size_t count = 0;
};
ErrorSummary compare(const std::vector<double>& a, const std::vector<double>& b,
                     double rel_floor = 1e-30);

// Convenience single-pair relative error as a fraction.
double rel_error(double value, double reference, double rel_floor = 1e-30);

}  // namespace rlcsim::numeric
