#include "numeric/fp_env.h"

#include <cfenv>
#include <cfloat>
#include <stdexcept>
#include <string>

namespace rlcsim::numeric {
namespace {

// Subnormal probes through volatile so the checks happen in the live FP
// environment instead of being constant-folded at compile time (the
// compiler would fold them under the default environment and the probe
// would never see a runtime FTZ/DAZ bit).
bool gradual_underflow_active() {
  // FTZ: a subnormal RESULT is flushed to zero. DBL_MIN/2 is the largest
  // subnormal; under flush-to-zero the division produces +0.0.
  volatile double tiny = DBL_MIN;
  tiny = tiny / 2.0;
  if (tiny == 0.0) return false;
  // DAZ: a subnormal OPERAND is read as zero. Feed the subnormal back in;
  // under denormals-are-zero the multiply sees 0.0 * 2.0.
  tiny = tiny * 2.0;
  return tiny == DBL_MIN;
}

}  // namespace

bool fp_env_matches_contract() {
  return std::fegetround() == FE_TONEAREST && gradual_underflow_active();
}

void check_fp_env(const char* where) {
  if (std::fegetround() != FE_TONEAREST)
    throw std::runtime_error(
        std::string(where) +
        ": FP rounding mode is not round-to-nearest; the bit-identity "
        "contract (and every memcmp determinism gate) assumes the IEEE-754 "
        "default environment. Something in this process called fesetround().");
  if (!gradual_underflow_active())
    throw std::runtime_error(
        std::string(where) +
        ": flush-to-zero / denormals-are-zero is enabled; subnormal "
        "results would silently differ from the IEEE-754 default "
        "environment the bit-identity contract assumes (check for "
        "-ffast-math in linked code or libraries toggling MXCSR).");
}

}  // namespace rlcsim::numeric
