// Numerical inverse Laplace transforms.
//
// Two independent algorithms are provided because they fail differently:
//
//  * `invert_euler` — Abate–Whitt EULER algorithm (Bromwich integral,
//    trapezoid rule, Euler summation of the alternating tail). Evaluates
//    F(s) at complex s; handles the oscillatory (underdamped) responses of
//    low-loss RLC lines well.
//  * `invert_stehfest` — Gaver–Stehfest. Real-axis evaluations only; very
//    accurate for smooth/overdamped responses, useless for ringing ones.
//
// The test suite cross-checks both against closed-form pairs and against the
// time-domain MNA simulator, which is the point: three ways to compute the
// same waveform that share no code.
#pragma once

#include <complex>
#include <functional>
#include <vector>

namespace rlcsim::numeric {

using LaplaceFn = std::function<std::complex<double>(std::complex<double>)>;
using LaplaceRealFn = std::function<double(double)>;

struct EulerOptions {
  // Controls the discretization error, e^-A. A = 18.4 targets ~1e-8.
  double a = 18.4;
  // Terms before Euler acceleration begins and binomial averaging depth.
  int n_terms = 38;
  int euler_terms = 17;
};

// Inverts F at a single time t > 0. Throws std::invalid_argument for t <= 0.
double invert_euler(const LaplaceFn& f, double t, const EulerOptions& opt = {});

// Inverts F at each time in `times` (all must be > 0).
std::vector<double> invert_euler(const LaplaceFn& f, const std::vector<double>& times,
                                 const EulerOptions& opt = {});

// Gaver–Stehfest with 2n terms (n in [4, 10]; 7 is a good double-precision
// default). Only needs F on the positive real axis.
double invert_stehfest(const LaplaceRealFn& f, double t, int n = 7);
std::vector<double> invert_stehfest(const LaplaceRealFn& f,
                                    const std::vector<double>& times, int n = 7);

}  // namespace rlcsim::numeric
