// Derivative-free minimization, 1-D and small-N.
//
// Used by the repeater-insertion layer to minimize total propagation delay
// over (h, k) and by the fitting layer as a fallback line search.
#pragma once

#include <functional>
#include <vector>

namespace rlcsim::numeric {

struct MinimizeOptions {
  double x_tolerance = 1e-10;
  int max_iterations = 500;
};

struct Minimum1D {
  double x = 0.0;
  double value = 0.0;
  int iterations = 0;
};

// Golden-section search on a unimodal function over [lo, hi].
Minimum1D golden_section(const std::function<double(double)>& f, double lo, double hi,
                         const MinimizeOptions& opt = {});

// Brent's parabolic-interpolation minimizer over [lo, hi]. Faster than golden
// section on smooth functions, falls back to golden steps when interpolation
// misbehaves.
Minimum1D brent_min(const std::function<double(double)>& f, double lo, double hi,
                    const MinimizeOptions& opt = {});

struct MinimumND {
  std::vector<double> x;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Nelder–Mead downhill simplex. `initial_step` sets the initial simplex edge
// lengths per coordinate (a single value is broadcast).
MinimumND nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                      const std::vector<double>& start,
                      const std::vector<double>& initial_step,
                      const MinimizeOptions& opt = {});

// Robust 2-D minimizer over a rectangle: coarse grid scan followed by
// iterative grid refinement around the incumbent. Immune to the multiple
// shallow valleys that defeat simplex methods near constraint edges; used to
// seed (and to verify) Nelder–Mead in the repeater optimizer.
MinimumND grid_refine_2d(const std::function<double(double, double)>& f,
                         double x_lo, double x_hi, double y_lo, double y_hi,
                         int grid_points = 24, int refinements = 12);

}  // namespace rlcsim::numeric
