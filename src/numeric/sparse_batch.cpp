#include "numeric/sparse_batch.h"

#include <algorithm>
#include <cfloat>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/env.h"

// The bit-identity contract assumes double expressions evaluate at double
// precision; excess-precision evaluation (x87-style FLT_EVAL_METHOD == 2)
// would round batched and scalar intermediates differently and fork the
// memcmp-gated results. See also numeric/fp_env.h for the runtime half.
static_assert(FLT_EVAL_METHOD == 0,
              "rlcsim batch kernels require FLT_EVAL_METHOD == 0 "
              "(strict double evaluation)");

namespace rlcsim::numeric {

bool is_supported_lane_width(std::size_t lanes) {
  for (std::size_t w : kBatchLaneWidths)
    if (lanes == w) return true;
  return false;
}

std::size_t default_lane_width() {
  // Exact-token knob: "auto" and the supported widths, nothing else ("2"
  // silently meaning "some default" is what an override must not do).
  const auto parsed = runtime::parse_env_enum(
      "RLCSIM_LANES", {{"auto", 8}, {"1", 1}, {"4", 4}, {"8", 8}},
      "1, 4, 8, or \"auto\"");
  return parsed ? static_cast<std::size_t>(*parsed)
                : 8;  // no override: widest kernel
}

// ------------------------------------------------------------ BatchedValues

BatchedValues::BatchedValues(std::size_t slots, std::size_t lanes)
    : slots_(slots), lanes_(lanes) {
  if (!is_supported_lane_width(lanes))
    throw std::invalid_argument("BatchedValues: lane width must be 1, 4, or 8, got " +
                                std::to_string(lanes));
  data_.assign(slots_ * lanes_, 0.0);
}

void BatchedValues::set_lane(std::size_t lane, const std::vector<double>& values) {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedValues::set_lane: lane out of range");
  if (values.size() != slots_)
    throw std::invalid_argument("BatchedValues::set_lane: slot count mismatch");
  for (std::size_t s = 0; s < slots_; ++s) data_[s * lanes_ + lane] = values[s];
}

void BatchedValues::extract_lane(std::size_t lane, std::vector<double>& out) const {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedValues::extract_lane: lane out of range");
  out.resize(slots_);
  for (std::size_t s = 0; s < slots_; ++s) out[s] = data_[s * lanes_ + lane];
}

void BatchedValues::clear_lane(std::size_t lane) {
  if (lane >= lanes_)
    throw std::out_of_range("BatchedValues::clear_lane: lane out of range");
  for (std::size_t s = 0; s < slots_; ++s) data_[s * lanes_ + lane] = 0.0;
}

// ------------------------------------------------------------ SparseLuBatch

SparseLuBatch::SparseLuBatch(const RealSparseLu& donor, std::size_t lanes)
    : donor_(donor), lanes_(lanes) {
  if (!is_supported_lane_width(lanes))
    throw std::invalid_argument("SparseLuBatch: lane width must be 1, 4, or 8, got " +
                                std::to_string(lanes));
  lx_.assign(donor_.lx_.size() * lanes_, 0.0);
  ux_.assign(donor_.ux_.size() * lanes_, 0.0);
  ejected_.assign(lanes_, 0);
  scalar_.resize(lanes_);
  work_.assign(static_cast<std::size_t>(donor_.n_) * lanes_, 0.0);
}

std::size_t SparseLuBatch::ejected_lane_count() const {
  std::size_t count = 0;
  for (char e : ejected_) count += (e != 0);
  return count;
}

// Replays the donor's recorded elimination sequence (topological U order,
// frozen pivot positions) for all W lanes at once. Each per-lane operation
// is EXACTLY the scalar numeric_refactor's operation in the scalar order:
// the scalar `if (ukj == 0) continue;` skip becomes a value-preserving blend
// `x = (u != 0) ? x - l*u : x`, which keeps even signed zeros bit-identical
// (the unguarded form would turn -0.0 - (-0.0) into +0.0). Lanes whose
// pivot replays to exactly zero are flagged ejected and keep streaming
// garbage (inf/NaN) harmlessly — lanes are independent and nothing traps —
// until refactor() hands them to the scalar re-pivoting fallback.
template <int W>
void SparseLuBatch::refactor_kernel(const BatchedValues& values) {
  const RealSparseLu& d = donor_;
  const int n = d.n_;
  // Same vectorization recipe as solve_kernel below: restrict-qualified
  // base pointers (av/x/lxb/uxb are four distinct buffers) and
  // `#pragma GCC unroll 1` on every lane loop so the W-trip loops stay
  // loops long enough for the vectorizer to see them.
  const double* __restrict const av = values.data();
  double* __restrict const x = work_.data();
  double* __restrict const lxb = lx_.data();
  double* __restrict const uxb = ux_.data();

  for (int j = 0; j < n; ++j) {
    for (int q = d.up_[j]; q < d.up_[j + 1]; ++q) {
      double* xr = x + static_cast<std::size_t>(d.ui_[q]) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) xr[lane] = 0.0;
    }
    for (int q = d.lp_[j]; q < d.lp_[j + 1]; ++q) {
      double* xr = x + static_cast<std::size_t>(d.li_[q]) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) xr[lane] = 0.0;
    }
    for (int p = d.csc_ptr_[j]; p < d.csc_ptr_[j + 1]; ++p) {
      double* xr =
          x + static_cast<std::size_t>(d.pivot_inv_[d.csc_row_[p]]) * W;
      const double* src = av + static_cast<std::size_t>(d.csc_src_[p]) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) xr[lane] += src[lane];
    }

    for (int q = d.up_[j]; q < d.up_[j + 1] - 1; ++q) {
      const int k = d.ui_[q];
      double* ukj = uxb + static_cast<std::size_t>(q) * W;
      const double* xk = x + static_cast<std::size_t>(k) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) ukj[lane] = xk[lane];
      for (int r = d.lp_[k] + 1; r < d.lp_[k + 1]; ++r) {
        double* xr = x + static_cast<std::size_t>(d.li_[r]) * W;
        const double* lr = lxb + static_cast<std::size_t>(r) * W;
#pragma GCC unroll 1
        for (int lane = 0; lane < W; ++lane) {
          const double u = ukj[lane];
          xr[lane] = (u != 0.0) ? xr[lane] - lr[lane] * u : xr[lane];
        }
      }
    }

    const double* piv = x + static_cast<std::size_t>(j) * W;
    double* upiv = uxb + (static_cast<std::size_t>(d.up_[j + 1]) - 1) * W;
    double* ldiag = lxb + static_cast<std::size_t>(d.lp_[j]) * W;
#pragma GCC unroll 1
    for (int lane = 0; lane < W; ++lane) {
      if (piv[lane] == 0.0) ejected_[static_cast<std::size_t>(lane)] = 1;
      upiv[lane] = piv[lane];
      ldiag[lane] = 1.0;
    }
    for (int r = d.lp_[j] + 1; r < d.lp_[j + 1]; ++r) {
      double* lr = lxb + static_cast<std::size_t>(r) * W;
      const double* xr = x + static_cast<std::size_t>(d.li_[r]) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) lr[lane] = xr[lane] / piv[lane];
    }
  }
}

void SparseLuBatch::refactor(const BatchedValues& values) {
  if (values.lanes() != lanes_)
    throw std::invalid_argument("SparseLuBatch::refactor: lane count mismatch");
  if (values.slots() != static_cast<std::size_t>(donor_.pattern_->nnz()))
    throw std::invalid_argument(
        "SparseLuBatch::refactor: values do not match the donor pattern");

  std::fill(ejected_.begin(), ejected_.end(), 0);
  switch (lanes_) {
    case 1: refactor_kernel<1>(values); break;
    case 4: refactor_kernel<4>(values); break;
    case 8: refactor_kernel<8>(values); break;
    default:
      throw std::logic_error("SparseLuBatch: unreachable lane width");
  }

  const std::size_t n_ejected = ejected_lane_count();
  auto& stats = sparse_lu_stats();
  stats.numeric += lanes_ - n_ejected;
  stats.ejected_lanes += n_ejected;
  OBS_COUNTER_ADD("batch.refactors", 1);
  OBS_COUNTER_ADD("batch.lanes_refactored", lanes_ - n_ejected);
  if (n_ejected == 0) return;

  // Ejected lanes fall back to exactly what the scalar path would do: a
  // SparseLu sharing the donor's symbolic analysis refactors the lane's
  // values, hits the same zero stale pivot, and re-pivots via full_factor
  // (counted as symbolic + numeric by the scalar code itself).
  std::vector<double> lane_values;
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    if (!ejected_[lane]) continue;
    values.extract_lane(lane, lane_values);
    RealSparse a(donor_.pattern_, lane_values);
    if (!scalar_[lane]) scalar_[lane] = std::make_unique<RealSparseLu>(donor_);
    scalar_[lane]->refactor(a);
  }
}

// Batched triangular solves along the donor's factors; per-lane ops mirror
// the scalar solve_in_place order with the same blend treatment of its
// `if (xj == 0) continue;` skips.
//
// The entry loops are written so the lane loop vectorizes to one masked
// update per entry instead of W branchy scalar ops; each ingredient is
// load-bearing:
//   - the column's x values are copied to a local array first (a store to
//     wr[lane] might alias xj[lane + 1] as far as the compiler can tell —
//     both point into w — and that phantom dependence kills vectorization);
//   - the factor/work base pointers are restrict-qualified (same phantom
//     dependence against the factor loads);
//   - `#pragma GCC unroll 1` keeps the W-trip lane loops as LOOPS: early
//     complete peeling otherwise flattens them to scalar statements before
//     the vectorizer ever runs, and it cannot re-roll them.
// The blend itself is value-exact lane by lane, so vector code and scalar
// code produce identical bits (no FMA contraction: see RLCSIM_NATIVE).
template <int W>
void SparseLuBatch::solve_kernel(BatchedValues& xv) const {
  const RealSparseLu& d = donor_;
  const int n = d.n_;
  double* __restrict const x = xv.data();
  double* __restrict const w = work_.data();
  const double* __restrict const lxb = lx_.data();
  const double* __restrict const uxb = ux_.data();

  for (int i = 0; i < n; ++i) {
    double* dst = w + static_cast<std::size_t>(d.pivot_inv_[i]) * W;
    const double* src = x + static_cast<std::size_t>(d.perm_[i]) * W;
#pragma GCC unroll 1
    for (int lane = 0; lane < W; ++lane) dst[lane] = src[lane];
  }

  double xcol[W];
  for (int j = 0; j < n; ++j) {  // L: unit diagonal stored first per column
    const double* xj = w + static_cast<std::size_t>(j) * W;
#pragma GCC unroll 1
    for (int lane = 0; lane < W; ++lane) xcol[lane] = xj[lane];
    for (int p = d.lp_[j] + 1; p < d.lp_[j + 1]; ++p) {
      double* wr = w + static_cast<std::size_t>(d.li_[p]) * W;
      const double* lr = lxb + static_cast<std::size_t>(p) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) {
        const double v = xcol[lane];
        wr[lane] = (v != 0.0) ? wr[lane] - lr[lane] * v : wr[lane];
      }
    }
  }
  for (int j = n - 1; j >= 0; --j) {  // U: pivot stored last per column
    double* xj = w + static_cast<std::size_t>(j) * W;
    const double* upiv = uxb + (static_cast<std::size_t>(d.up_[j + 1]) - 1) * W;
#pragma GCC unroll 1
    for (int lane = 0; lane < W; ++lane) xcol[lane] = xj[lane] / upiv[lane];
#pragma GCC unroll 1
    for (int lane = 0; lane < W; ++lane) xj[lane] = xcol[lane];
    for (int p = d.up_[j]; p < d.up_[j + 1] - 1; ++p) {
      double* wr = w + static_cast<std::size_t>(d.ui_[p]) * W;
      const double* ur = uxb + static_cast<std::size_t>(p) * W;
#pragma GCC unroll 1
      for (int lane = 0; lane < W; ++lane) {
        const double v = xcol[lane];
        wr[lane] = (v != 0.0) ? wr[lane] - ur[lane] * v : wr[lane];
      }
    }
  }

  for (int j = 0; j < n; ++j) {
    double* dst = x + static_cast<std::size_t>(d.perm_[j]) * W;
    const double* src = w + static_cast<std::size_t>(j) * W;
#pragma GCC unroll 1
    for (int lane = 0; lane < W; ++lane) dst[lane] = src[lane];
  }
}

void SparseLuBatch::solve_in_place(BatchedValues& x) const {
  if (x.lanes() != lanes_)
    throw std::invalid_argument("SparseLuBatch::solve: lane count mismatch");
  if (x.slots() != static_cast<std::size_t>(donor_.n_))
    throw std::invalid_argument("SparseLuBatch::solve: rhs size mismatch");
  OBS_COUNTER_ADD("batch.solves", 1);

  // Solve ejected lanes through their scalar fallback BEFORE the batch
  // kernel clobbers x; the kernel then streams garbage through those lanes
  // (harmless — nothing traps) and the scalar solutions overwrite it. The
  // no-ejection hot path allocates nothing.
  std::vector<std::pair<std::size_t, std::vector<double>>> scalar_solutions;
  if (ejected_lane_count() != 0) {
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      if (!ejected_[lane]) continue;
      x.extract_lane(lane, scalar_work_);
      scalar_[lane]->solve_in_place(scalar_work_);
      scalar_solutions.emplace_back(lane, scalar_work_);
    }
  }

  switch (lanes_) {
    case 1: solve_kernel<1>(x); break;
    case 4: solve_kernel<4>(x); break;
    case 8: solve_kernel<8>(x); break;
    default:
      throw std::logic_error("SparseLuBatch: unreachable lane width");
  }

  for (const auto& [lane, solution] : scalar_solutions) x.set_lane(lane, solution);
}

}  // namespace rlcsim::numeric
