#include "numeric/roots.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace rlcsim::numeric {
namespace {

void require_finite(double v, const char* name) {
  if (!std::isfinite(v))
    throw std::invalid_argument(std::string(name) + " must be finite");
}

}  // namespace

Bracket bracket_root(const std::function<double(double)>& f, double lo, double hi,
                     int max_expansions) {
  require_finite(lo, "lo");
  require_finite(hi, "hi");
  if (lo >= hi) throw std::invalid_argument("bracket_root: lo must be < hi");

  double flo = f(lo);
  double fhi = f(hi);
  constexpr double kGrow = 1.6;
  for (int i = 0; i < max_expansions; ++i) {
    if (flo == 0.0) return {lo, lo};
    if (fhi == 0.0) return {hi, hi};
    if ((flo < 0.0) != (fhi < 0.0)) return {lo, hi};
    // Expand the end with the smaller |f| — it is closer to a crossing.
    if (std::fabs(flo) < std::fabs(fhi)) {
      lo += kGrow * (lo - hi);
      flo = f(lo);
    } else {
      hi += kGrow * (hi - lo);
      fhi = f(hi);
    }
  }
  throw std::runtime_error("bracket_root: no sign change found");
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opt) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo < 0.0) == (fhi < 0.0))
    throw std::invalid_argument("bisect: interval does not bracket a root");

  for (int i = 0; i < opt.max_iterations; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    if (fmid == 0.0 || std::fabs(hi - lo) < opt.x_tolerance ||
        (opt.f_tolerance > 0.0 && std::fabs(fmid) < opt.f_tolerance))
      return mid;
    if ((fmid < 0.0) == (flo < 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
      fhi = fmid;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opt) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if ((fa < 0.0) == (fb < 0.0))
    throw std::invalid_argument("brent: interval does not bracket a root");

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int i = 0; i < opt.max_iterations; ++i) {
    if ((fb < 0.0) == (fc < 0.0)) {
      c = a;
      fc = fa;
      d = e = b - a;
    }
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * std::numeric_limits<double>::epsilon() * std::fabs(b) +
                       0.5 * opt.x_tolerance;
    const double half = 0.5 * (c - b);
    if (std::fabs(half) <= tol || fb == 0.0 ||
        (opt.f_tolerance > 0.0 && std::fabs(fb) < opt.f_tolerance))
      return b;

    if (std::fabs(e) >= tol && std::fabs(fa) > std::fabs(fb)) {
      // Attempt inverse quadratic interpolation (secant when a == c).
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * half * s;
        q = 1.0 - s;
      } else {
        const double r1 = fa / fc;
        const double r2 = fb / fc;
        p = s * (2.0 * half * r1 * (r1 - r2) - (b - a) * (r2 - 1.0));
        q = (r1 - 1.0) * (r2 - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::fabs(p);
      if (2.0 * p < std::min(3.0 * half * q - std::fabs(tol * q), std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = half;
        e = d;
      }
    } else {
      d = half;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol) ? d : (half > 0.0 ? tol : -tol);
    fb = f(b);
  }
  return b;
}

double newton_safe(const std::function<double(double)>& f,
                   const std::function<double(double)>& df, double lo, double hi,
                   const RootOptions& opt) {
  double flo = f(lo), fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo < 0.0) == (fhi < 0.0))
    throw std::invalid_argument("newton_safe: interval does not bracket a root");
  // Orient so f(lo) < 0.
  if (flo > 0.0) std::swap(lo, hi);

  double x = 0.5 * (lo + hi);
  for (int i = 0; i < opt.max_iterations; ++i) {
    const double fx = f(x);
    if (fx == 0.0 || (opt.f_tolerance > 0.0 && std::fabs(fx) < opt.f_tolerance)) return x;
    if (fx < 0.0)
      lo = x;
    else
      hi = x;

    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : 0.5 * (lo + hi);
    // Reject Newton steps that leave the bracket.
    if ((next - lo) * (next - hi) >= 0.0) next = 0.5 * (lo + hi);
    if (std::fabs(next - x) < opt.x_tolerance) return next;
    x = next;
  }
  return x;
}

}  // namespace rlcsim::numeric
