#include "numeric/matrix.h"

#include <algorithm>
#include <cmath>

namespace rlcsim::numeric {
namespace {

double magnitude(double v) { return std::fabs(v); }
double magnitude(const std::complex<double>& v) { return std::abs(v); }

}  // namespace

template <typename T>
LuFactorization<T>::LuFactorization(Matrix<T> a)
    : n_(a.rows()), lu_(std::move(a)), pivot_(n_) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuFactorization: matrix must be square");

  for (std::size_t i = 0; i < n_; ++i) pivot_[i] = i;

  for (std::size_t col = 0; col < n_; ++col) {
    // Partial pivoting: pick the largest magnitude in this column at/below
    // the diagonal.
    std::size_t max_row = col;
    double max_mag = magnitude(lu_(col, col));
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double m = magnitude(lu_(r, col));
      if (m > max_mag) {
        max_mag = m;
        max_row = r;
      }
    }
    if (max_mag == 0.0)
      throw std::runtime_error("LuFactorization: matrix is singular");
    if (max_row != col) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(col, c), lu_(max_row, c));
      std::swap(pivot_[col], pivot_[max_row]);
      pivot_sign_ = -pivot_sign_;
    }

    const T diag = lu_(col, col);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const T factor = lu_(r, col) / diag;
      lu_(r, col) = factor;  // store L below the diagonal
      if (factor == T{}) continue;
      for (std::size_t c = col + 1; c < n_; ++c) lu_(r, c) -= factor * lu_(col, c);
    }
  }
}

template <typename T>
std::vector<T> LuFactorization<T>::solve(const std::vector<T>& b) const {
  std::vector<T> x = b;
  solve_in_place(x);
  return x;
}

template <typename T>
void LuFactorization<T>::solve_in_place(std::vector<T>& x) const {
  if (x.size() != n_)
    throw std::invalid_argument("LuFactorization::solve: rhs size mismatch");

  // Apply the row permutation, then forward- and back-substitute.
  work_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) work_[i] = x[pivot_[i]];

  for (std::size_t i = 1; i < n_; ++i) {
    T sum = work_[i];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * work_[j];
    work_[i] = sum;
  }
  for (std::size_t ii = n_; ii-- > 0;) {
    T sum = work_[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) sum -= lu_(ii, j) * work_[j];
    work_[ii] = sum / lu_(ii, ii);
  }
  x.swap(work_);
}

template <typename T>
T LuFactorization<T>::determinant() const {
  T det = static_cast<T>(pivot_sign_);
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

template class LuFactorization<double>;
template class LuFactorization<std::complex<double>>;

bool symmetric_positive_definite(const RealMatrix& a) {
  const std::size_t n = a.rows();
  if (n != a.cols())
    throw std::invalid_argument("symmetric_positive_definite: matrix must be square");
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) scale = std::max(scale, std::fabs(a(i, j)));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (std::fabs(a(i, j) - a(j, i)) > 1e-9 * std::max(scale, 1e-300))
        throw std::invalid_argument(
            "symmetric_positive_definite: matrix is not symmetric");

  // LDLt: l holds the strictly-lower factors, d the pivots. The recurrence
  // d_j = a_jj - sum_k l_jk^2 d_k breaks down (or goes nonpositive) exactly
  // when the matrix is not positive definite.
  RealMatrix l(n, n);
  std::vector<double> d(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k) dj -= l(j, k) * l(j, k) * d[k];
    if (!(dj > 0.0)) return false;
    d[j] = dj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k) * d[k];
      l(i, j) = v / dj;
    }
  }
  return true;
}

}  // namespace rlcsim::numeric
