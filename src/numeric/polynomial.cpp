#include "numeric/polynomial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rlcsim::numeric {

double polyval(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) acc = acc * x + *it;
  return acc;
}

std::complex<double> polyval(const std::vector<double>& coeffs,
                             std::complex<double> x) {
  std::complex<double> acc = 0.0;
  for (auto it = coeffs.rbegin(); it != coeffs.rend(); ++it) acc = acc * x + *it;
  return acc;
}

std::vector<double> polyder(const std::vector<double>& coeffs) {
  if (coeffs.size() <= 1) return {0.0};
  std::vector<double> d(coeffs.size() - 1);
  for (std::size_t i = 1; i < coeffs.size(); ++i)
    d[i - 1] = coeffs[i] * static_cast<double>(i);
  return d;
}

QuadraticRoots solve_quadratic(double a, double b, double c) {
  if (a == 0.0) throw std::invalid_argument("solve_quadratic: a == 0");
  const double disc = b * b - 4.0 * a * c;
  if (disc >= 0.0) {
    // Numerically stable form: avoid cancellation between -b and sqrt(disc).
    const double sq = std::sqrt(disc);
    const double q = -0.5 * (b + (b >= 0.0 ? sq : -sq));
    const double r1 = q / a;
    const double r2 = (q != 0.0) ? c / q : (-b / a - r1);
    return {std::complex<double>(r1, 0.0), std::complex<double>(r2, 0.0)};
  }
  const double real = -b / (2.0 * a);
  const double imag = std::sqrt(-disc) / (2.0 * a);
  return {std::complex<double>(real, imag), std::complex<double>(real, -imag)};
}

std::vector<std::complex<double>> solve_cubic(double a, double b, double c, double d) {
  if (a == 0.0) throw std::invalid_argument("solve_cubic: a == 0");
  // Depressed cubic t^3 + p t + q with x = t - b / (3a).
  const double inv_a = 1.0 / a;
  const double b1 = b * inv_a, c1 = c * inv_a, d1 = d * inv_a;
  const double shift = b1 / 3.0;
  const double p = c1 - b1 * b1 / 3.0;
  const double q = 2.0 * b1 * b1 * b1 / 27.0 - b1 * c1 / 3.0 + d1;
  const double disc = q * q / 4.0 + p * p * p / 27.0;

  std::vector<std::complex<double>> roots;
  roots.reserve(3);
  if (disc > 0.0) {
    // One real root, two complex conjugates.
    const double sq = std::sqrt(disc);
    const double u = std::cbrt(-q / 2.0 + sq);
    const double v = std::cbrt(-q / 2.0 - sq);
    const double t1 = u + v;
    roots.emplace_back(t1 - shift, 0.0);
    const double real = -t1 / 2.0 - shift;
    const double imag = std::sqrt(3.0) / 2.0 * (u - v);
    roots.emplace_back(real, imag);
    roots.emplace_back(real, -imag);
  } else {
    // Three real roots (trigonometric method).
    const double r = std::max(1e-300, std::sqrt(std::max(0.0, -p * p * p / 27.0)));
    const double phi = std::acos(std::clamp(-q / (2.0 * r), -1.0, 1.0));
    const double m = 2.0 * std::sqrt(std::max(0.0, -p / 3.0));
    for (int k = 0; k < 3; ++k)
      roots.emplace_back(m * std::cos((phi + 2.0 * M_PI * k) / 3.0) - shift, 0.0);
  }
  return roots;
}

std::vector<std::complex<double>> polyroots(const std::vector<double>& coeffs,
                                            int max_iterations, double tolerance) {
  // Strip trailing zero coefficients (degree reduction).
  std::vector<double> c = coeffs;
  while (c.size() > 1 && c.back() == 0.0) c.pop_back();
  const std::size_t degree = c.size() - 1;
  if (degree == 0) return {};
  if (degree == 1) return {std::complex<double>(-c[0] / c[1], 0.0)};
  if (degree == 2) {
    const QuadraticRoots q = solve_quadratic(c[2], c[1], c[0]);
    return {q.r1, q.r2};
  }

  // Durand–Kerner: start from non-real, non-symmetric seeds on a circle whose
  // radius follows the Cauchy bound.
  double bound = 0.0;
  for (std::size_t i = 0; i < degree; ++i)
    bound = std::max(bound, std::fabs(c[i] / c[degree]));
  const double radius = 1.0 + bound;
  std::vector<std::complex<double>> z(degree);
  const std::complex<double> seed(0.4, 0.9);
  std::complex<double> zk = 1.0;
  for (std::size_t i = 0; i < degree; ++i) {
    zk *= seed;
    z[i] = zk * radius;
  }

  for (int it = 0; it < max_iterations; ++it) {
    double max_step = 0.0;
    for (std::size_t i = 0; i < degree; ++i) {
      std::complex<double> denom = c[degree];
      for (std::size_t j = 0; j < degree; ++j) {
        if (j == i) continue;
        denom *= (z[i] - z[j]);
      }
      if (denom == std::complex<double>(0.0, 0.0)) continue;
      const std::complex<double> step = polyval(c, z[i]) / denom;
      z[i] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < tolerance) break;
  }
  return z;
}

}  // namespace rlcsim::numeric
