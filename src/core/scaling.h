// Technology-scaling studies (Sections III–IV).
//
// The paper's closing argument: T_{L/R} = (Lt/Rt)/(R0 C0) grows as the gate
// intrinsic delay R0 C0 shrinks with technology scaling, so the error of
// RC-only design methodologies grows with every generation. This module
// quantifies that trend for a fixed wire across a sweep of buffer
// technologies.
#pragma once

#include <string>
#include <vector>

#include "core/repeater.h"

namespace rlcsim::core {

struct ScalingPoint {
  std::string label;           // e.g. technology node name
  double r0c0 = 0.0;           // buffer intrinsic RC, s
  double t_lr = 0.0;           // resulting T_{L/R}
  double delay_increase = 0.0; // % extra delay from RC sizing (eq. 16)
  double area_increase = 0.0;  // % extra repeater area (eq. 18)
  double k_rc = 0.0;           // Bakoglu section count
  double k_rlc = 0.0;          // RLC-aware section count
  double h_rc = 0.0;
  double h_rlc = 0.0;
};

// Evaluates the scaling trend of one wire across buffer generations.
// `buffers` supplies (label, MinBuffer) pairs, typically from tech/nodes.h.
std::vector<ScalingPoint> scaling_study(
    const tline::LineParams& line,
    const std::vector<std::pair<std::string, MinBuffer>>& buffers,
    const DelayFitConstants& fit = kPaperFit);

}  // namespace rlcsim::core
