#include "core/scaling.h"

namespace rlcsim::core {

std::vector<ScalingPoint> scaling_study(
    const tline::LineParams& line,
    const std::vector<std::pair<std::string, MinBuffer>>& buffers,
    const DelayFitConstants& fit) {
  std::vector<ScalingPoint> points;
  points.reserve(buffers.size());
  for (const auto& [label, buffer] : buffers) {
    ScalingPoint p;
    p.label = label;
    p.r0c0 = buffer.r0 * buffer.c0;
    p.t_lr = t_lr(line, buffer);
    p.delay_increase = delay_increase_percent(line, buffer, fit);
    p.area_increase = area_increase_percent(p.t_lr);
    const RepeaterDesign rc = bakoglu_rc(line, buffer);
    const RepeaterDesign rlc = ismail_friedman_rlc(line, buffer);
    p.k_rc = rc.sections;
    p.k_rlc = rlc.sections;
    p.h_rc = rc.size;
    p.h_rlc = rlc.size;
    points.push_back(p);
  }
  return points;
}

}  // namespace rlcsim::core
