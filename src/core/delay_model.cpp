#include "core/delay_model.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "numeric/units.h"
#include "tline/rc_line.h"

namespace rlcsim::core {

double zeta_of(double rt_ratio, double ct_ratio, double rt_total, double lt_total,
               double ct_total) {
  if (!(lt_total > 0.0)) throw std::invalid_argument("zeta_of: Lt must be > 0");
  if (!(ct_total > 0.0)) throw std::invalid_argument("zeta_of: Ct must be > 0");
  const double shape = (rt_ratio + ct_ratio + rt_ratio * ct_ratio + 0.5) /
                       std::sqrt(1.0 + ct_ratio);
  return 0.5 * rt_total * std::sqrt(ct_total / lt_total) * shape;
}

double scaled_delay_of(double zeta, const DelayFitConstants& fit) {
  if (!(zeta >= 0.0)) throw std::invalid_argument("scaled_delay_of: zeta must be >= 0");
  return std::exp(-fit.exp_scale * std::pow(zeta, fit.exp_power)) + fit.linear * zeta;
}

double rlc_delay(const tline::GateLineLoad& system, const DelayFitConstants& fit) {
  return DelayModel(system, fit).delay();
}

DelayModel::DelayModel(const tline::GateLineLoad& system, const DelayFitConstants& fit)
    : system_(system), fit_(fit) {
  tline::validate(system_);
  rt_ = system_.rt_ratio();
  ct_ = system_.ct_ratio();
  zeta_ = zeta_of(rt_, ct_, system_.line.total_resistance,
                  system_.line.total_inductance, system_.line.total_capacitance);
  omega_n_ = 1.0 / std::sqrt(system_.line.total_inductance *
                             (system_.line.total_capacitance + system_.load_capacitance));
}

double DelayModel::scaled_delay() const { return scaled_delay_of(zeta_, fit_); }

double DelayModel::delay() const { return scaled_delay() / omega_n_; }

DampingRegime DelayModel::regime() const {
  if (zeta_ < 0.95) return DampingRegime::kUnderdamped;
  if (zeta_ <= 1.05) return DampingRegime::kCriticallyDamped;
  return DampingRegime::kOverdamped;
}

bool DelayModel::in_fitted_range() const {
  return rt_ >= 0.0 && rt_ <= 1.0 && ct_ >= 0.0 && ct_ <= 1.0;
}

double DelayModel::rc_limit_delay() const {
  return tline::paper_rc_limit(system_.line.total_resistance,
                               system_.line.total_capacitance);
}

double DelayModel::lc_limit_delay() const { return system_.line.time_of_flight(); }

std::string DelayModel::describe() const {
  using rlcsim::units::eng;
  std::string regime_name;
  switch (regime()) {
    case DampingRegime::kUnderdamped: regime_name = "underdamped"; break;
    case DampingRegime::kCriticallyDamped: regime_name = "critically damped"; break;
    case DampingRegime::kOverdamped: regime_name = "overdamped"; break;
  }
  // zeta, RT, CT are dimensionless: plain %.3g, not engineering notation.
  char ratios[96];
  std::snprintf(ratios, sizeof(ratios), "zeta=%.3g (%s), RT=%.3g, CT=%.3g", zeta_,
                regime_name.c_str(), rt_, ct_);
  std::string out = std::string("RLC delay model: ") + ratios +
                    ", tpd=" + eng(delay(), "s");
  if (!in_fitted_range())
    out += " [outside the fitted RT,CT in [0,1] range; expect degraded accuracy]";
  return out;
}

}  // namespace rlcsim::core
