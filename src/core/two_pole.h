// Moment-matched two-pole model (the paper's eq. (7) family).
//
// The exact transfer function's denominator expands as
//   D(s) = 1 + b1 s + b2 s^2 + O(s^3)
// with b1, b2 in closed form (tline/transfer.h). Truncating at second order
// gives H2(s) = 1 / (1 + b1 s + b2 s^2) — a classic second-order system with
//
//   effective natural frequency  wn2  = 1 / sqrt(b2)
//   effective damping factor     zeta2 = b1 / (2 sqrt(b2))
//
// whose step response (and hence 50% delay, overshoot, ringing period) is
// analytic. This model is the bridge between the exact response and the
// paper's single-parameter zeta: the paper's eq. (9) is, in effect, a curve
// fit of this family's first-crossing time.
#pragma once

#include <complex>
#include <optional>
#include <stdexcept>

#include "tline/transfer.h"

namespace rlcsim::core {

// Thrown by TwoPoleModel::threshold_delay when the crossing cannot be
// bracketed: at pathologically extreme damping the overdamped response
// degenerates in double precision and never reaches the threshold. A
// distinct type so callers can treat exactly this corner as "reference
// unavailable" without masking other root-finder failures.
struct BracketError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class TwoPoleModel {
 public:
  explicit TwoPoleModel(const tline::GateLineLoad& system);
  // Directly from moments (used by tests and by non-line systems).
  TwoPoleModel(double b1, double b2);

  double b1() const { return b1_; }
  double b2() const { return b2_; }
  double natural_frequency() const;  // 1/sqrt(b2), rad/s
  double damping() const;            // b1 / (2 sqrt(b2))
  bool underdamped() const { return damping() < 1.0; }

  // Poles of H2 (rad/s, real parts negative for any passive system).
  std::pair<std::complex<double>, std::complex<double>> poles() const;

  // Unit-step response value at time t (exact, analytic).
  double step_response(double t) const;

  // First time the step response reaches `threshold` (fraction of the unit
  // final value). Analytic bracketing + Brent; exact to root tolerance.
  // Throws std::runtime_error when the crossing cannot be bracketed within
  // 1e6*b1 (pathologically extreme damping, where the overdamped response
  // degenerates in double precision).
  double threshold_delay(double threshold = 0.5) const;

  // Peak overshoot fraction: exp(-pi zeta / sqrt(1 - zeta^2)) when
  // underdamped, 0 otherwise.
  double overshoot() const;
  // Time of the first response peak (underdamped only).
  std::optional<double> peak_time() const;

 private:
  double b1_ = 0.0;
  double b2_ = 0.0;
};

}  // namespace rlcsim::core
