// Aggressor/victim crosstalk analysis on a coupled bus.
//
// The paper's single-line story — inductance reshapes delay — replays on
// buses as crosstalk: neighbor switching activity moves the victim's
// effective coupling load (the Miller effect on Cc) and injects inductively
// coupled noise, so the victim's 50% delay depends on the switching PATTERN,
// not just the parasitics. This module measures that with the MNA engine:
//
//   * victim 50% delay under same-phase (neighbors switch with the victim,
//     Cc is partially bootstrapped away -> fastest) and opposite-phase
//     (neighbors switch against it, Cc Miller-doubles -> slowest) patterns;
//   * peak noise induced on a QUIET victim by switching aggressors;
//   * delay push-out relative to the isolated single-line delay of the
//     existing moment-matched two-pole model (core/two_pole.h).
//
// The victim is always the bus's middle line (aggressors on both sides).
#pragma once

#include <optional>
#include <vector>

#include "mor/moments.h"
#include "mor/reduce.h"
#include "sim/builders.h"
#include "sim/mna.h"
#include "sim/transient.h"
#include "tline/coupled_bus.h"

namespace rlcsim::core {

// Bus-wide switching patterns, described from the victim's point of view.
enum class SwitchingPattern {
  kQuietVictim,    // victim held low, every aggressor rises (noise analysis)
  kSamePhase,      // every line rises together (fast corner)
  kOppositePhase,  // victim rises, every aggressor falls (slow corner)
};
const char* switching_pattern_name(SwitchingPattern pattern);

// The per-line drive table of a pattern on an N-line bus: shields (per the
// victim-anchored shield_every rule) get kShieldGrounded, the victim and
// aggressors get the pattern's drives. Shared by the crosstalk analyses and
// the repeater-bus chain builder (src/repbus/), so the two subsystems can
// never disagree about what a pattern means.
std::vector<sim::BusDrive> pattern_drives(int lines, int victim,
                                          SwitchingPattern pattern,
                                          int shield_every);

struct CrosstalkOptions {
  double driver_resistance = 0.0;  // per line, > 0
  double load_capacitance = 0.0;   // per line, >= 0
  int segments = 40;               // ladder segments per line
  double vdd = 1.0;
  // Shield insertion: 0 = no shields; s >= 1 grounds (through the driver,
  // both ends — sim::BusDrive::kShieldGrounded) every line whose distance
  // from the victim is a positive multiple of s. s = 1 is the fully
  // shielded bus (every neighbor grounded: with nearest-neighbor coupling
  // the victim sees NO switching aggressor, only the shields' fixed ground
  // load); larger s leaves the victim's neighbors switching and grounds
  // lines further out. Shield lines never switch, whatever the pattern.
  int shield_every = 0;
  // Linear edge duration of every switching driver (slow-slew aggressors);
  // 0 = ideal steps. Honored identically by the transient path (StepSpec
  // rise) and the reduced/analytic paths (AnalyticResponse::add_ramp).
  double source_rise = 0.0;
  // Per-line driver-spec overrides (empty = the pattern's canonical drive
  // table; otherwise exactly one optional entry per line). An engaged entry
  // replaces line i's voltage-source spec after the bus circuit is built —
  // the seam for drive libraries richer than step/ramp: multi-segment PWL
  // edges, finite pulses. Honored IDENTICALLY by the transient and the
  // reduced/projected paths: the reduced decode is exact piecewise
  // superposition (one ramp contribution per linear piece), and it THROWS
  // std::invalid_argument on shapes with no finite superposition (periodic
  // pulse trains) or malformed specs rather than silently approximating.
  std::vector<std::optional<sim::SourceSpec>> drive_overrides;
  // Transient discretization; 0 picks per-scenario defaults
  // (sim::default_transient_horizon of the isolated line; dt = t_stop/4000).
  double t_stop = 0.0;
  double dt = 0.0;
  sim::SolverKind solver = sim::SolverKind::kAuto;
  // Optional cross-run symbolic-factorization reuse (sweep hot path).
  sim::SolverReuse* reuse = nullptr;
};

// True iff `line` is a shield under the victim-anchored shield_every rule
// above (the victim itself is never a shield).
bool is_shield_line(int line, int victim, int shield_every);

// All metrics come from ONE transient of the given pattern. Optional fields
// are absent — never 0 — when the pattern (or numerics) does not define them.
struct CrosstalkMetrics {
  // First 50% crossing of the victim's far end; absent for kQuietVictim
  // (a quiet victim never switches).
  std::optional<double> victim_delay_50;
  // victim_delay_50 minus isolated_delay_two_pole; absent with either.
  std::optional<double> delay_pushout;
  // Peak victim far-end excursion OUTSIDE its drive envelope [v(0), v(inf)],
  // volts: for a quiet victim this is the classic peak crosstalk noise; for
  // a switching victim it is over/undershoot beyond the rails (which
  // includes the line's own inductive ringing).
  double peak_noise = 0.0;
  // Isolated-line 50% delay of the two-pole model for the same driver, line
  // and load — the push-out reference. Absent for kQuietVictim (no push-out
  // to reference) and in the degenerate extreme-damping corner where the
  // two-pole bracket does not exist in double precision.
  std::optional<double> isolated_delay_two_pole;
};

// Simulates the bus under `pattern` and measures the victim. Throws
// std::invalid_argument for invalid bus/options and std::runtime_error if a
// switching victim never crosses 50% within the (auto-extended) horizon.
CrosstalkMetrics analyze_crosstalk(const tline::CoupledBus& bus,
                                   SwitchingPattern pattern,
                                   const CrosstalkOptions& options);

// Reduced-order ANALYTIC variant of analyze_crosstalk: builds the identical
// bus circuit, AWE-reduces every (victim, switching driver) transfer to
// `order` poles over ONE sparse factorization of G (mor/), superposes the
// closed-form step responses by linearity, and measures the same metrics on
// the formula — no time stepping. order = 2 is the ROADMAP's
// Miller-corrected two-pole victim-delay model: the victim's own two-pole
// dynamics plus two-pole coupling terms whose signs encode the switching
// pattern (the Miller effect on Cc falls out of the cross moments).
//
// `reuse` shares the symbolic factorization of G across sweep points
// (mor::ConductanceReuse; same contract as sim::SolverReuse). Throws like
// analyze_crosstalk; additionally std::runtime_error if no stable reduced
// model exists.
CrosstalkMetrics analyze_crosstalk_reduced(const tline::CoupledBus& bus,
                                           SwitchingPattern pattern,
                                           const CrosstalkOptions& options,
                                           int order = 4,
                                           mor::ConductanceReuse* reuse = nullptr);

// Arnoldi-projection basis of the bus circuit at NOMINAL parameter values,
// for reuse across a sweep: computed once (order is clamped up to the input
// count so no driver loses its DC match), then analyze_crosstalk_projected
// re-evaluates only the projected q x q pencil per point — sparse matvecs
// and dense q x q work, no LU factorization at all. `reuse` shares the G
// symbolic of the one Arnoldi run.
mor::ArnoldiBasis crosstalk_projection_basis(const tline::CoupledBus& bus,
                                             SwitchingPattern pattern,
                                             const CrosstalkOptions& options,
                                             int order,
                                             mor::ConductanceReuse* reuse = nullptr);

// analyze_crosstalk_reduced evaluated THROUGH a previously computed
// projection basis (sweep::EngineOptions::reuse_projection). Exact at the
// point the basis was built, an approximation elsewhere; accuracy degrades
// smoothly with parameter distance. A structurally different circuit (the
// basis dimension no longer matches) falls back to a fresh per-point
// reduction at the basis order, so mixed-topology grids stay correct.
CrosstalkMetrics analyze_crosstalk_projected(const tline::CoupledBus& bus,
                                             SwitchingPattern pattern,
                                             const CrosstalkOptions& options,
                                             const mor::ArnoldiBasis& basis);

}  // namespace rlcsim::core
