#include "core/two_pole.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "numeric/roots.h"

namespace rlcsim::core {

TwoPoleModel::TwoPoleModel(const tline::GateLineLoad& system) {
  tline::validate(system);
  const tline::DenominatorMoments m = tline::moments(system);
  b1_ = m.b1;
  b2_ = m.b2;
  if (!(b2_ > 0.0)) throw std::invalid_argument("TwoPoleModel: b2 must be > 0");
}

TwoPoleModel::TwoPoleModel(double b1, double b2) : b1_(b1), b2_(b2) {
  if (!(b1 > 0.0) || !(b2 > 0.0))
    throw std::invalid_argument("TwoPoleModel: b1 and b2 must be > 0");
}

double TwoPoleModel::natural_frequency() const { return 1.0 / std::sqrt(b2_); }

double TwoPoleModel::damping() const { return b1_ / (2.0 * std::sqrt(b2_)); }

std::pair<std::complex<double>, std::complex<double>> TwoPoleModel::poles() const {
  // b2 s^2 + b1 s + 1 = 0.
  const double disc = b1_ * b1_ - 4.0 * b2_;
  if (disc >= 0.0) {
    const double sq = std::sqrt(disc);
    return {std::complex<double>((-b1_ - sq) / (2.0 * b2_), 0.0),
            std::complex<double>((-b1_ + sq) / (2.0 * b2_), 0.0)};
  }
  const double re = -b1_ / (2.0 * b2_);
  const double im = std::sqrt(-disc) / (2.0 * b2_);
  return {std::complex<double>(re, im), std::complex<double>(re, -im)};
}

double TwoPoleModel::step_response(double t) const {
  if (t <= 0.0) return 0.0;
  const double zeta = damping();
  const double wn = natural_frequency();
  if (zeta < 1.0) {
    // Underdamped: 1 - e^{-z w t} [cos(wd t) + (z/sqrt(1-z^2)) sin(wd t)].
    const double wd = wn * std::sqrt(1.0 - zeta * zeta);
    const double decay = std::exp(-zeta * wn * t);
    const double ratio = zeta / std::sqrt(1.0 - zeta * zeta);
    return 1.0 - decay * (std::cos(wd * t) + ratio * std::sin(wd * t));
  }
  if (zeta == 1.0) {
    const double wt = wn * t;
    return 1.0 - (1.0 + wt) * std::exp(-wt);
  }
  // Overdamped: distinct real poles p1 < p2 < 0.
  const auto [p1c, p2c] = poles();
  const double p1 = p1c.real();
  const double p2 = p2c.real();
  return 1.0 + (p2 * std::exp(p1 * t) - p1 * std::exp(p2 * t)) / (p1 - p2);
}

double TwoPoleModel::threshold_delay(double threshold) const {
  if (!(threshold > 0.0 && threshold < 1.0))
    throw std::invalid_argument("TwoPoleModel::threshold_delay: threshold in (0,1)");
  const double zeta = damping();
  const double wn = natural_frequency();

  // Upper bracket: underdamped responses reach their (overshooting) first
  // peak at pi/wd, guaranteeing a crossing of any threshold < 1 before it.
  // Overdamped responses cross within a few b1 time constants; expand to be
  // safe.
  double hi;
  if (zeta < 1.0) {
    hi = std::numbers::pi / (wn * std::sqrt(1.0 - zeta * zeta));
  } else {
    hi = 3.0 * b1_;
    while (step_response(hi) < threshold && hi < 1e6 * b1_) hi *= 2.0;
    if (step_response(hi) < threshold) {
      // Expansion hit the 1e6*b1 cap without bracketing a crossing. This
      // happens at pathologically extreme damping, where the slow pole's
      // magnitude cancels to zero in double precision and the computed
      // response plateaus below the threshold. Brent on an unbracketed
      // interval would fail deep inside the numeric layer; fail here with
      // the actual cause instead.
      throw BracketError(
          "TwoPoleModel::threshold_delay: step response never reaches the "
          "threshold within 1e6*b1 (damping factor too extreme for double "
          "precision)");
    }
  }
  return numeric::brent([&](double t) { return step_response(t) - threshold; },
                        0.0, hi, {.x_tolerance = 1e-15 * hi + 1e-30});
}

double TwoPoleModel::overshoot() const {
  const double zeta = damping();
  if (zeta >= 1.0) return 0.0;
  return std::exp(-std::numbers::pi * zeta / std::sqrt(1.0 - zeta * zeta));
}

std::optional<double> TwoPoleModel::peak_time() const {
  const double zeta = damping();
  if (zeta >= 1.0) return std::nullopt;
  const double wd = natural_frequency() * std::sqrt(1.0 - zeta * zeta);
  return std::numbers::pi / wd;
}

}  // namespace rlcsim::core
