// Repeater insertion in RC and RLC lines (Section III + appendix).
//
// A line of totals (Rt, Lt, Ct) is split into k equal sections, each driven
// by a buffer h times the minimum size (output resistance r0/h, input
// capacitance h c0). The paper's results implemented here:
//
//   Bakoglu RC optimum (eq. 11):
//     h_rc = sqrt(r0 Ct / (Rt c0)),   k_rc = sqrt(Rt Ct / (2 r0 c0))
//
//   Inductance figure of merit (eq. 13):
//     T_{L/R} = (Lt / Rt) / (r0 c0)
//
//   RLC optimum (eqs. 14, 15):
//     h_opt = h_rc / [1 + 0.16 T^3]^0.24
//     k_opt = k_rc / [1 + 0.18 T^3]^0.3
//
//   Total delay of the repeater system (eq. 19): k sections, each modeled by
//   the closed-form RLC gate delay of its section impedances.
//
//   Cost of ignoring inductance: delay increase (eq. 16, computed
//   numerically) and repeater area increase (eq. 18, closed form).
#pragma once

#include "core/delay_model.h"
#include "tline/rlc.h"

namespace rlcsim::core {

// Minimum-size repeater parameters of a technology.
struct MinBuffer {
  double r0 = 0.0;  // output resistance, ohm
  double c0 = 0.0;  // input capacitance, F
  double area = 1.0;           // A_min, arbitrary units (um^2 in tech layer)
  double output_capacitance = 0.0;  // drain/diffusion cap, F (power model)
};

// A sizing decision: h (relative size) and k (number of sections).
struct RepeaterDesign {
  double size = 1.0;      // h
  double sections = 1.0;  // k, continuous (see rounded_sections)
};

// Throws std::invalid_argument unless r0 > 0 and c0 > 0.
void validate(const MinBuffer& buffer);

// eq. (13): the paper's inductance figure of merit for repeater insertion.
double t_lr(const tline::LineParams& line, const MinBuffer& buffer);

// eq. (11) — the RC (Bakoglu) optimum, exact for Lt = 0.
RepeaterDesign bakoglu_rc(const tline::LineParams& line, const MinBuffer& buffer);

// Error factors h'(T), k'(T) from eqs. (14)/(15): the ratio of the RLC
// optimum to the RC optimum. Both approach 1 as T -> 0 and decrease as
// inductance effects grow.
double h_error_factor(double t_lr_value);
double k_error_factor(double t_lr_value);

// eqs. (14), (15) — the closed-form RLC optimum.
RepeaterDesign ismail_friedman_rlc(const tline::LineParams& line,
                                   const MinBuffer& buffer);

// Total 50% propagation delay of the repeater system (eq. 19): k times the
// closed-form delay of one section (line/k driven by r0/h into h c0).
// `design.sections` may be fractional (used by the continuous optimization);
// physical designs should round via rounded_sections().
double total_delay(const tline::LineParams& line, const MinBuffer& buffer,
                   const RepeaterDesign& design,
                   const DelayFitConstants& fit = kPaperFit);

// Rounds a continuous k to the better of floor/ceil (>= 1) by total delay.
RepeaterDesign rounded_sections(const tline::LineParams& line, const MinBuffer& buffer,
                                const RepeaterDesign& design,
                                const DelayFitConstants& fit = kPaperFit);

// eq. (16), as literally defined by the paper: percent increase in total
// delay when the line is sized with the RC formulas (eq. 11) instead of the
// closed-form RLC formulas (eqs. 14/15), both evaluated with the eq. (9)
// delay model. A function of T_{L/R} only; the overload taking T evaluates
// it in normalized space. Paper anchors: ~10% at T=3, ~20% at T=5, ~30% at
// T=10.
//
// Reproduction note (see EXPERIMENTS.md): under our faithful reconstruction
// of the objective, the numerical optimum decays more slowly with T than
// eqs. (14)/(15), so this literal eq. (16) can come out negative. The
// physically meaningful penalty of RC sizing is rc_sizing_penalty_percent
// below, which references the numerical optimum and is >= 0 by construction.
double delay_increase_percent(const tline::LineParams& line, const MinBuffer& buffer,
                              const DelayFitConstants& fit = kPaperFit);
double delay_increase_percent(double t_lr_value,
                              const DelayFitConstants& fit = kPaperFit);

// Percent extra total delay of Bakoglu RC sizing relative to the numerically
// optimized RLC-aware sizing (the robust form of eq. 16). Declared here,
// implemented in repeater_numeric.cpp (it needs the optimizer).
double rc_sizing_penalty_percent(double t_lr_value,
                                 const DelayFitConstants& fit = kPaperFit);

// eq. (18), closed form: percent extra repeater area from RC sizing,
//   %AI = 100 { [1 + 0.18 T^3]^0.3 [1 + 0.16 T^3]^0.24 - 1 }.
// Paper anchors: 154% at T=3, 435% at T=5.
double area_increase_percent(double t_lr_value);

// Total repeater area of a design: h * k * A_min.
double repeater_area(const MinBuffer& buffer, const RepeaterDesign& design);

// Dynamic switching power of the repeater system at frequency f and supply
// vdd: P = f vdd^2 [ Ct + k h (c0 + c_out0) ] (wire cap + repeater input and
// output caps; the wire term is sizing-independent but kept so ratios are
// physically meaningful).
double dynamic_power(const tline::LineParams& line, const MinBuffer& buffer,
                     const RepeaterDesign& design, double frequency, double vdd);

}  // namespace rlcsim::core
