// Sensitivity of the eq. (9) delay to every impedance parameter.
//
// Timing-driven optimization (wire sizing, buffer sizing, layer assignment)
// needs d(tpd)/d(parameter), not just tpd. Because eq. (9) is smooth and
// cheap, sensitivities come from central differences at machine-precision-
// limited accuracy in nanoseconds of CPU time — this module packages them
// with the right relative scalings and a few analytic cross-checks used by
// the tests (e.g. the RC limit d tpd/d Rtr -> 0.74 (Ct + CL)/sqrt(1+CT)).
#pragma once

#include "core/delay_model.h"

namespace rlcsim::core {

// All partial derivatives of the eq. (9) delay at a given operating point.
struct DelaySensitivity {
  double d_rtr = 0.0;  // s / ohm
  double d_rt = 0.0;   // s / ohm
  double d_lt = 0.0;   // s / H
  double d_ct = 0.0;   // s / F
  double d_cl = 0.0;   // s / F
};

// Central-difference sensitivities with relative step `epsilon`.
// Throws on invalid systems (same rules as DelayModel).
DelaySensitivity delay_sensitivity(const tline::GateLineLoad& system,
                                   const DelayFitConstants& fit = kPaperFit,
                                   double epsilon = 1e-6);

// Normalized (logarithmic) sensitivities: d ln(tpd) / d ln(x) — the
// "percent delay per percent parameter change" designers quote. For the
// length-scaling story: S_length = S_rt + S_lt + S_ct is the local exponent
// p of tpd ~ l^p, since Rt, Lt, Ct all scale linearly with length.
struct LogSensitivity {
  double rtr = 0.0;
  double rt = 0.0;
  double lt = 0.0;
  double ct = 0.0;
  double cl = 0.0;

  double length_exponent() const { return rt + lt + ct; }
};
LogSensitivity log_sensitivity(const tline::GateLineLoad& system,
                               const DelayFitConstants& fit = kPaperFit,
                               double epsilon = 1e-6);

}  // namespace rlcsim::core
