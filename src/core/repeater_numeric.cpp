#include "core/repeater_numeric.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/optimize.h"

namespace rlcsim::core {
namespace {

// Objective with domain guard: +inf outside h > 0, k > 0.
double guarded_delay(const tline::LineParams& line, const MinBuffer& buffer, double h,
                     double k, double k_min, const DelayFitConstants& fit) {
  if (!(h > 1e-6) || !(k > std::max(1e-6, k_min)))
    return std::numeric_limits<double>::infinity();
  return total_delay(line, buffer, {h, k}, fit);
}

// Batched version of numeric::grid_refine_2d: each refinement level builds
// the full candidate lattice, hands it to `batch` in one call (the sweep
// engine evaluates it across its thread pool), then re-centers a shrunken
// box on the incumbent. Matches grid_refine_2d's contract — robust global
// scan, ~(range * (4/grid)^levels) final resolution — but exposes the grid
// as data instead of a point-at-a-time callback.
numeric::MinimumND batched_grid_refine(
    const tline::LineParams& line, const MinBuffer& buffer,
    const DelayFitConstants& fit, const DesignBatchFn& batch, double k_min,
    double x_lo, double x_hi, double y_lo, double y_hi, int grid_points,
    int refinements) {
  std::vector<RepeaterDesign> candidates;
  std::vector<double> delays;
  numeric::MinimumND best;
  best.value = std::numeric_limits<double>::infinity();
  best.x = {0.5 * (x_lo + x_hi), 0.5 * (y_lo + y_hi)};

  for (int level = 0; level < refinements; ++level) {
    candidates.clear();
    const int n = grid_points;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        candidates.push_back({x_lo + (x_hi - x_lo) * i / (n - 1),
                              y_lo + (y_hi - y_lo) * j / (n - 1)});
    batch(line, buffer, fit, candidates, delays);

    std::size_t arg = 0;
    double val = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      double d = delays[c];
      // Re-apply the domain guard the serial objective enforces.
      if (!(candidates[c].size > 1e-6) ||
          !(candidates[c].sections > std::max(1e-6, k_min)))
        d = std::numeric_limits<double>::infinity();
      if (d < val) {
        val = d;
        arg = c;
      }
    }
    if (val < best.value) {
      best.value = val;
      best.x = {candidates[arg].size, candidates[arg].sections};
    }
    // Shrink to +/- 2 cells around the incumbent, clamped to the level's box.
    const double cx = best.x[0], cy = best.x[1];
    const double wx = 2.0 * (x_hi - x_lo) / (n - 1), wy = 2.0 * (y_hi - y_lo) / (n - 1);
    x_lo = std::max(x_lo, cx - wx);
    x_hi = std::min(x_hi, cx + wx);
    y_lo = std::max(y_lo, cy - wy);
    y_hi = std::min(y_hi, cy + wy);
    ++best.iterations;
  }
  best.converged = true;
  return best;
}

// Shared 2-D minimization: grid refinement for a robust global pass, then
// Nelder–Mead to polish. With a batch hook, the grid pass evaluates whole
// candidate lattices through it (parallel under the sweep engine); without
// one, the original serial grid_refine_2d path runs unchanged.
RepeaterDesign minimize_design(const tline::LineParams& line, const MinBuffer& buffer,
                               const RepeaterDesign& seed, double k_min,
                               const DelayFitConstants& fit,
                               const DesignBatchFn& batch = {}) {
  const auto objective = [&](double h, double k) {
    return guarded_delay(line, buffer, h, k, k_min, fit);
  };

  // Inductance only ever shrinks the optimum relative to the RC solution
  // (h', k' <= 1), but search a generous box around the seed anyway.
  const auto coarse =
      batch ? batched_grid_refine(line, buffer, fit, batch, k_min, 0.02 * seed.size,
                                  1.6 * seed.size,
                                  std::max(k_min, 0.02 * seed.sections),
                                  1.6 * seed.sections,
                                  /*grid_points=*/28, /*refinements=*/10)
            : numeric::grid_refine_2d(
                  objective, 0.02 * seed.size, 1.6 * seed.size,
                  std::max(k_min, 0.02 * seed.sections), 1.6 * seed.sections,
                  /*grid_points=*/28, /*refinements=*/10);

  const auto polished = numeric::nelder_mead(
      [&](const std::vector<double>& x) { return objective(x[0], x[1]); },
      coarse.x, {0.01 * seed.size, 0.01 * seed.sections},
      {.x_tolerance = 1e-10, .max_iterations = 800});

  const auto& best = polished.value <= coarse.value ? polished.x : coarse.x;
  return {best[0], best[1]};
}

}  // namespace

NormalizedOptimum normalized_optimum(double t_lr_value, const DelayFitConstants& fit,
                                     const DesignBatchFn& batch) {
  if (!(t_lr_value > 0.0))
    throw std::invalid_argument("normalized_optimum: T must be > 0 (T = 0 is the RC limit)");

  // Normalized instantiation: Rt = Ct = 1, r0 = c0 = 1 -> T_{L/R} = Lt.
  const tline::LineParams line{1.0, t_lr_value, 1.0};
  const MinBuffer buffer{1.0, 1.0, 1.0, 0.0};
  const RepeaterDesign rc = bakoglu_rc(line, buffer);

  const RepeaterDesign best = minimize_design(line, buffer, rc, 0.0, fit, batch);
  NormalizedOptimum out;
  out.h_factor = best.size / rc.size;
  out.k_factor = best.sections / rc.sections;
  out.delay = total_delay(line, buffer, best, fit);
  return out;
}

OptimizedDesign optimize(const tline::LineParams& line, const MinBuffer& buffer,
                         const DelayFitConstants& fit, double min_sections,
                         const DesignBatchFn& batch) {
  tline::validate(line);
  validate(buffer);

  // Seed from the closed form (already within a fraction of a percent).
  const RepeaterDesign seed = ismail_friedman_rlc(line, buffer);
  const RepeaterDesign best =
      minimize_design(line, buffer, seed, std::max(0.0, min_sections), fit, batch);

  OptimizedDesign out;
  out.continuous = best;
  out.continuous_delay = total_delay(line, buffer, best, fit);

  // Practical design: integer k >= 1, h re-optimized for that k.
  RepeaterDesign rounded = rounded_sections(line, buffer, best, fit);
  rounded.sections = std::max(1.0, rounded.sections);
  const auto h_opt = numeric::brent_min(
      [&](double h) {
        return guarded_delay(line, buffer, h, rounded.sections, 0.0, fit);
      },
      0.02 * best.size, 4.0 * best.size, {.x_tolerance = 1e-10});
  out.practical = {h_opt.x, rounded.sections};
  out.practical_delay = total_delay(line, buffer, out.practical, fit);
  return out;
}

double rc_sizing_penalty_percent(double t_lr_value, const DelayFitConstants& fit) {
  if (t_lr_value < 0.0)
    throw std::invalid_argument("rc_sizing_penalty_percent: T must be >= 0");
  if (t_lr_value == 0.0) return 0.0;
  const tline::LineParams line{1.0, t_lr_value, 1.0};
  const MinBuffer buffer{1.0, 1.0, 1.0, 0.0};
  const double t_rc = total_delay(line, buffer, bakoglu_rc(line, buffer), fit);
  const double t_opt = normalized_optimum(t_lr_value, fit).delay;
  return 100.0 * (t_rc - t_opt) / t_opt;
}

ConstrainedDesign optimize_with_area_budget(const tline::LineParams& line,
                                            const MinBuffer& buffer, double max_area,
                                            const DelayFitConstants& fit) {
  validate(buffer);
  tline::validate(line);
  if (!(max_area > 0.0))
    throw std::invalid_argument("optimize_with_area_budget: budget must be > 0");
  if (max_area < buffer.area)
    throw std::invalid_argument(
        "optimize_with_area_budget: budget below one minimum-size repeater");

  const OptimizedDesign unconstrained = optimize(line, buffer, fit, 0.0);
  ConstrainedDesign out;
  if (repeater_area(buffer, unconstrained.continuous) <= max_area) {
    out.design = unconstrained.continuous;
    out.delay = unconstrained.continuous_delay;
    out.constraint_active = false;
    return out;
  }

  // Active constraint: h(k) = budget / (k A_min); minimize over k alone.
  const double budget_hk = max_area / buffer.area;  // h * k at the boundary
  const auto boundary_delay = [&](double k) {
    const double h = budget_hk / k;
    if (!(h > 1e-6) || !(k > 1e-6)) return std::numeric_limits<double>::infinity();
    return total_delay(line, buffer, {h, k}, fit);
  };
  // k can range from "all budget in one huge repeater" (k ~ 1) up to
  // "budget spread over many minimum-size repeaters" (k ~ budget_hk).
  const auto best = numeric::brent_min(boundary_delay, 0.5, budget_hk,
                                       {.x_tolerance = 1e-9});
  out.design = {budget_hk / best.x, best.x};
  out.delay = best.value;
  out.constraint_active = true;
  return out;
}

double closed_form_excess_delay(double t_lr_value, const DelayFitConstants& fit) {
  const tline::LineParams line{1.0, t_lr_value, 1.0};
  const MinBuffer buffer{1.0, 1.0, 1.0, 0.0};
  const double numeric_best = normalized_optimum(t_lr_value, fit).delay;
  const double closed_form =
      total_delay(line, buffer, ismail_friedman_rlc(line, buffer), fit);
  return (closed_form - numeric_best) / numeric_best;
}

}  // namespace rlcsim::core
