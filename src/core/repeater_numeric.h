// Numerical repeater optimization (the reference for Fig. 4 and for the
// "< 0.05% of the numerical optimum" claim about eqs. (14)/(15)).
//
// The appendix proves that, written in terms of the normalized sizes
//   h' = h / h_rc,   k' = k / k_rc,
// the total-delay minimization depends on T_{L/R} only. We therefore solve
// it once per T in a normalized instantiation (Rt = Ct = r0 = c0 = 1,
// Lt = T) and scale by the Bakoglu solution.
#pragma once

#include <functional>
#include <vector>

#include "core/repeater.h"

namespace rlcsim::core {

// Batch evaluation hook for the grid passes of the optimizers below: fills
// `delays[i] = total_delay(line, buffer, candidates[i], fit)` (resizing
// `delays`). When empty, the optimizers evaluate candidates one by one on
// the calling thread; the sweep engine supplies a parallel implementation
// (sweep::SweepEngine::repeater_batch) that fans the candidate grid out
// across its thread pool — the optimization rides the same machinery as
// every other sweep.
using DesignBatchFn = std::function<void(
    const tline::LineParams& line, const MinBuffer& buffer,
    const DelayFitConstants& fit, const std::vector<RepeaterDesign>& candidates,
    std::vector<double>& delays)>;

struct NormalizedOptimum {
  double h_factor = 1.0;  // h'opt — the solid curve of Fig. 4a
  double k_factor = 1.0;  // k'opt — the solid curve of Fig. 4b
  double delay = 0.0;     // minimized total delay in the normalized system
};

// Minimizes the normalized total delay over (h', k') for a given T_{L/R}.
// Grid refinement seeds a Nelder–Mead polish; accuracy ~1e-6 in the factors.
NormalizedOptimum normalized_optimum(double t_lr_value,
                                     const DelayFitConstants& fit = kPaperFit,
                                     const DesignBatchFn& batch = {});

// Full-impedance optimum for a physical line/buffer pair. `min_sections`
// clamps k (>= it); pass 0 to allow the continuous unconstrained optimum.
struct OptimizedDesign {
  RepeaterDesign continuous;  // unrounded (h, k)
  RepeaterDesign practical;   // k rounded to the better integer, >= 1
  double continuous_delay = 0.0;
  double practical_delay = 0.0;
};
OptimizedDesign optimize(const tline::LineParams& line, const MinBuffer& buffer,
                         const DelayFitConstants& fit = kPaperFit,
                         double min_sections = 1.0, const DesignBatchFn& batch = {});

// Relative excess delay (fraction, not percent) of the closed-form sizing
// (eqs. 14/15) versus the numerical optimum at a given T — the quantity the
// paper bounds by 0.05%.
double closed_form_excess_delay(double t_lr_value,
                                const DelayFitConstants& fit = kPaperFit);

// Area-constrained repeater insertion (extension of Section III): minimize
// the total delay subject to h * k * A_min <= max_area. When the
// unconstrained optimum fits the budget it is returned unchanged; otherwise
// the search runs along the active constraint h = budget / (k A_min) with a
// 1-D minimization over k. Throws std::invalid_argument when even the
// smallest sensible design (h = k = 1) exceeds the budget.
struct ConstrainedDesign {
  RepeaterDesign design;       // continuous h, k on/inside the constraint
  double delay = 0.0;
  bool constraint_active = false;
};
ConstrainedDesign optimize_with_area_budget(const tline::LineParams& line,
                                            const MinBuffer& buffer,
                                            double max_area,
                                            const DelayFitConstants& fit = kPaperFit);

}  // namespace rlcsim::core
