#include "core/sensitivity.h"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace rlcsim::core {
namespace {

// Central difference of rlc_delay along one parameter. `rebuild` returns the
// system with that parameter set to its argument; `value` is its base value.
double central(const std::function<tline::GateLineLoad(double)>& rebuild,
               double value, double epsilon, const DelayFitConstants& fit) {
  const double h = epsilon * std::max(std::fabs(value), 1e-30);
  const double up = rlc_delay(rebuild(value + h), fit);
  const double down = rlc_delay(rebuild(value - h), fit);
  return (up - down) / (2.0 * h);
}

}  // namespace

DelaySensitivity delay_sensitivity(const tline::GateLineLoad& system,
                                   const DelayFitConstants& fit, double epsilon) {
  tline::validate(system);
  if (!(epsilon > 0.0 && epsilon < 0.1))
    throw std::invalid_argument("delay_sensitivity: epsilon out of (0, 0.1)");

  DelaySensitivity out;
  // Rtr and CL may sit at 0; differentiate around a small positive pivot
  // there (the delay is one-sided differentiable and smooth for x >= 0).
  const double rtr_pivot = std::max(system.driver_resistance,
                                    epsilon * system.line.total_resistance);
  out.d_rtr = central(
      [&](double v) {
        tline::GateLineLoad s = system;
        s.driver_resistance = v;
        return s;
      },
      rtr_pivot, epsilon, fit);
  out.d_rt = central(
      [&](double v) {
        tline::GateLineLoad s = system;
        s.line.total_resistance = v;
        return s;
      },
      system.line.total_resistance, epsilon, fit);
  out.d_lt = central(
      [&](double v) {
        tline::GateLineLoad s = system;
        s.line.total_inductance = v;
        return s;
      },
      system.line.total_inductance, epsilon, fit);
  out.d_ct = central(
      [&](double v) {
        tline::GateLineLoad s = system;
        s.line.total_capacitance = v;
        return s;
      },
      system.line.total_capacitance, epsilon, fit);
  const double cl_pivot = std::max(system.load_capacitance,
                                   epsilon * system.line.total_capacitance);
  out.d_cl = central(
      [&](double v) {
        tline::GateLineLoad s = system;
        s.load_capacitance = v;
        return s;
      },
      cl_pivot, epsilon, fit);
  return out;
}

LogSensitivity log_sensitivity(const tline::GateLineLoad& system,
                               const DelayFitConstants& fit, double epsilon) {
  const DelaySensitivity abs = delay_sensitivity(system, fit, epsilon);
  const double tpd = rlc_delay(system, fit);
  LogSensitivity out;
  out.rtr = abs.d_rtr * system.driver_resistance / tpd;
  out.rt = abs.d_rt * system.line.total_resistance / tpd;
  out.lt = abs.d_lt * system.line.total_inductance / tpd;
  out.ct = abs.d_ct * system.line.total_capacitance / tpd;
  out.cl = abs.d_cl * system.load_capacitance / tpd;
  return out;
}

}  // namespace rlcsim::core
