#include "core/repeater.h"

#include <cmath>
#include <stdexcept>

namespace rlcsim::core {

void validate(const MinBuffer& buffer) {
  if (!(buffer.r0 > 0.0)) throw std::invalid_argument("MinBuffer: r0 must be > 0");
  if (!(buffer.c0 > 0.0)) throw std::invalid_argument("MinBuffer: c0 must be > 0");
  if (buffer.output_capacitance < 0.0)
    throw std::invalid_argument("MinBuffer: output_capacitance must be >= 0");
}

double t_lr(const tline::LineParams& line, const MinBuffer& buffer) {
  validate(buffer);
  if (!(line.total_resistance > 0.0))
    throw std::invalid_argument("t_lr: line resistance must be > 0");
  return (line.total_inductance / line.total_resistance) / (buffer.r0 * buffer.c0);
}

RepeaterDesign bakoglu_rc(const tline::LineParams& line, const MinBuffer& buffer) {
  validate(buffer);
  tline::validate_rc(line);
  if (!(line.total_resistance > 0.0))
    throw std::invalid_argument("bakoglu_rc: line resistance must be > 0");
  RepeaterDesign d;
  d.size = std::sqrt(buffer.r0 * line.total_capacitance /
                     (line.total_resistance * buffer.c0));
  d.sections = std::sqrt(line.total_resistance * line.total_capacitance /
                         (2.0 * buffer.r0 * buffer.c0));
  return d;
}

double h_error_factor(double t) {
  if (t < 0.0) throw std::invalid_argument("h_error_factor: T must be >= 0");
  return 1.0 / std::pow(1.0 + 0.16 * t * t * t, 0.24);
}

double k_error_factor(double t) {
  if (t < 0.0) throw std::invalid_argument("k_error_factor: T must be >= 0");
  return 1.0 / std::pow(1.0 + 0.18 * t * t * t, 0.30);
}

RepeaterDesign ismail_friedman_rlc(const tline::LineParams& line,
                                   const MinBuffer& buffer) {
  const RepeaterDesign rc = bakoglu_rc(line, buffer);
  const double t = t_lr(line, buffer);
  return {rc.size * h_error_factor(t), rc.sections * k_error_factor(t)};
}

double total_delay(const tline::LineParams& line, const MinBuffer& buffer,
                   const RepeaterDesign& design, const DelayFitConstants& fit) {
  validate(buffer);
  tline::validate(line);
  if (!(design.size > 0.0) || !(design.sections > 0.0))
    throw std::invalid_argument("total_delay: h and k must be > 0");

  const double k = design.sections;
  const tline::LineParams section{line.total_resistance / k,
                                  line.total_inductance / k,
                                  line.total_capacitance / k};
  const tline::GateLineLoad one{buffer.r0 / design.size, section,
                                buffer.c0 * design.size};
  return k * rlc_delay(one, fit);
}

RepeaterDesign rounded_sections(const tline::LineParams& line, const MinBuffer& buffer,
                                const RepeaterDesign& design,
                                const DelayFitConstants& fit) {
  const double k_lo = std::max(1.0, std::floor(design.sections));
  const double k_hi = std::max(1.0, std::ceil(design.sections));
  if (k_lo == k_hi) return {design.size, k_lo};
  const double d_lo = total_delay(line, buffer, {design.size, k_lo}, fit);
  const double d_hi = total_delay(line, buffer, {design.size, k_hi}, fit);
  return {design.size, d_lo <= d_hi ? k_lo : k_hi};
}

double delay_increase_percent(const tline::LineParams& line, const MinBuffer& buffer,
                              const DelayFitConstants& fit) {
  const RepeaterDesign rc = bakoglu_rc(line, buffer);
  const RepeaterDesign rlc = ismail_friedman_rlc(line, buffer);
  const double t_rc = total_delay(line, buffer, rc, fit);
  const double t_rlc = total_delay(line, buffer, rlc, fit);
  return 100.0 * (t_rc - t_rlc) / t_rlc;
}

double delay_increase_percent(double t_lr_value, const DelayFitConstants& fit) {
  if (t_lr_value < 0.0)
    throw std::invalid_argument("delay_increase_percent: T must be >= 0");
  if (t_lr_value == 0.0) return 0.0;
  // Normalized instantiation: Rt = Ct = 1, r0 = c0 = 1 makes T_{L/R} = Lt.
  // The appendix shows the ratio depends on T only, so this is general.
  const tline::LineParams line{1.0, t_lr_value, 1.0};
  const MinBuffer buffer{1.0, 1.0, 1.0, 0.0};
  return delay_increase_percent(line, buffer, fit);
}

double area_increase_percent(double t) {
  if (t < 0.0) throw std::invalid_argument("area_increase_percent: T must be >= 0");
  const double t3 = t * t * t;
  return 100.0 *
         (std::pow(1.0 + 0.18 * t3, 0.30) * std::pow(1.0 + 0.16 * t3, 0.24) - 1.0);
}

double repeater_area(const MinBuffer& buffer, const RepeaterDesign& design) {
  validate(buffer);
  return design.size * design.sections * buffer.area;
}

double dynamic_power(const tline::LineParams& line, const MinBuffer& buffer,
                     const RepeaterDesign& design, double frequency, double vdd) {
  validate(buffer);
  if (!(frequency > 0.0) || !(vdd > 0.0))
    throw std::invalid_argument("dynamic_power: frequency and vdd must be > 0");
  const double repeater_cap =
      design.sections * design.size * (buffer.c0 + buffer.output_capacitance);
  return frequency * vdd * vdd * (line.total_capacitance + repeater_cap);
}

}  // namespace rlcsim::core
