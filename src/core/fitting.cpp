#include "core/fitting.h"

#include <cmath>
#include <stdexcept>

#include "core/repeater_numeric.h"
#include "numeric/stats.h"
#include "tline/step_response.h"

namespace rlcsim::core {

std::vector<ScaledDelaySample> generate_scaled_delay_data(
    const std::vector<double>& zetas, const std::vector<double>& rts,
    const std::vector<double>& cts) {
  if (zetas.empty() || rts.empty() || cts.empty())
    throw std::invalid_argument("generate_scaled_delay_data: empty grid");

  std::vector<ScaledDelaySample> samples;
  samples.reserve(zetas.size() * rts.size() * cts.size());
  for (double rt : rts) {
    for (double ct : cts) {
      const double shape = (rt + ct + rt * ct + 0.5) / std::sqrt(1.0 + ct);
      for (double zeta : zetas) {
        if (!(zeta > 0.0))
          throw std::invalid_argument("generate_scaled_delay_data: zeta must be > 0");
        // Normalization Rt = Ct = 1: zeta = 0.5 sqrt(1/Lt) shape.
        const double lt = std::pow(0.5 * shape / zeta, 2.0);
        const tline::GateLineLoad system{rt, tline::LineParams{1.0, lt, 1.0}, ct};
        const double tpd = tline::threshold_delay(system, 0.5);
        const double omega_n = 1.0 / std::sqrt(lt * (1.0 + ct));
        samples.push_back({zeta, rt, ct, tpd * omega_n});
      }
    }
  }
  return samples;
}

DelayFitOutcome fit_delay_constants(const std::vector<ScaledDelaySample>& samples,
                                    const DelayFitConstants& start) {
  if (samples.size() < 4)
    throw std::invalid_argument("fit_delay_constants: need >= 4 samples");

  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(s.zeta);
    y.push_back(s.scaled_delay);
  }

  // a and b must stay positive; fitting their logarithms keeps the surface
  // smooth everywhere (hard clamps create flat regions that strand LM).
  const numeric::FitModel model = [](double zeta, const std::vector<double>& p) {
    const double a = std::exp(p[0]);
    const double b = std::exp(p[1]);
    const double c = p[2];
    return std::exp(-a * std::pow(zeta, b)) + c * zeta;
  };

  const auto fit = numeric::fit_levenberg_marquardt(
      model, x, y,
      {std::log(start.exp_scale), std::log(start.exp_power), start.linear});

  DelayFitOutcome out;
  out.constants = {std::exp(fit.params[0]), std::exp(fit.params[1]), fit.params[2]};
  out.rms_residual = std::sqrt(fit.rss / static_cast<double>(samples.size()));
  double max_rel = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    max_rel = std::max(max_rel,
                       numeric::rel_error(model(x[i], fit.params), y[i]));
  out.max_rel_error = max_rel;
  return out;
}

std::vector<ErrorFactorSample> generate_error_factor_data(
    const std::vector<double>& t_values) {
  std::vector<ErrorFactorSample> samples;
  samples.reserve(t_values.size());
  for (double t : t_values) {
    const NormalizedOptimum opt = normalized_optimum(t);
    samples.push_back({t, opt.h_factor, opt.k_factor});
  }
  return samples;
}

namespace {

ErrorFactorFit fit_factor(const std::vector<ErrorFactorSample>& samples,
                          bool use_h_factor) {
  if (samples.size() < 3)
    throw std::invalid_argument("fit_factor: need >= 3 samples");
  std::vector<double> x, y;
  for (const auto& s : samples) {
    x.push_back(s.t_lr);
    y.push_back(use_h_factor ? s.h_factor : s.k_factor);
  }
  // Log-parameterization for the same reason as fit_delay_constants: both
  // constants are positive and LM must not see clamp-induced flat regions.
  const numeric::FitModel model = [](double t, const std::vector<double>& p) {
    const double a = std::exp(p[0]);
    const double b = std::exp(p[1]);
    return 1.0 / std::pow(1.0 + a * t * t * t, b);
  };
  const auto fit = numeric::fit_levenberg_marquardt(
      model, x, y, {std::log(0.05), std::log(0.3)});
  ErrorFactorFit out;
  out.coefficient = std::exp(fit.params[0]);
  out.exponent = std::exp(fit.params[1]);
  double max_rel = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    max_rel = std::max(max_rel, numeric::rel_error(model(x[i], fit.params), y[i]));
  out.max_rel_error = max_rel;
  return out;
}

}  // namespace

ErrorFactorFit fit_h_factor(const std::vector<ErrorFactorSample>& samples) {
  return fit_factor(samples, true);
}

ErrorFactorFit fit_k_factor(const std::vector<ErrorFactorSample>& samples) {
  return fit_factor(samples, false);
}

}  // namespace rlcsim::core
