// Re-derivation of the paper's fitted coefficients from our own reference
// data — the ablation that closes the reproduction loop:
//
//  * eq. (9)'s {2.9, 1.35, 1.48} are re-fit against scaled 50% delays of the
//    exact transmission-line response (numerical Laplace inversion);
//  * eqs. (14)/(15)'s {0.16, 0.24} and {0.18, 0.30} are re-fit against the
//    numerical repeater optimum over a T_{L/R} sweep.
#pragma once

#include <vector>

#include "core/delay_model.h"
#include "numeric/curve_fit.h"

namespace rlcsim::core {

// One reference sample of the scaled-delay surface.
struct ScaledDelaySample {
  double zeta = 0.0;
  double rt = 0.0;
  double ct = 0.0;
  double scaled_delay = 0.0;  // t'pd = tpd * wn from the exact response
};

// Generates reference samples on a (zeta, RT, CT) grid using the exact
// transfer function. For each (RT, CT) pair the line inductance is chosen so
// that zeta hits the requested values (Rt = Ct = 1 normalization).
std::vector<ScaledDelaySample> generate_scaled_delay_data(
    const std::vector<double>& zetas, const std::vector<double>& rts,
    const std::vector<double>& cts);

// Fits t'(zeta) = exp(-a zeta^b) + c zeta to the samples. `start` defaults
// to a deliberately-off initial guess so the fit demonstrably converges on
// its own rather than echoing the paper's values.
struct DelayFitOutcome {
  DelayFitConstants constants;
  double rms_residual = 0.0;
  double max_rel_error = 0.0;  // of the fitted model vs the samples
};
DelayFitOutcome fit_delay_constants(const std::vector<ScaledDelaySample>& samples,
                                    const DelayFitConstants& start = {2.0, 1.0, 1.0});

// One numerical repeater-optimum sample.
struct ErrorFactorSample {
  double t_lr = 0.0;
  double h_factor = 0.0;
  double k_factor = 0.0;
};
std::vector<ErrorFactorSample> generate_error_factor_data(
    const std::vector<double>& t_values);

// Fits f(T) = 1 / [1 + a T^3]^b to the h' (and k') samples.
struct ErrorFactorFit {
  double coefficient = 0.0;  // a
  double exponent = 0.0;     // b
  double max_rel_error = 0.0;
};
ErrorFactorFit fit_h_factor(const std::vector<ErrorFactorSample>& samples);
ErrorFactorFit fit_k_factor(const std::vector<ErrorFactorSample>& samples);

}  // namespace rlcsim::core
