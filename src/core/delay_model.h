// The paper's closed-form propagation delay model (Section II).
//
// For a CMOS gate (output resistance Rtr) driving a distributed RLC line
// (totals Rt, Lt, Ct) into a load capacitance CL, with
//
//   RT = Rtr / Rt,        CT = CL / Ct                       (eq. 5)
//   wn = 1 / sqrt(Lt (Ct + CL))                              (eq. 3)
//   zeta = (Rt / 2) sqrt(Ct / Lt)
//          * (RT + CT + RT CT + 0.5) / sqrt(1 + CT)          (eq. 6)
//
// the 50% propagation delay is
//
//   tpd = ( exp(-2.9 zeta^1.35) + 1.48 zeta ) / wn           (eq. 9)
//
// valid within ~5% of dynamic simulation for RT, CT in [0, 1] (the global-
// interconnect regime the paper targets), degrading gracefully outside.
//
// Limiting cases (both derived in the paper and tested here):
//   L -> 0 (zeta -> inf):  tpd -> 0.37 Rt Ct          (distributed RC)
//   R -> 0 (zeta -> 0):    tpd -> sqrt(Lt Ct)         (time of flight)
#pragma once

#include <string>

#include "tline/rlc.h"
#include "tline/transfer.h"

namespace rlcsim::core {

// Fitted constants of eq. (9). Exposed so the fitting module can re-derive
// them and benches can compare against the published values.
struct DelayFitConstants {
  double exp_scale = 2.9;
  double exp_power = 1.35;
  double linear = 1.48;
};
inline constexpr DelayFitConstants kPaperFit{2.9, 1.35, 1.48};

// Damping regime of the response, classified by zeta (the system is
// approximately second order with damping factor zeta).
enum class DampingRegime {
  kUnderdamped,       // zeta < 0.95: ringing, overshoot expected
  kCriticallyDamped,  // 0.95 <= zeta <= 1.05
  kOverdamped,        // zeta > 1.05: RC-like monotone response
};

class DelayModel {
 public:
  // Throws std::invalid_argument on invalid systems (Lt <= 0, Ct <= 0,
  // negative Rtr/CL...). RT or CT far above 1 is allowed but flagged by
  // in_fitted_range().
  explicit DelayModel(const tline::GateLineLoad& system,
                      const DelayFitConstants& fit = kPaperFit);

  // The paper's normalized variables.
  double rt() const { return rt_; }          // RT = Rtr / Rt
  double ct() const { return ct_; }          // CT = CL / Ct
  double zeta() const { return zeta_; }      // eq. (6)
  double omega_n() const { return omega_n_; }  // eq. (3), rad/s

  // Scaled (dimensionless) 50% delay t'pd = tpd * wn, eq. (9) numerator.
  double scaled_delay() const;
  // 50% propagation delay in seconds, eq. (9).
  double delay() const;

  DampingRegime regime() const;
  // True when RT and CT are both within [0, 1], where the fit was tuned and
  // the 5% accuracy claim applies.
  bool in_fitted_range() const;

  // The paper's limiting forms for this system's line (gate impedances
  // dropped): 0.37 Rt Ct and sqrt(Lt Ct).
  double rc_limit_delay() const;
  double lc_limit_delay() const;

  // Diagnostic summary for logs/examples.
  std::string describe() const;

  const tline::GateLineLoad& system() const { return system_; }

 private:
  tline::GateLineLoad system_;
  DelayFitConstants fit_;
  double rt_ = 0.0;
  double ct_ = 0.0;
  double zeta_ = 0.0;
  double omega_n_ = 0.0;
};

// Free-function forms used by the repeater layer (which evaluates the model
// on many candidate (h, k) points and does not need the class).
//
// zeta from the normalized variables and the line totals:
double zeta_of(double rt_ratio, double ct_ratio, double rt_total, double lt_total,
               double ct_total);
// Scaled delay t'pd(zeta) — eq. (9)'s numerator.
double scaled_delay_of(double zeta, const DelayFitConstants& fit = kPaperFit);
// Full delay for a gate + line + load in one call.
double rlc_delay(const tline::GateLineLoad& system,
                 const DelayFitConstants& fit = kPaperFit);

}  // namespace rlcsim::core
