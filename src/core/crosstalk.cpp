#include "core/crosstalk.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>
#include <variant>
#include <vector>

#include "core/two_pole.h"
#include "mor/response.h"

namespace rlcsim::core {
namespace {

// One driver's waveform decoded EXACTLY into a sum of linear edges, read
// from the BUILT circuit's actual source spec — the single source of truth
// shared with the transient path, so the two analyses of the identical
// circuit can never desynchronize if build_coupled_bus's drive table (or a
// drive override) changes. Every piecewise-linear finite spec kind maps
// losslessly: a step is one edge, a finite pulse is its leading edge plus
// the opposite-sign trailing edge, and an N-point PWL is one edge per
// value-changing segment. Shapes with NO finite linear-edge superposition —
// periodic pulse trains — and malformed PWL time axes throw instead of
// being silently collapsed to a single ramp (a trailing edge dropped here
// used to vanish from the reduced metrics without a trace).
struct DriveEdge {
  double delta = 0.0;  // voltage moved by this edge
  double rise = 0.0;   // linear edge duration (0 = ideal step)
  double start = 0.0;  // absolute onset time, >= 0
};
struct DriveDecode {
  double initial = 0.0;  // level just before the first edge
  std::vector<DriveEdge> edges;  // in onset order
};
DriveDecode decode_drive(const sim::SourceSpec& spec) {
  if (const auto* dc = std::get_if<sim::DcSpec>(&spec)) return {dc->value, {}};
  if (const auto* step = std::get_if<sim::StepSpec>(&spec)) {
    if (step->delay < 0.0)
      throw std::invalid_argument(
          "analyze_crosstalk_reduced: step delay must be >= 0");
    DriveDecode d{step->v0, {}};
    if (step->v1 != step->v0)
      d.edges.push_back({step->v1 - step->v0, step->rise, step->delay});
    return d;
  }
  if (const auto* pulse = std::get_if<sim::PulseSpec>(&spec)) {
    if (pulse->delay < 0.0)
      throw std::invalid_argument(
          "analyze_crosstalk_reduced: pulse delay must be >= 0");
    if (pulse->period > 0.0)
      throw std::invalid_argument(
          "analyze_crosstalk_reduced: periodic pulse trains have no finite "
          "edge superposition; use the transient path");
    DriveDecode d{pulse->v0, {}};
    const double swing = pulse->v1 - pulse->v0;
    if (swing != 0.0) {
      d.edges.push_back({swing, pulse->rise, pulse->delay});
      d.edges.push_back({-swing, pulse->fall,
                         pulse->delay + pulse->rise + pulse->width});
    }
    return d;
  }
  const auto& pwl = std::get<sim::PwlSpec>(spec);
  if (pwl.points.empty()) return {0.0, {}};
  DriveDecode d{pwl.points.front().second, {}};
  if (pwl.points.front().first < 0.0)
    throw std::invalid_argument(
        "analyze_crosstalk_reduced: PWL times must be >= 0");
  for (std::size_t i = 1; i < pwl.points.size(); ++i) {
    const auto& [t0, v0] = pwl.points[i - 1];
    const auto& [t1, v1] = pwl.points[i];
    if (!(t1 > t0))
      throw std::invalid_argument(
          "analyze_crosstalk_reduced: PWL times must be strictly increasing");
    if (v1 != v0) d.edges.push_back({v1 - v0, t1 - t0, t0});
  }
  return d;
}

// The push-out reference shared by the transient and reduced paths:
// absent ONLY in the documented degenerate-damping corner where the
// two-pole bracket does not exist in double precision (any other
// root-finder failure still propagates), so the two paths can never drift
// in what "reference unavailable" means.
std::optional<double> isolated_two_pole_delay(const tline::GateLineLoad& isolated) {
  try {
    return TwoPoleModel(isolated).threshold_delay(0.5);
  } catch (const BracketError&) {
    return std::nullopt;
  }
}

void validate_options(const tline::CoupledBus& bus,
                      const CrosstalkOptions& options, const char* context) {
  tline::validate(bus);
  if (!(options.driver_resistance > 0.0))
    throw std::invalid_argument(std::string(context) +
                                ": driver_resistance must be > 0");
  if (!(options.vdd > 0.0))
    throw std::invalid_argument(std::string(context) + ": vdd must be > 0");
  if (options.shield_every < 0)
    throw std::invalid_argument(std::string(context) +
                                ": shield_every must be >= 0");
  if (!options.drive_overrides.empty() &&
      options.drive_overrides.size() != static_cast<std::size_t>(bus.lines))
    throw std::invalid_argument(
        std::string(context) +
        ": drive_overrides must be empty or have one entry per line");
}

// The canonical pattern circuit, with any drive overrides swapped in. EVERY
// analysis path (transient, reduced, projected, basis build) goes through
// here, so an override can never reach one path and not another.
sim::Circuit build_pattern_bus(const tline::CoupledBus& bus,
                               SwitchingPattern pattern,
                               const CrosstalkOptions& options) {
  sim::Circuit circuit = sim::build_coupled_bus(
      bus,
      pattern_drives(bus.lines, bus.victim_index(), pattern,
                     options.shield_every),
      options.driver_resistance, options.load_capacitance, options.segments,
      options.vdd, options.source_rise);
  for (std::size_t i = 0; i < options.drive_overrides.size(); ++i)
    if (options.drive_overrides[i])
      circuit.set_voltage_source_spec(i, *options.drive_overrides[i]);
  return circuit;
}

}  // namespace

bool is_shield_line(int line, int victim, int shield_every) {
  if (shield_every < 1 || line == victim) return false;
  return std::abs(line - victim) % shield_every == 0;
}

std::vector<sim::BusDrive> pattern_drives(int lines, int victim,
                                          SwitchingPattern pattern,
                                          int shield_every) {
  std::vector<sim::BusDrive> drives;
  drives.reserve(static_cast<std::size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    if (is_shield_line(i, victim, shield_every)) {
      drives.push_back(sim::BusDrive::kShieldGrounded);
      continue;
    }
    switch (pattern) {
      case SwitchingPattern::kQuietVictim:
        drives.push_back(i == victim ? sim::BusDrive::kQuietLow
                                     : sim::BusDrive::kRising);
        break;
      case SwitchingPattern::kSamePhase:
        drives.push_back(sim::BusDrive::kRising);
        break;
      case SwitchingPattern::kOppositePhase:
        drives.push_back(i == victim ? sim::BusDrive::kRising
                                     : sim::BusDrive::kFalling);
        break;
    }
  }
  return drives;
}

const char* switching_pattern_name(SwitchingPattern pattern) {
  switch (pattern) {
    case SwitchingPattern::kQuietVictim: return "quiet_victim";
    case SwitchingPattern::kSamePhase: return "same_phase";
    case SwitchingPattern::kOppositePhase: return "opposite_phase";
  }
  return "unknown";
}

CrosstalkMetrics analyze_crosstalk(const tline::CoupledBus& bus,
                                   SwitchingPattern pattern,
                                   const CrosstalkOptions& options) {
  validate_options(bus, options, "analyze_crosstalk");

  const int victim_line = bus.victim_index();
  const tline::GateLineLoad isolated{options.driver_resistance,
                                     bus.line_at(victim_line),
                                     options.load_capacitance};
  const sim::Circuit circuit = build_pattern_bus(bus, pattern, options);
  const std::string victim_node =
      "line" + std::to_string(victim_line) + ".out";
  const bool victim_switches = pattern != SwitchingPattern::kQuietVictim;

  sim::TransientOptions transient;
  transient.t_stop = options.t_stop > 0.0
                         ? options.t_stop
                         : sim::default_transient_horizon(isolated);
  transient.dt = options.dt;
  transient.solver = options.solver;
  transient.reuse = options.reuse;

  CrosstalkMetrics metrics;
  sim::Trace victim;
  if (victim_switches) {
    // The push-out reference; computed only when a push-out exists, absent
    // (not fatal) in the degenerate-damping corner.
    metrics.isolated_delay_two_pole = isolated_two_pole_delay(isolated);
    // The Miller-degraded corner can be much slower than the isolated
    // estimate the horizon comes from; run_until_crossing auto-extends.
    sim::DelayRun run = sim::run_until_crossing(
        circuit, victim_node, 0.5 * options.vdd, transient, "analyze_crosstalk");
    victim = run.result.waveforms.trace(victim_node);
    metrics.victim_delay_50 = run.crossing;
    if (metrics.isolated_delay_two_pole)
      metrics.delay_pushout = run.crossing - *metrics.isolated_delay_two_pole;
  } else {
    victim = sim::run_transient(circuit, transient).waveforms.trace(victim_node);
  }

  // Noise: excursion outside the victim's drive envelope [v(0), v(inf)].
  // A quiet victim's envelope collapses to its quiescent level, so this is
  // the classic peak coupled noise; a switching victim's is over/undershoot.
  const double lo = 0.0;
  const double hi = victim_switches ? options.vdd : 0.0;
  metrics.peak_noise =
      std::max({0.0, lo - victim.min_value(), victim.max_value() - hi});
  return metrics;
}

namespace {

// Shared superposition + measurement tail of the reduced and projected
// analyses. Superposition around the t = 0- DC point: every source
// contributes its pre-switch level times its DC transfer (that sum is the
// victim's initial level), then its swing times its step/ramp response.
// build_coupled_bus adds exactly one voltage source per line, in line
// order, so input column i is line i's driver; each signal is decoded from
// that source's OWN spec, never re-derived from the drive enum.
// `transfer_of(i)` supplies the (victim, driver i) pole-residue model for
// switching drivers; `dc_of(i)` the DC transfer of quiet-but-held drivers.
CrosstalkMetrics measure_superposition(
    const sim::Circuit& circuit, const tline::CoupledBus& bus,
    SwitchingPattern pattern, const CrosstalkOptions& options,
    const std::string& victim_node,
    const std::function<mor::PoleResidueModel(int)>& transfer_of,
    const std::function<double(int)>& dc_of) {
  const int victim_line = bus.victim_index();
  const bool victim_switches = pattern != SwitchingPattern::kQuietVictim;

  double initial_dc = 0.0;
  struct Contribution {
    mor::PoleResidueModel model;
    std::vector<DriveEdge> edges;
  };
  std::vector<Contribution> contributions;
  for (int i = 0; i < bus.lines; ++i) {
    const DriveDecode signal = decode_drive(
        circuit.voltage_sources()[static_cast<std::size_t>(i)].spec);
    if (!signal.edges.empty()) {
      Contribution c{transfer_of(i), signal.edges};
      // The model's DC gain IS moment 0 (pinned exactly by both reduction
      // routes), so the pre-switch level rides the same number.
      initial_dc += signal.initial * c.model.dc_gain;
      contributions.push_back(std::move(c));
    } else if (signal.initial != 0.0) {
      // Non-switching source held at a nonzero level: only its DC transfer
      // contributes (one solve, no reduction).
      initial_dc += signal.initial * dc_of(i);
    }
  }

  CrosstalkMetrics metrics;
  mor::AnalyticResponse shifted(initial_dc);
  for (const auto& c : contributions) {
    // Exact superposition: one shifted contribution per linear edge of the
    // decoded drive (a step/ramp today, a pulse's two edges or an N-point
    // PWL's N-1 edges just as well).
    for (const DriveEdge& edge : c.edges) {
      if (edge.rise > 0.0)
        shifted.add_ramp(c.model, edge.delta, edge.rise, edge.start);
      else
        shifted.add_step(c.model, edge.delta, edge.start);
    }
  }

  // One measurement pass serves both delay and noise (rise metrics are not
  // part of CrosstalkMetrics, so their scans are skipped).
  const double hi = victim_switches ? options.vdd : 0.0;
  const mor::ResponseMetrics measured =
      shifted.measure(0.0, hi, /*want_rise=*/false);
  metrics.peak_noise = measured.peak_noise;
  if (victim_switches) {
    if (!measured.delay_50)
      throw std::runtime_error(
          "analyze_crosstalk_reduced: '" + victim_node +
          "' never crossed the threshold within the (auto-extended) window");
    metrics.victim_delay_50 = *measured.delay_50;
    metrics.isolated_delay_two_pole = isolated_two_pole_delay(
        {options.driver_resistance, bus.line_at(victim_line),
         options.load_capacitance});
    if (metrics.isolated_delay_two_pole)
      metrics.delay_pushout =
          *measured.delay_50 - *metrics.isolated_delay_two_pole;
  }
  return metrics;
}

}  // namespace

CrosstalkMetrics analyze_crosstalk_reduced(const tline::CoupledBus& bus,
                                           SwitchingPattern pattern,
                                           const CrosstalkOptions& options,
                                           int order,
                                           mor::ConductanceReuse* reuse) {
  validate_options(bus, options, "analyze_crosstalk_reduced");
  if (order < 1)
    throw std::invalid_argument("analyze_crosstalk_reduced: order must be >= 1");

  const int victim_line = bus.victim_index();
  const sim::Circuit circuit = build_pattern_bus(bus, pattern, options);
  const std::string victim_node =
      "line" + std::to_string(victim_line) + ".out";

  const sim::MnaAssembler mna(circuit);
  const mor::LinearSystem linear = mor::make_linear_system(mna, {victim_node});
  const mor::MomentGenerator generator(linear, reuse);

  // Transport-delay candidate bound for every transfer: the victim line's
  // own time of flight (the selection in reduce_transfer adapts downward).
  const double max_delay = bus.line_at(victim_line).time_of_flight();

  const auto transfer_of = [&](int i) {
    // A driver at distance d from the victim couples through d
    // nearest-neighbor hops, so its transfer rises like s^d (its first d
    // moments are exactly zero — G alone does not couple the lines) and
    // no rational with fewer than d+1 poles can represent it. Those far
    // transfers are also the smallest contributions, so raising their
    // order to the representability floor keeps "q-th order" honest where
    // it matters (the victim's own transfer and its neighbors').
    const int distance = std::abs(i - victim_line);
    const int transfer_order = std::max(order, distance + 1);
    const std::vector<double> moments = generator.transfer_moments(
        linear.outputs[0], linear.inputs[static_cast<std::size_t>(i)],
        2 * transfer_order);
    return mor::reduce_transfer(moments, transfer_order, max_delay);
  };
  const auto dc_of = [&](int i) {
    const std::vector<double> m0 =
        generator.solve(linear.inputs[static_cast<std::size_t>(i)]);
    double dc = 0.0;
    for (std::size_t n = 0; n < m0.size(); ++n)
      dc += linear.outputs[0][n] * m0[n];
    return dc;
  };
  return measure_superposition(circuit, bus, pattern, options, victim_node,
                               transfer_of, dc_of);
}

mor::ArnoldiBasis crosstalk_projection_basis(const tline::CoupledBus& bus,
                                             SwitchingPattern pattern,
                                             const CrosstalkOptions& options,
                                             int order,
                                             mor::ConductanceReuse* reuse) {
  validate_options(bus, options, "crosstalk_projection_basis");
  if (order < 1)
    throw std::invalid_argument(
        "crosstalk_projection_basis: order must be >= 1");

  const int victim_line = bus.victim_index();
  const sim::Circuit circuit = build_pattern_bus(bus, pattern, options);
  const std::string victim_node =
      "line" + std::to_string(victim_line) + ".out";
  const sim::MnaAssembler mna(circuit);
  const mor::LinearSystem linear = mor::make_linear_system(mna, {victim_node});

  // Clamp up to the input count so the first Krylov block is never
  // truncated: every driver keeps (at least) its DC match.
  const int basis_order = std::max(order, bus.lines);
  mor::ArnoldiBasis basis;
  mor::arnoldi_reduce(linear, basis_order, reuse, &basis);
  return basis;
}

CrosstalkMetrics analyze_crosstalk_projected(const tline::CoupledBus& bus,
                                             SwitchingPattern pattern,
                                             const CrosstalkOptions& options,
                                             const mor::ArnoldiBasis& basis) {
  validate_options(bus, options, "analyze_crosstalk_projected");
  if (basis.order() == 0)
    throw std::invalid_argument("analyze_crosstalk_projected: empty basis");

  const int victim_line = bus.victim_index();
  const sim::Circuit circuit = build_pattern_bus(bus, pattern, options);
  const std::string victim_node =
      "line" + std::to_string(victim_line) + ".out";
  const sim::MnaAssembler mna(circuit);
  const mor::LinearSystem linear = mor::make_linear_system(mna, {victim_node});

  // A structurally different circuit (different bus width, shield layout, or
  // segmentation) cannot ride this basis: fall back to a fresh per-point
  // reduction at the basis order so mixed-topology grids stay correct.
  if (basis.dimension() != linear.unknowns())
    return analyze_crosstalk_reduced(bus, pattern, options,
                                     static_cast<int>(basis.order()));

  const mor::ReducedModel reduced = mor::project_onto(linear, basis);
  const auto transfer_of = [&](int i) {
    return mor::pole_residue(reduced, 0, i);
  };
  const auto dc_of = [&](int i) {
    // DC transfer through the reduced pencil: l^T Ghat^{-1} b — dense q x q.
    const std::size_t q = static_cast<std::size_t>(reduced.order());
    numeric::RealMatrix ghat = reduced.G;
    std::vector<double> b(q);
    for (std::size_t r = 0; r < q; ++r)
      b[r] = reduced.B(r, static_cast<std::size_t>(i));
    const std::vector<double> x = numeric::solve(std::move(ghat), b);
    double dc = 0.0;
    for (std::size_t r = 0; r < q; ++r) dc += reduced.L(r, 0) * x[r];
    return dc;
  };
  return measure_superposition(circuit, bus, pattern, options, victim_node,
                               transfer_of, dc_of);
}

}  // namespace rlcsim::core
