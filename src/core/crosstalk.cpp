#include "core/crosstalk.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/two_pole.h"
#include "sim/builders.h"

namespace rlcsim::core {
namespace {

std::vector<sim::BusDrive> drives_for(const tline::CoupledBus& bus,
                                      SwitchingPattern pattern) {
  std::vector<sim::BusDrive> drives;
  drives.reserve(static_cast<std::size_t>(bus.lines));
  const int victim = bus.victim_index();
  for (int i = 0; i < bus.lines; ++i) {
    switch (pattern) {
      case SwitchingPattern::kQuietVictim:
        drives.push_back(i == victim ? sim::BusDrive::kQuietLow
                                     : sim::BusDrive::kRising);
        break;
      case SwitchingPattern::kSamePhase:
        drives.push_back(sim::BusDrive::kRising);
        break;
      case SwitchingPattern::kOppositePhase:
        drives.push_back(i == victim ? sim::BusDrive::kRising
                                     : sim::BusDrive::kFalling);
        break;
    }
  }
  return drives;
}

}  // namespace

const char* switching_pattern_name(SwitchingPattern pattern) {
  switch (pattern) {
    case SwitchingPattern::kQuietVictim: return "quiet_victim";
    case SwitchingPattern::kSamePhase: return "same_phase";
    case SwitchingPattern::kOppositePhase: return "opposite_phase";
  }
  return "unknown";
}

CrosstalkMetrics analyze_crosstalk(const tline::CoupledBus& bus,
                                   SwitchingPattern pattern,
                                   const CrosstalkOptions& options) {
  tline::validate(bus);
  if (!(options.driver_resistance > 0.0))
    throw std::invalid_argument("analyze_crosstalk: driver_resistance must be > 0");
  if (!(options.vdd > 0.0))
    throw std::invalid_argument("analyze_crosstalk: vdd must be > 0");

  const tline::GateLineLoad isolated{options.driver_resistance, bus.line,
                                     options.load_capacitance};
  const sim::Circuit circuit =
      sim::build_coupled_bus(bus, drives_for(bus, pattern),
                             options.driver_resistance, options.load_capacitance,
                             options.segments, options.vdd);
  const std::string victim_node =
      "line" + std::to_string(bus.victim_index()) + ".out";
  const bool victim_switches = pattern != SwitchingPattern::kQuietVictim;

  sim::TransientOptions transient;
  transient.t_stop = options.t_stop > 0.0
                         ? options.t_stop
                         : sim::default_transient_horizon(isolated);
  transient.dt = options.dt;
  transient.solver = options.solver;
  transient.reuse = options.reuse;

  CrosstalkMetrics metrics;
  sim::Trace victim;
  if (victim_switches) {
    // The push-out reference. Computed only when a push-out exists, and a
    // degenerate two-pole bracket (pathologically extreme damping) leaves
    // the reference absent rather than aborting a perfectly measurable
    // victim delay.
    try {
      metrics.isolated_delay_two_pole =
          TwoPoleModel(isolated).threshold_delay(0.5);
    } catch (const BracketError&) {
      // Only the documented degenerate-damping corner; any other root-finder
      // failure still propagates.
    }
    // The Miller-degraded corner can be much slower than the isolated
    // estimate the horizon comes from; run_until_crossing auto-extends.
    sim::DelayRun run = sim::run_until_crossing(
        circuit, victim_node, 0.5 * options.vdd, transient, "analyze_crosstalk");
    victim = run.result.waveforms.trace(victim_node);
    metrics.victim_delay_50 = run.crossing;
    if (metrics.isolated_delay_two_pole)
      metrics.delay_pushout = run.crossing - *metrics.isolated_delay_two_pole;
  } else {
    victim = sim::run_transient(circuit, transient).waveforms.trace(victim_node);
  }

  // Noise: excursion outside the victim's drive envelope [v(0), v(inf)].
  // A quiet victim's envelope collapses to its quiescent level, so this is
  // the classic peak coupled noise; a switching victim's is over/undershoot.
  const double lo = 0.0;
  const double hi = victim_switches ? options.vdd : 0.0;
  metrics.peak_noise =
      std::max({0.0, lo - victim.min_value(), victim.max_value() - hi});
  return metrics;
}

}  // namespace rlcsim::core
