// Crosstalk-aware repeater optimization on a coupled bus.
//
// The paper's eq. 14/15 optimum sizes (h, k) for the ISOLATED line; on a bus
// the objective that matters is the WORST-CASE delay over switching patterns
// (opposite-phase Miller coupling), subject to a peak-noise cap on a quiet
// victim — and placement (uniform / staggered / interleaved, shield
// insertion) is a design axis alongside sizing. optimize_bus_repeaters()
// scans that grid with the stage-composed reduced model (stage_compose.h) as
// the inner loop: each candidate costs one reduced stage-model build plus
// three closed-form composition walks, so the whole frontier evaluates in
// the time a handful of cascaded transients would take.
//
// Parallelism rides the sweep engine's pool with the same determinism
// contract as every sweep: one reference candidate per distinct stage
// TOPOLOGY (sections, shield layout) is evaluated serially to record its
// symbolic G factorization (mor::ConductanceReuse), every remaining
// candidate copies its group's record — results are bit-identical at any
// thread count.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "core/repeater.h"
#include "repbus/stage_compose.h"
#include "sweep/sweep.h"
#include "tline/coupled_bus.h"

namespace rlcsim::repbus {

struct OptimizerOptions {
  // Candidate grids; empty picks defaults bracketing the paper's isolated
  // eq. 14/15 optimum ({0.7, 0.85, 1, 1.15, 1.3} x h_opt; k_opt - 1 .. + 1).
  std::vector<double> sizes;
  std::vector<int> sections;
  std::vector<Placement> placements = {Placement::kUniform, Placement::kStaggered,
                                       Placement::kInterleaved};
  std::vector<int> shield_options = {0};  // shield_every candidates
  // Peak quiet-victim noise cap, volts (infinity = unconstrained).
  double noise_cap = std::numeric_limits<double>::infinity();
  int order = 4;  // reduction order of the stage models
  int segments_per_section = 12;
  double vdd = 1.0;
  double source_rise = 0.0;
  double buffer_rise = -1.0;  // < 0 = auto (see RepeaterBusSpec)
};

// One evaluated candidate.
struct BusDesignEval {
  double size = 0.0;  // h
  int sections = 0;   // k
  Placement placement = Placement::kUniform;
  int shield_every = 0;
  double same_phase_delay = 0.0;      // composed victim delay, fast corner
  double opposite_phase_delay = 0.0;  // ... slow corner
  double worst_delay = 0.0;           // max over the two switching corners
  double noise = 0.0;                 // composed quiet-victim peak noise
  double area = 0.0;                  // total repeater area (h * A_min * count)
  bool feasible = false;              // noise <= noise_cap
};

struct BusOptimizationResult {
  std::vector<BusDesignEval> evaluations;  // every candidate, grid order
  // Feasible candidate with the smallest worst-case delay (ties: smaller
  // area); absent when no candidate meets the noise cap.
  std::optional<BusDesignEval> best;
  // The (worst_delay, area, noise) Pareto frontier over all candidates —
  // reported against the isolated-line reference below, so the cost of
  // crosstalk-awareness is explicit.
  std::vector<BusDesignEval> frontier;
  core::RepeaterDesign isolated_design;  // paper eqs. 14/15 on the victim line
  double isolated_delay = 0.0;           // eq. 19 total delay at that design
  std::size_t threads_used = 0;
};

// Evaluates the candidate grid and returns the frontier. Throws
// std::invalid_argument for empty/invalid grids (a staggered candidate with
// sections < 2 is silently skipped — it has no boundary to offset).
BusOptimizationResult optimize_bus_repeaters(const tline::CoupledBus& bus,
                                             const core::MinBuffer& buffer,
                                             const OptimizerOptions& options,
                                             const sweep::SweepEngine& engine);

}  // namespace rlcsim::repbus
