#include "repbus/optimize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

namespace rlcsim::repbus {
namespace {

struct Candidate {
  double size = 0.0;
  int sections = 0;
  Placement placement = Placement::kUniform;
  int shield_every = 0;
};

RepeaterBusSpec spec_of(const tline::CoupledBus& bus,
                        const core::MinBuffer& buffer,
                        const OptimizerOptions& options, const Candidate& c) {
  RepeaterBusSpec spec;
  spec.bus = bus;
  spec.sections = c.sections;
  spec.size = c.size;
  spec.buffer = buffer;
  spec.placement = c.placement;
  spec.segments_per_section = options.segments_per_section;
  spec.vdd = options.vdd;
  spec.source_rise = options.source_rise;
  spec.buffer_rise = options.buffer_rise;
  spec.shield_every = c.shield_every;
  return spec;
}

BusDesignEval evaluate(const tline::CoupledBus& bus,
                       const core::MinBuffer& buffer,
                       const OptimizerOptions& options, const Candidate& c,
                       mor::ConductanceReuse* reuse) {
  const RepeaterBusSpec spec = spec_of(bus, buffer, options, c);
  // One model build serves all three pattern walks (the models depend on
  // the topology and values, never on the drive pattern).
  const StageModels models = build_stage_models(spec, options.order, reuse);
  const ComposedChainMetrics same =
      compose_bus_chain(spec, core::SwitchingPattern::kSamePhase, models);
  const ComposedChainMetrics opposite =
      compose_bus_chain(spec, core::SwitchingPattern::kOppositePhase, models);
  const ComposedChainMetrics quiet =
      compose_bus_chain(spec, core::SwitchingPattern::kQuietVictim, models);

  BusDesignEval eval;
  eval.size = c.size;
  eval.sections = c.sections;
  eval.placement = c.placement;
  eval.shield_every = c.shield_every;
  eval.same_phase_delay = same.victim_delay_50.value();
  eval.opposite_phase_delay = opposite.victim_delay_50.value();
  eval.worst_delay = std::max(eval.same_phase_delay, eval.opposite_phase_delay);
  eval.noise = quiet.peak_noise;
  eval.area = repeater_area(spec);
  eval.feasible = eval.noise <= options.noise_cap;
  return eval;
}

// a dominates b: no worse on every frontier axis, strictly better on one.
bool dominates(const BusDesignEval& a, const BusDesignEval& b) {
  const bool no_worse = a.worst_delay <= b.worst_delay && a.area <= b.area &&
                        a.noise <= b.noise;
  const bool better = a.worst_delay < b.worst_delay || a.area < b.area ||
                      a.noise < b.noise;
  return no_worse && better;
}

}  // namespace

BusOptimizationResult optimize_bus_repeaters(const tline::CoupledBus& bus,
                                             const core::MinBuffer& buffer,
                                             const OptimizerOptions& options,
                                             const sweep::SweepEngine& engine) {
  tline::validate(bus);
  core::validate(buffer);
  if (options.order < 1)
    throw std::invalid_argument("optimize_bus_repeaters: order must be >= 1");
  if (options.placements.empty())
    throw std::invalid_argument("optimize_bus_repeaters: no placements");
  if (options.shield_options.empty())
    throw std::invalid_argument("optimize_bus_repeaters: no shield options");

  BusOptimizationResult result;
  const tline::LineParams& victim_line = bus.line_at(bus.victim_index());
  result.isolated_design = core::ismail_friedman_rlc(victim_line, buffer);
  result.isolated_delay =
      core::total_delay(victim_line, buffer, result.isolated_design);
  result.threads_used = engine.threads();

  // Default grids bracket the paper's isolated optimum.
  std::vector<double> sizes = options.sizes;
  if (sizes.empty())
    for (double factor : {0.7, 0.85, 1.0, 1.15, 1.3})
      sizes.push_back(std::max(1.0, factor * result.isolated_design.size));
  std::vector<int> sections = options.sections;
  if (sections.empty()) {
    const int k_opt = std::max(
        2, static_cast<int>(std::llround(result.isolated_design.sections)));
    for (int k : {k_opt - 1, k_opt, k_opt + 1})
      if (k >= 1) sections.push_back(k);
  }
  for (double h : sizes)
    if (!(h > 0.0) || !std::isfinite(h))
      throw std::invalid_argument("optimize_bus_repeaters: sizes must be > 0");
  for (int k : sections)
    if (k < 1)
      throw std::invalid_argument(
          "optimize_bus_repeaters: sections must be >= 1");

  std::vector<Candidate> candidates;
  for (int k : sections)
    for (Placement placement : options.placements) {
      if (placement == Placement::kStaggered && k < 2) continue;
      for (int shield : options.shield_options)
        for (double h : sizes) candidates.push_back({h, k, placement, shield});
    }
  if (candidates.empty())
    throw std::invalid_argument("optimize_bus_repeaters: empty candidate grid");

  // Determinism scheme (the sweep engine's, per topology group): candidates
  // sharing a stage topology — same (sections, shield layout); h and
  // placement only change values — share one symbolic G factorization. The
  // first candidate of each group runs serially on the calling thread and
  // records it; every other candidate copies the record, so pivot orders
  // (and results) never depend on the schedule.
  result.evaluations.assign(candidates.size(), BusDesignEval{});
  std::map<std::pair<int, int>, mor::ConductanceReuse> donors;
  std::vector<std::size_t> remaining;
  for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
    const Candidate& c = candidates[idx];
    const std::pair<int, int> key{c.sections, c.shield_every};
    auto [it, inserted] = donors.try_emplace(key);
    if (inserted)
      result.evaluations[idx] = evaluate(bus, buffer, options, c, &it->second);
    else
      remaining.push_back(idx);
  }
  engine.run_custom(remaining.size(), [&](std::size_t r,
                                          sweep::SweepEngine::PointContext&) {
    const std::size_t idx = remaining[r];
    const Candidate& c = candidates[idx];
    mor::ConductanceReuse local =
        donors.at({c.sections, c.shield_every});  // read-only copy per point
    result.evaluations[idx] = evaluate(bus, buffer, options, c, &local);
    return result.evaluations[idx].worst_delay;
  });

  // Best feasible (ties broken toward smaller area, then grid order).
  for (const BusDesignEval& eval : result.evaluations) {
    if (!eval.feasible) continue;
    if (!result.best || eval.worst_delay < result.best->worst_delay ||
        (eval.worst_delay == result.best->worst_delay &&
         eval.area < result.best->area))
      result.best = eval;
  }

  // Pareto frontier over (worst_delay, area, noise).
  for (const BusDesignEval& eval : result.evaluations) {
    bool dominated = false;
    for (const BusDesignEval& other : result.evaluations)
      if (dominates(other, eval)) {
        dominated = true;
        break;
      }
    if (!dominated) result.frontier.push_back(eval);
  }
  return result;
}

}  // namespace rlcsim::repbus
