// Reduced-order stage composition of a repeatered coupled bus.
//
// The cascaded chain (bus_chain.h) is piecewise linear between buffer
// firings, and the buffers cut it into k independent N-line coupled
// sections: stage s's waveforms are fully determined by WHEN its drivers
// switch and with what edge. That makes the whole chain composable from ONE
// reduced model of the section topology (mor/):
//
//   1. build_stage_models — AWE-reduce every (line output, line driver)
//      transfer of the aligned N-line section ONCE (a single sparse G
//      factorization via mor::ConductanceReuse; all stages share the
//      topology, so all stages share the models);
//   2. compose_bus_chain — walk the stages: each line's output waveform is
//      the closed-form superposition (mor::AnalyticResponse) of every
//      driver's ramp contribution, started at that driver's ABSOLUTE fire
//      time (the previous stage's measured 50% crossing) with the buffer's
//      output edge as the ramp — the exact semantics of the MNA buffers.
//      The measured crossings become the next stage's fire times; the
//      victim's last-stage crossing is the chain delay, and the worst
//      per-stage excursion is the chain noise. Zero time stepping.
//
// Placement handling mirrors the physical mechanisms:
//   * kInterleaved — drive polarities flip per stage on alternate lines
//     (the models are polarity-independent);
//   * kStaggered — alternate-line repeaters sit half a stage away from the
//     victim's, so the aggressor span adjacent to a victim stage straddles
//     two aggressor stages: its contribution is split into two half-weight
//     drives at t_j -/+ pitch/2 (pitch = the aggressor's measured per-stage
//     delay), reproducing the temporal smearing that defeats the
//     simultaneous Miller peak. This is the one approximation beyond
//     reduction order — the cross-validation tests pin its error against
//     the true shifted-geometry MNA chain.
//
// The composed path is the optimizer's inner loop: one model build plus a
// few closed-form walks per (h, k, placement) candidate, ~10-100x faster
// than one cascaded transient (bench/repbus_frontier measures it).
#pragma once

#include <optional>
#include <vector>

#include "mor/moments.h"
#include "mor/reduce.h"
#include "repbus/bus_chain.h"

namespace rlcsim::repbus {

// Reduced models of ONE aligned N-line coupled section: transfer[i][j] maps
// driver j's source to line i's stage output (shield lines carry zero
// models — their drivers never move), dc[i][j] the matching DC gains
// (moment 0, pinned exactly).
struct StageModels {
  std::vector<std::vector<mor::PoleResidueModel>> transfer;
  std::vector<std::vector<double>> dc;
  int lines = 0;
  int order = 0;  // requested reduction order q
  // Chain geometry the models were built for: the section parasitics scale
  // with 1/sections and shields zero out rows, so compose_bus_chain rejects
  // a spec whose geometry differs (models from another (k, shield) layout
  // would silently mis-compose).
  int sections = 0;
  int shield_every = 0;
};

// Builds the section circuit (whole-bus totals scaled by 1/k, the same
// r0/h drivers and h*c0 loads the chain's buffers present) and reduces
// every signal-line pair over one G factorization. `reuse` shares the
// symbolic factorization across calls with an identical section topology
// (the optimizer's h-axis, for instance, only changes values).
StageModels build_stage_models(const RepeaterBusSpec& spec, int order,
                               mor::ConductanceReuse* reuse = nullptr);

struct ComposedChainMetrics {
  // Victim 50% crossing at the final receiver; absent for kQuietVictim.
  std::optional<double> victim_delay_50;
  // Worst victim excursion outside its drive envelope across ALL stages —
  // deliberately stricter than the chain transient's receiver-only metric
  // for a switching victim (an interior glitch can fire a repeater; the
  // optimizer's noise cap must see it). For a QUIET victim the per-stage
  // and receiver views agree closely and cross-validate against
  // simulate_bus_chain.
  double peak_noise = 0.0;
  // The victim's driver fire times per stage (diagnostics; fire_times[0] is
  // always 0, the external transition).
  std::vector<double> victim_fire_times;
  // Glitch propagation, mirroring ChainMetrics: the quiet victim's stage
  // noise crossed the downstream quiet-armed repeater's threshold, so that
  // buffer fired a full swing toward the opposite rail and every boundary
  // after it followed. `glitch_boundaries` lists the fired boundaries
  // (1-based stage indices, ascending); `glitch_depth` is their count.
  // Once fired, peak_noise and the walk report the GLITCHED net honestly
  // (excursions against the original quiet level) instead of pretending the
  // victim stayed quiet.
  bool glitch_fired = false;
  int glitch_depth = 0;
  std::vector<int> glitch_boundaries;
};

// ---------------- chain-walk building blocks (shared with src/graph/) ----
//
// compose_bus_chain is a sequential walk of per-stage closed-form
// evaluations; the timing-graph engine runs the SAME walk as a path of DAG
// nodes. Both call these helpers, which perform identical floating-point
// operations in identical order — that is what makes a linear-chain graph
// reproduce compose_bus_chain bit-for-bit.

// Per-line drive state entering a stage.
struct StageLineState {
  double pre = 0.0;    // wire level before the transition
  double post = 0.0;   // ... after it (pre == post: quiet)
  double t = 0.0;      // absolute fire time of this stage's driver
  double ramp = 0.0;   // driver edge duration
  double pitch = 0.0;  // last measured per-stage delay (stagger smearing)
  bool glitched = false;  // a quiet-armed boundary fired: full swing follows
};

// Immutable per-walk context: everything a stage evaluation needs that does
// not change from stage to stage. Holds POINTERS to the spec and models —
// the caller keeps both alive for the walk's lifetime.
struct ChainWalk {
  const RepeaterBusSpec* spec = nullptr;
  const StageModels* models = nullptr;
  std::vector<sim::BusDrive> drives;
  int victim = 0;
  double vdd = 1.0;
  double buffer_edge = 0.0;
  double pitch_estimate = 0.0;
  double victim_quiet_level = 0.0;  // glitch reference level
  bool staggered = false;
  bool interleaved = false;
  bool victim_switches = false;
};

// Validates the spec and the models' chain geometry and captures the walk
// context (drive table, resolved buffer edge, initial pitch estimate).
ChainWalk make_chain_walk(const RepeaterBusSpec& spec,
                          core::SwitchingPattern pattern,
                          const StageModels& models);

// The per-line state entering stage 1 (levels from the drive table, stagger
// pitch seeded from the victim's own unit-step section delay).
std::vector<StageLineState> initial_chain_state(const ChainWalk& walk);

// One stage's closed-form evaluation: the measured 50% crossings per line
// (the next stage's fire times), the victim's stage noise, and — for a
// still-quiet victim at an interior boundary — whether the stage output
// crossed the downstream quiet-armed repeater's threshold (glitch firing).
struct ChainStageResult {
  std::vector<double> next_t;
  double victim_noise = 0.0;
  bool glitch_fired = false;
  double glitch_time = 0.0;  // absolute fire time of the glitched buffer
};
ChainStageResult evaluate_chain_stage(const ChainWalk& walk,
                                      const std::vector<StageLineState>& state,
                                      int stage);

// Applies one stage's crossings to the state: fire times advance, the
// buffer edge becomes the drive ramp, interleaved alternate lines invert,
// and a fired quiet-armed boundary turns the victim into a full-swing
// transition toward the opposite rail (exactly what the MNA chain's
// quiet-armed buffer drives).
void advance_chain_state(const ChainWalk& walk, const ChainStageResult& result,
                         std::vector<StageLineState>& state);

// Folds one evaluated stage into the running metrics, then either advances
// the state and records the victim fire time (interior stages, returns
// true) or closes out the chain delay (final stage, returns false).
// compose_bus_chain's loop body and a graph chain node are both exactly one
// evaluate_chain_stage + one accumulate_chain_stage.
bool accumulate_chain_stage(const ChainWalk& walk,
                            const ChainStageResult& result, int stage,
                            std::vector<StageLineState>& state,
                            ComposedChainMetrics& metrics);

// Composes the chain from prebuilt models (the hot path: the optimizer
// reuses one StageModels across the same-/opposite-/quiet-pattern walks).
ComposedChainMetrics compose_bus_chain(const RepeaterBusSpec& spec,
                                       core::SwitchingPattern pattern,
                                       const StageModels& models);

// Convenience: build + compose in one call.
ComposedChainMetrics compose_bus_chain(const RepeaterBusSpec& spec,
                                       core::SwitchingPattern pattern,
                                       int order,
                                       mor::ConductanceReuse* reuse = nullptr);

}  // namespace rlcsim::repbus
