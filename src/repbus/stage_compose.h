// Reduced-order stage composition of a repeatered coupled bus.
//
// The cascaded chain (bus_chain.h) is piecewise linear between buffer
// firings, and the buffers cut it into k independent N-line coupled
// sections: stage s's waveforms are fully determined by WHEN its drivers
// switch and with what edge. That makes the whole chain composable from ONE
// reduced model of the section topology (mor/):
//
//   1. build_stage_models — AWE-reduce every (line output, line driver)
//      transfer of the aligned N-line section ONCE (a single sparse G
//      factorization via mor::ConductanceReuse; all stages share the
//      topology, so all stages share the models);
//   2. compose_bus_chain — walk the stages: each line's output waveform is
//      the closed-form superposition (mor::AnalyticResponse) of every
//      driver's ramp contribution, started at that driver's ABSOLUTE fire
//      time (the previous stage's measured 50% crossing) with the buffer's
//      output edge as the ramp — the exact semantics of the MNA buffers.
//      The measured crossings become the next stage's fire times; the
//      victim's last-stage crossing is the chain delay, and the worst
//      per-stage excursion is the chain noise. Zero time stepping.
//
// Placement handling mirrors the physical mechanisms:
//   * kInterleaved — drive polarities flip per stage on alternate lines
//     (the models are polarity-independent);
//   * kStaggered — alternate-line repeaters sit half a stage away from the
//     victim's, so the aggressor span adjacent to a victim stage straddles
//     two aggressor stages: its contribution is split into two half-weight
//     drives at t_j -/+ pitch/2 (pitch = the aggressor's measured per-stage
//     delay), reproducing the temporal smearing that defeats the
//     simultaneous Miller peak. This is the one approximation beyond
//     reduction order — the cross-validation tests pin its error against
//     the true shifted-geometry MNA chain.
//
// The composed path is the optimizer's inner loop: one model build plus a
// few closed-form walks per (h, k, placement) candidate, ~10-100x faster
// than one cascaded transient (bench/repbus_frontier measures it).
#pragma once

#include <optional>
#include <vector>

#include "mor/moments.h"
#include "mor/reduce.h"
#include "repbus/bus_chain.h"

namespace rlcsim::repbus {

// Reduced models of ONE aligned N-line coupled section: transfer[i][j] maps
// driver j's source to line i's stage output (shield lines carry zero
// models — their drivers never move), dc[i][j] the matching DC gains
// (moment 0, pinned exactly).
struct StageModels {
  std::vector<std::vector<mor::PoleResidueModel>> transfer;
  std::vector<std::vector<double>> dc;
  int lines = 0;
  int order = 0;  // requested reduction order q
  // Chain geometry the models were built for: the section parasitics scale
  // with 1/sections and shields zero out rows, so compose_bus_chain rejects
  // a spec whose geometry differs (models from another (k, shield) layout
  // would silently mis-compose).
  int sections = 0;
  int shield_every = 0;
};

// Builds the section circuit (whole-bus totals scaled by 1/k, the same
// r0/h drivers and h*c0 loads the chain's buffers present) and reduces
// every signal-line pair over one G factorization. `reuse` shares the
// symbolic factorization across calls with an identical section topology
// (the optimizer's h-axis, for instance, only changes values).
StageModels build_stage_models(const RepeaterBusSpec& spec, int order,
                               mor::ConductanceReuse* reuse = nullptr);

struct ComposedChainMetrics {
  // Victim 50% crossing at the final receiver; absent for kQuietVictim.
  std::optional<double> victim_delay_50;
  // Worst victim excursion outside its drive envelope across ALL stages —
  // deliberately stricter than the chain transient's receiver-only metric
  // for a switching victim (an interior glitch can fire a repeater; the
  // optimizer's noise cap must see it). For a QUIET victim the per-stage
  // and receiver views agree closely and cross-validate against
  // simulate_bus_chain.
  double peak_noise = 0.0;
  // The victim's driver fire times per stage (diagnostics; fire_times[0] is
  // always 0, the external transition).
  std::vector<double> victim_fire_times;
};

// Composes the chain from prebuilt models (the hot path: the optimizer
// reuses one StageModels across the same-/opposite-/quiet-pattern walks).
ComposedChainMetrics compose_bus_chain(const RepeaterBusSpec& spec,
                                       core::SwitchingPattern pattern,
                                       const StageModels& models);

// Convenience: build + compose in one call.
ComposedChainMetrics compose_bus_chain(const RepeaterBusSpec& spec,
                                       core::SwitchingPattern pattern,
                                       int order,
                                       mor::ConductanceReuse* reuse = nullptr);

}  // namespace rlcsim::repbus
