#include "repbus/stage_compose.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "mor/response.h"
#include "sim/builders.h"
#include "sim/mna.h"

namespace rlcsim::repbus {
namespace {

// One stage's parasitics: the whole bus scaled by 1/k (every total, every
// coupling, every flavor — ratios and positive definiteness are preserved).
tline::CoupledBus section_bus(const tline::CoupledBus& bus, int sections) {
  const double inv = 1.0 / static_cast<double>(sections);
  tline::CoupledBus s = bus;
  const auto scale_line = [&](tline::LineParams& line) {
    line.total_resistance *= inv;
    line.total_inductance *= inv;
    line.total_capacitance *= inv;
  };
  scale_line(s.line);
  for (auto& line : s.line_params) scale_line(line);
  s.coupling_capacitance *= inv;
  s.mutual_inductance *= inv;
  for (double& cc : s.pair_capacitance) cc *= inv;
  for (double& lm : s.pair_inductance) lm *= inv;
  const auto scale_matrix = [&](numeric::RealMatrix& m) {
    for (std::size_t i = 0; i < m.rows(); ++i)
      for (std::size_t j = 0; j < m.cols(); ++j) m(i, j) *= inv;
  };
  scale_matrix(s.full_cc);
  scale_matrix(s.full_lm);
  return s;
}

}  // namespace

StageModels build_stage_models(const RepeaterBusSpec& spec, int order,
                               mor::ConductanceReuse* reuse) {
  validate(spec);
  if (order < 1)
    throw std::invalid_argument("build_stage_models: order must be >= 1");

  const tline::CoupledBus section = section_bus(spec.bus, spec.sections);
  const int lines = section.lines;
  const int victim = section.victim_index();
  // The drive table only decides which lines are shields here (source specs
  // never enter the reduced transfers — inputs are unit incidence columns).
  const std::vector<sim::BusDrive> drives = core::pattern_drives(
      lines, victim, core::SwitchingPattern::kSamePhase, spec.shield_every);
  const sim::Circuit circuit = sim::build_coupled_bus(
      section, drives, spec.buffer.r0 / spec.size, spec.buffer.c0 * spec.size,
      spec.segments_per_section, spec.vdd);

  std::vector<std::string> outputs;
  outputs.reserve(static_cast<std::size_t>(lines));
  for (int i = 0; i < lines; ++i)
    outputs.push_back("line" + std::to_string(i) + ".out");
  const sim::MnaAssembler mna(circuit);
  const mor::LinearSystem linear = mor::make_linear_system(mna, outputs);
  const mor::MomentGenerator generator(linear, reuse);

  StageModels models;
  models.lines = lines;
  models.order = order;
  models.sections = spec.sections;
  models.shield_every = spec.shield_every;
  models.transfer.assign(static_cast<std::size_t>(lines),
                         std::vector<mor::PoleResidueModel>(
                             static_cast<std::size_t>(lines)));
  models.dc.assign(static_cast<std::size_t>(lines),
                   std::vector<double>(static_cast<std::size_t>(lines), 0.0));
  for (int i = 0; i < lines; ++i) {
    if (drives[static_cast<std::size_t>(i)] == sim::BusDrive::kShieldGrounded)
      continue;  // shield outputs are never measured
    const double max_delay = section.line_at(i).time_of_flight();
    for (int j = 0; j < lines; ++j) {
      if (drives[static_cast<std::size_t>(j)] == sim::BusDrive::kShieldGrounded)
        continue;  // shield drivers never move: zero model
      // The distance floor of analyze_crosstalk_reduced: a driver d
      // nearest-neighbor hops away needs at least d+1 poles.
      const int distance = std::abs(i - j);
      const int transfer_order = std::max(order, distance + 1);
      const std::vector<double> moments = generator.transfer_moments(
          linear.outputs[static_cast<std::size_t>(i)],
          linear.inputs[static_cast<std::size_t>(j)], 2 * transfer_order);
      models.dc[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          moments[0];
      models.transfer[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          mor::reduce_transfer(moments, transfer_order, max_delay);
    }
  }
  return models;
}

namespace {

bool walk_is_signal(const ChainWalk& walk, int i) {
  return walk.drives[static_cast<std::size_t>(i)] !=
         sim::BusDrive::kShieldGrounded;
}

const mor::PoleResidueModel& walk_model_at(const ChainWalk& walk, int i, int j) {
  return walk.models
      ->transfer[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
}

double walk_dc_at(const ChainWalk& walk, int i, int j) {
  return walk.models->dc[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
}

}  // namespace

ChainWalk make_chain_walk(const RepeaterBusSpec& spec,
                          core::SwitchingPattern pattern,
                          const StageModels& models) {
  validate(spec);
  const int lines = spec.bus.lines;
  if (models.lines != lines || models.sections != spec.sections ||
      models.shield_every != spec.shield_every)
    throw std::invalid_argument(
        "compose_bus_chain: stage models built for a different chain "
        "geometry (bus width, sections, or shield layout)");
  ChainWalk walk;
  walk.spec = &spec;
  walk.models = &models;
  walk.victim = spec.bus.victim_index();
  walk.vdd = spec.vdd;
  walk.buffer_edge = resolved_buffer_rise(spec);
  walk.staggered = spec.placement == Placement::kStaggered;
  walk.interleaved = spec.placement == Placement::kInterleaved;
  walk.drives =
      core::pattern_drives(lines, walk.victim, pattern, spec.shield_every);
  walk.victim_switches = pattern != core::SwitchingPattern::kQuietVictim;
  walk.victim_quiet_level =
      drive_levels(walk.drives[static_cast<std::size_t>(walk.victim)], walk.vdd)
          .pre;

  // Initial per-stage pitch estimate (needed before the first stage has
  // been measured): the victim's own section 50% delay under a unit step.
  mor::AnalyticResponse self;
  self.add_step(walk_model_at(walk, walk.victim, walk.victim), 1.0);
  walk.pitch_estimate =
      self.first_crossing(0.5 * walk_dc_at(walk, walk.victim, walk.victim), +1)
          .value_or(spec.bus.line_at(walk.victim)
                        .section(spec.sections)
                        .time_of_flight());
  return walk;
}

std::vector<StageLineState> initial_chain_state(const ChainWalk& walk) {
  const RepeaterBusSpec& spec = *walk.spec;
  const int lines = spec.bus.lines;
  std::vector<StageLineState> state(static_cast<std::size_t>(lines));
  for (int i = 0; i < lines; ++i) {
    const DriveLevels levels =
        drive_levels(walk.drives[static_cast<std::size_t>(i)], walk.vdd);
    StageLineState& s = state[static_cast<std::size_t>(i)];
    const bool invert_first = walk.interleaved &&
                              is_alternate_line(i, walk.victim) &&
                              walk_is_signal(walk, i);
    s.pre = invert_first ? walk.vdd - levels.pre : levels.pre;
    s.post = invert_first ? walk.vdd - levels.post : levels.post;
    s.t = 0.0;
    s.ramp = spec.source_rise;
    s.pitch = walk.pitch_estimate;
  }
  return state;
}

ChainStageResult evaluate_chain_stage(const ChainWalk& walk,
                                      const std::vector<StageLineState>& state,
                                      int stage) {
  const RepeaterBusSpec& spec = *walk.spec;
  const int lines = spec.bus.lines;
  const int victim = walk.victim;
  ChainStageResult result;
  result.next_t.assign(static_cast<std::size_t>(lines), 0.0);
  for (int i = 0; i < lines; ++i) {
    if (!walk_is_signal(walk, i)) continue;
    const StageLineState& si = state[static_cast<std::size_t>(i)];
    const bool switching = si.pre != si.post;
    if (!switching && i != victim) continue;  // nothing to measure

    // The line's stage output: DC offset from every driver's pre-switch
    // level, plus each switching driver's ramp started at its absolute
    // fire time. Staggered cross-parity pairs smear each contribution
    // over two half-weight onsets at t -/+ pitch/2 (the adjacent span
    // straddles two of the driver's stages).
    double dc0 = 0.0;
    for (int j = 0; j < lines; ++j)
      dc0 += state[static_cast<std::size_t>(j)].pre * walk_dc_at(walk, i, j);
    mor::AnalyticResponse response(dc0);
    for (int j = 0; j < lines; ++j) {
      const StageLineState& sj = state[static_cast<std::size_t>(j)];
      if (sj.pre == sj.post || !walk_is_signal(walk, j)) continue;
      const double delta = sj.post - sj.pre;
      if (walk.staggered &&
          is_alternate_line(i, victim) != is_alternate_line(j, victim)) {
        response.add_ramp(walk_model_at(walk, i, j), 0.5 * delta, sj.ramp,
                          std::max(0.0, sj.t - 0.5 * sj.pitch));
        response.add_ramp(walk_model_at(walk, i, j), 0.5 * delta, sj.ramp,
                          sj.t + 0.5 * sj.pitch);
      } else {
        response.add_ramp(walk_model_at(walk, i, j), delta, sj.ramp, sj.t);
      }
    }

    if (i == victim) {
      const mor::ResponseMetrics measured =
          response.measure(dc0, response.final_value(), /*want_rise=*/false);
      if (si.glitched) {
        // A glitched victim is a full-swing net: report its excursion
        // against the ORIGINAL quiet level, exactly what the MNA receiver
        // metric shows once the quiet-armed buffers have fired.
        const double quiet = walk.victim_quiet_level;
        result.victim_noise = std::max(
            {0.0, measured.peak_value - quiet, quiet - measured.min_value});
      } else {
        result.victim_noise = measured.peak_noise;
      }
      if (switching) {
        if (!measured.delay_50)
          throw std::runtime_error(
              "compose_bus_chain: victim stage " + std::to_string(stage) +
              " never crossed 50% within the (auto-extended) window");
        result.next_t[static_cast<std::size_t>(i)] = *measured.delay_50;
      } else if (stage < spec.sections) {
        // The stage output feeds a quiet-armed repeater (bus_chain stamps
        // the same arming): coupled noise past its threshold in the armed
        // direction fires it.
        const int direction =
            walk.victim_quiet_level < 0.5 * walk.vdd ? +1 : -1;
        const auto fired = response.first_crossing(0.5 * walk.vdd, direction);
        if (fired) {
          result.glitch_fired = true;
          result.glitch_time = *fired;
        }
      }
    } else {
      const double final_value = response.final_value();
      const double level = 0.5 * (dc0 + final_value);
      const int direction = si.post > si.pre ? +1 : -1;
      const auto crossing = response.first_crossing(level, direction);
      if (!crossing)
        throw std::runtime_error(
            "compose_bus_chain: line " + std::to_string(i) + " stage " +
            std::to_string(stage) +
            " never crossed 50% within the (auto-extended) window");
      result.next_t[static_cast<std::size_t>(i)] = *crossing;
    }
  }
  return result;
}

void advance_chain_state(const ChainWalk& walk, const ChainStageResult& result,
                         std::vector<StageLineState>& state) {
  const RepeaterBusSpec& spec = *walk.spec;
  const int lines = spec.bus.lines;
  // Measured crossings become the next stage's fire times, the buffer edge
  // becomes the drive ramp, and inverting repeaters flip the next stage's
  // levels. A fired quiet-armed boundary drives the victim to the opposite
  // rail, as the MNA buffer does.
  for (int i = 0; i < lines; ++i) {
    if (!walk_is_signal(walk, i)) continue;
    StageLineState& s = state[static_cast<std::size_t>(i)];
    const bool invert = walk.interleaved && is_alternate_line(i, walk.victim);
    if (i == walk.victim && result.glitch_fired) {
      s.post = walk.vdd - s.pre;
      s.pitch = std::max(result.glitch_time - s.t, 0.0);
      s.t = result.glitch_time;
      s.ramp = walk.buffer_edge;
      s.glitched = true;
    } else if (s.pre != s.post) {
      const double t50 = result.next_t[static_cast<std::size_t>(i)];
      s.pitch = std::max(t50 - s.t, 0.0);
      s.t = t50;
      s.ramp = walk.buffer_edge;
    }
    const double pre = invert ? walk.vdd - s.pre : s.pre;
    const double post = invert ? walk.vdd - s.post : s.post;
    s.pre = pre;
    s.post = post;
  }
}

bool accumulate_chain_stage(const ChainWalk& walk,
                            const ChainStageResult& result, int stage,
                            std::vector<StageLineState>& state,
                            ComposedChainMetrics& metrics) {
  const RepeaterBusSpec& spec = *walk.spec;
  const std::size_t victim = static_cast<std::size_t>(walk.victim);
  metrics.peak_noise = std::max(metrics.peak_noise, result.victim_noise);
  // Boundary `stage` fired: either the first quiet-armed firing, or the
  // full swing of an already-glitched victim arriving at the next boundary.
  if (result.glitch_fired ||
      (state[victim].glitched && stage < spec.sections)) {
    metrics.glitch_fired = true;
    metrics.glitch_boundaries.push_back(stage);
    metrics.glitch_depth = static_cast<int>(metrics.glitch_boundaries.size());
  }
  if (stage == spec.sections) {
    if (walk.victim_switches) metrics.victim_delay_50 = result.next_t[victim];
    return false;
  }
  advance_chain_state(walk, result, state);
  metrics.victim_fire_times.push_back(state[victim].t);
  return true;
}

ComposedChainMetrics compose_bus_chain(const RepeaterBusSpec& spec,
                                       core::SwitchingPattern pattern,
                                       const StageModels& models) {
  const ChainWalk walk = make_chain_walk(spec, pattern, models);
  std::vector<StageLineState> state = initial_chain_state(walk);
  ComposedChainMetrics metrics;
  metrics.victim_fire_times.push_back(0.0);
  for (int stage = 1; stage <= spec.sections; ++stage) {
    const ChainStageResult result = evaluate_chain_stage(walk, state, stage);
    if (!accumulate_chain_stage(walk, result, stage, state, metrics)) break;
  }
  return metrics;
}

ComposedChainMetrics compose_bus_chain(const RepeaterBusSpec& spec,
                                       core::SwitchingPattern pattern,
                                       int order, mor::ConductanceReuse* reuse) {
  return compose_bus_chain(spec, pattern,
                           build_stage_models(spec, order, reuse));
}

}  // namespace rlcsim::repbus
