#include "repbus/bus_chain.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/builders.h"
#include "tline/rc_line.h"

namespace rlcsim::repbus {
namespace {

// Driver boundaries of one line on the global S = k * m segment grid.
// Uniform/interleaved lines: {0, m, 2m, ..., (k-1)m}. Staggered alternate
// lines: {0, m/2, m/2 + m, ..., m/2 + (k-2)m} — the classic half-stage
// offset with the SAME k drivers (half-length first section, 1.5-length
// last), so every placement costs equal repeater area.
std::vector<int> driver_boundaries(const RepeaterBusSpec& spec, int line,
                                   int victim) {
  const int m = spec.segments_per_section;
  std::vector<int> boundaries{0};
  if (spec.placement == Placement::kStaggered && is_alternate_line(line, victim)) {
    for (int j = 0; j + 1 < spec.sections; ++j)
      boundaries.push_back(m / 2 + j * m);
  } else {
    for (int j = 1; j < spec.sections; ++j) boundaries.push_back(j * m);
  }
  return boundaries;
}

}  // namespace

DriveLevels drive_levels(sim::BusDrive drive, double vdd) {
  switch (drive) {
    case sim::BusDrive::kRising: return {0.0, vdd};
    case sim::BusDrive::kFalling: return {vdd, 0.0};
    case sim::BusDrive::kQuietHigh: return {vdd, vdd};
    case sim::BusDrive::kQuietLow:
    case sim::BusDrive::kShieldGrounded: return {0.0, 0.0};
  }
  return {0.0, 0.0};
}

const char* placement_name(Placement placement) {
  switch (placement) {
    case Placement::kUniform: return "uniform";
    case Placement::kStaggered: return "staggered";
    case Placement::kInterleaved: return "interleaved";
  }
  return "unknown";
}

double resolved_buffer_rise(const RepeaterBusSpec& spec) {
  if (spec.buffer_rise >= 0.0) return spec.buffer_rise;
  // Auto default: the 10-90 edge of the repeater's output resistance
  // driving its OWN stage load — the wire section plus the next repeater's
  // input. (Not just 2.2*r0*c0: the wire term dominates for realistic
  // stages, and an unrealistically sharp edge would understate the edge-
  // overlap effects placement comparisons hinge on.)
  const double r_out = spec.buffer.r0 / spec.size;
  const double c_stage =
      spec.bus.line_at(spec.bus.victim_index()).total_capacitance /
          static_cast<double>(spec.sections) +
      spec.buffer.c0 * spec.size;
  return 2.2 * r_out * c_stage;
}

bool is_alternate_line(int line, int victim) {
  return std::abs(line - victim) % 2 == 1;
}

void validate(const RepeaterBusSpec& spec) {
  tline::validate(spec.bus);
  core::validate(spec.buffer);
  if (spec.sections < 1)
    throw std::invalid_argument("RepeaterBusSpec: sections must be >= 1");
  if (spec.placement == Placement::kStaggered && spec.sections < 2)
    throw std::invalid_argument(
        "RepeaterBusSpec: staggered placement needs sections >= 2 (a single "
        "stage has no boundary to offset)");
  if (!(spec.size > 0.0) || !std::isfinite(spec.size))
    throw std::invalid_argument("RepeaterBusSpec: size h must be > 0");
  if (spec.segments_per_section < 1)
    throw std::invalid_argument(
        "RepeaterBusSpec: segments_per_section must be >= 1");
  if (spec.placement == Placement::kStaggered && spec.segments_per_section % 2 != 0)
    throw std::invalid_argument(
        "RepeaterBusSpec: staggered placement needs an even "
        "segments_per_section (half-stage boundaries must land on the "
        "segment grid)");
  if (!(spec.vdd > 0.0))
    throw std::invalid_argument("RepeaterBusSpec: vdd must be > 0");
  if (!(spec.source_rise >= 0.0) || !std::isfinite(spec.source_rise))
    throw std::invalid_argument("RepeaterBusSpec: source_rise must be >= 0");
  if (spec.buffer_rise >= 0.0 && !std::isfinite(spec.buffer_rise))
    throw std::invalid_argument("RepeaterBusSpec: buffer_rise must be finite");
  if (spec.shield_every < 0)
    throw std::invalid_argument("RepeaterBusSpec: shield_every must be >= 0");
}

int repeaters_on_line(const RepeaterBusSpec& spec, int line) {
  const int victim = spec.bus.victim_index();
  if (core::is_shield_line(line, victim, spec.shield_every)) return 0;
  // Staggered lines shift their k drivers by half a stage (half-length
  // first section, 1.5-length last) but keep the same driver COUNT, so
  // placement comparisons are equal-area by construction.
  return spec.sections;
}

double repeater_area(const RepeaterBusSpec& spec) {
  double total = 0.0;
  for (int i = 0; i < spec.bus.lines; ++i)
    total += static_cast<double>(repeaters_on_line(spec, i));
  return total * spec.size * spec.buffer.area;
}

BusChainCircuit build_bus_chain(const RepeaterBusSpec& spec,
                                core::SwitchingPattern pattern) {
  validate(spec);
  const tline::CoupledBus& bus = spec.bus;
  const int victim = bus.victim_index();
  const int m = spec.segments_per_section;
  const int total_segments = spec.sections * m;
  const double rtr = spec.buffer.r0 / spec.size;
  const double cin = spec.buffer.c0 * spec.size;
  const double buffer_edge = resolved_buffer_rise(spec);
  const std::vector<sim::BusDrive> drives =
      core::pattern_drives(bus.lines, victim, pattern, spec.shield_every);

  BusChainCircuit chain;
  chain.victim = victim;
  sim::Circuit& circuit = chain.circuit;

  // Wire node at grid position g of line i: the driver-output node at
  // position 0, "l<i>.n<g>" everywhere else (at an interior boundary this is
  // the buffer INPUT — the upstream wire's end; the buffer output "l<i>.d<g>"
  // starts the next section).
  const auto line_tag = [](int i) { return "l" + std::to_string(i); };
  const auto wire_node = [&](int i, int g) {
    return g == 0 ? line_tag(i) + ".d0"
                  : line_tag(i) + ".n" + std::to_string(g);
  };
  const auto driver_node = [&](int i, int g) {
    return line_tag(i) + ".d" + std::to_string(g);
  };

  for (int i = 0; i < bus.lines; ++i) {
    const std::string tag = line_tag(i);
    const sim::BusDrive drive = drives[static_cast<std::size_t>(i)];
    const bool shield = drive == sim::BusDrive::kShieldGrounded;
    const bool alternate = is_alternate_line(i, victim);
    const bool inverting =
        spec.placement == Placement::kInterleaved && alternate && !shield;

    // ---- external driver -------------------------------------------------
    // The stage-1 driver is itself an h-sized repeater: an ideal source
    // (carrying the FIRST DRIVER's output waveform — inverted on inverting
    // lines) behind r0/h, exactly like build_repeater_chain's stage 1.
    DriveLevels level = drive_levels(drive, spec.vdd);
    int polarity = +1;
    if (inverting) {
      level = {spec.vdd - level.pre, spec.vdd - level.post};
      polarity = -polarity;
    }
    if (level.pre == level.post)
      circuit.add_voltage_source(tag + ".in", "0", sim::DcSpec{level.pre},
                                 tag + ".v");
    else
      circuit.add_voltage_source(
          tag + ".in", "0",
          sim::StepSpec{level.pre, level.post, 0.0, spec.source_rise},
          tag + ".v");
    circuit.add_resistor(tag + ".in", driver_node(i, 0), rtr, tag + ".rtr");

    // ---- ladder segments -------------------------------------------------
    const tline::LineParams& totals = bus.line_at(i);
    const double n = static_cast<double>(total_segments);
    const double r_seg = totals.total_resistance / n;
    const double l_seg = totals.total_inductance / n;
    const double c_half = totals.total_capacitance / (2.0 * n);
    // Shields run continuous: their only "boundary" is the near-end tie.
    const std::vector<int> boundaries =
        shield ? std::vector<int>{0} : driver_boundaries(spec, i, victim);
    const auto is_boundary = [&](int g) {
      return std::find(boundaries.begin(), boundaries.end(), g) !=
             boundaries.end();
    };
    for (int g = 0; g < total_segments; ++g) {
      const std::string seg = tag + ".s" + std::to_string(g);
      const std::string near =
          is_boundary(g) ? driver_node(i, g) : wire_node(i, g);
      const std::string far = wire_node(i, g + 1);
      circuit.add_capacitor(near, "0", c_half, 0.0, seg + ".cn");
      circuit.add_resistor(near, seg + ".m", r_seg, seg + ".r");
      circuit.add_inductor(seg + ".m", far, l_seg, 0.0, seg + ".l");
      circuit.add_capacitor(far, "0", c_half, 0.0, seg + ".cf");
    }

    // ---- repeaters (walking the DC level chain) --------------------------
    // Each buffer's fire direction and output levels follow from the wire's
    // pre-/post-transition levels at its input. A quiet line's buffers are
    // armed toward the opposite rail: crosstalk noise past threshold fires
    // them — the physical glitch-propagation hazard, not an artifact.
    DriveLevels wire = level;  // stage-1 wire levels (= first driver's output)
    for (std::size_t b = 1; b < boundaries.size(); ++b) {
      const int g = boundaries[b];
      const bool switching = wire.pre != wire.post;
      const int direction =
          switching ? (wire.post > wire.pre ? +1 : -1)
                    : (wire.pre < 0.5 * spec.vdd ? +1 : -1);
      const double in_post_effective =
          switching ? wire.post : spec.vdd - wire.pre;
      const double out_pre = inverting ? spec.vdd - wire.pre : wire.pre;
      const double out_post =
          inverting ? spec.vdd - in_post_effective : in_post_effective;
      circuit.add_switching_buffer(wire_node(i, g), driver_node(i, g), rtr, cin,
                                   direction, out_pre, out_post, buffer_edge,
                                   spec.vdd, 0.5,
                                   tag + ".buf" + std::to_string(g));
      chain.buffer_info.push_back({i, static_cast<int>(b), !switching});
      if (inverting) polarity = -polarity;
      wire = {out_pre, switching ? out_post : out_pre};
    }

    // ---- far end ---------------------------------------------------------
    const std::string receiver = wire_node(i, total_segments);
    if (shield) {
      // Continuous shield: grounded through r0/h at both ends and stitched
      // at every uniform stage boundary (standard shield practice; also what
      // the per-stage composed model's dual-ended stage ties approximate).
      circuit.add_resistor(receiver, "0", rtr, tag + ".tie");
      for (int j = 1; j < spec.sections; ++j)
        circuit.add_resistor(wire_node(i, j * m), "0", rtr,
                             tag + ".tie" + std::to_string(j));
    } else {
      circuit.add_capacitor(receiver, "0", cin, 0.0, tag + ".cl");
    }
    chain.receiver_nodes.push_back(receiver);
    chain.far_polarity.push_back(polarity);
  }

  // ---- coupling ----------------------------------------------------------
  // Cc/S between corresponding grid nodes (positions 1..S — at a repeater
  // boundary the upstream wire end carries the coupling, consistent with
  // add_coupled_bus) and per-segment mutual inductors, for every coupled
  // pair (adjacent on nearest-neighbor buses, all pairs on full-coupling
  // ones).
  for (int i = 0; i < bus.lines; ++i) {
    for (int j = i + 1; j < bus.lines; ++j) {
      const double cc = bus.coupling_cc(i, j);
      const double lm = bus.coupling_lm(i, j);
      if (cc <= 0.0 && lm <= 0.0) continue;
      const std::string pair =
          "bus.p" + std::to_string(i) + "x" + std::to_string(j);
      const double cc_seg = cc / static_cast<double>(total_segments);
      const double k_mutual =
          lm / std::sqrt(bus.line_at(i).total_inductance *
                         bus.line_at(j).total_inductance);
      for (int g = 0; g < total_segments; ++g) {
        if (cc_seg > 0.0)
          circuit.add_capacitor(wire_node(i, g + 1), wire_node(j, g + 1),
                                cc_seg, 0.0, pair + ".cc" + std::to_string(g));
        if (k_mutual > 0.0) {
          const std::string tag = ".s" + std::to_string(g) + ".l";
          circuit.add_mutual(line_tag(i) + tag, line_tag(j) + tag, k_mutual,
                             pair + ".k" + std::to_string(g));
        }
      }
    }
  }
  return chain;
}

ChainMetrics simulate_bus_chain(const RepeaterBusSpec& spec,
                                core::SwitchingPattern pattern, double t_stop,
                                double dt, sim::SolverReuse* reuse) {
  const BusChainCircuit chain = build_bus_chain(spec, pattern);
  const int victim = chain.victim;
  const std::string& node =
      chain.receiver_nodes[static_cast<std::size_t>(victim)];
  const bool victim_switches = pattern != core::SwitchingPattern::kQuietVictim;

  // Horizon: k times a generous per-section bound, with the coupled
  // capacitance Miller-doubled (the slow corner the horizon must contain).
  const tline::LineParams section =
      spec.bus.line_at(victim).section(spec.sections);
  double cc_total = 0.0;
  for (int j = 0; j < spec.bus.lines; ++j)
    if (j != victim) cc_total += spec.bus.coupling_cc(victim, j);
  const double c_section =
      section.total_capacitance +
      2.0 * cc_total / static_cast<double>(spec.sections);
  const double rtr = spec.buffer.r0 / spec.size;
  const double cin = spec.buffer.c0 * spec.size;
  const double elmore = tline::elmore_delay(rtr, section.total_resistance,
                                            c_section, cin);
  const double tof =
      std::sqrt(section.total_inductance * (c_section + cin));
  sim::TransientOptions transient;
  transient.t_stop =
      t_stop > 0.0 ? t_stop
                   : 12.0 * spec.sections * std::max(elmore, tof) +
                         spec.source_rise +
                         spec.sections * resolved_buffer_rise(spec);
  transient.dt = dt;
  transient.reuse = reuse;

  ChainMetrics metrics;
  sim::TransientResult result;
  if (victim_switches) {
    sim::DelayRun run =
        sim::run_until_crossing(chain.circuit, node, 0.5 * spec.vdd, transient,
                                "simulate_bus_chain");
    result = std::move(run.result);
    metrics.victim_delay_50 = run.crossing;
  } else {
    result = sim::run_transient(chain.circuit, transient);
  }
  const sim::Trace trace = result.waveforms.trace(node);
  const double hi = victim_switches ? spec.vdd : 0.0;
  metrics.peak_noise =
      std::max({0.0, -trace.min_value(), trace.max_value() - hi});

  // Glitch scan: every fired quiet-armed repeater (finite fire time) is a
  // coupled-noise spike that crossed threshold and now drives a full swing
  // downstream. Report the deepest-propagating line's fired boundaries.
  std::vector<std::vector<int>> fired_per_line(
      static_cast<std::size_t>(spec.bus.lines));
  for (std::size_t k = 0; k < chain.buffer_info.size(); ++k) {
    const ChainBufferInfo& info = chain.buffer_info[k];
    if (info.quiet_armed && std::isfinite(result.buffer_fire_times[k]))
      fired_per_line[static_cast<std::size_t>(info.line)].push_back(
          info.boundary);
  }
  for (auto& fired : fired_per_line) {
    if (fired.empty()) continue;
    metrics.glitch_fired = true;
    std::sort(fired.begin(), fired.end());
    if (static_cast<int>(fired.size()) > metrics.glitch_depth) {
      metrics.glitch_depth = static_cast<int>(fired.size());
      metrics.glitch_boundaries = fired;
    }
  }
  return metrics;
}

}  // namespace rlcsim::repbus
