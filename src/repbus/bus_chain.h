// Repeater insertion on a coupled bus — the full cascaded-MNA reference.
//
// The paper sizes repeaters (h, k) for an ISOLATED RLC line; on a real bus
// every repeater stage is an N-line coupled section and the classic
// countermeasures against crosstalk are PLACEMENT, not just sizing:
//
//   * kUniform     — every line's repeaters at the same positions j*L/k
//                    (the paper's Fig. 3 replicated N times). Worst case:
//                    all stages switch simultaneously, opposite-phase Miller
//                    coupling compounds over every stage.
//   * kStaggered   — alternate lines shift their repeater positions by HALF
//                    a stage (half-length first section, 1.5-length last,
//                    SAME driver count — equal area by construction), so an
//                    aggressor span adjacent to a victim stage straddles two
//                    aggressor stages and its switching edges are smeared in
//                    time: the simultaneous Miller edge-overlap peak never
//                    forms. Cuts quiet-victim noise ~15-20% and, with
//                    realistic (wire-loaded) repeater edges, the opposite-
//                    phase worst-case delay a few percent.
//   * kInterleaved — alternate lines use INVERTING repeaters at uniform
//                    positions, so the relative switching phase of adjacent
//                    lines alternates per stage: every pattern sees ~half
//                    fast (same-phase) and half slow (opposite-phase)
//                    stages, which averages the Miller effect and collapses
//                    the worst-case/best-case delay spread.
//
// build_bus_chain() stamps the whole chain as ONE circuit: a global
// S = k * segments_per_section ladder grid per line, coupling (Cc/S caps and
// per-segment mutuals) between corresponding grid nodes of coupled pairs,
// and sim::Buffer repeaters (paper-style h-scaled R0/C0, finite output edge)
// cutting each line at its placement's boundaries. Shield lines
// (shield_every, victim-anchored as in core::CrosstalkOptions) run
// continuous and unbroken, grounded through r0/h at both ends and stitched
// at every uniform stage boundary. The transient of this circuit is the
// golden reference the stage-composed reduced model (stage_compose.h) is
// cross-validated against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/crosstalk.h"
#include "core/repeater.h"
#include "sim/circuit.h"
#include "sim/transient.h"
#include "tline/coupled_bus.h"

namespace rlcsim::repbus {

enum class Placement {
  kUniform,
  kStaggered,
  kInterleaved,
};
const char* placement_name(Placement placement);

// A repeatered coupled bus: the bus carries the WHOLE line's totals; every
// signal line is cut into `sections` stages driven by h-sized buffers.
struct RepeaterBusSpec {
  tline::CoupledBus bus;            // full-length totals, N lines
  int sections = 1;                 // k — repeater stages per line
  double size = 1.0;                // h — relative repeater size
  core::MinBuffer buffer;           // r0, c0, area of the minimum repeater
  Placement placement = Placement::kUniform;
  int segments_per_section = 20;    // ladder cells per stage (even if staggered)
  double vdd = 1.0;
  double source_rise = 0.0;         // external input edge duration, s
  // Repeater output edge duration; < 0 picks the auto default
  // 2.2 * (r0/h) * (Ct/k + h*c0) — the 10-90 edge of the repeater driving
  // its own stage load, wire section included (see resolved_buffer_rise).
  // Used identically by the MNA buffers and the stage-composed analytic
  // drive, so the two paths share edge semantics exactly.
  double buffer_rise = -1.0;
  int shield_every = 0;             // victim-anchored shields (no repeaters)
};

// The resolved buffer output edge (spec.buffer_rise, or the auto default).
double resolved_buffer_rise(const RepeaterBusSpec& spec);

// Throws std::invalid_argument (naming the field) for invalid specs:
// bus/buffer validation, sections >= 1 (>= 2 for kStaggered), size > 0,
// even segments_per_section under kStaggered (half-stage boundaries must
// land on the segment grid), vdd > 0, finite nonnegative edges.
void validate(const RepeaterBusSpec& spec);

// True iff `line` is one of the alternate (staggered/inverting) lines: odd
// distance from the victim, so the victim itself is never displaced.
bool is_alternate_line(int line, int victim);

// Pre-/post-transition levels of a line's EXTERNAL input under a drive —
// the DC walk both the chain builder and the stage composer start from.
struct DriveLevels {
  double pre = 0.0;
  double post = 0.0;
};
DriveLevels drive_levels(sim::BusDrive drive, double vdd);

// Repeater count of one line: 0 for shields, k otherwise (the stage-1
// driver is itself an h-sized repeater; staggered lines shift positions but
// keep the count, so placements compare at equal area by construction).
int repeaters_on_line(const RepeaterBusSpec& spec, int line);

// Total repeater area, sum over lines of repeaters * h * A_min — the
// equal-area axis of every placement comparison.
double repeater_area(const RepeaterBusSpec& spec);

// Per-repeater bookkeeping, aligned with circuit.buffers() (same order):
// which line and interior stage boundary each repeater cuts, and whether it
// is quiet-armed — its wire never switches, so the buffer waits toward the
// opposite rail and coupled noise past threshold fires it (the glitch-
// propagation hazard).
struct ChainBufferInfo {
  int line = 0;
  int boundary = 0;  // 1-based interior boundary index (= stage it starts)
  bool quiet_armed = false;
};

// The chain circuit plus the bookkeeping needed to measure it.
struct BusChainCircuit {
  sim::Circuit circuit;
  std::vector<std::string> receiver_nodes;  // far-end node per line
  // Far-end signal polarity per line: +1 = the external transition arrives
  // upright, -1 = inverted (odd number of inverting repeaters on the line).
  std::vector<int> far_polarity;
  std::vector<ChainBufferInfo> buffer_info;
  int victim = 0;
};

// Builds the full cascaded chain under `pattern` (quiet/rising/falling per
// line via core::pattern_drives — the exact drive table the crosstalk
// analyses use).
BusChainCircuit build_bus_chain(const RepeaterBusSpec& spec,
                                core::SwitchingPattern pattern);

// Victim metrics of one full transient of the chain (the golden reference).
struct ChainMetrics {
  // First 50% crossing of the victim's receiver; absent for kQuietVictim.
  std::optional<double> victim_delay_50;
  // Victim receiver excursion outside its drive envelope, volts.
  double peak_noise = 0.0;
  // Glitch propagation: a quiet-armed repeater fired on coupled noise past
  // threshold. Once one fires it drives a FULL SWING downstream, so the
  // victim's receiver numbers describe a glitched net, not a quiet one —
  // which is why this is reported instead of silently folded into
  // peak_noise. `glitch_boundaries` lists the fired quiet-armed boundaries
  // (1-based stage indices, sorted) on the deepest-propagating line;
  // `glitch_depth` is their count — how many stages the glitch traversed.
  bool glitch_fired = false;
  int glitch_depth = 0;
  std::vector<int> glitch_boundaries;
};

// Simulates the chain and measures the victim. t_stop/dt = 0 pick automatic
// values (a per-section Elmore/time-of-flight bound times k, auto-extended
// by run_until_crossing). `reuse` shares sparse symbolic factorizations
// across calls over structurally identical chains.
ChainMetrics simulate_bus_chain(const RepeaterBusSpec& spec,
                                core::SwitchingPattern pattern,
                                double t_stop = 0.0, double dt = 0.0,
                                sim::SolverReuse* reuse = nullptr);

}  // namespace rlcsim::repbus
