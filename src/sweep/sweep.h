// Parallel design-space sweep engine.
//
// The paper's whole argument is that closed-form models (eqs. 6/9, the
// repeater formulas) let a designer explore (line, driver, load, technology)
// spaces far too large for dynamic simulation. This subsystem makes both
// sides of that comparison first-class: declare a scenario grid once, pick
// an analysis — from the closed-form tpd up to full MNA transient delay —
// and the engine evaluates every grid point on a work-stealing thread pool
// (runtime/thread_pool.h).
//
// Transient sweeps additionally reuse the sparse solver's symbolic
// factorization across grid points: every point rebuilds a topologically
// identical ladder, so the engine evaluates grid point 0 once on the calling
// thread to record the MNA sparsity pattern plus the symbolic (system + DC)
// factorizations, then seeds every worker with that reference state
// (sim::SolverReuse). A 10k-point transient sweep therefore performs ONE
// symbolic analysis per matrix kind, total, and 10k cheap numeric
// refactorizations — and because every point replays the same recorded
// pivot order, sweep results are bit-identical at every thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/crosstalk.h"
#include "core/repeater.h"
#include "core/repeater_numeric.h"
#include "mor/moments.h"
#include "sim/transient.h"
#include "tline/coupled_bus.h"
#include "tline/rlc.h"
#include "tline/transfer.h"

namespace rlcsim::sweep {

// ------------------------------------------------------------------- grid

// What a sweep axis varies. Line totals and geometry, driver strength, load,
// repeater sizing, and the coupled-bus crosstalk knobs cover the paper's
// design space plus the multi-net scenario family on top of it.
enum class Variable {
  kLineResistance,    // Rt, ohm
  kLineInductance,    // Lt, H
  kLineCapacitance,   // Ct, F
  kLineLength,        // m — line totals become per_length * length
  kDriverResistance,  // Rtr, ohm
  kLoadCapacitance,   // CL, F
  kRepeaterSize,      // h
  kRepeaterSections,  // k
  kBusLines,          // crosstalk bus width N (integral, >= 2)
  kCouplingCapRatio,  // Cc/Ct of the crosstalk bus (>= 0)
  kMutualRatio,       // Lm/Lt of the crosstalk bus: in [0, 1) up front; the
                      // width-dependent positive-definiteness bound
                      // (tline::max_lm_ratio) is enforced per grid point
  kSwitchingPattern,  // core::SwitchingPattern as 0/1/2 (integral)
  kShieldEvery,       // crosstalk shield insertion period (integral, >= 0;
                      // see core::CrosstalkOptions::shield_every)
  kReductionOrder,    // MOR order q of the reduced analyses (integral, >= 1)
  kStaggerMode,       // repeater-bus placement as 0/1/2 (integral:
                      // repbus::Placement uniform/staggered/interleaved)
};
const char* variable_name(Variable variable);

struct Axis {
  Variable variable{};
  std::vector<double> values;
};
// Axis builders. linspace/logspace require points >= 2 and (for logspace)
// 0 < lo < hi; throw std::invalid_argument otherwise.
Axis linspace(Variable variable, double lo, double hi, int points);
Axis logspace(Variable variable, double lo, double hi, int points);
Axis values(Variable variable, std::vector<double> values);
// A kSwitchingPattern axis from the enum itself (values encode as 0/1/2).
Axis switching_patterns(std::vector<core::SwitchingPattern> patterns);

// Crosstalk half of a scenario: the bus the crosstalk analyses evaluate is
// built per point as make_bus(bus_lines, system.line, cc_ratio, lm_ratio) —
// the ratios always track the point's resolved line totals, whatever order
// line and coupling axes are declared in. Driver/load come from `system`.
struct CrosstalkScenario {
  int bus_lines = 3;
  double cc_ratio = 0.0;  // Cc / Ct
  double lm_ratio = 0.0;  // Lm / Lt
  core::SwitchingPattern pattern = core::SwitchingPattern::kOppositePhase;
  int shield_every = 0;     // victim-anchored shield insertion (0 = none)
  int reduction_order = 4;  // MOR order q of the reduced analyses
  // Repeater placement of the kBusRepeater* analyses, as the integer value
  // of repbus::Placement (0 uniform, 1 staggered, 2 interleaved) — kept as
  // an int so this header does not depend on the repbus layer.
  int stagger_mode = 0;
};

// One fully resolved evaluation point: the canonical gate + line + load
// system, the repeater technology/sizing used by repeater analyses, and the
// coupled-bus setup used by crosstalk analyses.
struct Scenario {
  tline::GateLineLoad system;
  core::MinBuffer buffer;
  core::RepeaterDesign design;
  CrosstalkScenario xtalk;
};

// A scenario grid: the cartesian product of `axes` applied to `base`, in
// row-major order (the LAST axis varies fastest). Axes are applied in
// declaration order, so a kLineLength axis listed before a kLineResistance
// axis yields length-derived totals with the resistance overridden.
struct SweepSpec {
  Scenario base;
  tline::PerUnitLength per_length;  // used by kLineLength axes
  std::vector<Axis> axes;

  std::size_t size() const;  // product of axis lengths (1 when no axes)
  // flat index <-> per-axis indices (row-major).
  std::vector<std::size_t> indices(std::size_t flat) const;
  std::size_t flat_index(const std::vector<std::size_t>& indices) const;
  // The fully resolved scenario of one grid point.
  Scenario at(std::size_t flat) const;
  // Throws std::invalid_argument on empty axes, non-finite axis values, or a
  // kLineLength axis without positive per_length parasitics.
  void validate() const;
};

// -------------------------------------------------------------- analyses

enum class Analysis {
  kClosedFormDelay,  // eq. (9) 50% delay of scenario.system
  kTwoPoleDelay,     // moment-matched two-pole threshold delay
  kTransientDelay,   // MNA transient 50% delay (ladder discretization)
  kAcBandwidth,      // -3 dB bandwidth of the gate+line+load transfer, Hz
                     // (NaN when |H| never drops 3 dB inside the window)
  kRepeaterDelay,    // eq. (19) total delay at the scenario's (h, k)
  kRepeaterOptimum,  // numerically optimized RLC-aware total delay
  kCrosstalkDelay,   // bus victim 50% delay under the scenario's pattern, s
                     // (NaN for kQuietVictim — a quiet victim never switches)
  kCrosstalkNoise,   // peak victim excursion outside its drive envelope, V
  kCrosstalkPushout, // victim delay minus the two-pole isolated delay, s
                     // (NaN for kQuietVictim)
  kReducedDelay,     // reduced-order ANALYTIC victim 50% delay of the same
                     // bus/pattern (core::analyze_crosstalk_reduced at the
                     // scenario's reduction_order) — the paper's "analytic
                     // vs dynamic simulation" game at arbitrary order q;
                     // NaN for kQuietVictim
  kReducedNoise,     // reduced-order analytic peak victim noise, V
  kBusRepeaterDelay, // stage-composed repeater-bus victim delay at the
                     // scenario's (h, k, stagger_mode, shield_every) under
                     // its pattern (repbus::compose_bus_chain; the engine's
                     // `segments` knob is ladder cells PER STAGE here);
                     // NaN for kQuietVictim
  kBusRepeaterNoise, // stage-composed worst per-stage victim noise, V
};
const char* analysis_name(Analysis analysis);

struct EngineOptions {
  std::size_t threads = 0;  // 0 -> runtime::default_thread_count()
  // Transient/AC discretization and horizons. 0 picks per-scenario defaults
  // (sim::default_transient_horizon; dt = t_stop / 4000).
  int segments = 60;
  double t_stop = 0.0;
  double dt = 0.0;
  sim::SolverKind solver = sim::SolverKind::kAuto;
  // Scenario-batched transient lanes (kTransientDelay sweeps): workers take
  // TILES of this many grid points and step them as one SIMD batch
  // (sim/transient_batch.h) instead of point-by-point. 0 resolves through
  // numeric::default_lane_width() — the RLCSIM_LANES knob — and explicit
  // values must be 1, 4, or 8. Batching engages only with an explicit
  // t_stop > 0 (per-scenario default horizons preclude a shared step grid);
  // ineligible tiles and the non-divisible remainder fall back to the
  // scalar per-point path. Results are bit-identical at every lane width
  // and every thread count.
  std::size_t lanes = 0;
  // AC bandwidth search window, Hz.
  double ac_f_lo = 1e6;
  double ac_f_hi = 1e13;
  core::DelayFitConstants fit = core::kPaperFit;
  // Reduced-model REUSE across the sweep (kReducedDelay/kReducedNoise):
  // project an Arnoldi basis once at grid point 0 and re-evaluate only the
  // projected q x q pencil per point (core::analyze_crosstalk_projected) —
  // no per-point LU at all. Exact at point 0, an approximation elsewhere;
  // points whose circuit is structurally different (bus width, shields,
  // segments) or whose reduction_order differs from point 0's (the basis
  // fixes q) fall back to fresh per-point reductions automatically.
  // Results remain bit-identical at every thread count.
  bool reuse_projection = false;
};

struct SweepResult {
  std::vector<double> values;  // one metric per grid point (s, or Hz for AC)
  std::size_t threads_used = 0;
  // Sparse symbolic factorizations performed across all threads (transient
  // sweeps: 2 — one system, one DC; reduced sweeps: 1 — the G factorization
  // — however many points and threads).
  std::size_t symbolic_factorizations = 0;
  std::size_t solver_reuse_hits = 0;  // runs that replayed a recorded symbolic
  // Batch lanes ejected to the scalar zero-pivot fallback across the sweep
  // (0 on the scalar path; a nonzero count on a batched sweep is legal but
  // worth surfacing — every ejection is a full scalar refactorization).
  std::size_t ejected_lanes = 0;
  // Where each grid point was actually evaluated: through the W-wide SIMD
  // batch, or on the scalar per-point path (the seeded reference point,
  // remainder tiles, and any tile the batcher declined). Always sums to
  // values.size(). The accounting exists because the fallback is SILENT by
  // design (bit-identical results) — an eligibility regression would erase
  // the batched speedup with every test green; bench/sweep_batch gates a
  // minimum batched fraction on these counters instead.
  std::size_t batched_points = 0;
  std::size_t scalar_points = 0;
  double elapsed_seconds = 0.0;
  double points_per_second = 0.0;
};

// --------------------------------------------------------------- engine

// Thread-safety: one engine may be shared between threads — its pool runs
// one sweep at a time, so concurrent run()/run_custom()/optimize_repeater()
// calls are serialized, not interleaved. For parallel INDEPENDENT sweeps,
// use one engine per caller.
class SweepEngine {
 public:
  explicit SweepEngine(EngineOptions options = {});
  ~SweepEngine();
  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  std::size_t threads() const;
  const EngineOptions& options() const;

  // Evaluates `analysis` at every grid point. Throws what the underlying
  // analysis throws (first failing grid point wins, deterministically).
  SweepResult run(const SweepSpec& spec, Analysis analysis) const;

  // Generic parallel map over [0, n): the escape hatch the benches and the
  // repeater batch evaluator use. `eval(i, ctx)` must depend only on `i`
  // (ctx.reuse is a per-worker solver cache, ctx.worker the executing worker
  // slot). Determinism across thread counts then follows unless eval's
  // VALUES depend on the per-worker reuse state (transient analyses: seed
  // the reuse yourself or use run(), which does).
  struct PointContext {
    sim::SolverReuse* reuse = nullptr;
    mor::ConductanceReuse* mor_reuse = nullptr;  // for reduced-order points
    std::size_t worker = 0;
  };
  SweepResult run_custom(
      std::size_t n,
      const std::function<double(std::size_t index, PointContext& ctx)>& eval) const;

  // A core::DesignBatchFn that evaluates candidate repeater designs across
  // this engine's pool — plugs the closed-form repeater optimization into
  // the sweep machinery (core::optimize / core::normalized_optimum).
  core::DesignBatchFn repeater_batch() const;

  // Convenience: core::optimize with this engine's batch evaluator.
  core::OptimizedDesign optimize_repeater(const tline::LineParams& line,
                                          const core::MinBuffer& buffer,
                                          double min_sections = 1.0) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlcsim::sweep
