#include "sweep/sweep.h"

#include <atomic>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/delay_model.h"
#include "core/two_pole.h"
#include "numeric/fp_env.h"
#include "numeric/sparse.h"
#include "numeric/sparse_batch.h"
#include "obs/obs.h"
#include "repbus/stage_compose.h"
#include "runtime/thread_pool.h"
#include "sim/ac.h"
#include "sim/builders.h"
#include "sim/transient_batch.h"

namespace rlcsim::sweep {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

void apply_variable(Variable variable, double value, Scenario& scenario,
                    const tline::PerUnitLength& per_length) {
  switch (variable) {
    case Variable::kLineResistance:
      scenario.system.line.total_resistance = value;
      break;
    case Variable::kLineInductance:
      scenario.system.line.total_inductance = value;
      break;
    case Variable::kLineCapacitance:
      scenario.system.line.total_capacitance = value;
      break;
    case Variable::kLineLength:
      scenario.system.line = tline::make_line(per_length, value);
      break;
    case Variable::kDriverResistance:
      scenario.system.driver_resistance = value;
      break;
    case Variable::kLoadCapacitance:
      scenario.system.load_capacitance = value;
      break;
    case Variable::kRepeaterSize:
      scenario.design.size = value;
      break;
    case Variable::kRepeaterSections:
      scenario.design.sections = value;
      break;
    case Variable::kBusLines:
      scenario.xtalk.bus_lines = static_cast<int>(value);
      break;
    case Variable::kCouplingCapRatio:
      scenario.xtalk.cc_ratio = value;
      break;
    case Variable::kMutualRatio:
      scenario.xtalk.lm_ratio = value;
      break;
    case Variable::kSwitchingPattern:
      scenario.xtalk.pattern =
          static_cast<core::SwitchingPattern>(static_cast<int>(value));
      break;
    case Variable::kShieldEvery:
      scenario.xtalk.shield_every = static_cast<int>(value);
      break;
    case Variable::kReductionOrder:
      scenario.xtalk.reduction_order = static_cast<int>(value);
      break;
    case Variable::kStaggerMode:
      scenario.xtalk.stagger_mode = static_cast<int>(value);
      break;
  }
}

// The coupled bus and crosstalk options of one resolved scenario — shared
// by the crosstalk/reduced/projected/repeater-bus analyses and by run()'s
// projection-basis seeding, so they can never disagree.
tline::CoupledBus scenario_bus(const Scenario& scenario) {
  const CrosstalkScenario& x = scenario.xtalk;
  return tline::make_bus(x.bus_lines, scenario.system.line, x.cc_ratio,
                         x.lm_ratio);
}
core::CrosstalkOptions scenario_crosstalk_options(const Scenario& scenario,
                                                  const EngineOptions& options,
                                                  sim::SolverReuse* reuse) {
  core::CrosstalkOptions xt;
  xt.driver_resistance = scenario.system.driver_resistance;
  xt.load_capacitance = scenario.system.load_capacitance;
  xt.segments = options.segments;
  xt.shield_every = scenario.xtalk.shield_every;
  xt.t_stop = options.t_stop;
  xt.dt = options.dt;
  xt.solver = options.solver;
  xt.reuse = reuse;
  return xt;
}

double transient_delay_of(const Scenario& scenario, const EngineOptions& options,
                          sim::SolverReuse* reuse) {
  const sim::Circuit circuit =
      sim::build_gate_line_load(scenario.system, options.segments);
  sim::TransientOptions transient;
  transient.t_stop = options.t_stop > 0.0
                         ? options.t_stop
                         : sim::default_transient_horizon(scenario.system);
  transient.dt = options.dt;
  transient.solver = options.solver;
  transient.reuse = reuse;
  return sim::run_until_crossing(circuit, "out", 0.5, transient,
                                 "SweepEngine transient_delay")
      .crossing;
}

double evaluate_point(const Scenario& scenario, Analysis analysis,
                      const EngineOptions& options, sim::SolverReuse* reuse,
                      mor::ConductanceReuse* mor_reuse,
                      const mor::ArnoldiBasis* basis = nullptr) {
  switch (analysis) {
    case Analysis::kClosedFormDelay:
      return core::rlc_delay(scenario.system, options.fit);
    case Analysis::kTwoPoleDelay:
      return core::TwoPoleModel(scenario.system).threshold_delay(0.5);
    case Analysis::kTransientDelay:
      return transient_delay_of(scenario, options, reuse);
    case Analysis::kAcBandwidth: {
      const sim::Circuit circuit =
          sim::build_gate_line_load(scenario.system, options.segments);
      // "No -3 dB crossing inside the scan window" is recorded as absent
      // (NaN, the grid's uncomputed value), never as a 0 Hz sentinel.
      return sim::bandwidth_3db(circuit, "vsrc", "out", options.ac_f_lo,
                                options.ac_f_hi)
          .value_or(kNaN);
    }
    case Analysis::kRepeaterDelay:
      return core::total_delay(scenario.system.line, scenario.buffer,
                               scenario.design, options.fit);
    case Analysis::kRepeaterOptimum:
      // Serial per point by design: optimum points are themselves grid
      // points of an outer parallel sweep, so a nested parallel batch here
      // would only fight the pool (nested parallel_for degrades to inline).
      return core::optimize(scenario.system.line, scenario.buffer, options.fit,
                            /*min_sections=*/1.0)
          .continuous_delay;
    case Analysis::kCrosstalkDelay:
    case Analysis::kCrosstalkNoise:
    case Analysis::kCrosstalkPushout:
    case Analysis::kReducedDelay:
    case Analysis::kReducedNoise: {
      const CrosstalkScenario& x = scenario.xtalk;
      const tline::CoupledBus bus = scenario_bus(scenario);
      const core::CrosstalkOptions xt =
          scenario_crosstalk_options(scenario, options, reuse);
      if (analysis == Analysis::kReducedDelay ||
          analysis == Analysis::kReducedNoise) {
        // Basis-reuse sweeps (EngineOptions::reuse_projection) re-evaluate
        // the recorded nominal projection; otherwise a fresh per-point
        // reduction over the shared symbolic G factorization.
        const core::CrosstalkMetrics m =
            basis ? core::analyze_crosstalk_projected(bus, x.pattern, xt, *basis)
                  : core::analyze_crosstalk_reduced(bus, x.pattern, xt,
                                                    x.reduction_order, mor_reuse);
        return analysis == Analysis::kReducedNoise
                   ? m.peak_noise
                   : m.victim_delay_50.value_or(kNaN);
      }
      const core::CrosstalkMetrics m = core::analyze_crosstalk(bus, x.pattern, xt);
      if (analysis == Analysis::kCrosstalkNoise) return m.peak_noise;
      // Quiet-victim delays are absent, recorded as NaN (never 0).
      return analysis == Analysis::kCrosstalkDelay
                 ? m.victim_delay_50.value_or(kNaN)
                 : m.delay_pushout.value_or(kNaN);
    }
    case Analysis::kBusRepeaterDelay:
    case Analysis::kBusRepeaterNoise: {
      const CrosstalkScenario& x = scenario.xtalk;
      // A kStaggerMode axis is range-checked by SweepSpec::validate, but a
      // bad BASE scenario would otherwise cast to an out-of-range enum and
      // silently behave as kUniform.
      if (x.stagger_mode < 0 || x.stagger_mode > 2)
        throw std::invalid_argument(
            "SweepEngine: stagger_mode must be 0, 1, or 2 (repbus::Placement)");
      repbus::RepeaterBusSpec spec;
      spec.bus = scenario_bus(scenario);
      spec.sections = std::max(
          1, static_cast<int>(std::llround(scenario.design.sections)));
      spec.size = scenario.design.size;
      spec.buffer = scenario.buffer;
      spec.placement = static_cast<repbus::Placement>(x.stagger_mode);
      spec.segments_per_section = options.segments;
      spec.shield_every = x.shield_every;
      const repbus::ComposedChainMetrics m = repbus::compose_bus_chain(
          spec, x.pattern, x.reduction_order, mor_reuse);
      return analysis == Analysis::kBusRepeaterNoise
                 ? m.peak_noise
                 : m.victim_delay_50.value_or(kNaN);
    }
  }
  throw std::invalid_argument("SweepEngine: unknown analysis");
}

// Analyses whose hot path is the MNA transient engine — these get the
// recorded-symbolic reuse seeding in run().
bool is_transient_analysis(Analysis analysis) {
  return analysis == Analysis::kTransientDelay ||
         analysis == Analysis::kCrosstalkDelay ||
         analysis == Analysis::kCrosstalkNoise ||
         analysis == Analysis::kCrosstalkPushout;
}

// Analyses whose hot path is the mor/ moment engine — these get the
// recorded G-symbolic (mor::ConductanceReuse) seeding in run().
bool is_reduced_analysis(Analysis analysis) {
  return analysis == Analysis::kReducedDelay ||
         analysis == Analysis::kReducedNoise ||
         analysis == Analysis::kBusRepeaterDelay ||
         analysis == Analysis::kBusRepeaterNoise;
}

}  // namespace

const char* variable_name(Variable variable) {
  switch (variable) {
    case Variable::kLineResistance: return "line_resistance";
    case Variable::kLineInductance: return "line_inductance";
    case Variable::kLineCapacitance: return "line_capacitance";
    case Variable::kLineLength: return "line_length";
    case Variable::kDriverResistance: return "driver_resistance";
    case Variable::kLoadCapacitance: return "load_capacitance";
    case Variable::kRepeaterSize: return "repeater_size";
    case Variable::kRepeaterSections: return "repeater_sections";
    case Variable::kBusLines: return "bus_lines";
    case Variable::kCouplingCapRatio: return "coupling_cap_ratio";
    case Variable::kMutualRatio: return "mutual_ratio";
    case Variable::kSwitchingPattern: return "switching_pattern";
    case Variable::kShieldEvery: return "shield_every";
    case Variable::kReductionOrder: return "reduction_order";
    case Variable::kStaggerMode: return "stagger_mode";
  }
  return "unknown";
}

const char* analysis_name(Analysis analysis) {
  switch (analysis) {
    case Analysis::kClosedFormDelay: return "closed_form_delay";
    case Analysis::kTwoPoleDelay: return "two_pole_delay";
    case Analysis::kTransientDelay: return "transient_delay";
    case Analysis::kAcBandwidth: return "ac_bandwidth";
    case Analysis::kRepeaterDelay: return "repeater_delay";
    case Analysis::kRepeaterOptimum: return "repeater_optimum";
    case Analysis::kCrosstalkDelay: return "crosstalk_delay";
    case Analysis::kCrosstalkNoise: return "crosstalk_noise";
    case Analysis::kCrosstalkPushout: return "crosstalk_pushout";
    case Analysis::kReducedDelay: return "reduced_delay";
    case Analysis::kReducedNoise: return "reduced_noise";
    case Analysis::kBusRepeaterDelay: return "bus_repeater_delay";
    case Analysis::kBusRepeaterNoise: return "bus_repeater_noise";
  }
  return "unknown";
}

Axis linspace(Variable variable, double lo, double hi, int points) {
  if (points < 2) throw std::invalid_argument("sweep::linspace: points must be >= 2");
  Axis axis{variable, {}};
  axis.values.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i)
    axis.values.push_back(lo + (hi - lo) * i / (points - 1));
  return axis;
}

Axis logspace(Variable variable, double lo, double hi, int points) {
  if (points < 2) throw std::invalid_argument("sweep::logspace: points must be >= 2");
  if (!(lo > 0.0) || !(hi > lo))
    throw std::invalid_argument("sweep::logspace: need 0 < lo < hi");
  Axis axis{variable, {}};
  axis.values.reserve(static_cast<std::size_t>(points));
  const double llo = std::log(lo), lhi = std::log(hi);
  for (int i = 0; i < points; ++i)
    axis.values.push_back(std::exp(llo + (lhi - llo) * i / (points - 1)));
  return axis;
}

Axis values(Variable variable, std::vector<double> axis_values) {
  return Axis{variable, std::move(axis_values)};
}

Axis switching_patterns(std::vector<core::SwitchingPattern> patterns) {
  Axis axis{Variable::kSwitchingPattern, {}};
  axis.values.reserve(patterns.size());
  for (core::SwitchingPattern p : patterns)
    axis.values.push_back(static_cast<double>(static_cast<int>(p)));
  return axis;
}

std::size_t SweepSpec::size() const {
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.values.size();
  return n;
}

std::vector<std::size_t> SweepSpec::indices(std::size_t flat) const {
  std::vector<std::size_t> out(axes.size(), 0);
  for (std::size_t a = axes.size(); a-- > 0;) {
    const std::size_t len = axes[a].values.size();
    out[a] = flat % len;
    flat /= len;
  }
  return out;
}

std::size_t SweepSpec::flat_index(const std::vector<std::size_t>& indices) const {
  if (indices.size() != axes.size())
    throw std::invalid_argument("SweepSpec::flat_index: wrong index count");
  std::size_t flat = 0;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (indices[a] >= axes[a].values.size())
      throw std::out_of_range("SweepSpec::flat_index: index out of range");
    flat = flat * axes[a].values.size() + indices[a];
  }
  return flat;
}

Scenario SweepSpec::at(std::size_t flat) const {
  // Allocation-free row-major decode (this runs once per grid point on the
  // hot path): the stride of axis a is the product of the axis lengths
  // after it, and axes still apply in declaration order.
  Scenario scenario = base;
  std::size_t stride = size();
  for (const Axis& axis : axes) {
    stride /= axis.values.size();
    const std::size_t idx = (flat / stride) % axis.values.size();
    apply_variable(axis.variable, axis.values[idx], scenario, per_length);
  }
  return scenario;
}

void SweepSpec::validate() const {
  for (const auto& axis : axes) {
    if (axis.values.empty())
      throw std::invalid_argument(std::string("SweepSpec: axis '") +
                                  variable_name(axis.variable) + "' has no values");
    for (double v : axis.values)
      if (!std::isfinite(v))
        throw std::invalid_argument(std::string("SweepSpec: axis '") +
                                    variable_name(axis.variable) +
                                    "' has a non-finite value");
    if (axis.variable == Variable::kLineLength &&
        (!(per_length.capacitance > 0.0) || !(per_length.inductance > 0.0)))
      throw std::invalid_argument(
          "SweepSpec: a line_length axis needs positive per_length L and C");
    // The crosstalk axes carry enum/count values through the double grid;
    // reject anything that would not round-trip.
    if (axis.variable == Variable::kBusLines)
      for (double v : axis.values)
        if (v < 2.0 || v != std::floor(v))
          throw std::invalid_argument(
              "SweepSpec: bus_lines values must be integers >= 2");
    if (axis.variable == Variable::kSwitchingPattern)
      for (double v : axis.values)
        if (v != std::floor(v) || v < 0.0 || v > 2.0)
          throw std::invalid_argument(
              "SweepSpec: switching_pattern values must be 0, 1, or 2 "
              "(core::SwitchingPattern)");
    if (axis.variable == Variable::kCouplingCapRatio)
      for (double v : axis.values)
        if (v < 0.0)
          throw std::invalid_argument(
              "SweepSpec: coupling_cap_ratio values must be >= 0");
    if (axis.variable == Variable::kMutualRatio)
      for (double v : axis.values)
        if (v < 0.0 || v >= 1.0)
          throw std::invalid_argument(
              "SweepSpec: mutual_ratio values must be in [0, 1) (the "
              "width-dependent bound tline::max_lm_ratio is enforced when "
              "each point builds its bus)");
    if (axis.variable == Variable::kShieldEvery)
      for (double v : axis.values)
        if (v < 0.0 || v != std::floor(v))
          throw std::invalid_argument(
              "SweepSpec: shield_every values must be integers >= 0");
    if (axis.variable == Variable::kReductionOrder)
      for (double v : axis.values)
        if (v < 1.0 || v != std::floor(v))
          throw std::invalid_argument(
              "SweepSpec: reduction_order values must be integers >= 1");
    if (axis.variable == Variable::kStaggerMode)
      for (double v : axis.values)
        if (v != std::floor(v) || v < 0.0 || v > 2.0)
          throw std::invalid_argument(
              "SweepSpec: stagger_mode values must be 0, 1, or 2 "
              "(repbus::Placement)");
  }
}

struct SweepEngine::Impl {
  EngineOptions options;
  mutable runtime::ThreadPool pool;

  explicit Impl(EngineOptions opts) : options(opts), pool(opts.threads) {}

  // Shared result epilogue for run()/run_custom(): stats + timing.
  static void finalize(SweepResult& out, std::size_t points,
                       const std::vector<sim::SolverReuse>& reuse,
                       const std::vector<mor::ConductanceReuse>& mor_reuse,
                       const std::atomic<std::size_t>& symbolic,
                       const std::atomic<std::size_t>& ejected,
                       const obs::Stopwatch& started) {
    out.symbolic_factorizations = symbolic.load();
    out.ejected_lanes = ejected.load();
    for (const auto& r : reuse) out.solver_reuse_hits += r.reuse_hits;
    for (const auto& r : mor_reuse) out.solver_reuse_hits += r.reuse_hits;
    // Wall time feeds ONLY the elapsed/points-per-second observability
    // metadata, never a result value; obs::Stopwatch is the sanctioned
    // clock access (the lint wallclock-scope rule bans ::now() here).
    out.elapsed_seconds = started.seconds();
    out.points_per_second = out.elapsed_seconds > 0.0
                                ? static_cast<double>(points) / out.elapsed_seconds
                                : 0.0;
    OBS_COUNTER_ADD("sweep.points_batched", out.batched_points);
    OBS_COUNTER_ADD("sweep.points_scalar", out.scalar_points);
  }
};

SweepEngine::SweepEngine(EngineOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

SweepEngine::~SweepEngine() = default;

std::size_t SweepEngine::threads() const { return impl_->pool.size(); }

const EngineOptions& SweepEngine::options() const { return impl_->options; }

SweepResult SweepEngine::run(const SweepSpec& spec, Analysis analysis) const {
  OBS_SPAN("sweep.run");
  OBS_COUNTER_ADD("sweep.runs", 1);
  const numeric::fp_env_guard fp_guard("sweep::SweepEngine::run");
  spec.validate();
  const std::size_t n = spec.size();
  // Timing metadata only (elapsed_seconds), not a result value.
  const obs::Stopwatch started;

  SweepResult out;
  out.threads_used = impl_->pool.size();
  out.values.assign(n, kNaN);
  std::atomic<std::size_t> symbolic{0};
  std::atomic<std::size_t> ejected{0};
  std::atomic<std::size_t> batched_points{0};
  std::atomic<std::size_t> scalar_points{0};

  // Transient analyses replay a recorded (system + DC) symbolic pair;
  // reduced analyses replay a recorded G symbolic. Both seeding paths share
  // the same reference-evaluation scheme.
  const bool seeded =
      is_transient_analysis(analysis) || is_reduced_analysis(analysis);
  // Basis-reuse sweeps: ONE Arnoldi projection at grid point 0 (recorded
  // below), every point re-projects onto it — no per-point factorization.
  const bool project = impl_->options.reuse_projection &&
                       (analysis == Analysis::kReducedDelay ||
                        analysis == Analysis::kReducedNoise);
  mor::ArnoldiBasis basis;
  int basis_order = 0;  // the nominal reduction_order the basis was built at
  std::vector<sim::SolverReuse> reuse(impl_->pool.size());
  std::vector<mor::ConductanceReuse> mor_reuse(impl_->pool.size());
  std::size_t first = 0;
  if (seeded && n > 0) {
    // Reference evaluation on the calling thread: records the shared MNA
    // pattern and the symbolic factorizations every worker replays. Seeding
    // all workers from ONE donor is what makes results bit-identical at
    // every thread count — the recorded pivot order, not the schedule,
    // determines every numeric factorization.
    sim::SolverReuse reference;
    mor::ConductanceReuse mor_reference;
    const std::size_t before = numeric::sparse_lu_stats().symbolic;
    if (project) {
      const Scenario nominal = spec.at(0);
      basis_order = nominal.xtalk.reduction_order;
      basis = core::crosstalk_projection_basis(
          scenario_bus(nominal), nominal.xtalk.pattern,
          scenario_crosstalk_options(nominal, impl_->options, nullptr),
          basis_order, &mor_reference);
      out.values[0] = evaluate_point(nominal, analysis, impl_->options,
                                     &reference, &mor_reference, &basis);
    } else {
      out.values[0] = evaluate_point(spec.at(0), analysis, impl_->options,
                                     &reference, &mor_reference);
    }
    symbolic += numeric::sparse_lu_stats().symbolic - before;
    for (auto& r : reuse) r = reference;
    for (auto& r : mor_reuse) r = mor_reference;
    scalar_points += 1;  // the reference point is always evaluated scalar
    first = 1;
  }

  const EngineOptions& options = impl_->options;

  // Scenario-batched tiling (kTransientDelay): hand workers tiles of
  // `lane_width` compatible points and step each tile as ONE SIMD batch.
  // Requires an explicit shared horizon — per-scenario default horizons
  // preclude a shared step grid — and a seeded reference (first == 1).
  std::size_t lane_width = 1;
  if (analysis == Analysis::kTransientDelay && options.t_stop > 0.0) {
    lane_width = options.lanes != 0 ? options.lanes : numeric::default_lane_width();
    if (!numeric::is_supported_lane_width(lane_width))
      throw std::invalid_argument(
          "SweepEngine: EngineOptions::lanes must be 1, 4, or 8");
  }

  if (lane_width > 1) {
    const std::size_t tiles = (n - first + lane_width - 1) / lane_width;
    impl_->pool.parallel_for(tiles, [&](std::size_t tile, std::size_t worker) {
      OBS_SPAN("sweep.tile");
      const std::size_t begin = first + tile * lane_width;
      const std::size_t count = std::min(lane_width, n - begin);
      const std::size_t before = numeric::sparse_lu_stats().symbolic;
      const std::size_t ejected_before = numeric::sparse_lu_stats().ejected_lanes;
      bool batched = false;
      if (count == lane_width) {
        std::vector<sim::Circuit> circuits;
        circuits.reserve(count);
        for (std::size_t k = 0; k < count; ++k)
          circuits.push_back(sim::build_gate_line_load(
              spec.at(begin + k).system, options.segments));
        sim::TransientOptions transient;
        transient.t_stop = options.t_stop;
        transient.dt = options.dt;
        transient.solver = options.solver;
        transient.reuse = &reuse[worker];
        const auto crossings = sim::run_batched_crossings(
            circuits, "out", 0.5, transient, "SweepEngine transient_delay");
        if (crossings) {
          for (std::size_t k = 0; k < count; ++k)
            out.values[begin + k] = (*crossings)[k];
          batched = true;
        }
      }
      // Remainder tiles (grid size not divisible by the lane width) and
      // ineligible batches evaluate scalar, point by point — bit-identical
      // to the batch by the batched-solver contract.
      if (!batched) {
        for (std::size_t k = 0; k < count; ++k)
          out.values[begin + k] =
              evaluate_point(spec.at(begin + k), analysis, options,
                             &reuse[worker], &mor_reuse[worker]);
      }
      (batched ? batched_points : scalar_points).fetch_add(count);
      symbolic.fetch_add(numeric::sparse_lu_stats().symbolic - before);
      ejected.fetch_add(numeric::sparse_lu_stats().ejected_lanes - ejected_before);
    });
    out.batched_points = batched_points.load();
    out.scalar_points = scalar_points.load();
    Impl::finalize(out, n, reuse, mor_reuse, symbolic, ejected, started);
    return out;
  }

  scalar_points += n - first;  // the non-tiled path is scalar point by point
  impl_->pool.parallel_for(n - first, [&](std::size_t i, std::size_t worker) {
    OBS_SPAN("sweep.point");
    const std::size_t flat = i + first;
    const Scenario scenario = spec.at(flat);
    // A point whose reduction_order differs from the basis's build order
    // cannot ride the projection (the basis FIXES q) — it gets a fresh
    // per-point reduction at its own order, like structural mismatches do.
    const bool point_projects =
        project && scenario.xtalk.reduction_order == basis_order;
    if (point_projects) OBS_COUNTER_ADD("reuse.projection_points", 1);
    const std::size_t before = numeric::sparse_lu_stats().symbolic;
    out.values[flat] = evaluate_point(scenario, analysis, options,
                                      seeded ? &reuse[worker] : nullptr,
                                      seeded ? &mor_reuse[worker] : nullptr,
                                      point_projects ? &basis : nullptr);
    symbolic.fetch_add(numeric::sparse_lu_stats().symbolic - before);
  });

  out.batched_points = batched_points.load();
  out.scalar_points = scalar_points.load();
  Impl::finalize(out, n, reuse, mor_reuse, symbolic, ejected, started);
  return out;
}

SweepResult SweepEngine::run_custom(
    std::size_t n,
    const std::function<double(std::size_t, PointContext&)>& eval) const {
  OBS_SPAN("sweep.run_custom");
  OBS_COUNTER_ADD("sweep.runs", 1);
  const numeric::fp_env_guard fp_guard("sweep::SweepEngine::run_custom");
  // Timing metadata only (elapsed_seconds), not a result value.
  const obs::Stopwatch started;
  SweepResult out;
  out.threads_used = impl_->pool.size();
  out.values.assign(n, kNaN);
  std::atomic<std::size_t> symbolic{0};
  std::atomic<std::size_t> ejected{0};
  std::vector<sim::SolverReuse> reuse(impl_->pool.size());
  std::vector<mor::ConductanceReuse> mor_reuse(impl_->pool.size());

  impl_->pool.parallel_for(n, [&](std::size_t i, std::size_t worker) {
    OBS_SPAN("sweep.point");
    PointContext ctx{&reuse[worker], &mor_reuse[worker], worker};
    const std::size_t before = numeric::sparse_lu_stats().symbolic;
    out.values[i] = eval(i, ctx);
    symbolic.fetch_add(numeric::sparse_lu_stats().symbolic - before);
  });

  out.scalar_points = n;  // custom evaluators never batch
  Impl::finalize(out, n, reuse, mor_reuse, symbolic, ejected, started);
  return out;
}

core::DesignBatchFn SweepEngine::repeater_batch() const {
  return [this](const tline::LineParams& line, const core::MinBuffer& buffer,
                const core::DelayFitConstants& fit,
                const std::vector<core::RepeaterDesign>& candidates,
                std::vector<double>& delays) {
    delays.assign(candidates.size(), kNaN);
    impl_->pool.parallel_for(candidates.size(), [&](std::size_t i, std::size_t) {
      delays[i] = core::total_delay(line, buffer, candidates[i], fit);
    });
  };
}

core::OptimizedDesign SweepEngine::optimize_repeater(const tline::LineParams& line,
                                                     const core::MinBuffer& buffer,
                                                     double min_sections) const {
  return core::optimize(line, buffer, impl_->options.fit, min_sections,
                        repeater_batch());
}

}  // namespace rlcsim::sweep
