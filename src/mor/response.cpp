#include "mor/response.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "numeric/optimize.h"
#include "numeric/roots.h"
#include "sim/builders.h"

namespace rlcsim::mor {
namespace {

using Complex = std::complex<double>;

// Extremum refinement inside a bracketing interval via the shared 1-D
// minimizer (`sign` = +1 maximizes by minimizing -f). The objective is a
// smooth exponential sum, so Brent's parabolic steps converge fast.
double refine_extremum(const std::function<double(double)>& f, double lo,
                       double hi, int sign) {
  numeric::MinimizeOptions options;
  options.x_tolerance = 1e-14 * std::max(std::fabs(hi), 1e-300);
  return numeric::brent_min(
             [&](double x) { return sign > 0 ? -f(x) : f(x); }, lo, hi,
             options)
      .x;
}

}  // namespace

AnalyticResponse::AnalyticResponse(double dc_offset) : dc_offset_(dc_offset) {}

void AnalyticResponse::add_step(const PoleResidueModel& h, double delta,
                                double start) {
  add_ramp(h, delta, 0.0, start);
}

void AnalyticResponse::add_ramp(const PoleResidueModel& h, double delta,
                                double rise, double start) {
  if (rise < 0.0 || !std::isfinite(rise))
    throw std::invalid_argument("AnalyticResponse: rise must be >= 0");
  if (start < 0.0 || !std::isfinite(start))
    throw std::invalid_argument("AnalyticResponse: start must be >= 0");
  Contribution c;
  c.delta = delta;
  c.rise = rise;
  c.dc = h.dc_gain;
  // The onset composes with the model's transport delay: the response is
  // exactly 0 until start + delay, which is all contribution_value needs.
  c.delay = h.delay + start;
  c.terms.reserve(h.poles.size());
  for (std::size_t i = 0; i < h.poles.size(); ++i) {
    const Complex p = h.poles[i];
    const Complex coefficient =
        rise > 0.0 ? h.residues[i] / (p * p) : h.residues[i] / p;
    c.terms.emplace_back(p, coefficient);
    if (p.real() < 0.0)
      slowest_tau_ = std::max(slowest_tau_, 1.0 / -p.real());
    max_omega_ = std::max(max_omega_, std::fabs(p.imag()));
  }
  max_rise_ = std::max(max_rise_, rise);
  max_delay_ = std::max(max_delay_, c.delay);
  contributions_.push_back(std::move(c));
}

double AnalyticResponse::contribution_value(const Contribution& c,
                                            double t) const {
  const double ts = t - c.delay;  // response is exactly 0 before the delay
  if (ts <= 0.0) return 0.0;
  if (c.rise == 0.0) {
    Complex sum = 0.0;
    for (const auto& [p, a] : c.terms) sum += a * std::exp(p * ts);
    return c.delta * (c.dc + sum.real());
  }
  // Ramp: (z(ts) - z(ts - rise)) / rise with z the step-response integral.
  const auto z = [&](double tau) {
    if (tau <= 0.0) return 0.0;
    Complex sum = 0.0;
    for (const auto& [p, a] : c.terms) sum += a * (std::exp(p * tau) - 1.0);
    return c.dc * tau + sum.real();
  };
  return c.delta * (z(ts) - z(ts - c.rise)) / c.rise;
}

double AnalyticResponse::value(double t) const {
  double v = dc_offset_;
  for (const auto& c : contributions_) v += contribution_value(c, t);
  return v;
}

namespace {
// Block width of the batched coarse scans. Stack lanes only — the pole loop
// is hoisted OUTSIDE the lane loop, so each (pole, coefficient) pair is
// loaded once per block instead of once per sample.
constexpr std::size_t kScanBlock = 8;
}  // namespace

void AnalyticResponse::values(const double* times, double* out,
                              std::size_t count) const {
  for (std::size_t base = 0; base < count; base += kScanBlock) {
    const std::size_t w = std::min(kScanBlock, count - base);
    const double* t = times + base;
    double* o = out + base;
    for (std::size_t i = 0; i < w; ++i) o[i] = dc_offset_;
    std::array<double, kScanBlock> ts;
    std::array<Complex, kScanBlock> sum_a, sum_b;
    for (const auto& c : contributions_) {
      for (std::size_t i = 0; i < w; ++i) ts[i] = t[i] - c.delay;
      sum_a.fill(Complex(0.0));
      if (c.rise == 0.0) {
        for (const auto& [p, a] : c.terms)
          for (std::size_t i = 0; i < w; ++i)
            if (ts[i] > 0.0) sum_a[i] += a * std::exp(p * ts[i]);
        for (std::size_t i = 0; i < w; ++i)
          if (ts[i] > 0.0) o[i] += c.delta * (c.dc + sum_a[i].real());
        continue;
      }
      // Ramp lanes carry BOTH z integrals — z(ts) and z(ts - rise) — through
      // one pass over the terms, each behind its own exact-onset guard so a
      // lane straddling the onset accumulates precisely what the scalar z
      // lambda would (nothing before it, the same term order after).
      sum_b.fill(Complex(0.0));
      for (const auto& [p, a] : c.terms) {
        for (std::size_t i = 0; i < w; ++i) {
          if (ts[i] > 0.0) sum_a[i] += a * (std::exp(p * ts[i]) - 1.0);
          const double tau = ts[i] - c.rise;
          if (tau > 0.0) sum_b[i] += a * (std::exp(p * tau) - 1.0);
        }
      }
      for (std::size_t i = 0; i < w; ++i) {
        if (ts[i] <= 0.0) continue;
        const double z_on = c.dc * ts[i] + sum_a[i].real();
        const double tau = ts[i] - c.rise;
        const double z_off = tau <= 0.0 ? 0.0 : c.dc * tau + sum_b[i].real();
        o[i] += c.delta * (z_on - z_off) / c.rise;
      }
    }
  }
}

double AnalyticResponse::final_value() const {
  double v = dc_offset_;
  for (const auto& c : contributions_) v += c.delta * c.dc;
  return v;
}

double AnalyticResponse::slowest_time_constant() const { return slowest_tau_; }

double AnalyticResponse::suggested_horizon() const {
  const double tau = slowest_tau_ > 0.0 ? slowest_tau_ : 1e-12;
  return 12.0 * tau + 2.0 * max_rise_ + max_delay_;
}

std::optional<double> AnalyticResponse::first_crossing(double level,
                                                       int direction,
                                                       double t_from) const {
  double window = suggested_horizon();
  for (int attempt = 0; attempt < 4; ++attempt) {
    // Enough samples to bracket every half-oscillation in the window, with a
    // floor for smooth responses and a cap against pathological requests.
    // The floor only needs to BRACKET the crossing (Brent refines it), and a
    // smooth exponential sum's features span many samples at 512 across a
    // 12-tau window — this scan is the repeater-bus composition's hot path.
    std::size_t samples = 512;
    if (max_omega_ > 0.0) {
      const double oscillations = window * max_omega_ / (2.0 * 3.14159265358979323846);
      samples = std::clamp<std::size_t>(
          static_cast<std::size_t>(32.0 * oscillations), samples, 1u << 18);
    }
    double prev_t = t_from;
    double prev_v = value(prev_t);
    // Coarse scan in blocks: sample times are batch-evaluated (values() is
    // bit-identical to per-sample value() calls), then the bracket test
    // walks the block scalar — so the bracket found, and the Brent result
    // refined from it, match the sample-at-a-time scan exactly.
    std::array<double, 8> block_t, block_v;
    for (std::size_t i = 1; i <= samples; i += block_t.size()) {
      const std::size_t w = std::min(block_t.size(), samples - i + 1);
      for (std::size_t k = 0; k < w; ++k)
        block_t[k] = t_from + window * static_cast<double>(i + k) /
                                  static_cast<double>(samples);
      values(block_t.data(), block_v.data(), w);
      for (std::size_t k = 0; k < w; ++k) {
        const double t = block_t[k];
        const double v = block_v[k];
        const bool rising = prev_v < level && v >= level;
        const bool falling = prev_v > level && v <= level;
        if ((direction >= 0 && rising) || (direction <= 0 && falling)) {
          // Absolute x tolerance scaled to the time window: the default
          // 1e-12 is meant for O(1) roots and would stop 3 decades early on
          // nanosecond-scale crossings.
          numeric::RootOptions tolerance;
          tolerance.x_tolerance = 1e-14 * window;
          return numeric::brent([&](double x) { return value(x) - level; },
                                prev_t, t, tolerance);
        }
        prev_t = t;
        prev_v = v;
      }
    }
    window *= 4.0;
  }
  return std::nullopt;
}

ResponseMetrics AnalyticResponse::measure(double drive_lo, double drive_hi,
                                          bool want_rise) const {
  ResponseMetrics metrics;
  const double swing = drive_hi - drive_lo;
  const int direction = swing > 0.0 ? +1 : -1;
  if (swing != 0.0) {
    metrics.delay_50 = first_crossing(drive_lo + 0.5 * swing, direction);
    if (want_rise) {
      const auto t10 = first_crossing(drive_lo + 0.1 * swing, direction);
      if (t10) {
        const auto t90 =
            first_crossing(drive_lo + 0.9 * swing, direction, *t10);
        if (t90) metrics.rise_10_90 = *t90 - *t10;
      }
    }
  }

  // Global extrema: scan the settled window, refine the best brackets (the
  // floor mirrors first_crossing's: Brent sharpens whatever the coarse scan
  // brackets, and peaks of a smooth exponential sum span many samples).
  const double horizon = suggested_horizon();
  std::size_t samples = 1024;
  if (max_omega_ > 0.0) {
    const double oscillations =
        horizon * max_omega_ / (2.0 * 3.14159265358979323846);
    samples = std::clamp<std::size_t>(
        static_cast<std::size_t>(32.0 * oscillations), samples, 1u << 18);
  }
  double max_v = value(0.0), min_v = max_v;
  std::size_t max_i = 0, min_i = 0;
  std::array<double, 8> block_t, block_v;
  for (std::size_t i = 1; i <= samples; i += block_t.size()) {
    const std::size_t w = std::min(block_t.size(), samples - i + 1);
    for (std::size_t k = 0; k < w; ++k)
      block_t[k] = horizon * static_cast<double>(i + k) /
                   static_cast<double>(samples);
    values(block_t.data(), block_v.data(), w);
    for (std::size_t k = 0; k < w; ++k) {
      const double v = block_v[k];
      if (v > max_v) {
        max_v = v;
        max_i = i + k;
      }
      if (v < min_v) {
        min_v = v;
        min_i = i + k;
      }
    }
  }
  const auto refine = [&](std::size_t i, int sign, double coarse) {
    if (i == 0 || i == samples) return coarse;
    const double dt = horizon / static_cast<double>(samples);
    const double t = refine_extremum([&](double x) { return value(x); },
                                     static_cast<double>(i - 1) * dt,
                                     static_cast<double>(i + 1) * dt, sign);
    return sign > 0 ? std::max(coarse, value(t)) : std::min(coarse, value(t));
  };
  metrics.peak_value = refine(max_i, +1, max_v);
  metrics.min_value = refine(min_i, -1, min_v);

  const double envelope_lo = std::min(drive_lo, drive_hi);
  const double envelope_hi = std::max(drive_lo, drive_hi);
  metrics.peak_noise = std::max(
      {0.0, envelope_lo - metrics.min_value, metrics.peak_value - envelope_hi});
  if (swing != 0.0) {
    const double past_final = direction > 0 ? metrics.peak_value - drive_hi
                                            : drive_hi - metrics.min_value;
    metrics.overshoot = std::max(0.0, past_final / std::fabs(swing));
  }
  return metrics;
}

double reduced_gate_delay(const tline::GateLineLoad& system, int segments,
                          int order, double threshold,
                          ConductanceReuse* reuse) {
  const sim::Circuit circuit = sim::build_gate_line_load(system, segments);
  const sim::MnaAssembler mna(circuit);
  const LinearSystem linear = make_linear_system(mna, {"out"});
  const MomentGenerator generator(linear, reuse);
  const std::vector<double> moments = generator.transfer_moments(
      linear.outputs[0], linear.inputs[0], 2 * order);
  const PoleResidueModel model =
      reduce_transfer(moments, order, system.line.time_of_flight());

  AnalyticResponse response;
  response.add_step(model, 1.0);
  const auto crossing = response.first_crossing(threshold, +1);
  if (!crossing)
    throw std::runtime_error(
        "reduced_gate_delay: reduced response never crossed the threshold "
        "within the (auto-extended) window");
  return *crossing;
}

}  // namespace rlcsim::mor
