#include "mor/moments.h"

#include <stdexcept>

#include "obs/obs.h"

namespace rlcsim::mor {
namespace {

bool same_structure(const numeric::SparsePattern& a, const numeric::SparsePattern& b) {
  return a.n == b.n && a.row_ptr == b.row_ptr && a.col_idx == b.col_idx;
}

}  // namespace

LinearSystem make_linear_system(const sim::MnaAssembler& mna,
                                const std::vector<std::string>& output_nodes) {
  LinearSystem system;

  std::vector<double> values;
  mna.conductance_values(values);
  system.G = numeric::RealSparse(mna.system_pattern(), values);
  mna.susceptance_values(values);
  system.C = numeric::RealSparse(mna.system_pattern(), std::move(values));

  const sim::Circuit& circuit = mna.circuit();
  const auto& vsources = circuit.voltage_sources();
  for (std::size_t k = 0; k < vsources.size(); ++k) {
    system.inputs.push_back(mna.vsource_vector(k));
    system.input_names.push_back(vsources[k].name.empty()
                                     ? "v" + std::to_string(k)
                                     : vsources[k].name);
  }
  const auto& isources = circuit.current_sources();
  for (std::size_t k = 0; k < isources.size(); ++k) {
    system.inputs.push_back(mna.isource_vector(k));
    system.input_names.push_back(isources[k].name.empty()
                                     ? "i" + std::to_string(k)
                                     : isources[k].name);
  }
  const auto& buffers = circuit.buffers();
  for (std::size_t k = 0; k < buffers.size(); ++k) {
    system.inputs.push_back(mna.buffer_vector(k));
    system.input_names.push_back(buffers[k].name.empty()
                                     ? "buf" + std::to_string(k)
                                     : buffers[k].name);
  }

  for (const std::string& name : output_nodes) {
    const auto node = circuit.find_node(name);
    if (!node)
      throw std::invalid_argument("make_linear_system: unknown output node '" +
                                  name + "'");
    system.outputs.push_back(mna.node_selector(*node));
    system.output_names.push_back(name);
  }
  return system;
}

MomentGenerator::MomentGenerator(const numeric::RealSparse& g,
                                 numeric::RealSparse c, ConductanceReuse* reuse)
    : c_(std::move(c)) {
  if (g.size() != c_.size())
    throw std::invalid_argument("MomentGenerator: G and C size mismatch");

  // Reuse contract (mirrors sim/transient.cpp): seed an empty record, replay
  // a structurally identical one, and run WITHOUT reuse on a mismatch so the
  // record never depends on which system a worker saw first.
  if (reuse) {
    if (!reuse->pattern) {
      reuse->pattern = g.pattern_ptr();
    } else if (!same_structure(*reuse->pattern, g.pattern())) {
      reuse = nullptr;
    }
  }
  if (reuse && reuse->symbolic) {
    lu_.emplace(*reuse->symbolic);  // copy factors: reuse the symbolic
    lu_->refactor(g);
    ++reuse->reuse_hits;
    OBS_COUNTER_ADD("reuse.conductance_hits", 1);
  } else {
    OBS_COUNTER_ADD("reuse.conductance_misses", 1);
    lu_.emplace(g);
    if (reuse)
      reuse->symbolic = std::make_shared<const numeric::RealSparseLu>(*lu_);
  }
}

MomentGenerator::MomentGenerator(const LinearSystem& system,
                                 ConductanceReuse* reuse)
    : MomentGenerator(system.G, system.C, reuse) {}

std::vector<double> MomentGenerator::solve(const std::vector<double>& b) const {
  return lu_->solve(b);
}

void MomentGenerator::advance(std::vector<double>& m) const {
  scratch_ = c_.multiply(m);
  lu_->solve_in_place(scratch_);
  for (std::size_t i = 0; i < scratch_.size(); ++i) m[i] = -scratch_[i];
}

std::vector<std::vector<double>> MomentGenerator::block_moments(
    const std::vector<double>& b, int order) const {
  if (order < 1)
    throw std::invalid_argument("block_moments: order must be >= 1");
  std::vector<std::vector<double>> moments;
  moments.reserve(static_cast<std::size_t>(order));
  moments.push_back(solve(b));
  for (int k = 1; k < order; ++k) {
    moments.push_back(moments.back());
    advance(moments.back());
  }
  return moments;
}

std::vector<double> MomentGenerator::transfer_moments(
    const std::vector<double>& output, const std::vector<double>& input,
    int count) const {
  if (count < 1)
    throw std::invalid_argument("transfer_moments: count must be >= 1");
  if (output.size() != size() || input.size() != size())
    throw std::invalid_argument("transfer_moments: vector size mismatch");
  std::vector<double> moments;
  moments.reserve(static_cast<std::size_t>(count));
  std::vector<double> m = solve(input);
  for (int k = 0; k < count; ++k) {
    if (k > 0) advance(m);
    double dot = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) dot += output[i] * m[i];
    moments.push_back(dot);
  }
  return moments;
}

}  // namespace rlcsim::mor
