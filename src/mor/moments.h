// Block moment computation for moment-matching model-order reduction.
//
// Every circuit this library builds is, between switching events, the linear
// descriptor system
//
//   (G + sC) x(s) = B u(s),   y(s) = L^T x(s)
//
// whose transfer functions expand around s = 0 as
//
//   H(s) = L^T [ sum_k (-G^{-1} C)^k G^{-1} B s^k ] = sum_k M_k s^k.
//
// The block moments m_k = (-G^{-1} C)^k G^{-1} b are the raw material of
// every reduction in mor/reduce.h (AWE/Pade and block Arnoldi alike), and
// computing them costs ONE sparse LU factorization of G — performed by the
// same numeric::SparseLu the transient/AC engines use, so its symbolic
// analysis can be recorded once and replayed across all moment orders AND
// all sweep points (ConductanceReuse, the mor analogue of sim::SolverReuse).
//
// Compare: a transient run solves thousands of (G + (factor/dt)C) systems;
// a q-th order reduction solves 2q triangular systems against one factored
// G. That ratio is the paper's "analytic vs dynamic simulation" argument
// replayed at arbitrary order.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "numeric/sparse.h"
#include "sim/mna.h"

namespace rlcsim::mor {

// ------------------------------------------------------------------ system

// The s-domain view of one assembled circuit: G and C share ONE sparsity
// pattern (sim::MnaAssembler::system_pattern()), inputs are unit-amplitude
// source incidence columns, outputs are node selectors.
struct LinearSystem {
  numeric::RealSparse G;
  numeric::RealSparse C;
  std::vector<std::vector<double>> inputs;   // B columns, size unknowns() each
  std::vector<std::vector<double>> outputs;  // L columns
  std::vector<std::string> input_names;      // source element names
  std::vector<std::string> output_names;     // observed node names

  std::size_t unknowns() const { return static_cast<std::size_t>(G.size()); }
};

// Extracts the LinearSystem of an assembled circuit: one input column per
// voltage source, per current source, and per buffer output stage (in that
// order, named by element); one output column per requested node name.
// Throws std::invalid_argument for unknown node names.
LinearSystem make_linear_system(const sim::MnaAssembler& mna,
                                const std::vector<std::string>& output_nodes);

// ------------------------------------------------------------------- reuse

// Cross-point symbolic-factorization reuse for the G factorization, with the
// exact contract of sim::SolverReuse: the first generator seeds the record,
// later generators over a structurally identical pattern copy the recorded
// symbolic and refactor numerically, and a mismatching pattern runs fresh
// WITHOUT touching the record (so pivot orders never depend on evaluation
// order — the sweep engine's bit-identical-at-any-thread-count guarantee).
struct ConductanceReuse {
  numeric::SparsePatternPtr pattern;
  std::shared_ptr<const numeric::RealSparseLu> symbolic;
  std::size_t reuse_hits = 0;
};

// --------------------------------------------------------------- generator

// Factors G once (symbolic + numeric, or numeric-only via ConductanceReuse)
// and serves the Krylov recurrence m_0 = G^{-1} b, m_{k+1} = -G^{-1} C m_k.
// Throws std::runtime_error if G is singular (a node with no DC path — the
// same circuits Circuit::validate() already rejects).
class MomentGenerator {
 public:
  MomentGenerator(const numeric::RealSparse& g, numeric::RealSparse c,
                  ConductanceReuse* reuse = nullptr);
  explicit MomentGenerator(const LinearSystem& system,
                           ConductanceReuse* reuse = nullptr);

  std::size_t size() const { return static_cast<std::size_t>(c_.size()); }

  // m_0 = G^{-1} b.
  std::vector<double> solve(const std::vector<double>& b) const;
  // m <- -G^{-1} (C m): one Krylov step, no allocation beyond LU scratch.
  void advance(std::vector<double>& m) const;

  // The first `order` block moments of one input column.
  std::vector<std::vector<double>> block_moments(const std::vector<double>& b,
                                                 int order) const;

  // The first `count` scalar transfer moments m_k = l^T (-G^{-1}C)^k G^{-1} b.
  // A q-pole Pade model needs count = 2q.
  std::vector<double> transfer_moments(const std::vector<double>& output,
                                       const std::vector<double>& input,
                                       int count) const;

 private:
  numeric::RealSparse c_;
  std::optional<numeric::RealSparseLu> lu_;  // engaged in every constructor
  mutable std::vector<double> scratch_;
};

}  // namespace rlcsim::mor
