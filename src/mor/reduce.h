// Model-order reduction: AWE-style Pade pole extraction and block-Arnoldi
// (PRIMA-style) projection.
//
// Two reductions over the moments of mor/moments.h, with different sweet
// spots:
//
//  * pade_reduce — single transfer function H(s) = sum m_k s^k matched to a
//    q-pole pole-residue model (the [q-1/q] Pade approximant; the paper's
//    two-pole model IS this at q = 2). Moments are rescaled to O(1) in an
//    internal time unit before any dense solve (raw moments shrink like
//    b1^k ~ (1e-9)^k and underflow by k ~ 8 otherwise), the Hankel system
//    gives the denominator, Durand-Kerner gives the poles, and a complex
//    Vandermonde moment fit gives the residues — matching moment 0 exactly,
//    so the model's DC value is the true DC value and threshold delays
//    measured against the final value are consistent. Standard AWE
//    instability fallback: a singular Hankel system, unverifiable roots, or
//    right-half-plane poles retry at order q-1 (down to 1, which is the
//    always-stable Elmore model).
//
//  * arnoldi_reduce — orthogonalized block-Krylov projection for multi-input
//    systems (coupled buses): span{G^-1 B, (-G^-1 C) G^-1 B, ...} is built
//    with twice-iterated modified Gram-Schmidt and deflation, and the
//    ReducedModel holds the projected Ghat/Chat/Bhat/Lhat. All inputs share
//    one reduced pole set; pole_residue() extracts any (output, input) entry
//    as a pole-residue model via the reduced pencil's eigenvalues
//    (Faddeev-LeVerrier characteristic polynomial + Durand-Kerner — fine at
//    the q <= ~12 this layer targets) with spurious right-half-plane poles
//    dropped and residues refit (so DC stays exact).
//
// Stability/passivity diagnostics ride along in the models: max_real_pole,
// fallback counts, and deflation counts.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "mor/moments.h"
#include "numeric/matrix.h"

namespace rlcsim::mor {

// ---------------------------------------------------------- pole-residue

// H(s) = e^{-s delay} * sum_i residues[i] / (s - poles[i]). Conjugate pairs
// are stored adjacently (positive-imaginary first) and exactly symmetrized,
// so time responses are exactly real. An order-0 model is the zero transfer.
//
// The `delay` term is the transport-delay extraction low-loss lines need: a
// near-lossless line's response is a wavefront arriving at the time of
// flight, which no low-order rational function reproduces — but e^{-s td}
// times a LOW-order rational does. reduce_transfer() picks td; plain
// pade_reduce() leaves it 0.
struct PoleResidueModel {
  std::vector<std::complex<double>> poles;     // rad/s, Re < 0 when stable
  std::vector<std::complex<double>> residues;
  double delay = 0.0;  // pure transport delay factored out, seconds

  int requested_order = 0;  // q asked for
  int order = 0;            // poles actually kept
  int fallbacks = 0;        // order reductions / unstable poles dropped
  double dc_gain = 0.0;     // H(0) = -sum Re(r/p); matches moment 0 exactly
  double max_real_pole = 0.0;  // stability margin: < 0 iff stable
  bool stable = true;

  std::complex<double> transfer(std::complex<double> s) const;
  // k-th Taylor moment of the model, -sum Re(r / p^(k+1)) — for verifying
  // how many of the input moments survived the fallbacks.
  double moment(int k) const;
  // Zero-state unit-step output at time t (closed form).
  double step_response(double t) const;
};

// AWE/Pade reduction of the first 2*order transfer moments (moments.size()
// must be >= 2*order). All-zero moments yield the order-0 zero model (a
// decoupled transfer). Throws std::invalid_argument for bad arguments and
// std::runtime_error if no stable model exists even at order 1.
PoleResidueModel pade_reduce(const std::vector<double>& moments, int order);

// Moments of e^{s delay} H(s) given the moments of H — the binomial
// recombination m'_k = sum_j m_{k-j} delay^j / j! that shifts a pure
// transport delay OUT of a moment sequence before rational fitting.
std::vector<double> extract_delay(const std::vector<double>& moments,
                                  double delay);

// The standard single-transfer reduction: AWE with stability-guided
// transport-delay extraction. Tries td in {1, 3/4, 1/2, 1/4, 0} * max_delay
// (pass the line's time of flight) and keeps the largest extraction whose
// RATIONAL part still admits a stable full-order Pade fit — over-extraction
// announces itself as Hankel instability, so stability at full order is the
// selection rule. Falls back to the highest achieved order otherwise.
// max_delay <= 0 degenerates to pade_reduce. Throws like pade_reduce when
// even td = 0 admits no stable model.
PoleResidueModel reduce_transfer(const std::vector<double>& moments, int order,
                                 double max_delay);

// ------------------------------------------------------------- projection

// The projected descriptor system Vt(G,C,B,L)V of a block-Arnoldi basis V.
struct ReducedModel {
  numeric::RealMatrix G, C;  // q x q
  numeric::RealMatrix B;     // q x inputs
  numeric::RealMatrix L;     // q x outputs
  std::vector<std::string> input_names, output_names;
  int deflated = 0;  // Krylov candidates dropped as linearly dependent

  int order() const { return static_cast<int>(G.rows()); }
  std::size_t input_count() const { return B.cols(); }
  std::size_t output_count() const { return L.cols(); }
};

// The orthonormal block-Krylov basis V of an arnoldi_reduce run, exposed so
// a SWEEP can project once at a nominal point and re-evaluate only the
// projected Ghat/Chat/Bhat/Lhat at every other point (project_onto below) —
// pure sparse matvecs and dot products, no LU factorization at all per
// point. The basis is exact at the point it was built and an approximation
// elsewhere; accuracy degrades smoothly with parameter distance (the
// reuse-vs-reprojection test pins the bound the sweep engine relies on).
struct ArnoldiBasis {
  std::vector<std::vector<double>> vectors;  // orthonormal, size n each
  std::size_t order() const { return vectors.size(); }
  std::size_t dimension() const { return vectors.empty() ? 0 : vectors.front().size(); }
};

// Block-Arnoldi projection of `system` to (at most) `order` dimensions.
// `order` is the TOTAL reduced dimension; it should be >= the input count
// or the first Krylov block itself is truncated (some inputs lose even
// their DC match). Breakdown (Krylov space exhausted) returns a smaller
// model than requested — check order(). `basis_out`, when given, receives
// the projection basis for later project_onto() reuse.
ReducedModel arnoldi_reduce(const LinearSystem& system, int order,
                            ConductanceReuse* reuse = nullptr,
                            ArnoldiBasis* basis_out = nullptr);

// Re-projects a (value-changed, structurally identical) system onto a
// previously computed basis: Ghat = V^T G V, Chat = V^T C V, Bhat = V^T B,
// Lhat = V^T L. No factorization, no Krylov recurrence — the per-point cost
// of basis-reuse sweeps. Throws std::invalid_argument when the basis
// dimension does not match the system's unknown count.
ReducedModel project_onto(const LinearSystem& system, const ArnoldiBasis& basis);

// Pole-residue extraction of one (output, input) entry of the reduced
// model. All entries share the reduced pencil's poles; spurious unstable
// poles are dropped (counted in fallbacks) and residues refit against the
// reduced moments, matching moment 0 exactly. Throws std::runtime_error if
// the reduced G is singular or no pole survives.
PoleResidueModel pole_residue(const ReducedModel& model, int output, int input);

}  // namespace rlcsim::mor
