// Closed-form time responses and waveform metrics of pole-residue models.
//
// Once a circuit is reduced to poles and residues (mor/reduce.h), every
// waveform this library measures becomes an explicit exponential sum:
//
//   step:  y(t) = H(0) + sum Re( (r/p) e^{pt} )
//   ramp:  y(t) = (z(t) - z(t - rise)) / rise,
//          z(t) = H(0) t + sum Re( (r/p^2)(e^{pt} - 1) )
//
// so 50% delay, 10-90% rise, overshoot and peak noise are root- and
// peak-finding problems ON A FORMULA — no time stepping, no LU solves, no
// waveform storage. An AnalyticResponse superposes any number of weighted
// contributions (one per switching driver of a bus) plus a DC offset, which
// is exactly how the coupled-bus victim waveform decomposes by linearity.
//
// Crossing searches mirror sim::run_until_crossing semantics: a scan window
// derived from the model's own time constants, auto-extended x4 up to 4
// attempts, then sub-sample refinement (Brent) — but each probe evaluates
// the closed form directly.
#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "mor/moments.h"
#include "mor/reduce.h"
#include "tline/transfer.h"

namespace rlcsim::mor {

// Waveform metrics of one analytic response against its drive envelope
// [drive_lo, drive_hi] (initial -> final drive level). Optional fields are
// absent — never 0 — when the response does not define them.
struct ResponseMetrics {
  std::optional<double> delay_50;    // first crossing of the 50% level, s
  std::optional<double> rise_10_90;  // 10% -> 90% transition time, s
  double overshoot = 0.0;   // peak excursion past the final level / |swing|
  double peak_noise = 0.0;  // excursion outside the drive envelope, volts
  double peak_value = 0.0;  // global max over the measured window
  double min_value = 0.0;   // global min over the measured window
};

// A superposition of closed-form step/ramp responses: the victim waveform of
// an N-driver bus is dc_offset + sum_j delta_j * response_j(t).
class AnalyticResponse {
 public:
  explicit AnalyticResponse(double dc_offset = 0.0);

  // Adds `delta` times the unit-step response of `h` (the driver steps by
  // delta volts at t = `start` >= 0 — nonzero onsets are how stage-composed
  // repeater chains superpose drivers that fire at different absolute
  // times; the onset simply adds to the model's transport delay).
  void add_step(const PoleResidueModel& h, double delta, double start = 0.0);
  // Same but the driver ramps linearly over `rise` seconds (> 0) from the
  // onset.
  void add_ramp(const PoleResidueModel& h, double delta, double rise,
                double start = 0.0);

  double value(double t) const;
  // Batched evaluation: out[i] = value(times[i]) for `count` samples,
  // evaluated ONE POLE-LOOP PASS PER CONTRIBUTION across a block of lanes
  // (internally chunked to 8) instead of re-walking every contribution's
  // term list per sample — the amortization the coarse crossing/extrema
  // scans ride. Per-sample results are bit-identical to value(): each lane
  // accumulates dc offset, contributions, and pole terms in the exact
  // scalar order, with the same exact-zero onset guards.
  void values(const double* times, double* out, std::size_t count) const;
  double initial_value() const { return value(0.0); }
  double final_value() const;

  // Slowest decay constant max 1/|Re p| over all stable poles (0 if none).
  double slowest_time_constant() const;
  // Default scan window: the response has settled well within it.
  double suggested_horizon() const;

  // First crossing of `level` at/after t_from in the given direction
  // (+1 rising, -1 falling, 0 either), with the auto-extending window.
  // absent = never crosses (run_until_crossing throws here; callers choose).
  std::optional<double> first_crossing(double level, int direction = +1,
                                       double t_from = 0.0) const;

  // All metrics against the drive envelope [drive_lo -> drive_hi]
  // (drive_lo = initial drive level, drive_hi = final). delay_50/rise are
  // absent when the envelope has no swing (a quiet victim). `want_rise`
  // skips the two 10%/90% crossing scans for callers that only consume
  // delay and peaks (the reduced-crosstalk hot path).
  ResponseMetrics measure(double drive_lo, double drive_hi,
                          bool want_rise = true) const;

 private:
  struct Contribution {
    double delta = 0.0;
    double rise = 0.0;   // 0 = ideal step
    double dc = 0.0;     // model DC gain
    double delay = 0.0;  // transport delay + onset (response is 0 before it)
    // (pole, residue/pole) for steps; (pole, residue/pole^2) for ramps.
    std::vector<std::pair<std::complex<double>, std::complex<double>>> terms;
  };
  double contribution_value(const Contribution& c, double t) const;

  double dc_offset_ = 0.0;
  std::vector<Contribution> contributions_;
  double max_rise_ = 0.0;
  double max_delay_ = 0.0;
  double slowest_tau_ = 0.0;
  double max_omega_ = 0.0;  // largest |Im p|: sets the scan resolution
};

// Convenience single-line entry point: the analytic counterpart of
// sim::simulate_gate_line_delay. Builds the same N-segment ladder circuit,
// AWE-reduces the source->out transfer to `order` poles, and returns the
// first crossing of `threshold` (x 1 V step). Throws std::runtime_error if
// the reduced response never crosses.
double reduced_gate_delay(const tline::GateLineLoad& system, int segments,
                          int order, double threshold = 0.5,
                          ConductanceReuse* reuse = nullptr);

}  // namespace rlcsim::mor
