#include "mor/reduce.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "numeric/polynomial.h"
#include "obs/obs.h"

namespace rlcsim::mor {
namespace {

using Complex = std::complex<double>;

constexpr double kInf = std::numeric_limits<double>::infinity();

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm(const std::vector<double>& a) { return std::sqrt(dot(a, a)); }

// Characteristic time unit of a moment sequence: the geometric mean of the
// consecutive-moment ratios |m_{k+1}/m_k|, which all sit near the system's
// dominant time constant. Dividing moment k by T^k maps the whole sequence
// to O(1) so the Hankel/Vandermonde solves below stay inside double range
// (raw moments scale like (1e-9 s)^k and underflow around k = 8).
double moment_time_scale(const std::vector<double>& moments) {
  double log_sum = 0.0;
  int count = 0;
  for (std::size_t k = 0; k + 1 < moments.size(); ++k) {
    if (moments[k] != 0.0 && moments[k + 1] != 0.0) {
      log_sum += std::log(std::fabs(moments[k + 1] / moments[k]));
      ++count;
    }
  }
  return count > 0 ? std::exp(log_sum / count) : 1.0;
}

std::vector<double> scale_moments(const std::vector<double>& moments, double t) {
  std::vector<double> mu(moments.size());
  double tk = 1.0;
  for (std::size_t k = 0; k < moments.size(); ++k) {
    mu[k] = moments[k] / tk;
    tk *= t;
  }
  return mu;
}

bool all_zero(const std::vector<double>& values) {
  for (double v : values)
    if (v != 0.0) return false;
  return true;
}

// Durand-Kerner returns best-effort roots without a convergence signal, so
// every root is checked against the polynomial's magnitude scale; a failed
// check triggers the caller's fallback instead of producing garbage poles.
bool roots_verified(const std::vector<double>& coeffs,
                    const std::vector<Complex>& roots) {
  for (Complex z : roots) {
    if (!std::isfinite(z.real()) || !std::isfinite(z.imag())) return false;
    const double az = std::abs(z);
    double scale = 0.0, zk = 1.0;
    for (double c : coeffs) {
      scale += std::fabs(c) * zk;
      zk *= az;
    }
    if (std::abs(numeric::polyval(coeffs, z)) > 1e-6 * std::max(scale, 1e-300))
      return false;
  }
  return true;
}

// Snaps the root set of a real polynomial to exact conjugate symmetry
// (greedy nearest-conjugate pairing; near-real roots collapse onto the real
// axis) and sorts it deterministically: dominant (smallest |Re|) first,
// conjugate pairs adjacent with the positive-imaginary member leading.
std::vector<Complex> symmetrize_conjugates(const std::vector<Complex>& roots) {
  std::vector<std::vector<Complex>> groups;  // one real root or one pair
  std::vector<Complex> rest;
  for (Complex z : roots) {
    if (std::fabs(z.imag()) <= 1e-8 * std::abs(z))
      groups.push_back({Complex(z.real(), 0.0)});
    else
      rest.push_back(z);
  }
  while (!rest.empty()) {
    const Complex z = rest.front();
    rest.erase(rest.begin());
    if (rest.empty()) {  // conjugate-less orphan: numerical dust, make real
      groups.push_back({Complex(z.real(), 0.0)});
      break;
    }
    std::size_t best = 0;
    double best_distance = kInf;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      const double d = std::abs(std::conj(rest[i]) - z);
      if (d < best_distance) {
        best_distance = d;
        best = i;
      }
    }
    Complex p = 0.5 * (z + std::conj(rest[best]));
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(best));
    if (p.imag() < 0.0) p = std::conj(p);
    groups.push_back({p, std::conj(p)});
  }
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<Complex>& a, const std::vector<Complex>& b) {
              const Complex za = a.front(), zb = b.front();
              if (std::fabs(za.real()) != std::fabs(zb.real()))
                return std::fabs(za.real()) < std::fabs(zb.real());
              if (std::fabs(za.imag()) != std::fabs(zb.imag()))
                return std::fabs(za.imag()) < std::fabs(zb.imag());
              return za.real() < zb.real();
            });
  std::vector<Complex> out;
  for (const auto& g : groups) out.insert(out.end(), g.begin(), g.end());
  return out;
}

// Solves sum_i r_i * (-1 / p_i^{k+1}) = mu_k for k = 0..n-1 — the residues
// that reproduce the first n moments, including mu_0 (the DC value) exactly.
// `poles` must be conjugate-symmetrized with pairs adjacent; the result is
// forced to the same symmetry so time responses are exactly real. Throws
// std::runtime_error on a singular system (repeated poles).
std::vector<Complex> fit_residues(const std::vector<Complex>& poles,
                                  const std::vector<double>& mu) {
  const std::size_t n = poles.size();
  numeric::ComplexMatrix a(n, n);
  std::vector<Complex> rhs(n);
  std::vector<Complex> inv_power(n);
  for (std::size_t i = 0; i < n; ++i) inv_power[i] = 1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      inv_power[i] /= poles[i];
      a(k, i) = -inv_power[i];
    }
    rhs[k] = mu[k];
  }
  std::vector<Complex> r = numeric::ComplexLu(std::move(a)).solve(rhs);
  for (std::size_t i = 0; i < n;) {
    if (poles[i].imag() == 0.0) {
      r[i] = Complex(r[i].real(), 0.0);
      ++i;
    } else {
      const Complex avg = 0.5 * (r[i] + std::conj(r[i + 1]));
      r[i] = avg;
      r[i + 1] = std::conj(avg);
      i += 2;
    }
  }
  return r;
}

void finalize(PoleResidueModel& model) {
  model.max_real_pole = -kInf;
  model.stable = true;
  Complex dc = 0.0;
  for (std::size_t i = 0; i < model.poles.size(); ++i) {
    model.max_real_pole = std::max(model.max_real_pole, model.poles[i].real());
    if (!(model.poles[i].real() < 0.0)) model.stable = false;
    dc += model.residues[i] / model.poles[i];
  }
  model.dc_gain = -dc.real();
  model.order = static_cast<int>(model.poles.size());
}

PoleResidueModel zero_model(int requested_order) {
  PoleResidueModel model;
  model.requested_order = requested_order;
  model.max_real_pole = -kInf;
  return model;
}

// Coefficients (lowest degree first, for polyroots) of det(lambda I - M)
// via the Faddeev-LeVerrier recurrence — exact in O(q^4), fine at q <= ~16.
std::vector<double> characteristic_polynomial(const numeric::RealMatrix& m) {
  const std::size_t q = m.rows();
  const auto trace = [](const numeric::RealMatrix& a) {
    double t = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) t += a(i, i);
    return t;
  };
  std::vector<double> c(q);  // c[k-1] = c_k of lambda^q + c_1 lambda^{q-1} + ...
  numeric::RealMatrix mk = m;
  c[0] = -trace(mk);
  for (std::size_t k = 2; k <= q; ++k) {
    numeric::RealMatrix shifted = mk;
    for (std::size_t i = 0; i < q; ++i) shifted(i, i) += c[k - 2];
    mk = m * shifted;
    c[k - 1] = -trace(mk) / static_cast<double>(k);
  }
  std::vector<double> coeffs(q + 1);
  coeffs[q] = 1.0;
  for (std::size_t k = 1; k <= q; ++k) coeffs[q - k] = c[k - 1];
  return coeffs;
}

}  // namespace

// ------------------------------------------------------------ pole-residue

std::complex<double> PoleResidueModel::transfer(std::complex<double> s) const {
  Complex h = 0.0;
  for (std::size_t i = 0; i < poles.size(); ++i)
    h += residues[i] / (s - poles[i]);
  return delay > 0.0 ? std::exp(-s * delay) * h : h;
}

double PoleResidueModel::moment(int k) const {
  // Rational moments first, then recombine with e^{-s delay} when present.
  std::vector<Complex> rational(static_cast<std::size_t>(k) + 1, 0.0);
  for (std::size_t i = 0; i < poles.size(); ++i) {
    Complex inv_power = 1.0;
    for (int j = 0; j <= k; ++j) {
      inv_power /= poles[i];
      rational[static_cast<std::size_t>(j)] -= residues[i] * inv_power;
    }
  }
  if (delay <= 0.0) return rational[static_cast<std::size_t>(k)].real();
  Complex sum = 0.0;
  double term = 1.0;  // (-delay)^j / j!
  for (int j = 0; j <= k; ++j) {
    sum += rational[static_cast<std::size_t>(k - j)] * term;
    term *= -delay / static_cast<double>(j + 1);
  }
  return sum.real();
}

double PoleResidueModel::step_response(double t) const {
  const double ts = t - delay;
  if (ts < 0.0) return 0.0;
  Complex y = 0.0;
  for (std::size_t i = 0; i < poles.size(); ++i)
    y += residues[i] / poles[i] * std::exp(poles[i] * ts);
  return dc_gain + y.real();
}

// -------------------------------------------------------------------- AWE

PoleResidueModel pade_reduce(const std::vector<double>& moments, int order) {
  OBS_SPAN("mor.pade_reduce");
  OBS_COUNTER_ADD("mor.pade_reductions", 1);
  if (order < 1) throw std::invalid_argument("pade_reduce: order must be >= 1");
  if (moments.size() < 2 * static_cast<std::size_t>(order))
    throw std::invalid_argument("pade_reduce: need 2*order moments");
  if (all_zero(moments)) return zero_model(order);

  const double t_unit = moment_time_scale(moments);
  const std::vector<double> mu = scale_moments(moments, t_unit);

  for (int q = order; q >= 1; --q) {
    // Denominator 1 + a_1 s + ... + a_q s^q from the moment equations
    // m_{q+k} + sum_j a_j m_{q+k-j} = 0, k = 0..q-1 (the Hankel system).
    numeric::RealMatrix hankel(static_cast<std::size_t>(q),
                               static_cast<std::size_t>(q));
    std::vector<double> rhs(static_cast<std::size_t>(q));
    for (int k = 0; k < q; ++k) {
      for (int j = 1; j <= q; ++j)
        hankel(static_cast<std::size_t>(k), static_cast<std::size_t>(j - 1)) =
            mu[static_cast<std::size_t>(q + k - j)];
      rhs[static_cast<std::size_t>(k)] = -mu[static_cast<std::size_t>(q + k)];
    }
    std::vector<double> denominator(static_cast<std::size_t>(q) + 1);
    denominator[0] = 1.0;
    try {
      const std::vector<double> a = numeric::RealLu(std::move(hankel)).solve(rhs);
      for (int j = 1; j <= q; ++j)
        denominator[static_cast<std::size_t>(j)] = a[static_cast<std::size_t>(j - 1)];
    } catch (const std::runtime_error&) {
      continue;  // singular Hankel: the classic AWE order fallback
    }

    const std::vector<Complex> raw_roots = numeric::polyroots(denominator);
    if (raw_roots.size() != static_cast<std::size_t>(q) ||
        !roots_verified(denominator, raw_roots))
      continue;
    const std::vector<Complex> poles_scaled = symmetrize_conjugates(raw_roots);

    bool stable_set = true;
    for (Complex p : poles_scaled)
      if (!(p.real() < 0.0)) stable_set = false;
    if (!stable_set) continue;  // RHP pole: fall back one order

    std::vector<Complex> residues_scaled;
    try {
      residues_scaled = fit_residues(
          poles_scaled, std::vector<double>(mu.begin(), mu.begin() + q));
    } catch (const std::runtime_error&) {
      continue;  // repeated poles: fall back one order
    }

    PoleResidueModel model;
    model.requested_order = order;
    model.fallbacks = order - q;
    model.poles.reserve(static_cast<std::size_t>(q));
    model.residues.reserve(static_cast<std::size_t>(q));
    for (int i = 0; i < q; ++i) {
      model.poles.push_back(poles_scaled[static_cast<std::size_t>(i)] / t_unit);
      model.residues.push_back(residues_scaled[static_cast<std::size_t>(i)] /
                               t_unit);
    }
    finalize(model);
    return model;
  }
  throw std::runtime_error(
      "pade_reduce: no stable reduced model down to order 1 (the moment "
      "sequence is not that of a stable system)");
}

std::vector<double> extract_delay(const std::vector<double>& moments,
                                  double delay) {
  std::vector<double> out(moments.size());
  for (std::size_t k = 0; k < moments.size(); ++k) {
    double term = 1.0;  // delay^j / j!
    double sum = 0.0;
    for (std::size_t j = 0; j <= k; ++j) {
      sum += moments[k - j] * term;
      term *= delay / static_cast<double>(j + 1);
    }
    out[k] = sum;
  }
  return out;
}

PoleResidueModel reduce_transfer(const std::vector<double>& moments, int order,
                                 double max_delay) {
  if (!(max_delay > 0.0)) return pade_reduce(moments, order);

  PoleResidueModel best;
  bool have_best = false;
  for (double fraction : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    const double td = fraction * max_delay;
    PoleResidueModel candidate;
    try {
      candidate = pade_reduce(extract_delay(moments, td), order);
    } catch (const std::runtime_error&) {
      continue;  // this much extraction leaves no stable rational at any order
    }
    candidate.delay = candidate.order > 0 ? td : 0.0;
    if (!have_best || candidate.order > best.order) {
      best = candidate;
      have_best = true;
    }
    if (candidate.order == order) break;  // full order at the largest td wins
  }
  if (!have_best)
    throw std::runtime_error(
        "reduce_transfer: no stable reduced model at any extraction depth");
  return best;
}

// ---------------------------------------------------------- block Arnoldi

namespace {

// Projects (G, C, B, L) onto an orthonormal basis — the shared tail of
// arnoldi_reduce and the per-point body of project_onto.
ReducedModel project_system(const LinearSystem& system,
                            const std::vector<std::vector<double>>& basis,
                            int deflated) {
  const std::size_t q = basis.size();
  ReducedModel model;
  model.deflated = deflated;
  model.input_names = system.input_names;
  model.output_names = system.output_names;
  model.G = numeric::RealMatrix(q, q);
  model.C = numeric::RealMatrix(q, q);
  model.B = numeric::RealMatrix(q, system.inputs.size());
  model.L = numeric::RealMatrix(q, system.outputs.size());
  for (std::size_t j = 0; j < q; ++j) {
    const std::vector<double> gv = system.G.multiply(basis[j]);
    const std::vector<double> cv = system.C.multiply(basis[j]);
    for (std::size_t i = 0; i < q; ++i) {
      model.G(i, j) = dot(basis[i], gv);
      model.C(i, j) = dot(basis[i], cv);
    }
  }
  for (std::size_t k = 0; k < system.inputs.size(); ++k)
    for (std::size_t i = 0; i < q; ++i)
      model.B(i, k) = dot(basis[i], system.inputs[k]);
  for (std::size_t k = 0; k < system.outputs.size(); ++k)
    for (std::size_t i = 0; i < q; ++i)
      model.L(i, k) = dot(basis[i], system.outputs[k]);
  return model;
}

}  // namespace

ReducedModel arnoldi_reduce(const LinearSystem& system, int order,
                            ConductanceReuse* reuse, ArnoldiBasis* basis_out) {
  OBS_SPAN("mor.arnoldi_reduce");
  OBS_COUNTER_ADD("mor.arnoldi_reductions", 1);
  if (order < 1)
    throw std::invalid_argument("arnoldi_reduce: order must be >= 1");
  if (system.inputs.empty() || system.outputs.empty())
    throw std::invalid_argument("arnoldi_reduce: need at least one input and output");

  const MomentGenerator generator(system, reuse);
  const std::size_t target = static_cast<std::size_t>(order);

  std::vector<std::vector<double>> basis;
  int deflated = 0;

  // Twice-iterated modified Gram-Schmidt: orthogonalize `w` against the
  // basis; returns false (deflation) when w is linearly dependent.
  const auto orthonormalize = [&](std::vector<double>& w) {
    const double norm0 = norm(w);
    if (!(norm0 > 0.0)) return false;
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& v : basis) {
        const double h = dot(v, w);
        for (std::size_t i = 0; i < w.size(); ++i) w[i] -= h * v[i];
      }
    }
    const double norm1 = norm(w);
    if (!(norm1 > 1e-10 * norm0)) return false;
    for (double& x : w) x /= norm1;
    return true;
  };

  // Block 0: orth(G^-1 B). Later blocks: orth(-G^-1 C V_prev).
  std::vector<std::vector<double>> block;
  block.reserve(system.inputs.size());
  for (const auto& b : system.inputs) block.push_back(generator.solve(b));
  while (basis.size() < target && !block.empty()) {
    std::vector<std::vector<double>> accepted;
    for (auto& w : block) {
      if (basis.size() == target) break;
      if (orthonormalize(w)) {
        basis.push_back(w);
        accepted.push_back(std::move(w));
      } else {
        ++deflated;
      }
    }
    block.clear();
    if (basis.size() == target) break;
    for (auto& v : accepted) {
      block.push_back(v);
      generator.advance(block.back());
    }
  }
  if (basis.empty())
    throw std::runtime_error("arnoldi_reduce: immediate breakdown (B = 0)");

  ReducedModel model = project_system(system, basis, deflated);
  if (basis_out) basis_out->vectors = std::move(basis);
  return model;
}

ReducedModel project_onto(const LinearSystem& system, const ArnoldiBasis& basis) {
  OBS_COUNTER_ADD("mor.projections", 1);
  if (basis.order() == 0)
    throw std::invalid_argument("project_onto: empty basis");
  if (basis.dimension() != system.unknowns())
    throw std::invalid_argument(
        "project_onto: basis dimension does not match the system's unknown "
        "count (structurally different circuit)");
  return project_system(system, basis.vectors, /*deflated=*/0);
}

PoleResidueModel pole_residue(const ReducedModel& model, int output, int input) {
  if (input < 0 || static_cast<std::size_t>(input) >= model.input_count())
    throw std::invalid_argument("pole_residue: input index out of range");
  if (output < 0 || static_cast<std::size_t>(output) >= model.output_count())
    throw std::invalid_argument("pole_residue: output index out of range");
  const std::size_t q = static_cast<std::size_t>(model.order());
  if (q == 0) return zero_model(0);

  numeric::RealMatrix ghat = model.G;
  const numeric::RealLu glu(std::move(ghat));

  // Reduced transfer moments (dense Krylov on the q x q model).
  std::vector<double> b(q), l(q);
  for (std::size_t i = 0; i < q; ++i) {
    b[i] = model.B(i, static_cast<std::size_t>(input));
    l[i] = model.L(i, static_cast<std::size_t>(output));
  }
  std::vector<double> moments;
  moments.reserve(2 * q);
  std::vector<double> x = glu.solve(b);
  for (std::size_t k = 0; k < 2 * q; ++k) {
    if (k > 0) {
      x = glu.solve(model.C * x);
      for (double& v : x) v = -v;
    }
    moments.push_back(dot(l, x));
  }
  if (all_zero(moments)) return zero_model(static_cast<int>(q));

  const double t_unit = moment_time_scale(moments);
  const std::vector<double> mu = scale_moments(moments, t_unit);

  // Poles of the reduced pencil: det(Ghat + s Chat) = 0 <=> -1/s is an
  // eigenvalue of M = Ghat^-1 Chat. M is computed in the internal time unit
  // so the characteristic coefficients stay O(1).
  numeric::RealMatrix m(q, q);
  std::vector<double> column(q);
  for (std::size_t j = 0; j < q; ++j) {
    for (std::size_t i = 0; i < q; ++i) column[i] = model.C(i, j);
    const std::vector<double> mj = glu.solve(column);
    for (std::size_t i = 0; i < q; ++i) m(i, j) = mj[i] / t_unit;
  }
  const std::vector<double> charpoly = characteristic_polynomial(m);
  const std::vector<Complex> eigen = numeric::polyroots(charpoly);
  if (eigen.size() != q || !roots_verified(charpoly, eigen)) {
    // Eigenvalue extraction failed its residual check: fall back to the AWE
    // machinery on the reduced moments (which has its own order fallbacks).
    return pade_reduce(moments, static_cast<int>(q));
  }

  double lambda_max = 0.0;
  for (Complex e : eigen) lambda_max = std::max(lambda_max, std::abs(e));
  std::vector<Complex> poles_scaled;
  int dropped = 0;
  for (Complex e : eigen) {
    if (std::abs(e) <= 1e-10 * lambda_max) {
      ++dropped;  // eigenvalue ~0 of M: a pole at infinity, not a dynamic mode
      continue;
    }
    poles_scaled.push_back(-1.0 / e);
  }
  poles_scaled = symmetrize_conjugates(poles_scaled);

  std::vector<Complex> stable_poles;
  for (Complex p : poles_scaled) {
    if (p.real() < 0.0)
      stable_poles.push_back(p);
    else
      ++dropped;  // spurious RHP mode: drop and refit (DC stays matched)
  }
  if (stable_poles.empty())
    throw std::runtime_error(
        "pole_residue: reduced pencil has no stable poles");

  std::vector<Complex> residues_scaled;
  try {
    residues_scaled = fit_residues(
        stable_poles,
        std::vector<double>(mu.begin(),
                            mu.begin() + static_cast<std::ptrdiff_t>(
                                             stable_poles.size())));
  } catch (const std::runtime_error&) {
    return pade_reduce(moments, static_cast<int>(q));
  }

  PoleResidueModel result;
  result.requested_order = static_cast<int>(q);
  result.fallbacks = dropped;
  for (std::size_t i = 0; i < stable_poles.size(); ++i) {
    result.poles.push_back(stable_poles[i] / t_unit);
    result.residues.push_back(residues_scaled[i] / t_unit);
  }
  finalize(result);
  return result;
}

}  // namespace rlcsim::mor
