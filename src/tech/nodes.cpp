#include "tech/nodes.h"

namespace rlcsim::tech {

DeviceParams node_250nm() {
  DeviceParams d;
  d.node_name = "250nm";
  d.r0 = 6.0e3;        // ohm
  d.c0 = 3.0e-15;      // F      -> R0 C0 = 18 ps
  d.c_out0 = 3.0e-15;  // F
  d.area_min = 4.0e-12;  // m^2 (~2 um x 2 um)
  d.vdd = 2.5;
  return d;
}

DeviceParams node_180nm() {
  DeviceParams d;
  d.node_name = "180nm";
  d.r0 = 5.5e3;
  d.c0 = 2.0e-15;  // -> 11 ps
  d.c_out0 = 2.0e-15;
  d.area_min = 2.1e-12;
  d.vdd = 1.8;
  return d;
}

DeviceParams node_130nm() {
  DeviceParams d;
  d.node_name = "130nm";
  d.r0 = 5.0e3;
  d.c0 = 1.2e-15;  // -> 6 ps
  d.c_out0 = 1.2e-15;
  d.area_min = 1.1e-12;
  d.vdd = 1.2;
  return d;
}

std::vector<DeviceParams> all_nodes() {
  return {node_250nm(), node_180nm(), node_130nm()};
}

namespace {

// Scale helper: feature size in meters from the node name convention used
// here (all presets are explicit, so this is only a comment aid).
Materials aluminum_sio2() {
  Materials m;
  m.resistivity = 2.7e-8;  // aluminum era (0.25 um)
  m.relative_permittivity = 3.9;
  return m;
}

Materials copper_lowk() {
  Materials m;
  m.resistivity = 1.9e-8;  // damascene copper with barriers
  m.relative_permittivity = 3.2;
  return m;
}

}  // namespace

WirePreset wide_clock_wire(const DeviceParams& node) {
  WirePreset p;
  // Thick, wide top-metal wire far above its return plane: low R, high L.
  if (node.node_name == "250nm") {
    p.geometry = {4.0e-6, 1.0e-6, 3.0e-6, 2.0e-6};
    p.materials = aluminum_sio2();
  } else if (node.node_name == "180nm") {
    p.geometry = {3.0e-6, 0.9e-6, 2.5e-6, 1.5e-6};
    p.materials = copper_lowk();
  } else {
    p.geometry = {2.5e-6, 0.8e-6, 2.2e-6, 1.2e-6};
    p.materials = copper_lowk();
  }
  return p;
}

WirePreset signal_wire(const DeviceParams& node) {
  WirePreset p;
  // Minimum-pitch intermediate metal: resistive, capacitively coupled.
  if (node.node_name == "250nm") {
    p.geometry = {0.4e-6, 0.5e-6, 0.8e-6, 0.4e-6};
    p.materials = aluminum_sio2();
  } else if (node.node_name == "180nm") {
    p.geometry = {0.28e-6, 0.45e-6, 0.65e-6, 0.28e-6};
    p.materials = copper_lowk();
  } else {
    p.geometry = {0.2e-6, 0.35e-6, 0.5e-6, 0.2e-6};
    p.materials = copper_lowk();
  }
  return p;
}

tline::PerUnitLength extract(const WirePreset& preset) {
  return tech::extract(preset.geometry, preset.materials);
}

}  // namespace rlcsim::tech
