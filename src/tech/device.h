// Linearized driver/repeater device models.
//
// A minimum-size buffer is characterized by its output resistance R0, input
// capacitance C0, output (diffusion) capacitance, and layout area. A buffer
// h times larger has R0/h, h C0 — the scaling the paper (and all repeater
// theory since Bakoglu) assumes.
#pragma once

#include <string>

#include "core/repeater.h"

namespace rlcsim::tech {

// Device parameters of one technology's minimum inverter.
struct DeviceParams {
  std::string node_name;
  double r0 = 0.0;       // ohm
  double c0 = 0.0;       // F (gate/input capacitance)
  double c_out0 = 0.0;   // F (drain/output capacitance)
  double area_min = 0.0; // m^2
  double vdd = 0.0;      // V
};

// The intrinsic gate delay scale R0 C0 — the denominator of T_{L/R}.
double intrinsic_delay(const DeviceParams& device);

// Scaled buffer (h x minimum): output resistance and input capacitance.
struct ScaledBuffer {
  double output_resistance = 0.0;
  double input_capacitance = 0.0;
  double output_capacitance = 0.0;
  double area = 0.0;
};
ScaledBuffer scale_buffer(const DeviceParams& device, double h);

// Adapter to the core repeater layer's MinBuffer.
core::MinBuffer as_min_buffer(const DeviceParams& device);

}  // namespace rlcsim::tech
