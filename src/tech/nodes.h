// Technology presets.
//
// The paper's quantitative claims were made against a 0.25 um process (its
// reference [7]); the presets here are engineering-representative values for
// that era plus two scaled generations, chosen so that (a) the minimum
// buffer's intrinsic delay R0 C0 shrinks generation over generation and
// (b) wide upper-metal wires reach T_{L/R} ~ 5 at 0.25 um, matching the
// regime the paper calls common. DESIGN.md records this substitution for the
// proprietary process data.
#pragma once

#include <vector>

#include "tech/device.h"
#include "tech/extraction.h"

namespace rlcsim::tech {

// Minimum-size buffer device models.
DeviceParams node_250nm();
DeviceParams node_180nm();
DeviceParams node_130nm();
std::vector<DeviceParams> all_nodes();

// Representative wire stacks (geometry + materials) for a node.
//  * wide_clock_wire: thick top-metal, low resistance — the inductive case.
//  * signal_wire: intermediate-layer minimum-pitch signal wire — RC-like.
struct WirePreset {
  WireGeometry geometry;
  Materials materials;
};
WirePreset wide_clock_wire(const DeviceParams& node);
WirePreset signal_wire(const DeviceParams& node);

// Extracted per-unit-length parasitics of a preset.
tline::PerUnitLength extract(const WirePreset& preset);

}  // namespace rlcsim::tech
