// Wire and stack geometry types for parasitic extraction.
#pragma once

namespace rlcsim::tech {

// A single rectangular wire over a ground/return plane. All dimensions in
// meters.
struct WireGeometry {
  double width = 0.0;      // w
  double thickness = 0.0;  // t (metal height)
  double height = 0.0;     // h: dielectric height above the return plane
  double spacing = 0.0;    // s: edge-to-edge distance to neighbors (0 = isolated)
};

// Conductor and dielectric material properties.
struct Materials {
  double resistivity = 1.7e-8;        // ohm*m (copper default; Al ~ 2.7e-8)
  double relative_permittivity = 3.9; // SiO2 default
  double relative_permeability = 1.0;
};

}  // namespace rlcsim::tech
