// Figures of merit: when does on-chip inductance matter?
//
// Implements the length-window criterion of the paper's reference [8]
// (Ismail, Friedman, Neves, DAC 1998): transmission-line behaviour is
// significant for wire lengths l with
//
//     tr / (2 sqrt(L C))  <  l  <  (2 / R) sqrt(L / C)
//
// where R, L, C are per-unit-length and tr is the driving signal's rise
// time. Below the lower bound the wire is too short for flight-time effects
// to be visible within the edge; above the upper bound attenuation
// (resistance) swamps the inductive behaviour.
#pragma once

#include <optional>

#include "tline/rlc.h"

namespace rlcsim::tech {

struct InductanceWindow {
  double min_length = 0.0;  // m
  double max_length = 0.0;  // m
  bool exists() const { return max_length > min_length; }
};

// Computes the window for a wire and rise time. Throws std::invalid_argument
// for nonpositive rise time or non-RLC parasitics.
InductanceWindow inductance_window(const tline::PerUnitLength& pul, double rise_time);

// True when a specific (wire, length, rise time) combination should be
// modeled as RLC rather than RC.
bool inductance_matters(const tline::PerUnitLength& pul, double length,
                        double rise_time);

// The attenuation-based figure of merit for a specific length: the line's
// damping factor zeta_line = (R l / 2) sqrt(C/L) / 2 (equals
// LineParams::intrinsic_damping). Values well above 1 mean RC-like.
double line_damping(const tline::PerUnitLength& pul, double length);

}  // namespace rlcsim::tech
