#include "tech/extraction.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rlcsim::tech {
namespace {

constexpr double kEps0 = 8.8541878128e-12;  // F/m
constexpr double kMu0 = 1.25663706212e-6;   // H/m

void check_wire(const WireGeometry& wire) {
  if (!(wire.width > 0.0)) throw std::invalid_argument("WireGeometry: width must be > 0");
  if (!(wire.thickness > 0.0))
    throw std::invalid_argument("WireGeometry: thickness must be > 0");
  if (!(wire.height > 0.0)) throw std::invalid_argument("WireGeometry: height must be > 0");
  if (wire.spacing < 0.0) throw std::invalid_argument("WireGeometry: spacing must be >= 0");
}

}  // namespace

double extract_resistance(const WireGeometry& wire, const Materials& materials) {
  check_wire(wire);
  if (!(materials.resistivity > 0.0))
    throw std::invalid_argument("Materials: resistivity must be > 0");
  return materials.resistivity / (wire.width * wire.thickness);
}

double extract_capacitance(const WireGeometry& wire, const Materials& materials) {
  return extract_ground_capacitance(wire, materials) +
         2.0 * extract_coupling_capacitance(wire, materials);
}

double extract_coupling_capacitance(const WireGeometry& wire,
                                    const Materials& materials) {
  check_wire(wire);
  if (wire.spacing <= 0.0) return 0.0;
  // One sidewall of the Sakurai–Tamaru extension:
  // eps [0.03 w/h + 0.83 t/h - 0.07 (t/h)^0.222] (h/s)^1.34.
  const double eps = kEps0 * materials.relative_permittivity;
  const double w_h = wire.width / wire.height;
  const double t_h = wire.thickness / wire.height;
  const double s_h = wire.spacing / wire.height;
  // Outside the fit's calibration domain (very thin, narrow wires) the
  // polynomial goes negative; physical coupling cannot, so clamp at 0
  // rather than exporting a negative Cc the bus validation would reject
  // with a misleading message.
  const double side = std::max(
      0.0, 0.03 * w_h + 0.83 * t_h - 0.07 * std::pow(t_h, 0.222));
  return eps * side * std::pow(s_h, -1.34);
}

double extract_ground_capacitance(const WireGeometry& wire,
                                  const Materials& materials) {
  check_wire(wire);
  const double eps = kEps0 * materials.relative_permittivity;
  const double w_h = wire.width / wire.height;
  const double t_h = wire.thickness / wire.height;
  // Sakurai–Tamaru single-line fit: plate + fringe.
  return eps * (1.15 * w_h + 2.80 * std::pow(t_h, 0.222));
}

double partial_mutual_inductance_per_length(double center_distance,
                                            double length) {
  if (!(center_distance > 0.0))
    throw std::invalid_argument(
        "partial_mutual_inductance_per_length: center_distance must be > 0");
  if (!(length > center_distance))
    throw std::invalid_argument(
        "partial_mutual_inductance_per_length: length must exceed the "
        "center distance (the formula is a long-wire expansion)");
  // Rosa/Grover parallel-filament formula (total), divided by length:
  //   M = mu0/(2 pi) l [ ln(2l/d) - 1 + d/l ].
  const double total =
      kMu0 / (2.0 * std::numbers::pi) * length *
      (std::log(2.0 * length / center_distance) - 1.0 +
       center_distance / length);
  return total / length;
}

double extract_loop_inductance(const WireGeometry& wire, const Materials& materials) {
  check_wire(wire);
  const double mu = kMu0 * materials.relative_permeability;
  // Wide-trace / narrow-trace blend of the standard microstrip inductance:
  // for w >> h the parallel-plate form mu h / w dominates; for w << h the
  // logarithmic form. Use the reciprocal-blend that interpolates both limits.
  const double w_eff = wire.width + 0.398 * wire.thickness;  // thickness correction
  const double narrow = mu / (2.0 * std::numbers::pi) *
                        std::log(8.0 * wire.height / w_eff + w_eff / (4.0 * wire.height));
  const double wide = mu * wire.height / w_eff;
  return (wire.width > 2.0 * wire.height) ? wide : narrow;
}

double partial_self_inductance_per_length(const WireGeometry& wire, double length) {
  check_wire(wire);
  if (!(length > 0.0))
    throw std::invalid_argument("partial_self_inductance_per_length: length must be > 0");
  const double perimeter_scale = wire.width + wire.thickness;
  if (length <= perimeter_scale)
    throw std::invalid_argument(
        "partial_self_inductance_per_length: length must exceed the cross-section size");
  // Rosa/Grover rectangular-bar formula (total), divided by length.
  const double total =
      kMu0 / (2.0 * std::numbers::pi) * length *
      (std::log(2.0 * length / perimeter_scale) + 0.5 +
       0.2235 * perimeter_scale / length);
  return total / length;
}

double extract_loop_mutual_inductance(double center_distance, double height) {
  if (!(center_distance > 0.0))
    throw std::invalid_argument(
        "extract_loop_mutual_inductance: center_distance must be > 0");
  if (!(height > 0.0))
    throw std::invalid_argument(
        "extract_loop_mutual_inductance: height must be > 0");
  // Image-pair formula: each wire and its image in the return plane form a
  // loop; the mutual between two such loops d apart is
  // mu0/(4 pi) ln(1 + (2h/d)^2) per length.
  const double ratio = 2.0 * height / center_distance;
  return kMu0 / (4.0 * std::numbers::pi) * std::log(1.0 + ratio * ratio);
}

tline::PerUnitLength extract(const WireGeometry& wire, const Materials& materials) {
  tline::PerUnitLength pul;
  pul.resistance = extract_resistance(wire, materials);
  pul.capacitance = extract_capacitance(wire, materials);
  pul.inductance = extract_loop_inductance(wire, materials);
  pul.conductance = 0.0;
  return pul;
}

}  // namespace rlcsim::tech
