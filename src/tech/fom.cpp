#include "tech/fom.h"

#include <cmath>
#include <stdexcept>

namespace rlcsim::tech {

InductanceWindow inductance_window(const tline::PerUnitLength& pul, double rise_time) {
  if (!(rise_time > 0.0))
    throw std::invalid_argument("inductance_window: rise_time must be > 0");
  if (!(pul.inductance > 0.0 && pul.capacitance > 0.0 && pul.resistance > 0.0))
    throw std::invalid_argument("inductance_window: needs R, L, C all > 0");

  InductanceWindow w;
  w.min_length = rise_time / (2.0 * std::sqrt(pul.inductance * pul.capacitance));
  w.max_length = (2.0 / pul.resistance) * std::sqrt(pul.inductance / pul.capacitance);
  return w;
}

bool inductance_matters(const tline::PerUnitLength& pul, double length,
                        double rise_time) {
  if (!(length > 0.0))
    throw std::invalid_argument("inductance_matters: length must be > 0");
  const InductanceWindow w = inductance_window(pul, rise_time);
  return w.exists() && length > w.min_length && length < w.max_length;
}

double line_damping(const tline::PerUnitLength& pul, double length) {
  const tline::LineParams line = tline::make_line(pul, length);
  return line.intrinsic_damping();
}

}  // namespace rlcsim::tech
