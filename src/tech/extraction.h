// Per-unit-length R, L, C extraction from wire geometry.
//
// Closed-form engineering models, adequate for the regime studies this
// library performs (they are the same class of formulas the paper's
// reference [7] uses to decide when inductance matters):
//
//  * Resistance: bulk resistivity over the cross-section, rho / (w t).
//  * Capacitance: parallel-plate term plus fringe, using the Sakurai–Tamaru
//    empirical fit for a single line over a plane (IEEE T-ED 1983):
//      C/eps = 1.15 (w/h) + 2.80 (t/h)^0.222
//    With neighbors at spacing s, a coupling term is added (same fit's
//    extension) — see extract_capacitance for the exact form.
//  * Inductance: loop inductance of a microstrip-like wire over its return
//    plane, mu0/(2 pi) ln(8 h / w + w / (4 h)) per the standard microstrip
//    approximation, floored by the partial self-inductance of the isolated
//    rectangular conductor (Grover/Rosa):
//      L = mu0/(2 pi) l [ ln(2 l / (w + t)) + 0.5 + 0.2235 (w + t)/l ] / l.
#pragma once

#include "tech/geometry.h"
#include "tline/rlc.h"

namespace rlcsim::tech {

// ohm / m. Throws std::invalid_argument on nonpositive cross-section.
double extract_resistance(const WireGeometry& wire, const Materials& materials);

// F / m, Sakurai–Tamaru (plus coupling when spacing > 0).
double extract_capacitance(const WireGeometry& wire, const Materials& materials);

// F / m of line-to-line coupling to ONE same-layer neighbor at wire.spacing
// — the sidewall term of the Sakurai–Tamaru extension (extract_capacitance
// counts it twice, once per neighbor). 0 when spacing == 0 (isolated).
// The coupled-bus seam: per-pair Cc for tline::make_bus.
double extract_coupling_capacitance(const WireGeometry& wire,
                                    const Materials& materials);

// F / m to ground alone: extract_capacitance minus both sidewall coupling
// terms. When building a CoupledBus the coupling is stamped separately per
// pair, so each line's own capacitance must exclude it (counting Cc in both
// places would double the lateral load).
double extract_ground_capacitance(const WireGeometry& wire,
                                  const Materials& materials);

// H / m: partial mutual inductance between two parallel wires of `length`
// whose centers sit `center_distance` apart (Rosa/Grover parallel-filament
// formula, per-length average) — the free-wire quantity, WITHOUT a return
// plane. Pairs with partial_self_inductance_per_length.
double partial_mutual_inductance_per_length(double center_distance,
                                            double length);

// H / m: LOOP mutual inductance between two parallel microstrip wires whose
// centers are `center_distance` apart over a return plane `height` below —
// the image-pair formula M/l = mu0/(4 pi) ln(1 + (2h/d)^2). This is the
// quantity consistent with extract_loop_inductance (both currents return in
// the plane), so it is the per-pair Lm seam for tline::make_bus: its k =
// M/L stays well below the nearest-neighbor positive-definiteness bounds,
// unlike the free-wire partial mutual (k ~ 0.8, which a nearest-neighbor
// chain truncation cannot represent).
double extract_loop_mutual_inductance(double center_distance, double height);

// H / m for a wire with its current return in the plane `height` below.
double extract_loop_inductance(const WireGeometry& wire, const Materials& materials);

// H / m: partial self-inductance of an isolated rectangular conductor of
// length `length` (result is the per-length average, which depends weakly —
// logarithmically — on length; pass the actual routed length).
double partial_self_inductance_per_length(const WireGeometry& wire, double length);

// Full extraction for a wire with return plane.
tline::PerUnitLength extract(const WireGeometry& wire, const Materials& materials);

}  // namespace rlcsim::tech
