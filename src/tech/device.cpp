#include "tech/device.h"

#include <stdexcept>

namespace rlcsim::tech {

double intrinsic_delay(const DeviceParams& device) {
  if (!(device.r0 > 0.0 && device.c0 > 0.0))
    throw std::invalid_argument("DeviceParams: r0 and c0 must be > 0");
  return device.r0 * device.c0;
}

ScaledBuffer scale_buffer(const DeviceParams& device, double h) {
  if (!(h > 0.0)) throw std::invalid_argument("scale_buffer: h must be > 0");
  if (!(device.r0 > 0.0 && device.c0 > 0.0))
    throw std::invalid_argument("DeviceParams: r0 and c0 must be > 0");
  return {device.r0 / h, device.c0 * h, device.c_out0 * h, device.area_min * h};
}

core::MinBuffer as_min_buffer(const DeviceParams& device) {
  // Validate here rather than via core::validate — tech sits below core in
  // the link order and only shares core's headers.
  if (!(device.r0 > 0.0 && device.c0 > 0.0))
    throw std::invalid_argument("as_min_buffer: r0 and c0 must be > 0");
  if (device.c_out0 < 0.0)
    throw std::invalid_argument("as_min_buffer: c_out0 must be >= 0");
  core::MinBuffer buffer;
  buffer.r0 = device.r0;
  buffer.c0 = device.c0;
  buffer.area = device.area_min;
  buffer.output_capacitance = device.c_out0;
  return buffer;
}

}  // namespace rlcsim::tech
