// Work-stealing thread pool for embarrassingly parallel index spaces.
//
// Built for the sweep engine's workload: N independent evaluations whose
// costs vary by orders of magnitude across the grid (a transient point near
// the underdamped corner takes many more steps than an overdamped one), so
// static chunking alone leaves threads idle. Each worker owns a contiguous
// [begin, end) range of the index space; when a worker drains its range it
// steals the far half of the largest remaining victim range. Ranges are
// guarded by small per-worker mutexes — the items this pool runs are
// microseconds to milliseconds each, so lock traffic is noise.
//
// Determinism contract: parallel_for runs fn(i, worker) exactly once per
// index. Which worker runs an index is schedule-dependent, but if fn(i, w)'s
// RESULT does not depend on w or on execution order (each index writes only
// its own output slot), the aggregate result is bit-identical at every
// thread count. The sweep engine builds on exactly that property.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace rlcsim::runtime {

// Worker count the pool uses when constructed with `threads == 0`:
// the RLCSIM_THREADS environment variable when set (unset/empty = no
// override), otherwise std::thread::hardware_concurrency(), never less
// than 1. A set-but-invalid RLCSIM_THREADS (non-numeric, zero, negative,
// or absurdly large) throws std::invalid_argument naming the bad value —
// a typo'd thread count must not silently become "all cores".
std::size_t default_thread_count();

class ThreadPool {
 public:
  // `threads` is the TOTAL worker count, caller included: the calling thread
  // participates in every parallel_for as worker 0 and `threads - 1`
  // background threads serve as workers 1..threads-1. ThreadPool(1) therefore
  // runs everything inline on the caller with no cross-thread traffic.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const;

  // Runs fn(index, worker) for every index in [0, n), worker in [0, size()).
  // Blocks until every index has completed. Exceptions thrown by fn are
  // captured; after all indexes finish, the exception from the LOWEST index
  // is rethrown (a deterministic choice — which of several failing indexes
  // surfaces does not depend on scheduling).
  //
  // Reentrancy: calling parallel_for from inside fn (i.e. from a pool
  // worker) executes the nested loop serially inline on that worker — nested
  // parallelism degrades gracefully instead of deadlocking.
  //
  // Concurrent EXTERNAL callers are serialized: the pool runs one job at a
  // time, and a second thread calling parallel_for blocks until the first
  // job has drained.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t index, std::size_t worker)>& fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rlcsim::runtime
