#include "runtime/env.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace rlcsim::runtime {

std::optional<long> parse_env_int(const char* name, long min_value,
                                  long max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || parsed < min_value ||
      parsed > max_value)
    throw std::invalid_argument(
        std::string(name) + " must be an integer in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) +
        "], got \"" + env + "\"");
  return parsed;
}

std::optional<long> parse_env_enum(const char* name,
                                   std::initializer_list<EnvChoice> choices,
                                   const char* expected) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  for (const EnvChoice& choice : choices)
    if (std::strcmp(env, choice.token) == 0) return choice.value;
  throw std::invalid_argument(std::string(name) + " must be " + expected +
                              ", got \"" + env + "\"");
}

}  // namespace rlcsim::runtime
