#include "runtime/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "runtime/env.h"

namespace rlcsim::runtime {
namespace {

// Identity of the pool worker the current thread is executing for, so a
// nested parallel_for can detect it is already inside a pool and degrade to
// an inline serial loop instead of deadlocking on its own workers.
struct WorkerIdentity {
  const void* pool = nullptr;
  std::size_t worker = 0;
};
// Worker identity is per-thread by definition; see the lint allowlist
// rationale in tools/lint/rlcsim_lint.cpp.
thread_local WorkerIdentity tls_identity;  // rlcsim-lint: allow(thread-local)

}  // namespace

std::size_t default_thread_count() {
  // Unset or empty means "no override"; anything else must be a positive
  // integer (parse_env_int carries the junk-throws contract).
  if (const auto parsed = parse_env_int("RLCSIM_THREADS", 1, 65536))
    return static_cast<std::size_t>(*parsed);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

struct ThreadPool::Impl {
  // One contiguous block of unstarted indexes. Owners pop from the front;
  // thieves cut the back half. Every index in a range is unstarted, so
  // stealing never duplicates or skips work.
  struct Range {
    std::mutex mutex;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  std::size_t size = 1;
  std::vector<std::thread> background;
  std::vector<std::unique_ptr<Range>> ranges;

  // Serializes EXTERNAL parallel_for callers: the pool holds one job's state
  // at a time, so a second caller blocks here until the first job drains.
  std::mutex submit_mutex;

  std::mutex job_mutex;
  std::condition_variable work_cv;  // background workers wait here for a job
  std::condition_variable done_cv;  // the caller waits here for completion
  bool shutdown = false;
  std::uint64_t generation = 0;

  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t total = 0;
  std::atomic<std::size_t> completed{0};
  std::size_t active_background = 0;  // guarded by job_mutex

  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_index = 0;

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error || index < error_index) {
      error = std::current_exception();
      error_index = index;
    }
  }

  bool take_own(std::size_t worker, std::size_t* out) {
    Range& r = *ranges[worker];
    std::size_t remaining = 0;
    {
      std::lock_guard<std::mutex> lock(r.mutex);
      if (r.begin >= r.end) return false;
      *out = r.begin++;
      remaining = r.end - r.begin;
    }
    // Sampled at every pop: the depth distribution shows whether the static
    // per-worker split keeps workers fed or stealing is doing the balancing.
    OBS_HISTOGRAM_RECORD("pool.queue_depth", remaining);
    return true;
  }

  // Cuts the back half (at least one index) of the largest victim range into
  // the thief's own range, then pops from it.
  bool steal(std::size_t thief, std::size_t* out) {
    std::size_t best = size, best_remaining = 0;
    for (std::size_t v = 0; v < size; ++v) {
      if (v == thief) continue;
      Range& r = *ranges[v];
      std::lock_guard<std::mutex> lock(r.mutex);
      if (r.end - r.begin > best_remaining) {
        best_remaining = r.end - r.begin;
        best = v;
      }
    }
    if (best == size) return false;
    std::size_t stolen_begin = 0, stolen_end = 0;
    {
      Range& victim = *ranges[best];
      std::lock_guard<std::mutex> lock(victim.mutex);
      const std::size_t remaining = victim.end - victim.begin;
      if (remaining == 0) return false;  // raced with the owner; rescan
      const std::size_t mid = victim.begin + remaining / 2;
      stolen_begin = mid;
      stolen_end = victim.end;
      victim.end = mid;
    }
    // Keep the first stolen index for ourselves and publish only the rest:
    // once the range is visible, other thieves may cut it in turn.
    {
      Range& own = *ranges[thief];
      std::lock_guard<std::mutex> lock(own.mutex);
      own.begin = stolen_begin + 1;
      own.end = stolen_end;
    }
    *out = stolen_begin;
    OBS_COUNTER_ADD("pool.steals", 1);
    return true;
  }

  void run_worker(std::size_t worker) {
    const WorkerIdentity saved = tls_identity;
    tls_identity = {this, worker};
    for (;;) {
      std::size_t index = 0;
      if (!take_own(worker, &index) && !steal(worker, &index)) break;
      try {
        (*fn)(index, worker);
      } catch (...) {
        record_error(index);
      }
      OBS_COUNTER_ADD("pool.tasks_executed", 1);
      if (completed.fetch_add(1) + 1 == total) {
        std::lock_guard<std::mutex> lock(job_mutex);
        done_cv.notify_all();
      }
    }
    tls_identity = saved;
  }

  void background_loop(std::size_t worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(job_mutex);
        work_cv.wait(lock,
                     [&] { return shutdown || (fn != nullptr && generation != seen); });
        if (shutdown) return;
        seen = generation;
        ++active_background;
      }
      run_worker(worker);
      {
        std::lock_guard<std::mutex> lock(job_mutex);
        --active_background;
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(std::make_unique<Impl>()) {
  impl_->size = threads > 0 ? threads : default_thread_count();
  impl_->ranges.reserve(impl_->size);
  for (std::size_t i = 0; i < impl_->size; ++i)
    impl_->ranges.push_back(std::make_unique<Impl::Range>());
  for (std::size_t w = 1; w < impl_->size; ++w)
    impl_->background.emplace_back([this, w] { impl_->background_loop(w); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->job_mutex);
    impl_->shutdown = true;
    impl_->work_cv.notify_all();
  }
  for (auto& t : impl_->background) t.join();
}

std::size_t ThreadPool::size() const { return impl_->size; }

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;

  // Nested call from inside this pool's own worker: run inline, serially, on
  // the current worker's identity (thread-local caches keyed by worker id
  // stay consistent).
  if (tls_identity.pool == impl_.get()) {
    const std::size_t worker = tls_identity.worker;
    // The inline path still books its tasks so the global invariant
    // tasks_executed == tasks_submitted holds at quiescence.
    OBS_COUNTER_ADD("pool.jobs_nested_inline", 1);
    OBS_COUNTER_ADD("pool.tasks_submitted", n);
    std::exception_ptr error;
    std::size_t error_index = 0;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i, worker);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
          error_index = i;
        }
      }
      OBS_COUNTER_ADD("pool.tasks_executed", 1);
    }
    (void)error_index;
    if (error) std::rethrow_exception(error);
    return;
  }

  // One external job at a time; a concurrent caller waits its turn here.
  std::lock_guard<std::mutex> submit_lock(impl_->submit_mutex);

  OBS_COUNTER_ADD("pool.jobs", 1);
  OBS_COUNTER_ADD("pool.tasks_submitted", n);

  {
    std::lock_guard<std::mutex> lock(impl_->job_mutex);
    for (std::size_t w = 0; w < impl_->size; ++w) {
      impl_->ranges[w]->begin = n * w / impl_->size;
      impl_->ranges[w]->end = n * (w + 1) / impl_->size;
    }
    impl_->fn = &fn;
    impl_->total = n;
    impl_->completed.store(0);
    impl_->error = nullptr;
    ++impl_->generation;
    impl_->work_cv.notify_all();
  }

  impl_->run_worker(0);

  {
    std::unique_lock<std::mutex> lock(impl_->job_mutex);
    impl_->done_cv.wait(lock, [&] {
      return impl_->completed.load() == impl_->total && impl_->active_background == 0;
    });
    impl_->fn = nullptr;
  }
  if (impl_->error) {
    std::exception_ptr error = impl_->error;
    impl_->error = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace rlcsim::runtime
