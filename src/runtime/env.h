// Shared environment-knob parsing with the project's junk-throws contract.
//
// Every RLCSIM_* knob follows the same rule: unset or empty means "no
// override", and a set-but-invalid value throws std::invalid_argument
// naming the variable and the offending text. A typo'd knob silently
// falling back to a default is exactly the failure mode an override must
// not have (RLCSIM_THREADS=junk quietly becoming "all cores" was the
// original sin these helpers consolidate the fix for).
#pragma once

#include <initializer_list>
#include <optional>

namespace rlcsim::runtime {

// Integer knob: the value must parse as an integer in
// [min_value, max_value] under strtol rules (leading whitespace is
// accepted, the entire remainder must be consumed — "4x", "2.5", "1e3"
// and out-of-range values all throw). Returns nullopt when `name` is
// unset or set to the empty string.
std::optional<long> parse_env_int(const char* name, long min_value,
                                  long max_value);

// Enum-style knob: the value must EXACTLY match one of `choices`' tokens
// (no whitespace trimming, no numeric aliasing — " 4 " and "04" are junk
// even if "4" is a token). `expected` is the human-readable token list
// used in the error message, e.g. "1, 4, 8, or \"auto\"". Returns nullopt
// when unset/empty, otherwise the matched token's mapped value.
struct EnvChoice {
  const char* token;
  long value;
};
std::optional<long> parse_env_enum(const char* name,
                                   std::initializer_list<EnvChoice> choices,
                                   const char* expected);

}  // namespace rlcsim::runtime
