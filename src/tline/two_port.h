// Complex-frequency two-port (ABCD / chain) analysis.
//
// Everything the paper's eq. (1) expresses — a lossy line between a source
// impedance and a load impedance — is the terminated transfer function of a
// chain matrix. We build transfer functions by cascading ABCD blocks so the
// exact distributed line and its lumped ladder approximations share one code
// path and can be compared at any complex frequency s.
#pragma once

#include <complex>

#include "tline/rlc.h"

namespace rlcsim::tline {

using Complex = std::complex<double>;

// Chain parameters: [V1; I1] = [A B; C D] [V2; I2], port 2 currents flowing
// out of the network.
struct Abcd {
  Complex a{1.0, 0.0};
  Complex b{0.0, 0.0};
  Complex c{0.0, 0.0};
  Complex d{1.0, 0.0};

  // this ∘ rhs: `this` is closer to the source, `rhs` closer to the load.
  Abcd cascade(const Abcd& rhs) const;
};

// Elementary blocks.
Abcd series_impedance(Complex z);
Abcd shunt_admittance(Complex y);
Abcd series_resistor(double r);
Abcd series_inductor(double l, Complex s);
Abcd shunt_capacitor(double c, Complex s);

// Distributed lossy RLC(G) line of the given totals at complex frequency s:
//   A = D = cosh(theta),  B = z0 sinh(theta),  C = sinh(theta) / z0,
//   theta = sqrt((Rt + s Lt)(Gt + s Ct)),  z0 = sqrt((Rt + s Lt)/(Gt + s Ct)).
// Handles the s -> 0 and lossless limits smoothly through the series
// expansion of sinh/cosh when |theta| is tiny.
Abcd distributed_line(const LineParams& line, Complex s, double total_conductance = 0.0);

// One lumped pi segment (series R+sL, split shunt capacitance) and an
// N-segment ladder of them — the discretization the MNA simulator uses, here
// in the frequency domain so discretization error can be measured exactly.
Abcd lumped_pi_segment(const LineParams& segment, Complex s);
Abcd lumped_ladder(const LineParams& line, int segments, Complex s);

// Voltage transfer Vout/Vin of `network` driven through source impedance zs
// into load impedance zl (zl == infinity is expressed by load_admittance = 0):
//   H = 1 / (A + B yl + zs C + zs D yl).
Complex terminated_transfer(const Abcd& network, Complex source_impedance,
                            Complex load_admittance);

}  // namespace rlcsim::tline
