#include "tline/ramp_response.h"

#include <cmath>
#include <stdexcept>

#include "numeric/roots.h"
#include "tline/step_response.h"

namespace rlcsim::tline {

double ramp_response_at(const GateLineLoad& system, double rise_time, double t,
                        const numeric::EulerOptions& opt) {
  validate(system);
  if (!(rise_time > 0.0))
    throw std::invalid_argument("ramp_response_at: rise_time must be > 0");
  if (!(t > 0.0)) return 0.0;
  const auto f = [&](Complex s) {
    // (1 - e^{-s tr}) / (s^2 tr) * H(s); the numerator is evaluated via
    // expm1-style care for small |s tr| to avoid cancellation.
    const Complex str = s * rise_time;
    Complex ramp_factor;
    if (std::abs(str) < 1e-6) {
      ramp_factor = (1.0 - str / 2.0 + str * str / 6.0) / s;  // series of (1-e^-x)/x / s
    } else {
      ramp_factor = (1.0 - std::exp(-str)) / (s * str);
    }
    return transfer_exact(system, s) * ramp_factor;
  };
  return numeric::invert_euler(f, t, opt);
}

double ramp_threshold_delay(const GateLineLoad& system, double rise_time,
                            double threshold, const numeric::EulerOptions& opt) {
  validate(system);
  if (!(rise_time > 0.0))
    throw std::invalid_argument("ramp_threshold_delay: rise_time must be > 0");
  if (!(threshold > 0.0 && threshold < 1.0))
    throw std::invalid_argument("ramp_threshold_delay: threshold in (0,1)");

  const DenominatorMoments m = moments(system);
  const double tof = std::sqrt(system.line.total_inductance *
                               (system.line.total_capacitance + system.load_capacitance));
  double horizon = 6.0 * std::max({m.b1, tof, rise_time});

  const auto v = [&](double t) { return ramp_response_at(system, rise_time, t, opt); };

  constexpr int kScan = 200;
  for (int expansion = 0; expansion < 8; ++expansion) {
    double prev_t = horizon * 1e-6;
    double prev_v = v(prev_t);
    for (int i = 1; i <= kScan; ++i) {
      const double t = horizon * static_cast<double>(i) / kScan;
      const double vi = v(t);
      if (prev_v < threshold && vi >= threshold) {
        const double crossing =
            numeric::brent([&](double tt) { return v(tt) - threshold; }, prev_t, t,
                           {.x_tolerance = horizon * 1e-12});
        return crossing - 0.5 * rise_time;  // measured from the input's 50%
      }
      prev_t = t;
      prev_v = vi;
    }
    horizon *= 4.0;
  }
  throw std::runtime_error("ramp_threshold_delay: output never crossed");
}

double step_approximation_error(const GateLineLoad& system, double rise_time) {
  const double step = threshold_delay(system);
  const double ramp = ramp_threshold_delay(system, rise_time);
  return (ramp - step) / step;
}

}  // namespace rlcsim::tline
