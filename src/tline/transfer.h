// Exact transfer function of the paper's canonical system:
//
//   step source -- Rtr -- [ distributed RLC line: Rt, Lt, Ct ] -- CL -- gnd
//
// This is eq. (1) of the paper rearranged into the ABCD form
//   H(s) = 1 / [ cosh θ + (z0 s CL + Rtr/z0) sinh θ + Rtr s CL cosh θ ].
//
// Also provides the exact low-order Taylor (moment) coefficients of 1/H —
// the denominator expansion D(s) = 1 + b1 s + b2 s² + O(s³) — which anchor
// the two-pole model and appear (scaled) as the paper's eq. (7).
#pragma once

#include <complex>

#include "tline/rlc.h"
#include "tline/two_port.h"

namespace rlcsim::tline {

// A gate (linearized to its output resistance) driving a line into the next
// gate's input capacitance. The unit under study everywhere in this library.
struct GateLineLoad {
  double driver_resistance = 0.0;  // Rtr, ohm
  LineParams line;
  double load_capacitance = 0.0;  // CL, F

  // The paper's normalized ratios, eq. (5).
  double rt_ratio() const;  // RT = Rtr / Rt
  double ct_ratio() const;  // CT = CL / Ct
};

// Throws std::invalid_argument unless Rtr >= 0, CL >= 0 and the line is a
// valid RLC line (Lt > 0).
void validate(const GateLineLoad& system);

// Exact H(s) with the distributed line.
Complex transfer_exact(const GateLineLoad& system, Complex s);

// H(s) with the line replaced by an N-segment lumped pi ladder (what the MNA
// simulator integrates); converges to transfer_exact as segments grow.
Complex transfer_lumped(const GateLineLoad& system, int segments, Complex s);

// Denominator moments of the exact transfer function:
//   D(s) = 1/H(s) = 1 + b1 s + b2 s^2 + ...
// derived in closed form from the cosh/sinh series (no numerics):
//   b1 = Rtr (Ct + CL) + Rt (Ct/2 + CL)
//   b2 = Lt (Ct/2 + CL) + Rt^2 Ct (Ct/24 + CL/6) + Rtr Rt Ct (Ct/6 + CL/2)
struct DenominatorMoments {
  double b1 = 0.0;  // seconds — equals the Elmore delay of the system
  double b2 = 0.0;  // seconds^2
};
DenominatorMoments moments(const GateLineLoad& system);

}  // namespace rlcsim::tline
