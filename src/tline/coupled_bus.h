// Coupled multi-line bus parasitics.
//
// The paper quantifies inductance effects on a SINGLE RLC line; every real
// wide bus is N of those lines coupled to their neighbors capacitively
// (line-to-line Cc) and inductively (mutual Lm). This type carries the
// totals of that structure in the same spirit as LineParams: each line's own
// totals plus the per-ADJACENT-PAIR coupling totals. Nearest-neighbor
// coupling is the dominant term on planar buses and keeps the model
// parameter count flat in N.
//
// Two flavors share the type:
//  * UNIFORM — every line has the same totals and every adjacent pair the
//    same Cc/Lm (the `line` / `coupling_capacitance` / `mutual_inductance`
//    fields; the per-line/per-pair vectors stay empty);
//  * HETEROGENEOUS — per-line totals and per-pair couplings straight from
//    the extraction layer (different widths/spacings per track). The scalar
//    fields then mirror line 0 / pair 0 so uniform-only readers stay valid.
//
// The dimensionless knobs the crosstalk literature (and the sweep engine's
// crosstalk axes) work in are the ratios
//   cc_ratio = Cc / Ct   (coupling-to-ground capacitance ratio)
//   lm_ratio = Lm / Lt   (mutual-to-self inductance ratio, the coupling
//                         coefficient k of corresponding segment inductors)
#pragma once

#include <string>
#include <vector>

#include "numeric/matrix.h"
#include "tline/rlc.h"

namespace rlcsim::tline {

// N parallel RLC lines with nearest-neighbor coupling, optionally extended
// to FULL coupling matrices (every pair, not just adjacent ones).
struct CoupledBus {
  int lines = 2;                      // N >= 2
  LineParams line;                    // uniform totals (line 0 when hetero)
  double coupling_capacitance = 0.0;  // uniform Cc per adjacent pair, F
  double mutual_inductance = 0.0;     // uniform Lm per adjacent pair, H

  // Heterogeneous extension; empty = uniform. When non-empty their sizes
  // must be `lines`, `lines - 1`, `lines - 1` (see validate()).
  std::vector<LineParams> line_params;     // per-line totals
  std::vector<double> pair_capacitance;    // per-adjacent-pair Cc, F
  std::vector<double> pair_inductance;     // per-adjacent-pair Lm, H

  // Full (beyond nearest-neighbor) coupling: lines x lines symmetric
  // matrices of pair totals, zero diagonal — Cc between every pair and Lm
  // between every pair. Empty (0 x 0) = nearest-neighbor only. When
  // non-empty, the pair_* vectors mirror their first off-diagonals so
  // adjacency-only readers stay valid, and validation switches from the
  // tridiagonal LDLt to a general dense LDLt on the full inductance matrix
  // diag(Li) + Lm (numeric::symmetric_positive_definite).
  numeric::RealMatrix full_cc;
  numeric::RealMatrix full_lm;

  bool heterogeneous() const { return !line_params.empty(); }
  bool full_coupling() const { return full_cc.rows() > 0 || full_lm.rows() > 0; }
  // Per-line / per-pair accessors valid for BOTH flavors (pair j couples
  // lines j and j+1).
  const LineParams& line_at(int i) const;
  double pair_cc(int j) const;
  double pair_lm(int j) const;
  // Coupling totals between ANY two distinct lines, valid for every flavor:
  // the matrix entry when full matrices are present, the adjacent-pair total
  // when |i - j| == 1, and 0 otherwise.
  double coupling_cc(int i, int j) const;
  double coupling_lm(int i, int j) const;

  double cc_ratio() const;  // Cc / Ct (uniform fields)
  double lm_ratio() const;  // Lm / Lt == per-segment coupling coefficient k
  // The middle line — the worst-case victim (aggressors on both sides for
  // any N >= 3; for N == 2 it is line 0).
  int victim_index() const { return (lines - 1) / 2; }
};

// Builds a uniform bus from a line and the dimensionless coupling ratios.
CoupledBus make_bus(int lines, const LineParams& line, double cc_ratio,
                    double lm_ratio);

// Builds a heterogeneous bus from per-line totals and per-pair coupling
// totals (pair j couples lines j and j+1): lines.size() >= 2,
// pair_cc/pair_lm sizes == lines.size() - 1. The extraction-layer seam:
// per-track widths/spacings land here. Validates before returning.
CoupledBus make_bus(const std::vector<LineParams>& lines,
                    const std::vector<double>& pair_cc,
                    const std::vector<double>& pair_lm);

// Builds a FULL-coupling bus from per-line totals and dense lines x lines
// coupling matrices (symmetric, zero diagonal; all entries >= 0): every pair
// of lines is capacitively and inductively coupled, the planar-bus
// generalization where second- and third-neighbor terms matter. The full
// inductance matrix diag(Li) + lm must be positive definite (general LDLt —
// the dense generalization of the tridiagonal nearest-neighbor check). An
// empty (0 x 0) matrix means no coupling of that kind. Validates before
// returning. (A distinct name, not a make_bus overload: braced-list call
// sites would be ambiguous between matrices and the per-pair vectors.)
CoupledBus make_full_bus(const std::vector<LineParams>& lines,
                         const numeric::RealMatrix& cc,
                         const numeric::RealMatrix& lm);

// Largest admissible Lm/Lt for a UNIFORM N-line bus: the per-segment
// nearest-neighbor inductance matrix (tridiagonal Toeplitz, eigenvalues
// 1 + 2k cos(j*pi/(N+1))) stays positive definite iff
// k < 1/(2 cos(pi/(N+1))) — exactly 1 for N = 2, tightening toward 1/2 as
// the bus widens.
double max_lm_ratio(int lines);

// True iff the ACTUAL per-segment inductance matrix — tridiagonal with the
// given self inductances on the diagonal and mutuals off it — is positive
// definite (LDLt recurrence, exact for tridiagonal). The heterogeneous
// generalization of the max_lm_ratio bound; the uniform bound is the
// special case of equal entries.
bool mutual_chain_positive_definite(const std::vector<double>& self,
                                    const std::vector<double>& mutual);

// Throws std::invalid_argument (naming the offending field) unless every
// line validates (L > 0), lines >= 2, every Cc >= 0 and finite, and the
// per-segment inductance matrix is positive definite: the uniform
// max_lm_ratio(lines) bound, or the general tridiagonal LDLt test for
// heterogeneous buses. Also rejects size-mismatched heterogeneous vectors.
void validate(const CoupledBus& bus);

// Human-readable one-line summary, e.g. for example programs.
std::string describe(const CoupledBus& bus);

}  // namespace rlcsim::tline
