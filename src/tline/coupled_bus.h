// Coupled multi-line bus parasitics.
//
// The paper quantifies inductance effects on a SINGLE RLC line; every real
// wide bus is N of those lines coupled to their neighbors capacitively
// (line-to-line Cc) and inductively (mutual Lm). This type carries the
// totals of that structure in the same spirit as LineParams: each line's own
// totals plus the per-ADJACENT-PAIR coupling totals. Nearest-neighbor
// coupling is the dominant term on planar buses and keeps the model
// parameter count flat in N.
//
// The dimensionless knobs the crosstalk literature (and the sweep engine's
// crosstalk axes) work in are the ratios
//   cc_ratio = Cc / Ct   (coupling-to-ground capacitance ratio)
//   lm_ratio = Lm / Lt   (mutual-to-self inductance ratio, the coupling
//                         coefficient k of corresponding segment inductors)
#pragma once

#include <string>

#include "tline/rlc.h"

namespace rlcsim::tline {

// N parallel identical RLC lines with nearest-neighbor coupling.
struct CoupledBus {
  int lines = 2;                      // N >= 2
  LineParams line;                    // each line's own totals
  double coupling_capacitance = 0.0;  // total Cc between each adjacent pair, F
  double mutual_inductance = 0.0;     // total Lm between each adjacent pair, H

  double cc_ratio() const;  // Cc / Ct
  double lm_ratio() const;  // Lm / Lt == per-segment coupling coefficient k
  // The middle line — the worst-case victim (aggressors on both sides for
  // any N >= 3; for N == 2 it is line 0).
  int victim_index() const { return (lines - 1) / 2; }
};

// Builds a bus from a line and the dimensionless coupling ratios.
CoupledBus make_bus(int lines, const LineParams& line, double cc_ratio,
                    double lm_ratio);

// Largest admissible Lm/Lt for an N-line bus: the per-segment nearest-
// neighbor inductance matrix (tridiagonal Toeplitz, eigenvalues
// 1 + 2k cos(j*pi/(N+1))) stays positive definite iff
// k < 1/(2 cos(pi/(N+1))) — exactly 1 for N = 2, tightening toward 1/2 as
// the bus widens.
double max_lm_ratio(int lines);

// Throws std::invalid_argument (naming the offending field) unless the line
// validates (L > 0), lines >= 2, Cc >= 0 and finite, and
// 0 <= Lm < max_lm_ratio(lines) * Lt.
void validate(const CoupledBus& bus);

// Human-readable one-line summary, e.g. for example programs.
std::string describe(const CoupledBus& bus);

}  // namespace rlcsim::tline
